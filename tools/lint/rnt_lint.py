#!/usr/bin/env python3
"""rnt-lint: determinism and lock-discipline checks for the rnt tree.

A deliberately dependency-free linter (regex over comment/string-stripped
source) that enforces the project's concurrency and determinism rules
where the compiler cannot:

  raw-mutex            std::mutex / condition_variable / lock_guard /
                       unique_lock / scoped_lock / shared_mutex are banned
                       in the concurrent layers (src/lock, src/txn,
                       src/sim, src/faults, src/baseline). Use the
                       annotated rnt::Mutex / MutexLock / CondVar wrappers
                       (src/common/mutex.h) so Clang's -Wthread-safety can
                       verify the lock discipline. src/common/mutex.h
                       itself is the one sanctioned wrapper.
  nondeterminism       std::rand / srand / random_device / system_clock /
                       high_resolution_clock / time(...) are banned in the
                       deterministic layers (src/sim, src/dist): replayed
                       simulations and traces must depend only on the
                       seed. Use common/random.h (SplitMix64) and logical
                       clocks.
  unordered-container  std::unordered_{map,set,...} are banned in src/sim
                       and src/dist: iteration order is
                       implementation-defined and hash-seed dependent, so
                       anything it feeds (traces, logs, drain order)
                       breaks replay determinism. Use std::map/std::set.
  pointer-keyed        std::map/std::set keyed by a raw pointer in src/sim
                       and src/dist iterate in address order, which varies
                       run to run. Key by a stable id instead.
  wall-clock-wait      sleep_for / sleep_until / wait_for / wait_until /
                       steady_clock reads are banned in src/sim and
                       src/dist: a timed wait paces the simulation on the
                       OS scheduler, so outcomes (retry counts, message
                       interleavings) stop being functions of the seed.
                       Pace on the logical clock or spin counters; a
                       liveness-only poll that provably cannot change any
                       recorded outcome may suppress per line (e.g. the
                       parallel runner's supervisor poll).
  owning-new           naked `new` / `delete` outside a smart-pointer
                       expression, anywhere under src/. Lock-free
                       structures that genuinely hand ownership through a
                       CAS may suppress per line.
  unannotated-mutex    a file in the concurrent layers that declares an
                       rnt::Mutex member must use GUARDED_BY / REQUIRES /
                       ACQUIRE somewhere: an unannotated mutex is opted
                       out of the analysis silently.
  unchecked-io         write / pwrite / fsync / fdatasync with the result
                       discarded, in the durable layer (src/storage). An
                       ignored short write or failed sync silently
                       downgrades "durable" to "probably durable": the
                       WAL reports commit while the bytes may be gone.
                       Consume the result (assign, test, return) or
                       suppress per line where loss is provably benign.

Suppression: append `// rnt-lint: allow(<rule>)` to the offending line,
or put it alone on the line directly above. Suppressions should carry a
justification in the surrounding comment.

Fixtures (tools/lint/fixtures/) declare the path they should be linted
as via a first-line `// lint-as: <relpath>` directive, so rule scoping
can be exercised from outside src/. `--selftest` runs every fixture and
checks that each bad_<rule>.cc trips exactly its rule and clean.cc trips
nothing.

Exit status: 0 clean, 1 violations found, 2 usage/internal error.
"""

from __future__ import annotations

import argparse
import pathlib
import re
import sys
from typing import Callable, NamedTuple

SOURCE_SUFFIXES = {".cc", ".h", ".cpp", ".hpp"}

CONCURRENT_DIRS = ("src/lock", "src/txn", "src/sim", "src/faults",
                   "src/baseline", "src/storage")
DETERMINISTIC_DIRS = ("src/sim", "src/dist")
DURABLE_DIRS = ("src/storage",)

# The sanctioned wrapper over the raw primitives.
RAW_MUTEX_EXEMPT = {"src/common/mutex.h"}

SUPPRESS_RE = re.compile(r"rnt-lint:\s*allow\(([a-z-]+(?:\s*,\s*[a-z-]+)*)\)")
LINT_AS_RE = re.compile(r"^//\s*lint-as:\s*(\S+)")


class Violation(NamedTuple):
    path: str
    line: int
    rule: str
    message: str


class Line(NamedTuple):
    number: int
    code: str      # comment- and string-stripped text
    raw: str       # original text (for directives that live in comments)


def strip_comments_and_strings(text: str) -> list[str]:
    """Returns per-line code with comments and string/char literals blanked.

    A lightweight scanner, not a real lexer: it tracks //, /* */, "...",
    '...' and escapes, which is enough for C++ that compiles. Raw strings
    are treated as plain strings (good enough: our rules target tokens
    that cannot legally appear mid-raw-string in this codebase).
    """
    out: list[str] = []
    cur: list[str] = []
    state = "code"  # code | line_comment | block_comment | dquote | squote
    i = 0
    n = len(text)
    while i < n:
        c = text[i]
        nxt = text[i + 1] if i + 1 < n else ""
        if c == "\n":
            out.append("".join(cur))
            cur = []
            if state == "line_comment":
                state = "code"
            i += 1
            continue
        if state == "code":
            if c == "/" and nxt == "/":
                state = "line_comment"
                i += 2
                continue
            if c == "/" and nxt == "*":
                state = "block_comment"
                i += 2
                continue
            if c == '"':
                state = "dquote"
                cur.append(" ")
                i += 1
                continue
            if c == "'":
                state = "squote"
                cur.append(" ")
                i += 1
                continue
            cur.append(c)
            i += 1
            continue
        if state == "block_comment":
            if c == "*" and nxt == "/":
                state = "code"
                i += 2
                continue
            i += 1
            continue
        if state == "line_comment":
            i += 1
            continue
        # String/char literal states.
        if c == "\\":
            i += 2
            continue
        if (state == "dquote" and c == '"') or (state == "squote" and c == "'"):
            state = "code"
        i += 1
    out.append("".join(cur))
    return out


def in_dirs(relpath: str, prefixes: tuple[str, ...]) -> bool:
    return any(relpath == p or relpath.startswith(p + "/") for p in prefixes)


class Rule(NamedTuple):
    name: str
    applies: Callable[[str], bool]
    # Line-level check over (code, previous_code): returns a message if
    # the line violates the rule.
    check_line: Callable[[str, str], str | None]


RAW_MUTEX_RE = re.compile(
    r"std::(mutex|recursive_mutex|timed_mutex|shared_mutex|"
    r"condition_variable(_any)?|lock_guard|unique_lock|scoped_lock|"
    r"shared_lock)\b")

NONDET_RE = re.compile(
    r"(std::rand\b|\bsrand\s*\(|std::random_device\b|random_device\b|"
    r"system_clock\b|high_resolution_clock\b|\btime\s*\(\s*(nullptr|NULL|0)\s*\)|"
    r"\bgettimeofday\s*\(|\bclock\s*\(\s*\))")

UNORDERED_RE = re.compile(
    r"std::unordered_(map|set|multimap|multiset)\b")

# The `*` must appear inside the first template argument (before any `,`
# or the closing `>`): `std::map<Node*, int>` is pointer-keyed,
# `std::set<NodeId>*` is merely a pointer to a set.
POINTER_KEY_RE = re.compile(
    r"std::(map|set|multimap|multiset)\s*<\s*[^,>]*\*")

WALL_CLOCK_WAIT_RE = re.compile(
    r"(\b(sleep_for|sleep_until|wait_for|wait_until)\s*\(|steady_clock\b)")

# The raw POSIX durability calls. The negative lookbehind rejects method
# calls (`file.write`, `s->write`), identifiers that merely end in the
# token (`WriteAll` never matches: capital W), and re-matching the bare
# name inside an already-matched `::write`.
UNCHECKED_IO_RE = re.compile(
    r"(?<![\w.:>])(::\s*)?(write|pwrite|fsync|fdatasync)\s*\(")
# What an immediately-preceding context must end with for the call's
# result to count as consumed: an assignment, a return, an enclosing
# call/condition, a comparison, or a logical operator.
IO_CONSUMED_TAIL_RE = re.compile(
    r"(=|\breturn|\(|,|!|&&|\|\||\?|:|==|!=|<|>)\s*$")

NAKED_NEW_RE = re.compile(r"\bnew\b")
NAKED_DELETE_RE = re.compile(r"\bdelete\b(\s*\[\s*\])?")
SMART_WRAP_RE = re.compile(
    r"(make_unique|make_shared|unique_ptr|shared_ptr|weak_ptr)")
DELETED_FN_RE = re.compile(r"=\s*delete\b")


def check_raw_mutex(code: str, prev_code: str = "") -> str | None:
    m = RAW_MUTEX_RE.search(code)
    if m:
        return (f"raw std::{m.group(1)} in a concurrent layer; use the "
                "annotated rnt::Mutex/MutexLock/CondVar (common/mutex.h) so "
                "-Wthread-safety can check the discipline")
    return None


def check_nondeterminism(code: str, prev_code: str = "") -> str | None:
    m = NONDET_RE.search(code)
    if m:
        return (f"nondeterminism source `{m.group(0).strip()}` in a "
                "deterministic layer; derive everything from the seed "
                "(common/random.h) or a logical clock")
    return None


def check_unordered(code: str, prev_code: str = "") -> str | None:
    m = UNORDERED_RE.search(code)
    if m:
        return (f"std::unordered_{m.group(1)} in a deterministic layer; "
                "iteration order is hash-seed dependent and breaks replay — "
                "use std::map/std::set")
    return None


def check_pointer_keyed(code: str, prev_code: str = "") -> str | None:
    if POINTER_KEY_RE.search(code):
        return ("ordered container keyed by a raw pointer iterates in "
                "address order, which varies run to run; key by a stable id")
    return None


def check_wall_clock_wait(code: str, prev_code: str = "") -> str | None:
    m = WALL_CLOCK_WAIT_RE.search(code)
    if m:
        return (f"wall-clock wait `{m.group(0).strip().rstrip('(').strip()}` "
                "in a deterministic layer; timed waits pace the simulation "
                "on the OS scheduler — use the logical clock or spin "
                "counters (suppress only for liveness-only polls that "
                "cannot change a recorded outcome)")
    return None


def check_owning_new(code: str, prev_code: str = "") -> str | None:
    if DELETED_FN_RE.search(code):
        code = DELETED_FN_RE.sub(" ", code)
    # A smart-pointer wrap may sit on the previous line when the
    # expression wrapped (`return std::unique_ptr<T>(\n    new T(...))`).
    if SMART_WRAP_RE.search(code) or SMART_WRAP_RE.search(prev_code):
        return None
    if NAKED_NEW_RE.search(code):
        return ("naked `new` outside a smart-pointer expression; use "
                "std::make_unique/std::make_shared")
    if NAKED_DELETE_RE.search(code):
        return ("naked `delete`; ownership should live in a smart pointer")
    return None


def check_unchecked_io(code: str, prev_code: str = "") -> str | None:
    m = UNCHECKED_IO_RE.search(code)
    if m is None:
        return None
    prefix = code[:m.start()].rstrip()
    # Consumed on this line (`rc = ::fsync(fd)`, `if (::write(...) < 0)`),
    # or on the previous line when the assignment wrapped.
    if prefix:
        if IO_CONSUMED_TAIL_RE.search(prefix):
            return None
    elif IO_CONSUMED_TAIL_RE.search(prev_code.rstrip()):
        return None
    call = m.group(2)
    return (f"`{call}` with the result discarded in the durable layer; an "
            "ignored short write or failed sync silently drops durability — "
            "consume the result (assign/test/return a Status) or suppress "
            "per line where loss is provably benign")


RULES: list[Rule] = [
    Rule("raw-mutex",
         lambda rel: in_dirs(rel, CONCURRENT_DIRS) and
         rel not in RAW_MUTEX_EXEMPT,
         check_raw_mutex),
    Rule("nondeterminism",
         lambda rel: in_dirs(rel, DETERMINISTIC_DIRS),
         check_nondeterminism),
    Rule("unordered-container",
         lambda rel: in_dirs(rel, DETERMINISTIC_DIRS),
         check_unordered),
    Rule("pointer-keyed",
         lambda rel: in_dirs(rel, DETERMINISTIC_DIRS),
         check_pointer_keyed),
    Rule("wall-clock-wait",
         lambda rel: in_dirs(rel, DETERMINISTIC_DIRS),
         check_wall_clock_wait),
    Rule("owning-new",
         lambda rel: in_dirs(rel, ("src",)),
         check_owning_new),
    Rule("unchecked-io",
         lambda rel: in_dirs(rel, DURABLE_DIRS),
         check_unchecked_io),
]

MUTEX_DECL_RE = re.compile(r"^\s*(mutable\s+)?(rnt::)?Mutex\s+\w+")
ANNOTATION_RE = re.compile(
    r"\b(GUARDED_BY|PT_GUARDED_BY|REQUIRES|REQUIRES_SHARED|ACQUIRE|RELEASE|"
    r"EXCLUDES|ASSERT_CAPABILITY)\s*\(")


def suppressions_for(lines: list[Line], idx: int) -> set[str]:
    """Rules suppressed for lines[idx]: same-line or previous-line allow()."""
    allowed: set[str] = set()
    for source in (lines[idx].raw,
                   lines[idx - 1].raw if idx > 0 else ""):
        m = SUPPRESS_RE.search(source)
        if m:
            allowed.update(r.strip() for r in m.group(1).split(","))
    return allowed


def lint_text(text: str, relpath: str, display_path: str) -> list[Violation]:
    stripped = strip_comments_and_strings(text)
    raw_lines = text.split("\n")
    lines = [Line(i + 1, code, raw_lines[i] if i < len(raw_lines) else "")
             for i, code in enumerate(stripped)]
    active = [r for r in RULES if r.applies(relpath)]
    out: list[Violation] = []
    for i, ln in enumerate(lines):
        if not ln.code.strip():
            continue
        prev_code = lines[i - 1].code if i > 0 else ""
        allowed = None  # computed lazily: most lines are clean
        for rule in active:
            msg = rule.check_line(ln.code, prev_code)
            if msg is None:
                continue
            if allowed is None:
                allowed = suppressions_for(lines, i)
            if rule.name in allowed:
                continue
            out.append(Violation(display_path, ln.number, rule.name, msg))
    # File-level rule: a declared Mutex member without a single annotation
    # means the file opted out of the analysis silently.
    if (in_dirs(relpath, CONCURRENT_DIRS)
            and relpath not in RAW_MUTEX_EXEMPT
            and any(MUTEX_DECL_RE.match(ln.code) for ln in lines)
            and not any(ANNOTATION_RE.search(ln.code) for ln in lines)):
        decl = next(ln for ln in lines if MUTEX_DECL_RE.match(ln.code))
        if "unannotated-mutex" not in suppressions_for(
                lines, decl.number - 1):
            out.append(Violation(
                display_path, decl.number, "unannotated-mutex",
                "file declares an rnt::Mutex but never uses "
                "GUARDED_BY/REQUIRES/ACQUIRE; annotate what the mutex "
                "protects so -Wthread-safety covers it"))
    return out


def lint_file(path: pathlib.Path, root: pathlib.Path) -> list[Violation]:
    text = path.read_text(encoding="utf-8", errors="replace")
    relpath = path.relative_to(root).as_posix()
    # Fixtures pretend to live at their lint-as path.
    first = text.split("\n", 1)[0]
    m = LINT_AS_RE.match(first)
    if m:
        relpath = m.group(1)
    return lint_text(text, relpath, str(path))


def iter_sources(root: pathlib.Path):
    for sub in ("src",):
        base = root / sub
        if not base.is_dir():
            continue
        for p in sorted(base.rglob("*")):
            if p.suffix in SOURCE_SUFFIXES and p.is_file():
                yield p


def run_tree(root: pathlib.Path, paths: list[pathlib.Path]) -> int:
    targets = paths if paths else list(iter_sources(root))
    violations: list[Violation] = []
    for p in targets:
        violations.extend(lint_file(p, root))
    for v in violations:
        print(f"{v.path}:{v.line}: [{v.rule}] {v.message}")
    if violations:
        print(f"rnt-lint: {len(violations)} violation(s)", file=sys.stderr)
        return 1
    print(f"rnt-lint: clean ({len(targets)} files)")
    return 0


def run_selftest(root: pathlib.Path) -> int:
    fixtures = root / "tools" / "lint" / "fixtures"
    if not fixtures.is_dir():
        print(f"rnt-lint: no fixtures at {fixtures}", file=sys.stderr)
        return 2
    failures = 0
    cases = sorted(fixtures.glob("*.cc"))
    if not cases:
        print("rnt-lint: fixture directory is empty", file=sys.stderr)
        return 2
    for case in cases:
        got = lint_file(case, root)
        rules_hit = {v.rule for v in got}
        name = case.stem
        if name.startswith("bad_"):
            expected = name[len("bad_"):].replace("_", "-")
            if expected in rules_hit:
                print(f"PASS {case.name}: tripped [{expected}]")
            else:
                failures += 1
                print(f"FAIL {case.name}: expected [{expected}], got "
                      f"{sorted(rules_hit) or 'nothing'}", file=sys.stderr)
        else:  # clean fixtures must be accepted
            if got:
                failures += 1
                print(f"FAIL {case.name}: expected clean, got "
                      f"{sorted(rules_hit)}", file=sys.stderr)
                for v in got:
                    print(f"  {v.path}:{v.line}: [{v.rule}]", file=sys.stderr)
            else:
                print(f"PASS {case.name}: clean")
    if failures:
        print(f"rnt-lint selftest: {failures} failure(s)", file=sys.stderr)
        return 1
    print(f"rnt-lint selftest: all {len(cases)} fixtures behaved")
    return 0


def main(argv: list[str]) -> int:
    ap = argparse.ArgumentParser(prog="rnt_lint.py", description=__doc__,
                                 formatter_class=argparse.RawDescriptionHelpFormatter)
    ap.add_argument("--root", type=pathlib.Path,
                    default=pathlib.Path(__file__).resolve().parents[2],
                    help="repository root (default: two levels up)")
    ap.add_argument("--selftest", action="store_true",
                    help="lint the fixtures and verify each trips its rule")
    ap.add_argument("paths", nargs="*", type=pathlib.Path,
                    help="specific files to lint (default: all of src/)")
    args = ap.parse_args(argv)
    root = args.root.resolve()
    if args.selftest:
        return run_selftest(root)
    return run_tree(root, [p.resolve() for p in args.paths])


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
