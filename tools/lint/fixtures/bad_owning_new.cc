// lint-as: src/action/fixture_pool.cc
// Fixture: naked new/delete outside a smart-pointer expression must trip
// [owning-new].

namespace rnt::action {

struct Blob {
  int v = 0;
};

Blob* Make() { return new Blob(); }
void Drop(Blob* b) { delete b; }

}  // namespace rnt::action
