// lint-as: src/txn/fixture_engine.cc
// Fixture: raw std::mutex in a concurrent layer must trip [raw-mutex].
#include <mutex>

namespace rnt::txn {

class FixtureEngine {
 public:
  void Touch() {
    std::lock_guard<std::mutex> lk(mu_);
    ++count_;
  }

 private:
  std::mutex mu_;
  int count_ = 0;
};

}  // namespace rnt::txn
