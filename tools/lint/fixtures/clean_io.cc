// lint-as: src/storage/fixture_io_checked.cc
// Fixture: the sanctioned shapes of durable-layer I/O — result assigned,
// condition-tested, returned, or deliberately discarded behind a
// justified per-line suppression. Must lint clean.
#include <unistd.h>

#include "common/status.h"

namespace rnt::storage {

inline Status CheckedAppend(int fd, const char* p, unsigned long n) {
  const long wrote = ::write(fd, p, n);
  if (wrote < 0 || static_cast<unsigned long>(wrote) != n) {
    return Status::Internal("short write");
  }
  if (::fdatasync(fd) != 0) return Status::Internal("fdatasync failed");
  return Status::Ok();
}

inline void BestEffortTelemetry(int fd) {
  // Test-only ack byte; loss is acceptable and audited by the harness.
  (void)::fsync(fd);  // rnt-lint: allow(unchecked-io)
}

}  // namespace rnt::storage
