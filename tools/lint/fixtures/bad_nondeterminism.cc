// lint-as: src/sim/fixture_chaos.cc
// Fixture: wall-clock and libc randomness in a deterministic layer must
// trip [nondeterminism].
#include <chrono>
#include <cstdlib>

namespace rnt::sim {

int JitteredDelay() {
  auto now = std::chrono::system_clock::now();
  (void)now;
  return std::rand() % 7;
}

}  // namespace rnt::sim
