// lint-as: src/storage/fixture_io.cc
// Fixture: fire-and-forget POSIX I/O in the durable layer must trip
// [unchecked-io] — an ignored short write or failed fsync silently
// downgrades "durable" to "probably durable": the WAL reports commit
// while the bytes may be gone. A (void) cast is still a discard.
#include <unistd.h>

namespace rnt::storage {

inline void BadAppend(int fd, const void* p, unsigned long n) {
  ::write(fd, p, n);
}

inline void BadBarrier(int fd) {
  (void)::fsync(fd);
  fdatasync(fd);
}

}  // namespace rnt::storage
