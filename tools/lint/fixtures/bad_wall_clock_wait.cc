// lint-as: src/sim/fixture_wait.cc
// Fixture: timed waits in a deterministic layer must trip
// [wall-clock-wait] — sleeping paces the simulation on the OS scheduler,
// so retry counts and interleavings stop being functions of the seed.
#include <chrono>
#include <thread>

namespace rnt::sim {

inline void BadBackoff(int attempt) {
  std::this_thread::sleep_for(std::chrono::milliseconds(1 << attempt));
}

inline bool BadDeadline(std::chrono::steady_clock::time_point deadline) {
  return std::chrono::steady_clock::now() < deadline;
}

}  // namespace rnt::sim
