// lint-as: src/dist/fixture_registry.cc
// Fixture: hash containers in a deterministic layer must trip
// [unordered-container] (iteration order is hash-seed dependent).
#include <cstdint>
#include <unordered_map>

namespace rnt::dist {

struct FixtureRegistry {
  std::unordered_map<std::uint64_t, int> by_id;
};

}  // namespace rnt::dist
