// lint-as: src/sim/fixture_clean.cc
// Fixture: the idiomatic shape of a concurrent+deterministic component —
// annotated wrapper mutex, seeded randomness left to common/random.h,
// ordered containers keyed by stable ids, smart-pointer ownership, and a
// justified per-line suppression. Must lint clean.
#include <cstdint>
#include <map>
#include <memory>

#include "common/mutex.h"
#include "common/thread_annotations.h"

namespace rnt::sim {

class CleanComponent {
 public:
  void Record(std::uint64_t id, int v) {
    MutexLock lk(mu_);
    values_[id] = v;
  }

  // Strings and comments must not confuse the scanner: "std::mutex",
  // "new", 'x' — none of these are code.
  const char* Describe() const { return "uses std::mutex? never; new? no"; }

 private:
  mutable Mutex mu_;
  std::map<std::uint64_t, int> values_ GUARDED_BY(mu_);
  std::unique_ptr<int> owned_ = std::make_unique<int>(0);
};

// A lock-free handoff may own raw nodes when every path provably frees;
// the suppression documents it.
struct Node {
  int v;
  Node* next;
};
inline Node* Push(Node* head, int v) {
  return new Node{v, head};  // rnt-lint: allow(owning-new)
}

}  // namespace rnt::sim
