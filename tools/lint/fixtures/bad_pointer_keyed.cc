// lint-as: src/sim/fixture_sched.cc
// Fixture: a pointer-keyed ordered container in a deterministic layer
// iterates in address order — must trip [pointer-keyed].
#include <map>

namespace rnt::sim {

struct Node;

struct FixtureSched {
  std::map<Node*, int> priority;
};

}  // namespace rnt::sim
