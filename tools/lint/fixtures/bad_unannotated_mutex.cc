// lint-as: src/lock/fixture_table.h
// Fixture: an rnt::Mutex member with no GUARDED_BY/REQUIRES anywhere in
// the file silently opts out of the analysis — must trip
// [unannotated-mutex].
#include "common/mutex.h"

namespace rnt::lock {

class FixtureTable {
 public:
  void Bump() {
    MutexLock lk(mu_);
    ++count_;
  }

 private:
  mutable Mutex mu_;
  int count_ = 0;
};

}  // namespace rnt::lock
