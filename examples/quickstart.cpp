// Quickstart: nested transactions with partial rollback.
//
// Demonstrates the core API of the RNT library — begin a top-level
// transaction, spawn subtransactions, tolerate a failed child (the
// paper's "recovery block" style), and commit the survivors atomically.
//
// Build & run:
//   cmake -B build -G Ninja && cmake --build build
//   ./build/examples/quickstart

#include <cstdio>

#include "txn/transaction_manager.h"

using rnt::ObjectId;
using rnt::Value;

int main() {
  rnt::txn::TransactionManager engine;

  constexpr ObjectId kInventory = 0;
  constexpr ObjectId kOrders = 1;
  constexpr ObjectId kAuditLog = 2;

  // Seed some committed state.
  {
    auto setup = engine.Begin();
    setup->Put(kInventory, 100).ok();
    setup->Put(kOrders, 0).ok();
    if (!setup->Commit().ok()) {
      std::puts("setup failed");
      return 1;
    }
  }

  // One business transaction: place an order. Each step runs as a
  // subtransaction so a failure rolls back just that step.
  auto order = engine.Begin();

  // Step 1: decrement inventory.
  {
    auto step = order->BeginChild();
    if (!step.ok()) return 1;
    (*step)->Apply(kInventory, rnt::action::Update::Add(-1)).ok();
    if (!(*step)->Commit().ok()) return 1;
  }

  // Step 2: append to the audit log — but the first attempt "fails".
  // The beauty of nesting: aborting the child undoes *only* the child;
  // the inventory decrement from step 1 survives untouched.
  for (int attempt = 1;; ++attempt) {
    auto step = order->BeginChild();
    if (!step.ok()) return 1;
    (*step)->Apply(kAuditLog, rnt::action::Update::Add(1)).ok();
    if (attempt == 1) {
      std::printf("attempt %d: simulated failure, rolling back the step\n",
                  attempt);
      (*step)->Abort().ok();
      continue;  // recovery block: retry the step, not the transaction
    }
    if ((*step)->Commit().ok()) {
      std::printf("attempt %d: audit step committed\n", attempt);
      break;
    }
  }

  // Step 3: record the order.
  {
    auto step = order->BeginChild();
    if (!step.ok()) return 1;
    (*step)->Apply(kOrders, rnt::action::Update::Add(1)).ok();
    if (!(*step)->Commit().ok()) return 1;
  }

  if (!order->Commit().ok()) {
    std::puts("order transaction failed");
    return 1;
  }

  std::printf("committed: inventory=%lld orders=%lld audit=%lld\n",
              static_cast<long long>(engine.ReadCommitted(kInventory)),
              static_cast<long long>(engine.ReadCommitted(kOrders)),
              static_cast<long long>(engine.ReadCommitted(kAuditLog)));

  auto stats = engine.stats();
  std::printf("engine stats: %llu begun, %llu committed, %llu aborted\n",
              static_cast<unsigned long long>(stats.begun),
              static_cast<unsigned long long>(stats.committed),
              static_cast<unsigned long long>(stats.aborted));
  return 0;
}
