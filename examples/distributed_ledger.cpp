// Distributed ledger: runs a nested-transaction program on the paper's
// level-5 *distributed algebra* (k nodes + message buffer) via the
// deterministic DFS driver, and shows the knowledge-propagation cost of
// lazy vs eager summary shipping.
//
// The program: per "branch office" (node), a top-level transaction posts
// entries to its local ledger object and to a shared settlement object
// homed at node 0 — so locks and action summaries must flow between
// nodes exactly as §9 of the paper prescribes.
//
//   ./build/examples/distributed_ledger [nodes] [txns_per_node]

#include <cstdio>
#include <cstdlib>

#include "sim/dist_driver.h"

using rnt::ActionId;
using rnt::NodeId;
using rnt::ObjectId;

int main(int argc, char** argv) {
  NodeId nodes = argc > 1 ? static_cast<NodeId>(std::atoi(argv[1])) : 4;
  int txns_per_node = argc > 2 ? std::atoi(argv[2]) : 3;

  // Build the program: object n = node n's ledger; object `nodes` = the
  // shared settlement account, homed at node 0.
  rnt::action::ActionRegistry reg;
  const ObjectId settlement = nodes;
  std::vector<NodeId> action_home;  // indexed by ActionId
  action_home.resize(1);            // root placeholder
  auto add_action = [&](ActionId parent, NodeId home) {
    ActionId a = reg.NewAction(parent);
    action_home.resize(a + 1);
    action_home[a] = home;
    return a;
  };
  for (NodeId n = 0; n < nodes; ++n) {
    for (int i = 0; i < txns_per_node; ++i) {
      ActionId top = add_action(rnt::kRootAction, n);
      // Child 1: post to the local ledger.
      ActionId local = add_action(top, n);
      reg.NewAccess(local, n, rnt::action::Update::Add(10 + i));
      action_home.resize(reg.size());
      // Child 2: update the shared settlement total.
      ActionId settle = add_action(top, n);
      reg.NewAccess(settle, settlement, rnt::action::Update::Add(10 + i));
      action_home.resize(reg.size());
    }
  }

  rnt::dist::Topology topo(
      &reg, nodes,
      [&](ObjectId x) { return x == settlement ? 0u : static_cast<NodeId>(x); },
      [&](ActionId a) { return action_home[a]; });
  rnt::dist::DistAlgebra alg(&topo);

  std::printf("distributed ledger: %u nodes, %d txns/node\n", nodes,
              txns_per_node);
  for (auto prop : {rnt::sim::Propagation::kLazy,
                    rnt::sim::Propagation::kEager}) {
    rnt::sim::DriverOptions opt;
    opt.propagation = prop;
    auto run = rnt::sim::RunProgram(alg, opt);
    if (!run.ok()) {
      std::printf("driver failed: %s\n", run.status().ToString().c_str());
      return 1;
    }
    std::printf(
      "  [%s] events=%llu messages=%llu summary-entries=%llu "
      "performs=%llu commits=%llu releases=%llu\n",
      prop == rnt::sim::Propagation::kLazy ? "lazy " : "eager",
      static_cast<unsigned long long>(run->stats.node_events),
      static_cast<unsigned long long>(run->stats.messages),
      static_cast<unsigned long long>(run->stats.summary_entries),
      static_cast<unsigned long long>(run->stats.performs),
      static_cast<unsigned long long>(run->stats.commits),
      static_cast<unsigned long long>(run->stats.releases));
    if (prop == rnt::sim::Propagation::kLazy) {
      // Settlement total: every transaction added (10 + i).
      rnt::Value total =
          run->final_state.nodes[0].vmap.Get(settlement, rnt::kRootAction);
      std::printf("  settlement total at root after drain: %lld\n",
                  static_cast<long long>(total));
    }
  }
  return 0;
}
