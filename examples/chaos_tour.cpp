// Chaos tour: the same distributed-ledger program executed twice on the
// distributed algebra ℬ — once on a perfect network, once under a
// deterministic fault plan that drops 30% of messages, duplicates and
// delays others, crashes two nodes mid-run (wiping their volatile
// summaries), and partitions a link for twenty rounds.
//
// The point of the tour: the *outcome* is identical. Crashed nodes
// recover by replaying their buffer M_i ("all information ever sent
// toward i", §9.1), dropped knowledge is re-requested under backoff, and
// the final tree is serializable and orphan-consistent either way — the
// faults only show up in the cost counters.
//
//   ./build/examples/chaos_tour [seed]

#include <cstdio>
#include <cstdlib>

#include "aat/aat.h"
#include "orphan/orphan.h"
#include "sim/chaos_driver.h"

using rnt::ActionId;
using rnt::NodeId;
using rnt::ObjectId;

namespace {

constexpr NodeId kNodes = 3;
constexpr ObjectId kObjects = 4;

// Three branch offices, each posting to a local ledger and to a shared
// settlement object homed at node 0 — knowledge must cross nodes.
void BuildProgram(rnt::action::ActionRegistry& reg) {
  const ObjectId settlement = 0;
  for (NodeId n = 0; n < kNodes; ++n) {
    ActionId top = reg.NewAction(rnt::kRootAction);
    ActionId local = reg.NewAction(top);
    reg.NewAccess(local, static_cast<ObjectId>(1 + n),
                  rnt::action::Update::Add(100 + n));
    ActionId settle = reg.NewAction(top);
    reg.NewAccess(settle, settlement, rnt::action::Update::Add(100 + n));
  }
}

void PrintRun(const char* label, const rnt::sim::ChaosRun& run) {
  const auto& s = run.stats;
  std::printf(
      "  [%s] rounds=%d messages=%llu performs=%llu commits=%llu\n"
      "           dropped=%llu duplicated=%llu delayed=%llu retries=%llu\n"
      "           crashes=%llu recovered=%llu timeout_aborts=%llu\n",
      label, s.rounds, static_cast<unsigned long long>(s.messages),
      static_cast<unsigned long long>(s.performs),
      static_cast<unsigned long long>(s.commits),
      static_cast<unsigned long long>(s.dropped_msgs),
      static_cast<unsigned long long>(s.duplicated_msgs),
      static_cast<unsigned long long>(s.delayed_msgs),
      static_cast<unsigned long long>(s.retries),
      static_cast<unsigned long long>(s.crashes),
      static_cast<unsigned long long>(s.recovered_nodes),
      static_cast<unsigned long long>(s.timeout_aborts));
  bool serial = rnt::aat::IsPermDataSerializable(run.abstract.tree);
  bool orphan_ok =
      rnt::orphan::CheckOrphanViewConsistency(run.abstract.tree).ok();
  std::printf("           complete=%s serializable=%s orphan-consistent=%s\n",
              run.complete ? "yes" : "NO", serial ? "yes" : "NO",
              orphan_ok ? "yes" : "NO");
  for (ObjectId x = 0; x < kObjects; ++x) {
    NodeId home = x % kNodes;  // RoundRobin placement, as below
    rnt::Value v = run.final_state.nodes[home].vmap.Get(x, rnt::kRootAction);
    std::printf("           object %u @ node %u = %lld\n", x, home,
                static_cast<long long>(v));
  }
}

}  // namespace

int main(int argc, char** argv) {
  std::uint64_t seed = argc > 1
                           ? static_cast<std::uint64_t>(std::atoll(argv[1]))
                           : 42;

  rnt::action::ActionRegistry reg;
  BuildProgram(reg);
  rnt::dist::Topology topo = rnt::dist::Topology::RoundRobin(&reg, kNodes);
  rnt::dist::DistAlgebra alg(&topo);

  std::printf("chaos tour: %u nodes, seed %llu\n", kNodes,
              static_cast<unsigned long long>(seed));

  // Leg 1: perfect network (the default FaultPlan injects nothing).
  rnt::sim::ChaosOptions calm;
  calm.check_invariants = true;
  auto baseline = rnt::sim::ChaosRunProgram(alg, calm);
  if (!baseline.ok()) {
    std::printf("baseline failed: %s\n", baseline.status().ToString().c_str());
    return 1;
  }
  std::printf("leg 1 — calm seas:\n");
  PrintRun("calm ", *baseline);

  // Leg 2: the same program through the storm. Every fault below is
  // scheduled deterministically from the seed; rerunning with the same
  // seed reproduces the run bit-for-bit.
  rnt::sim::ChaosOptions stormy;
  stormy.check_invariants = true;
  stormy.plan.seed = seed;
  stormy.plan.drop_prob = 0.3;
  stormy.plan.dup_prob = 0.25;
  stormy.plan.delay_prob = 0.25;
  stormy.plan.max_delay_rounds = 3;
  stormy.plan.crashes.push_back(
      rnt::faults::CrashSpec{0, /*round=*/8, /*down_for=*/4});
  stormy.plan.crashes.push_back(
      rnt::faults::CrashSpec{1, /*round=*/20, /*down_for=*/5});
  stormy.plan.partitions.push_back(
      rnt::faults::PartitionSpec{0, 1, /*from_round=*/5, /*until_round=*/25});
  auto storm = rnt::sim::ChaosRunProgram(alg, stormy);
  if (!storm.ok()) {
    std::printf("storm failed: %s\n", storm.status().ToString().c_str());
    return 1;
  }
  std::printf("leg 2 — message chaos, two crashes, one partition:\n");
  PrintRun("storm", *storm);

  // Leg 3: the same storm on the *multi-threaded* runtime. Nodes are now
  // real threads; the crash kills node 0's thread mid-loop (its volatile
  // summary wiped, the durable retention buffer M_0 intact) and the
  // supervisor rebirths it with one legal Receive. Crash triggers and the
  // partition window run on the logical stamp clock — the round numbers
  // above are reinterpreted in stamp units. The run is judged post-hoc:
  // the merged log replays through the Theorem 9 checker like any other.
  rnt::sim::ChaosOptions parallel_storm = stormy;
  parallel_storm.concurrent_buffer = true;
  auto pstorm = rnt::sim::ChaosRunProgram(alg, parallel_storm);
  if (!pstorm.ok()) {
    std::printf("parallel storm failed: %s\n",
                pstorm.status().ToString().c_str());
    return 1;
  }
  std::printf("leg 3 — the same storm, one thread per node:\n");
  PrintRun("storm∥", *pstorm);
  rnt::txn::FaultStats fstats = rnt::sim::ToFaultStats(pstorm->stats);
  std::printf("           fault record: %s\n", fstats.ToString().c_str());
  std::printf("           stall diagnosis: %s\n",
              pstorm->stalls.empty() ? "(none — every obligation resolved)"
                                     : pstorm->stalls.ToString().c_str());

  bool same = true;
  for (ObjectId x = 0; x < kObjects; ++x) {
    NodeId home = x % kNodes;
    rnt::Value base_v =
        baseline->final_state.nodes[home].vmap.Get(x, rnt::kRootAction);
    same = same &&
           base_v == storm->final_state.nodes[home].vmap.Get(
                         x, rnt::kRootAction) &&
           base_v == pstorm->final_state.nodes[home].vmap.Get(
                         x, rnt::kRootAction);
  }
  std::printf("verdict: final object values %s across the three legs\n",
              same ? "IDENTICAL" : "DIFFER");
  return same && storm->complete && pstorm->complete ? 0 : 1;
}
