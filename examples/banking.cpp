// Banking: concurrent transfers with failure injection, comparing the
// nested Moss engine against the flat strict-2PL baseline.
//
// Each transfer debits one account and credits another, each leg inside
// its own subtransaction. A configurable fraction of legs "fail"; the
// nested engine retries just the failed leg, the flat engine must restart
// the whole transfer. The invariant — total balance conservation — is
// verified at the end for both engines.
//
//   ./build/examples/banking [workers] [transfers_per_worker] [fail_prob]

#include <cstdio>
#include <cstdlib>

#include "baseline/flat_engine.h"
#include "txn/transaction_manager.h"
#include "workload/workload.h"

namespace {

void RunOn(rnt::txn::Engine& engine, const rnt::workload::BankingParams& p,
           int workers, int transfers) {
  if (!rnt::workload::SetupBanking(engine, p).ok()) {
    std::printf("  [%s] setup failed\n", engine.name().c_str());
    return;
  }
  rnt::workload::BankingResult r =
      rnt::workload::RunBanking(engine, p, workers, transfers, /*seed=*/2024);
  bool conserved = rnt::workload::VerifyBankingTotal(engine, p);
  std::printf(
      "  [%-10s] committed=%llu failed=%llu child_retries=%llu "
      "%.3fs  total %s\n",
      engine.name().c_str(),
      static_cast<unsigned long long>(r.transfers_committed),
      static_cast<unsigned long long>(r.transfers_failed),
      static_cast<unsigned long long>(r.child_retries), r.elapsed_seconds,
      conserved ? "CONSERVED" : "VIOLATED!");
}

}  // namespace

int main(int argc, char** argv) {
  int workers = argc > 1 ? std::atoi(argv[1]) : 4;
  int transfers = argc > 2 ? std::atoi(argv[2]) : 200;
  double fail_prob = argc > 3 ? std::atof(argv[3]) : 0.2;

  rnt::workload::BankingParams p;
  p.num_accounts = 32;
  p.initial_balance = 1000;
  p.child_failure_prob = fail_prob;

  std::printf("banking: %d workers x %d transfers, %.0f%% leg failures\n",
              workers, transfers, fail_prob * 100);

  {
    rnt::txn::TransactionManager nested;
    RunOn(nested, p, workers, transfers);
  }
  {
    rnt::baseline::FlatEngine flat;
    RunOn(flat, p, workers, transfers);
  }
  return 0;
}
