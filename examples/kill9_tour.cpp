// Kill -9 tour: the durable engine's whole crash story in one run.
//
// A forked child hammers a storage::DurableEngine with concurrent nested
// transactions — every thread bumps its own marker object per commit and
// acks to a side file only *after* the group-commit barrier — until a
// scheduled SIGKILL drops it mid-stream (no destructors, no flush; the
// page cache is all that survives). The parent then reopens the
// directory: ARIES-style restart recovery redoes the durable prefix,
// rolls back every in-flight subtransaction tree, and hands back the
// recovered history, which is fed through txn::ReplayTrace and the
// Theorem 9 checker exactly like a live run. Twice, over one directory,
// so the second crash compounds on the first recovery's checkpoint.
//
// What to watch for in the output:
//   * recovered marker >= acked ops, per thread (nothing acked is lost);
//   * undone >= 2 every cycle (the harness's lingerer tree is rolled
//     back, in-flight work never leaks into the committed store);
//   * "Theorem 9: ACCEPTED" (the recovered state is what some
//     serializable execution of the surviving transactions computes).
//
//   ./build/examples/kill9_tour [dir]   (default: a fresh dir in /tmp)
//
// EXPERIMENTS.md E13 has the measured recovery/throughput numbers.

#include <cstdio>
#include <cstdlib>
#include <string>

#include "aat/aat.h"
#include "sim/process_chaos.h"
#include "txn/trace.h"

using rnt::ObjectId;
using rnt::Value;

namespace {

bool AuditCycle(const rnt::sim::KillRecoverReport& report,
                const rnt::sim::DurableWorkloadOptions& opts, int cycle) {
  std::printf("cycle %d: child %s\n", cycle,
              report.killed ? "killed by SIGKILL" : "exited cleanly");
  const auto& rec = report.recovery;
  std::printf(
      "  recovery: scanned=%llu redone=%llu committed_top=%llu undone=%llu "
      "torn_tails=%llu\n",
      static_cast<unsigned long long>(rec.records_scanned),
      static_cast<unsigned long long>(rec.redone_events),
      static_cast<unsigned long long>(rec.committed_top),
      static_cast<unsigned long long>(rec.undone_txns),
      static_cast<unsigned long long>(rec.torn_tails));
  bool ok = true;
  for (int t = 0; t < opts.threads; ++t) {
    const ObjectId marker = opts.marker_base + static_cast<ObjectId>(t);
    const auto it = rec.store.find(marker);
    const Value recovered = it == rec.store.end() ? 0 : it->second;
    const auto acked = report.acked[static_cast<std::size_t>(t)];
    const bool held = recovered >= static_cast<Value>(acked);
    if (!held) ok = false;
    std::printf("  thread %d: acked=%llu recovered_marker=%lld  %s\n", t,
                static_cast<unsigned long long>(acked),
                static_cast<long long>(recovered),
                held ? "ok" : "ACKED WORK LOST");
  }
  auto replayed = rnt::txn::ReplayTrace(rec.history);
  if (!replayed.ok()) {
    std::printf("  replay FAILED: %s\n",
                replayed.status().ToString().c_str());
    return false;
  }
  const bool accepted = rnt::aat::IsPermDataSerializableRw(replayed->tree);
  std::printf("  Theorem 9: %s\n", accepted ? "ACCEPTED" : "REJECTED");
  return ok && accepted;
}

}  // namespace

int main(int argc, char** argv) {
  std::string dir;
  if (argc > 1) {
    dir = argv[1];
  } else {
    char tmpl[] = "/tmp/rnt_kill9_XXXXXX";
    if (::mkdtemp(tmpl) == nullptr) {
      std::fprintf(stderr, "mkdtemp failed\n");
      return 1;
    }
    dir = tmpl;
  }
  std::printf("storage dir: %s\n\n", dir.c_str());

  rnt::sim::DurableWorkloadOptions opts;
  opts.dir = dir;
  opts.threads = 4;
  opts.ops_per_thread = 100000;  // far past the trigger: the kill wins
  bool all_ok = true;
  for (int cycle = 0; cycle < 2; ++cycle) {
    opts.seed = 42 + static_cast<std::uint64_t>(cycle);
    opts.crash.after_ops = 30 + 17 * cycle;
    auto report = rnt::sim::RunKillRecoverCycle(opts);
    if (!report.ok()) {
      std::fprintf(stderr, "cycle %d failed: %s\n", cycle,
                   report.status().ToString().c_str());
      return 1;
    }
    if (!AuditCycle(*report, opts, cycle)) all_ok = false;
    std::printf("\n");
  }
  std::printf("%s\n", all_ok ? "both crashes recovered; nothing acked was "
                               "lost, nothing in-flight leaked"
                             : "AUDIT FAILED");
  return all_ok ? 0 : 1;
}
