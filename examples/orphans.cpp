// Orphans: what a subtransaction of a failed transaction may observe.
//
// Walks one scenario through three semantic regimes:
//   1. the paper's base level-2 model, where an orphan may see *anything*
//      (precondition (d13) only binds live accesses);
//   2. the orphan-safe specification (Argus's goal: orphans see views
//      realizable in some execution where they are not orphans);
//   3. Moss's locking (level 4), which — as our tests show — satisfies
//      the orphan-safe spec without any extra machinery.
//
// Finishes by rendering the resulting action tree as Graphviz DOT.
//
//   ./build/examples/orphans

#include <cstdio>

#include "aat/aat_algebra.h"
#include "action/render.h"
#include "orphan/orphan.h"
#include "valuemap/value_map_algebra.h"

using namespace rnt;  // example code; the library itself never does this

int main() {
  action::ActionRegistry reg;
  ActionId bank = reg.NewAction(kRootAction);
  ActionId audit = reg.NewAction(bank);
  ActionId probe = reg.NewAccess(audit, /*object=*/0, action::Update::Read());
  ActionId other = reg.NewAction(kRootAction);
  ActionId deposit = reg.NewAccess(other, 0, action::Update::Add(100));

  using algebra::Abort;
  using algebra::Commit;
  using algebra::Create;
  using algebra::Perform;
  using algebra::TreeEvent;

  // Shared prefix: everything is created, the deposit commits to the
  // top, and then `bank` aborts — orphaning the still-running `audit`.
  std::vector<TreeEvent> prefix{
      Create{bank}, Create{audit}, Create{probe},  Create{other},
      Create{deposit}, Perform{deposit, 0},        Commit{other},
      Abort{bank},
  };

  std::puts("regime 1: the base level-2 model (A')");
  {
    aat::AatAlgebra alg(&reg);
    auto s = alg.Initial();
    for (const auto& e : prefix) alg.Apply(s, e);
    std::printf("  orphaned probe may read 123456: %s\n",
                alg.Defined(s, TreeEvent{Perform{probe, 123456}})
                    ? "ALLOWED (orphans unconstrained)"
                    : "forbidden");
  }

  std::puts("regime 2: the orphan-safe specification");
  {
    orphan::OrphanSafeAatAlgebra alg(&reg);
    auto s = alg.Initial();
    for (const auto& e : prefix) alg.Apply(s, e);
    std::printf("  orphaned probe may read 123456: %s\n",
                alg.Defined(s, TreeEvent{Perform{probe, 123456}})
                    ? "allowed"
                    : "FORBIDDEN (not realizable in any execution)");
    std::printf("  orphaned probe may read 100:    %s\n",
                alg.Defined(s, TreeEvent{Perform{probe, 100}})
                    ? "ALLOWED (the committed deposit is visible)"
                    : "forbidden");
    std::printf("  orphaned probe may read 0:      %s\n",
                alg.Defined(s, TreeEvent{Perform{probe, 0}})
                    ? "ALLOWED (a world where the deposit aborted)"
                    : "forbidden");
  }

  std::puts("regime 3: Moss's locking (level 4) — consistency for free");
  {
    valuemap::ValueMapAlgebra alg(&reg);
    auto s = alg.Initial();
    using algebra::LockEvent;
    using algebra::ReleaseLock;
    for (LockEvent e : std::vector<LockEvent>{
             Create{bank}, Create{audit}, Create{probe}, Create{other},
             Create{deposit}, Perform{deposit, 0},
             ReleaseLock{deposit, 0}, Commit{other}, ReleaseLock{other, 0},
             Abort{bank}}) {
      if (!alg.Defined(s, e)) {
        std::puts("  unexpected: prefix rejected");
        return 1;
      }
      alg.Apply(s, e);
    }
    std::printf("  orphaned probe may read 123456: %s\n",
                alg.Defined(s, LockEvent{Perform{probe, 123456}})
                    ? "allowed"
                    : "FORBIDDEN by (d13)");
    std::printf("  orphaned probe must read 100:   %s\n",
                alg.Defined(s, LockEvent{Perform{probe, 100}})
                    ? "ALLOWED (the principal value)"
                    : "forbidden");
    alg.Apply(s, LockEvent{Perform{probe, 100}});
    Status st = orphan::CheckOrphanViewConsistency(s.tree);
    std::printf("  orphan-view consistency check:  %s\n",
                st.ToString().c_str());

    std::puts("\nfinal action tree (indented):");
    std::fputs(action::ToIndentedString(s.tree).c_str(), stdout);
    std::puts("\nGraphviz (paste into `dot -Tsvg`):");
    std::fputs(action::ToDot(s.tree).c_str(), stdout);
  }
  return 0;
}
