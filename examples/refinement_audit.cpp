// Refinement audit: the paper's proof stack, executed.
//
// Generates a random valid computation of the distributed algebra ℬ,
// then walks it down the four simulation mappings of the paper —
//   ℬ →(h‴) 𝒜‴ →(h″) 𝒜″ →(h′) 𝒜′ →(h) 𝒜
// — replaying the mapped event sequence at every level, checking the
// paper's invariants (eval(W) = V, i-consistency, the serializability
// constraint C), and printing what each level sees. This is Theorem 29
// as a runnable artifact.
//
//   ./build/examples/refinement_audit [seed]

#include <cstdio>
#include <cstdlib>

#include "aat/aat_algebra.h"
#include "algebra/algebra.h"
#include "dist/dist_algebra.h"
#include "spec/spec_algebra.h"
#include "valuemap/value_map_algebra.h"
#include "versionmap/version_map_algebra.h"

using namespace rnt;  // example code; the library itself never does this

int main(int argc, char** argv) {
  std::uint64_t seed = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 7;
  Rng rng(seed);

  // A small universal action tree: two top-level transactions, each with
  // a subtransaction and accesses to two shared objects.
  action::ActionRegistry reg;
  for (int t = 0; t < 2; ++t) {
    ActionId top = reg.NewAction(kRootAction);
    ActionId sub = reg.NewAction(top);
    reg.NewAccess(sub, 0, action::Update::Add(1 + t));
    reg.NewAccess(sub, 1, action::Update::MulAdd(2, t));
    reg.NewAccess(top, 0, action::Update::Read());
  }

  // Level 5: random valid distributed computation.
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 2);
  dist::DistAlgebra dist_alg(&topo);
  dist::DistEventCandidates cand(&dist_alg, seed);
  auto dist_run = algebra::RandomRun(dist_alg, std::ref(cand), rng, 120);
  std::printf("level 5 (B, distributed): %zu events valid on %u nodes\n",
              dist_run.events.size(), topo.k());

  // h''' : B -> A''' (drop node indices; send/receive become Λ).
  auto lock_events = algebra::MapSequence<algebra::LockEvent>(
      std::span<const dist::DistEvent>(dist_run.events),
      dist::DistToValueEvent);
  valuemap::ValueMapAlgebra val_alg(&reg);
  auto val = algebra::Run(val_alg,
                          std::span<const algebra::LockEvent>(lock_events));
  if (!val.has_value()) {
    std::puts("REFINEMENT VIOLATION at level 4!");
    return 1;
  }
  std::printf("level 4 (A''', value maps): %zu events valid\n",
              lock_events.size());
  Status lc = dist::CheckLocalConsistency(dist_alg, dist_run.state, *val);
  std::printf("  local mappings h_i: %s\n", lc.ToString().c_str());

  // h'' : A''' -> A'' (same events; witness version map W, eval(W)=V).
  versionmap::VersionMapAlgebra vm_alg(&reg);
  auto vm = algebra::Run(vm_alg,
                         std::span<const algebra::LockEvent>(lock_events));
  if (!vm.has_value()) {
    std::puts("REFINEMENT VIOLATION at level 3!");
    return 1;
  }
  bool eval_ok = valuemap::Eval(vm->vmap, reg) == val->vmap;
  std::printf("level 3 (A'', version maps): valid; eval(W) == V: %s\n",
              eval_ok ? "yes" : "NO");
  Status wf = vm->vmap.CheckWellFormed(reg);
  Status l16 = versionmap::CheckLemma16(*vm);
  std::printf("  well-formed: %s; Lemma 16: %s\n", wf.ToString().c_str(),
              l16.ToString().c_str());

  // h' : A'' -> A' (drop lock events).
  auto tree_events = algebra::MapSequence<algebra::TreeEvent>(
      std::span<const algebra::LockEvent>(lock_events),
      algebra::LockToTreeEvent);
  aat::AatAlgebra aat_alg(&reg);
  auto aat_state =
      algebra::Run(aat_alg, std::span<const algebra::TreeEvent>(tree_events));
  if (!aat_state.has_value()) {
    std::puts("REFINEMENT VIOLATION at level 2!");
    return 1;
  }
  Status l10 = aat::CheckLemma10(*aat_state);
  std::printf("level 2 (A', AATs): %zu events valid; Lemma 10: %s\n",
              tree_events.size(), l10.ToString().c_str());
  std::printf("  Theorem 9 check: perm(T) data-serializable: %s\n",
              aat::IsPermDataSerializable(*aat_state) ? "yes" : "NO");

  // h : A' -> A with the serializability constraint C enforced by the
  // exhaustive definitional oracle.
  spec::SpecAlgebra spec_alg(&reg);
  auto spec_state =
      algebra::Run(spec_alg, std::span<const algebra::TreeEvent>(tree_events));
  if (!spec_state.has_value()) {
    std::puts("REFINEMENT VIOLATION at level 1!");
    return 1;
  }
  std::printf(
      "level 1 (A, spec + constraint C): valid; oracle accepts perm(T): "
      "%s\n",
      action::IsPermSerializable(*spec_state) ? "yes" : "NO");

  std::printf("\nfinal action tree (%zu vertices):\n%s",
              spec_state->Vertices().size(), spec_state->ToString().c_str());
  std::puts("Theorem 29 audit complete: the distributed run simulates the "
            "serializable spec.");
  return 0;
}
