#ifndef RNT_VERSIONMAP_VERSION_MAP_ALGEBRA_H_
#define RNT_VERSIONMAP_VERSION_MAP_ALGEBRA_H_

#include <vector>

#include "aat/aat.h"
#include "algebra/algebra.h"
#include "algebra/events.h"
#include "common/status.h"
#include "versionmap/version_map.h"

namespace rnt::versionmap {

/// State of the level-3 algebra 𝒜″: an AAT plus a version map (paper §7.2).
struct VmState {
  aat::Aat tree;
  VersionMap vmap;
};

/// Level 3: the locking-style algebra that *retains information* — each
/// lock holder keeps the whole sequence of accesses available to it
/// (paper §7). Events:
///
///  (a)-(c) create/commit/abort — identical to 𝒜′;
///  (d) perform_{A,u} — requires that every current lock holder for
///      object(A) is a *proper ancestor* of A (d12) and that u is the
///      principal value (d13); effect grants A the lock with sequence
///      V(x, principal) ∘ ⟨A⟩ (d24);
///  (e) release-lock_{A,x} — a committed holder passes its sequence to
///      its parent (lock inheritance);
///  (f) lose-lock_{A,x} — a dead holder's lock is discarded.
///
/// This level is where "two-phase"-ness lives: a lock moves only upward
/// (to the parent on commit) or away (on abort), never sideways, so the
/// abstract preconditions of 𝒜′ are met — Lemma 17.
class VersionMapAlgebra {
 public:
  using State = VmState;
  using Event = algebra::LockEvent;

  explicit VersionMapAlgebra(const action::ActionRegistry* registry)
      : registry_(registry) {}

  State Initial() const {
    return VmState{action::ActionTree(registry_), VersionMap()};
  }

  bool Defined(const State& s, const Event& e) const;
  void Apply(State& s, const Event& e) const;

  const action::ActionRegistry& registry() const { return *registry_; }

 private:
  const action::ActionRegistry* registry_;
};

static_assert(algebra::EventStateAlgebra<VersionMapAlgebra>);

/// Lemma 16 invariants of computable 𝒜″ states:
///  (a) V(x, A) defined => A ∈ vertices_T (or A = U);
///  (b) every live datastep B on x appears in V(x, A) for some ancestor A
///      of B with V(x, A) defined;
///  (c) every element of a defined V(x, A) is visible to A;
///  (d) the elements of V(x, A) are in data_T order.
Status CheckLemma16(const VmState& s);

/// Candidate generator for random exploration of 𝒜″: tree events, the
/// principal-value perform for each active access, release-lock for
/// committed holders, lose-lock for dead holders.
std::vector<algebra::LockEvent> EventCandidates(const VmState& s);

}  // namespace rnt::versionmap

#endif  // RNT_VERSIONMAP_VERSION_MAP_ALGEBRA_H_
