#include "versionmap/version_map.h"

#include <sstream>

#include "action/serializability.h"

namespace rnt::versionmap {

ActionId VersionMap::PrincipalAction(ObjectId x,
                                     const action::ActionRegistry& reg) const {
  ActionId best = kRootAction;
  std::uint32_t best_depth = 0;
  auto it = objects_.find(x);
  if (it != objects_.end()) {
    for (const auto& [a, seq] : it->second) {
      if (reg.Depth(a) >= best_depth) {
        best = a;
        best_depth = reg.Depth(a);
      }
    }
  }
  return best;
}

Value VersionMap::PrincipalValue(ObjectId x,
                                 const action::ActionRegistry& reg) const {
  std::vector<ActionId> seq = Get(x, PrincipalAction(x, reg));
  return action::ResultOf(reg, x, seq);
}

std::vector<ObjectId> VersionMap::TouchedObjects() const {
  std::vector<ObjectId> out;
  out.reserve(objects_.size());
  for (const auto& [x, entry] : objects_) out.push_back(x);
  return out;
}

Status VersionMap::CheckWellFormed(const action::ActionRegistry& reg) const {
  for (const auto& [x, entry] : objects_) {
    for (const auto& [a, seq] : entry) {
      // Every element is an access to x.
      for (ActionId e : seq) {
        if (!reg.Valid(e) || !reg.IsAccess(e) || reg.Object(e) != x) {
          std::ostringstream os;
          os << "V(x" << x << ", " << a << ") contains non-access-to-x " << e;
          return Status::Internal(os.str());
        }
      }
    }
    // Chain property and extension property, pairwise (including the
    // implicit root entry, which every explicit sequence must extend).
    std::vector<ActionId> holders;
    for (const auto& [a, seq] : entry) holders.push_back(a);
    for (std::size_t i = 0; i < holders.size(); ++i) {
      for (std::size_t j = i + 1; j < holders.size(); ++j) {
        ActionId a = holders[i], b = holders[j];
        if (!reg.IsAncestor(a, b) && !reg.IsAncestor(b, a)) {
          std::ostringstream os;
          os << "V holders " << a << " and " << b << " for x" << x
             << " not on one chain";
          return Status::Internal(os.str());
        }
        const ActionId anc = reg.IsAncestor(a, b) ? a : b;
        const ActionId desc = anc == a ? b : a;
        const auto& anc_seq = entry.at(anc);
        const auto& desc_seq = entry.at(desc);
        if (desc_seq.size() < anc_seq.size() ||
            !std::equal(anc_seq.begin(), anc_seq.end(), desc_seq.begin())) {
          std::ostringstream os;
          os << "V(x" << x << ", " << desc << ") does not extend V(x" << x
             << ", " << anc << ")";
          return Status::Internal(os.str());
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace rnt::versionmap
