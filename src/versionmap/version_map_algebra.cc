#include "versionmap/version_map_algebra.h"

#include <sstream>

namespace rnt::versionmap {

using algebra::Abort;
using algebra::Commit;
using algebra::Create;
using algebra::LoseLock;
using algebra::Perform;
using algebra::ReleaseLock;

bool VersionMapAlgebra::Defined(const State& s, const Event& e) const {
  if (const auto* c = std::get_if<Create>(&e)) return s.tree.CanCreate(c->a);
  if (const auto* c = std::get_if<Commit>(&e)) return s.tree.CanCommit(c->a);
  if (const auto* c = std::get_if<Abort>(&e)) return s.tree.CanAbort(c->a);
  if (const auto* p = std::get_if<Perform>(&e)) {
    if (!s.tree.CanPerform(p->a)) return false;  // (d11)
    ObjectId x = registry_->Object(p->a);
    // (d12): every defined holder is a proper ancestor of A. The implicit
    // root holder always is.
    if (const auto* entry = s.vmap.EntriesFor(x)) {
      for (const auto& [b, seq] : *entry) {
        if (!registry_->IsProperAncestor(b, p->a)) return false;
      }
    }
    // (d13): u is the principal value of x in V.
    return p->u == s.vmap.PrincipalValue(x, *registry_);
  }
  if (const auto* r = std::get_if<ReleaseLock>(&e)) {
    // (e11) V(x, A) defined with an explicit entry (the root never
    // releases); (e12) A committed.
    if (r->a == kRootAction) return false;
    return s.vmap.IsDefined(r->x, r->a) && s.tree.IsCommitted(r->a);
  }
  const auto& l = std::get<LoseLock>(e);
  // (f11) V(x, A) defined; (f12) A dead in T.
  if (l.a == kRootAction) return false;
  return s.vmap.IsDefined(l.x, l.a) && s.tree.Contains(l.a) &&
         !s.tree.IsLive(l.a);
}

void VersionMapAlgebra::Apply(State& s, const Event& e) const {
  if (const auto* c = std::get_if<Create>(&e)) {
    s.tree.ApplyCreate(c->a);
  } else if (const auto* c = std::get_if<Commit>(&e)) {
    s.tree.ApplyCommit(c->a);
  } else if (const auto* c = std::get_if<Abort>(&e)) {
    s.tree.ApplyAbort(c->a);
  } else if (const auto* p = std::get_if<Perform>(&e)) {
    ObjectId x = registry_->Object(p->a);
    // (d24): V(x, A) <- V(x, B) ∘ ⟨A⟩ for B the principal action. Compute
    // before mutating the tree.
    std::vector<ActionId> seq =
        s.vmap.Get(x, s.vmap.PrincipalAction(x, *registry_));
    seq.push_back(p->a);
    s.tree.ApplyPerform(p->a, p->u);  // (d21)-(d23)
    s.vmap.Set(x, p->a, std::move(seq));
  } else if (const auto* r = std::get_if<ReleaseLock>(&e)) {
    // (e21)/(e22): pass the sequence up to the parent.
    s.vmap.Set(r->x, registry_->Parent(r->a), s.vmap.Get(r->x, r->a));
    s.vmap.Erase(r->x, r->a);
  } else {
    const auto& l = std::get<LoseLock>(e);
    s.vmap.Erase(l.x, l.a);  // (f21)
  }
}

Status CheckLemma16(const VmState& s) {
  const action::ActionRegistry& reg = s.tree.registry();
  // (a), (c), (d) over all defined entries.
  for (ObjectId x : s.vmap.TouchedObjects()) {
    const auto* entry = s.vmap.EntriesFor(x);
    for (const auto& [a, seq] : *entry) {
      if (a != kRootAction && !s.tree.Contains(a)) {
        std::ostringstream os;
        os << "Lemma 16(a): holder " << a << " of x" << x << " not in tree";
        return Status::Internal(os.str());
      }
      for (ActionId b : seq) {
        if (!s.tree.IsVisibleTo(b, a)) {
          std::ostringstream os;
          os << "Lemma 16(c): element " << b << " of V(x" << x << ", " << a
             << ") not visible to holder";
          return Status::Internal(os.str());
        }
      }
      // (d): seq is a subsequence of the object's data order.
      const auto& data = s.tree.Datasteps(x);
      std::size_t di = 0;
      for (ActionId b : seq) {
        while (di < data.size() && data[di] != b) ++di;
        if (di == data.size()) {
          std::ostringstream os;
          os << "Lemma 16(d): V(x" << x << ", " << a
             << ") not in data order (element " << b << ")";
          return Status::Internal(os.str());
        }
        ++di;
      }
    }
  }
  // (b): every live datastep is covered by an ancestor's lock.
  for (ObjectId x : s.tree.TouchedObjects()) {
    for (ActionId b : s.tree.Datasteps(x)) {
      if (!s.tree.IsLive(b)) continue;
      bool covered = false;
      for (ActionId a : reg.AncestorChain(b)) {
        if (!s.vmap.IsDefined(x, a)) continue;
        std::vector<ActionId> seq = s.vmap.Get(x, a);
        if (std::find(seq.begin(), seq.end(), b) != seq.end()) {
          covered = true;
          break;
        }
      }
      if (!covered) {
        std::ostringstream os;
        os << "Lemma 16(b): live datastep " << b << " on x" << x
           << " not in any ancestor's lock sequence";
        return Status::Internal(os.str());
      }
    }
  }
  return Status::Ok();
}

std::vector<algebra::LockEvent> EventCandidates(const VmState& s) {
  const action::ActionRegistry& reg = s.tree.registry();
  std::vector<algebra::LockEvent> out;
  for (ActionId a = 1; a < reg.size(); ++a) {
    if (!s.tree.Contains(a)) {
      out.push_back(Create{a});
      continue;
    }
    if (!s.tree.IsActive(a)) continue;
    if (reg.IsAccess(a)) {
      out.push_back(Perform{a, s.vmap.PrincipalValue(reg.Object(a), reg)});
      out.push_back(Abort{a});
    } else {
      out.push_back(Commit{a});
      out.push_back(Abort{a});
    }
  }
  for (ObjectId x : s.vmap.TouchedObjects()) {
    for (const auto& [a, seq] : *s.vmap.EntriesFor(x)) {
      if (s.tree.IsCommitted(a)) out.push_back(ReleaseLock{a, x});
      if (s.tree.Contains(a) && !s.tree.IsLive(a)) out.push_back(LoseLock{a, x});
    }
  }
  return out;
}

}  // namespace rnt::versionmap
