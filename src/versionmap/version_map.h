#ifndef RNT_VERSIONMAP_VERSION_MAP_H_
#define RNT_VERSIONMAP_VERSION_MAP_H_

#include <map>
#include <vector>

#include "action/registry.h"
#include "common/status.h"
#include "common/types.h"

namespace rnt::versionmap {

/// A version map (paper §7.1): a partial mapping V from obj × act to
/// sequences of accesses, recording for each object its "stack of locks":
/// the chain of actions (successive descendants) currently associated
/// with the object, each holding the sequence of accesses whose result is
/// available to it.
///
/// Well-formedness (the paper's four conditions):
///  * V(x, U) is defined for every x — represented lazily: an object with
///    no explicit entries implicitly has V(x, U) = ⟨⟩;
///  * every element of V(x, A) is an access to x;
///  * the defined actions for one object lie on a single ancestor chain;
///  * if B ∈ desc(A), V(x, B) extends V(x, A).
/// These are maintained by the algebra's events and verified by
/// CheckWellFormed in tests.
///
/// The *principal action* for x is the least (deepest) defined action;
/// its sequence evaluates to the *principal value* — the value the next
/// access must see (precondition d13).
class VersionMap {
 public:
  using Entry = std::map<ActionId, std::vector<ActionId>>;

  VersionMap() = default;

  /// True iff V(x, a) is defined (including the implicit root entries).
  bool IsDefined(ObjectId x, ActionId a) const {
    if (a == kRootAction) return true;
    auto it = objects_.find(x);
    return it != objects_.end() && it->second.count(a) != 0;
  }

  /// The sequence V(x, a). Requires IsDefined(x, a).
  std::vector<ActionId> Get(ObjectId x, ActionId a) const {
    auto it = objects_.find(x);
    if (it == objects_.end()) return {};
    auto jt = it->second.find(a);
    if (jt == it->second.end()) return {};
    return jt->second;
  }

  void Set(ObjectId x, ActionId a, std::vector<ActionId> seq) {
    objects_[x][a] = std::move(seq);
  }

  /// Makes V(x, a) undefined. Erasing the root entry resets it to the
  /// empty sequence only if no other entry exists (the root entry is
  /// implicitly ⟨⟩ when absent); in the algebra the root is never erased
  /// (release/lose events require A ≠ U only implicitly — U never commits
  /// or dies), so this is a no-op guard.
  void Erase(ObjectId x, ActionId a) {
    if (a == kRootAction) return;
    auto it = objects_.find(x);
    if (it == objects_.end()) return;
    it->second.erase(a);
    if (it->second.empty()) objects_.erase(it);
  }

  /// The deepest action with V(x, ·) defined (the paper's principal
  /// action); U if no explicit entry exists.
  ActionId PrincipalAction(ObjectId x, const action::ActionRegistry& reg) const;

  /// result(x, V(x, principal)) — the principal value (paper §7.1).
  Value PrincipalValue(ObjectId x, const action::ActionRegistry& reg) const;

  /// Explicitly-stored entries for `x` (does not include the implicit
  /// root entry). Keys ascend by ActionId.
  const Entry* EntriesFor(ObjectId x) const {
    auto it = objects_.find(x);
    return it == objects_.end() ? nullptr : &it->second;
  }

  /// Objects with at least one explicit entry.
  std::vector<ObjectId> TouchedObjects() const;

  /// Verifies the four well-formedness conditions against `reg`.
  Status CheckWellFormed(const action::ActionRegistry& reg) const;

  friend bool operator==(const VersionMap& a, const VersionMap& b) {
    return a.objects_ == b.objects_;
  }

 private:
  std::map<ObjectId, Entry> objects_;
};

}  // namespace rnt::versionmap

#endif  // RNT_VERSIONMAP_VERSION_MAP_H_
