#include "baseline/mvto_engine.h"

#include <algorithm>

#include "action/registry.h"

namespace rnt::baseline {

std::vector<MvtoEngine::Version>& MvtoEngine::VersionsLocked(ObjectId x) {
  auto it = versions_.find(x);
  if (it == versions_.end()) {
    it = versions_.emplace(x, std::vector<Version>{Version{}}).first;
  }
  return it->second;
}

StatusOr<Value> MvtoEngine::AccessLocked(Ts ts, ObjectId x,
                                         const action::Update& u) {
  auto txn = txns_.find(ts);
  if (txn == txns_.end() || !txn->second.active) {
    return Status::Aborted("transaction is not active");
  }
  ++stats_.accesses;
  std::vector<Version>& vs = VersionsLocked(x);
  // Governing version: largest wts <= ts.
  auto it = std::partition_point(
      vs.begin(), vs.end(), [ts](const Version& v) { return v.wts <= ts; });
  Version& gov = *(it - 1);  // the initial version guarantees existence
  if (!gov.committed && gov.owner != ts) {
    ++stats_.conflict_aborts;
    (void)AbortLocked(ts);
    return Status::Aborted("mvto: read of another txn's tentative version");
  }
  if (u.IsRead()) {
    gov.rts = std::max(gov.rts, ts);
    return gov.value;
  }
  // Write path.
  if (gov.rts > ts) {
    ++stats_.conflict_aborts;
    (void)AbortLocked(ts);
    return Status::Aborted("mvto: stale write (younger reader exists)");
  }
  // Every non-read update in our algebra is a read-modify-write (it
  // observes gov.value), so it must also record its read timestamp on the
  // governing version — otherwise an older writer could later slot a
  // version between gov and ours, and its update would silently vanish
  // from our chain (a lost update).
  gov.rts = std::max(gov.rts, ts);
  Value seen = gov.value;
  Value next = u.Apply(seen);
  if (gov.owner == ts && !gov.committed) {
    gov.value = next;  // overwrite own tentative version
  } else {
    Version nv;
    nv.wts = ts;
    nv.rts = ts;
    nv.value = next;
    nv.committed = false;
    nv.owner = ts;
    vs.insert(it, nv);
    txn->second.written.insert(x);
  }
  return seen;
}

Status MvtoEngine::CommitLocked(Ts ts) {
  auto txn = txns_.find(ts);
  if (txn == txns_.end()) return Status::Aborted("transaction is gone");
  if (!txn->second.active) return Status::Aborted("transaction was aborted");
  for (ObjectId x : txn->second.written) {
    for (Version& v : VersionsLocked(x)) {
      if (v.owner == ts && !v.committed) v.committed = true;
    }
    PruneLocked(x);
  }
  txn->second.active = false;
  ++stats_.committed;
  txns_.erase(txn);
  return Status::Ok();
}

Status MvtoEngine::AbortLocked(Ts ts) {
  auto txn = txns_.find(ts);
  if (txn == txns_.end() || !txn->second.active) return Status::Ok();
  for (ObjectId x : txn->second.written) {
    auto& vs = VersionsLocked(x);
    vs.erase(std::remove_if(vs.begin(), vs.end(),
                            [ts](const Version& v) {
                              return !v.committed && v.owner == ts;
                            }),
             vs.end());
  }
  txn->second.active = false;
  ++stats_.aborted;
  txns_.erase(txn);
  return Status::Ok();
}

void MvtoEngine::PruneLocked(ObjectId x) {
  auto& vs = versions_.at(x);
  if (vs.size() < 16) return;
  // Versions strictly older than the newest committed version at or below
  // the oldest active timestamp can never be read again.
  Ts min_active = txns_.empty() ? next_ts_ : txns_.begin()->first;
  std::size_t keep_from = 0;
  for (std::size_t i = 0; i < vs.size(); ++i) {
    if (vs[i].committed && vs[i].wts <= min_active) keep_from = i;
  }
  if (keep_from > 0) vs.erase(vs.begin(), vs.begin() + keep_from);
}

class MvtoHandle final : public txn::TxnHandle {
 public:
  MvtoHandle(MvtoEngine* eng, std::uint64_t ts, bool is_root)
      : eng_(eng), ts_(ts), is_root_(is_root) {}

  ~MvtoHandle() override {
    if (is_root_ && !finished_) (void)Abort();
  }

  StatusOr<Value> Get(ObjectId x) override {
    return Apply(x, action::Update::Read());
  }
  Status Put(ObjectId x, Value v) override {
    return Apply(x, action::Update::Write(v)).status();
  }
  StatusOr<Value> Apply(ObjectId x, const action::Update& u) override;
  StatusOr<std::unique_ptr<txn::TxnHandle>> BeginChild() override {
    return std::unique_ptr<txn::TxnHandle>(
        new MvtoHandle(eng_, ts_, /*is_root=*/false));
  }
  Status Commit() override;
  Status Abort() override;

 private:
  MvtoEngine* eng_;
  std::uint64_t ts_;
  bool is_root_;
  bool finished_ = false;
};

StatusOr<Value> MvtoHandle::Apply(ObjectId x, const action::Update& u) {
  MutexLock lk(eng_->mu_);
  return eng_->AccessLocked(ts_, x, u);
}

Status MvtoHandle::Commit() {
  MutexLock lk(eng_->mu_);
  if (!is_root_) return Status::Ok();
  Status s = eng_->CommitLocked(ts_);
  if (s.ok() || s.IsAborted()) finished_ = true;
  return s;
}

Status MvtoHandle::Abort() {
  MutexLock lk(eng_->mu_);
  if (is_root_) finished_ = true;
  return eng_->AbortLocked(ts_);
}

std::unique_ptr<txn::TxnHandle> MvtoEngine::Begin() {
  MutexLock lk(mu_);
  Ts ts = next_ts_++;
  txns_.emplace(ts, TxnRec{});
  ++stats_.begun;
  return std::unique_ptr<txn::TxnHandle>(new MvtoHandle(this, ts, true));
}

Value MvtoEngine::ReadCommitted(ObjectId x) {
  MutexLock lk(mu_);
  const auto& vs = VersionsLocked(x);
  for (auto it = vs.rbegin(); it != vs.rend(); ++it) {
    if (it->committed) return it->value;
  }
  return action::kInitValue;
}

MvtoEngine::Stats MvtoEngine::stats() const {
  MutexLock lk(mu_);
  return stats_;
}

}  // namespace rnt::baseline
