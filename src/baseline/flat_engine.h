#ifndef RNT_BASELINE_FLAT_ENGINE_H_
#define RNT_BASELINE_FLAT_ENGINE_H_

#include <memory>

#include "txn/engine.h"
#include "txn/transaction_manager.h"

namespace rnt::baseline {

/// The single-level baseline the paper's introduction argues against:
/// classical strict two-phase locking with *no* nesting.
///
/// FlatEngine exposes the same TxnHandle surface as the nested engine so
/// identical workload code runs on both, but BeginChild returns a facade
/// that delegates every access to the top-level transaction:
///
///  * there is no partial rollback — "aborting" a child aborts the whole
///    top-level transaction (a failure always restarts from the top,
///    which is experiment E2's resilience gap);
///  * sibling "subtransactions" provide no extra concurrency: all locks
///    are held by the single top-level transaction until it finishes
///    (experiment E1's concurrency gap).
///
/// Internally this reuses txn::TransactionManager with depth-1
/// transactions, so lock acquisition, deadlock handling, and value
/// management are byte-for-byte the same machinery — the comparison
/// isolates the *structure*, not incidental implementation differences.
class FlatEngine final : public txn::Engine {
 public:
  struct Options {
    txn::TransactionManager::Options manager;
  };

  FlatEngine();
  explicit FlatEngine(Options options);

  std::unique_ptr<txn::TxnHandle> Begin() override;
  Value ReadCommitted(ObjectId x) override;
  std::string name() const override { return "flat-2pl"; }

  txn::TransactionManager::Stats stats() const { return mgr_.stats(); }

 private:
  txn::TransactionManager mgr_;
};

}  // namespace rnt::baseline

#endif  // RNT_BASELINE_FLAT_ENGINE_H_
