#include "baseline/flat_engine.h"

namespace rnt::baseline {

namespace {

/// Handle facade: the root owns the real nested-engine transaction;
/// "children" share it. See FlatEngine docs for the semantics.
class FlatHandle final : public txn::TxnHandle {
 public:
  /// Root constructor.
  explicit FlatHandle(std::unique_ptr<txn::TxnHandle> root)
      : inner_(std::move(root)), is_root_(true) {}
  /// Child facade constructor.
  explicit FlatHandle(txn::TxnHandle* shared)
      : shared_(shared), is_root_(false) {}

  StatusOr<Value> Get(ObjectId x) override { return Target()->Get(x); }
  Status Put(ObjectId x, Value v) override { return Target()->Put(x, v); }
  StatusOr<Value> Apply(ObjectId x, const action::Update& u) override {
    return Target()->Apply(x, u);
  }

  StatusOr<std::unique_ptr<txn::TxnHandle>> BeginChild() override {
    // A flat engine has no subtransactions: hand out a facade over the
    // same top-level transaction.
    return std::unique_ptr<txn::TxnHandle>(new FlatHandle(Target()));
  }

  Status Commit() override {
    if (is_root_) return inner_->Commit();
    // Child "commit" is a no-op: the work is already part of the root.
    return Status::Ok();
  }

  Status Abort() override {
    // No partial rollback exists: any abort kills the whole transaction.
    return Target()->Abort();
  }

 private:
  txn::TxnHandle* Target() { return is_root_ ? inner_.get() : shared_; }

  std::unique_ptr<txn::TxnHandle> inner_;  // root only
  txn::TxnHandle* shared_ = nullptr;       // child facades
  bool is_root_;
};

}  // namespace

FlatEngine::FlatEngine() : FlatEngine(Options{}) {}

FlatEngine::FlatEngine(Options options) : mgr_(options.manager) {}

std::unique_ptr<txn::TxnHandle> FlatEngine::Begin() {
  return std::unique_ptr<txn::TxnHandle>(new FlatHandle(mgr_.Begin()));
}

Value FlatEngine::ReadCommitted(ObjectId x) { return mgr_.ReadCommitted(x); }

}  // namespace rnt::baseline
