#ifndef RNT_BASELINE_MVTO_ENGINE_H_
#define RNT_BASELINE_MVTO_ENGINE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "txn/engine.h"

namespace rnt::baseline {

/// A Reed-style multiversion timestamp-ordering baseline (the alternative
/// nested-transaction implementation the paper's introduction discusses
/// — here in its classical single-level form, since its purpose is the
/// E8 comparison of optimistic-multiversion vs pessimistic-locking under
/// contention).
///
/// Scheme (standard MVTO):
///  * each transaction gets a unique timestamp at Begin;
///  * a read at ts returns the version with the largest wts <= ts,
///    recording ts in that version's read-timestamp; reading another
///    transaction's uncommitted (tentative) version aborts the reader
///    (no waiting — Reed's "possibility" waits are simplified to
///    first-writer-wins aborts);
///  * a write at ts aborts if the governing version has already been read
///    by a younger transaction (rts > ts) or is another transaction's
///    tentative version; otherwise it installs a tentative version at ts;
///  * commit finalizes tentative versions; abort removes them.
///
/// Like FlatEngine, subtransaction handles are facades over the top-level
/// transaction (no partial rollback). Old versions are pruned up to the
/// oldest active timestamp.
class MvtoEngine final : public txn::Engine {
 public:
  MvtoEngine() = default;

  MvtoEngine(const MvtoEngine&) = delete;
  MvtoEngine& operator=(const MvtoEngine&) = delete;

  std::unique_ptr<txn::TxnHandle> Begin() override;
  Value ReadCommitted(ObjectId x) override;
  std::string name() const override { return "mvto"; }

  struct Stats {
    std::uint64_t begun = 0;
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    std::uint64_t conflict_aborts = 0;
    std::uint64_t accesses = 0;
  };
  Stats stats() const;

 private:
  friend class MvtoHandle;

  using Ts = std::uint64_t;

  struct Version {
    Ts wts = 0;         // writer timestamp (0 = the initial version)
    Ts rts = 0;         // max reader timestamp
    Value value = 0;
    bool committed = true;
    Ts owner = 0;  // tentative owner's ts (== wts here)
  };

  struct TxnRec {
    bool active = true;
    std::set<ObjectId> written;
  };

  // All under mu_.
  StatusOr<Value> AccessLocked(Ts ts, ObjectId x, const action::Update& u)
      REQUIRES(mu_);
  Status CommitLocked(Ts ts) REQUIRES(mu_);
  Status AbortLocked(Ts ts) REQUIRES(mu_);
  std::vector<Version>& VersionsLocked(ObjectId x) REQUIRES(mu_);
  void PruneLocked(ObjectId x) REQUIRES(mu_);

  mutable Mutex mu_;
  Ts next_ts_ GUARDED_BY(mu_) = 1;
  /// Sorted by wts.
  std::map<ObjectId, std::vector<Version>> versions_ GUARDED_BY(mu_);
  std::map<Ts, TxnRec> txns_ GUARDED_BY(mu_);
  Stats stats_ GUARDED_BY(mu_);
};

}  // namespace rnt::baseline

#endif  // RNT_BASELINE_MVTO_ENGINE_H_
