#ifndef RNT_RWLOCK_RW_VALUE_MAP_H_
#define RNT_RWLOCK_RW_VALUE_MAP_H_

#include <map>
#include <set>
#include <vector>

#include "action/registry.h"
#include "common/status.h"
#include "common/types.h"

namespace rnt::rwlock {

/// Lock state of one object in Moss's *complete* algorithm (read/write
/// modes) — the extension the paper's §10 leaves as future work.
///
/// Structure per object x:
///  * a *write chain*: as in the single-mode value map, a chain of
///    ancestors each holding the latest value available to it (the
///    deepest is the principal writer);
///  * *read holders*: a set of (action -> nothing) entries, NOT required
///    to lie on one chain — this is exactly what the single-mode model
///    cannot express and why sibling readers can share.
///
/// Rules (mirroring lock/lock_manager.h at the algebra level):
///  * perform-write by A requires every write-chain holder and every
///    read holder to be a proper ancestor of A;
///  * perform-read by A requires every write-chain holder to be a proper
///    ancestor of A (read holders do not constrain readers);
///  * release (on commit) moves both kinds of holds to the parent;
///  * lose (on death) discards them.
class RwValueMap {
 public:
  RwValueMap() = default;

  // --- write chain (same contract as valuemap::ValueMap) ---
  bool IsWriteDefined(ObjectId x, ActionId a) const {
    if (a == kRootAction) return true;
    auto it = objects_.find(x);
    return it != objects_.end() && it->second.writes.count(a) != 0;
  }
  Value GetWrite(ObjectId x, ActionId a) const {
    auto it = objects_.find(x);
    if (it == objects_.end()) return action::kInitValue;
    auto jt = it->second.writes.find(a);
    return jt == it->second.writes.end() ? action::kInitValue : jt->second;
  }
  void SetWrite(ObjectId x, ActionId a, Value v) { objects_[x].writes[a] = v; }
  void EraseWrite(ObjectId x, ActionId a) {
    if (a == kRootAction) return;
    Prune(x, [&](Entry& e) { e.writes.erase(a); });
  }

  // --- read holders ---
  bool HoldsRead(ObjectId x, ActionId a) const {
    auto it = objects_.find(x);
    return it != objects_.end() && it->second.readers.count(a) != 0;
  }
  void AddReader(ObjectId x, ActionId a) { objects_[x].readers.insert(a); }
  void EraseReader(ObjectId x, ActionId a) {
    Prune(x, [&](Entry& e) { e.readers.erase(a); });
  }

  /// The deepest write holder (principal writer); U when none.
  ActionId PrincipalWriter(ObjectId x, const action::ActionRegistry& reg) const;

  /// The value the next access must see: the principal writer's value.
  Value PrincipalValue(ObjectId x, const action::ActionRegistry& reg) const {
    return GetWrite(x, PrincipalWriter(x, reg));
  }

  /// Write-chain holders (excluding the implicit root).
  std::vector<ActionId> WriteHolders(ObjectId x) const;
  /// Read holders.
  std::vector<ActionId> ReadHolders(ObjectId x) const;
  /// Any holder of either kind.
  bool HoldsAny(ObjectId x, ActionId a) const {
    return IsWriteDefined(x, a) ? a != kRootAction : HoldsRead(x, a);
  }

  std::vector<ObjectId> TouchedObjects() const;

  /// Well-formedness: write holders on one ancestor chain (read holders
  /// are unconstrained — that is the point of the extension).
  Status CheckWellFormed(const action::ActionRegistry& reg) const;

  friend bool operator==(const RwValueMap&, const RwValueMap&) = default;

 private:
  struct Entry {
    std::map<ActionId, Value> writes;
    std::set<ActionId> readers;
    bool Empty() const { return writes.empty() && readers.empty(); }
    friend bool operator==(const Entry&, const Entry&) = default;
  };

  template <typename Fn>
  void Prune(ObjectId x, Fn&& fn) {
    auto it = objects_.find(x);
    if (it == objects_.end()) return;
    fn(it->second);
    if (it->second.Empty()) objects_.erase(it);
  }

  std::map<ObjectId, Entry> objects_;
};

}  // namespace rnt::rwlock

#endif  // RNT_RWLOCK_RW_VALUE_MAP_H_
