#ifndef RNT_RWLOCK_RW_ALGEBRA_H_
#define RNT_RWLOCK_RW_ALGEBRA_H_

#include <vector>

#include "aat/aat.h"
#include "algebra/algebra.h"
#include "algebra/events.h"
#include "common/status.h"
#include "rwlock/rw_value_map.h"

namespace rnt::rwlock {

/// State of the read/write Moss algebra: an AAT plus the two-mode lock
/// state.
struct RwState {
  aat::Aat tree;
  RwValueMap vmap;
};

/// Moss's *complete* algorithm as an event-state algebra — the read/write
/// refinement of the paper's level 4 (𝒜‴), i.e. the extension §10 calls
/// "not very difficult" but never formalizes. Events reuse the LockEvent
/// vocabulary; an access's mode is its update function (identity = read).
///
/// Differences from the single-mode ValueMapAlgebra:
///  * perform-read (d12-R): only *write* holders must be proper ancestors
///    — concurrent sibling readers are legal states;
///  * perform-read effect: adds a read hold, does NOT extend the write
///    chain (reads produce no version);
///  * perform-write (d12-W): every holder of either kind must be a proper
///    ancestor;
///  * release-lock on commit passes both kinds of holds to the parent;
///    lose-lock discards both.
///
/// Correctness target (validated in tests/rwlock_test.cc): computable
/// states satisfy the conflict-restricted characterization
/// aat::IsPermDataSerializableRw — the Theorem 9 analog for two lock
/// modes — and the read/write *engine*'s traces, lowered with modes, are
/// valid computations of this algebra (conformance).
class RwAlgebra {
 public:
  using State = RwState;
  using Event = algebra::LockEvent;

  explicit RwAlgebra(const action::ActionRegistry* registry)
      : registry_(registry) {}

  State Initial() const {
    return RwState{action::ActionTree(registry_), RwValueMap()};
  }

  bool Defined(const State& s, const Event& e) const;
  void Apply(State& s, const Event& e) const;

  const action::ActionRegistry& registry() const { return *registry_; }

 private:
  const action::ActionRegistry* registry_;
};

static_assert(algebra::EventStateAlgebra<RwAlgebra>);

/// Candidate generator for random exploration.
std::vector<algebra::LockEvent> EventCandidates(const RwState& s);

/// Invariants of computable RwAlgebra states (Lemma 16 analog):
///  (a) holders are activated actions;
///  (b) the write chain is an ancestor chain;
///  (c) no non-ancestor write holder coexists with a read holder outside
///      its subtree (the mutual-exclusion shape of the rules).
Status CheckRwInvariants(const RwState& s);

}  // namespace rnt::rwlock

#endif  // RNT_RWLOCK_RW_ALGEBRA_H_
