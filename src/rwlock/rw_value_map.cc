#include "rwlock/rw_value_map.h"

#include <sstream>

namespace rnt::rwlock {

ActionId RwValueMap::PrincipalWriter(ObjectId x,
                                     const action::ActionRegistry& reg) const {
  ActionId best = kRootAction;
  std::uint32_t best_depth = 0;
  auto it = objects_.find(x);
  if (it != objects_.end()) {
    for (const auto& [a, v] : it->second.writes) {
      if (reg.Depth(a) >= best_depth) {
        best = a;
        best_depth = reg.Depth(a);
      }
    }
  }
  return best;
}

std::vector<ActionId> RwValueMap::WriteHolders(ObjectId x) const {
  std::vector<ActionId> out;
  auto it = objects_.find(x);
  if (it != objects_.end()) {
    for (const auto& [a, v] : it->second.writes) out.push_back(a);
  }
  return out;
}

std::vector<ActionId> RwValueMap::ReadHolders(ObjectId x) const {
  std::vector<ActionId> out;
  auto it = objects_.find(x);
  if (it != objects_.end()) {
    out.assign(it->second.readers.begin(), it->second.readers.end());
  }
  return out;
}

std::vector<ObjectId> RwValueMap::TouchedObjects() const {
  std::vector<ObjectId> out;
  out.reserve(objects_.size());
  for (const auto& [x, e] : objects_) out.push_back(x);
  return out;
}

Status RwValueMap::CheckWellFormed(const action::ActionRegistry& reg) const {
  for (const auto& [x, entry] : objects_) {
    std::vector<ActionId> holders;
    for (const auto& [a, v] : entry.writes) holders.push_back(a);
    for (std::size_t i = 0; i < holders.size(); ++i) {
      for (std::size_t j = i + 1; j < holders.size(); ++j) {
        if (!reg.IsAncestor(holders[i], holders[j]) &&
            !reg.IsAncestor(holders[j], holders[i])) {
          std::ostringstream os;
          os << "rw write holders " << holders[i] << " and " << holders[j]
             << " for x" << x << " not on one chain";
          return Status::Internal(os.str());
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace rnt::rwlock
