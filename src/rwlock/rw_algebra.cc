#include "rwlock/rw_algebra.h"

#include <sstream>

namespace rnt::rwlock {

using algebra::Abort;
using algebra::Commit;
using algebra::Create;
using algebra::LoseLock;
using algebra::Perform;
using algebra::ReleaseLock;

bool RwAlgebra::Defined(const State& s, const Event& e) const {
  if (const auto* c = std::get_if<Create>(&e)) return s.tree.CanCreate(c->a);
  if (const auto* c = std::get_if<Commit>(&e)) return s.tree.CanCommit(c->a);
  if (const auto* c = std::get_if<Abort>(&e)) return s.tree.CanAbort(c->a);
  if (const auto* p = std::get_if<Perform>(&e)) {
    if (!s.tree.CanPerform(p->a)) return false;
    ObjectId x = registry_->Object(p->a);
    const bool is_read = registry_->UpdateOf(p->a).IsRead();
    // (d12-W)/(d12-R): write holders always constrain; read holders
    // constrain only writers.
    for (ActionId w : s.vmap.WriteHolders(x)) {
      if (!registry_->IsProperAncestor(w, p->a)) return false;
    }
    if (!is_read) {
      for (ActionId r : s.vmap.ReadHolders(x)) {
        if (!registry_->IsProperAncestor(r, p->a)) return false;
      }
    }
    // (d13): both modes observe the principal writer's value.
    return p->u == s.vmap.PrincipalValue(x, *registry_);
  }
  if (const auto* r = std::get_if<ReleaseLock>(&e)) {
    if (r->a == kRootAction) return false;
    if (!s.tree.IsCommitted(r->a)) return false;
    return s.vmap.IsWriteDefined(r->x, r->a) || s.vmap.HoldsRead(r->x, r->a);
  }
  const auto& l = std::get<LoseLock>(e);
  if (l.a == kRootAction) return false;
  if (!s.tree.Contains(l.a) || s.tree.IsLive(l.a)) return false;
  return s.vmap.IsWriteDefined(l.x, l.a) || s.vmap.HoldsRead(l.x, l.a);
}

void RwAlgebra::Apply(State& s, const Event& e) const {
  if (const auto* c = std::get_if<Create>(&e)) {
    s.tree.ApplyCreate(c->a);
  } else if (const auto* c = std::get_if<Commit>(&e)) {
    s.tree.ApplyCommit(c->a);
  } else if (const auto* c = std::get_if<Abort>(&e)) {
    s.tree.ApplyAbort(c->a);
  } else if (const auto* p = std::get_if<Perform>(&e)) {
    ObjectId x = registry_->Object(p->a);
    s.tree.ApplyPerform(p->a, p->u);
    if (registry_->UpdateOf(p->a).IsRead()) {
      s.vmap.AddReader(x, p->a);
    } else {
      s.vmap.SetWrite(x, p->a, registry_->UpdateOf(p->a).Apply(p->u));
    }
  } else if (const auto* r = std::get_if<ReleaseLock>(&e)) {
    ActionId parent = registry_->Parent(r->a);
    if (s.vmap.IsWriteDefined(r->x, r->a)) {
      s.vmap.SetWrite(r->x, parent, s.vmap.GetWrite(r->x, r->a));
      s.vmap.EraseWrite(r->x, r->a);
    }
    if (s.vmap.HoldsRead(r->x, r->a)) {
      // Read holds inherited by the parent; at the top they simply end
      // (the root constrains nobody).
      if (parent != kRootAction) s.vmap.AddReader(r->x, parent);
      s.vmap.EraseReader(r->x, r->a);
    }
  } else {
    const auto& l = std::get<LoseLock>(e);
    s.vmap.EraseWrite(l.x, l.a);
    s.vmap.EraseReader(l.x, l.a);
  }
}

std::vector<algebra::LockEvent> EventCandidates(const RwState& s) {
  const action::ActionRegistry& reg = s.tree.registry();
  std::vector<algebra::LockEvent> out;
  for (ActionId a = 1; a < reg.size(); ++a) {
    if (!s.tree.Contains(a)) {
      out.push_back(Create{a});
      continue;
    }
    if (!s.tree.IsActive(a)) continue;
    if (reg.IsAccess(a)) {
      out.push_back(Perform{a, s.vmap.PrincipalValue(reg.Object(a), reg)});
      out.push_back(Abort{a});
    } else {
      out.push_back(Commit{a});
      out.push_back(Abort{a});
    }
  }
  for (ObjectId x : s.vmap.TouchedObjects()) {
    std::vector<ActionId> holders = s.vmap.WriteHolders(x);
    std::vector<ActionId> readers = s.vmap.ReadHolders(x);
    holders.insert(holders.end(), readers.begin(), readers.end());
    for (ActionId a : holders) {
      if (a == kRootAction) continue;
      if (s.tree.IsCommitted(a)) out.push_back(ReleaseLock{a, x});
      if (s.tree.Contains(a) && !s.tree.IsLive(a)) out.push_back(LoseLock{a, x});
    }
  }
  return out;
}

Status CheckRwInvariants(const RwState& s) {
  const action::ActionRegistry& reg = s.tree.registry();
  RNT_RETURN_IF_ERROR(s.vmap.CheckWellFormed(reg));
  for (ObjectId x : s.vmap.TouchedObjects()) {
    std::vector<ActionId> writers = s.vmap.WriteHolders(x);
    std::vector<ActionId> readers = s.vmap.ReadHolders(x);
    // (a) holders activated.
    for (ActionId a : writers) {
      if (a != kRootAction && !s.tree.Contains(a)) {
        return Status::Internal("rw invariant: write holder not in tree");
      }
    }
    for (ActionId a : readers) {
      if (!s.tree.Contains(a)) {
        return Status::Internal("rw invariant: read holder not in tree");
      }
    }
    // (c) every write holder is ancestrally comparable with every other
    // holder of either kind — the lock rules' footprint.
    for (ActionId w : writers) {
      if (w == kRootAction) continue;
      for (ActionId r : readers) {
        if (r == w) continue;
        if (!reg.IsAncestor(w, r) && !reg.IsAncestor(r, w)) {
          std::ostringstream os;
          os << "rw invariant: write holder " << w
             << " incomparable with read holder " << r << " on x" << x;
          return Status::Internal(os.str());
        }
      }
    }
  }
  return Status::Ok();
}

}  // namespace rnt::rwlock
