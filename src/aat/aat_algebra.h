#ifndef RNT_AAT_AAT_ALGEBRA_H_
#define RNT_AAT_AAT_ALGEBRA_H_

#include <vector>

#include "aat/aat.h"
#include "algebra/algebra.h"
#include "algebra/events.h"

namespace rnt::aat {

/// Level 2: the algebra 𝒜′ based on augmented action trees (paper §6).
///
/// Events mirror level 1 with two changes: there is *no* global constraint
/// C (computability alone guarantees data-serializability of perm(T) —
/// Theorem 14), and perform gains Moss's two extra preconditions:
///
///   (d12) every *live* datastep on the object must already be visible to
///         the new access A "up to the level which matters to A" — the
///         abstract effect of holding a lock until commit propagates it
///         high enough;
///   (d13) if A is live, the value u must equal
///         result(x, ⟨visible_T(A, x); data_T⟩) — the value produced by
///         A's visible predecessors. (A *dead* access — an orphan — may
///         see any value at this level.)
///
/// plus the effect (d23): A is appended to data_T after all existing
/// datasteps of its object (realized by ActionTree's perform bookkeeping).
class AatAlgebra {
 public:
  using State = Aat;
  using Event = algebra::TreeEvent;

  explicit AatAlgebra(const action::ActionRegistry* registry)
      : registry_(registry) {}

  State Initial() const { return action::ActionTree(registry_); }

  bool Defined(const State& s, const Event& e) const;
  void Apply(State& s, const Event& e) const;

  const action::ActionRegistry& registry() const { return *registry_; }

 private:
  const action::ActionRegistry* registry_;
};

static_assert(algebra::EventStateAlgebra<AatAlgebra>);

/// Candidate generator for random exploration of 𝒜′. For live accesses it
/// proposes the unique Moss value (d13); for orphaned (dead) accesses it
/// additionally proposes arbitrary values, exercising the freedom the
/// level-2 model deliberately grants to orphans.
std::vector<algebra::TreeEvent> EventCandidates(const Aat& s);

}  // namespace rnt::aat

#endif  // RNT_AAT_AAT_ALGEBRA_H_
