#ifndef RNT_AAT_AAT_H_
#define RNT_AAT_AAT_H_

#include <vector>

#include "action/action_tree.h"
#include "action/serializability.h"
#include "common/status.h"

namespace rnt::aat {

/// An augmented action tree (AAT, paper §5.1) is a pair (S, data_T) where
/// S is an action tree and data_T totally orders the datasteps of each
/// object.
///
/// Representation choice: in every algebra of the paper, data_T grows only
/// via perform's effect (d23), which appends the new datastep after all
/// existing datasteps of its object. Hence data_T *is* the per-object
/// perform order, which ActionTree already records in Datasteps(x). An AAT
/// is therefore represented by the ActionTree itself, with the aat::
/// functions below giving the data-order view. (A standalone data_T
/// component would be redundant state to keep consistent.)
using Aat = action::ActionTree;

/// v-data_T(A) (paper §5.1): A's visible predecessors on its object in
/// data order: { B ∈ visible_T(A, x) : (B, A) ∈ data_T, B ≠ A }.
/// Requires A ∈ datasteps_T.
std::vector<ActionId> VData(const Aat& t, ActionId a);

/// Version compatibility (paper §5.2): every datastep's label equals
/// result(x, ⟨v-data_T(A); data_T⟩).
bool IsVersionCompatible(const Aat& t);

/// One edge of the sibling-data_T relation (paper §5.1), lifted from a
/// data_T pair (C, D) to the sibling level: (A, B) with A, B distinct
/// children of lca(C, D).
struct SiblingDataEdge {
  ActionId from;
  ActionId to;
  friend bool operator==(const SiblingDataEdge&,
                         const SiblingDataEdge&) = default;
};

/// All sibling-data_T edges with from != to (self-loops — cycles of
/// length one — are permitted by Theorem 9(b) and omitted).
std::vector<SiblingDataEdge> SiblingDataEdges(const Aat& t);

/// True iff sibling-data_T has a cycle of length greater than one.
bool HasSiblingDataCycle(const Aat& t);

/// Theorem 9: T is data-serializable iff it is version-compatible and
/// sibling-data_T has no cycle of length > 1. This is the efficient
/// checker (polynomial) that the paper's characterization licenses, in
/// contrast to the exhaustive definitional oracle in action/.
bool IsDataSerializable(const Aat& t);

/// The paper's correctness condition instantiated via Theorem 9:
/// perm(T) is data-serializable (hence serializable).
bool IsPermDataSerializable(const Aat& t);

/// ------------------------------------------------------------------
/// Read/write extension (the paper's §10 "complete Moss algorithm").
///
/// The simplified algorithm proved in the paper totally orders *all*
/// accesses to an object, which is exactly why it cannot admit concurrent
/// readers. Moss's complete algorithm allows sibling readers, so the
/// per-object perform order no longer constrains read-read pairs. The
/// extended characterization orders only *conflicting* pairs (at least
/// one non-read): version compatibility is unchanged — reads are identity
/// updates, so their position among themselves cannot affect any label —
/// and the cycle condition is applied to conflict edges only. This is the
/// nested-transaction form of classical conflict-serializability.

/// Sibling-data edges restricted to conflicting pairs (at least one of
/// the two accesses is not a read).
std::vector<SiblingDataEdge> SiblingDataEdgesRw(const Aat& t);

/// True iff the conflict-restricted sibling relation has a cycle of
/// length > 1.
bool HasSiblingDataCycleRw(const Aat& t);

/// Theorem-9 analog for the read/write algorithm: version-compatible and
/// conflict-edge acyclic. Sound for serializability (see aat_test's
/// oracle comparison).
bool IsDataSerializableRw(const Aat& t);

/// perm(T) under the read/write characterization — the correctness
/// predicate for traces of the read/write engine (txn/ with
/// single_mode_locks = false).
bool IsPermDataSerializableRw(const Aat& t);

/// The "correct" value for access A under Moss's discipline, precondition
/// (d13): result(x, ⟨visible_T(A, x); data_T⟩). Defined whether or not A
/// has been performed yet (it uses only other datasteps).
Value MossValue(const Aat& t, ActionId a);

/// Lemma 10 invariants of computable level-2 states (used as test
/// predicates and as optional runtime self-checks):
///  (a) parent committed => child done;
///  (b) U active;
///  (c) (B, A) ∈ data_T => B dead or B ∈ visible_T(A);
///  (d) A committed, B ∈ desc(A) ∩ vertices_T => B dead or
///      B ∈ visible_T(A).
/// Returns OK or a message identifying the first violated clause.
Status CheckLemma10(const Aat& t);

}  // namespace rnt::aat

#endif  // RNT_AAT_AAT_H_
