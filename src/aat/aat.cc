#include "aat/aat.h"

#include <sstream>
#include <unordered_map>
#include <unordered_set>

namespace rnt::aat {

std::vector<ActionId> VData(const Aat& t, ActionId a) {
  const action::ActionRegistry& reg = t.registry();
  ObjectId x = reg.Object(a);
  std::vector<ActionId> out;
  for (ActionId b : t.Datasteps(x)) {
    if (b == a) break;  // data order = sequence order; predecessors only
    if (t.IsVisibleTo(b, a)) out.push_back(b);
  }
  return out;
}

bool IsVersionCompatible(const Aat& t) {
  const action::ActionRegistry& reg = t.registry();
  for (ObjectId x : t.TouchedObjects()) {
    for (ActionId a : t.Datasteps(x)) {
      std::vector<ActionId> s = VData(t, a);
      if (t.LabelOf(a) != action::ResultOf(reg, x, s)) return false;
    }
  }
  return true;
}

namespace {

/// Shared edge builder; `conflicts_only` skips read-read pairs (the
/// read/write extension's relaxation).
std::vector<SiblingDataEdge> BuildSiblingEdges(const Aat& t,
                                               bool conflicts_only) {
  const action::ActionRegistry& reg = t.registry();
  std::vector<SiblingDataEdge> edges;
  std::unordered_set<std::uint64_t> seen;
  for (ObjectId x : t.TouchedObjects()) {
    const auto& steps = t.Datasteps(x);
    for (std::size_t i = 0; i < steps.size(); ++i) {
      for (std::size_t j = i + 1; j < steps.size(); ++j) {
        ActionId c = steps[i], d = steps[j];
        if (conflicts_only && reg.UpdateOf(c).IsRead() &&
            reg.UpdateOf(d).IsRead()) {
          continue;
        }
        ActionId l = reg.Lca(c, d);
        // Datasteps are leaves, so lca is a proper ancestor of both.
        ActionId a = reg.ChildToward(l, c);
        ActionId b = reg.ChildToward(l, d);
        if (a == b) continue;  // same subtree; no sibling edge
        std::uint64_t key =
            (static_cast<std::uint64_t>(a) << 32) | static_cast<std::uint64_t>(b);
        if (seen.insert(key).second) edges.push_back({a, b});
      }
    }
  }
  return edges;
}

/// Directed-cycle test over a sibling edge list.
bool EdgesHaveCycle(const std::vector<SiblingDataEdge>& edges) {
  std::unordered_map<ActionId, std::vector<ActionId>> adj;
  std::unordered_set<ActionId> nodes;
  for (const auto& e : edges) {
    adj[e.from].push_back(e.to);
    nodes.insert(e.from);
    nodes.insert(e.to);
  }
  enum : std::uint8_t { kWhite, kGray, kBlack };
  std::unordered_map<ActionId, std::uint8_t> color;
  for (ActionId start : nodes) {
    if (color[start] != kWhite) continue;
    std::vector<std::pair<ActionId, std::size_t>> stack;
    stack.emplace_back(start, 0);
    color[start] = kGray;
    while (!stack.empty()) {
      auto& [n, idx] = stack.back();
      auto it = adj.find(n);
      if (it == adj.end() || idx >= it->second.size()) {
        color[n] = kBlack;
        stack.pop_back();
        continue;
      }
      ActionId next = it->second[idx++];
      std::uint8_t& c = color[next];
      if (c == kGray) return true;  // back edge: nontrivial cycle
      if (c == kWhite) {
        c = kGray;
        stack.emplace_back(next, 0);
      }
    }
  }
  return false;
}

}  // namespace

std::vector<SiblingDataEdge> SiblingDataEdges(const Aat& t) {
  return BuildSiblingEdges(t, /*conflicts_only=*/false);
}

std::vector<SiblingDataEdge> SiblingDataEdgesRw(const Aat& t) {
  return BuildSiblingEdges(t, /*conflicts_only=*/true);
}

bool HasSiblingDataCycle(const Aat& t) {
  return EdgesHaveCycle(SiblingDataEdges(t));
}

bool HasSiblingDataCycleRw(const Aat& t) {
  return EdgesHaveCycle(SiblingDataEdgesRw(t));
}

bool IsDataSerializable(const Aat& t) {
  return IsVersionCompatible(t) && !HasSiblingDataCycle(t);
}

bool IsPermDataSerializable(const Aat& t) {
  return IsDataSerializable(t.Perm());
}

bool IsDataSerializableRw(const Aat& t) {
  // Version compatibility is computed over the stored (total) perform
  // order, but read accesses are identity updates: their relative order
  // cannot change any fold, so the same predicate is correct here.
  return IsVersionCompatible(t) && !HasSiblingDataCycleRw(t);
}

bool IsPermDataSerializableRw(const Aat& t) {
  return IsDataSerializableRw(t.Perm());
}

Value MossValue(const Aat& t, ActionId a) {
  const action::ActionRegistry& reg = t.registry();
  ObjectId x = reg.Object(a);
  std::vector<ActionId> vis;
  for (ActionId b : t.Datasteps(x)) {
    if (b != a && t.IsVisibleTo(b, a)) vis.push_back(b);
  }
  return action::ResultOf(reg, x, vis);
}

Status CheckLemma10(const Aat& t) {
  const action::ActionRegistry& reg = t.registry();
  // (b) U ∈ active_T.
  if (!t.IsActive(kRootAction)) {
    return Status::Internal("Lemma 10(b): root U not active");
  }
  for (ActionId a : t.Vertices()) {
    // (a) parent committed => child done.
    if (a != kRootAction && t.IsCommitted(reg.Parent(a)) && !t.IsDone(a)) {
      std::ostringstream os;
      os << "Lemma 10(a): action " << a << " not done but parent "
         << reg.Parent(a) << " committed";
      return Status::Internal(os.str());
    }
  }
  // (c) data pairs: predecessor dead or visible to successor.
  for (ObjectId x : t.TouchedObjects()) {
    const auto& steps = t.Datasteps(x);
    for (std::size_t j = 0; j < steps.size(); ++j) {
      for (std::size_t i = 0; i < j; ++i) {
        if (!(!t.IsLive(steps[i]) || t.IsVisibleTo(steps[i], steps[j]))) {
          std::ostringstream os;
          os << "Lemma 10(c): datastep " << steps[i]
             << " live but not visible to " << steps[j];
          return Status::Internal(os.str());
        }
      }
    }
  }
  // (d) committed ancestor sees all its live activated descendants.
  for (ActionId a : t.Vertices()) {
    if (!t.IsCommitted(a)) continue;
    for (ActionId b : t.Vertices()) {
      if (!reg.IsAncestor(a, b)) continue;
      if (t.IsLive(b) && !t.IsVisibleTo(b, a)) {
        std::ostringstream os;
        os << "Lemma 10(d): live descendant " << b << " of committed " << a
           << " not visible to it";
        return Status::Internal(os.str());
      }
    }
  }
  return Status::Ok();
}

}  // namespace rnt::aat
