#include "aat/aat_algebra.h"

namespace rnt::aat {

using algebra::Abort;
using algebra::Commit;
using algebra::Create;
using algebra::Perform;

bool AatAlgebra::Defined(const State& s, const Event& e) const {
  if (const auto* c = std::get_if<Create>(&e)) return s.CanCreate(c->a);
  if (const auto* c = std::get_if<Commit>(&e)) return s.CanCommit(c->a);
  if (const auto* c = std::get_if<Abort>(&e)) return s.CanAbort(c->a);
  const auto& p = std::get<Perform>(e);
  if (!s.CanPerform(p.a)) return false;  // (d11)
  ObjectId x = registry_->Object(p.a);
  // (d12): every live datastep on x must be visible to A.
  for (ActionId b : s.Datasteps(x)) {
    if (s.IsLive(b) && !s.IsVisibleTo(b, p.a)) return false;
  }
  // (d13): a live access must see exactly the Moss value; orphans are
  // unconstrained at this level.
  if (s.IsLive(p.a) && p.u != MossValue(s, p.a)) return false;
  return true;
}

void AatAlgebra::Apply(State& s, const Event& e) const {
  if (const auto* c = std::get_if<Create>(&e)) {
    s.ApplyCreate(c->a);
  } else if (const auto* c = std::get_if<Commit>(&e)) {
    s.ApplyCommit(c->a);
  } else if (const auto* c = std::get_if<Abort>(&e)) {
    s.ApplyAbort(c->a);
  } else {
    const auto& p = std::get<Perform>(e);
    // Effect (d21)/(d22)/(d23): commit the access, record the label, and
    // append it to the per-object data order.
    s.ApplyPerform(p.a, p.u);
  }
}

std::vector<algebra::TreeEvent> EventCandidates(const Aat& s) {
  const action::ActionRegistry& reg = s.registry();
  std::vector<algebra::TreeEvent> out;
  for (ActionId a = 1; a < reg.size(); ++a) {
    if (!s.Contains(a)) {
      out.push_back(Create{a});
      continue;
    }
    if (!s.IsActive(a)) continue;
    if (reg.IsAccess(a)) {
      Value moss = MossValue(s, a);
      out.push_back(Perform{a, moss});
      if (!s.IsLive(a)) {
        // Orphan: the model allows any observed value.
        out.push_back(Perform{a, moss + 17});
      }
      out.push_back(Abort{a});
    } else {
      out.push_back(Commit{a});
      out.push_back(Abort{a});
    }
  }
  return out;
}

}  // namespace rnt::aat
