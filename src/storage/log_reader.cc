#include "storage/log_reader.h"

#include <cstring>

#include "storage/crc32.h"
#include "storage/file_io.h"

namespace rnt::storage {

StatusOr<WalFileContents> ReadWalFile(const std::string& path) {
  RNT_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  WalFileContents out;
  if (bytes.empty()) {
    // Crash after open/truncate but before the magic write: an empty
    // file is an empty (torn) log, not corruption.
    out.torn_tail = true;
    return out;
  }
  if (bytes.size() < kWalMagicSize) {
    out.torn_tail = true;
    out.torn_bytes = bytes.size();
    return out;
  }
  if (std::memcmp(bytes.data(), kWalMagic, kWalMagicSize) != 0) {
    return Status::DataLoss("WAL file '" + path + "': bad magic");
  }
  const auto* base = reinterpret_cast<const unsigned char*>(bytes.data());
  std::size_t off = kWalMagicSize;
  const std::size_t size = bytes.size();
  while (off < size) {
    const std::size_t remaining = size - off;
    if (remaining < kWalHeaderSize) {
      out.torn_tail = true;
      out.torn_bytes = remaining;
      break;
    }
    const std::uint32_t crc = GetU32(base + off);
    const std::uint32_t payload_size = GetU32(base + off + 4);
    if (payload_size != kWalPayloadSize) {
      // A wrong size field inside fully present bytes is corruption; at
      // the tail it is indistinguishable from a torn header.
      if (remaining < kWalHeaderSize + kWalPayloadSize) {
        out.torn_tail = true;
        out.torn_bytes = remaining;
        break;
      }
      return Status::DataLoss(
          "WAL file '" + path + "': corrupt record header at offset " +
          std::to_string(off) + " (size field " +
          std::to_string(payload_size) + ", expected " +
          std::to_string(kWalPayloadSize) + ")");
    }
    if (remaining < kWalHeaderSize + payload_size) {
      out.torn_tail = true;
      out.torn_bytes = remaining;
      break;
    }
    const unsigned char* payload = base + off + kWalHeaderSize;
    const std::uint32_t actual = Crc32(payload, payload_size);
    if (actual != crc) {
      // The record is fully present, so this cannot be a torn append:
      // hard-fail with a precise location instead of replaying damaged
      // data that once acknowledged durability.
      return Status::DataLoss(
          "WAL file '" + path + "': CRC mismatch at offset " +
          std::to_string(off) + " (record " +
          std::to_string(out.records.size()) + ", stored crc " +
          std::to_string(crc) + ", computed " + std::to_string(actual) +
          ")");
    }
    out.records.push_back(DecodeWalPayload(payload));
    off += kWalHeaderSize + payload_size;
  }
  return out;
}

std::vector<std::string> ListWalFiles(const std::string& dir) {
  std::vector<std::string> out;
  for (std::uint32_t w = 0; w < kMaxWalWorkers; ++w) {
    std::string path = dir + "/" + WalFileName(w);
    if (FileExists(path)) out.push_back(std::move(path));
  }
  return out;
}

}  // namespace rnt::storage
