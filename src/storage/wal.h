#ifndef RNT_STORAGE_WAL_H_
#define RNT_STORAGE_WAL_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "storage/wal_format.h"
#include "txn/trace.h"

namespace rnt::storage {

struct WalOptions {
  /// Directory holding the per-worker files (must exist).
  std::string dir;
  /// Number of worker log files / append slots. Appending threads are
  /// assigned to slots round-robin, so contention on one slot mutex is
  /// bounded regardless of engine thread count.
  std::uint32_t workers = 4;
  /// How long the group-commit thread sleeps between batches when no
  /// one forces a flush.
  std::chrono::milliseconds group_commit_interval{2};
  /// Pending-record count on one slot that kicks an early group commit.
  std::size_t batch_records = 256;
  /// fdatasync each batch (off = page-cache durability only: survives a
  /// process kill but not an OS crash — exactly what the kill -9 tests
  /// and benchmarks need without paying for the device flush).
  bool fsync = true;
  /// First LSN to allocate — recovery passes its durable horizon + 1 so
  /// LSNs stay monotone across process incarnations.
  std::uint64_t first_lsn = 1;
};

/// Per-worker write-ahead log with group commit (the leanstore shape:
/// worker-local append buffers, one log file per worker, a group-commit
/// thread that drains every buffer, writes, fsyncs, and then advances
/// the durable horizon).
///
/// As a txn::TraceSink, Append is called inside the engine's
/// serializing critical sections; it only allocates the record's LSN
/// and pushes it onto the appending thread's slot buffer (no I/O).
/// LSN allocation happens *under the slot mutex*, which is the linchpin
/// of the horizon computation: after flushing, the group-commit thread
/// re-locks each slot and takes
///
///   H = min over slots of (oldest pending LSN, or the LSN counter if
///       the slot is empty) − 1.
///
/// Any record with LSN <= H was either flushed in this or an earlier
/// batch, or it would still be pending in the slot it was pushed to —
/// allocation+push are atomic per slot, so an unobserved record's LSN
/// is provably > the slot's contribution. H therefore only ever names
/// durable prefixes, and commit acknowledgement (BarrierAll) waits for
/// H to pass the caller's last LSN: the precommitted queue of the
/// group-commit design, expressed as a condition wait.
class Wal final : public txn::TraceSink {
 public:
  /// Creates/truncates the worker files and starts the group-commit
  /// thread.
  static StatusOr<std::unique_ptr<Wal>> Open(WalOptions options);
  ~Wal() override;

  Wal(const Wal&) = delete;
  Wal& operator=(const Wal&) = delete;

  /// txn::TraceSink: buffer one record (no syscalls; engine mutexes are
  /// held by the caller).
  void Append(const txn::TraceEvent& event) override;

  /// Blocks until every record appended before this call is durable
  /// (group-commit acknowledgement). Returns the sticky I/O error, if
  /// any — after a write/fsync failure the WAL stops acknowledging.
  Status BarrierAll();

  /// Truncates all worker files back to bare headers (quiescent callers
  /// only — the checkpoint path, after the store snapshot is on disk).
  /// The LSN counter keeps running; durability restarts from here.
  Status Reset();

  /// Next LSN to be allocated (== 1 + the largest allocated so far).
  std::uint64_t next_lsn() const {
    return next_lsn_.load(std::memory_order_acquire);
  }
  /// The durable horizon H: every record with lsn <= H is on disk.
  std::uint64_t durable_lsn() const {
    return durable_lsn_.load(std::memory_order_acquire);
  }

  struct Stats {
    std::uint64_t appended = 0;       // records appended
    std::uint64_t batches = 0;        // group-commit rounds that wrote
    std::uint64_t synced_records = 0; // records made durable
    std::uint64_t max_batch = 0;      // largest single round
  };
  Stats stats() const;

 private:
  struct Slot {
    mutable Mutex mu;
    std::vector<WalRecord> pending GUARDED_BY(mu);
    int fd = -1;           // owned; append-only
    std::string path;
  };

  explicit Wal(WalOptions options);

  Slot& SlotForThisThread();
  void GroupCommitLoop();
  /// One collect → write → fsync → advance-horizon round.
  Status FlushOnce();

  WalOptions options_;
  std::vector<std::unique_ptr<Slot>> slots_;
  std::atomic<std::uint64_t> next_lsn_;
  std::atomic<std::uint64_t> durable_lsn_;
  std::atomic<std::uint64_t> appended_{0};
  std::atomic<std::size_t> slot_rr_{0};

  mutable Mutex gc_mu_;
  CondVar gc_cv_;                    // wakes the group-commit thread
  CondVar durable_cv_;                 // wakes barrier waiters
  bool stop_ GUARDED_BY(gc_mu_) = false;
  bool flush_requested_ GUARDED_BY(gc_mu_) = false;
  Status io_error_ GUARDED_BY(gc_mu_);
  Stats stats_ GUARDED_BY(gc_mu_);
  /// Serializes FlushOnce against Reset (file offsets are shared).
  Mutex flush_mu_;

  std::thread gc_thread_;
};

}  // namespace rnt::storage

#endif  // RNT_STORAGE_WAL_H_
