#ifndef RNT_STORAGE_SNAPSHOT_H_
#define RNT_STORAGE_SNAPSHOT_H_

#include <cstdint>
#include <map>
#include <string>

#include "common/status.h"
#include "common/types.h"

namespace rnt::storage {

/// A durable checkpoint of the committed top-level store — the paper's
/// M_i made persistent: the monotone durable knowledge a node keeps
/// across total failure (§9.1). `last_lsn` is the WAL horizon the
/// snapshot covers: every logged effect with lsn <= last_lsn is already
/// folded into `store`, so recovery replays only records past it (and
/// skips stale WAL records below it, which makes the checkpoint write →
/// WAL reset sequence idempotent under a crash at any point between the
/// two).
///
/// The d21 lock state needs no separate section here: snapshots are
/// taken quiescent (no live transaction holds a lock), and for a
/// crashed run the lock table is exactly reconstructible from the WAL
/// prefix — each kPerform record is a lock acquisition, each
/// kCommit/kAbort the corresponding inheritance/release — which is how
/// recovery re-derives and then rolls back in-flight holders.
struct Snapshot {
  std::uint64_t last_lsn = 0;
  std::map<ObjectId, Value> store;
};

/// Writes atomically: temp file + fsync + rename + directory fsync.
/// A reader never observes a partial snapshot, only the old or the new.
Status WriteSnapshot(const std::string& dir, const Snapshot& snap);

/// Reads the current snapshot. kNotFound when none exists (fresh
/// directory); kDataLoss on checksum/structure damage — rename
/// atomicity means a broken snapshot can never be a torn write.
StatusOr<Snapshot> ReadSnapshot(const std::string& dir);

inline std::string SnapshotFileName() { return "snapshot"; }

}  // namespace rnt::storage

#endif  // RNT_STORAGE_SNAPSHOT_H_
