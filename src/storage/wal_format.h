#ifndef RNT_STORAGE_WAL_FORMAT_H_
#define RNT_STORAGE_WAL_FORMAT_H_

#include <cstddef>
#include <cstdint>
#include <cstdio>
#include <string>

#include "common/types.h"
#include "txn/trace.h"

namespace rnt::storage {

/// On-disk WAL record format, shared by the writer (wal.cc) and the
/// recovery reader (log_reader.cc).
///
/// File layout:   magic "RNTWAL01" (8 bytes) · record · record · ...
/// Record layout: crc32 (u32, over the payload) · size (u32) · payload
/// Payload:       lsn u64 · kind u8 · id u64 · parent u64 · object u32
///                · update{kind u8, a u64, b u64} · seen u64
///
/// The payload mirrors txn::TraceEvent exactly, plus the LSN: the WAL
/// *is* the engine trace, made durable. Recovery therefore rebuilds a
/// txn::Trace directly and hands it to the same ReplayTrace / Theorem 9
/// machinery that checks live executions — one formalism for both.
///
/// LSNs are allocated densely (a global counter) in the engine's
/// serialization order, so the merged, LSN-sorted union of all
/// per-worker files is the trace, and the first *gap* in the sequence
/// marks the durable horizon: every record past a gap was never
/// acknowledged (group commit only acknowledges a dense prefix) and is
/// discarded by recovery.
///
/// All integers are little-endian, encoded explicitly byte-by-byte.

inline constexpr char kWalMagic[8] = {'R', 'N', 'T', 'W',
                                      'A', 'L', '0', '1'};
inline constexpr std::size_t kWalMagicSize = 8;
/// crc (4) + size (4).
inline constexpr std::size_t kWalHeaderSize = 8;
/// lsn 8 + kind 1 + id 8 + parent 8 + object 4 + ukind 1 + a 8 + b 8
/// + seen 8.
inline constexpr std::size_t kWalPayloadSize = 54;

/// One decoded WAL record: the event plus its log sequence number.
struct WalRecord {
  std::uint64_t lsn = 0;
  txn::TraceEvent event;
};

inline void PutU32(std::string& out, std::uint32_t v) {
  out.push_back(static_cast<char>(v & 0xFF));
  out.push_back(static_cast<char>((v >> 8) & 0xFF));
  out.push_back(static_cast<char>((v >> 16) & 0xFF));
  out.push_back(static_cast<char>((v >> 24) & 0xFF));
}

inline void PutU64(std::string& out, std::uint64_t v) {
  PutU32(out, static_cast<std::uint32_t>(v & 0xFFFFFFFFu));
  PutU32(out, static_cast<std::uint32_t>(v >> 32));
}

inline std::uint32_t GetU32(const unsigned char* p) {
  return static_cast<std::uint32_t>(p[0]) |
         static_cast<std::uint32_t>(p[1]) << 8 |
         static_cast<std::uint32_t>(p[2]) << 16 |
         static_cast<std::uint32_t>(p[3]) << 24;
}

inline std::uint64_t GetU64(const unsigned char* p) {
  return static_cast<std::uint64_t>(GetU32(p)) |
         static_cast<std::uint64_t>(GetU32(p + 4)) << 32;
}

/// Appends the payload bytes of one record to `out` (no header).
inline void EncodeWalPayload(std::string& out, const WalRecord& rec) {
  PutU64(out, rec.lsn);
  out.push_back(static_cast<char>(rec.event.kind));
  PutU64(out, rec.event.id);
  PutU64(out, rec.event.parent);
  PutU32(out, rec.event.object);
  out.push_back(static_cast<char>(rec.event.update.kind));
  PutU64(out, static_cast<std::uint64_t>(rec.event.update.a));
  PutU64(out, static_cast<std::uint64_t>(rec.event.update.b));
  PutU64(out, static_cast<std::uint64_t>(rec.event.seen));
}

/// Decodes one payload (exactly kWalPayloadSize bytes at `p`).
inline WalRecord DecodeWalPayload(const unsigned char* p) {
  WalRecord rec;
  rec.lsn = GetU64(p);
  rec.event.kind = static_cast<txn::TraceEvent::Kind>(p[8]);
  rec.event.id = GetU64(p + 9);
  rec.event.parent = GetU64(p + 17);
  rec.event.object = GetU32(p + 25);
  rec.event.update.kind = static_cast<action::Update::Kind>(p[29]);
  rec.event.update.a = static_cast<Value>(GetU64(p + 30));
  rec.event.update.b = static_cast<Value>(GetU64(p + 38));
  rec.event.seen = static_cast<Value>(GetU64(p + 46));
  return rec;
}

/// Per-worker WAL file name within a storage directory.
inline std::string WalFileName(std::uint32_t worker) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "wal-%03u.log", worker);
  return buf;
}

}  // namespace rnt::storage

#endif  // RNT_STORAGE_WAL_FORMAT_H_
