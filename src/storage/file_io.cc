#include "storage/file_io.h"

#include <cerrno>
#include <cstring>

#include <fcntl.h>
#include <sys/stat.h>
#include <sys/types.h>
#include <unistd.h>

namespace rnt::storage {

namespace {

std::string Errno(const std::string& op, const std::string& path) {
  return op + " failed for '" + path + "': " + std::strerror(errno);
}

}  // namespace

StatusOr<int> OpenForAppend(const std::string& path, bool truncate) {
  int flags = O_CREAT | O_WRONLY | O_APPEND;
  if (truncate) flags |= O_TRUNC;
  int fd;
  do {
    fd = ::open(path.c_str(), flags, 0644);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Status::Internal(Errno("open", path));
  return fd;
}

Status WriteAll(int fd, const void* data, std::size_t size,
                const std::string& path) {
  const char* p = static_cast<const char*>(data);
  std::size_t left = size;
  while (left > 0) {
    ssize_t n = ::write(fd, p, left);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Status::Internal(Errno("write", path));
    }
    p += n;
    left -= static_cast<std::size_t>(n);
  }
  return Status::Ok();
}

Status SyncData(int fd, const std::string& path) {
  int rc;
  do {
    rc = ::fdatasync(fd);
  } while (rc != 0 && errno == EINTR);
  if (rc != 0) return Status::Internal(Errno("fdatasync", path));
  return Status::Ok();
}

Status SyncDir(const std::string& dir) {
  int fd;
  do {
    fd = ::open(dir.c_str(), O_RDONLY | O_DIRECTORY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) return Status::Internal(Errno("open(dir)", dir));
  int rc;
  do {
    rc = ::fsync(fd);
  } while (rc != 0 && errno == EINTR);
  const int saved_errno = errno;
  if (::close(fd) != 0 && rc == 0) {
    return Status::Internal(Errno("close(dir)", dir));
  }
  if (rc != 0) {
    errno = saved_errno;
    return Status::Internal(Errno("fsync(dir)", dir));
  }
  return Status::Ok();
}

StatusOr<std::string> ReadFileBytes(const std::string& path) {
  int fd;
  do {
    fd = ::open(path.c_str(), O_RDONLY);
  } while (fd < 0 && errno == EINTR);
  if (fd < 0) {
    if (errno == ENOENT) {
      return Status::NotFound("no such file: " + path);
    }
    return Status::Internal(Errno("open", path));
  }
  std::string out;
  char buf[1 << 16];
  for (;;) {
    ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      if (errno == EINTR) continue;
      Status s = Status::Internal(Errno("read", path));
      (void)::close(fd);
      return s;
    }
    if (n == 0) break;
    out.append(buf, static_cast<std::size_t>(n));
  }
  if (::close(fd) != 0) return Status::Internal(Errno("close", path));
  return out;
}

Status RemoveFile(const std::string& path) {
  if (::unlink(path.c_str()) != 0 && errno != ENOENT) {
    return Status::Internal(Errno("unlink", path));
  }
  return Status::Ok();
}

Status RenameFile(const std::string& from, const std::string& to) {
  if (::rename(from.c_str(), to.c_str()) != 0) {
    return Status::Internal(Errno("rename", from + " -> " + to));
  }
  return Status::Ok();
}

bool FileExists(const std::string& path) {
  struct stat st;
  return ::stat(path.c_str(), &st) == 0;
}

}  // namespace rnt::storage
