#include "storage/retention_log.h"

#include <cstdio>
#include <cstring>

#include <unistd.h>

#include "storage/crc32.h"
#include "storage/file_io.h"
#include "storage/wal_format.h"

namespace rnt::storage {

namespace {

constexpr char kRetMagic[8] = {'R', 'N', 'T', 'R', 'E', 'T', '0', '1'};
constexpr std::size_t kRetMagicSize = 8;
constexpr std::size_t kRetPayloadSize = 5;  // action u32 + status u8

}  // namespace

std::string RetentionLog::FileName(NodeId node) {
  char buf[32];
  std::snprintf(buf, sizeof(buf), "retained-%03u.log", node);
  return buf;
}

StatusOr<std::unique_ptr<RetentionLog>> RetentionLog::Open(
    const std::string& dir, NodeId node) {
  return Open(dir, node, Options());
}

StatusOr<std::unique_ptr<RetentionLog>> RetentionLog::Open(
    const std::string& dir, NodeId node, Options options) {
  const std::string path = dir + "/" + FileName(node);
  const bool fresh = !FileExists(path);
  RNT_ASSIGN_OR_RETURN(int fd, OpenForAppend(path, /*truncate=*/false));
  if (fresh) {
    Status s = WriteAll(fd, kRetMagic, kRetMagicSize, path);
    if (s.ok() && options.fsync) s = SyncData(fd, path);
    if (!s.ok()) {
      (void)::close(fd);
      return s;
    }
  }
  return std::unique_ptr<RetentionLog>(
      new RetentionLog(path, fd, options));
}

RetentionLog::~RetentionLog() {
  MutexLock lk(mu_);
  if (fd_ >= 0) (void)::close(fd_);
}

Status RetentionLog::Append(ActionId action, action::ActionStatus status) {
  std::string payload;
  payload.reserve(kRetPayloadSize);
  PutU32(payload, action);
  payload.push_back(static_cast<char>(status));
  std::string rec;
  PutU32(rec, Crc32(payload.data(), payload.size()));
  PutU32(rec, static_cast<std::uint32_t>(payload.size()));
  rec.append(payload);
  MutexLock lk(mu_);
  RNT_RETURN_IF_ERROR(WriteAll(fd_, rec.data(), rec.size(), path_));
  if (options_.fsync) RNT_RETURN_IF_ERROR(SyncData(fd_, path_));
  return Status::Ok();
}

StatusOr<dist::ActionSummary> RetentionLog::Load(const std::string& dir,
                                                 NodeId node) {
  const std::string path = dir + "/" + FileName(node);
  RNT_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  dist::ActionSummary summary;
  if (bytes.size() < kRetMagicSize) return summary;  // torn at birth
  if (std::memcmp(bytes.data(), kRetMagic, kRetMagicSize) != 0) {
    return Status::DataLoss("retention log '" + path + "': bad magic");
  }
  const auto* base = reinterpret_cast<const unsigned char*>(bytes.data());
  std::size_t off = kRetMagicSize;
  while (off < bytes.size()) {
    const std::size_t remaining = bytes.size() - off;
    if (remaining < kWalHeaderSize) break;  // torn tail
    const std::uint32_t crc = GetU32(base + off);
    const std::uint32_t payload_size = GetU32(base + off + 4);
    if (payload_size != kRetPayloadSize) {
      if (remaining < kWalHeaderSize + kRetPayloadSize) break;  // torn
      return Status::DataLoss("retention log '" + path +
                              "': corrupt record header at offset " +
                              std::to_string(off));
    }
    if (remaining < kWalHeaderSize + payload_size) break;  // torn tail
    const unsigned char* payload = base + off + kWalHeaderSize;
    if (Crc32(payload, payload_size) != crc) {
      return Status::DataLoss("retention log '" + path +
                              "': CRC mismatch at offset " +
                              std::to_string(off));
    }
    const ActionId action = GetU32(payload);
    const auto status = static_cast<action::ActionStatus>(payload[4]);
    // Monotone merge: knowledge only ever upgrades (M_i monotonicity).
    if (!summary.Contains(action)) {
      summary.AddActive(action);
    }
    if (status != action::ActionStatus::kActive) {
      summary.SetStatus(action, status);
    }
    off += kWalHeaderSize + payload_size;
  }
  return summary;
}

}  // namespace rnt::storage
