#include "storage/recovery.h"

#include <algorithm>
#include <vector>

#include "lock/lock_manager.h"
#include "storage/log_reader.h"
#include "storage/snapshot.h"

namespace rnt::storage {

namespace {

using lock::kNoTxn;
using lock::TxnId;

/// Redo-time transaction record: the nested value map in miniature.
struct RedoTxn {
  TxnId parent = kNoTxn;
  enum class State : std::uint8_t { kActive, kCommitted, kAborted } state =
      State::kActive;
  std::map<ObjectId, Value> buffer;
};

}  // namespace

StatusOr<RecoveryReport> Recover(const RecoveryOptions& options) {
  RecoveryReport report;

  // ---- Load the snapshot (absent on a fresh directory). ----
  Snapshot snap;
  auto snap_or = ReadSnapshot(options.dir);
  if (snap_or.ok()) {
    snap = std::move(snap_or).value();
    report.snapshot_loaded = true;
  } else if (snap_or.status().code() != StatusCode::kNotFound) {
    return snap_or.status();  // kDataLoss: refuse to open
  }
  report.store = snap.store;
  report.last_lsn = snap.last_lsn;

  // ---- Scan the per-worker files; merge by LSN. ----
  std::vector<WalRecord> records;
  for (const std::string& path : ListWalFiles(options.dir)) {
    RNT_ASSIGN_OR_RETURN(WalFileContents contents, ReadWalFile(path));
    if (contents.torn_tail) ++report.torn_tails;
    report.records_scanned += contents.records.size();
    records.insert(records.end(), contents.records.begin(),
                   contents.records.end());
  }
  std::sort(records.begin(), records.end(),
            [](const WalRecord& a, const WalRecord& b) {
              return a.lsn < b.lsn;
            });

  // ---- Gap truncation: keep the dense prefix above the snapshot. ----
  // Stale records (lsn <= snapshot horizon) are skipped: their effects
  // are already in the snapshot — they only exist when a crash hit the
  // checkpoint between snapshot write and WAL reset. Everything past
  // the first gap was never acknowledged (the durable horizon is the
  // end of a dense prefix) and is dropped.
  std::vector<txn::TraceEvent> events;
  std::uint64_t expect = snap.last_lsn + 1;
  bool gapped = false;
  for (const WalRecord& rec : records) {
    if (rec.lsn <= snap.last_lsn) {
      ++report.records_stale;
      continue;
    }
    if (gapped || rec.lsn != expect) {
      if (!gapped && rec.lsn < expect) {
        return Status::DataLoss(
            "WAL: duplicate LSN " + std::to_string(rec.lsn) +
            " (two incarnations' logs interleaved — corrupt directory)");
      }
      gapped = true;
      ++report.records_dropped;
      continue;
    }
    events.push_back(rec.event);
    report.last_lsn = rec.lsn;
    ++expect;
  }

  // ---- Synthetic initializer: make the history self-contained. ----
  // The WAL prefix executed against a store preloaded from the
  // snapshot, so its logged `seen` values presuppose that state. A
  // synthetic committed top-level transaction writing each snapshot
  // value first turns the history into a valid computation from
  // all-zero initial values — which is what ReplayTrace and the
  // Theorem 9 checker assume.
  TxnId max_id = 0;
  for (const txn::TraceEvent& e : events) max_id = std::max(max_id, e.id);
  txn::Trace& history = report.history;
  if (!snap.store.empty()) {
    TxnId init = max_id + 1;
    TxnId next = init + 1;
    history.events.push_back(
        {txn::TraceEvent::Kind::kBegin, init, kNoTxn, 0, {}, 0});
    for (const auto& [x, v] : snap.store) {
      history.events.push_back({txn::TraceEvent::Kind::kPerform, next++,
                                init, x, action::Update::Write(v), 0});
    }
    history.events.push_back(
        {txn::TraceEvent::Kind::kCommit, init, kNoTxn, 0, {}, 0});
  }
  history.events.insert(history.events.end(), events.begin(), events.end());

  // ---- Analysis + redo (one pass: the log is logical, each event
  // carries everything both phases need). ----
  std::map<TxnId, RedoTxn> txns;
  auto visible = [&](TxnId t, ObjectId x) -> Value {
    for (TxnId c = t; c != kNoTxn;) {
      auto it = txns.find(c);
      if (it == txns.end()) break;
      auto v = it->second.buffer.find(x);
      if (v != it->second.buffer.end()) return v->second;
      c = it->second.parent;
    }
    auto sit = report.store.find(x);
    return sit == report.store.end() ? action::kInitValue : sit->second;
  };
  for (const txn::TraceEvent& e : events) {
    ++report.redone_events;
    switch (e.kind) {
      case txn::TraceEvent::Kind::kBegin: {
        RedoTxn t;
        t.parent = e.parent;
        txns.emplace(e.id, std::move(t));
        break;
      }
      case txn::TraceEvent::Kind::kPerform: {
        auto it = txns.find(e.parent);
        if (it == txns.end()) {
          return Status::DataLoss(
              "WAL: access record for unknown transaction " +
              std::to_string(e.parent));
        }
        const Value seen = visible(e.parent, e.object);
        if (seen != e.seen) {
          return Status::DataLoss(
              "WAL: semantic corruption — access " + std::to_string(e.id) +
              " on object " + std::to_string(e.object) + " logged seen=" +
              std::to_string(e.seen) + " but redo derives " +
              std::to_string(seen));
        }
        if (!e.update.IsRead()) {
          it->second.buffer[e.object] = e.update.Apply(seen);
        }
        break;
      }
      case txn::TraceEvent::Kind::kCommit: {
        auto it = txns.find(e.id);
        if (it == txns.end()) {
          return Status::DataLoss("WAL: commit of unknown transaction " +
                                  std::to_string(e.id));
        }
        RedoTxn& t = it->second;
        if (t.parent == kNoTxn) {
          for (const auto& [x, v] : t.buffer) report.store[x] = v;
          ++report.committed_top;
        } else {
          auto pit = txns.find(t.parent);
          if (pit == txns.end()) {
            return Status::DataLoss(
                "WAL: commit into unknown parent transaction " +
                std::to_string(t.parent));
          }
          for (const auto& [x, v] : t.buffer) pit->second.buffer[x] = v;
        }
        t.buffer.clear();
        t.state = RedoTxn::State::kCommitted;
        break;
      }
      case txn::TraceEvent::Kind::kAbort: {
        auto it = txns.find(e.id);
        if (it == txns.end()) {
          return Status::DataLoss("WAL: abort of unknown transaction " +
                                  std::to_string(e.id));
        }
        it->second.buffer.clear();
        it->second.state = RedoTxn::State::kAborted;
        break;
      }
    }
  }

  if (options.after_redo) options.after_redo();

  // ---- Undo: roll back in-flight subtransaction trees. ----
  // Descending id is children-first (a child's id is always larger than
  // its parent's), so the synthetic aborts replay exactly like the
  // engine's cascade: one abort event per vertex, leaves upward.
  std::vector<TxnId> live;
  for (const auto& [id, t] : txns) {
    if (t.state == RedoTxn::State::kActive) live.push_back(id);
  }
  std::sort(live.rbegin(), live.rend());
  for (TxnId id : live) {
    RedoTxn& t = txns.at(id);
    t.buffer.clear();  // discard private versions — nothing reaches the
                       // store, which is the whole point of undo
    t.state = RedoTxn::State::kAborted;
    history.events.push_back(
        {txn::TraceEvent::Kind::kAbort, id, t.parent, 0, {}, 0});
    ++report.undone_txns;
  }

  return report;
}

}  // namespace rnt::storage
