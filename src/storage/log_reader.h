#ifndef RNT_STORAGE_LOG_READER_H_
#define RNT_STORAGE_LOG_READER_H_

#include <string>
#include <vector>

#include "common/status.h"
#include "storage/wal_format.h"

namespace rnt::storage {

/// The parsed contents of one per-worker WAL file.
struct WalFileContents {
  std::vector<WalRecord> records;
  /// True when the file ended mid-record — the expected signature of a
  /// crash during an append. The torn bytes are discarded (they were
  /// never acknowledged: group commit only advances the horizon past
  /// records it fully wrote and synced).
  bool torn_tail = false;
  std::uint64_t torn_bytes = 0;
};

/// Reads and validates one WAL file.
///
/// Failure taxonomy (the torn-write satellite's contract):
///  * short header/payload at end-of-file  -> torn tail, tolerated;
///  * CRC mismatch on a fully present record -> kDataLoss (bit
///    corruption of data that claimed durability), with file, record
///    offset, and LSN-so-far in the message;
///  * bad file magic or impossible size field with full record space
///    present -> kDataLoss likewise.
///
/// The distinction is sound because appends are sequential: a crash can
/// only leave a *prefix* of the file, so anything short lives at the
/// tail, while a failed checksum inside complete bytes can never be
/// produced by a torn append.
StatusOr<WalFileContents> ReadWalFile(const std::string& path);

/// The WAL file paths present in `dir`, in worker order. Gaps in the
/// index sequence are not an error — a crash during WAL reset may have
/// unlinked an arbitrary subset.
std::vector<std::string> ListWalFiles(const std::string& dir);

/// Upper bound on per-directory worker files probed by ListWalFiles.
inline constexpr std::uint32_t kMaxWalWorkers = 256;

}  // namespace rnt::storage

#endif  // RNT_STORAGE_LOG_READER_H_
