#ifndef RNT_STORAGE_RETENTION_LOG_H_
#define RNT_STORAGE_RETENTION_LOG_H_

#include <memory>
#include <string>

#include "action/action_tree.h"
#include "common/mutex.h"
#include "common/status.h"
#include "common/thread_annotations.h"
#include "common/types.h"
#include "dist/summary.h"

namespace rnt::storage {

/// Durable backing for a node's retention buffer M_i (paper §9.1).
///
/// The parallel ℬ runtime retains (action, status) knowledge in
/// ConcurrentMailbox::Retain before acting on it — the WAL discipline
/// that makes simulated crash/rebirth sound. This log extends that
/// discipline to real process death: every Retain is also appended
/// here, so after kill -9 the node's M_i is rebuilt from disk and
/// rebirth replays it as the paper's one legal Receive.
///
/// M_i monotonicity makes the format trivial: entries only ever *add*
/// knowledge (a status may upgrade active → committed/aborted, never
/// regress), so an append-only record stream replayed in order — with
/// upgrades-only merge — reconstructs exactly the retained summary, and
/// a torn tail loses only knowledge the node never acted on.
///
/// Record: crc32 (u32, over payload) · size (u32) · payload
/// Payload: action u32 · status u8.
class RetentionLog {
 public:
  struct Options {
    /// fdatasync every append. Default off: page-cache durability
    /// survives process kill (the fault model here); the paper's node
    /// is "resilient" against component crash, not media loss.
    bool fsync = false;
  };

  /// Opens (creating or appending to) the node's retention file.
  static StatusOr<std::unique_ptr<RetentionLog>> Open(
      const std::string& dir, NodeId node, Options options);
  static StatusOr<std::unique_ptr<RetentionLog>> Open(const std::string& dir,
                                                      NodeId node);
  ~RetentionLog();

  RetentionLog(const RetentionLog&) = delete;
  RetentionLog& operator=(const RetentionLog&) = delete;

  /// Appends one retained fact. Thread-safe (the runner's delivery and
  /// self-send paths both retain).
  Status Append(ActionId action, action::ActionStatus status);

  /// Replays a node's retention file into a summary. Torn tails are
  /// discarded (unacknowledged knowledge); CRC damage inside the log is
  /// kDataLoss. kNotFound if the node never persisted anything.
  static StatusOr<dist::ActionSummary> Load(const std::string& dir,
                                            NodeId node);

  static std::string FileName(NodeId node);

 private:
  RetentionLog(std::string path, int fd, Options options)
      : path_(std::move(path)), options_(options), fd_(fd) {}

  const std::string path_;
  const Options options_;
  Mutex mu_;
  int fd_ GUARDED_BY(mu_) = -1;
};

}  // namespace rnt::storage

#endif  // RNT_STORAGE_RETENTION_LOG_H_
