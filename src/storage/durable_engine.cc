#include "storage/durable_engine.h"

#include <utility>

#include "storage/file_io.h"
#include "storage/log_reader.h"
#include "storage/snapshot.h"

namespace rnt::storage {

/// Wraps an inner transaction handle; top-level commits wait for the
/// group-commit barrier before acknowledging.
class DurableEngine::Handle final : public txn::TxnHandle {
 public:
  Handle(std::unique_ptr<txn::TxnHandle> inner, Wal* wal, bool top)
      : inner_(std::move(inner)), wal_(wal), top_(top) {}

  StatusOr<Value> Get(ObjectId x) override { return inner_->Get(x); }
  Status Put(ObjectId x, Value v) override { return inner_->Put(x, v); }
  StatusOr<Value> Apply(ObjectId x, const action::Update& update) override {
    return inner_->Apply(x, update);
  }

  StatusOr<std::unique_ptr<txn::TxnHandle>> BeginChild() override {
    RNT_ASSIGN_OR_RETURN(std::unique_ptr<txn::TxnHandle> child,
                         inner_->BeginChild());
    return std::unique_ptr<txn::TxnHandle>(
        new Handle(std::move(child), wal_, /*top=*/false));
  }

  Status Commit() override {
    RNT_RETURN_IF_ERROR(inner_->Commit());
    // Durability point: only a *top-level* commit is acknowledged to
    // the outside world, so only it waits for the WAL horizon.
    // Subtransaction commits log (the record is already buffered) but
    // return immediately — the paper's commit-to-parent is a
    // visibility event, not a durability event.
    if (top_) return wal_->BarrierAll();
    return Status::Ok();
  }

  Status Abort() override { return inner_->Abort(); }

 private:
  std::unique_ptr<txn::TxnHandle> inner_;
  Wal* wal_;
  const bool top_;
};

StatusOr<std::unique_ptr<DurableEngine>> DurableEngine::Open(
    const std::string& dir, DurableEngineOptions options) {
  // 1. Restart recovery (read-only).
  RecoveryOptions ropts;
  ropts.dir = dir;
  ropts.after_redo = options.after_redo;
  RNT_ASSIGN_OR_RETURN(RecoveryReport recovery, Recover(ropts));

  // 2. The recovered store becomes the new checkpoint. Atomic rename:
  // a crash here leaves either the old snapshot (re-recover from the
  // same inputs) or the new one (stale WAL records are skipped).
  Snapshot snap;
  snap.last_lsn = recovery.last_lsn;
  snap.store = recovery.store;
  RNT_RETURN_IF_ERROR(WriteSnapshot(dir, snap));

  if (options.between_snapshot_and_reset) options.between_snapshot_and_reset();

  // 3. Old WAL records are all at-or-below the new snapshot horizon
  // (or beyond a gap): dead either way. Remove the files; Wal::Open
  // recreates its worker set fresh.
  for (const std::string& path : ListWalFiles(dir)) {
    RNT_RETURN_IF_ERROR(RemoveFile(path));
  }

  // 4. Fresh WAL, LSNs continuing past the horizon; engine preloaded
  // with the recovered store and wired to log through the WAL.
  WalOptions wopts;
  wopts.dir = dir;
  wopts.workers = options.wal_workers;
  wopts.group_commit_interval = options.group_commit_interval;
  wopts.batch_records = options.batch_records;
  wopts.fsync = options.fsync;
  wopts.first_lsn = recovery.last_lsn + 1;
  RNT_ASSIGN_OR_RETURN(std::unique_ptr<Wal> wal, Wal::Open(std::move(wopts)));

  txn::TransactionManager::Options eopts = options.engine;
  eopts.trace_sink = wal.get();
  auto inner = std::make_unique<txn::TransactionManager>(eopts);
  inner->Preload(recovery.store);

  return std::unique_ptr<DurableEngine>(
      new DurableEngine(dir, std::move(recovery), std::move(wal),
                        std::move(inner)));
}

DurableEngine::DurableEngine(std::string dir, RecoveryReport recovery,
                             std::unique_ptr<Wal> wal,
                             std::unique_ptr<txn::TransactionManager> inner)
    : dir_(std::move(dir)),
      recovery_(std::move(recovery)),
      wal_(std::move(wal)),
      inner_(std::move(inner)) {}

DurableEngine::~DurableEngine() = default;

std::unique_ptr<txn::TxnHandle> DurableEngine::Begin() {
  return std::unique_ptr<txn::TxnHandle>(
      new Handle(inner_->Begin(), wal_.get(), /*top=*/true));
}

Value DurableEngine::ReadCommitted(ObjectId x) {
  return inner_->ReadCommitted(x);
}

Status DurableEngine::Checkpoint() {
  RNT_RETURN_IF_ERROR(wal_->BarrierAll());
  Snapshot snap;
  snap.last_lsn = wal_->next_lsn() - 1;
  snap.store = inner_->DumpCommitted();
  RNT_RETURN_IF_ERROR(WriteSnapshot(dir_, snap));
  return wal_->Reset();
}

}  // namespace rnt::storage
