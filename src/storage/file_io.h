#ifndef RNT_STORAGE_FILE_IO_H_
#define RNT_STORAGE_FILE_IO_H_

#include <cstddef>
#include <string>

#include "common/status.h"

namespace rnt::storage {

/// Thin checked wrappers over POSIX file I/O. Every syscall return value
/// is inspected and turned into a Status — the storage layer's durability
/// claims are only as good as its error handling, and tools/lint enforces
/// (rule `unchecked-io`) that src/storage never drops a `write`/`fsync`/
/// `fdatasync` result.

/// Opens `path` for appending, creating it if needed; truncates first
/// when `truncate` is set. Returns the raw fd (caller closes).
StatusOr<int> OpenForAppend(const std::string& path, bool truncate);

/// Writes all `size` bytes, looping over partial writes and EINTR.
Status WriteAll(int fd, const void* data, std::size_t size,
                const std::string& path);

/// fdatasync(fd): flushes file data (not directory metadata) to stable
/// storage — the group-commit syscall.
Status SyncData(int fd, const std::string& path);

/// fsync on the directory itself, making renames/creates within it
/// durable (the second half of the atomic-rename snapshot protocol).
Status SyncDir(const std::string& dir);

/// Reads the whole file into a byte string. kNotFound when absent.
StatusOr<std::string> ReadFileBytes(const std::string& path);

/// Unlinks `path`; absence is not an error.
Status RemoveFile(const std::string& path);

/// Renames `from` to `to` (same filesystem, atomic).
Status RenameFile(const std::string& from, const std::string& to);

bool FileExists(const std::string& path);

}  // namespace rnt::storage

#endif  // RNT_STORAGE_FILE_IO_H_
