#include "storage/wal.h"

#include <algorithm>
#include <utility>

#include <unistd.h>

#include "storage/crc32.h"
#include "storage/file_io.h"

namespace rnt::storage {

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
constexpr auto kAcquire = std::memory_order_acquire;
constexpr auto kRelease = std::memory_order_release;
}  // namespace

Wal::Wal(WalOptions options)
    : options_(std::move(options)),
      next_lsn_(options_.first_lsn),
      durable_lsn_(options_.first_lsn - 1) {}

StatusOr<std::unique_ptr<Wal>> Wal::Open(WalOptions options) {
  if (options.workers == 0) {
    return Status::InvalidArgument("WalOptions::workers must be >= 1");
  }
  if (options.first_lsn == 0) {
    return Status::InvalidArgument("WalOptions::first_lsn must be >= 1");
  }
  std::unique_ptr<Wal> wal(new Wal(std::move(options)));
  for (std::uint32_t w = 0; w < wal->options_.workers; ++w) {
    auto slot = std::make_unique<Slot>();
    slot->path = wal->options_.dir + "/" + WalFileName(w);
    RNT_ASSIGN_OR_RETURN(slot->fd,
                         OpenForAppend(slot->path, /*truncate=*/true));
    RNT_RETURN_IF_ERROR(
        WriteAll(slot->fd, kWalMagic, kWalMagicSize, slot->path));
    wal->slots_.push_back(std::move(slot));
  }
  // Make the (possibly fresh) files' directory entries durable before
  // any record is acknowledged through them.
  if (wal->options_.fsync) RNT_RETURN_IF_ERROR(SyncDir(wal->options_.dir));
  wal->gc_thread_ = std::thread([w = wal.get()] { w->GroupCommitLoop(); });
  return wal;
}

Wal::~Wal() {
  {
    MutexLock lk(gc_mu_);
    stop_ = true;
    gc_cv_.NotifyAll();
  }
  if (gc_thread_.joinable()) gc_thread_.join();
  // Final best-effort flush so a clean shutdown loses nothing even if
  // no barrier was issued.
  (void)FlushOnce();
  for (auto& slot : slots_) {
    if (slot->fd >= 0) (void)::close(slot->fd);
  }
}

Wal::Slot& Wal::SlotForThisThread() {
  // Round-robin thread -> slot binding, fixed at a thread's first
  // append. (The counter is process-wide across Wal instances; only the
  // modulus matters.)
  thread_local std::size_t assigned = slot_rr_.fetch_add(1, kRelaxed);
  return *slots_[assigned % slots_.size()];
}

void Wal::Append(const txn::TraceEvent& event) {
  Slot& slot = SlotForThisThread();
  bool kick = false;
  {
    MutexLock lk(slot.mu);
    // LSN allocation under the slot mutex: allocation and push are
    // atomic per slot, which the durable-horizon computation in
    // FlushOnce depends on (see wal.h).
    WalRecord rec{next_lsn_.fetch_add(1, kRelaxed), event};
    slot.pending.push_back(rec);
    kick = slot.pending.size() >= options_.batch_records;
  }
  appended_.fetch_add(1, kRelaxed);
  if (kick) {
    MutexLock lk(gc_mu_);
    flush_requested_ = true;
    gc_cv_.NotifyAll();
  }
}

Status Wal::BarrierAll() {
  // Everything allocated before the call must become durable. The load
  // may over-approximate (include a concurrent append); that only makes
  // the barrier stronger.
  const std::uint64_t target = next_lsn_.load(kAcquire) - 1;
  MutexLock lk(gc_mu_);
  while (durable_lsn_.load(kAcquire) < target && io_error_.ok()) {
    flush_requested_ = true;
    gc_cv_.NotifyAll();
    durable_cv_.WaitUntil(gc_mu_, std::chrono::steady_clock::now() +
                                      options_.group_commit_interval);
  }
  return io_error_;
}

void Wal::GroupCommitLoop() {
  for (;;) {
    {
      MutexLock lk(gc_mu_);
      if (!stop_ && !flush_requested_) {
        gc_cv_.WaitUntil(gc_mu_, std::chrono::steady_clock::now() +
                                     options_.group_commit_interval);
      }
      if (stop_) return;  // destructor runs the final flush
      flush_requested_ = false;
    }
    Status s = FlushOnce();
    if (!s.ok()) {
      MutexLock lk(gc_mu_);
      if (io_error_.ok()) io_error_ = s;
      durable_cv_.NotifyAll();
      return;  // a failed WAL must not acknowledge anything further
    }
  }
}

Status Wal::FlushOnce() {
  MutexLock flush_lk(flush_mu_);
  // Phase 1: collect every slot's pending batch (short critical
  // sections; appenders keep running).
  std::vector<std::vector<WalRecord>> batches(slots_.size());
  std::uint64_t round_records = 0;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    Slot& slot = *slots_[i];
    MutexLock lk(slot.mu);
    batches[i] = std::move(slot.pending);
    slot.pending.clear();
    round_records += batches[i].size();
  }
  // Phase 2: encode + write + fsync per worker file.
  std::string buf;
  for (std::size_t i = 0; i < slots_.size(); ++i) {
    if (batches[i].empty()) continue;
    Slot& slot = *slots_[i];
    buf.clear();
    for (const WalRecord& rec : batches[i]) {
      std::string payload;
      payload.reserve(kWalPayloadSize);
      EncodeWalPayload(payload, rec);
      PutU32(buf, Crc32(payload.data(), payload.size()));
      PutU32(buf, static_cast<std::uint32_t>(payload.size()));
      buf.append(payload);
    }
    RNT_RETURN_IF_ERROR(WriteAll(slot.fd, buf.data(), buf.size(), slot.path));
    if (options_.fsync) RNT_RETURN_IF_ERROR(SyncData(slot.fd, slot.path));
  }
  // Phase 3: advance the durable horizon (see wal.h for the proof that
  // this re-lock pass is safe against concurrent appends).
  std::uint64_t min_undurable = next_lsn_.load(kAcquire);
  for (auto& slot_ptr : slots_) {
    Slot& slot = *slot_ptr;
    MutexLock lk(slot.mu);
    const std::uint64_t contribution = slot.pending.empty()
                                           ? next_lsn_.load(kAcquire)
                                           : slot.pending.front().lsn;
    min_undurable = std::min(min_undurable, contribution);
  }
  const std::uint64_t horizon = min_undurable - 1;
  if (horizon > durable_lsn_.load(kAcquire)) {
    durable_lsn_.store(horizon, kRelease);
  }
  {
    MutexLock lk(gc_mu_);
    if (round_records > 0) {
      ++stats_.batches;
      stats_.synced_records += round_records;
      stats_.max_batch = std::max(stats_.max_batch, round_records);
    }
    durable_cv_.NotifyAll();
  }
  return Status::Ok();
}

Status Wal::Reset() {
  // Quiescent contract: no engine thread is appending. Still serialize
  // against a group-commit round in flight.
  MutexLock flush_lk(flush_mu_);
  for (auto& slot_ptr : slots_) {
    Slot& slot = *slot_ptr;
    MutexLock lk(slot.mu);
    if (!slot.pending.empty()) {
      return Status::IllegalState(
          "Wal::Reset with pending records (caller must BarrierAll "
          "while quiescent first)");
    }
    if (::ftruncate(slot.fd, 0) != 0) {
      return Status::Internal("ftruncate failed for '" + slot.path + "'");
    }
    RNT_RETURN_IF_ERROR(
        WriteAll(slot.fd, kWalMagic, kWalMagicSize, slot.path));
    if (options_.fsync) RNT_RETURN_IF_ERROR(SyncData(slot.fd, slot.path));
  }
  durable_lsn_.store(next_lsn_.load(kAcquire) - 1, kRelease);
  return Status::Ok();
}

Wal::Stats Wal::stats() const {
  MutexLock lk(gc_mu_);
  Stats s = stats_;
  s.appended = appended_.load(kRelaxed);
  return s;
}

}  // namespace rnt::storage
