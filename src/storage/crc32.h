#ifndef RNT_STORAGE_CRC32_H_
#define RNT_STORAGE_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace rnt::storage {

/// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) over a byte
/// range. Every WAL and snapshot record carries this checksum so
/// recovery can tell a torn tail (incomplete record at end-of-file,
/// expected after a crash) from real corruption (a damaged record that
/// acknowledged durability — kDataLoss).
///
/// Software table implementation: portable, no hardware CRC dependency,
/// and fast enough — the group-commit thread checksums batches off the
/// transaction critical path.
namespace internal {

constexpr std::array<std::uint32_t, 256> MakeCrc32Table() {
  std::array<std::uint32_t, 256> table{};
  for (std::uint32_t i = 0; i < 256; ++i) {
    std::uint32_t c = i;
    for (int k = 0; k < 8; ++k) {
      c = (c & 1u) ? 0xEDB88320u ^ (c >> 1) : c >> 1;
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<std::uint32_t, 256> kCrc32Table =
    MakeCrc32Table();

}  // namespace internal

inline std::uint32_t Crc32(const void* data, std::size_t size,
                           std::uint32_t seed = 0) {
  const auto* p = static_cast<const unsigned char*>(data);
  std::uint32_t c = seed ^ 0xFFFFFFFFu;
  for (std::size_t i = 0; i < size; ++i) {
    c = internal::kCrc32Table[(c ^ p[i]) & 0xFFu] ^ (c >> 8);
  }
  return c ^ 0xFFFFFFFFu;
}

}  // namespace rnt::storage

#endif  // RNT_STORAGE_CRC32_H_
