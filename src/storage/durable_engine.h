#ifndef RNT_STORAGE_DURABLE_ENGINE_H_
#define RNT_STORAGE_DURABLE_ENGINE_H_

#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>

#include "common/status.h"
#include "storage/recovery.h"
#include "storage/wal.h"
#include "txn/engine.h"
#include "txn/transaction_manager.h"

namespace rnt::storage {

struct DurableEngineOptions {
  /// Options for the wrapped in-memory engine. `trace_sink` is
  /// overwritten (the WAL claims it).
  txn::TransactionManager::Options engine;
  /// WAL shape; `dir` and `first_lsn` are filled in by Open.
  std::uint32_t wal_workers = 4;
  std::chrono::milliseconds group_commit_interval{2};
  std::size_t batch_records = 256;
  /// fdatasync batches. Off = page-cache durability: survives kill -9
  /// (the harness's fault model) but not an OS crash.
  bool fsync = true;
  /// Test hook, forwarded to RecoveryOptions::after_redo.
  std::function<void()> after_redo;
  /// Test hook: invoked inside Open between the fresh-snapshot write
  /// and the WAL reset — the only window where stale WAL records
  /// coexist with a newer snapshot. The idempotence tests kill -9 here.
  std::function<void()> between_snapshot_and_reset;
};

/// The persistent engine: recovery + snapshot + WAL wrapped around the
/// in-memory TransactionManager, presented through the same txn::Engine
/// interface (drop-in for every existing workload and checker).
///
/// Open(dir):
///   1. Recover(dir)                  — read-only: snapshot + WAL scan,
///                                      redo, undo;
///   2. WriteSnapshot(recovered)      — the recovered store becomes the
///                                      new checkpoint (atomic rename);
///   3. reset WAL files               — records below the new snapshot
///                                      horizon are dead;
///   4. start a fresh Wal (LSNs continue past the horizon) and a
///      TransactionManager with the Wal as its trace sink, preloaded
///      with the recovered store.
///
/// A crash anywhere in 2–4 re-recovers to the same state: stale WAL
/// records below the snapshot horizon are skipped, surviving ones form
/// the same dense prefix (see recovery.h).
///
/// Durability contract: when a top-level Commit() returns OK, every
/// record of the transaction's tree — and, by the group-commit
/// barrier's prefix property, of everything serialized before it — is
/// on disk. Subtransaction commits stay in-memory-cheap: they log but
/// do not wait (the paper's commit-to-parent is not a durability
/// point; only top-level commit is).
class DurableEngine final : public txn::Engine {
 public:
  static StatusOr<std::unique_ptr<DurableEngine>> Open(
      const std::string& dir, DurableEngineOptions options = {});
  ~DurableEngine() override;

  DurableEngine(const DurableEngine&) = delete;
  DurableEngine& operator=(const DurableEngine&) = delete;

  // txn::Engine.
  std::unique_ptr<txn::TxnHandle> Begin() override;
  Value ReadCommitted(ObjectId x) override;
  std::string name() const override { return "durable-nested-moss"; }

  /// Quiescent checkpoint: barrier the WAL, snapshot the committed
  /// store, reset the WAL. Caller guarantees no live transactions.
  Status Checkpoint();

  /// What restart recovery found when this engine opened.
  const RecoveryReport& recovery() const { return recovery_; }

  Wal::Stats wal_stats() const { return wal_->stats(); }
  txn::TransactionManager::Stats engine_stats() const {
    return inner_->stats();
  }
  /// Sticky WAL I/O error, surfaced without committing anything.
  Status wal_health() { return wal_->BarrierAll(); }

 private:
  class Handle;

  DurableEngine(std::string dir, RecoveryReport recovery,
                std::unique_ptr<Wal> wal,
                std::unique_ptr<txn::TransactionManager> inner);

  std::string dir_;
  RecoveryReport recovery_;
  // Destruction order matters: inner_ (declared later) is destroyed
  // first, so the WAL outlives every engine thread that appends to it.
  std::unique_ptr<Wal> wal_;
  std::unique_ptr<txn::TransactionManager> inner_;
};

}  // namespace rnt::storage

#endif  // RNT_STORAGE_DURABLE_ENGINE_H_
