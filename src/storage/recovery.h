#ifndef RNT_STORAGE_RECOVERY_H_
#define RNT_STORAGE_RECOVERY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <string>

#include "common/status.h"
#include "common/types.h"
#include "txn/trace.h"

namespace rnt::storage {

struct RecoveryOptions {
  /// Storage directory (snapshot + per-worker WAL files).
  std::string dir;
  /// Test hook: invoked between the redo and undo phases — the kill
  /// point for the recovery-idempotence tests. Never set in production.
  std::function<void()> after_redo;
};

/// The outcome of one restart recovery.
struct RecoveryReport {
  /// The recovered execution as a trace: a synthetic initializer
  /// transaction installing the snapshot's store (so the history is
  /// self-contained and replays from all-zero initial values), the
  /// durable WAL prefix in LSN order, then one synthetic abort per
  /// in-flight transaction (children first). Feeding this through
  /// txn::ReplayTrace + the Theorem 9 checker certifies the recovered
  /// state, exactly as for a live run.
  txn::Trace history;
  /// The committed top-level store after redo + undo.
  std::map<ObjectId, Value> store;
  /// Durable horizon: largest LSN whose record survived validation and
  /// gap truncation (== snapshot last_lsn when the WAL was empty).
  std::uint64_t last_lsn = 0;
  bool snapshot_loaded = false;

  std::uint64_t records_scanned = 0;   // CRC-valid records read
  std::uint64_t records_stale = 0;     // lsn <= snapshot horizon, skipped
  std::uint64_t records_dropped = 0;   // past the first LSN gap, dropped
  std::uint64_t torn_tails = 0;        // files ending mid-record
  std::uint64_t redone_events = 0;     // events replayed in redo
  std::uint64_t committed_top = 0;     // top-level commits made durable
  std::uint64_t undone_txns = 0;       // in-flight txns rolled back
};

/// ARIES-style restart recovery, specialized to the nested-transaction
/// log (logical, not page-based — the log records *are* trace events):
///
///  1. analysis — scan the durable prefix, building the transaction
///     table (who begun/committed/aborted, the tree shape);
///  2. redo — replay every event through a nested value-map (private
///     buffer per transaction, commit merges child into parent or into
///     the store), re-deriving each access's visible value and checking
///     it against the logged one;
///  3. undo — roll back transactions still in flight at the crash, as
///     synthetic abort events in descending-id (children-first) order,
///     mirroring the engine's cascade.
///
/// Recover is strictly read-only on `dir` — re-running it is trivially
/// idempotent; all mutation (fresh snapshot, WAL reset) belongs to
/// DurableEngine::Open, whose write sequence is itself crash-idempotent
/// (see Snapshot::last_lsn).
///
/// Errors: kDataLoss for mid-log corruption (CRC, structure, or a
/// semantic mismatch between a logged `seen` value and the replayed
/// one); torn tails and LSN gaps are tolerated by construction.
StatusOr<RecoveryReport> Recover(const RecoveryOptions& options);

}  // namespace rnt::storage

#endif  // RNT_STORAGE_RECOVERY_H_
