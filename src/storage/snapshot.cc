#include "storage/snapshot.h"

#include <cstring>

#include <unistd.h>

#include "storage/crc32.h"
#include "storage/file_io.h"
#include "storage/wal_format.h"

namespace rnt::storage {

namespace {

constexpr char kSnapMagic[8] = {'R', 'N', 'T', 'S', 'N', 'A', 'P', '1'};
constexpr std::size_t kSnapMagicSize = 8;

}  // namespace

Status WriteSnapshot(const std::string& dir, const Snapshot& snap) {
  std::string payload;
  PutU64(payload, snap.last_lsn);
  PutU64(payload, snap.store.size());
  for (const auto& [x, v] : snap.store) {
    PutU32(payload, x);
    PutU64(payload, static_cast<std::uint64_t>(v));
  }
  std::string bytes(kSnapMagic, kSnapMagicSize);
  PutU32(bytes, Crc32(payload.data(), payload.size()));
  PutU64(bytes, payload.size());
  bytes.append(payload);

  const std::string tmp = dir + "/" + SnapshotFileName() + ".tmp";
  const std::string final_path = dir + "/" + SnapshotFileName();
  RNT_ASSIGN_OR_RETURN(int fd, OpenForAppend(tmp, /*truncate=*/true));
  Status write_status = WriteAll(fd, bytes.data(), bytes.size(), tmp);
  if (write_status.ok()) write_status = SyncData(fd, tmp);
  if (::close(fd) != 0 && write_status.ok()) {
    write_status = Status::Internal("close failed for '" + tmp + "'");
  }
  RNT_RETURN_IF_ERROR(write_status);
  RNT_RETURN_IF_ERROR(RenameFile(tmp, final_path));
  return SyncDir(dir);
}

StatusOr<Snapshot> ReadSnapshot(const std::string& dir) {
  const std::string path = dir + "/" + SnapshotFileName();
  RNT_ASSIGN_OR_RETURN(std::string bytes, ReadFileBytes(path));
  const std::size_t header = kSnapMagicSize + /*crc*/ 4 + /*size*/ 8;
  if (bytes.size() < header ||
      std::memcmp(bytes.data(), kSnapMagic, kSnapMagicSize) != 0) {
    return Status::DataLoss("snapshot '" + path +
                            "': bad magic or truncated header");
  }
  const auto* base = reinterpret_cast<const unsigned char*>(bytes.data());
  const std::uint32_t crc = GetU32(base + kSnapMagicSize);
  const std::uint64_t payload_size = GetU64(base + kSnapMagicSize + 4);
  if (bytes.size() != header + payload_size) {
    return Status::DataLoss("snapshot '" + path + "': size mismatch (" +
                            std::to_string(bytes.size()) + " bytes, payload " +
                            std::to_string(payload_size) + ")");
  }
  const unsigned char* payload = base + header;
  const std::uint32_t actual = Crc32(payload, payload_size);
  if (actual != crc) {
    return Status::DataLoss("snapshot '" + path + "': CRC mismatch (stored " +
                            std::to_string(crc) + ", computed " +
                            std::to_string(actual) + ")");
  }
  if (payload_size < 16) {
    return Status::DataLoss("snapshot '" + path + "': payload too small");
  }
  Snapshot snap;
  snap.last_lsn = GetU64(payload);
  const std::uint64_t count = GetU64(payload + 8);
  if (payload_size != 16 + count * 12) {
    return Status::DataLoss("snapshot '" + path +
                            "': entry count inconsistent with payload size");
  }
  const unsigned char* p = payload + 16;
  for (std::uint64_t i = 0; i < count; ++i, p += 12) {
    snap.store[GetU32(p)] = static_cast<Value>(GetU64(p + 4));
  }
  return snap;
}

}  // namespace rnt::storage
