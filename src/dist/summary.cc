#include "dist/summary.h"

#include <sstream>

namespace rnt::dist {

std::string ActionSummary::ToString() const {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [a, s] : entries_) {
    if (!first) os << ", ";
    first = false;
    os << a << ":" << action::ActionStatusName(s);
  }
  os << "}";
  return os.str();
}

}  // namespace rnt::dist
