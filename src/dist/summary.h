#ifndef RNT_DIST_SUMMARY_H_
#define RNT_DIST_SUMMARY_H_

#include <map>
#include <string>
#include <vector>

#include "action/action_tree.h"
#include "common/random.h"
#include "common/types.h"

namespace rnt::dist {

/// An action summary (paper §9.1): partial knowledge of action statuses.
/// Unlike an action tree, the vertex set need not be closed under parent,
/// and there is no root — a node may know of a grandchild's commit before
/// ever hearing of the intermediate ancestors.
///
/// Statuses in a summary are monotone: once a node learns that an action
/// is committed or aborted, merging older "active" knowledge does not
/// regress it. (In the paper this is implicit: the home node is the only
/// component that changes a status, and ∪ is used only to add knowledge.)
class ActionSummary {
 public:
  ActionSummary() = default;

  bool Contains(ActionId a) const { return entries_.count(a) != 0; }

  /// Requires Contains(a).
  action::ActionStatus StatusOf(ActionId a) const { return entries_.at(a); }

  bool IsActive(ActionId a) const {
    auto it = entries_.find(a);
    return it != entries_.end() &&
           it->second == action::ActionStatus::kActive;
  }
  bool IsCommitted(ActionId a) const {
    auto it = entries_.find(a);
    return it != entries_.end() &&
           it->second == action::ActionStatus::kCommitted;
  }
  bool IsAborted(ActionId a) const {
    auto it = entries_.find(a);
    return it != entries_.end() &&
           it->second == action::ActionStatus::kAborted;
  }
  bool IsDone(ActionId a) const {
    auto it = entries_.find(a);
    return it != entries_.end() &&
           it->second != action::ActionStatus::kActive;
  }

  /// Adds `a` with status 'active'.
  void AddActive(ActionId a) {
    entries_.emplace(a, action::ActionStatus::kActive);
  }

  /// Sets the status of an already-present action.
  void SetStatus(ActionId a, action::ActionStatus s) { entries_[a] = s; }

  /// T <- T ∪ T′ (paper §9.1), with done-status priority.
  void MergeFrom(const ActionSummary& other) {
    for (const auto& [a, s] : other.entries_) {
      auto [it, inserted] = entries_.emplace(a, s);
      if (!inserted && it->second == action::ActionStatus::kActive) {
        it->second = s;
      }
    }
  }

  /// T′ ≤ T: componentwise containment of vertices/committed/aborted.
  bool IsSubsummaryOf(const ActionSummary& other) const {
    for (const auto& [a, s] : entries_) {
      auto it = other.entries_.find(a);
      if (it == other.entries_.end()) return false;
      if (s != action::ActionStatus::kActive && it->second != s) return false;
    }
    return true;
  }

  /// A uniformly random sub-summary (each entry kept with probability 1/2,
  /// done statuses optionally weakened to active) — used by the random
  /// executor to exercise partial-knowledge sends.
  ActionSummary RandomSub(Rng& rng) const {
    ActionSummary out;
    for (const auto& [a, s] : entries_) {
      if (!rng.Chance(0.5)) continue;
      if (s != action::ActionStatus::kActive && rng.Chance(0.25)) {
        out.entries_.emplace(a, action::ActionStatus::kActive);
      } else {
        out.entries_.emplace(a, s);
      }
    }
    return out;
  }

  const std::map<ActionId, action::ActionStatus>& entries() const {
    return entries_;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  std::string ToString() const;

  friend bool operator==(const ActionSummary&, const ActionSummary&) = default;

 private:
  std::map<ActionId, action::ActionStatus> entries_;
};

}  // namespace rnt::dist

#endif  // RNT_DIST_SUMMARY_H_
