#ifndef RNT_DIST_SUMMARY_H_
#define RNT_DIST_SUMMARY_H_

#include <map>
#include <string>
#include <vector>

#include "action/action_tree.h"
#include "common/random.h"
#include "common/types.h"

namespace rnt::dist {

/// An action summary (paper §9.1): partial knowledge of action statuses.
/// Unlike an action tree, the vertex set need not be closed under parent,
/// and there is no root — a node may know of a grandchild's commit before
/// ever hearing of the intermediate ancestors.
///
/// Statuses in a summary are monotone: once a node learns that an action
/// is committed or aborted, merging older "active" knowledge does not
/// regress it. (In the paper this is implicit: the home node is the only
/// component that changes a status, and ∪ is used only to add knowledge.)
class ActionSummary {
 public:
  ActionSummary() = default;

  bool Contains(ActionId a) const { return entries_.count(a) != 0; }

  /// Requires Contains(a).
  action::ActionStatus StatusOf(ActionId a) const { return entries_.at(a); }

  bool IsActive(ActionId a) const {
    auto it = entries_.find(a);
    return it != entries_.end() &&
           it->second == action::ActionStatus::kActive;
  }
  bool IsCommitted(ActionId a) const {
    auto it = entries_.find(a);
    return it != entries_.end() &&
           it->second == action::ActionStatus::kCommitted;
  }
  bool IsAborted(ActionId a) const {
    auto it = entries_.find(a);
    return it != entries_.end() &&
           it->second == action::ActionStatus::kAborted;
  }
  bool IsDone(ActionId a) const {
    auto it = entries_.find(a);
    return it != entries_.end() &&
           it->second != action::ActionStatus::kActive;
  }

  /// Adds `a` with status 'active'.
  void AddActive(ActionId a) {
    entries_.emplace(a, action::ActionStatus::kActive);
  }

  /// Sets the status of an already-present action.
  void SetStatus(ActionId a, action::ActionStatus s) { entries_[a] = s; }

  /// T <- T ∪ T′ (paper §9.1), with done-status priority. Entries already
  /// known at an equal-or-later status are skipped without re-insertion
  /// (no node allocation for knowledge we already hold). Returns true iff
  /// the merge changed this summary — callers use it to detect whether a
  /// delivery taught the node anything new.
  bool MergeFrom(const ActionSummary& other) {
    bool changed = false;
    auto hint = entries_.begin();
    for (const auto& [a, s] : other.entries_) {
      hint = entries_.lower_bound(a);
      if (hint != entries_.end() && hint->first == a) {
        if (hint->second == action::ActionStatus::kActive &&
            s != action::ActionStatus::kActive) {
          hint->second = s;
          changed = true;
        }
      } else {
        hint = entries_.emplace_hint(hint, a, s);
        changed = true;
      }
    }
    return changed;
  }

  /// Move form of MergeFrom for the message hop into the buffer: when this
  /// summary is empty the incoming map is adopted wholesale; otherwise
  /// nodes are spliced in via std::map::merge (no per-entry copies) and
  /// only the conflicting leftovers are inspected for status upgrades.
  bool MergeFrom(ActionSummary&& other) {
    if (other.entries_.empty()) return false;
    if (entries_.empty()) {
      entries_ = std::move(other.entries_);
      other.entries_.clear();
      return true;
    }
    const std::size_t before = entries_.size();
    entries_.merge(other.entries_);
    bool changed = entries_.size() != before;
    for (const auto& [a, s] : other.entries_) {  // keys we already had
      auto it = entries_.find(a);
      if (it->second == action::ActionStatus::kActive &&
          s != action::ActionStatus::kActive) {
        it->second = s;
        changed = true;
      }
    }
    other.entries_.clear();
    return changed;
  }

  /// The sub-summary of entries not yet covered by `frontier`: actions the
  /// frontier has never seen, plus actions whose status advanced past the
  /// frontier's record (active -> committed/aborted). This is the delta a
  /// node ships to a peer it last updated at `frontier`; because every
  /// entry is taken verbatim from *this*, the delta is always a legal
  /// sub-summary of the sender's knowledge (Send precondition g11), and
  ///   frontier ∪ DeltaSince(frontier) == *this
  /// whenever frontier ≤ *this (the frontier-merge identity the delta
  /// tests pin down).
  ActionSummary DeltaSince(const ActionSummary& frontier) const {
    ActionSummary out;
    auto it = frontier.entries_.begin();
    const auto end = frontier.entries_.end();
    for (const auto& [a, s] : entries_) {
      while (it != end && it->first < a) ++it;
      if (it != end && it->first == a &&
          (it->second == s || s == action::ActionStatus::kActive)) {
        continue;  // frontier already covers (a, s)
      }
      out.entries_.emplace_hint(out.entries_.end(), a, s);
    }
    return out;
  }

  /// T′ ≤ T: componentwise containment of vertices/committed/aborted.
  bool IsSubsummaryOf(const ActionSummary& other) const {
    for (const auto& [a, s] : entries_) {
      auto it = other.entries_.find(a);
      if (it == other.entries_.end()) return false;
      if (s != action::ActionStatus::kActive && it->second != s) return false;
    }
    return true;
  }

  /// A uniformly random sub-summary (each entry kept with probability 1/2,
  /// done statuses optionally weakened to active) — used by the random
  /// executor to exercise partial-knowledge sends.
  ActionSummary RandomSub(Rng& rng) const {
    ActionSummary out;
    for (const auto& [a, s] : entries_) {
      if (!rng.Chance(0.5)) continue;
      if (s != action::ActionStatus::kActive && rng.Chance(0.25)) {
        out.entries_.emplace(a, action::ActionStatus::kActive);
      } else {
        out.entries_.emplace(a, s);
      }
    }
    return out;
  }

  const std::map<ActionId, action::ActionStatus>& entries() const {
    return entries_;
  }

  std::size_t size() const { return entries_.size(); }
  bool empty() const { return entries_.empty(); }

  std::string ToString() const;

  friend bool operator==(const ActionSummary&, const ActionSummary&) = default;

 private:
  std::map<ActionId, action::ActionStatus> entries_;
};

}  // namespace rnt::dist

#endif  // RNT_DIST_SUMMARY_H_
