#include "dist/dist_algebra.h"

#include <sstream>

namespace rnt::dist {

namespace {

/// children(A) ∩ summary.vertices ⊆ summary.done (precondition b12),
/// evaluated against the universal tree in the registry.
bool LocalChildrenDone(const action::ActionRegistry& reg,
                       const ActionSummary& summary, ActionId a) {
  for (const auto& [c, s] : summary.entries()) {
    if (c != kRootAction && reg.Parent(c) == a &&
        s == action::ActionStatus::kActive) {
      return false;
    }
  }
  return true;
}

/// anc(A) ∩ summary.aborted ≠ ∅ (precondition f12 at this level: the node
/// only needs *local* knowledge that some ancestor aborted).
bool LocallyDead(const action::ActionRegistry& reg,
                 const ActionSummary& summary, ActionId a) {
  for (ActionId c : reg.AncestorChain(a)) {
    if (c != kRootAction && summary.IsAborted(c)) return true;
  }
  return false;
}

}  // namespace

bool DistAlgebra::Defined(const State& s, const Event& e) const {
  const action::ActionRegistry& reg = topo_->registry();
  if (const auto* c = std::get_if<NodeCreate>(&e)) {
    if (c->a == kRootAction || !reg.Valid(c->a)) return false;
    if (topo_->Origin(c->a) != c->i) return false;
    const ActionSummary& t = s.nodes[c->i].summary;
    if (t.Contains(c->a)) return false;  // (a11)
    ActionId p = reg.Parent(c->a);
    if (p != kRootAction) {  // (a12)
      if (!t.Contains(p) || t.IsCommitted(p)) return false;
    }
    return true;
  }
  if (const auto* c = std::get_if<NodeCommit>(&e)) {
    if (c->a == kRootAction || !reg.Valid(c->a) || reg.IsAccess(c->a)) {
      return false;
    }
    if (topo_->HomeOfAction(c->a) != c->i) return false;
    const ActionSummary& t = s.nodes[c->i].summary;
    return t.IsActive(c->a) && LocalChildrenDone(reg, t, c->a);
  }
  if (const auto* c = std::get_if<NodeAbort>(&e)) {
    if (c->a == kRootAction || !reg.Valid(c->a) || reg.IsAccess(c->a)) {
      return false;
    }
    if (topo_->HomeOfAction(c->a) != c->i) return false;
    return s.nodes[c->i].summary.IsActive(c->a);
  }
  if (const auto* p = std::get_if<NodePerform>(&e)) {
    if (!reg.Valid(p->a) || !reg.IsAccess(p->a)) return false;
    if (topo_->HomeOfAction(p->a) != p->i) return false;
    const NodeState& n = s.nodes[p->i];
    if (!n.summary.IsActive(p->a)) return false;  // (d11)
    ObjectId x = reg.Object(p->a);
    if (const auto* entry = n.vmap.EntriesFor(x)) {  // (d12)
      for (const auto& [b, v] : *entry) {
        if (!reg.IsProperAncestor(b, p->a)) return false;
      }
    }
    return p->u == n.vmap.PrincipalValue(x, reg);  // (d13)
  }
  if (const auto* r = std::get_if<NodeReleaseLock>(&e)) {
    if (r->a == kRootAction) return false;
    if (topo_->HomeOfObject(r->x) != r->i) return false;
    const NodeState& n = s.nodes[r->i];
    return n.vmap.IsDefined(r->x, r->a) && n.summary.IsCommitted(r->a);
  }
  if (const auto* l = std::get_if<NodeLoseLock>(&e)) {
    if (l->a == kRootAction) return false;
    if (topo_->HomeOfObject(l->x) != l->i) return false;
    const NodeState& n = s.nodes[l->i];
    return n.vmap.IsDefined(l->x, l->a) && LocallyDead(reg, n.summary, l->a);
  }
  if (const auto* snd = std::get_if<Send>(&e)) {
    if (snd->from >= topo_->k() || snd->to >= topo_->k()) return false;
    // (g11): T' ≤ i.T.
    return snd->summary.IsSubsummaryOf(s.nodes[snd->from].summary);
  }
  const auto& rcv = std::get<Receive>(e);
  if (rcv.to >= topo_->k()) return false;
  // (h11): T' ≤ M_j.
  return rcv.summary.IsSubsummaryOf(s.buffer[rcv.to]);
}

void DistAlgebra::Apply(State& s, const Event& e) const {
  const action::ActionRegistry& reg = topo_->registry();
  if (const auto* c = std::get_if<NodeCreate>(&e)) {
    s.nodes[c->i].summary.AddActive(c->a);
  } else if (const auto* c = std::get_if<NodeCommit>(&e)) {
    s.nodes[c->i].summary.SetStatus(c->a, action::ActionStatus::kCommitted);
  } else if (const auto* c = std::get_if<NodeAbort>(&e)) {
    s.nodes[c->i].summary.SetStatus(c->a, action::ActionStatus::kAborted);
  } else if (const auto* p = std::get_if<NodePerform>(&e)) {
    NodeState& n = s.nodes[p->i];
    n.summary.SetStatus(p->a, action::ActionStatus::kCommitted);  // (d21)
    ObjectId x = reg.Object(p->a);
    n.vmap.Set(x, p->a, reg.UpdateOf(p->a).Apply(p->u));  // (d22)
  } else if (const auto* r = std::get_if<NodeReleaseLock>(&e)) {
    NodeState& n = s.nodes[r->i];
    n.vmap.Set(r->x, reg.Parent(r->a), n.vmap.Get(r->x, r->a));  // (e21)
    n.vmap.Erase(r->x, r->a);                                    // (e22)
  } else if (const auto* l = std::get_if<NodeLoseLock>(&e)) {
    s.nodes[l->i].vmap.Erase(l->x, l->a);  // (f21)
  } else if (const auto* snd = std::get_if<Send>(&e)) {
    s.buffer[snd->to].MergeFrom(snd->summary);  // (g21)
  } else {
    const auto& rcv = std::get<Receive>(e);
    s.nodes[rcv.to].summary.MergeFrom(rcv.summary);  // (h21)
  }
}

void DistAlgebra::Apply(State& s, Event&& e) const {
  if (auto* snd = std::get_if<Send>(&e)) {
    s.buffer[snd->to].MergeFrom(std::move(snd->summary));  // (g21)
    return;
  }
  if (auto* rcv = std::get_if<Receive>(&e)) {
    s.nodes[rcv->to].summary.MergeFrom(std::move(rcv->summary));  // (h21)
    return;
  }
  Apply(s, static_cast<const Event&>(e));
}

NodeId DistAlgebra::Doer(const Event& e) const {
  if (const auto* c = std::get_if<NodeCreate>(&e)) return c->i;
  if (const auto* c = std::get_if<NodeCommit>(&e)) return c->i;
  if (const auto* c = std::get_if<NodeAbort>(&e)) return c->i;
  if (const auto* c = std::get_if<NodePerform>(&e)) return c->i;
  if (const auto* c = std::get_if<NodeReleaseLock>(&e)) return c->i;
  if (const auto* c = std::get_if<NodeLoseLock>(&e)) return c->i;
  if (const auto* c = std::get_if<Send>(&e)) return c->from;
  return topo_->k();  // the buffer
}

std::optional<algebra::LockEvent> DistToValueEvent(const DistEvent& e) {
  using algebra::LockEvent;
  if (const auto* c = std::get_if<NodeCreate>(&e)) {
    return LockEvent{algebra::Create{c->a}};
  }
  if (const auto* c = std::get_if<NodeCommit>(&e)) {
    return LockEvent{algebra::Commit{c->a}};
  }
  if (const auto* c = std::get_if<NodeAbort>(&e)) {
    return LockEvent{algebra::Abort{c->a}};
  }
  if (const auto* c = std::get_if<NodePerform>(&e)) {
    return LockEvent{algebra::Perform{c->a, c->u}};
  }
  if (const auto* c = std::get_if<NodeReleaseLock>(&e)) {
    return LockEvent{algebra::ReleaseLock{c->a, c->x}};
  }
  if (const auto* c = std::get_if<NodeLoseLock>(&e)) {
    return LockEvent{algebra::LoseLock{c->a, c->x}};
  }
  return std::nullopt;  // send/receive -> Λ
}

Status CheckLocalConsistency(const DistAlgebra& alg, const DistState& b,
                             const valuemap::ValState& abstract,
                             const std::set<NodeId>* down_nodes) {
  const Topology& topo = alg.topology();
  const action::ActionRegistry& reg = alg.registry();
  const action::ActionTree& tree = abstract.tree;
  auto fail = [](std::string msg) { return Status::Internal(std::move(msg)); };
  auto is_down = [down_nodes](NodeId i) {
    return down_nodes != nullptr && down_nodes->count(i) != 0;
  };

  for (NodeId i = 0; i < topo.k(); ++i) {
    const NodeState& n = b.nodes[i];
    // vertices_T ∩ {origin = i} ⊆ i.vertices; committed/aborted_T ∩
    // {home = i} ⊆ i.committed/aborted. Waived while i is crashed: its
    // volatile summary was wiped and awaits buffer replay.
    for (ActionId a : tree.Vertices()) {
      if (is_down(i)) break;
      if (a == kRootAction) continue;
      if (topo.Origin(a) == i && !n.summary.Contains(a)) {
        std::ostringstream os;
        os << "node " << i << " missing origin action " << a;
        return fail(os.str());
      }
      if (topo.HomeOfAction(a) == i) {
        if (tree.IsCommitted(a) && !n.summary.IsCommitted(a)) {
          std::ostringstream os;
          os << "node " << i << " missing commit of home action " << a;
          return fail(os.str());
        }
        if (tree.IsAborted(a) && !n.summary.IsAborted(a)) {
          std::ostringstream os;
          os << "node " << i << " missing abort of home action " << a;
          return fail(os.str());
        }
      }
    }
    // i.vertices ⊆ vertices_T with status containment.
    for (const auto& [a, s] : n.summary.entries()) {
      if (!tree.Contains(a)) {
        std::ostringstream os;
        os << "node " << i << " knows unactivated action " << a;
        return fail(os.str());
      }
      if (s == action::ActionStatus::kCommitted && !tree.IsCommitted(a)) {
        std::ostringstream os;
        os << "node " << i << " believes " << a << " committed; tree says "
           << action::ActionStatusName(tree.StatusOf(a));
        return fail(os.str());
      }
      if (s == action::ActionStatus::kAborted && !tree.IsAborted(a)) {
        std::ostringstream os;
        os << "node " << i << " believes " << a << " aborted; tree says "
           << action::ActionStatusName(tree.StatusOf(a));
        return fail(os.str());
      }
    }
    // i.V is the restriction of V to objects homed at i.
    for (ObjectId x : abstract.vmap.TouchedObjects()) {
      if (topo.HomeOfObject(x) != i) continue;
      const auto* want = abstract.vmap.EntriesFor(x);
      const auto* got = n.vmap.EntriesFor(x);
      if ((want == nullptr) != (got == nullptr) ||
          (want != nullptr && *want != *got)) {
        std::ostringstream os;
        os << "node " << i << " value map for x" << x
           << " differs from abstract V";
        return fail(os.str());
      }
    }
    for (ObjectId x : n.vmap.TouchedObjects()) {
      if (topo.HomeOfObject(x) != i) {
        std::ostringstream os;
        os << "node " << i << " holds entries for foreign object x" << x;
        return fail(os.str());
      }
      const auto* want = abstract.vmap.EntriesFor(x);
      if (want == nullptr) {
        std::ostringstream os;
        os << "node " << i << " has entries for x" << x
           << " absent from abstract V";
        return fail(os.str());
      }
    }
    (void)reg;
  }
  // Buffer consistency: M_j ≤ T for every j.
  for (NodeId j = 0; j < topo.k(); ++j) {
    for (const auto& [a, s] : b.buffer[j].entries()) {
      if (!tree.Contains(a)) {
        std::ostringstream os;
        os << "buffer M_" << j << " mentions unactivated action " << a;
        return fail(os.str());
      }
      if (s == action::ActionStatus::kCommitted && !tree.IsCommitted(a)) {
        std::ostringstream os;
        os << "buffer M_" << j << " claims commit of " << a;
        return fail(os.str());
      }
      if (s == action::ActionStatus::kAborted && !tree.IsAborted(a)) {
        std::ostringstream os;
        os << "buffer M_" << j << " claims abort of " << a;
        return fail(os.str());
      }
    }
  }
  return Status::Ok();
}

std::vector<DistEvent> DistEventCandidates::operator()(const DistState& s) {
  const Topology& topo = alg_->topology();
  const action::ActionRegistry& reg = alg_->registry();
  std::vector<DistEvent> out;
  for (ActionId a = 1; a < reg.size(); ++a) {
    NodeId origin = topo.Origin(a);
    if (!s.nodes[origin].summary.Contains(a)) {
      out.push_back(NodeCreate{origin, a});
    }
    NodeId home = topo.HomeOfAction(a);
    const NodeState& hn = s.nodes[home];
    if (hn.summary.IsActive(a)) {
      if (reg.IsAccess(a)) {
        out.push_back(
            NodePerform{home, a, hn.vmap.PrincipalValue(reg.Object(a), reg)});
      } else {
        out.push_back(NodeCommit{home, a});
        out.push_back(NodeAbort{home, a});
      }
    }
  }
  for (NodeId i = 0; i < topo.k(); ++i) {
    const NodeState& n = s.nodes[i];
    for (ObjectId x : n.vmap.TouchedObjects()) {
      for (const auto& [a, v] : *n.vmap.EntriesFor(x)) {
        if (n.summary.IsCommitted(a)) out.push_back(NodeReleaseLock{i, a, x});
        out.push_back(NodeLoseLock{i, a, x});  // filtered by Defined
      }
    }
    if (!n.summary.empty()) {
      for (NodeId j = 0; j < topo.k(); ++j) {
        if (j == i) continue;
        out.push_back(Send{i, j, n.summary});
        if (random_subsummaries_) {
          ActionSummary sub = n.summary.RandomSub(rng_);
          if (!sub.empty()) out.push_back(Send{i, j, std::move(sub)});
        }
      }
    }
  }
  for (NodeId j = 0; j < topo.k(); ++j) {
    if (s.buffer[j].empty()) continue;
    out.push_back(Receive{j, s.buffer[j]});
    if (random_subsummaries_) {
      ActionSummary sub = s.buffer[j].RandomSub(rng_);
      if (!sub.empty()) out.push_back(Receive{j, std::move(sub)});
    }
  }
  return out;
}

std::string ToString(const DistEvent& e) {
  std::ostringstream os;
  if (const auto* c = std::get_if<NodeCreate>(&e)) {
    os << "create(n" << c->i << ", " << c->a << ")";
  } else if (const auto* c = std::get_if<NodeCommit>(&e)) {
    os << "commit(n" << c->i << ", " << c->a << ")";
  } else if (const auto* c = std::get_if<NodeAbort>(&e)) {
    os << "abort(n" << c->i << ", " << c->a << ")";
  } else if (const auto* c = std::get_if<NodePerform>(&e)) {
    os << "perform(n" << c->i << ", " << c->a << ", u=" << c->u << ")";
  } else if (const auto* c = std::get_if<NodeReleaseLock>(&e)) {
    os << "release-lock(n" << c->i << ", " << c->a << ", x" << c->x << ")";
  } else if (const auto* c = std::get_if<NodeLoseLock>(&e)) {
    os << "lose-lock(n" << c->i << ", " << c->a << ", x" << c->x << ")";
  } else if (const auto* c = std::get_if<Send>(&e)) {
    os << "send(n" << c->from << " -> n" << c->to << ", |T'|="
       << c->summary.size() << ")";
  } else {
    const auto& r = std::get<Receive>(e);
    os << "receive(n" << r.to << ", |T'|=" << r.summary.size() << ")";
  }
  return os.str();
}

}  // namespace rnt::dist
