#ifndef RNT_DIST_TOPOLOGY_H_
#define RNT_DIST_TOPOLOGY_H_

#include <cassert>
#include <functional>
#include <vector>

#include "action/registry.h"
#include "common/types.h"

namespace rnt::dist {

/// The placement functions of the distributed algebra (paper §9.1):
///
///   home : (act − {U}) ∪ obj → [k],  with home(A) = home(object(A)) for
///                                    accesses;
///   origin(A) = home(A)          if parent(A) = U,
///             = home(parent(A))  otherwise.
///
/// `home` partitions actions and objects among the k nodes; `origin` is
/// where an action is *created* (at its parent's node — a parent spawns
/// children locally, then their execution migrates to their own home).
class Topology {
 public:
  /// Builds a topology over `registry` with `k` nodes. `object_home`
  /// assigns objects; `action_home` assigns non-access actions (accesses
  /// are forced to their object's home, as the paper requires). Both must
  /// return values < k.
  Topology(const action::ActionRegistry* registry, NodeId k,
           std::function<NodeId(ObjectId)> object_home,
           std::function<NodeId(ActionId)> action_home)
      : registry_(registry),
        k_(k),
        object_home_(std::move(object_home)),
        action_home_(std::move(action_home)) {
    assert(k_ > 0);
  }

  /// Convenience: round-robin placement by id.
  static Topology RoundRobin(const action::ActionRegistry* registry,
                             NodeId k) {
    return Topology(
        registry, k, [k](ObjectId x) { return static_cast<NodeId>(x % k); },
        [k](ActionId a) { return static_cast<NodeId>(a % k); });
  }

  NodeId k() const { return k_; }

  NodeId HomeOfObject(ObjectId x) const {
    NodeId h = object_home_(x);
    assert(h < k_);
    return h;
  }

  NodeId HomeOfAction(ActionId a) const {
    assert(a != kRootAction);
    if (registry_->IsAccess(a)) return HomeOfObject(registry_->Object(a));
    NodeId h = action_home_(a);
    assert(h < k_);
    return h;
  }

  NodeId Origin(ActionId a) const {
    assert(a != kRootAction);
    ActionId p = registry_->Parent(a);
    return p == kRootAction ? HomeOfAction(a) : HomeOfAction(p);
  }

  const action::ActionRegistry& registry() const { return *registry_; }

 private:
  const action::ActionRegistry* registry_;
  NodeId k_;
  std::function<NodeId(ObjectId)> object_home_;
  std::function<NodeId(ActionId)> action_home_;
};

}  // namespace rnt::dist

#endif  // RNT_DIST_TOPOLOGY_H_
