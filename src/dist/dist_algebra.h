#ifndef RNT_DIST_DIST_ALGEBRA_H_
#define RNT_DIST_DIST_ALGEBRA_H_

#include <optional>
#include <set>
#include <string>
#include <variant>
#include <vector>

#include "algebra/algebra.h"
#include "algebra/events.h"
#include "common/status.h"
#include "dist/summary.h"
#include "dist/topology.h"
#include "valuemap/value_map.h"
#include "valuemap/value_map_algebra.h"

namespace rnt::dist {

/// Events of the distributed algebra ℬ (paper §9.2 (a)-(h)). The first
/// six mirror the value-map events with an explicit doer node; the last
/// two move action-summary knowledge through the message buffer.

struct NodeCreate {
  NodeId i;
  ActionId a;
  friend bool operator==(const NodeCreate&, const NodeCreate&) = default;
};
struct NodeCommit {
  NodeId i;
  ActionId a;
  friend bool operator==(const NodeCommit&, const NodeCommit&) = default;
};
struct NodeAbort {
  NodeId i;
  ActionId a;
  friend bool operator==(const NodeAbort&, const NodeAbort&) = default;
};
struct NodePerform {
  NodeId i;
  ActionId a;
  Value u;
  friend bool operator==(const NodePerform&, const NodePerform&) = default;
};
struct NodeReleaseLock {
  NodeId i;
  ActionId a;
  ObjectId x;
  friend bool operator==(const NodeReleaseLock&,
                         const NodeReleaseLock&) = default;
};
struct NodeLoseLock {
  NodeId i;
  ActionId a;
  ObjectId x;
  friend bool operator==(const NodeLoseLock&, const NodeLoseLock&) = default;
};
/// send_{i,j,T'} — doer i: merges T' into the buffer's M_j.
struct Send {
  NodeId from;
  NodeId to;
  ActionSummary summary;
  friend bool operator==(const Send&, const Send&) = default;
};
/// receive_{j,T'} — doer 'buffer': merges T' (≤ M_j) into j's summary.
struct Receive {
  NodeId to;
  ActionSummary summary;
  friend bool operator==(const Receive&, const Receive&) = default;
};

using DistEvent =
    std::variant<NodeCreate, NodeCommit, NodeAbort, NodePerform,
                 NodeReleaseLock, NodeLoseLock, Send, Receive>;

std::string ToString(const DistEvent& e);

/// Per-node component state: the node's action summary i.T (its partial
/// knowledge of statuses) and its value map i.V (lock state for the
/// objects homed at i).
struct NodeState {
  ActionSummary summary;
  valuemap::ValueMap vmap;

  friend bool operator==(const NodeState&, const NodeState&) = default;
};

/// Global state of ℬ: the Cartesian product of node states and the
/// buffer component (M_j = all information ever sent toward node j).
struct DistState {
  std::vector<NodeState> nodes;
  std::vector<ActionSummary> buffer;  // M_j, indexed by destination j

  friend bool operator==(const DistState&, const DistState&) = default;
};

/// Level 5: the distributed algebra ℬ (paper §9), a slightly simplified
/// Moss algorithm (no read/write distinction) running on k nodes plus a
/// message system. Each event's precondition consults only its doer's
/// component — the Local Domain property — and effects are componentwise
/// — Local Changes (Lemma 22); both are structural in this implementation
/// since Defined/Apply only touch s.nodes[doer] (or the buffer).
class DistAlgebra {
 public:
  using State = DistState;
  using Event = DistEvent;

  explicit DistAlgebra(const Topology* topology) : topo_(topology) {}

  State Initial() const {
    DistState s;
    s.nodes.resize(topo_->k());
    s.buffer.resize(topo_->k());
    return s;
  }

  bool Defined(const State& s, const Event& e) const;
  void Apply(State& s, const Event& e) const;
  /// Move form: a Send/Receive event that the caller is done with donates
  /// its summary to the state (map nodes are spliced into the buffer /
  /// node summary instead of copied — the second hop of a message costs
  /// no allocation). Other events forward to the const& overload.
  void Apply(State& s, Event&& e) const;

  /// The doer d(π) of an event: its node for (a)-(g), the buffer for (h).
  /// Buffer is represented as index k().
  NodeId Doer(const Event& e) const;

  const Topology& topology() const { return *topo_; }
  const action::ActionRegistry& registry() const { return topo_->registry(); }

 private:
  const Topology* topo_;
};

static_assert(algebra::EventStateAlgebra<DistAlgebra>);

/// The interpretation h‴ : P → Π‴ ∪ {Λ} (paper §9.3): node events map to
/// the value-map events of the same name with the node index suppressed;
/// send/receive map to Λ.
std::optional<algebra::LockEvent> DistToValueEvent(const DistEvent& e);

/// Executable i-consistency (the local possibilities mappings h_i of
/// paper §9.3): checks that the abstract level-4 state (T, V) is in
/// h_i(b) for every node i and for the buffer. Used by the refinement
/// tests to discharge the local-mapping proof obligations (Lemmas 23-26)
/// on concrete runs.
///
/// `down_nodes`, when given, names nodes that are currently crashed:
/// their *knowledge* obligations (summary must contain origin actions and
/// home statuses) are waived — a wiped volatile summary is not a
/// reachable ℬ state until recovery replays the buffer M_i — while their
/// truthfulness obligations (no invented statuses) and their durable
/// value maps are still checked.
Status CheckLocalConsistency(const DistAlgebra& alg, const DistState& b,
                             const valuemap::ValState& abstract,
                             const std::set<NodeId>* down_nodes = nullptr);

/// Candidate-event generator for random exploration of ℬ. Proposes node
/// events enabled by local knowledge, full-summary sends between all node
/// pairs, full-buffer receives, and (seeded) random sub-summary sends to
/// exercise partial knowledge propagation.
class DistEventCandidates {
 public:
  DistEventCandidates(const DistAlgebra* alg, std::uint64_t seed,
                      bool random_subsummaries = true)
      : alg_(alg), rng_(seed), random_subsummaries_(random_subsummaries) {}

  std::vector<DistEvent> operator()(const DistState& s);

 private:
  const DistAlgebra* alg_;
  Rng rng_;
  bool random_subsummaries_;
};

}  // namespace rnt::dist

#endif  // RNT_DIST_DIST_ALGEBRA_H_
