#ifndef RNT_FAULTS_FAULTS_H_
#define RNT_FAULTS_FAULTS_H_

#include <algorithm>
#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"

namespace rnt::faults {

/// Crash node `node`, wiping its volatile state (the action summary i.T).
/// The node is later reborn; a fault-aware driver recovers it by replaying
/// the monotone message buffer M_i — the paper's recovery story, made
/// executable (ℬ's buffer is "all information ever sent toward node i",
/// so a rebirth that receives M_i is just another legal Receive event).
///
/// Two trigger clocks, one per runtime:
///  * Round-based (`round`/`down_for`): the sequential chaos driver
///    crashes at the start of scheduler round `round` and rebirths
///    `down_for` rounds later.
///  * Logical-clock (`at_stamp`/`down_for_stamps`): the free-running
///    multi-threaded runner has no rounds; its clock is the global event
///    stamp counter (one tick per recorded ℬ event, plus watchdog
///    heartbeats). When `at_stamp >= 0` the node crashes once the global
///    stamp reaches it and is reborn `down_for_stamps` (default: the
///    round fields, reinterpreted in stamp units) ticks later. When
///    `at_stamp < 0` the runner falls back to `round`/`down_for` read as
///    stamps, so round-era plans keep working unchanged.
struct CrashSpec {
  NodeId node = 0;
  int round = 0;
  int down_for = 4;
  std::int64_t at_stamp = -1;          // < 0: derive from `round`
  std::int64_t down_for_stamps = -1;   // < 0: derive from `down_for`

  /// The logical-clock trigger used by the free-running runner.
  std::int64_t TriggerStamp() const {
    return at_stamp >= 0 ? at_stamp : static_cast<std::int64_t>(round);
  }
  /// First stamp at which the node may be reborn.
  std::int64_t RebirthStamp() const {
    std::int64_t span = down_for_stamps >= 0
                            ? down_for_stamps
                            : static_cast<std::int64_t>(down_for);
    return TriggerStamp() + std::max<std::int64_t>(1, span);
  }
};

/// Kill the whole *process* — SIGKILL, no destructors, no flush — after
/// `after_ops` durable top-level commits. The process-level analogue of
/// CrashSpec: where a node crash wipes one node's volatile summary and
/// trusts the retention buffer M_i, a process kill wipes *every* thread's
/// volatile state at once and trusts only what reached the disk (the
/// storage layer's WAL + snapshot). Executed by the fork/kill/recover
/// harness in sim/process_chaos.h: the child workload raises SIGKILL on
/// itself the moment its committed-op counter passes the trigger, so the
/// kill lands at a different engine state every run.
struct ProcessCrashSpec {
  /// Durable top-level commits to allow before the self-kill. < 0: never
  /// crash (the workload runs to completion — the control cycle).
  std::int64_t after_ops = -1;

  bool Enabled() const { return after_ops >= 0; }
};

/// Sever the link between nodes `a` and `b`: transmissions in either
/// direction are dropped by the network during the interval. Like
/// CrashSpec, the window is expressed either in scheduler rounds
/// ([from_round, until_round), sequential chaos driver) or on the
/// free-running runner's logical clock ([from_stamp, until_stamp); when
/// from_stamp < 0 the round fields are reinterpreted in stamp units).
struct PartitionSpec {
  NodeId a = 0;
  NodeId b = 0;
  int from_round = 0;
  int until_round = 0;
  std::int64_t from_stamp = -1;   // < 0: derive both bounds from rounds
  std::int64_t until_stamp = -1;

  std::int64_t FromStamp() const {
    return from_stamp >= 0 ? from_stamp
                           : static_cast<std::int64_t>(from_round);
  }
  std::int64_t UntilStamp() const {
    return from_stamp >= 0 ? until_stamp
                           : static_cast<std::int64_t>(until_round);
  }
};

/// A seeded, fully deterministic description of the faults to inject into
/// one distributed run. Two runs driven by equal plans experience
/// bit-identical fault schedules — chaos that is exactly reproducible.
///
/// Message faults are *legal-schedule* faults: ℬ already permits dropped
/// (never-received), duplicated (M_j is cumulative), delayed, and
/// reordered (any sub-summary of M_j) deliveries, so the injector only
/// chooses *which* legal events the scheduler offers; it never bends the
/// algebra's semantics.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Probability a transmission is lost before reaching the buffer.
  double drop_prob = 0.0;
  /// Probability a delivered transmission is delivered a second time.
  double dup_prob = 0.0;
  /// Probability a delivered transmission is delayed by 1..max_delay_rounds
  /// rounds (delays of distinct messages reorder them).
  double delay_prob = 0.0;
  int max_delay_rounds = 3;
  std::vector<CrashSpec> crashes;
  std::vector<PartitionSpec> partitions;

  std::string ToString() const;
};

/// Deterministic per-message fault decisions drawn from the plan's seed.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan), rng_(plan.seed) {}

  /// The fate of one transmission.
  struct Verdict {
    bool drop = false;
    /// True when the drop was forced by an active partition (counted
    /// separately from random loss by callers that care).
    bool partitioned = false;
    /// Rounds before the receive fires (0 = next delivery pass).
    int delay = 0;
    /// When >= 0, a duplicate delivery fires after this many rounds.
    int duplicate_delay = -1;
  };

  /// Decides the fate of a transmission from `from` to `to` at `round`.
  /// Consumes a fixed number of PRNG draws per call regardless of the
  /// probabilities, so sweeps over fault rates with one seed see the same
  /// underlying random sequence.
  /// Pass a negative `round` to disable the round-window partition check
  /// (the free-running runner applies partitions at the mailbox via
  /// PartitionedAtStamp instead, since its loop passes are not rounds).
  Verdict OnMessage(NodeId from, NodeId to, int round);

  bool Partitioned(NodeId a, NodeId b, int round) const;

  /// Logical-clock variant for the free-running runner: true when the
  /// a-b link is severed at global event stamp `stamp`.
  bool PartitionedAtStamp(NodeId a, NodeId b, std::int64_t stamp) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  Rng rng_;
};

/// Validates a plan: probabilities in [0, 1], nodes within [k],
/// non-negative intervals, no self-partitions (a == b), no overlapping
/// crash intervals for the same node (in either clock domain), and
/// stamp-trigger fields that are each either unset (-1) or well-formed.
Status ValidatePlan(const FaultPlan& plan, NodeId num_nodes);

}  // namespace rnt::faults

#endif  // RNT_FAULTS_FAULTS_H_
