#ifndef RNT_FAULTS_FAULTS_H_
#define RNT_FAULTS_FAULTS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "common/random.h"
#include "common/status.h"
#include "common/types.h"

namespace rnt::faults {

/// Crash node `node` at the start of scheduler round `round`, wiping its
/// volatile state (the action summary i.T). The node is reborn
/// `down_for` rounds later; a fault-aware driver recovers it by replaying
/// the monotone message buffer M_i — the paper's recovery story, made
/// executable (ℬ's buffer is "all information ever sent toward node i",
/// so a rebirth that receives M_i is just another legal Receive event).
struct CrashSpec {
  NodeId node = 0;
  int round = 0;
  int down_for = 4;
};

/// Sever the link between nodes `a` and `b` for rounds [from, until):
/// transmissions in either direction are dropped by the network during
/// the interval.
struct PartitionSpec {
  NodeId a = 0;
  NodeId b = 0;
  int from_round = 0;
  int until_round = 0;
};

/// A seeded, fully deterministic description of the faults to inject into
/// one distributed run. Two runs driven by equal plans experience
/// bit-identical fault schedules — chaos that is exactly reproducible.
///
/// Message faults are *legal-schedule* faults: ℬ already permits dropped
/// (never-received), duplicated (M_j is cumulative), delayed, and
/// reordered (any sub-summary of M_j) deliveries, so the injector only
/// chooses *which* legal events the scheduler offers; it never bends the
/// algebra's semantics.
struct FaultPlan {
  std::uint64_t seed = 0;
  /// Probability a transmission is lost before reaching the buffer.
  double drop_prob = 0.0;
  /// Probability a delivered transmission is delivered a second time.
  double dup_prob = 0.0;
  /// Probability a delivered transmission is delayed by 1..max_delay_rounds
  /// rounds (delays of distinct messages reorder them).
  double delay_prob = 0.0;
  int max_delay_rounds = 3;
  std::vector<CrashSpec> crashes;
  std::vector<PartitionSpec> partitions;

  std::string ToString() const;
};

/// Deterministic per-message fault decisions drawn from the plan's seed.
class FaultInjector {
 public:
  explicit FaultInjector(const FaultPlan& plan)
      : plan_(plan), rng_(plan.seed) {}

  /// The fate of one transmission.
  struct Verdict {
    bool drop = false;
    /// True when the drop was forced by an active partition (counted
    /// separately from random loss by callers that care).
    bool partitioned = false;
    /// Rounds before the receive fires (0 = next delivery pass).
    int delay = 0;
    /// When >= 0, a duplicate delivery fires after this many rounds.
    int duplicate_delay = -1;
  };

  /// Decides the fate of a transmission from `from` to `to` at `round`.
  /// Consumes a fixed number of PRNG draws per call regardless of the
  /// probabilities, so sweeps over fault rates with one seed see the same
  /// underlying random sequence.
  Verdict OnMessage(NodeId from, NodeId to, int round);

  bool Partitioned(NodeId a, NodeId b, int round) const;

  const FaultPlan& plan() const { return plan_; }

 private:
  FaultPlan plan_;
  Rng rng_;
};

/// Validates a plan: probabilities in [0, 1], non-negative intervals.
Status ValidatePlan(const FaultPlan& plan, NodeId num_nodes);

}  // namespace rnt::faults

#endif  // RNT_FAULTS_FAULTS_H_
