#include "faults/faults.h"

#include <algorithm>
#include <sstream>

namespace rnt::faults {

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  os << "FaultPlan{seed=" << seed << ", drop=" << drop_prob
     << ", dup=" << dup_prob << ", delay=" << delay_prob << "(max "
     << max_delay_rounds << ")";
  for (const CrashSpec& c : crashes) {
    if (c.at_stamp >= 0) {
      os << ", crash(n" << c.node << "@s" << c.at_stamp << " for "
         << (c.down_for_stamps >= 0 ? c.down_for_stamps
                                    : static_cast<std::int64_t>(c.down_for))
         << " stamps)";
    } else {
      os << ", crash(n" << c.node << "@r" << c.round << " for " << c.down_for
         << ")";
    }
  }
  for (const PartitionSpec& p : partitions) {
    if (p.from_stamp >= 0) {
      os << ", partition(n" << p.a << "|n" << p.b << " s[" << p.from_stamp
         << "," << p.until_stamp << "))";
    } else {
      os << ", partition(n" << p.a << "|n" << p.b << " r[" << p.from_round
         << "," << p.until_round << "))";
    }
  }
  os << "}";
  return os.str();
}

FaultInjector::Verdict FaultInjector::OnMessage(NodeId from, NodeId to,
                                                int round) {
  // Fixed draw count per call: fate decisions at different probabilities
  // consume the PRNG identically.
  const double drop_u = rng_.NextDouble();
  const double delay_u = rng_.NextDouble();
  const double dup_u = rng_.NextDouble();
  const int span = std::max(1, plan_.max_delay_rounds);
  const int delay_len = 1 + static_cast<int>(rng_.Below(span));
  const int dup_len = 1 + static_cast<int>(rng_.Below(span));

  Verdict v;
  if (Partitioned(from, to, round)) {
    v.drop = true;
    v.partitioned = true;
    return v;
  }
  if (drop_u < plan_.drop_prob) {
    v.drop = true;
    return v;
  }
  if (delay_u < plan_.delay_prob) v.delay = delay_len;
  if (dup_u < plan_.dup_prob) v.duplicate_delay = v.delay + dup_len;
  return v;
}

bool FaultInjector::Partitioned(NodeId a, NodeId b, int round) const {
  if (round < 0) return false;  // free-running caller: stamp check applies
  for (const PartitionSpec& p : plan_.partitions) {
    bool pair = (p.a == a && p.b == b) || (p.a == b && p.b == a);
    if (pair && round >= p.from_round && round < p.until_round) return true;
  }
  return false;
}

bool FaultInjector::PartitionedAtStamp(NodeId a, NodeId b,
                                       std::int64_t stamp) const {
  for (const PartitionSpec& p : plan_.partitions) {
    bool pair = (p.a == a && p.b == b) || (p.a == b && p.b == a);
    if (pair && stamp >= p.FromStamp() && stamp < p.UntilStamp()) return true;
  }
  return false;
}

Status ValidatePlan(const FaultPlan& plan, NodeId num_nodes) {
  auto in_unit = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!in_unit(plan.drop_prob) || !in_unit(plan.dup_prob) ||
      !in_unit(plan.delay_prob)) {
    return Status::InvalidArgument("fault probabilities must lie in [0, 1]");
  }
  if (plan.max_delay_rounds < 0) {
    return Status::InvalidArgument("max_delay_rounds must be non-negative");
  }
  for (const CrashSpec& c : plan.crashes) {
    if (c.node >= num_nodes) {
      return Status::InvalidArgument("crash names a node outside [k]");
    }
    if (c.round < 0 || c.down_for < 1) {
      return Status::InvalidArgument(
          "crash round must be >= 0 and down_for >= 1");
    }
    if (c.at_stamp < -1 || c.down_for_stamps < -1 || c.down_for_stamps == 0) {
      return Status::InvalidArgument(
          "crash stamp triggers must be -1 (unset) or at_stamp >= 0, "
          "down_for_stamps >= 1");
    }
  }
  // Overlapping crash intervals on one node are ambiguous (which rebirth
  // wins?) — reject them in whichever clock domain each pair shares.
  for (std::size_t i = 0; i < plan.crashes.size(); ++i) {
    for (std::size_t j = i + 1; j < plan.crashes.size(); ++j) {
      const CrashSpec& c = plan.crashes[i];
      const CrashSpec& d = plan.crashes[j];
      if (c.node != d.node) continue;
      bool round_overlap = c.round < d.round + d.down_for &&
                           d.round < c.round + c.down_for;
      bool stamp_overlap = c.TriggerStamp() < d.RebirthStamp() &&
                           d.TriggerStamp() < c.RebirthStamp();
      bool same_domain = (c.at_stamp >= 0) == (d.at_stamp >= 0);
      if (same_domain && (c.at_stamp >= 0 ? stamp_overlap : round_overlap)) {
        return Status::InvalidArgument(
            "overlapping crash intervals for one node");
      }
    }
  }
  for (const PartitionSpec& p : plan.partitions) {
    if (p.a >= num_nodes || p.b >= num_nodes) {
      return Status::InvalidArgument("partition names a node outside [k]");
    }
    if (p.a == p.b) {
      return Status::InvalidArgument(
          "partition of a node from itself (a == b)");
    }
    if (p.from_round > p.until_round) {
      return Status::InvalidArgument("partition interval is inverted");
    }
    if (p.from_stamp < -1 || p.until_stamp < -1 ||
        (p.from_stamp >= 0) != (p.until_stamp >= 0) ||
        (p.from_stamp >= 0 && p.from_stamp > p.until_stamp)) {
      return Status::InvalidArgument(
          "partition stamp window must be unset (-1, -1) or an ordered "
          "pair of non-negative stamps");
    }
  }
  return Status::Ok();
}

}  // namespace rnt::faults
