#include "faults/faults.h"

#include <algorithm>
#include <sstream>

namespace rnt::faults {

std::string FaultPlan::ToString() const {
  std::ostringstream os;
  os << "FaultPlan{seed=" << seed << ", drop=" << drop_prob
     << ", dup=" << dup_prob << ", delay=" << delay_prob << "(max "
     << max_delay_rounds << ")";
  for (const CrashSpec& c : crashes) {
    os << ", crash(n" << c.node << "@r" << c.round << " for " << c.down_for
       << ")";
  }
  for (const PartitionSpec& p : partitions) {
    os << ", partition(n" << p.a << "|n" << p.b << " r[" << p.from_round
       << "," << p.until_round << "))";
  }
  os << "}";
  return os.str();
}

FaultInjector::Verdict FaultInjector::OnMessage(NodeId from, NodeId to,
                                                int round) {
  // Fixed draw count per call: fate decisions at different probabilities
  // consume the PRNG identically.
  const double drop_u = rng_.NextDouble();
  const double delay_u = rng_.NextDouble();
  const double dup_u = rng_.NextDouble();
  const int span = std::max(1, plan_.max_delay_rounds);
  const int delay_len = 1 + static_cast<int>(rng_.Below(span));
  const int dup_len = 1 + static_cast<int>(rng_.Below(span));

  Verdict v;
  if (Partitioned(from, to, round)) {
    v.drop = true;
    v.partitioned = true;
    return v;
  }
  if (drop_u < plan_.drop_prob) {
    v.drop = true;
    return v;
  }
  if (delay_u < plan_.delay_prob) v.delay = delay_len;
  if (dup_u < plan_.dup_prob) v.duplicate_delay = v.delay + dup_len;
  return v;
}

bool FaultInjector::Partitioned(NodeId a, NodeId b, int round) const {
  for (const PartitionSpec& p : plan_.partitions) {
    bool pair = (p.a == a && p.b == b) || (p.a == b && p.b == a);
    if (pair && round >= p.from_round && round < p.until_round) return true;
  }
  return false;
}

Status ValidatePlan(const FaultPlan& plan, NodeId num_nodes) {
  auto in_unit = [](double p) { return p >= 0.0 && p <= 1.0; };
  if (!in_unit(plan.drop_prob) || !in_unit(plan.dup_prob) ||
      !in_unit(plan.delay_prob)) {
    return Status::InvalidArgument("fault probabilities must lie in [0, 1]");
  }
  if (plan.max_delay_rounds < 0) {
    return Status::InvalidArgument("max_delay_rounds must be non-negative");
  }
  for (const CrashSpec& c : plan.crashes) {
    if (c.node >= num_nodes) {
      return Status::InvalidArgument("crash names a node outside [k]");
    }
    if (c.round < 0 || c.down_for < 1) {
      return Status::InvalidArgument(
          "crash round must be >= 0 and down_for >= 1");
    }
  }
  for (const PartitionSpec& p : plan.partitions) {
    if (p.a >= num_nodes || p.b >= num_nodes) {
      return Status::InvalidArgument("partition names a node outside [k]");
    }
    if (p.from_round > p.until_round) {
      return Status::InvalidArgument("partition interval is inverted");
    }
  }
  return Status::Ok();
}

}  // namespace rnt::faults
