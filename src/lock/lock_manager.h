#ifndef RNT_LOCK_LOCK_MANAGER_H_
#define RNT_LOCK_LOCK_MANAGER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "common/types.h"

namespace rnt::lock {

/// Engine-level transaction identifier. Unlike ActionId (the a-priori
/// naming scheme of the formal levels), TxnIds are minted dynamically by
/// the transaction manager.
using TxnId = std::uint64_t;

/// Sentinel meaning "no transaction" — the parent of top-level
/// transactions (the engine's stand-in for the paper's virtual root U).
inline constexpr TxnId kNoTxn = 0;

/// Lock modes of Moss's *complete* algorithm. The paper proves the
/// simplified single-mode variant (every lock behaves like kWrite) and
/// notes the read/write extension "should not be very difficult"; we
/// implement both and ablate in bench_rw_modes (experiment E7).
enum class LockMode : std::uint8_t { kRead = 0, kWrite = 1 };

std::string_view LockModeName(LockMode m);

/// Ancestry oracle the lock manager consults; implemented by the
/// transaction manager over its live transaction tree. Must be safe to
/// call concurrently (the sharded engine backs it with an immutable
/// ancestor path per transaction).
class Ancestry {
 public:
  virtual ~Ancestry() = default;
  /// True iff `anc` is an ancestor of `desc` (reflexive). kNoTxn is an
  /// ancestor of everything.
  virtual bool IsAncestor(TxnId anc, TxnId desc) const = 0;
};

/// Moss's nested-transaction lock manager (the engine counterpart of the
/// version/value-map levels' lock stacks).
///
/// Rules (Moss 1981 §, as summarized in the paper's §7-§9):
///  * A transaction T may acquire a WRITE lock on x iff every transaction
///    that holds or retains any lock on x is an ancestor of T.
///  * T may acquire a READ lock on x iff every holder/retainer of a WRITE
///    lock on x is an ancestor of T. (Concurrent sibling readers are
///    therefore allowed — the concurrency the single-mode variant lacks.)
///  * When T commits, its held and retained locks pass to parent(T) as
///    *retained* locks (lock inheritance — the engine counterpart of
///    release-lock's V(x, parent(A)) <- V(x, A)).
///  * When T aborts, its locks are discarded (lose-lock).
///
/// A retained lock is not an operational lock: it marks that a descendant
/// of the retainer wrote/read the object, so only the retainer's own
/// descendants may touch it. Holding vs retaining matters for *re*-holding
/// by the same transaction and for bookkeeping symmetry with the paper.
///
/// The lock table is sharded by object: each shard has its own mutex, its
/// own slice of the table, and per-object wait queues. Callers that want
/// blocking acquisition use AcquireOrEnqueue/WaitOn — a failed attempt
/// registers the caller on the object's wait queue under the same shard
/// lock (no lost-wakeup window), and every release on that object bumps
/// the queue's version and notifies exactly its waiters. Deadlock
/// detection and victim selection stay in the transaction manager, built
/// on Blockers().
///
/// Locking discipline (machine-checked under the `lint` preset): every
/// shard member is GUARDED_BY the shard's mutex; the internal helpers
/// carry REQUIRES preconditions. A shard mutex is a leaf below the
/// engines' record mutexes, except that Conflicts() may call out to the
/// Ancestry oracle — implementations must not take a record mutex there.
class LockManager {
 public:
  struct Options {
    /// Paper's simplified variant: treat every acquisition as WRITE.
    bool single_mode = false;
    /// Number of lock-table shards (>= 1). One shard reproduces the
    /// seed's fully serialized table.
    std::uint32_t shards = 16;
  };

  LockManager(const Ancestry* ancestry, Options options);
  explicit LockManager(const Ancestry* ancestry)
      : LockManager(ancestry, Options{}) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Attempts to acquire `mode` on `x` for `t`. Returns true and records
  /// the hold on success; returns false (no state change) on conflict.
  bool TryAcquire(ObjectId x, TxnId t, LockMode mode);

  /// The transactions whose holds/retentions block `t` from acquiring
  /// `mode` on `x` (empty iff TryAcquire would succeed). Used to build
  /// the wait-for graph.
  std::vector<TxnId> Blockers(ObjectId x, TxnId t, LockMode mode) const;

  /// One blocking-acquisition attempt. On success, the hold is recorded.
  /// On conflict, the caller is atomically registered on x's wait queue
  /// (same shard critical section — a release cannot slip between the
  /// failed check and the registration) and gets back the queue ticket to
  /// pass to WaitOn, plus the blocker set for the wait-for graph. Every
  /// failed call must be balanced by exactly one WaitOn or CancelWait.
  struct AcquireResult {
    bool acquired = false;
    std::uint64_t ticket = 0;        // valid iff !acquired
    std::vector<TxnId> blockers;     // valid iff !acquired
  };
  AcquireResult AcquireOrEnqueue(ObjectId x, TxnId t, LockMode mode);

  /// Blocks until x's wait queue moves past `ticket` (some lock on x was
  /// released, inherited, or poked) or `deadline` passes. Deregisters the
  /// caller from the queue before returning. Returns true if the queue
  /// moved (retry the acquisition), false on timeout.
  bool WaitOn(ObjectId x, std::uint64_t ticket,
              std::chrono::steady_clock::time_point deadline);

  /// Deregisters a waiter enqueued by a failed AcquireOrEnqueue without
  /// waiting (e.g. the caller became a deadlock victim).
  void CancelWait(ObjectId x);

  /// Wakes x's waiters without changing lock state. Used to kick a
  /// blocked transaction that was aborted from another thread.
  void Poke(ObjectId x);

  /// Lock inheritance on commit: everything `t` holds or retains is
  /// merged into `parent`'s retained set. A top-level commit
  /// (parent == kNoTxn) releases the locks outright. Waiters of every
  /// affected object are woken (targeted, per object).
  void OnCommit(TxnId t, TxnId parent);

  /// Lock discard on abort. Waiters of every affected object are woken.
  void OnAbort(TxnId t);

  // Introspection (tests, benches).
  bool Holds(ObjectId x, TxnId t, LockMode mode) const;
  bool Retains(ObjectId x, TxnId t, LockMode mode) const;
  std::size_t HolderCount(ObjectId x) const;
  std::size_t RetainerCount(ObjectId x) const;
  /// Total number of (object, txn) lock records — the lock-table
  /// footprint reported by bench_nesting_depth.
  std::size_t RecordCount() const;
  std::uint32_t shard_count() const {
    return static_cast<std::uint32_t>(shards_.size());
  }
  /// Which shard `x` lives on (tests use this to build cross-shard and
  /// same-shard scenarios deliberately).
  std::size_t ShardOf(ObjectId x) const { return ShardIndex(x); }

 private:
  struct ModeSet {
    bool read = false;
    bool write = false;
    bool Any() const { return read || write; }
    void Merge(const ModeSet& o) {
      read |= o.read;
      write |= o.write;
    }
  };
  struct ObjectLocks {
    std::map<TxnId, ModeSet> holders;
    std::map<TxnId, ModeSet> retainers;
    bool Empty() const { return holders.empty() && retainers.empty(); }
  };
  /// Wait queue of one object: `version` advances on every release/poke,
  /// `waiters` counts registered acquirers. Exists only while waiters are
  /// registered (std::map keeps nodes stable while the cv is in use).
  struct WaitPoint {
    std::uint64_t version = 1;
    std::uint32_t waiters = 0;
    CondVar cv;
  };
  struct Shard {
    mutable Mutex mu;
    std::map<ObjectId, ObjectLocks> objects GUARDED_BY(mu);
    /// Per-transaction index of touched objects *in this shard*, for
    /// O(touched) commit/abort without scanning the table.
    std::map<TxnId, std::set<ObjectId>> touched GUARDED_BY(mu);
    std::map<ObjectId, WaitPoint> waits GUARDED_BY(mu);
  };

  std::size_t ShardIndex(ObjectId x) const {
    // Fibonacci hashing spreads consecutive object ids across shards.
    return static_cast<std::size_t>(
        (static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ull) >> 40) %
           shards_.size();
  }
  Shard& ShardFor(ObjectId x) { return shards_[ShardIndex(x)]; }
  const Shard& ShardFor(ObjectId x) const { return shards_[ShardIndex(x)]; }

  LockMode Effective(LockMode m) const {
    return options_.single_mode ? LockMode::kWrite : m;
  }

  /// Collects conflicting transactions into `out` (if non-null); returns
  /// whether any conflict exists. `locks` is a shard's guarded entry; the
  /// caller holds that shard's mutex.
  bool Conflicts(const ObjectLocks& locks, TxnId t, LockMode mode,
                 std::vector<TxnId>* out) const;
  /// Records the hold; requires the shard lock held and no conflicts.
  void Grant(Shard& shard, ObjectId x, TxnId t, LockMode mode)
      REQUIRES(shard.mu);
  /// Bumps x's wait queue and wakes its waiters (shard lock held).
  static void NotifyObject(Shard& shard, ObjectId x) REQUIRES(shard.mu);

  const Ancestry* ancestry_;
  Options options_;
  std::vector<Shard> shards_;
};

}  // namespace rnt::lock

#endif  // RNT_LOCK_LOCK_MANAGER_H_
