#ifndef RNT_LOCK_LOCK_MANAGER_H_
#define RNT_LOCK_LOCK_MANAGER_H_

#include <cstdint>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "common/types.h"

namespace rnt::lock {

/// Engine-level transaction identifier. Unlike ActionId (the a-priori
/// naming scheme of the formal levels), TxnIds are minted dynamically by
/// the transaction manager.
using TxnId = std::uint64_t;

/// Sentinel meaning "no transaction" — the parent of top-level
/// transactions (the engine's stand-in for the paper's virtual root U).
inline constexpr TxnId kNoTxn = 0;

/// Lock modes of Moss's *complete* algorithm. The paper proves the
/// simplified single-mode variant (every lock behaves like kWrite) and
/// notes the read/write extension "should not be very difficult"; we
/// implement both and ablate in bench_rw_modes (experiment E7).
enum class LockMode : std::uint8_t { kRead = 0, kWrite = 1 };

std::string_view LockModeName(LockMode m);

/// Ancestry oracle the lock manager consults; implemented by the
/// transaction manager over its live transaction tree.
class Ancestry {
 public:
  virtual ~Ancestry() = default;
  /// True iff `anc` is an ancestor of `desc` (reflexive). kNoTxn is an
  /// ancestor of everything.
  virtual bool IsAncestor(TxnId anc, TxnId desc) const = 0;
};

/// Moss's nested-transaction lock manager (the engine counterpart of the
/// version/value-map levels' lock stacks).
///
/// Rules (Moss 1981 §, as summarized in the paper's §7-§9):
///  * A transaction T may acquire a WRITE lock on x iff every transaction
///    that holds or retains any lock on x is an ancestor of T.
///  * T may acquire a READ lock on x iff every holder/retainer of a WRITE
///    lock on x is an ancestor of T. (Concurrent sibling readers are
///    therefore allowed — the concurrency the single-mode variant lacks.)
///  * When T commits, its held and retained locks pass to parent(T) as
///    *retained* locks (lock inheritance — the engine counterpart of
///    release-lock's V(x, parent(A)) <- V(x, A)).
///  * When T aborts, its locks are discarded (lose-lock).
///
/// A retained lock is not an operational lock: it marks that a descendant
/// of the retainer wrote/read the object, so only the retainer's own
/// descendants may touch it. Holding vs retaining matters for *re*-holding
/// by the same transaction and for bookkeeping symmetry with the paper.
///
/// The lock manager is pure bookkeeping — no blocking, no threads. The
/// transaction manager serializes calls and implements waiting, deadlock
/// detection, and victim selection on top of TryAcquire/Blockers.
class LockManager {
 public:
  struct Options {
    /// Paper's simplified variant: treat every acquisition as WRITE.
    bool single_mode = false;
  };

  LockManager(const Ancestry* ancestry, Options options)
      : ancestry_(ancestry), options_(options) {}
  explicit LockManager(const Ancestry* ancestry)
      : LockManager(ancestry, Options{}) {}

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  /// Attempts to acquire `mode` on `x` for `t`. Returns true and records
  /// the hold on success; returns false (no state change) on conflict.
  bool TryAcquire(ObjectId x, TxnId t, LockMode mode);

  /// The transactions whose holds/retentions block `t` from acquiring
  /// `mode` on `x` (empty iff TryAcquire would succeed). Used to build
  /// the wait-for graph.
  std::vector<TxnId> Blockers(ObjectId x, TxnId t, LockMode mode) const;

  /// Lock inheritance on commit: everything `t` holds or retains is
  /// merged into `parent`'s retained set. A top-level commit
  /// (parent == kNoTxn) releases the locks outright.
  void OnCommit(TxnId t, TxnId parent);

  /// Lock discard on abort.
  void OnAbort(TxnId t);

  // Introspection (tests, benches).
  bool Holds(ObjectId x, TxnId t, LockMode mode) const;
  bool Retains(ObjectId x, TxnId t, LockMode mode) const;
  std::size_t HolderCount(ObjectId x) const;
  std::size_t RetainerCount(ObjectId x) const;
  /// Total number of (object, txn) lock records — the lock-table
  /// footprint reported by bench_nesting_depth.
  std::size_t RecordCount() const;

 private:
  struct ModeSet {
    bool read = false;
    bool write = false;
    bool Any() const { return read || write; }
    void Merge(const ModeSet& o) {
      read |= o.read;
      write |= o.write;
    }
  };
  struct ObjectLocks {
    std::map<TxnId, ModeSet> holders;
    std::map<TxnId, ModeSet> retainers;
    bool Empty() const { return holders.empty() && retainers.empty(); }
  };

  LockMode Effective(LockMode m) const {
    return options_.single_mode ? LockMode::kWrite : m;
  }

  /// Collects conflicting transactions into `out` (if non-null); returns
  /// whether any conflict exists.
  bool Conflicts(const ObjectLocks& locks, TxnId t, LockMode mode,
                 std::vector<TxnId>* out) const;

  const Ancestry* ancestry_;
  Options options_;
  std::map<ObjectId, ObjectLocks> objects_;
  /// Per-transaction index of touched objects, for O(touched) commit/abort.
  std::map<TxnId, std::set<ObjectId>> touched_;
};

}  // namespace rnt::lock

#endif  // RNT_LOCK_LOCK_MANAGER_H_
