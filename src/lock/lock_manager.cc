#include "lock/lock_manager.h"

#include <algorithm>

namespace rnt::lock {

std::string_view LockModeName(LockMode m) {
  return m == LockMode::kRead ? "read" : "write";
}

bool LockManager::Conflicts(const ObjectLocks& locks, TxnId t, LockMode mode,
                            std::vector<TxnId>* out) const {
  bool any = false;
  auto consider = [&](TxnId q, const ModeSet& ms) {
    if (q == t) return;  // own locks never conflict
    // WRITE request conflicts with any lock by a non-ancestor;
    // READ request conflicts only with WRITE locks by non-ancestors.
    bool relevant = (mode == LockMode::kWrite) ? ms.Any() : ms.write;
    if (!relevant) return;
    if (ancestry_->IsAncestor(q, t)) return;
    any = true;
    if (out != nullptr &&
        std::find(out->begin(), out->end(), q) == out->end()) {
      out->push_back(q);
    }
  };
  for (const auto& [q, ms] : locks.holders) consider(q, ms);
  for (const auto& [q, ms] : locks.retainers) consider(q, ms);
  return any;
}

bool LockManager::TryAcquire(ObjectId x, TxnId t, LockMode mode) {
  mode = Effective(mode);
  ObjectLocks& locks = objects_[x];
  if (Conflicts(locks, t, mode, nullptr)) return false;
  ModeSet& ms = locks.holders[t];
  if (mode == LockMode::kRead) {
    ms.read = true;
  } else {
    ms.write = true;
  }
  touched_[t].insert(x);
  return true;
}

std::vector<TxnId> LockManager::Blockers(ObjectId x, TxnId t,
                                         LockMode mode) const {
  std::vector<TxnId> out;
  auto it = objects_.find(x);
  if (it == objects_.end()) return out;
  Conflicts(it->second, t, Effective(mode), &out);
  return out;
}

void LockManager::OnCommit(TxnId t, TxnId parent) {
  auto it = touched_.find(t);
  if (it == touched_.end()) return;
  for (ObjectId x : it->second) {
    auto ot = objects_.find(x);
    if (ot == objects_.end()) continue;
    ObjectLocks& locks = ot->second;
    ModeSet merged;
    if (auto h = locks.holders.find(t); h != locks.holders.end()) {
      merged.Merge(h->second);
      locks.holders.erase(h);
    }
    if (auto r = locks.retainers.find(t); r != locks.retainers.end()) {
      merged.Merge(r->second);
      locks.retainers.erase(r);
    }
    if (merged.Any() && parent != kNoTxn) {
      locks.retainers[parent].Merge(merged);
      touched_[parent].insert(x);
    }
    if (locks.Empty()) objects_.erase(ot);
  }
  touched_.erase(t);
}

void LockManager::OnAbort(TxnId t) {
  auto it = touched_.find(t);
  if (it == touched_.end()) return;
  for (ObjectId x : it->second) {
    auto ot = objects_.find(x);
    if (ot == objects_.end()) continue;
    ot->second.holders.erase(t);
    ot->second.retainers.erase(t);
    if (ot->second.Empty()) objects_.erase(ot);
  }
  touched_.erase(t);
}

bool LockManager::Holds(ObjectId x, TxnId t, LockMode mode) const {
  auto it = objects_.find(x);
  if (it == objects_.end()) return false;
  auto h = it->second.holders.find(t);
  if (h == it->second.holders.end()) return false;
  return mode == LockMode::kRead ? h->second.read : h->second.write;
}

bool LockManager::Retains(ObjectId x, TxnId t, LockMode mode) const {
  auto it = objects_.find(x);
  if (it == objects_.end()) return false;
  auto r = it->second.retainers.find(t);
  if (r == it->second.retainers.end()) return false;
  return mode == LockMode::kRead ? r->second.read : r->second.write;
}

std::size_t LockManager::HolderCount(ObjectId x) const {
  auto it = objects_.find(x);
  return it == objects_.end() ? 0 : it->second.holders.size();
}

std::size_t LockManager::RetainerCount(ObjectId x) const {
  auto it = objects_.find(x);
  return it == objects_.end() ? 0 : it->second.retainers.size();
}

std::size_t LockManager::RecordCount() const {
  std::size_t n = 0;
  for (const auto& [x, locks] : objects_) {
    n += locks.holders.size() + locks.retainers.size();
  }
  return n;
}

}  // namespace rnt::lock
