#include "lock/lock_manager.h"

#include <algorithm>

namespace rnt::lock {

std::string_view LockModeName(LockMode m) {
  return m == LockMode::kRead ? "read" : "write";
}

LockManager::LockManager(const Ancestry* ancestry, Options options)
    : ancestry_(ancestry),
      options_(options),
      shards_(std::max<std::uint32_t>(1, options.shards)) {}

bool LockManager::Conflicts(const ObjectLocks& locks, TxnId t, LockMode mode,
                            std::vector<TxnId>* out) const {
  bool any = false;
  auto consider = [&](TxnId q, const ModeSet& ms) {
    if (q == t) return;  // own locks never conflict
    // WRITE request conflicts with any lock by a non-ancestor;
    // READ request conflicts only with WRITE locks by non-ancestors.
    bool relevant = (mode == LockMode::kWrite) ? ms.Any() : ms.write;
    if (!relevant) return;
    if (ancestry_->IsAncestor(q, t)) return;
    any = true;
    if (out != nullptr &&
        std::find(out->begin(), out->end(), q) == out->end()) {
      out->push_back(q);
    }
  };
  for (const auto& [q, ms] : locks.holders) consider(q, ms);
  for (const auto& [q, ms] : locks.retainers) consider(q, ms);
  return any;
}

void LockManager::Grant(Shard& shard, ObjectId x, TxnId t, LockMode mode) {
  ModeSet& ms = shard.objects[x].holders[t];
  if (mode == LockMode::kRead) {
    ms.read = true;
  } else {
    ms.write = true;
  }
  shard.touched[t].insert(x);
}

void LockManager::NotifyObject(Shard& shard, ObjectId x) {
  auto it = shard.waits.find(x);
  if (it == shard.waits.end()) return;
  ++it->second.version;
  it->second.cv.NotifyAll();
}

bool LockManager::TryAcquire(ObjectId x, TxnId t, LockMode mode) {
  mode = Effective(mode);
  Shard& shard = ShardFor(x);
  MutexLock lk(shard.mu);
  if (auto it = shard.objects.find(x); it != shard.objects.end()) {
    if (Conflicts(it->second, t, mode, nullptr)) return false;
  }
  Grant(shard, x, t, mode);
  return true;
}

std::vector<TxnId> LockManager::Blockers(ObjectId x, TxnId t,
                                         LockMode mode) const {
  std::vector<TxnId> out;
  const Shard& shard = ShardFor(x);
  MutexLock lk(shard.mu);
  auto it = shard.objects.find(x);
  if (it == shard.objects.end()) return out;
  Conflicts(it->second, t, Effective(mode), &out);
  return out;
}

LockManager::AcquireResult LockManager::AcquireOrEnqueue(ObjectId x, TxnId t,
                                                         LockMode mode) {
  mode = Effective(mode);
  Shard& shard = ShardFor(x);
  MutexLock lk(shard.mu);
  AcquireResult result;
  auto it = shard.objects.find(x);
  if (it == shard.objects.end() ||
      !Conflicts(it->second, t, mode, &result.blockers)) {
    Grant(shard, x, t, mode);
    result.acquired = true;
    result.blockers.clear();
    return result;
  }
  // Conflict: register on x's wait queue in the same critical section, so
  // a release between the failed check and WaitOn still bumps our ticket.
  WaitPoint& wp = shard.waits[x];
  ++wp.waiters;
  result.ticket = wp.version;
  return result;
}

bool LockManager::WaitOn(ObjectId x, std::uint64_t ticket,
                         std::chrono::steady_clock::time_point deadline) {
  Shard& shard = ShardFor(x);
  MutexLock lk(shard.mu);
  auto it = shard.waits.find(x);
  if (it == shard.waits.end()) return true;  // queue already moved & drained
  WaitPoint& wp = it->second;
  bool moved = true;
  while (wp.version == ticket) {
    if (wp.cv.WaitUntil(shard.mu, deadline) == std::cv_status::timeout) {
      moved = wp.version != ticket;
      break;
    }
  }
  if (--wp.waiters == 0) shard.waits.erase(it);
  return moved;
}

void LockManager::CancelWait(ObjectId x) {
  Shard& shard = ShardFor(x);
  MutexLock lk(shard.mu);
  auto it = shard.waits.find(x);
  if (it == shard.waits.end()) return;
  if (--it->second.waiters == 0) shard.waits.erase(it);
}

void LockManager::Poke(ObjectId x) {
  Shard& shard = ShardFor(x);
  MutexLock lk(shard.mu);
  NotifyObject(shard, x);
}

void LockManager::OnCommit(TxnId t, TxnId parent) {
  for (Shard& shard : shards_) {
    MutexLock lk(shard.mu);
    auto it = shard.touched.find(t);
    if (it == shard.touched.end()) continue;
    for (ObjectId x : it->second) {
      auto ot = shard.objects.find(x);
      if (ot == shard.objects.end()) continue;
      ObjectLocks& locks = ot->second;
      ModeSet merged;
      if (auto h = locks.holders.find(t); h != locks.holders.end()) {
        merged.Merge(h->second);
        locks.holders.erase(h);
      }
      if (auto r = locks.retainers.find(t); r != locks.retainers.end()) {
        merged.Merge(r->second);
        locks.retainers.erase(r);
      }
      if (merged.Any() && parent != kNoTxn) {
        locks.retainers[parent].Merge(merged);
        shard.touched[parent].insert(x);
      }
      if (locks.Empty()) shard.objects.erase(ot);
      // Inheritance can unblock the retainer's descendants (and a
      // top-level commit unblocks everyone): wake x's waiters.
      NotifyObject(shard, x);
    }
    shard.touched.erase(t);
  }
}

void LockManager::OnAbort(TxnId t) {
  for (Shard& shard : shards_) {
    MutexLock lk(shard.mu);
    auto it = shard.touched.find(t);
    if (it == shard.touched.end()) continue;
    for (ObjectId x : it->second) {
      auto ot = shard.objects.find(x);
      if (ot == shard.objects.end()) continue;
      ot->second.holders.erase(t);
      ot->second.retainers.erase(t);
      if (ot->second.Empty()) shard.objects.erase(ot);
      NotifyObject(shard, x);
    }
    shard.touched.erase(t);
  }
}

bool LockManager::Holds(ObjectId x, TxnId t, LockMode mode) const {
  const Shard& shard = ShardFor(x);
  MutexLock lk(shard.mu);
  auto it = shard.objects.find(x);
  if (it == shard.objects.end()) return false;
  auto h = it->second.holders.find(t);
  if (h == it->second.holders.end()) return false;
  return mode == LockMode::kRead ? h->second.read : h->second.write;
}

bool LockManager::Retains(ObjectId x, TxnId t, LockMode mode) const {
  const Shard& shard = ShardFor(x);
  MutexLock lk(shard.mu);
  auto it = shard.objects.find(x);
  if (it == shard.objects.end()) return false;
  auto r = it->second.retainers.find(t);
  if (r == it->second.retainers.end()) return false;
  return mode == LockMode::kRead ? r->second.read : r->second.write;
}

std::size_t LockManager::HolderCount(ObjectId x) const {
  const Shard& shard = ShardFor(x);
  MutexLock lk(shard.mu);
  auto it = shard.objects.find(x);
  return it == shard.objects.end() ? 0 : it->second.holders.size();
}

std::size_t LockManager::RetainerCount(ObjectId x) const {
  const Shard& shard = ShardFor(x);
  MutexLock lk(shard.mu);
  auto it = shard.objects.find(x);
  return it == shard.objects.end() ? 0 : it->second.retainers.size();
}

std::size_t LockManager::RecordCount() const {
  std::size_t n = 0;
  for (const Shard& shard : shards_) {
    MutexLock lk(shard.mu);
    for (const auto& [x, locks] : shard.objects) {
      n += locks.holders.size() + locks.retainers.size();
    }
  }
  return n;
}

}  // namespace rnt::lock
