#ifndef RNT_SIM_PROCESS_CHAOS_H_
#define RNT_SIM_PROCESS_CHAOS_H_

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "common/status.h"
#include "common/types.h"
#include "faults/faults.h"
#include "storage/recovery.h"

namespace rnt::sim {

/// A concurrent nested-transaction workload against a storage::DurableEngine,
/// built to be *auditable after a kill -9*:
///
///  * thread t owns marker object `marker_base + t` and bumps it by one in
///    every top-level transaction it commits, so the marker's recovered
///    value counts that thread's durable commits;
///  * after (and only after) a top-level Commit() returns OK — i.e. after
///    the group-commit barrier made the tree durable — the thread appends
///    one ack byte to the `acks` file (O_APPEND, atomic). Acks therefore
///    never run ahead of durability, and the crash invariant is one-sided:
///      recovered marker value  >=  acked ops of that thread;
///  * a fraction of transactions also run a subtransaction against a small
///    contended pool of shared objects (committing or aborting it), so a
///    kill lands on real nested trees, not just flat writes.
///
/// When `crash.Enabled()`, the thread whose commit is the `after_ops`-th
/// durable one raises SIGKILL on the spot: no destructors, no WAL flush
/// beyond what group commit already wrote — the storage layer sees exactly
/// what a hard process death leaves behind. A *lingerer* thread
/// additionally opens one nested transaction tree (on the two objects
/// just below `marker_base`), barriers its begin/perform records to disk,
/// and holds it open until the kill — so every crash deterministically
/// leaves an in-flight tree that restart recovery must roll back, not
/// just whatever the timing lottery caught mid-commit.
struct DurableWorkloadOptions {
  std::string dir;
  int threads = 4;
  int ops_per_thread = 64;
  std::uint64_t seed = 1;
  faults::ProcessCrashSpec crash;
  /// Page-cache durability (fsync off) is the right fault model for
  /// kill -9: the page cache survives the process. Turn on for the
  /// machine-crash model.
  bool fsync = false;
  ObjectId marker_base = 1000;
  std::uint32_t shared_objects = 8;
};

/// Runs the workload in *this* process (the child side of the harness).
/// Does not return when the crash trigger fires.
Status RunDurableWorkload(const DurableWorkloadOptions& options);

/// One fork / kill -9 / restart-recover cycle (the parent side).
struct KillRecoverReport {
  /// The child died by SIGKILL (the planned crash). False when the
  /// workload ran to completion (control cycles with crash disabled).
  bool killed = false;
  /// Child exit code; meaningful only when !killed.
  int exit_code = -1;
  /// Per-thread ack counts read back from the acks file — cumulative
  /// across every cycle that shared the directory.
  std::vector<std::uint64_t> acked;
  /// What restart recovery found when the directory was reopened. The
  /// embedded `history` is ready for txn::ReplayTrace + the Theorem 9
  /// checker; `store` is the recovered committed state.
  storage::RecoveryReport recovery;
};

/// Forks, runs the workload in the child, reaps it, then reopens the
/// directory through storage::DurableEngine::Open — the full recovery +
/// fresh-snapshot + WAL-reset sequence, so consecutive cycles against one
/// directory compound. Value judgments (marker invariants, Theorem 9) are
/// the caller's; this returns the evidence.
StatusOr<KillRecoverReport> RunKillRecoverCycle(
    const DurableWorkloadOptions& options);

/// Forks and runs `body` in the child; `body` is expected to terminate
/// the child itself (e.g. by raising SIGKILL through a recovery hook).
/// Returns the signal that killed the child, 0 if it exited normally.
/// Used by the recovery-idempotence tests to kill -9 *inside* the
/// crash-idempotent Open sequence.
StatusOr<int> RunInChild(const std::function<void()>& body);

/// Per-thread ack counts from `dir`'s acks file (missing file = all 0).
StatusOr<std::vector<std::uint64_t>> ReadAcks(const std::string& dir,
                                              int threads);

}  // namespace rnt::sim

#endif  // RNT_SIM_PROCESS_CHAOS_H_
