#ifndef RNT_SIM_PARALLEL_RUNNER_H_
#define RNT_SIM_PARALLEL_RUNNER_H_

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "common/status.h"
#include "dist/dist_algebra.h"
#include "faults/faults.h"
#include "sim/dist_driver.h"
#include "valuemap/value_map_algebra.h"

namespace rnt::sim {

/// Options for a multi-threaded execution of the distributed algebra ℬ.
struct ParallelOptions {
  /// Knowledge policy. The runner is reactive (nodes learn, they are not
  /// asked), so it supports the two broadcast policies: kEager ships the
  /// doer's full summary after every change; kDelta ships only the
  /// entries new since the last send to each peer (per-peer frontiers),
  /// and deltas accumulated between flushes coalesce into one message.
  /// kLazy needs a request channel the runner does not have — rejected.
  Propagation propagation = Propagation::kDelta;
  /// Actions to abort (instead of commit) once created; their descendants
  /// are never created. Same contract as DriverOptions::abort_set.
  std::set<ActionId> abort_set;
  /// The full fault schedule: message faults (drop/duplicate/delay —
  /// delays of distinct messages reorder them), crashes, and partitions.
  /// The free-running loops have no rounds, so crash triggers and
  /// partition windows run on the *logical clock* — the global event
  /// stamp counter (CrashSpec::at_stamp / PartitionSpec::from_stamp;
  /// round fields are reinterpreted in stamp units when unset). A crash
  /// terminates the node's thread mid-loop after wiping its volatile
  /// ActionSummary; the supervisor rebirths a fresh thread that replays
  /// the mailbox's durable retention buffer M_i (one legal Receive) and
  /// reconstructs its obligations from the recovered knowledge plus the
  /// durable lock table. Partitions are enforced link-level at the
  /// mailbox. Liveness note: when the whole system quiesces before a
  /// rebirth stamp is reached, the supervisor rebirths early rather than
  /// deadlock — stamp windows are upper bounds on patience, not exact
  /// schedules.
  faults::FaultPlan plan;
  /// Base of the per-node watchdog's bounded exponential backoff:
  /// consecutive no-progress loop passes before the first full-summary
  /// re-broadcast (the anti-entropy retry that makes dropped deltas
  /// recoverable; counted in stats.retries). Subsequent retries back off
  /// exponentially (shift capped at 5). Each retry also ticks the
  /// logical clock so stamp-based rebirths/partition heals stay live
  /// while the system idles.
  int stall_retry_spins = 64;
  /// Watchdog escalation threshold: unproductive retries before the node
  /// timeout-aborts the deepest abortable enclosing subtransaction homed
  /// locally (first of a stuck blocker's ancestors, then of its own
  /// pending path) — the dynamic lose-lock/orphan path, for graceful
  /// degradation under partitions. Counted in stats.timeout_aborts.
  int max_attempts_per_step = 16;
  /// Consecutive no-progress passes before a node abandons its remaining
  /// obligations (returns an incomplete run rather than spinning forever;
  /// only reachable under adversarial fault plans or driver bugs).
  std::uint64_t max_idle_spins = 1u << 20;
  /// Record the applied ℬ events (globally stamped, mergeable into one
  /// valid computation). Disable for wall-clock benchmarking.
  bool record_events = true;
  /// When non-empty, every entry retained into a node's durable buffer
  /// M_i (the §9.1 retention summary) is also written through to an
  /// append-only storage::RetentionLog file `durable_dir/retained-NNN.log`
  /// — so M_i is durable against *process* death, not just node-thread
  /// crashes. On rebirth the runner re-loads the on-disk log and verifies
  /// the in-memory retention is a sub-summary of it (the write-through
  /// discipline audited at the moment it matters). The directory must
  /// exist; logs from a previous run of the same program are appended to,
  /// and RetentionLog::Load merges records monotonically (status upgrades
  /// only), mirroring M_i's monotonicity.
  std::string durable_dir;
};

/// Result of a parallel run.
struct ParallelRun {
  DriverStats stats;
  dist::DistState final_state;
  /// The applied events of all nodes, merged in global stamp order — a
  /// valid computation of ℬ (checked by tests via IsValidSequence): every
  /// payload is a sub-summary of the sender's monotone knowledge, so a
  /// Send stays legal at any later point in the interleaving.
  std::vector<dist::DistEvent> events;
  /// False when some node abandoned obligations after max_idle_spins.
  bool complete = true;
};

/// Executes the entire registered program on ℬ with one thread per node:
/// each node runs a reactive event loop against its own component of the
/// state (the algebra's Local Domain / Local Changes properties make the
/// state partition race-free by construction) and the mutex-free
/// ConcurrentMailbox carries summaries between nodes.
///
/// Resilience (see DESIGN.md "Resilience in the concurrent runtime"):
/// the runner survives the full FaultPlan. A WAL discipline self-appends
/// every summary change into the mailbox's durable retention buffer, so
/// M_i stays a superset of node i's volatile knowledge; a crash kills
/// the node thread after wiping that volatile summary, and the
/// supervisor rebirths a fresh thread that replays M_i — the paper's
/// §9.1 recovery, executed as one Receive event. A per-node watchdog
/// (bounded-backoff anti-entropy retries, then timeout-abort of the
/// deepest locally-abortable enclosing subtransaction) degrades
/// partitioned runs gracefully to incomplete-but-diagnosed results.
///
/// Scheduling discipline: per-object perform order is pinned to the
/// sequential driver's DFS order (a ticket list per object). Waits then
/// only ever point from a DFS-later access to a DFS-earlier transaction,
/// so the runner is deadlock-free by the same argument as the DFS driver,
/// and final value maps are *identical* to RunProgram's on every program
/// — the parallelism changes the interleaving, never the outcome.
StatusOr<ParallelRun> RunParallel(const dist::DistAlgebra& alg,
                                  const ParallelOptions& options = {});

/// Replays a recorded ℬ computation bottom-up through the level-4 algebra
/// (send/receive map to Λ): returns the abstract (tree, value-map) state,
/// or kInternal if some event's image is undefined — the refinement
/// obligation a valid run must never trip. Used to judge parallel runs
/// with the Theorem 9 checker.
StatusOr<valuemap::ValState> ReplayAbstract(
    const dist::DistAlgebra& alg, std::span<const dist::DistEvent> events);

}  // namespace rnt::sim

#endif  // RNT_SIM_PARALLEL_RUNNER_H_
