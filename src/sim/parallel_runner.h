#ifndef RNT_SIM_PARALLEL_RUNNER_H_
#define RNT_SIM_PARALLEL_RUNNER_H_

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "common/status.h"
#include "dist/dist_algebra.h"
#include "faults/faults.h"
#include "sim/dist_driver.h"
#include "valuemap/value_map_algebra.h"

namespace rnt::sim {

/// Options for a multi-threaded execution of the distributed algebra ℬ.
struct ParallelOptions {
  /// Knowledge policy. The runner is reactive (nodes learn, they are not
  /// asked), so it supports the two broadcast policies: kEager ships the
  /// doer's full summary after every change; kDelta ships only the
  /// entries new since the last send to each peer (per-peer frontiers),
  /// and deltas accumulated between flushes coalesce into one message.
  /// kLazy needs a request channel the runner does not have — rejected.
  Propagation propagation = Propagation::kDelta;
  /// Actions to abort (instead of commit) once created; their descendants
  /// are never created. Same contract as DriverOptions::abort_set.
  std::set<ActionId> abort_set;
  /// Message faults injected into the concurrent buffer (drop/duplicate/
  /// delay — delays of distinct messages reorder them). Crash and
  /// partition specs are rejected: they require the round-based recovery
  /// machinery of the chaos driver, not the free-running loops here.
  faults::FaultPlan plan;
  /// Consecutive no-progress loop passes before a node re-broadcasts its
  /// full summary (the anti-entropy retry that makes dropped deltas
  /// recoverable; counted in stats.retries).
  int stall_retry_spins = 64;
  /// Consecutive no-progress passes before a node abandons its remaining
  /// obligations (returns an incomplete run rather than spinning forever;
  /// only reachable under adversarial fault plans or driver bugs).
  std::uint64_t max_idle_spins = 1u << 20;
  /// Record the applied ℬ events (globally stamped, mergeable into one
  /// valid computation). Disable for wall-clock benchmarking.
  bool record_events = true;
};

/// Result of a parallel run.
struct ParallelRun {
  DriverStats stats;
  dist::DistState final_state;
  /// The applied events of all nodes, merged in global stamp order — a
  /// valid computation of ℬ (checked by tests via IsValidSequence): every
  /// payload is a sub-summary of the sender's monotone knowledge, so a
  /// Send stays legal at any later point in the interleaving.
  std::vector<dist::DistEvent> events;
  /// False when some node abandoned obligations after max_idle_spins.
  bool complete = true;
};

/// Executes the entire registered program on ℬ with one thread per node:
/// each node runs a reactive event loop against its own component of the
/// state (the algebra's Local Domain / Local Changes properties make the
/// state partition race-free by construction) and the mutex-free
/// ConcurrentMailbox carries summaries between nodes.
///
/// Scheduling discipline: per-object perform order is pinned to the
/// sequential driver's DFS order (a ticket list per object). Waits then
/// only ever point from a DFS-later access to a DFS-earlier transaction,
/// so the runner is deadlock-free by the same argument as the DFS driver,
/// and final value maps are *identical* to RunProgram's on every program
/// — the parallelism changes the interleaving, never the outcome.
StatusOr<ParallelRun> RunParallel(const dist::DistAlgebra& alg,
                                  const ParallelOptions& options = {});

/// Replays a recorded ℬ computation bottom-up through the level-4 algebra
/// (send/receive map to Λ): returns the abstract (tree, value-map) state,
/// or kInternal if some event's image is undefined — the refinement
/// obligation a valid run must never trip. Used to judge parallel runs
/// with the Theorem 9 checker.
StatusOr<valuemap::ValState> ReplayAbstract(
    const dist::DistAlgebra& alg, std::span<const dist::DistEvent> events);

}  // namespace rnt::sim

#endif  // RNT_SIM_PARALLEL_RUNNER_H_
