#include "sim/diagnosis.h"

#include <sstream>

namespace rnt::sim {

std::string StallDiagnosis::ToString() const {
  std::ostringstream os;
  for (const StalledAction& sa : stalled) {
    os << "  action " << sa.action << (sa.is_access ? " (access)" : "")
       << " @ n" << sa.home;
    if (sa.is_access) os << " x" << sa.object;
    if (sa.waiting_on != kInvalidAction) {
      os << " waiting on " << sa.waiting_on;
    }
    if (!sa.detail.empty()) os << ": " << sa.detail;
    os << "\n";
  }
  return os.str();
}

StallDiagnosis DiagnoseStalls(const dist::DistAlgebra& alg,
                              const dist::DistState& s) {
  const dist::Topology& topo = alg.topology();
  const action::ActionRegistry& reg = alg.registry();
  StallDiagnosis out;

  for (ActionId a = 1; a < reg.size(); ++a) {
    // Live = some node knows the action and no node knows it done.
    // (Statuses are only ever changed at the home node, so a done entry
    // anywhere is authoritative.)
    bool known = false, done = false;
    for (const dist::NodeState& n : s.nodes) {
      if (!n.summary.Contains(a)) continue;
      known = true;
      if (n.summary.IsDone(a)) done = true;
    }
    if (!known || done) continue;

    StalledAction sa;
    sa.action = a;
    sa.is_access = reg.IsAccess(a);
    sa.home = topo.HomeOfAction(a);
    if (sa.is_access) {
      ObjectId x = reg.Object(a);
      sa.object = x;
      const dist::NodeState& hn = s.nodes[sa.home];
      if (!hn.summary.Contains(a)) {
        sa.detail = "home never learned of the access";
      } else if (const auto* entry = hn.vmap.EntriesFor(x)) {
        for (const auto& [b, v] : *entry) {
          if (b != kRootAction && !reg.IsProperAncestor(b, a)) {
            sa.waiting_on = b;
            sa.detail = "blocked by lock holder";
            break;
          }
        }
        if (sa.waiting_on == kInvalidAction) {
          sa.detail = "lock chain clear; perform never ran";
        }
      } else {
        sa.detail = "lock chain clear; perform never ran";
      }
    } else {
      const dist::NodeState& hn = s.nodes[sa.home];
      if (!hn.summary.Contains(a)) {
        sa.detail = "home never learned of the action";
      } else {
        for (ActionId c = 1; c < reg.size(); ++c) {
          if (reg.Parent(c) != a) continue;
          if (hn.summary.Contains(c) && !hn.summary.IsDone(c)) {
            sa.waiting_on = c;
            sa.detail = "awaiting child completion";
            break;
          }
        }
        if (sa.waiting_on == kInvalidAction) {
          sa.detail = "ready to commit; commit event never ran";
        }
      }
    }
    out.stalled.push_back(std::move(sa));
  }
  return out;
}

}  // namespace rnt::sim
