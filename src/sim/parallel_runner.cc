#include "sim/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <thread>
#include <utility>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "sim/message_buffer.h"

namespace rnt::sim {

namespace {

using dist::ActionSummary;
using dist::DistAlgebra;
using dist::DistEvent;
using dist::DistState;

/// anc(A) ∩ summary.aborted ≠ ∅, judged from one node's local knowledge —
/// the lose-lock precondition (f12) at this level.
bool LocallyDead(const action::ActionRegistry& reg, const ActionSummary& t,
                 ActionId a) {
  for (ActionId c : reg.AncestorChain(a)) {
    if (c != kRootAction && t.IsAborted(c)) return true;
  }
  return false;
}

/// Multi-threaded executor of ℬ: one free-running event loop per node.
///
/// Race-freedom rests on the algebra's structure, not on locks. Thread i
/// exclusively owns state_.nodes[i] (every node event's precondition and
/// effect touch only the doer's component — Local Domain / Local Changes,
/// Lemma 22) and state_.buffer[i] (the Send effect (g21) merges into the
/// *destination's* buffer, so the runner applies a Send on the receiving
/// thread when the message is drained from the mailbox). The only
/// cross-thread channel is the mutex-free ConcurrentMailbox.
///
/// The recorded event log is a valid ℬ computation in stamp order even
/// though no thread ever checks a Send against the sender's component:
/// summaries are monotone (entries are only added, statuses only advance),
/// so a payload that was a sub-summary of the sender's knowledge when it
/// was enqueued stays one at every later point — and the stamp counter is
/// an RMW on one atomic, totally ordered consistently with the mailbox's
/// release/acquire edges.
class ParallelRunner {
 public:
  ParallelRunner(const DistAlgebra& alg, const ParallelOptions& options)
      : alg_(alg),
        topo_(alg.topology()),
        reg_(alg.registry()),
        options_(options),
        state_(alg.Initial()),
        mailbox_(topo_.k()),
        children_(reg_.size()),
        dead_(reg_.size(), 0),
        workers_(topo_.k()) {}

  StatusOr<ParallelRun> Run() {
    RNT_RETURN_IF_ERROR(Validate());
    Plan();
    const NodeId k = topo_.k();
    std::vector<std::thread> threads;
    threads.reserve(k);
    for (NodeId i = 0; i < k; ++i) {
      threads.emplace_back([this, i] { RunNode(workers_[i]); });
    }
    for (std::thread& t : threads) t.join();
    {
      MutexLock lock(error_mu_);
      if (!first_error_.ok()) return first_error_;
    }
    return Assemble();
  }

 private:
  struct ObjectWork {
    ObjectId x = 0;
    /// Live accesses on x in the DFS driver's perform order (the ticket
    /// list); next is the cursor. Pinning per-object perform order to the
    /// DFS order makes every wait point from a DFS-later access to a
    /// DFS-earlier transaction — deadlock-free by the same argument as
    /// the sequential driver, and value-for-value equivalent to it.
    std::vector<ActionId> tickets;
    std::size_t next = 0;
    bool drained = false;
  };

  struct Worker {
    NodeId id = 0;
    /// Local obligations, in DFS order (parents before children).
    std::vector<ActionId> creates;
    std::vector<ActionId> aborts;   // abort_set members homed here
    std::vector<ActionId> commits;  // live inner actions homed here
    std::vector<ObjectWork> objects;
    std::size_t next_create = 0;
    std::vector<char> done_flag;    // per obligation list entry
    std::vector<char> created;      // by ActionId, local creations only
    /// Knowledge-shipping state: version bumps on every local summary
    /// change; per-peer frontiers (kDelta) or last-shipped versions
    /// (kEager) decide what the next flush sends.
    std::uint64_t version = 0;
    std::vector<ActionSummary> shipped;
    std::vector<std::uint64_t> shipped_version;
    /// Receiver-side fault machinery: messages held back by a delay
    /// verdict, and the per-node injector for outgoing transmissions.
    std::vector<NodeMessage> held;
    std::unique_ptr<faults::FaultInjector> injector;
    std::uint64_t idle = 0;
    std::uint64_t passes = 0;
    bool marked_done = false;
    bool gave_up = false;
    DriverStats stats;
    std::vector<std::pair<std::uint64_t, DistEvent>> log;
  };

  Status Validate() const {
    for (ActionId a : options_.abort_set) {
      if (!reg_.Valid(a) || reg_.IsAccess(a) || a == kRootAction) {
        return Status::InvalidArgument(
            "abort_set must contain registered non-access actions");
      }
    }
    if (options_.propagation == Propagation::kLazy) {
      return Status::InvalidArgument(
          "parallel runner is reactive: use kDelta or kEager propagation");
    }
    RNT_RETURN_IF_ERROR(faults::ValidatePlan(options_.plan, topo_.k()));
    if (!options_.plan.crashes.empty() || !options_.plan.partitions.empty()) {
      return Status::InvalidArgument(
          "parallel runner injects message faults only; crash/partition "
          "plans need the round-based chaos driver");
    }
    return Status::Ok();
  }

  /// Precomputes per-node obligation lists and per-object ticket lists
  /// from one DFS walk of the universal tree (children in id order —
  /// exactly the sequential driver's schedule).
  void Plan() {
    for (ActionId a = 1; a < reg_.size(); ++a) {
      children_[reg_.Parent(a)].push_back(a);
    }
    const NodeId k = topo_.k();
    for (NodeId i = 0; i < k; ++i) {
      Worker& w = workers_[i];
      w.id = i;
      w.created.assign(reg_.size(), 0);
      w.shipped.resize(k);
      w.shipped_version.assign(k, 0);
      faults::FaultPlan plan = options_.plan;
      plan.seed = plan.seed * 1000003u + 17u * i + 1u;
      w.injector = std::make_unique<faults::FaultInjector>(plan);
    }
    std::map<ObjectId, std::vector<ActionId>> tickets;
    // DFS: schedule creates/aborts/commits/tickets; abort_set subtrees
    // are pruned (their descendants are dead — never created anywhere).
    std::vector<std::pair<ActionId, bool>> stack;  // (action, expanded)
    for (auto it = children_[kRootAction].rbegin();
         it != children_[kRootAction].rend(); ++it) {
      stack.emplace_back(*it, false);
    }
    while (!stack.empty()) {
      auto [a, expanded] = stack.back();
      stack.pop_back();
      if (expanded) {
        workers_[topo_.HomeOfAction(a)].commits.push_back(a);
        continue;
      }
      workers_[topo_.Origin(a)].creates.push_back(a);
      if (reg_.IsAccess(a)) {
        tickets[reg_.Object(a)].push_back(a);
        continue;
      }
      if (options_.abort_set.count(a)) {
        workers_[topo_.HomeOfAction(a)].aborts.push_back(a);
        for (ActionId d = 1; d < reg_.size(); ++d) {
          if (reg_.IsProperAncestor(a, d)) dead_[d] = 1;
        }
        continue;  // subtree pruned
      }
      stack.emplace_back(a, true);  // commit after the subtree
      for (auto it = children_[a].rbegin(); it != children_[a].rend(); ++it) {
        stack.emplace_back(*it, false);
      }
    }
    for (auto& [x, list] : tickets) {
      ObjectWork ow;
      ow.x = x;
      ow.tickets = std::move(list);
      workers_[topo_.HomeOfObject(x)].objects.push_back(std::move(ow));
    }
    // Objects may also carry locks without appearing in tickets (never:
    // locks only arise from performs) — ticket objects suffice for drain.
  }

  // ----------------------------------------------------------------
  // Per-node event loop.

  void RunNode(Worker& w) {
    const NodeId k = topo_.k();
    while (!failed_.load(std::memory_order_acquire)) {
      ++w.passes;
      bool progress = false;
      progress |= DeliverMail(w);
      progress |= TryCreates(w);
      progress |= TryAborts(w);
      progress |= TryObjects(w);
      progress |= TryCommits(w);
      if (!w.marked_done && LocalDone(w)) {
        w.marked_done = true;
        done_nodes_.fetch_add(1, std::memory_order_acq_rel);
        progress = true;
      }
      Flush(w);
      if (done_nodes_.load(std::memory_order_acquire) == k) break;
      if (progress) {
        w.idle = 0;
      } else {
        ++w.idle;
        if (options_.plan.drop_prob > 0 && options_.stall_retry_spins > 0 &&
            w.idle % static_cast<std::uint64_t>(options_.stall_retry_spins) ==
                0) {
          // Anti-entropy: a dropped delta is gone for good, so a stalled
          // node re-ships its full summary (still a legal sub-summary).
          ++w.stats.retries;
          FullBroadcast(w);
        }
        if (w.idle > options_.max_idle_spins && !w.marked_done) {
          w.gave_up = true;  // abandon; others may still finish
          w.marked_done = true;
          done_nodes_.fetch_add(1, std::memory_order_acq_rel);
        }
        std::this_thread::yield();
      }
    }
  }

  /// Applies one node event on its owning thread: Defined is checked
  /// against the doer's own component only, so the check is race-free.
  bool ApplyNodeEvent(Worker& w, DistEvent e) {
    if (!alg_.Defined(state_, e)) {
      Fail(Status::Internal("parallel runner: event unexpectedly undefined: " +
                            dist::ToString(e)));
      return false;
    }
    alg_.Apply(state_, e);
    ++w.stats.node_events;
    ++w.version;
    Record(w, std::move(e));
    return true;
  }

  void Record(Worker& w, DistEvent e) {
    if (!options_.record_events) return;
    w.log.emplace_back(seq_.fetch_add(1, std::memory_order_relaxed),
                       std::move(e));
  }

  void Fail(Status s) {
    bool expected = false;
    if (failed_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
      MutexLock lock(error_mu_);
      first_error_ = std::move(s);
    }
  }

  /// Drains the mailbox and applies Send (merge into own buffer M_i) +
  /// Receive (merge into own summary) per delivered message; messages
  /// under a delay verdict are held for later passes (reordering).
  bool DeliverMail(Worker& w) {
    bool progress = false;
    std::vector<NodeMessage> due;
    for (NodeMessage& m : w.held) {
      if (--m.delay <= 0) {
        due.push_back(std::move(m));
      }
    }
    std::erase_if(w.held, [](const NodeMessage& m) { return m.delay <= 0; });
    if (!mailbox_.Empty(w.id)) {
      for (NodeMessage& m : mailbox_.Drain(w.id)) {
        if (m.delay > 0) {
          ++w.stats.delayed_msgs;
          w.held.push_back(std::move(m));
        } else {
          due.push_back(std::move(m));
        }
      }
    }
    for (NodeMessage& m : due) {
      ++w.stats.messages;
      w.stats.summary_entries += m.summary.size();
      Record(w, DistEvent{dist::Send{m.from, w.id, m.summary}});
      state_.buffer[w.id].MergeFrom(m.summary);  // (g21), on the receiver
      Record(w, DistEvent{dist::Receive{w.id, m.summary}});
      // The sender certainly knows what it sent: advancing our frontier
      // for it suppresses echo traffic.
      w.shipped[m.from].MergeFrom(m.summary);
      if (state_.nodes[w.id].summary.MergeFrom(std::move(m.summary))) {
        ++w.version;
        progress = true;
      }
    }
    return progress;
  }

  bool TryCreates(Worker& w) {
    const ActionSummary& t = state_.nodes[w.id].summary;
    bool progress = false;
    // Creates are in DFS order, so a blocked parent blocks its (local)
    // descendants too; scan past blocked entries anyway — different
    // subtrees interleave on one node.
    for (std::size_t idx = w.next_create; idx < w.creates.size(); ++idx) {
      ActionId a = w.creates[idx];
      if (w.created[a]) continue;
      ActionId p = reg_.Parent(a);
      if (p != kRootAction && (!t.Contains(p) || t.IsCommitted(p))) continue;
      if (!ApplyNodeEvent(w, DistEvent{dist::NodeCreate{w.id, a}})) {
        return progress;
      }
      w.created[a] = 1;
      progress = true;
    }
    while (w.next_create < w.creates.size() &&
           w.created[w.creates[w.next_create]]) {
      ++w.next_create;
    }
    return progress;
  }

  bool TryAborts(Worker& w) {
    bool progress = false;
    if (w.done_flag.empty()) {
      // done flags: one vector spanning aborts then commits.
      w.done_flag.assign(w.aborts.size() + w.commits.size(), 0);
    }
    for (std::size_t i = 0; i < w.aborts.size(); ++i) {
      if (w.done_flag[i]) continue;
      ActionId a = w.aborts[i];
      if (!state_.nodes[w.id].summary.IsActive(a)) continue;
      if (!ApplyNodeEvent(w, DistEvent{dist::NodeAbort{w.id, a}})) {
        return progress;
      }
      w.done_flag[i] = 1;
      ++w.stats.aborts;
      progress = true;
    }
    return progress;
  }

  bool TryCommits(Worker& w) {
    if (w.done_flag.empty()) {
      w.done_flag.assign(w.aborts.size() + w.commits.size(), 0);
    }
    const ActionSummary& t = state_.nodes[w.id].summary;
    bool progress = false;
    for (std::size_t i = 0; i < w.commits.size(); ++i) {
      std::size_t flag = w.aborts.size() + i;
      if (w.done_flag[flag]) continue;
      ActionId a = w.commits[i];
      if (!t.IsActive(a)) continue;
      // Stronger than ℬ's (b12): every live child must be *created* (all
      // of a's children are created on this very node, so this is a local
      // check) and *done* in local knowledge — the same strengthening the
      // chaos driver documents, needed for the level-4 image.
      bool ready = true;
      for (ActionId c : children_[a]) {
        if (dead_[c]) continue;
        if (!w.created[c] || !t.IsDone(c)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      if (!ApplyNodeEvent(w, DistEvent{dist::NodeCommit{w.id, a}})) {
        return progress;
      }
      w.done_flag[flag] = 1;
      ++w.stats.commits;
      progress = true;
    }
    return progress;
  }

  /// Performs the ticket-head access of each local object once its lock
  /// chain clears, walking blockers (release committed / lose dead) as
  /// far as local knowledge allows; after the last ticket, drains the
  /// object's locks to the root U the same way.
  bool TryObjects(Worker& w) {
    bool progress = false;
    for (ObjectWork& ow : w.objects) {
      if (ow.next < ow.tickets.size()) {
        ActionId a = ow.tickets[ow.next];
        if (!state_.nodes[w.id].summary.IsActive(a)) continue;
        if (!WalkLocks(w, ow.x, a, &progress)) continue;  // still blocked
        Value u = state_.nodes[w.id].vmap.PrincipalValue(ow.x, reg_);
        if (!ApplyNodeEvent(w, DistEvent{dist::NodePerform{w.id, a, u}})) {
          return progress;
        }
        ++w.stats.performs;
        ++ow.next;
        progress = true;
      } else if (!ow.drained) {
        if (WalkLocks(w, ow.x, kInvalidAction, &progress)) {
          ow.drained = true;
          progress = true;
        }
      }
    }
    return progress;
  }

  /// Walks blocking locks on x as far as local knowledge allows. Returns
  /// true when no blocker remains for `requester` (kInvalidAction: for
  /// anything but the root). Sets *progress on each applied walk event.
  bool WalkLocks(Worker& w, ObjectId x, ActionId requester, bool* progress) {
    const ActionSummary& t = state_.nodes[w.id].summary;
    for (;;) {
      const auto* entry = state_.nodes[w.id].vmap.EntriesFor(x);
      if (entry == nullptr) return true;
      ActionId blocker = kInvalidAction;
      for (const auto& [b, v] : *entry) {
        if (b != kRootAction &&
            (requester == kInvalidAction ||
             !reg_.IsProperAncestor(b, requester))) {
          blocker = b;
          break;
        }
      }
      if (blocker == kInvalidAction) return true;
      if (LocallyDead(reg_, t, blocker)) {
        if (!ApplyNodeEvent(w,
                            DistEvent{dist::NodeLoseLock{w.id, blocker, x}})) {
          return false;
        }
        ++w.stats.loses;
        *progress = true;
      } else if (t.IsCommitted(blocker)) {
        if (!ApplyNodeEvent(
                w, DistEvent{dist::NodeReleaseLock{w.id, blocker, x}})) {
          return false;
        }
        ++w.stats.releases;
        *progress = true;
      } else {
        return false;  // knowledge not here yet; broadcasts will bring it
      }
    }
  }

  bool LocalDone(const Worker& w) {
    if (w.next_create < w.creates.size()) return false;
    if (w.done_flag.size() < w.aborts.size() + w.commits.size()) {
      return w.aborts.empty() && w.commits.empty() && w.objects.empty();
    }
    for (char f : w.done_flag) {
      if (!f) return false;
    }
    for (const ObjectWork& ow : w.objects) {
      if (ow.next < ow.tickets.size() || !ow.drained) return false;
    }
    return true;
  }

  // ----------------------------------------------------------------
  // Knowledge shipping.

  /// Ships pending knowledge to every peer. Under kDelta only the entries
  /// beyond the per-peer frontier travel — everything that accumulated
  /// since the last flush coalesces into a single message per peer.
  void Flush(Worker& w) {
    const NodeId k = topo_.k();
    const ActionSummary& t = state_.nodes[w.id].summary;
    if (t.empty()) return;
    for (NodeId j = 0; j < k; ++j) {
      if (j == w.id) continue;
      if (options_.propagation == Propagation::kDelta) {
        ActionSummary delta = t.DeltaSince(w.shipped[j]);
        if (delta.empty()) continue;
        w.shipped[j].MergeFrom(delta);
        Transmit(w, j, std::move(delta));
      } else {  // kEager: full summary whenever anything changed
        if (w.shipped_version[j] == w.version) continue;
        w.shipped_version[j] = w.version;
        Transmit(w, j, t);
      }
    }
  }

  void FullBroadcast(Worker& w) {
    const ActionSummary& t = state_.nodes[w.id].summary;
    if (t.empty()) return;
    for (NodeId j = 0; j < topo_.k(); ++j) {
      if (j != w.id) Transmit(w, j, t);
    }
  }

  /// Pushes one transmission through the (possibly chaotic) concurrent
  /// buffer. The Send event itself is applied — and stamped — on the
  /// receiving thread at drain time; a dropped transmission therefore
  /// never becomes an event at all, exactly like the chaos driver's
  /// lost-before-the-buffer semantics.
  void Transmit(Worker& w, NodeId to, ActionSummary payload) {
    faults::FaultInjector::Verdict v = w.injector->OnMessage(
        w.id, to, static_cast<int>(w.passes & 0x7fffffff));
    if (v.drop) {
      ++w.stats.dropped_msgs;
      return;
    }
    if (v.duplicate_delay >= 0) {
      ++w.stats.duplicated_msgs;
      mailbox_.Push(to, NodeMessage{w.id, payload,
                                    std::max(1, v.duplicate_delay)});
    }
    mailbox_.Push(to, NodeMessage{w.id, std::move(payload), v.delay});
  }

  // ----------------------------------------------------------------

  StatusOr<ParallelRun> Assemble() {
    ParallelRun run;
    run.final_state = std::move(state_);
    std::size_t total = 0;
    for (Worker& w : workers_) {
      run.stats.node_events += w.stats.node_events;
      run.stats.messages += w.stats.messages;
      run.stats.summary_entries += w.stats.summary_entries;
      run.stats.performs += w.stats.performs;
      run.stats.commits += w.stats.commits;
      run.stats.aborts += w.stats.aborts;
      run.stats.releases += w.stats.releases;
      run.stats.loses += w.stats.loses;
      run.stats.retries += w.stats.retries;
      run.stats.dropped_msgs += w.stats.dropped_msgs;
      run.stats.duplicated_msgs += w.stats.duplicated_msgs;
      run.stats.delayed_msgs += w.stats.delayed_msgs;
      run.stats.rounds = std::max(run.stats.rounds,
                                  static_cast<int>(std::min<std::uint64_t>(
                                      w.passes, 0x7fffffff)));
      if (w.gave_up) run.complete = false;
      total += w.log.size();
    }
    if (options_.record_events) {
      std::vector<std::pair<std::uint64_t, DistEvent>> merged;
      merged.reserve(total);
      for (Worker& w : workers_) {
        std::move(w.log.begin(), w.log.end(), std::back_inserter(merged));
        w.log.clear();
      }
      std::sort(merged.begin(), merged.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      run.events.reserve(merged.size());
      for (auto& [stamp, e] : merged) run.events.push_back(std::move(e));
    }
    return run;
  }

  const DistAlgebra& alg_;
  const dist::Topology& topo_;
  const action::ActionRegistry& reg_;
  const ParallelOptions& options_;
  DistState state_;
  ConcurrentMailbox mailbox_;
  std::vector<std::vector<ActionId>> children_;
  std::vector<char> dead_;
  std::vector<Worker> workers_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint32_t> done_nodes_{0};
  std::atomic<bool> failed_{false};
  Mutex error_mu_;
  /// The first failure wins; read back single-threaded after join().
  Status first_error_ GUARDED_BY(error_mu_) = Status::Ok();
};

}  // namespace

StatusOr<ParallelRun> RunParallel(const dist::DistAlgebra& alg,
                                  const ParallelOptions& options) {
  ParallelRunner runner(alg, options);
  return runner.Run();
}

StatusOr<valuemap::ValState> ReplayAbstract(
    const dist::DistAlgebra& alg, std::span<const dist::DistEvent> events) {
  valuemap::ValueMapAlgebra val_alg(&alg.registry());
  valuemap::ValState s = val_alg.Initial();
  for (const dist::DistEvent& e : events) {
    std::optional<algebra::LockEvent> image = dist::DistToValueEvent(e);
    if (!image.has_value()) continue;  // send/receive -> Λ
    if (!val_alg.Defined(s, *image)) {
      return Status::Internal(
          "refinement violated: no level-4 image for " + dist::ToString(e));
    }
    val_alg.Apply(s, *image);
  }
  return s;
}

}  // namespace rnt::sim
