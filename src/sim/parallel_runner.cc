#include "sim/parallel_runner.h"

#include <algorithm>
#include <atomic>
#include <chrono>
#include <thread>
#include <utility>
#include <variant>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "sim/message_buffer.h"
#include "storage/retention_log.h"

namespace rnt::sim {

namespace {

using dist::ActionSummary;
using dist::DistAlgebra;
using dist::DistEvent;
using dist::DistState;

/// anc(A) ∩ summary.aborted ≠ ∅, judged from one node's local knowledge —
/// the lose-lock precondition (f12) at this level.
bool LocallyDead(const action::ActionRegistry& reg, const ActionSummary& t,
                 ActionId a) {
  for (ActionId c : reg.AncestorChain(a)) {
    if (c != kRootAction && t.IsAborted(c)) return true;
  }
  return false;
}

/// Multi-threaded executor of ℬ: one free-running event loop per node.
///
/// Race-freedom rests on the algebra's structure, not on locks. Thread i
/// exclusively owns state_.nodes[i] (every node event's precondition and
/// effect touch only the doer's component — Local Domain / Local Changes,
/// Lemma 22) and state_.buffer[i] (the Send effect (g21) merges into the
/// *destination's* buffer, so the runner applies a Send on the receiving
/// thread when the message is drained from the mailbox). The only
/// cross-thread channel is the mutex-free ConcurrentMailbox.
///
/// The recorded event log is a valid ℬ computation in stamp order even
/// though no thread ever checks a Send against the sender's component:
/// summaries are monotone (entries are only added, statuses only advance),
/// so a payload that was a sub-summary of the sender's knowledge when it
/// was enqueued stays one at every later point — and the stamp counter is
/// an RMW on one atomic, totally ordered consistently with the mailbox's
/// release/acquire edges.
///
/// Resilience: the stamp counter doubles as the *logical clock* for the
/// full FaultPlan. Each node WAL-appends every summary change into the
/// mailbox's durable retention buffer (a one-entry self-send, recorded in
/// the log so the buffer M_i of the replayed computation matches the
/// device). A crash wipes the node's volatile summary and terminates its
/// thread; the supervisor joins it and, once the logical clock passes the
/// rebirth stamp (or the whole system quiesces — liveness beats schedule
/// fidelity), spawns a fresh thread that replays M_i with one legal
/// Receive and reconstructs its obligation cursors from the recovered
/// knowledge plus the durable lock table (performed accesses carry
/// committed status per effect (d21), so ticket cursors are recoverable).
/// Partitions are enforced by the mailbox's link filter on the same
/// clock; a per-node watchdog (bounded-backoff anti-entropy, then
/// timeout-abort of the deepest locally-homed abortable enclosing
/// subtransaction) turns unservable waits into graceful degradation.
class ParallelRunner {
 public:
  ParallelRunner(const DistAlgebra& alg, const ParallelOptions& options)
      : alg_(alg),
        topo_(alg.topology()),
        reg_(alg.registry()),
        options_(options),
        state_(alg.Initial()),
        mailbox_(topo_.k()),
        link_check_(options.plan),
        children_(reg_.size()),
        dead_(reg_.size(), 0),
        workers_(topo_.k()) {
    retry_enabled_ = options.plan.drop_prob > 0 ||
                     !options.plan.crashes.empty() ||
                     !options.plan.partitions.empty();
  }

  StatusOr<ParallelRun> Run() {
    RNT_RETURN_IF_ERROR(Validate());
    if (!options_.durable_dir.empty()) {
      // Durable M_i write-through: one append-only log per node. Opened
      // before any thread exists; appends happen on the owner thread
      // under the same single-writer discipline as mailbox retention.
      retention_logs_.resize(topo_.k());
      for (NodeId i = 0; i < topo_.k(); ++i) {
        auto log = storage::RetentionLog::Open(options_.durable_dir, i);
        RNT_RETURN_IF_ERROR(log.status());
        retention_logs_[i] = std::move(*log);
      }
    }
    Plan();
    if (!options_.plan.partitions.empty()) {
      // Link-level partition enforcement at the mailbox, judged on the
      // logical clock (loop passes are not rounds).
      mailbox_.SetLinkFilter([this](NodeId from, NodeId to) {
        return link_check_.PartitionedAtStamp(
            from, to,
            static_cast<std::int64_t>(seq_.load(std::memory_order_relaxed)));
      });
    }
    return Supervise();
  }

 private:
  struct ObjectWork {
    ObjectId x = 0;
    /// Live accesses on x in the DFS driver's perform order (the ticket
    /// list); next is the cursor. Pinning per-object perform order to the
    /// DFS order makes every wait point from a DFS-later access to a
    /// DFS-earlier transaction — deadlock-free by the same argument as
    /// the sequential driver, and value-for-value equivalent to it.
    std::vector<ActionId> tickets;
    std::size_t next = 0;
    bool drained = false;
  };

  /// Thread-lifecycle state of one node, for the crash/rebirth handshake
  /// with the supervisor. Written by the node thread (kCrashed/kFinished,
  /// release) and by the supervisor (kAwaitingRebirth after join,
  /// kRunning before respawn).
  enum ExitState : int {
    kRunning = 0,
    kCrashed,          // thread returned after a crash wipe; join me
    kAwaitingRebirth,  // joined; waiting for the rebirth stamp
    kFinished,         // thread returned for good
  };

  struct Worker {
    NodeId id = 0;
    /// Local obligations, in DFS order (parents before children).
    std::vector<ActionId> creates;
    std::vector<ActionId> aborts;   // abort_set members homed here
    std::vector<ActionId> commits;  // live inner actions homed here
    std::vector<ObjectWork> objects;
    std::size_t next_create = 0;
    std::vector<char> done_flag;    // per obligation list entry
    std::vector<char> created;      // by ActionId, local creations only
    /// Knowledge-shipping state: version bumps on every local summary
    /// change; per-peer frontiers (kDelta) or last-shipped versions
    /// (kEager) decide what the next flush sends.
    std::uint64_t version = 0;
    std::vector<ActionSummary> shipped;
    std::vector<std::uint64_t> shipped_version;
    /// Receiver-side fault machinery: messages held back by a delay
    /// verdict, and the per-node injector for outgoing transmissions.
    std::vector<NodeMessage> held;
    std::unique_ptr<faults::FaultInjector> injector;
    std::uint64_t idle = 0;
    std::uint64_t passes = 0;
    bool marked_done = false;
    bool gave_up = false;
    /// Crash schedule for this node (by ascending trigger stamp) and the
    /// rebirth handshake with the supervisor.
    std::vector<faults::CrashSpec> crash_specs;
    std::size_t next_crash = 0;
    std::int64_t rebirth_stamp = 0;
    std::atomic<int> exit_state{kRunning};
    /// Watchdog: unproductive anti-entropy retries since the last local
    /// progress, and the idle count at which the next retry fires.
    int attempts = 0;
    std::uint64_t next_retry_idle = 0;
    DriverStats stats;
    std::vector<std::pair<std::uint64_t, DistEvent>> log;
  };

  Status Validate() const {
    for (ActionId a : options_.abort_set) {
      if (!reg_.Valid(a) || reg_.IsAccess(a) || a == kRootAction) {
        return Status::InvalidArgument(
            "abort_set must contain registered non-access actions");
      }
    }
    if (options_.propagation == Propagation::kLazy) {
      return Status::InvalidArgument(
          "parallel runner is reactive: use kDelta or kEager propagation");
    }
    RNT_RETURN_IF_ERROR(faults::ValidatePlan(options_.plan, topo_.k()));
    return Status::Ok();
  }

  /// Precomputes per-node obligation lists and per-object ticket lists
  /// from one DFS walk of the universal tree (children in id order —
  /// exactly the sequential driver's schedule).
  void Plan() {
    for (ActionId a = 1; a < reg_.size(); ++a) {
      children_[reg_.Parent(a)].push_back(a);
    }
    const NodeId k = topo_.k();
    for (NodeId i = 0; i < k; ++i) {
      Worker& w = workers_[i];
      w.id = i;
      w.created.assign(reg_.size(), 0);
      w.shipped.resize(k);
      w.shipped_version.assign(k, 0);
      faults::FaultPlan plan = options_.plan;
      plan.seed = plan.seed * 1000003u + 17u * i + 1u;
      w.injector = std::make_unique<faults::FaultInjector>(plan);
      for (const faults::CrashSpec& c : options_.plan.crashes) {
        if (c.node == i) w.crash_specs.push_back(c);
      }
      std::sort(w.crash_specs.begin(), w.crash_specs.end(),
                [](const faults::CrashSpec& a, const faults::CrashSpec& b) {
                  return a.TriggerStamp() < b.TriggerStamp();
                });
      w.next_retry_idle =
          static_cast<std::uint64_t>(std::max(1, options_.stall_retry_spins));
    }
    std::map<ObjectId, std::vector<ActionId>> tickets;
    // DFS: schedule creates/aborts/commits/tickets; abort_set subtrees
    // are pruned (their descendants are dead — never created anywhere).
    std::vector<std::pair<ActionId, bool>> stack;  // (action, expanded)
    for (auto it = children_[kRootAction].rbegin();
         it != children_[kRootAction].rend(); ++it) {
      stack.emplace_back(*it, false);
    }
    while (!stack.empty()) {
      auto [a, expanded] = stack.back();
      stack.pop_back();
      if (expanded) {
        workers_[topo_.HomeOfAction(a)].commits.push_back(a);
        continue;
      }
      workers_[topo_.Origin(a)].creates.push_back(a);
      if (reg_.IsAccess(a)) {
        tickets[reg_.Object(a)].push_back(a);
        continue;
      }
      if (options_.abort_set.count(a)) {
        workers_[topo_.HomeOfAction(a)].aborts.push_back(a);
        for (ActionId d = 1; d < reg_.size(); ++d) {
          if (reg_.IsProperAncestor(a, d)) dead_[d] = 1;
        }
        continue;  // subtree pruned
      }
      stack.emplace_back(a, true);  // commit after the subtree
      for (auto it = children_[a].rbegin(); it != children_[a].rend(); ++it) {
        stack.emplace_back(*it, false);
      }
    }
    for (auto& [x, list] : tickets) {
      ObjectWork ow;
      ow.x = x;
      ow.tickets = std::move(list);
      workers_[topo_.HomeOfObject(x)].objects.push_back(std::move(ow));
    }
    // Objects may also carry locks without appearing in tickets (never:
    // locks only arise from performs) — ticket objects suffice for drain.
    for (Worker& w : workers_) {
      w.done_flag.assign(w.aborts.size() + w.commits.size(), 0);
    }
  }

  // ----------------------------------------------------------------
  // Supervisor: spawns node threads, joins crashed ones, and rebirths
  // them once the logical clock passes their rebirth stamp.

  StatusOr<ParallelRun> Supervise() {
    const NodeId k = topo_.k();
    std::vector<std::thread> threads(k);
    auto spawn = [&](NodeId i, bool recover) {
      workers_[i].exit_state.store(kRunning, std::memory_order_release);
      threads[i] =
          std::thread([this, i, recover] { RunNode(workers_[i], recover); });
    };
    for (NodeId i = 0; i < k; ++i) spawn(i, /*recover=*/false);
    std::uint64_t last_seq = seq_.load(std::memory_order_acquire);
    int quiet_polls = 0;
    // One poll every 50us; ~10ms of global stamp silence counts as
    // quiescence (every live node is stalled, so waiting longer for a
    // rebirth stamp cannot help — the clock only advances with events).
    constexpr int kQuiescentPolls = 200;
    for (;;) {
      bool all_finished = true;
      bool awaiting = false;
      bool others_live = false;
      for (NodeId i = 0; i < k; ++i) {
        Worker& w = workers_[i];
        int st = w.exit_state.load(std::memory_order_acquire);
        if (st == kCrashed) {
          threads[i].join();
          w.exit_state.store(kAwaitingRebirth, std::memory_order_relaxed);
          st = kAwaitingRebirth;
        }
        if (st == kFinished) continue;
        all_finished = false;
        if (st == kAwaitingRebirth) {
          awaiting = true;
        } else {
          others_live = true;
        }
      }
      if (all_finished) break;
      const std::uint64_t now_seq = seq_.load(std::memory_order_acquire);
      quiet_polls = now_seq == last_seq ? quiet_polls + 1 : 0;
      last_seq = now_seq;
      if (awaiting) {
        const bool failed = failed_.load(std::memory_order_acquire);
        const bool force =
            failed || !others_live || quiet_polls >= kQuiescentPolls;
        for (NodeId i = 0; i < k; ++i) {
          Worker& w = workers_[i];
          if (w.exit_state.load(std::memory_order_relaxed) !=
              kAwaitingRebirth) {
            continue;
          }
          if (failed) {
            // The run is already lost; skip the rebirth ceremony.
            w.exit_state.store(kFinished, std::memory_order_relaxed);
            continue;
          }
          if (force ||
              static_cast<std::int64_t>(now_seq) >= w.rebirth_stamp) {
            spawn(i, /*recover=*/true);
            quiet_polls = 0;
          }
        }
      }
      // Wall-clock poll interval: liveness only — never semantics. The
      // run's outcome is independent of how often the supervisor looks.
      std::this_thread::sleep_for(  // rnt-lint: allow(wall-clock-wait)
          std::chrono::microseconds(50));
    }
    for (std::thread& t : threads) {
      if (t.joinable()) t.join();
    }
    {
      MutexLock lock(error_mu_);
      if (!first_error_.ok()) return first_error_;
    }
    return Assemble();
  }

  // ----------------------------------------------------------------
  // Per-node event loop.

  void RunNode(Worker& w, bool recover) {
    if (recover) Recover(w);
    const NodeId k = topo_.k();
    while (!failed_.load(std::memory_order_acquire)) {
      if (w.next_crash < w.crash_specs.size() &&
          static_cast<std::int64_t>(seq_.load(std::memory_order_acquire)) >=
              w.crash_specs[w.next_crash].TriggerStamp()) {
        Crash(w);
        return;  // mid-loop thread termination; supervisor rebirths us
      }
      ++w.passes;
      bool progress = false;
      progress |= DeliverMail(w);
      progress |= TryCreates(w);
      progress |= TryAborts(w);
      progress |= TryObjects(w);
      progress |= TryCommits(w);
      if (!w.marked_done && LocalDone(w)) {
        w.marked_done = true;
        done_nodes_.fetch_add(1, std::memory_order_acq_rel);
        progress = true;
      }
      Flush(w);
      if (done_nodes_.load(std::memory_order_acquire) == k) break;
      if (progress) {
        w.idle = 0;
        w.attempts = 0;
        w.next_retry_idle = static_cast<std::uint64_t>(
            std::max(1, options_.stall_retry_spins));
      } else {
        ++w.idle;
        if (retry_enabled_ && options_.stall_retry_spins > 0 &&
            w.idle >= w.next_retry_idle) {
          Watchdog(w);
        }
        if (w.idle > options_.max_idle_spins && !w.marked_done) {
          w.gave_up = true;  // abandon; others may still finish
          w.marked_done = true;
          done_nodes_.fetch_add(1, std::memory_order_acq_rel);
        }
        std::this_thread::yield();
      }
    }
    w.exit_state.store(kFinished, std::memory_order_release);
  }

  /// One watchdog firing: an anti-entropy full-summary re-broadcast (a
  /// dropped delta is gone for good; a healed partition needs a resend),
  /// a logical-clock heartbeat so stamp-based rebirths and partition
  /// heals stay live while every thread idles, and — past the escalation
  /// threshold — a timeout-abort. Backoff is bounded-exponential in idle
  /// passes (shift capped at 5), the chaos driver's policy transplanted
  /// into the free-running loop.
  void Watchdog(Worker& w) {
    ++w.stats.retries;
    ++w.attempts;
    seq_.fetch_add(1, std::memory_order_acq_rel);  // heartbeat tick
    FullBroadcast(w);
    if (!w.marked_done && w.attempts > options_.max_attempts_per_step) {
      if (TimeoutAbort(w)) w.attempts = 0;
    }
    const std::uint64_t base = static_cast<std::uint64_t>(
        std::max(1, options_.stall_retry_spins));
    w.next_retry_idle = w.idle + (base << std::min(w.attempts, 5));
  }

  /// Crash: wipe the volatile summary (the durable value map — the lock
  /// table for objects homed here — and the mailbox retention buffer M_i
  /// survive), drop receiver-side held messages (volatile), and hand the
  /// thread back to the supervisor for rebirth.
  void Crash(Worker& w) {
    const faults::CrashSpec& spec = w.crash_specs[w.next_crash];
    ++w.next_crash;
    state_.nodes[w.id].summary = ActionSummary{};
    w.held.clear();
    w.rebirth_stamp = spec.RebirthStamp();
    ++w.stats.crashes;
    w.exit_state.store(kCrashed, std::memory_order_release);
  }

  /// Rebirth: buffer replay is one legal Receive of the durable M_i
  /// (paper §9.1 — "all information ever sent toward i"), after which the
  /// obligation cursors are reconstructed from the recovered knowledge
  /// and the durable lock table. A performed access carries committed
  /// status in the summary (effect (d21)), so the per-object ticket
  /// cursor is exactly the first not-yet-committed live ticket.
  void Recover(Worker& w) {
    const ActionSummary& m = mailbox_.Retained(w.id);
    if (!retention_logs_.empty()) {
      // Recover-from-disk audit: the on-disk log, re-read and merged
      // monotonically, must cover everything the in-memory M_i holds —
      // write-through happened before this thread ever died, so a
      // process restart would have recovered at least this knowledge.
      auto loaded =
          storage::RetentionLog::Load(options_.durable_dir, w.id);
      if (!loaded.ok()) {
        Fail(loaded.status());
        return;
      }
      if (!m.IsSubsummaryOf(*loaded)) {
        Fail(Status::Internal(
            "parallel runner: durable retention log for node " +
            std::to_string(w.id) +
            " does not cover the in-memory M_i (write-through broken)"));
        return;
      }
    }
    if (!m.empty()) {
      DistEvent recv{dist::Receive{w.id, m}};
      if (!alg_.Defined(state_, recv)) {
        // Retention is built from exactly the Send payloads recorded
        // toward us, so this would mean the WAL discipline is broken.
        Fail(Status::Internal(
            "parallel runner: rebirth replay is not a legal Receive"));
        return;
      }
      alg_.Apply(state_, recv);
      Record(w, std::move(recv));
    }
    ++w.stats.recovered_nodes;
    ++w.version;
    const ActionSummary& t = state_.nodes[w.id].summary;
    for (ActionId a : w.creates) {
      w.created[a] =
          (t.Contains(a) || LocallyDead(reg_, t, a)) ? 1 : 0;
    }
    w.next_create = 0;
    while (w.next_create < w.creates.size() &&
           w.created[w.creates[w.next_create]]) {
      ++w.next_create;
    }
    for (std::size_t i = 0; i < w.aborts.size(); ++i) {
      w.done_flag[i] = t.IsAborted(w.aborts[i]) ? 1 : 0;
    }
    for (std::size_t i = 0; i < w.commits.size(); ++i) {
      w.done_flag[w.aborts.size() + i] = t.IsDone(w.commits[i]) ? 1 : 0;
    }
    for (ObjectWork& ow : w.objects) {
      ow.next = 0;
      while (ow.next < ow.tickets.size() &&
             (t.IsCommitted(ow.tickets[ow.next]) ||
              LocallyDead(reg_, t, ow.tickets[ow.next]))) {
        ++ow.next;
      }
      ow.drained = false;  // re-walk the durable lock table
    }
    w.idle = 0;
    w.attempts = 0;
    w.next_retry_idle =
        static_cast<std::uint64_t>(std::max(1, options_.stall_retry_spins));
  }

  /// The chaos driver's timeout-abort, transplanted: after the watchdog
  /// exhausts its retries, abort the deepest abortable enclosing
  /// subtransaction *homed on this node* — first among a stuck lock
  /// holder's ancestors (freeing the lock via the lose-lock path), then
  /// on the node's own pending commit path (orphaning the stuck subtree,
  /// which the orphan machinery must keep consistent). Only locally
  /// homed actions are eligible: thread ownership of node components is
  /// the runner's race-freedom invariant, and a remote abort would break
  /// it. Counted in stats.timeout_aborts.
  bool TimeoutAbort(Worker& w) {
    const ActionSummary& t = state_.nodes[w.id].summary;
    for (ObjectWork& ow : w.objects) {  // stuck lock holders first
      if (ow.next >= ow.tickets.size()) continue;
      ActionId requester = ow.tickets[ow.next];
      if (!t.IsActive(requester)) continue;
      const auto* entry = state_.nodes[w.id].vmap.EntriesFor(ow.x);
      if (entry == nullptr) continue;
      for (const auto& [b, v] : *entry) {
        if (b == kRootAction || reg_.IsProperAncestor(b, requester)) continue;
        if (LocallyDead(reg_, t, b) || t.IsCommitted(b)) break;  // walkable
        if (AbortAncestorHomedHere(w, b, requester)) return true;
        break;
      }
    }
    // Own path: commits are in DFS post-order, so the first pending
    // entry is the deepest unfinished subtransaction homed here.
    for (std::size_t i = 0; i < w.commits.size(); ++i) {
      const std::size_t flag = w.aborts.size() + i;
      if (w.done_flag[flag]) continue;
      ActionId a = w.commits[i];
      if (!t.IsActive(a)) continue;
      if (!ApplyNodeEvent(w, DistEvent{dist::NodeAbort{w.id, a}})) {
        return false;
      }
      w.done_flag[flag] = 1;
      ++w.stats.timeout_aborts;
      return true;
    }
    return false;
  }

  /// Aborts the deepest non-access ancestor of `blocker` that is homed
  /// here, active, and not an ancestor of `requester` (a blocked step
  /// never shoots down its own transaction from here).
  bool AbortAncestorHomedHere(Worker& w, ActionId blocker,
                              ActionId requester) {
    const ActionSummary& t = state_.nodes[w.id].summary;
    for (ActionId c : reg_.AncestorChain(blocker)) {
      if (c == kRootAction || reg_.IsAccess(c)) continue;
      if (reg_.IsAncestor(c, requester)) continue;
      if (topo_.HomeOfAction(c) != w.id) continue;
      if (!t.IsActive(c)) continue;
      if (!ApplyNodeEvent(w, DistEvent{dist::NodeAbort{w.id, c}})) {
        return false;
      }
      for (std::size_t i = 0; i < w.commits.size(); ++i) {
        if (w.commits[i] == c) {
          w.done_flag[w.aborts.size() + i] = 1;
          break;
        }
      }
      ++w.stats.timeout_aborts;
      return true;
    }
    return false;
  }

  /// Applies one node event on its owning thread: Defined is checked
  /// against the doer's own component only, so the check is race-free.
  /// Summary-changing events (create/commit/abort/perform) are followed
  /// by a WAL append — a one-entry self-send into the mailbox's durable
  /// retention buffer — so M_i stays a superset of node i's volatile
  /// knowledge and a crash can be recovered by buffer replay.
  bool ApplyNodeEvent(Worker& w, DistEvent e) {
    ActionId wal_a = kInvalidAction;
    action::ActionStatus wal_s = action::ActionStatus::kActive;
    if (const auto* c = std::get_if<dist::NodeCreate>(&e)) {
      wal_a = c->a;
    } else if (const auto* c = std::get_if<dist::NodeCommit>(&e)) {
      wal_a = c->a;
      wal_s = action::ActionStatus::kCommitted;
    } else if (const auto* c = std::get_if<dist::NodeAbort>(&e)) {
      wal_a = c->a;
      wal_s = action::ActionStatus::kAborted;
    } else if (const auto* p = std::get_if<dist::NodePerform>(&e)) {
      wal_a = p->a;  // effect (d21) sets the access committed
      wal_s = action::ActionStatus::kCommitted;
    }
    if (!alg_.Defined(state_, e)) {
      Fail(Status::Internal("parallel runner: event unexpectedly undefined: " +
                            dist::ToString(e)));
      return false;
    }
    alg_.Apply(state_, e);
    ++w.stats.node_events;
    ++w.version;
    Record(w, std::move(e));
    if (wal_a != kInvalidAction) WalAppend(w, wal_a, wal_s);
    return true;
  }

  /// WAL discipline: one-entry self-send after a summary change. The
  /// entry is retained on the durable device and recorded in the log as
  /// Send{i, i, entry}, so the replayed computation's buffer M_i matches
  /// the retention buffer a rebirth replays.
  void WalAppend(Worker& w, ActionId a, action::ActionStatus s) {
    ActionSummary entry;
    entry.AddActive(a);
    if (s != action::ActionStatus::kActive) entry.SetStatus(a, s);
    mailbox_.Retain(w.id, entry);
    RetainDurable(w.id, entry);
    DistEvent send{dist::Send{w.id, w.id, std::move(entry)}};
    // Always defined: the entry was just installed in our own summary
    // (precondition (g11), payload <= sender's knowledge).
    alg_.Apply(state_, send);  // merge into buffer M_i (g21)
    Record(w, std::move(send));
  }

  void Record(Worker& w, DistEvent e) {
    if (!options_.record_events) return;
    w.log.emplace_back(seq_.fetch_add(1, std::memory_order_relaxed),
                       std::move(e));
  }

  /// Writes `payload` through to node `node`'s on-disk retention log
  /// (no-op without durable_dir). Runs on the node's owner thread, right
  /// where the in-memory Retain happened, so disk M_i trails memory by at
  /// most the entries of the current call.
  void RetainDurable(NodeId node, const ActionSummary& payload) {
    if (retention_logs_.empty()) return;
    for (const auto& [a, s] : payload.entries()) {
      const Status w = retention_logs_[node]->Append(a, s);
      if (!w.ok()) {
        Fail(w);
        return;
      }
    }
  }

  void Fail(Status s) {
    bool expected = false;
    if (failed_.compare_exchange_strong(expected, true,
                                        std::memory_order_acq_rel)) {
      MutexLock lock(error_mu_);
      first_error_ = std::move(s);
    }
  }

  /// Drains the mailbox and applies Send (merge into own buffer M_i) +
  /// Receive (merge into own summary) per delivered message; messages
  /// under a delay verdict are held for later passes (reordering).
  bool DeliverMail(Worker& w) {
    bool progress = false;
    std::vector<NodeMessage> due;
    for (NodeMessage& m : w.held) {
      if (--m.delay <= 0) {
        due.push_back(std::move(m));
      }
    }
    std::erase_if(w.held, [](const NodeMessage& m) { return m.delay <= 0; });
    if (!mailbox_.Empty(w.id)) {
      for (NodeMessage& m : mailbox_.Drain(w.id)) {
        if (m.delay > 0) {
          ++w.stats.delayed_msgs;
          w.held.push_back(std::move(m));
        } else {
          due.push_back(std::move(m));
        }
      }
    }
    for (NodeMessage& m : due) {
      ++w.stats.messages;
      w.stats.summary_entries += m.summary.size();
      Record(w, DistEvent{dist::Send{m.from, w.id, m.summary}});
      state_.buffer[w.id].MergeFrom(m.summary);  // (g21), on the receiver
      // Durable retention: the delivered payload joins M_i on the device,
      // exactly in step with the recorded Send (so a rebirth's replay
      // Receive is legal at its point in the merged log).
      mailbox_.Retain(w.id, m.summary);
      RetainDurable(w.id, m.summary);
      Record(w, DistEvent{dist::Receive{w.id, m.summary}});
      // The sender certainly knows what it sent: advancing our frontier
      // for it suppresses echo traffic.
      w.shipped[m.from].MergeFrom(m.summary);
      if (state_.nodes[w.id].summary.MergeFrom(std::move(m.summary))) {
        ++w.version;
        progress = true;
      }
    }
    return progress;
  }

  bool TryCreates(Worker& w) {
    const ActionSummary& t = state_.nodes[w.id].summary;
    bool progress = false;
    // Creates are in DFS order, so a blocked parent blocks its (local)
    // descendants too; scan past blocked entries anyway — different
    // subtrees interleave on one node.
    for (std::size_t idx = w.next_create; idx < w.creates.size(); ++idx) {
      ActionId a = w.creates[idx];
      if (w.created[a]) continue;
      if (LocallyDead(reg_, t, a)) {
        // A timeout-abort killed an enclosing subtransaction: the create
        // obligation is resolved by never running (the subtree is dead).
        w.created[a] = 1;
        progress = true;
        continue;
      }
      ActionId p = reg_.Parent(a);
      if (p != kRootAction && (!t.Contains(p) || t.IsCommitted(p))) continue;
      if (!ApplyNodeEvent(w, DistEvent{dist::NodeCreate{w.id, a}})) {
        return progress;
      }
      w.created[a] = 1;
      progress = true;
    }
    while (w.next_create < w.creates.size() &&
           w.created[w.creates[w.next_create]]) {
      ++w.next_create;
    }
    return progress;
  }

  bool TryAborts(Worker& w) {
    bool progress = false;
    if (w.done_flag.empty()) {
      // done flags: one vector spanning aborts then commits.
      w.done_flag.assign(w.aborts.size() + w.commits.size(), 0);
    }
    for (std::size_t i = 0; i < w.aborts.size(); ++i) {
      if (w.done_flag[i]) continue;
      ActionId a = w.aborts[i];
      if (!state_.nodes[w.id].summary.IsActive(a)) continue;
      if (!ApplyNodeEvent(w, DistEvent{dist::NodeAbort{w.id, a}})) {
        return progress;
      }
      w.done_flag[i] = 1;
      ++w.stats.aborts;
      progress = true;
    }
    return progress;
  }

  bool TryCommits(Worker& w) {
    if (w.done_flag.empty()) {
      w.done_flag.assign(w.aborts.size() + w.commits.size(), 0);
    }
    const ActionSummary& t = state_.nodes[w.id].summary;
    bool progress = false;
    for (std::size_t i = 0; i < w.commits.size(); ++i) {
      std::size_t flag = w.aborts.size() + i;
      if (w.done_flag[flag]) continue;
      ActionId a = w.commits[i];
      if (!t.IsActive(a)) continue;
      // Stronger than ℬ's (b12): every live child must be *created* (all
      // of a's children are created on this very node, so this is a local
      // check) and *done* in local knowledge — the same strengthening the
      // chaos driver documents, needed for the level-4 image.
      bool ready = true;
      for (ActionId c : children_[a]) {
        if (dead_[c]) continue;
        if (!w.created[c] || !t.IsDone(c)) {
          ready = false;
          break;
        }
      }
      if (!ready) continue;
      if (!ApplyNodeEvent(w, DistEvent{dist::NodeCommit{w.id, a}})) {
        return progress;
      }
      w.done_flag[flag] = 1;
      ++w.stats.commits;
      progress = true;
    }
    return progress;
  }

  /// Performs the ticket-head access of each local object once its lock
  /// chain clears, walking blockers (release committed / lose dead) as
  /// far as local knowledge allows; after the last ticket, drains the
  /// object's locks to the root U the same way.
  bool TryObjects(Worker& w) {
    bool progress = false;
    for (ObjectWork& ow : w.objects) {
      if (ow.next < ow.tickets.size()) {
        ActionId a = ow.tickets[ow.next];
        if (LocallyDead(reg_, state_.nodes[w.id].summary, a)) {
          // Orphaned ticket (enclosing subtransaction timeout-aborted):
          // it will never perform — skip it so the queue keeps moving.
          ++ow.next;
          progress = true;
          continue;
        }
        if (!state_.nodes[w.id].summary.IsActive(a)) continue;
        if (!WalkLocks(w, ow.x, a, &progress)) continue;  // still blocked
        Value u = state_.nodes[w.id].vmap.PrincipalValue(ow.x, reg_);
        if (!ApplyNodeEvent(w, DistEvent{dist::NodePerform{w.id, a, u}})) {
          return progress;
        }
        ++w.stats.performs;
        ++ow.next;
        progress = true;
      } else if (!ow.drained) {
        if (WalkLocks(w, ow.x, kInvalidAction, &progress)) {
          ow.drained = true;
          progress = true;
        }
      }
    }
    return progress;
  }

  /// Walks blocking locks on x as far as local knowledge allows. Returns
  /// true when no blocker remains for `requester` (kInvalidAction: for
  /// anything but the root). Sets *progress on each applied walk event.
  bool WalkLocks(Worker& w, ObjectId x, ActionId requester, bool* progress) {
    const ActionSummary& t = state_.nodes[w.id].summary;
    for (;;) {
      const auto* entry = state_.nodes[w.id].vmap.EntriesFor(x);
      if (entry == nullptr) return true;
      ActionId blocker = kInvalidAction;
      for (const auto& [b, v] : *entry) {
        if (b != kRootAction &&
            (requester == kInvalidAction ||
             !reg_.IsProperAncestor(b, requester))) {
          blocker = b;
          break;
        }
      }
      if (blocker == kInvalidAction) return true;
      if (LocallyDead(reg_, t, blocker)) {
        if (!ApplyNodeEvent(w,
                            DistEvent{dist::NodeLoseLock{w.id, blocker, x}})) {
          return false;
        }
        ++w.stats.loses;
        *progress = true;
      } else if (t.IsCommitted(blocker)) {
        if (!ApplyNodeEvent(
                w, DistEvent{dist::NodeReleaseLock{w.id, blocker, x}})) {
          return false;
        }
        ++w.stats.releases;
        *progress = true;
      } else {
        return false;  // knowledge not here yet; broadcasts will bring it
      }
    }
  }

  bool LocalDone(const Worker& w) {
    if (w.next_create < w.creates.size()) return false;
    if (w.done_flag.size() < w.aborts.size() + w.commits.size()) {
      return w.aborts.empty() && w.commits.empty() && w.objects.empty();
    }
    for (char f : w.done_flag) {
      if (!f) return false;
    }
    for (const ObjectWork& ow : w.objects) {
      if (ow.next < ow.tickets.size() || !ow.drained) return false;
    }
    return true;
  }

  // ----------------------------------------------------------------
  // Knowledge shipping.

  /// Ships pending knowledge to every peer. Under kDelta only the entries
  /// beyond the per-peer frontier travel — everything that accumulated
  /// since the last flush coalesces into a single message per peer.
  void Flush(Worker& w) {
    const NodeId k = topo_.k();
    const ActionSummary& t = state_.nodes[w.id].summary;
    if (t.empty()) return;
    for (NodeId j = 0; j < k; ++j) {
      if (j == w.id) continue;
      if (options_.propagation == Propagation::kDelta) {
        ActionSummary delta = t.DeltaSince(w.shipped[j]);
        if (delta.empty()) continue;
        w.shipped[j].MergeFrom(delta);
        Transmit(w, j, std::move(delta));
      } else {  // kEager: full summary whenever anything changed
        if (w.shipped_version[j] == w.version) continue;
        w.shipped_version[j] = w.version;
        Transmit(w, j, t);
      }
    }
  }

  void FullBroadcast(Worker& w) {
    const ActionSummary& t = state_.nodes[w.id].summary;
    if (t.empty()) return;
    for (NodeId j = 0; j < topo_.k(); ++j) {
      if (j != w.id) Transmit(w, j, t);
    }
  }

  /// Pushes one transmission through the (possibly chaotic) concurrent
  /// buffer. The Send event itself is applied — and stamped — on the
  /// receiving thread at drain time; a dropped transmission therefore
  /// never becomes an event at all, exactly like the chaos driver's
  /// lost-before-the-buffer semantics.
  void Transmit(Worker& w, NodeId to, ActionSummary payload) {
    // round = -1: the free-running loop has no rounds, so the injector's
    // round-window partition check is disabled; partitions are enforced
    // link-level by the mailbox filter on the logical clock instead. The
    // fixed-draw contract is untouched (draw count never depends on the
    // round).
    faults::FaultInjector::Verdict v =
        w.injector->OnMessage(w.id, to, /*round=*/-1);
    if (v.drop) {
      ++w.stats.dropped_msgs;
      return;
    }
    if (v.duplicate_delay >= 0) {
      ++w.stats.duplicated_msgs;
      if (!mailbox_.Push(
              to, NodeMessage{w.id, payload, std::max(1, v.duplicate_delay)})) {
        ++w.stats.dropped_msgs;  // severed link: the network ate it
      }
    }
    if (!mailbox_.Push(to, NodeMessage{w.id, std::move(payload), v.delay})) {
      ++w.stats.dropped_msgs;
    }
  }

  // ----------------------------------------------------------------

  StatusOr<ParallelRun> Assemble() {
    ParallelRun run;
    run.final_state = std::move(state_);
    std::size_t total = 0;
    for (Worker& w : workers_) {
      run.stats.node_events += w.stats.node_events;
      run.stats.messages += w.stats.messages;
      run.stats.summary_entries += w.stats.summary_entries;
      run.stats.performs += w.stats.performs;
      run.stats.commits += w.stats.commits;
      run.stats.aborts += w.stats.aborts;
      run.stats.releases += w.stats.releases;
      run.stats.loses += w.stats.loses;
      run.stats.retries += w.stats.retries;
      run.stats.crashes += w.stats.crashes;
      run.stats.recovered_nodes += w.stats.recovered_nodes;
      run.stats.timeout_aborts += w.stats.timeout_aborts;
      run.stats.dropped_msgs += w.stats.dropped_msgs;
      run.stats.duplicated_msgs += w.stats.duplicated_msgs;
      run.stats.delayed_msgs += w.stats.delayed_msgs;
      run.stats.rounds = std::max(run.stats.rounds,
                                  static_cast<int>(std::min<std::uint64_t>(
                                      w.passes, 0x7fffffff)));
      if (w.gave_up) run.complete = false;
      total += w.log.size();
    }
    if (options_.record_events) {
      std::vector<std::pair<std::uint64_t, DistEvent>> merged;
      merged.reserve(total);
      for (Worker& w : workers_) {
        std::move(w.log.begin(), w.log.end(), std::back_inserter(merged));
        w.log.clear();
      }
      std::sort(merged.begin(), merged.end(),
                [](const auto& a, const auto& b) { return a.first < b.first; });
      run.events.reserve(merged.size());
      for (auto& [stamp, e] : merged) run.events.push_back(std::move(e));
    }
    return run;
  }

  const DistAlgebra& alg_;
  const dist::Topology& topo_;
  const action::ActionRegistry& reg_;
  const ParallelOptions& options_;
  DistState state_;
  ConcurrentMailbox mailbox_;
  /// Per-node durable retention logs (empty without durable_dir); the
  /// slot for node i is appended to only by i's current thread.
  std::vector<std::unique_ptr<storage::RetentionLog>> retention_logs_;
  /// Const after construction; consulted concurrently by the mailbox's
  /// link filter (PartitionedAtStamp only reads the plan).
  faults::FaultInjector link_check_;
  bool retry_enabled_ = false;
  std::vector<std::vector<ActionId>> children_;
  std::vector<char> dead_;
  std::vector<Worker> workers_;
  std::atomic<std::uint64_t> seq_{0};
  std::atomic<std::uint32_t> done_nodes_{0};
  std::atomic<bool> failed_{false};
  Mutex error_mu_;
  /// The first failure wins; read back single-threaded after join().
  Status first_error_ GUARDED_BY(error_mu_) = Status::Ok();
};

}  // namespace

StatusOr<ParallelRun> RunParallel(const dist::DistAlgebra& alg,
                                  const ParallelOptions& options) {
  ParallelRunner runner(alg, options);
  return runner.Run();
}

StatusOr<valuemap::ValState> ReplayAbstract(
    const dist::DistAlgebra& alg, std::span<const dist::DistEvent> events) {
  valuemap::ValueMapAlgebra val_alg(&alg.registry());
  valuemap::ValState s = val_alg.Initial();
  for (const dist::DistEvent& e : events) {
    std::optional<algebra::LockEvent> image = dist::DistToValueEvent(e);
    if (!image.has_value()) continue;  // send/receive -> Λ
    if (!val_alg.Defined(s, *image)) {
      return Status::Internal(
          "refinement violated: no level-4 image for " + dist::ToString(e));
    }
    val_alg.Apply(s, *image);
  }
  return s;
}

}  // namespace rnt::sim
