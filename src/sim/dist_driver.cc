#include "sim/dist_driver.h"

#include <vector>

#include "sim/diagnosis.h"

namespace rnt::sim {

namespace {

using dist::DistAlgebra;
using dist::DistEvent;
using dist::DistState;

/// Scheduler for one RunProgram execution.
///
/// The schedule is a depth-first traversal of the universal action tree:
/// an inner action is created on first visit, its children are processed
/// left-to-right, and it commits (or aborts, for abort_set members) after
/// its subtree completes; accesses are created and performed in place.
/// Because every subtree to the "left" of the current access has fully
/// committed, any lock standing in the way can always be walked up (via
/// release-lock events) to an ancestor of the requester — the schedule is
/// deadlock-free by construction, making message counts well-defined for
/// experiment E5. (Concurrent schedules with deadlock handling live in
/// the engine, not here; this driver exercises the *distributed algebra*.)
class Driver {
 public:
  Driver(const DistAlgebra& alg, const DriverOptions& options)
      : alg_(alg),
        topo_(alg.topology()),
        reg_(alg.registry()),
        options_(options),
        state_(alg.Initial()),
        children_(reg_.size()) {
    for (ActionId a = 1; a < reg_.size(); ++a) {
      children_[reg_.Parent(a)].push_back(a);
    }
    if (options_.propagation == Propagation::kDelta) {
      shipped_.resize(topo_.k(),
                      std::vector<dist::ActionSummary>(topo_.k()));
    }
  }

  StatusOr<DriverRun> Run() {
    for (ActionId a : options_.abort_set) {
      if (!reg_.Valid(a) || reg_.IsAccess(a) || a == kRootAction) {
        return Status::InvalidArgument(
            "abort_set must contain registered non-access actions");
      }
    }
    for (ActionId top : children_[kRootAction]) {
      RNT_RETURN_IF_ERROR(Visit(top));
    }
    // Final drain: walk remaining locks up to the root U everywhere.
    for (NodeId i = 0; i < topo_.k(); ++i) {
      for (ObjectId x : state_.nodes[i].vmap.TouchedObjects()) {
        RNT_RETURN_IF_ERROR(DrainToRoot(i, x));
      }
    }
    return DriverRun{stats_, std::move(state_)};
  }

 private:
  Status Fail(const char* what, ActionId a) {
    std::string msg = std::string("dist driver: ") + what + " for action " +
                      std::to_string(a);
    StallDiagnosis diag = DiagnoseStalls(alg_, state_);
    if (!diag.empty()) {
      msg += "; stalled actions:\n" + diag.ToString();
    }
    return Status::FailedPrecondition(std::move(msg));
  }

  /// Ships node i's knowledge to j (one message): the full summary under
  /// kLazy/kEager, or only the entries new since the last send to j under
  /// kDelta (per-peer frontier). The payload is moved, not copied, on its
  /// second hop into the buffer.
  void Sync(NodeId i, NodeId j) {
    if (i == j || state_.nodes[i].summary.empty()) return;
    dist::ActionSummary payload;
    if (options_.propagation == Propagation::kDelta) {
      payload = state_.nodes[i].summary.DeltaSince(shipped_[i][j]);
      if (payload.empty()) return;  // j was already shipped all of i.T
      shipped_[i][j].MergeFrom(payload);
    } else {
      payload = state_.nodes[i].summary;
    }
    stats_.summary_entries += payload.size();
    DistEvent send{dist::Send{i, j, std::move(payload)}};
    if (alg_.Defined(state_, send)) {
      alg_.Apply(state_, std::move(send));
      DistEvent recv{dist::Receive{j, state_.buffer[j]}};
      if (alg_.Defined(state_, recv)) alg_.Apply(state_, std::move(recv));
      ++stats_.messages;
    }
  }

  void Broadcast(NodeId i) {
    for (NodeId j = 0; j < topo_.k(); ++j) Sync(i, j);
  }

  bool ApplyNodeEvent(const DistEvent& e) {
    if (!alg_.Defined(state_, e)) return false;
    alg_.Apply(state_, e);
    ++stats_.node_events;
    if (options_.propagation == Propagation::kEager) {
      NodeId doer = alg_.Doer(e);
      if (doer < topo_.k()) Broadcast(doer);
    }
    return true;
  }

  /// Depth-first execution of the subtree rooted at `a`.
  Status Visit(ActionId a) {
    // Create at the origin, ferrying parent knowledge if missing.
    NodeId origin = topo_.Origin(a);
    ActionId p = reg_.Parent(a);
    if (p != kRootAction && !state_.nodes[origin].summary.Contains(p)) {
      Sync(topo_.Origin(p), origin);
    }
    if (!ApplyNodeEvent(DistEvent{dist::NodeCreate{origin, a}})) {
      return Fail("create blocked", a);
    }
    created_at_[a] = origin;

    if (reg_.IsAccess(a)) {
      return Perform(a);
    }

    if (options_.abort_set.count(a)) {
      // Abort at the home node; the subtree is never started.
      NodeId home = topo_.HomeOfAction(a);
      if (!state_.nodes[home].summary.Contains(a)) Sync(origin, home);
      if (!ApplyNodeEvent(DistEvent{dist::NodeAbort{home, a}})) {
        return Fail("abort blocked", a);
      }
      aborted_.insert(a);
      ++stats_.aborts;
      return Status::Ok();
    }

    for (ActionId c : children_[a]) {
      RNT_RETURN_IF_ERROR(Visit(c));
    }

    // Commit at the home node: it must know of a and of every child's
    // completion.
    NodeId home = topo_.HomeOfAction(a);
    if (!state_.nodes[home].summary.Contains(a)) Sync(origin, home);
    for (ActionId c : children_[a]) {
      if (state_.nodes[home].summary.IsActive(c)) {
        Sync(StatusAuthority(c), home);
      }
    }
    if (!ApplyNodeEvent(DistEvent{dist::NodeCommit{home, a}})) {
      return Fail("commit blocked", a);
    }
    ++stats_.commits;
    return Status::Ok();
  }

  /// The node that knows an action's final status: its home (where
  /// perform/commit/abort happen).
  NodeId StatusAuthority(ActionId a) const { return topo_.HomeOfAction(a); }

  /// The aborted ancestor (or self) of a dead action, if any.
  ActionId AbortedAncestor(ActionId a) const {
    for (ActionId c : reg_.AncestorChain(a)) {
      if (c != kRootAction && aborted_.count(c)) return c;
    }
    return kInvalidAction;
  }

  /// Walks blocking locks on x upward (release) or away (lose) until the
  /// requester `a` could acquire; every holder's relevant ancestors are
  /// already committed by the DFS discipline, so this terminates.
  Status UnblockLocks(NodeId i, ObjectId x, ActionId a) {
    for (int guard = 0; guard < options_.max_rounds; ++guard) {
      const auto* entry = state_.nodes[i].vmap.EntriesFor(x);
      if (entry == nullptr) return Status::Ok();
      ActionId blocker = kInvalidAction;
      for (const auto& [b, v] : *entry) {
        if (b != kRootAction &&
            (a == kInvalidAction || !reg_.IsProperAncestor(b, a))) {
          blocker = b;
          break;
        }
      }
      if (blocker == kInvalidAction) return Status::Ok();
      ActionId dead = AbortedAncestor(blocker);
      if (dead != kInvalidAction) {
        if (!state_.nodes[i].summary.IsAborted(dead)) {
          Sync(StatusAuthority(dead), i);
        }
        if (!ApplyNodeEvent(DistEvent{dist::NodeLoseLock{i, blocker, x}})) {
          return Fail("lose-lock blocked", blocker);
        }
        ++stats_.loses;
      } else {
        if (!state_.nodes[i].summary.IsCommitted(blocker)) {
          Sync(StatusAuthority(blocker), i);
        }
        if (!ApplyNodeEvent(
                DistEvent{dist::NodeReleaseLock{i, blocker, x}})) {
          return Fail("release-lock blocked", blocker);
        }
        ++stats_.releases;
      }
    }
    return Fail("lock walk did not terminate", a);
  }

  Status Perform(ActionId a) {
    ObjectId x = reg_.Object(a);
    NodeId i = topo_.HomeOfObject(x);
    if (!state_.nodes[i].summary.Contains(a)) {
      Sync(created_at_.at(a), i);
    }
    RNT_RETURN_IF_ERROR(UnblockLocks(i, x, a));
    Value u = state_.nodes[i].vmap.PrincipalValue(x, reg_);
    if (!ApplyNodeEvent(DistEvent{dist::NodePerform{i, a, u}})) {
      return Fail("perform blocked", a);
    }
    ++stats_.performs;
    return Status::Ok();
  }

  /// Final drain of an object's locks all the way to the root U.
  Status DrainToRoot(NodeId i, ObjectId x) {
    return UnblockLocks(i, x, kInvalidAction);
  }

  const DistAlgebra& alg_;
  const dist::Topology& topo_;
  const action::ActionRegistry& reg_;
  const DriverOptions& options_;
  DistState state_;
  std::vector<std::vector<ActionId>> children_;
  /// kDelta only: shipped_[i][j] = everything i has already sent to j.
  std::vector<std::vector<dist::ActionSummary>> shipped_;
  std::map<ActionId, NodeId> created_at_;
  std::set<ActionId> aborted_;
  DriverStats stats_;
};

}  // namespace

StatusOr<DriverRun> RunProgram(const DistAlgebra& alg,
                               const DriverOptions& options) {
  Driver driver(alg, options);
  return driver.Run();
}

}  // namespace rnt::sim
