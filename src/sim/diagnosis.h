#ifndef RNT_SIM_DIAGNOSIS_H_
#define RNT_SIM_DIAGNOSIS_H_

#include <string>
#include <vector>

#include "dist/dist_algebra.h"

namespace rnt::sim {

/// One live action that a stalled run is still waiting on: where its next
/// event must run and what stands in the way. Produced when a driver
/// gives up (max_rounds exhausted, or a chaos run degrades under a
/// partition) so the failure mode is inspectable instead of a bare
/// status code.
struct StalledAction {
  ActionId action = kInvalidAction;
  bool is_access = false;
  /// The node where the action's next event (perform/commit) must run.
  NodeId home = 0;
  /// Accesses only: the object whose lock chain blocks the perform.
  ObjectId object = 0;
  /// The lock holder (accesses) or active child (inner actions) being
  /// waited on; kInvalidAction when the action is ready but its event
  /// never ran (lost knowledge, down node).
  ActionId waiting_on = kInvalidAction;
  std::string detail;
};

struct StallDiagnosis {
  std::vector<StalledAction> stalled;

  bool empty() const { return stalled.empty(); }
  std::string ToString() const;
};

/// Surveys a ℬ state for live actions (created somewhere, not known done
/// anywhere) and reports what each is waiting on: accesses name the lock
/// holder blocking them at their object's home; inner actions name their
/// first unfinished child, or report themselves ready to commit. Used by
/// sim::RunProgram to annotate max_rounds exhaustion and by the chaos
/// driver for partial-run diagnoses.
StallDiagnosis DiagnoseStalls(const dist::DistAlgebra& alg,
                              const dist::DistState& s);

}  // namespace rnt::sim

#endif  // RNT_SIM_DIAGNOSIS_H_
