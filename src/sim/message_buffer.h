#ifndef RNT_SIM_MESSAGE_BUFFER_H_
#define RNT_SIM_MESSAGE_BUFFER_H_

#include <algorithm>
#include <atomic>
#include <functional>
#include <utility>
#include <vector>

#include "common/types.h"
#include "dist/summary.h"

namespace rnt::sim {

/// One in-flight transmission toward the owning destination node.
struct NodeMessage {
  NodeId from = 0;
  dist::ActionSummary summary;
  /// Receiver-side holds before delivery (fault injection: a positive
  /// value delays the message past `delay` drain passes; distinct delays
  /// reorder messages).
  int delay = 0;
};

/// The concurrent message buffer of the parallel runner: one MPSC queue
/// per destination node. Producers push with a lock-free CAS loop
/// (Treiber list — no mutex anywhere on the path); the single consumer
/// for a destination detaches the whole list with one exchange and
/// reverses it to recover FIFO order. Slots are cache-line separated so
/// concurrent senders to different destinations never contend.
///
/// Two resilience features ride on the same slots:
///  * A per-destination *durable retention buffer* — the monotone M_i of
///    the paper's §9.1 recovery argument ("all information ever sent
///    toward node i"). The owner thread merges every drained payload and
///    every WAL self-append into it via Retain; a crash may wipe the
///    node's volatile ActionSummary, but the retention summary survives
///    and a reborn node recovers with one legal Receive(i, Retained(i)).
///    Single-writer discipline: only node i's (current) thread calls
///    Retain(i, ...); crash/rebirth hand-offs are sequenced by the
///    supervisor's thread join, so no lock is needed.
///  * A *link-level partition filter*: when set, Push consults it with
///    (from, to) and silently refuses transmissions across a severed
///    link — the network drops them; retention is untouched because the
///    payload never reached the destination's durable log.
class ConcurrentMailbox {
 public:
  using LinkFilter = std::function<bool(NodeId from, NodeId to)>;

  explicit ConcurrentMailbox(NodeId k) : slots_(k) {}

  ~ConcurrentMailbox() {
    for (Slot& s : slots_) {
      Node* n = s.head.exchange(nullptr, std::memory_order_acquire);
      while (n != nullptr) {
        Node* next = n->next;
        delete n;  // rnt-lint: allow(owning-new) — Treiber list owns nodes
        n = next;
      }
    }
  }

  ConcurrentMailbox(const ConcurrentMailbox&) = delete;
  ConcurrentMailbox& operator=(const ConcurrentMailbox&) = delete;

  /// Installs the partition filter. Must be called before any producer
  /// thread starts (the filter object itself is read concurrently but
  /// never mutated afterwards).
  void SetLinkFilter(LinkFilter filter) { filter_ = std::move(filter); }

  /// Lock-free multi-producer push toward `to`. Returns false when the
  /// link filter severed the (msg.from, to) link — the transmission is
  /// dropped by the network and never enqueued.
  bool Push(NodeId to, NodeMessage msg) {
    if (filter_ && msg.from != to && filter_(msg.from, to)) return false;
    // Raw node ownership is inherent to the lock-free CAS handoff: a
    // unique_ptr cannot express "owned by whichever thread wins the
    // exchange". Every path below provably frees (Drain/dtor).
    Node* n = new Node{std::move(msg), nullptr};  // rnt-lint: allow(owning-new)
    std::atomic<Node*>& head = slots_[to].head;
    n->next = head.load(std::memory_order_relaxed);
    while (!head.compare_exchange_weak(n->next, n, std::memory_order_release,
                                       std::memory_order_relaxed)) {
    }
    return true;
  }

  /// Detaches and returns every pending message for `to`, oldest first.
  /// Must only be called by node `to`'s thread (single consumer).
  std::vector<NodeMessage> Drain(NodeId to) {
    Node* n = slots_[to].head.exchange(nullptr, std::memory_order_acquire);
    std::vector<NodeMessage> out;
    while (n != nullptr) {  // reverse the LIFO list into arrival order
      out.push_back(std::move(n->msg));
      Node* next = n->next;
      delete n;  // rnt-lint: allow(owning-new) — Treiber list owns nodes
      n = next;
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  /// True when no message is pending for `to` (racy by nature; used only
  /// as a fast-path hint to skip an empty Drain).
  bool Empty(NodeId to) const {
    return slots_[to].head.load(std::memory_order_acquire) == nullptr;
  }

  /// Merges `payload` into destination `to`'s durable retention buffer
  /// M_to. Owner-thread only (see class comment).
  void Retain(NodeId to, const dist::ActionSummary& payload) {
    slots_[to].retained.MergeFrom(payload);
  }

  /// The durable M_to: everything ever retained toward `to`. Readable by
  /// the owner thread, or by the supervisor after joining it.
  const dist::ActionSummary& Retained(NodeId to) const {
    return slots_[to].retained;
  }

 private:
  struct Node {
    NodeMessage msg;
    Node* next;
  };
  struct alignas(64) Slot {
    std::atomic<Node*> head{nullptr};
    /// Durable retention summary M_i (single-writer: the owner thread).
    dist::ActionSummary retained;
  };
  std::vector<Slot> slots_;
  LinkFilter filter_;
};

}  // namespace rnt::sim

#endif  // RNT_SIM_MESSAGE_BUFFER_H_
