#ifndef RNT_SIM_MESSAGE_BUFFER_H_
#define RNT_SIM_MESSAGE_BUFFER_H_

#include <algorithm>
#include <atomic>
#include <utility>
#include <vector>

#include "common/types.h"
#include "dist/summary.h"

namespace rnt::sim {

/// One in-flight transmission toward the owning destination node.
struct NodeMessage {
  NodeId from = 0;
  dist::ActionSummary summary;
  /// Receiver-side holds before delivery (fault injection: a positive
  /// value delays the message past `delay` drain passes; distinct delays
  /// reorder messages).
  int delay = 0;
};

/// The concurrent message buffer of the parallel runner: one MPSC queue
/// per destination node. Producers push with a lock-free CAS loop
/// (Treiber list — no mutex anywhere on the path); the single consumer
/// for a destination detaches the whole list with one exchange and
/// reverses it to recover FIFO order. Slots are cache-line separated so
/// concurrent senders to different destinations never contend.
class ConcurrentMailbox {
 public:
  explicit ConcurrentMailbox(NodeId k) : slots_(k) {}

  ~ConcurrentMailbox() {
    for (Slot& s : slots_) {
      Node* n = s.head.exchange(nullptr, std::memory_order_acquire);
      while (n != nullptr) {
        Node* next = n->next;
        delete n;  // rnt-lint: allow(owning-new) — Treiber list owns nodes
        n = next;
      }
    }
  }

  ConcurrentMailbox(const ConcurrentMailbox&) = delete;
  ConcurrentMailbox& operator=(const ConcurrentMailbox&) = delete;

  /// Lock-free multi-producer push toward `to`.
  void Push(NodeId to, NodeMessage msg) {
    // Raw node ownership is inherent to the lock-free CAS handoff: a
    // unique_ptr cannot express "owned by whichever thread wins the
    // exchange". Every path below provably frees (Drain/dtor).
    Node* n = new Node{std::move(msg), nullptr};  // rnt-lint: allow(owning-new)
    std::atomic<Node*>& head = slots_[to].head;
    n->next = head.load(std::memory_order_relaxed);
    while (!head.compare_exchange_weak(n->next, n, std::memory_order_release,
                                       std::memory_order_relaxed)) {
    }
  }

  /// Detaches and returns every pending message for `to`, oldest first.
  /// Must only be called by node `to`'s thread (single consumer).
  std::vector<NodeMessage> Drain(NodeId to) {
    Node* n = slots_[to].head.exchange(nullptr, std::memory_order_acquire);
    std::vector<NodeMessage> out;
    while (n != nullptr) {  // reverse the LIFO list into arrival order
      out.push_back(std::move(n->msg));
      Node* next = n->next;
      delete n;  // rnt-lint: allow(owning-new) — Treiber list owns nodes
      n = next;
    }
    std::reverse(out.begin(), out.end());
    return out;
  }

  /// True when no message is pending for `to` (racy by nature; used only
  /// as a fast-path hint to skip an empty Drain).
  bool Empty(NodeId to) const {
    return slots_[to].head.load(std::memory_order_acquire) == nullptr;
  }

 private:
  struct Node {
    NodeMessage msg;
    Node* next;
  };
  struct alignas(64) Slot {
    std::atomic<Node*> head{nullptr};
  };
  std::vector<Slot> slots_;
};

}  // namespace rnt::sim

#endif  // RNT_SIM_MESSAGE_BUFFER_H_
