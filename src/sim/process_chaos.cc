#include "sim/process_chaos.h"

#include <atomic>
#include <csignal>
#include <memory>
#include <thread>

#include <sys/wait.h>
#include <unistd.h>

#include "action/update.h"
#include "common/random.h"
#include "storage/durable_engine.h"
#include "storage/file_io.h"

namespace rnt::sim {

namespace {

constexpr char kAckFile[] = "acks";

/// One worker thread's share of the workload. `committed` is the global
/// durable-commit counter the crash trigger watches.
void WorkerLoop(storage::DurableEngine* engine,
                const DurableWorkloadOptions& options, int thread_index,
                int ack_fd, std::atomic<std::int64_t>* committed) {
  Rng rng(options.seed * 7919 + static_cast<std::uint64_t>(thread_index));
  const ObjectId marker =
      options.marker_base + static_cast<ObjectId>(thread_index);
  const unsigned char ack_byte = static_cast<unsigned char>(thread_index);
  for (int op = 0; op < options.ops_per_thread; ++op) {
    auto txn = engine->Begin();
    if (!txn->Apply(marker, action::Update::Add(1)).ok()) continue;
    if (rng.Chance(0.6)) {
      auto child = txn->BeginChild();
      if (!child.ok()) continue;
      const ObjectId shared = static_cast<ObjectId>(
          rng.Below(options.shared_objects == 0 ? 1 : options.shared_objects));
      if (!(*child)->Apply(shared, action::Update::Add(1)).ok()) continue;
      // A quarter of the subtransactions abort: recovery must see child
      // aborts inside otherwise-committed trees.
      if (rng.Chance(0.25)) {
        (void)(*child)->Abort();
      } else if (!(*child)->Commit().ok()) {
        continue;
      }
    }
    if (!txn->Commit().ok()) continue;  // only OK == durable counts
    const std::int64_t done = committed->fetch_add(1) + 1;
    if (options.crash.Enabled() && done >= options.crash.after_ops) {
      // Die exactly as kill -9 from outside would have us die: no
      // acknowledgment, no flush, no destructors.
      (void)::raise(SIGKILL);
    }
    // Ack strictly after durability: a one-byte O_APPEND write is atomic.
    (void)::write(ack_fd, &ack_byte, 1);
  }
}

}  // namespace

Status RunDurableWorkload(const DurableWorkloadOptions& options) {
  if (options.threads < 1 || options.threads > 255) {
    return Status::InvalidArgument("threads must be in [1, 255]");
  }
  storage::DurableEngineOptions engine_options;
  engine_options.fsync = options.fsync;
  engine_options.group_commit_interval = std::chrono::milliseconds(1);
  auto engine = storage::DurableEngine::Open(options.dir, engine_options);
  RNT_RETURN_IF_ERROR(engine.status());

  RNT_ASSIGN_OR_RETURN(
      int ack_fd,
      storage::OpenForAppend(options.dir + "/" + kAckFile,
                             /*truncate=*/false));
  if (options.crash.Enabled()) {
    // The lingerer: one nested tree, durably logged (begin/perform
    // records barriered to disk) and then held open until the kill.
    // Workers spend almost all their time parked in the group-commit
    // barrier with their commit records already flushed, so without
    // this the kill would usually land on a quiesced WAL; the lingerer
    // guarantees every crash leaves a real in-flight tree for restart
    // recovery to roll back (undone_txns >= 2, deterministically).
    std::thread([engine = engine->get(), &options] {
      auto txn = engine->Begin();
      (void)txn->Apply(options.marker_base - 2, action::Update::Add(1));
      auto child = txn->BeginChild();
      if (child.ok()) {
        (void)(*child)->Apply(options.marker_base - 1,
                              action::Update::Add(1));
      }
      (void)engine->wal_health();  // flush the open tree's records
      // Hold the tree open: no commit, no abort, no destructors — the
      // scheduled SIGKILL is the only way out (the crash trigger is
      // guaranteed to fire: it is below the workers' total op budget).
      // The sleep is a pure liveness hold in a process that only ever
      // dies by SIGKILL; it can never change a recorded outcome.
      for (;;) {
        std::this_thread::sleep_for(  // rnt-lint: allow(wall-clock-wait)
            std::chrono::seconds(1));
      }
    }).detach();
  }
  std::atomic<std::int64_t> committed{0};
  std::vector<std::thread> threads;
  threads.reserve(static_cast<std::size_t>(options.threads));
  for (int t = 0; t < options.threads; ++t) {
    threads.emplace_back(WorkerLoop, engine->get(), std::cref(options), t,
                         ack_fd, &committed);
  }
  for (auto& th : threads) th.join();
  (void)::close(ack_fd);
  // Surface a sticky WAL I/O error as the workload's verdict.
  return (*engine)->wal_health();
}

StatusOr<int> RunInChild(const std::function<void()>& body) {
  const pid_t pid = ::fork();
  if (pid < 0) return Status::Internal("fork failed");
  if (pid == 0) {
    body();
    ::_exit(0);  // no atexit handlers: the parent owns the test state
  }
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) {
    return Status::Internal("waitpid failed");
  }
  if (WIFSIGNALED(wstatus)) return WTERMSIG(wstatus);
  return 0;
}

StatusOr<std::vector<std::uint64_t>> ReadAcks(const std::string& dir,
                                              int threads) {
  std::vector<std::uint64_t> acked(static_cast<std::size_t>(threads), 0);
  auto bytes = storage::ReadFileBytes(dir + "/" + kAckFile);
  if (!bytes.ok()) {
    if (bytes.status().code() == StatusCode::kNotFound) return acked;
    return bytes.status();
  }
  for (char c : *bytes) {
    const auto t = static_cast<std::size_t>(static_cast<unsigned char>(c));
    if (t >= acked.size()) {
      return Status::DataLoss("acks file holds byte for unknown thread " +
                              std::to_string(t));
    }
    ++acked[t];
  }
  return acked;
}

StatusOr<KillRecoverReport> RunKillRecoverCycle(
    const DurableWorkloadOptions& options) {
  KillRecoverReport report;
  const pid_t pid = ::fork();
  if (pid < 0) return Status::Internal("fork failed");
  if (pid == 0) {
    const Status s = RunDurableWorkload(options);
    ::_exit(s.ok() ? 0 : 17);
  }
  int wstatus = 0;
  if (::waitpid(pid, &wstatus, 0) != pid) {
    return Status::Internal("waitpid failed");
  }
  if (WIFSIGNALED(wstatus)) {
    report.killed = WTERMSIG(wstatus) == SIGKILL;
    if (!report.killed) {
      return Status::Internal("child died by unexpected signal " +
                              std::to_string(WTERMSIG(wstatus)));
    }
  } else {
    report.exit_code = WEXITSTATUS(wstatus);
    if (report.exit_code != 0) {
      return Status::Internal("child workload failed with exit code " +
                              std::to_string(report.exit_code));
    }
  }
  if (options.crash.Enabled() && !report.killed) {
    return Status::Internal(
        "crash was scheduled but the child exited cleanly");
  }

  RNT_ASSIGN_OR_RETURN(report.acked, ReadAcks(options.dir, options.threads));

  // Restart recovery, through the real Open sequence (recover, fresh
  // snapshot, WAL reset) so consecutive cycles compound on one directory.
  storage::DurableEngineOptions engine_options;
  engine_options.fsync = options.fsync;
  auto engine = storage::DurableEngine::Open(options.dir, engine_options);
  RNT_RETURN_IF_ERROR(engine.status());
  report.recovery = (*engine)->recovery();
  return report;
}

}  // namespace rnt::sim
