#include "sim/chaos_driver.h"

#include <algorithm>
#include <map>
#include <span>
#include <string>
#include <utility>
#include <vector>

#include "sim/parallel_runner.h"

namespace rnt::sim {

namespace {

using dist::ActionSummary;
using dist::DistAlgebra;
using dist::DistEvent;

/// Round-based fault-aware scheduler. The execution plan is the same
/// depth-first traversal as RunProgram's, but run as an explicit frame
/// stack so that a step can *stall* — return control to the scheduler,
/// wait out a backoff interval while the network delivers (or loses)
/// messages and nodes crash and recover, and then retry. Every event it
/// applies is a legal ℬ event; faults only shape which legal events get
/// offered and when.
class ChaosDriver {
 public:
  ChaosDriver(const DistAlgebra& alg, const ChaosOptions& options)
      : alg_(alg),
        topo_(alg.topology()),
        reg_(alg.registry()),
        options_(options),
        injector_(options.plan),
        state_(alg.Initial()),
        val_alg_(&alg.registry()),
        val_state_(val_alg_.Initial()),
        children_(reg_.size()) {
    for (ActionId a = 1; a < reg_.size(); ++a) {
      children_[reg_.Parent(a)].push_back(a);
    }
  }

  StatusOr<ChaosRun> Run() {
    RNT_RETURN_IF_ERROR(faults::ValidatePlan(options_.plan, topo_.k()));
    for (ActionId a : options_.abort_set) {
      if (!reg_.Valid(a) || reg_.IsAccess(a) || a == kRootAction) {
        return Status::InvalidArgument(
            "abort_set must contain registered non-access actions");
      }
    }
    while (mode_ != Mode::kDone) {
      if (round_ >= options_.max_rounds) {
        complete_ = false;
        break;
      }
      StartRound();
      if (round_ >= next_attempt_round_) {
        RNT_RETURN_IF_ERROR(StepOnce());
      }
      if (options_.check_invariants) {
        RNT_RETURN_IF_ERROR(CheckInvariants());
      }
      ++round_;
    }
    stats_.rounds = round_;
    StallDiagnosis stalls;
    if (!complete_) stalls = DiagnoseStalls(alg_, state_);
    return ChaosRun{stats_,           std::move(state_),
                    std::move(val_state_), std::move(events_),
                    complete_,       std::move(stalls)};
  }

 private:
  enum class Mode { kExec, kDrain, kDone };

  struct Frame {
    ActionId a = kInvalidAction;
    enum class Stage { kCreate, kStaticAbort, kChildren, kCommit, kPerform };
    Stage stage = Stage::kCreate;
    std::size_t next_child = 0;
    bool created = false;
  };

  struct Delivery {
    NodeId to = 0;
    ActionSummary summary;
  };

  struct DrainTask {
    NodeId node = 0;
    ObjectId object = 0;
  };

  bool Down(NodeId i) const {
    auto it = down_until_.find(i);
    return it != down_until_.end() && it->second > round_;
  }

  /// Crash wipes, rebirths, and due message deliveries for this round.
  void StartRound() {
    // Rebirths first: a node due back up replays its durable buffer M_i —
    // "all information ever sent toward i", which the WAL discipline
    // keeps a superset of everything the node ever knew.
    for (const auto& [node, until] : down_until_) {
      if (until != round_) continue;
      DistEvent recv{dist::Receive{node, state_.buffer[node]}};
      if (!state_.buffer[node].empty() && alg_.Defined(state_, recv)) {
        alg_.Apply(state_, recv);
        events_.push_back(std::move(recv));
      }
      ++stats_.recovered_nodes;
    }
    // Crashes scheduled for this round wipe volatile summaries; the value
    // map (the durable lock table for objects homed here) survives.
    for (const faults::CrashSpec& c : options_.plan.crashes) {
      if (c.round != round_) continue;
      state_.nodes[c.node].summary = ActionSummary{};
      ++stats_.crashes;
      int until = round_ + std::max(1, c.down_for);
      int& slot = down_until_[c.node];
      slot = std::max(slot, until);
    }
    // Deliveries due this round; a down destination postpones its mail to
    // the rebirth round (the network keeps trying, it does not lose the
    // message to the crash — M_j already holds it anyway).
    std::vector<Delivery> due;
    auto end = pending_.upper_bound(round_);
    for (auto it = pending_.begin(); it != end; ++it) {
      due.push_back(std::move(it->second));
    }
    pending_.erase(pending_.begin(), end);
    for (Delivery& d : due) {
      if (Down(d.to)) {
        pending_.emplace(down_until_[d.to], std::move(d));
        continue;
      }
      DistEvent recv{dist::Receive{d.to, std::move(d.summary)}};
      if (alg_.Defined(state_, recv)) {
        alg_.Apply(state_, recv);
        events_.push_back(std::move(recv));
      }
    }
  }

  Status CheckInvariants() {
    std::set<NodeId> down;
    for (const auto& [node, until] : down_until_) {
      if (until > round_) down.insert(node);
    }
    return dist::CheckLocalConsistency(alg_, state_, val_state_, &down);
  }

  /// Applies one node event: checks it is defined at level 5 *and* that
  /// its image is defined at level 4 (the refinement obligation — a
  /// violation under fire is a bug worth an error, not a retry), applies
  /// both, logs it, and WAL-logs summary changes via a self-send so the
  /// buffer M_i stays a superset of node i's volatile knowledge.
  Status ApplyNodeEvent(const DistEvent& e) {
    if (!alg_.Defined(state_, e)) {
      return Status::Internal("chaos driver: event unexpectedly undefined: " +
                              dist::ToString(e));
    }
    std::optional<algebra::LockEvent> image = dist::DistToValueEvent(e);
    if (image.has_value() && !val_alg_.Defined(val_state_, *image)) {
      return Status::Internal(
          "chaos driver: refinement violated, no level-4 image for " +
          dist::ToString(e));
    }
    alg_.Apply(state_, e);
    if (image.has_value()) val_alg_.Apply(val_state_, *image);
    events_.push_back(e);
    ++stats_.node_events;
    bool changes_summary =
        std::holds_alternative<dist::NodeCreate>(e) ||
        std::holds_alternative<dist::NodeCommit>(e) ||
        std::holds_alternative<dist::NodeAbort>(e) ||
        std::holds_alternative<dist::NodePerform>(e);
    if (changes_summary) {
      NodeId doer = alg_.Doer(e);
      DistEvent wal{dist::Send{doer, doer, state_.nodes[doer].summary}};
      if (alg_.Defined(state_, wal)) {
        alg_.Apply(state_, wal);
        events_.push_back(std::move(wal));
      }
    }
    return Status::Ok();
  }

  /// Ships node `from`'s summary toward `to` through the chaotic network.
  /// The Send (merge into M_to) happens unless the injector drops the
  /// transmission; the matching Receive is delivered now, later, or twice
  /// per the verdict.
  void Transmit(NodeId from, NodeId to) {
    if (from == to) return;
    const ActionSummary& summary = state_.nodes[from].summary;
    if (summary.empty()) return;
    faults::FaultInjector::Verdict v = injector_.OnMessage(from, to, round_);
    if (v.drop) {
      ++stats_.dropped_msgs;
      return;
    }
    DistEvent send{dist::Send{from, to, summary}};
    alg_.Apply(state_, send);  // always defined: full summary <= own summary
    events_.push_back(std::move(send));
    ++stats_.messages;
    stats_.summary_entries += summary.size();
    if (v.delay == 0 && !Down(to)) {
      DistEvent recv{dist::Receive{to, summary}};
      alg_.Apply(state_, recv);  // defined: just merged into M_to
      events_.push_back(std::move(recv));
    } else {
      ++stats_.delayed_msgs;
      pending_.emplace(round_ + std::max(1, v.delay), Delivery{to, summary});
    }
    if (v.duplicate_delay >= 0) {
      ++stats_.duplicated_msgs;
      pending_.emplace(round_ + std::max(1, v.duplicate_delay),
                       Delivery{to, summary});
    }
  }

  /// Finds a live node that can teach `to` about `a` (existence, or its
  /// final status when `need_done`) and transmits from it. Returns false
  /// when no live node has the knowledge — the stall must simply wait.
  bool RequestKnowledge(ActionId a, NodeId to, bool need_done) {
    auto has = [&](NodeId i) {
      if (i == to || Down(i)) return false;
      const ActionSummary& t = state_.nodes[i].summary;
      return need_done ? t.IsDone(a) : t.Contains(a);
    };
    NodeId home = topo_.HomeOfAction(a);
    NodeId source = topo_.k();
    if (has(home)) {
      source = home;
    } else {
      for (NodeId i = 0; i < topo_.k(); ++i) {
        if (has(i)) {
          source = i;
          break;
        }
      }
    }
    if (source >= topo_.k()) return false;
    Transmit(source, to);
    return true;
  }

  void ResetBackoff() {
    attempts_ = 0;
    next_attempt_round_ = 0;
    pending_blocker_ = kInvalidAction;
  }

  /// Records an unproductive attempt: backs off exponentially, and past
  /// max_attempts_per_step escalates to timeout handling. `blocker` names
  /// the lock holder being waited on, when the stall is a lock wait.
  Status Stalled(ActionId blocker) {
    pending_blocker_ = blocker;
    if (attempts_ >= options_.max_attempts_per_step) return HandleTimeout();
    if (attempts_ > 0) ++stats_.retries;
    ++attempts_;
    int shift = std::min(attempts_ - 1, 5);
    int backoff = std::max(1, options_.backoff_base) << shift;
    backoff = std::min(backoff, std::max(1, options_.backoff_cap));
    next_attempt_round_ = round_ + backoff;
    return Status::Ok();
  }

  /// Timeout-aborts the deepest abortable ancestor of a *stuck* lock
  /// holder (one that will never commit because its subtree was abandoned)
  /// — the dynamic lose-lock path. Skips ancestors of `requester` so a
  /// blocked step never shoots down its own transaction from here.
  StatusOr<bool> TryAbortStuckAncestor(ActionId blocker, ActionId requester) {
    for (ActionId c : reg_.AncestorChain(blocker)) {
      if (c == kRootAction || reg_.IsAccess(c)) continue;
      if (requester != kInvalidAction && reg_.IsAncestor(c, requester)) {
        continue;
      }
      NodeId home = topo_.HomeOfAction(c);
      if (Down(home) || !state_.nodes[home].summary.IsActive(c)) continue;
      RNT_RETURN_IF_ERROR(ApplyNodeEvent(DistEvent{dist::NodeAbort{home, c}}));
      aborted_.insert(c);
      ++stats_.timeout_aborts;
      return true;
    }
    return false;
  }

  /// A step exhausted its attempts. Remedies, in order: abort the stuck
  /// lock holder's subtransaction (frees the lock via lose-lock); abort
  /// the deepest abortable subtransaction on the requester's own path
  /// (its subtree becomes orphaned); failing both, abandon the subtree —
  /// graceful degradation, the rest of the program still runs.
  Status HandleTimeout() {
    ActionId requester = kInvalidAction;
    if (mode_ == Mode::kExec && !stack_.empty()) requester = stack_.back().a;
    if (pending_blocker_ != kInvalidAction) {
      StatusOr<bool> aborted =
          TryAbortStuckAncestor(pending_blocker_, requester);
      RNT_RETURN_IF_ERROR(aborted.status());
      if (*aborted) {
        ResetBackoff();
        return Status::Ok();
      }
    }
    if (mode_ == Mode::kDrain) {
      complete_ = false;
      ++drain_idx_;
      ResetBackoff();
      return Status::Ok();
    }
    for (int idx = static_cast<int>(stack_.size()) - 1; idx >= 0; --idx) {
      const Frame& f = stack_[static_cast<std::size_t>(idx)];
      if (!f.created || reg_.IsAccess(f.a) || aborted_.count(f.a)) continue;
      NodeId home = topo_.HomeOfAction(f.a);
      if (Down(home) || !state_.nodes[home].summary.IsActive(f.a)) continue;
      RNT_RETURN_IF_ERROR(
          ApplyNodeEvent(DistEvent{dist::NodeAbort{home, f.a}}));
      aborted_.insert(f.a);
      ++stats_.timeout_aborts;
      stack_.resize(static_cast<std::size_t>(idx));
      ResetBackoff();
      return Status::Ok();
    }
    complete_ = false;
    stack_.clear();
    ResetBackoff();
    return Status::Ok();
  }

  void PushFrame(ActionId a) {
    stack_.push_back(Frame{a});
    ResetBackoff();
  }

  Status StepOnce() {
    if (mode_ == Mode::kExec) {
      if (stack_.empty()) {
        const std::vector<ActionId>& tops = children_[kRootAction];
        if (next_top_ < tops.size()) {
          PushFrame(tops[next_top_++]);
        } else {
          mode_ = Mode::kDrain;
          for (NodeId i = 0; i < topo_.k(); ++i) {
            for (ObjectId x : state_.nodes[i].vmap.TouchedObjects()) {
              drain_tasks_.push_back(DrainTask{i, x});
            }
          }
          ResetBackoff();
          return Status::Ok();
        }
      }
      return StepFrame();
    }
    if (drain_idx_ >= drain_tasks_.size()) {
      mode_ = Mode::kDone;
      return Status::Ok();
    }
    DrainTask task = drain_tasks_[drain_idx_];
    if (Down(task.node)) return Stalled(kInvalidAction);
    return LockWalk(task.node, task.object, kInvalidAction,
                    /*then_perform=*/false);
  }

  Status StepFrame() {
    Frame& f = stack_.back();
    switch (f.stage) {
      case Frame::Stage::kCreate: {
        NodeId origin = topo_.Origin(f.a);
        if (Down(origin)) return Stalled(kInvalidAction);
        ActionId p = reg_.Parent(f.a);
        if (p != kRootAction &&
            !state_.nodes[origin].summary.Contains(p)) {
          RequestKnowledge(p, origin, /*need_done=*/false);
          return Stalled(kInvalidAction);
        }
        RNT_RETURN_IF_ERROR(
            ApplyNodeEvent(DistEvent{dist::NodeCreate{origin, f.a}}));
        created_at_[f.a] = origin;
        f.created = true;
        ResetBackoff();
        if (reg_.IsAccess(f.a)) {
          f.stage = Frame::Stage::kPerform;
        } else if (options_.abort_set.count(f.a)) {
          f.stage = Frame::Stage::kStaticAbort;
        } else {
          f.stage = Frame::Stage::kChildren;
        }
        return Status::Ok();
      }
      case Frame::Stage::kStaticAbort: {
        NodeId home = topo_.HomeOfAction(f.a);
        if (Down(home)) return Stalled(kInvalidAction);
        if (!state_.nodes[home].summary.Contains(f.a)) {
          RequestKnowledge(f.a, home, /*need_done=*/false);
          return Stalled(kInvalidAction);
        }
        RNT_RETURN_IF_ERROR(
            ApplyNodeEvent(DistEvent{dist::NodeAbort{home, f.a}}));
        aborted_.insert(f.a);
        ++stats_.aborts;
        ResetBackoff();
        stack_.pop_back();
        return Status::Ok();
      }
      case Frame::Stage::kChildren: {
        const std::vector<ActionId>& kids = children_[f.a];
        if (f.next_child < kids.size()) {
          ActionId c = kids[f.next_child++];
          PushFrame(c);  // invalidates f
          return Status::Ok();
        }
        f.stage = Frame::Stage::kCommit;
        return Status::Ok();
      }
      case Frame::Stage::kCommit: {
        NodeId home = topo_.HomeOfAction(f.a);
        if (Down(home)) return Stalled(kInvalidAction);
        const ActionSummary& t = state_.nodes[home].summary;
        if (!t.Contains(f.a)) {
          RequestKnowledge(f.a, home, /*need_done=*/false);
          return Stalled(kInvalidAction);
        }
        // ℬ's (b12) only constrains locally-known children, but the
        // level-4 commit needs *every* created child done — and the home
        // knows every child exists (children are created at the parent's
        // home), so insisting on done statuses here costs no generality.
        for (ActionId c : children_[f.a]) {
          if (!created_at_.count(c)) continue;
          if (!t.IsDone(c)) {
            RequestKnowledge(c, home, /*need_done=*/true);
            return Stalled(kInvalidAction);
          }
        }
        RNT_RETURN_IF_ERROR(
            ApplyNodeEvent(DistEvent{dist::NodeCommit{home, f.a}}));
        ++stats_.commits;
        ResetBackoff();
        stack_.pop_back();
        return Status::Ok();
      }
      case Frame::Stage::kPerform: {
        ObjectId x = reg_.Object(f.a);
        NodeId i = topo_.HomeOfObject(x);
        if (Down(i)) return Stalled(kInvalidAction);
        if (!state_.nodes[i].summary.Contains(f.a)) {
          RequestKnowledge(f.a, i, /*need_done=*/false);
          return Stalled(kInvalidAction);
        }
        return LockWalk(i, x, f.a, /*then_perform=*/true);
      }
    }
    return Status::Internal("chaos driver: unreachable frame stage");
  }

  /// The aborted ancestor (or self) of an action, per the driver's own
  /// bookkeeping (static and timeout aborts).
  ActionId AbortedAncestor(ActionId a) const {
    for (ActionId c : reg_.AncestorChain(a)) {
      if (c != kRootAction && aborted_.count(c)) return c;
    }
    return kInvalidAction;
  }

  /// Walks blocking locks on x at node i upward (release) or away (lose)
  /// as far as local knowledge allows; stalls — requesting the missing
  /// status — when it runs ahead of what i knows. With the chain clear,
  /// performs the requester (or, in drain mode, finishes the task).
  Status LockWalk(NodeId i, ObjectId x, ActionId requester,
                  bool then_perform) {
    for (int guard = 0; guard < options_.max_rounds; ++guard) {
      const auto* entry = state_.nodes[i].vmap.EntriesFor(x);
      ActionId blocker = kInvalidAction;
      if (entry != nullptr) {
        for (const auto& [b, v] : *entry) {
          if (b != kRootAction &&
              (requester == kInvalidAction ||
               !reg_.IsProperAncestor(b, requester))) {
            blocker = b;
            break;
          }
        }
      }
      if (blocker == kInvalidAction) break;
      ActionId dead = AbortedAncestor(blocker);
      if (dead != kInvalidAction) {
        if (!state_.nodes[i].summary.IsAborted(dead)) {
          RequestKnowledge(dead, i, /*need_done=*/true);
          return Stalled(blocker);
        }
        RNT_RETURN_IF_ERROR(
            ApplyNodeEvent(DistEvent{dist::NodeLoseLock{i, blocker, x}}));
        ++stats_.loses;
        ResetBackoff();
      } else {
        if (!state_.nodes[i].summary.IsCommitted(blocker)) {
          RequestKnowledge(blocker, i, /*need_done=*/true);
          return Stalled(blocker);
        }
        RNT_RETURN_IF_ERROR(
            ApplyNodeEvent(DistEvent{dist::NodeReleaseLock{i, blocker, x}}));
        ++stats_.releases;
        ResetBackoff();
      }
    }
    if (then_perform) {
      Frame& f = stack_.back();
      Value u = state_.nodes[i].vmap.PrincipalValue(x, reg_);
      RNT_RETURN_IF_ERROR(
          ApplyNodeEvent(DistEvent{dist::NodePerform{i, f.a, u}}));
      ++stats_.performs;
      ResetBackoff();
      stack_.pop_back();
    } else {
      ++drain_idx_;
      ResetBackoff();
    }
    return Status::Ok();
  }

  const DistAlgebra& alg_;
  const dist::Topology& topo_;
  const action::ActionRegistry& reg_;
  const ChaosOptions& options_;
  faults::FaultInjector injector_;
  dist::DistState state_;
  valuemap::ValueMapAlgebra val_alg_;
  valuemap::ValState val_state_;
  std::vector<std::vector<ActionId>> children_;
  std::vector<DistEvent> events_;

  Mode mode_ = Mode::kExec;
  int round_ = 0;
  std::vector<Frame> stack_;
  std::size_t next_top_ = 0;
  std::vector<DrainTask> drain_tasks_;
  std::size_t drain_idx_ = 0;

  int attempts_ = 0;
  int next_attempt_round_ = 0;
  ActionId pending_blocker_ = kInvalidAction;

  std::map<NodeId, int> down_until_;
  std::multimap<int, Delivery> pending_;  // delivery round -> message

  std::map<ActionId, NodeId> created_at_;
  std::set<ActionId> aborted_;
  DriverStats stats_;
  bool complete_ = true;
};

}  // namespace

txn::FaultStats ToFaultStats(const DriverStats& stats) {
  txn::FaultStats f;
  f.retries = stats.retries;
  f.crashes = stats.crashes;
  f.dropped_msgs = stats.dropped_msgs;
  f.duplicated_msgs = stats.duplicated_msgs;
  f.delayed_msgs = stats.delayed_msgs;
  f.recovered_nodes = stats.recovered_nodes;
  f.timeout_aborts = stats.timeout_aborts;
  return f;
}

/// concurrent_buffer mode: delegate to the multi-threaded runner — which
/// now carries the full fault plan, crashes and partitions included —
/// then reconstruct the ChaosRun contract (abstract shadow, invariant
/// check, stall diagnosis) post-hoc from the merged event log. Every
/// recovered run is judged by the same court as the sequential driver's:
/// ReplayAbstract must find a level-4 image for the whole log, and the
/// invariant check (when requested) holds the final state to the local
/// possibilities mappings.
static StatusOr<ChaosRun> ChaosRunConcurrent(const DistAlgebra& alg,
                                             const ChaosOptions& options) {
  ParallelOptions popts;
  popts.propagation = options.propagation;
  popts.abort_set = options.abort_set;
  popts.plan = options.plan;
  popts.max_attempts_per_step = options.max_attempts_per_step;
  StatusOr<ParallelRun> par = RunParallel(alg, popts);
  RNT_RETURN_IF_ERROR(par.status());
  StatusOr<valuemap::ValState> abstract = ReplayAbstract(
      alg, std::span<const dist::DistEvent>(par->events));
  RNT_RETURN_IF_ERROR(abstract.status());
  ChaosRun run{par->stats,           std::move(par->final_state),
               std::move(*abstract), std::move(par->events),
               par->complete,        StallDiagnosis{}};
  if (options.check_invariants) {
    RNT_RETURN_IF_ERROR(
        dist::CheckLocalConsistency(alg, run.final_state, run.abstract));
  }
  if (!run.complete) run.stalls = DiagnoseStalls(alg, run.final_state);
  return run;
}

StatusOr<ChaosRun> ChaosRunProgram(const DistAlgebra& alg,
                                   const ChaosOptions& options) {
  if (options.concurrent_buffer) return ChaosRunConcurrent(alg, options);
  ChaosDriver driver(alg, options);
  return driver.Run();
}

}  // namespace rnt::sim
