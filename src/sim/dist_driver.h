#ifndef RNT_SIM_DIST_DRIVER_H_
#define RNT_SIM_DIST_DRIVER_H_

#include <cstdint>
#include <set>

#include "common/status.h"
#include "dist/dist_algebra.h"

namespace rnt::sim {

/// How eagerly nodes propagate action-summary knowledge (the ablation of
/// experiment E5: the paper's algebra allows *any* sub-summary to flow at
/// *any* time; a real system must pick a policy).
enum class Propagation {
  /// Sync knowledge between two nodes only when a pending step needs it.
  kLazy,
  /// After every node event, broadcast the doer's summary to all nodes.
  kEager,
  /// Lazy sync points, incremental payloads: each node keeps a per-peer
  /// frontier of what it already shipped and sends only the entries that
  /// are new (or whose status advanced) since the last send to that peer.
  /// Every delta is a legal sub-summary, so the algebra is untouched;
  /// messages never exceed kLazy's (empty deltas are skipped) and total
  /// shipped entries drop from O(total²) to O(total) per peer.
  kDelta,
};

struct DriverOptions {
  Propagation propagation = Propagation::kLazy;
  /// Actions to abort (instead of commit) once created; their
  /// descendants are never created. Exercises the lose-lock path.
  std::set<ActionId> abort_set;
  /// Safety bound on scheduler rounds.
  int max_rounds = 100000;
};

struct DriverStats {
  std::uint64_t node_events = 0;       // create/commit/abort/perform/locks
  std::uint64_t messages = 0;          // send+receive pairs
  std::uint64_t summary_entries = 0;   // total entries shipped
  std::uint64_t performs = 0;
  std::uint64_t commits = 0;
  std::uint64_t aborts = 0;
  std::uint64_t releases = 0;
  std::uint64_t loses = 0;
  int rounds = 0;

  // Fault-handling counters, filled by the chaos driver (always zero for
  // the failure-free RunProgram). Mirrored into txn::FaultStats via
  // ToFaultStats so faulty runs surface through the trace tooling.
  std::uint64_t retries = 0;          // knowledge re-requests after backoff
  std::uint64_t crashes = 0;          // nodes crashed (summary wiped)
  std::uint64_t dropped_msgs = 0;     // transmissions lost or partitioned
  std::uint64_t duplicated_msgs = 0;  // duplicate deliveries scheduled
  std::uint64_t delayed_msgs = 0;     // deliveries pushed past send round
  std::uint64_t recovered_nodes = 0;  // rebirths via buffer M_i replay
  std::uint64_t timeout_aborts = 0;   // stuck subtransactions aborted

  friend bool operator==(const DriverStats&, const DriverStats&) = default;
};

struct DriverRun {
  DriverStats stats;
  dist::DistState final_state;
};

/// Executes the *entire* registered program on the distributed algebra:
/// every action in the registry is created at its origin, accesses
/// perform at their objects' homes under Moss locking, parents commit
/// bottom-up at their homes, and locks drain back to the root U —
/// propagating summaries per `options.propagation` and counting the
/// messages that the paper's model leaves unconstrained.
///
/// Returns kFailedPrecondition if the program cannot make progress within
/// max_rounds (which would indicate a driver bug — the algebra itself is
/// deadlock-free for this tree-structured schedule). The status message
/// carries a StallDiagnosis rendering (sim/diagnosis.h): which actions
/// are still live and which object/home each is waiting on.
StatusOr<DriverRun> RunProgram(const dist::DistAlgebra& alg,
                               const DriverOptions& options = {});

}  // namespace rnt::sim

#endif  // RNT_SIM_DIST_DRIVER_H_
