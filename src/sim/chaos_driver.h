#ifndef RNT_SIM_CHAOS_DRIVER_H_
#define RNT_SIM_CHAOS_DRIVER_H_

#include <set>
#include <vector>

#include "common/status.h"
#include "dist/dist_algebra.h"
#include "faults/faults.h"
#include "sim/diagnosis.h"
#include "sim/dist_driver.h"
#include "txn/trace.h"
#include "valuemap/value_map_algebra.h"

namespace rnt::sim {

/// Options for a fault-injected program execution.
struct ChaosOptions {
  /// The fault schedule (see faults/faults.h). A default plan injects
  /// nothing, in which case ChaosRunProgram computes the same final
  /// values as RunProgram.
  faults::FaultPlan plan;
  /// Static aborts, as in DriverOptions (the chaos driver additionally
  /// aborts *dynamically* on timeout).
  std::set<ActionId> abort_set;
  /// Hard bound on scheduler rounds.
  int max_rounds = 200000;
  /// Stall handling: a step whose knowledge request goes unanswered
  /// re-sends with exponential backoff (base << attempt, capped), and
  /// after max_attempts_per_step re-requests the nearest abortable
  /// enclosing subtransaction is timeout-aborted instead of spinning.
  int backoff_base = 1;
  int backoff_cap = 32;
  int max_attempts_per_step = 12;
  /// Check the Lemma 23-26 local-consistency obligations against the
  /// level-4 shadow state after every round (the "invariants under fire"
  /// mode used by the chaos tests; costs O(state) per round).
  bool check_invariants = false;
  /// Run on the multi-threaded ParallelRunner against the concurrent
  /// (mutex-free) message buffer instead of the round-based sequential
  /// loop: faults are injected into real cross-thread traffic, including
  /// crashes (mid-loop thread death, rebirth by durable-buffer replay)
  /// and partitions (link-level filter at the mailbox) — crash triggers
  /// and partition windows run on the runner's logical clock (see
  /// faults::CrashSpec). Restricted to kEager/kDelta propagation
  /// semantics (the runner is reactive); `propagation` below selects
  /// which, and `max_attempts_per_step` above feeds the per-node
  /// watchdog. The level-4 shadow and the invariant check then run
  /// post-hoc over the merged event log rather than per round.
  bool concurrent_buffer = false;
  /// Knowledge policy for concurrent_buffer mode (ignored otherwise).
  Propagation propagation = Propagation::kDelta;
};

/// Result of a chaos run. `events` is the exact sequence of ℬ events the
/// driver applied — a valid computation of the distributed algebra (the
/// crash wipes are *not* events: recovery re-enters legal states via
/// Receive of the buffer M_i, so the log replays cleanly against the
/// un-crashed algebra). Two runs with equal options produce bit-identical
/// ChaosRuns.
struct ChaosRun {
  DriverStats stats;
  dist::DistState final_state;
  /// The level-4 shadow state maintained alongside the run: its tree is
  /// the abstract AAT on which perm(T) serializability and orphan-view
  /// consistency are judged.
  valuemap::ValState abstract;
  std::vector<dist::DistEvent> events;
  /// False when some subtree could not finish *or be aborted* (e.g. its
  /// only abort point was unreachable for the whole run); `stalls` then
  /// explains, per action, what each was waiting on.
  bool complete = true;
  StallDiagnosis stalls;
};

/// Projects the chaos counters into the trace-level fault record.
txn::FaultStats ToFaultStats(const DriverStats& stats);

/// Executes the registered program on ℬ under the fault plan: a
/// fault-aware variant of RunProgram in which every knowledge transfer
/// travels through a chaotic network (drop / duplicate / delay / reorder
/// / partition), nodes crash and recover mid-run, and stuck
/// subtransactions are timeout-aborted.
///
/// Robustness mechanics, all deterministic from the plan's seed:
///  * WAL discipline: every node event is followed by a self-send, so the
///    buffer M_i is a superset of node i's volatile knowledge ("all
///    information ever sent toward i" — paper §9.1).
///  * Crash: at the planned round the node's summary is wiped; its value
///    map (the durable lock table for objects homed there) survives.
///  * Recovery: at rebirth the driver issues Receive(i, M_i) — buffer
///    replay restores exactly the knowledge the WAL captured.
///  * Stall detection: missing knowledge is re-requested under bounded
///    exponential backoff (stats.retries counts re-sends).
///  * Timeout abort: a step stuck past max_attempts_per_step aborts the
///    deepest abortable subtransaction on the current execution path,
///    dynamically exercising the abort/lose-lock machinery.
///  * Graceful degradation: when even timeout-abort is impossible (no
///    reachable abort point), the subtree is abandoned, the run continues
///    elsewhere, and the result is a partial ChaosRun with
///    complete=false and a per-action stall diagnosis.
///
/// When options.check_invariants is set, CheckLocalConsistency must hold
/// after every round (crashed nodes' knowledge obligations waived while
/// down) — a violated invariant returns kInternal.
StatusOr<ChaosRun> ChaosRunProgram(const dist::DistAlgebra& alg,
                                   const ChaosOptions& options = {});

}  // namespace rnt::sim

#endif  // RNT_SIM_CHAOS_DRIVER_H_
