#include "orphan/orphan.h"

#include <sstream>

#include "action/serializability.h"

namespace rnt::orphan {

bool IsOrphan(const aat::Aat& t, ActionId a) {
  const action::ActionRegistry& reg = t.registry();
  for (ActionId c = reg.Parent(a); c != kInvalidAction;
       c = c == kRootAction ? kInvalidAction : reg.Parent(c)) {
    if (c == kRootAction) break;
    if (t.IsAborted(c)) return true;
  }
  return false;
}

std::vector<ActionId> Orphans(const aat::Aat& t) {
  std::vector<ActionId> out;
  for (ActionId a : t.Vertices()) {
    if (a != kRootAction && IsOrphan(t, a)) out.push_back(a);
  }
  return out;
}

bool ExplainableBySubsequence(const action::ActionRegistry& reg, ObjectId x,
                              const std::vector<ActionId>& preds, Value want) {
  const std::size_t n = preds.size();
  for (std::uint64_t mask = 0; mask < (1ull << n); ++mask) {
    Value v = action::kInitValue;
    for (std::size_t i = 0; i < n; ++i) {
      if (mask & (1ull << i)) v = reg.UpdateOf(preds[i]).Apply(v);
    }
    if (v == want) return true;
  }
  (void)x;
  return false;
}

Status CheckOrphanViewConsistency(const aat::Aat& t) {
  return CheckOrphanViewConsistency(t, kMaxOrphanExplainSize);
}

Status CheckOrphanViewConsistency(const aat::Aat& t, std::size_t max_explain) {
  const action::ActionRegistry& reg = t.registry();
  for (ObjectId x : t.TouchedObjects()) {
    for (ActionId a : t.Datasteps(x)) {
      std::vector<ActionId> preds = aat::VData(t, a);
      Value exact = action::ResultOf(reg, x, preds);
      if (t.LabelOf(a) == exact) continue;
      if (t.IsLive(a)) {
        std::ostringstream os;
        os << "live datastep " << a << " on x" << x << " saw "
           << t.LabelOf(a) << " but its visible predecessors produce "
           << exact;
        return Status::Internal(os.str());
      }
      // Orphan: the view must at least be realizable in some execution —
      // the fold of *some* subsequence of the visible predecessors
      // (branches discarded by lose-lock before the orphan ran simply do
      // not contribute in that execution).
      if (preds.size() > max_explain) {
        return Status::FailedPrecondition(
            "orphan view too large to explain exhaustively");
      }
      if (!ExplainableBySubsequence(reg, x, preds, t.LabelOf(a))) {
        std::ostringstream os;
        os << "orphaned datastep " << a << " on x" << x << " saw "
           << t.LabelOf(a)
           << ", which no subsequence of its visible predecessors produces "
              "(out-of-thin-air view)";
        return Status::Internal(os.str());
      }
    }
  }
  return Status::Ok();
}

bool OrphanSafeAatAlgebra::Defined(const State& s, const Event& e) const {
  if (const auto* p = std::get_if<algebra::Perform>(&e)) {
    if (!s.CanPerform(p->a)) return false;
    ObjectId x = registry().Object(p->a);
    // (d12) for every live datastep, as in the base algebra.
    for (ActionId b : s.Datasteps(x)) {
      if (s.IsLive(b) && !s.IsVisibleTo(b, p->a)) return false;
    }
    if (s.IsLive(p->a)) {
      // Exact Moss value for live accesses, as in the base algebra.
      return p->u == aat::MossValue(s, p->a);
    }
    // Strengthened (d13) for orphans: the value must be *realizable* —
    // the fold of some subsequence of the currently visible predecessors
    // (never out of thin air).
    std::vector<ActionId> preds = s.VisibleDatasteps(p->a, x);
    if (preds.size() > kMaxOrphanExplainSize) return false;
    return ExplainableBySubsequence(registry(), x, preds, p->u);
  }
  return inner_.Defined(s, e);
}

std::vector<algebra::TreeEvent> EventCandidates(const aat::Aat& s) {
  const action::ActionRegistry& reg = s.registry();
  std::vector<algebra::TreeEvent> out;
  for (ActionId a = 1; a < reg.size(); ++a) {
    if (!s.Contains(a)) {
      out.push_back(algebra::Create{a});
      continue;
    }
    if (!s.IsActive(a)) continue;
    if (reg.IsAccess(a)) {
      out.push_back(algebra::Perform{a, aat::MossValue(s, a)});
      out.push_back(algebra::Abort{a});
    } else {
      out.push_back(algebra::Commit{a});
      out.push_back(algebra::Abort{a});
    }
  }
  return out;
}

}  // namespace rnt::orphan
