#ifndef RNT_ORPHAN_ORPHAN_H_
#define RNT_ORPHAN_ORPHAN_H_

#include <vector>

#include "aat/aat.h"
#include "aat/aat_algebra.h"
#include "algebra/algebra.h"
#include "common/status.h"

namespace rnt::orphan {

/// Orphan views (paper §1 and §10; Goree's thesis develops the theory).
///
/// An *orphan* is an action with an aborted ancestor — a subtransaction
/// of a failed transaction that may still be executing somewhere in the
/// distributed system. The paper's base correctness condition only
/// constrains the *permanent* part of the tree, so the level-2 algebra
/// deliberately leaves orphan performs unconstrained: precondition (d13)
/// applies "if A is live in T" and an orphan may observe any value.
///
/// The Argus implementors wanted more: orphans should see *consistent*
/// views — values that could have occurred in an execution in which they
/// are not orphans — so that orphaned code cannot observe impossible
/// states (and, say, fire missiles on garbage data) before the abort
/// reaches it. This module provides:
///
///  * the orphan predicates and census over action trees;
///  * `CheckOrphanViewConsistency`: every datastep, *dead or alive*,
///    saw result(x, v-data(A)) — version compatibility over the whole
///    tree, not just perm(T);
///  * `OrphanSafeAatAlgebra`: the level-2 algebra with (d13) enforced
///    unconditionally, specifying orphan-consistent behavior;
///  * the observation (tested in orphan_test.cc) that Moss's locking
///    levels provide orphan consistency *for free*: preconditions (d13)
///    of 𝒜″/𝒜‴/ℬ hand every access the principal value, live or not, so
///    every lower-level computation already satisfies the orphan-safe
///    spec — the formal kernel of why Argus could aim for this property.

/// All vertices that are orphans in T: live ∉, i.e. some ancestor
/// aborted. (Aborted actions themselves are included when a *proper*
/// ancestor aborted; an action that merely aborted itself is not an
/// orphan.)
std::vector<ActionId> Orphans(const aat::Aat& t);

/// True iff A is an orphan in T: some proper ancestor of A is aborted.
bool IsOrphan(const aat::Aat& t, ActionId a);

/// Checks orphan-view consistency over the *full* tree (not perm(T)):
///
///  * a live datastep must be exactly version-compatible:
///    label = result(x, v-data(A));
///  * an orphaned datastep must have seen a view "that could occur during
///    an execution in which it is not an orphan" (the paper's phrasing):
///    label = result(x, S) for some *subsequence* S of v-data(A).
///
/// The subsequence relaxation is forced by the algorithm itself, not a
/// convenience: lose-lock discards a dead branch's work from the lock
/// stack, so an orphan performing afterwards correctly sees a world in
/// which that branch aborted before contributing — a world that is
/// realizable, just not the one the final tree records. A strict
/// full-tree version-compatibility check would (and in our tests did)
/// reject such legitimate views. What the property *rules out* is
/// out-of-thin-air values: a label no subset of the visible work can
/// explain (which plain 𝒜′ permits for orphans, precondition (d13) being
/// conditional on liveness).
///
/// Orphan v-data sets larger than kMaxOrphanExplainSize make the
/// subsequence search (exponential) infeasible and yield
/// kFailedPrecondition; tests keep trees small.
Status CheckOrphanViewConsistency(const aat::Aat& t);

/// As above with an explicit bound on the exhaustive-explanation search —
/// fault-injection tests produce bushier orphan sets than the hand-built
/// trees and choose their own cost ceiling.
Status CheckOrphanViewConsistency(const aat::Aat& t, std::size_t max_explain);

inline constexpr std::size_t kMaxOrphanExplainSize = 20;

/// True iff some subsequence of `preds` (in data order) folds to `want` —
/// the "realizable view" predicate used for orphans.
bool ExplainableBySubsequence(const action::ActionRegistry& reg, ObjectId x,
                              const std::vector<ActionId>& preds, Value want);

/// The orphan-safe level-2 algebra: identical to aat::AatAlgebra except
/// that perform's value precondition (d13) also binds orphans — a live
/// access must see the exact Moss value, and an orphaned access must see
/// a *realizable* value (the fold of some subsequence of its currently
/// visible predecessors; see CheckOrphanViewConsistency for why exact
/// compatibility is unattainable once lose-lock discards dead work).
/// This is the specification an orphan-managing implementation (Goree's
/// algorithm in Argus) must meet — and tests show Moss's locking levels
/// already refine to it.
class OrphanSafeAatAlgebra {
 public:
  using State = aat::Aat;
  using Event = algebra::TreeEvent;

  explicit OrphanSafeAatAlgebra(const action::ActionRegistry* registry)
      : inner_(registry) {}

  State Initial() const { return inner_.Initial(); }

  bool Defined(const State& s, const Event& e) const;
  void Apply(State& s, const Event& e) const { inner_.Apply(s, e); }

  const action::ActionRegistry& registry() const { return inner_.registry(); }

 private:
  aat::AatAlgebra inner_;
};

static_assert(algebra::EventStateAlgebra<OrphanSafeAatAlgebra>);

/// Candidate generator for the orphan-safe algebra (orphans get the Moss
/// value only).
std::vector<algebra::TreeEvent> EventCandidates(const aat::Aat& s);

}  // namespace rnt::orphan

#endif  // RNT_ORPHAN_ORPHAN_H_
