#ifndef RNT_COMMON_MUTEX_H_
#define RNT_COMMON_MUTEX_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "common/thread_annotations.h"

namespace rnt {

/// Annotated mutex: a drop-in `std::mutex` that the thread-safety
/// analysis understands as a capability. All concurrent components use
/// this (tools/lint bans raw `std::mutex` there), so `GUARDED_BY` /
/// `REQUIRES` contracts are checkable with `-Wthread-safety` under the
/// `lint` preset.
class CAPABILITY("mutex") Mutex {
 public:
  Mutex() = default;
  Mutex(const Mutex&) = delete;
  Mutex& operator=(const Mutex&) = delete;

  void Lock() ACQUIRE() { mu_.lock(); }
  void Unlock() RELEASE() { mu_.unlock(); }
  bool TryLock() TRY_ACQUIRE(true) { return mu_.try_lock(); }

 private:
  friend class CondVar;
  std::mutex mu_;
};

/// RAII critical section over `Mutex` (the annotated counterpart of
/// `std::lock_guard`/`std::scoped_lock`).
class SCOPED_CAPABILITY MutexLock {
 public:
  explicit MutexLock(Mutex& mu) ACQUIRE(mu) : mu_(mu) { mu_.Lock(); }
  ~MutexLock() RELEASE() { mu_.Unlock(); }

  MutexLock(const MutexLock&) = delete;
  MutexLock& operator=(const MutexLock&) = delete;

 private:
  Mutex& mu_;
};

/// Condition variable over `Mutex`. Wait methods require the mutex held
/// (checked statically); internally they adopt the already-held native
/// handle, wait, and re-adopt on wakeup, so the capability stays held
/// across the call from the analysis' point of view — which matches the
/// runtime contract of `std::condition_variable::wait`.
class CondVar {
 public:
  CondVar() = default;
  CondVar(const CondVar&) = delete;
  CondVar& operator=(const CondVar&) = delete;

  void Wait(Mutex& mu) REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    cv_.wait(lk);
    lk.release();
  }

  /// Returns std::cv_status::timeout when `deadline` passed first.
  template <class Clock, class Duration>
  std::cv_status WaitUntil(
      Mutex& mu, const std::chrono::time_point<Clock, Duration>& deadline)
      REQUIRES(mu) {
    std::unique_lock<std::mutex> lk(mu.mu_, std::adopt_lock);
    std::cv_status st = cv_.wait_until(lk, deadline);
    lk.release();
    return st;
  }

  void NotifyOne() { cv_.notify_one(); }
  void NotifyAll() { cv_.notify_all(); }

 private:
  std::condition_variable cv_;
};

}  // namespace rnt

#endif  // RNT_COMMON_MUTEX_H_
