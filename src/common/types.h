#ifndef RNT_COMMON_TYPES_H_
#define RNT_COMMON_TYPES_H_

#include <cstdint>
#include <limits>

namespace rnt {

/// Identifier of an action (transaction or access) in an ActionRegistry.
/// Actions are the paper's "act" universe; id 0 is always the virtual root
/// U that parents all top-level transactions.
using ActionId = std::uint32_t;

/// The distinguished root action U.
inline constexpr ActionId kRootAction = 0;

/// Sentinel meaning "no action".
inline constexpr ActionId kInvalidAction =
    std::numeric_limits<std::uint32_t>::max();

/// Identifier of a data object (the paper's "obj" universe).
using ObjectId = std::uint32_t;

/// Identifier of a node in the distributed algebra's index set [k].
using NodeId = std::uint32_t;

/// Values stored in data objects. The paper allows arbitrary value sets;
/// we instantiate values(x) = int64 for every object, which suffices for
/// reads (identity updates), writes (constant updates), and the
/// non-commuting arithmetic updates used to make serialization order
/// observable. See DESIGN.md §2.
using Value = std::int64_t;

}  // namespace rnt

#endif  // RNT_COMMON_TYPES_H_
