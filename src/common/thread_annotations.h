#ifndef RNT_COMMON_THREAD_ANNOTATIONS_H_
#define RNT_COMMON_THREAD_ANNOTATIONS_H_

/// Clang thread-safety annotations (-Wthread-safety).
///
/// These macros attach the locking discipline to the code so the
/// compiler can prove it: a member tagged GUARDED_BY(mu) may only be
/// touched while `mu` is held, a function tagged REQUIRES(mu) may only
/// be called with `mu` held, and ACQUIRE/RELEASE describe the lock
/// primitives themselves. Under Clang the `lint` preset turns
/// violations into hard errors; under compilers without the attributes
/// (GCC) every macro expands to nothing, so annotated code builds
/// everywhere.
///
/// The project-wide rule (enforced by tools/lint): concurrent
/// components (`src/lock`, `src/txn`, `src/sim`, `src/faults`,
/// `src/baseline`) never use `std::mutex` directly — they use the
/// annotated `rnt::Mutex` / `rnt::MutexLock` / `rnt::CondVar` wrappers
/// from common/mutex.h, so every critical section is visible to the
/// analysis.
///
/// Reference: https://clang.llvm.org/docs/ThreadSafetyAnalysis.html

#if defined(__clang__) && (!defined(SWIG))
#define RNT_THREAD_ANNOTATION_ATTRIBUTE__(x) __attribute__((x))
#else
#define RNT_THREAD_ANNOTATION_ATTRIBUTE__(x)  // no-op
#endif

/// Marks a class as a capability (a lock). The string is the name the
/// analysis uses in diagnostics, e.g. 'mutex "shard.mu" not held'.
#define CAPABILITY(x) RNT_THREAD_ANNOTATION_ATTRIBUTE__(capability(x))

/// Marks an RAII class whose lifetime equals a critical section.
#define SCOPED_CAPABILITY RNT_THREAD_ANNOTATION_ATTRIBUTE__(scoped_lockable)

/// Data member `x` may only be read or written while holding the
/// capability.
#define GUARDED_BY(x) RNT_THREAD_ANNOTATION_ATTRIBUTE__(guarded_by(x))

/// Pointer member: the *pointee* is protected by the capability (the
/// pointer itself is not).
#define PT_GUARDED_BY(x) RNT_THREAD_ANNOTATION_ATTRIBUTE__(pt_guarded_by(x))

/// The function may only be called while holding the capabilities
/// exclusively (they are not acquired or released by the call).
#define REQUIRES(...) \
  RNT_THREAD_ANNOTATION_ATTRIBUTE__(requires_capability(__VA_ARGS__))

/// Shared (reader) flavor of REQUIRES.
#define REQUIRES_SHARED(...) \
  RNT_THREAD_ANNOTATION_ATTRIBUTE__(requires_shared_capability(__VA_ARGS__))

/// The function acquires the capabilities and does not release them.
#define ACQUIRE(...) \
  RNT_THREAD_ANNOTATION_ATTRIBUTE__(acquire_capability(__VA_ARGS__))

/// The function releases the capabilities (which must be held on entry).
#define RELEASE(...) \
  RNT_THREAD_ANNOTATION_ATTRIBUTE__(release_capability(__VA_ARGS__))

/// The function attempts the acquisition; the first argument is the
/// return value meaning success.
#define TRY_ACQUIRE(...) \
  RNT_THREAD_ANNOTATION_ATTRIBUTE__(try_acquire_capability(__VA_ARGS__))

/// The function may only be called while NOT holding the capabilities
/// (it acquires them internally — calling with them held would deadlock).
#define EXCLUDES(...) RNT_THREAD_ANNOTATION_ATTRIBUTE__(locks_excluded(__VA_ARGS__))

/// Runtime assertion that the capability is held (for code paths the
/// static analysis cannot follow).
#define ASSERT_CAPABILITY(x) \
  RNT_THREAD_ANNOTATION_ATTRIBUTE__(assert_capability(x))

/// The function returns a reference to the capability guarding its
/// result.
#define RETURN_CAPABILITY(x) RNT_THREAD_ANNOTATION_ATTRIBUTE__(lock_returned(x))

/// Opts a function out of the analysis. Used only where the locking
/// pattern is genuinely inexpressible (e.g. locking a variable-length
/// ancestor chain of record mutexes in order); every use carries a
/// comment explaining why the discipline holds anyway.
#define NO_THREAD_SAFETY_ANALYSIS \
  RNT_THREAD_ANNOTATION_ATTRIBUTE__(no_thread_safety_analysis)

#endif  // RNT_COMMON_THREAD_ANNOTATIONS_H_
