#include "common/status.h"

namespace rnt {

std::string_view StatusCodeName(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kFailedPrecondition:
      return "FAILED_PRECONDITION";
    case StatusCode::kNotFound:
      return "NOT_FOUND";
    case StatusCode::kAlreadyExists:
      return "ALREADY_EXISTS";
    case StatusCode::kInvalidArgument:
      return "INVALID_ARGUMENT";
    case StatusCode::kAborted:
      return "ABORTED";
    case StatusCode::kTimeout:
      return "TIMEOUT";
    case StatusCode::kIllegalState:
      return "ILLEGAL_STATE";
    case StatusCode::kInternal:
      return "INTERNAL";
    case StatusCode::kDataLoss:
      return "DATA_LOSS";
  }
  return "UNKNOWN";
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out(StatusCodeName(code_));
  if (!message_.empty()) {
    out += ": ";
    out += message_;
  }
  return out;
}

std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace rnt
