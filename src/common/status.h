#ifndef RNT_COMMON_STATUS_H_
#define RNT_COMMON_STATUS_H_

#include <cassert>
#include <ostream>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace rnt {

/// Canonical error space for the RNT library.
///
/// The library does not throw exceptions (Google style); every fallible
/// operation returns a `Status` or a `StatusOr<T>`. Transaction-level
/// outcomes that are *expected* in normal operation (deadlock victim
/// selection, conflict aborts, failure injection) are ordinary error codes,
/// mirroring the paper's view of subtransaction failure as a tolerated,
/// reportable event rather than a catastrophic one.
enum class StatusCode : int {
  kOk = 0,
  /// Generic precondition violation (event not in its domain).
  kFailedPrecondition = 1,
  /// Entity (action, object, lock entry) not found.
  kNotFound = 2,
  /// Entity already exists (e.g., action created twice).
  kAlreadyExists = 3,
  /// Caller misuse that is a programming error on the caller's side.
  kInvalidArgument = 4,
  /// The transaction was aborted (by itself, an ancestor, deadlock
  /// resolution, or injected failure). Expected and recoverable.
  kAborted = 5,
  /// Lock acquisition timed out (timeout deadlock policy).
  kTimeout = 6,
  /// The operation is invalid in the entity's current state
  /// (e.g., commit with open children).
  kIllegalState = 7,
  /// Internal invariant violation: a bug in the library.
  kInternal = 8,
  /// Durable state is unrecoverable (mid-log CRC corruption, semantic
  /// WAL damage). Unlike kAborted this is not retryable: the storage
  /// layer refuses to open rather than serve silently wrong values.
  kDataLoss = 9,
};

/// Returns a stable human-readable name for `code` ("OK", "ABORTED", ...).
std::string_view StatusCodeName(StatusCode code);

/// A cheap, value-semantic success-or-error result.
///
/// OK statuses carry no allocation; error statuses carry a code and a
/// message. `Status` is annotated `[[nodiscard]]` so dropped errors are
/// compile-time warnings.
class [[nodiscard]] Status {
 public:
  /// Constructs an OK status.
  Status() : code_(StatusCode::kOk) {}
  /// Constructs a status with `code` and diagnostic `message`.
  Status(StatusCode code, std::string message)
      : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }
  static Status FailedPrecondition(std::string msg) {
    return Status(StatusCode::kFailedPrecondition, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Timeout(std::string msg) {
    return Status(StatusCode::kTimeout, std::move(msg));
  }
  static Status IllegalState(std::string msg) {
    return Status(StatusCode::kIllegalState, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status DataLoss(std::string msg) {
    return Status(StatusCode::kDataLoss, std::move(msg));
  }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  /// True when the status represents a transaction abort — the one error
  /// class a caller is expected to handle by retrying or compensating.
  bool IsAborted() const { return code_ == StatusCode::kAborted; }
  bool IsTimeout() const { return code_ == StatusCode::kTimeout; }

  /// Renders "CODE: message" (or "OK").
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) {
    return a.code_ == b.code_;
  }

 private:
  StatusCode code_;
  std::string message_;
};

std::ostream& operator<<(std::ostream& os, const Status& s);

/// A value-or-error result, analogous to absl::StatusOr.
///
/// Invariant: holds exactly one of a `T` (when `ok()`) or a non-OK
/// `Status`. Accessing `value()` on an error aborts the process in debug
/// builds; callers must check `ok()` first.
template <typename T>
class [[nodiscard]] StatusOr {
 public:
  /// Implicit from value, per the absl convention: `return some_t;`.
  StatusOr(T value) : rep_(std::move(value)) {}
  /// Implicit from error status: `return Status::Aborted(...);`.
  StatusOr(Status status) : rep_(std::move(status)) {
    assert(!std::get<Status>(rep_).ok() &&
           "StatusOr must not be constructed from an OK status");
  }

  bool ok() const { return std::holds_alternative<T>(rep_); }

  /// The contained status: OK when a value is present.
  Status status() const {
    if (ok()) return Status::Ok();
    return std::get<Status>(rep_);
  }

  const T& value() const& {
    assert(ok());
    return std::get<T>(rep_);
  }
  T& value() & {
    assert(ok());
    return std::get<T>(rep_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(rep_));
  }

  const T& operator*() const& { return value(); }
  T& operator*() & { return value(); }
  const T* operator->() const { return &value(); }
  T* operator->() { return &value(); }

 private:
  std::variant<T, Status> rep_;
};

}  // namespace rnt

/// Propagates a non-OK Status from the current function.
#define RNT_RETURN_IF_ERROR(expr)                \
  do {                                           \
    ::rnt::Status _rnt_status = (expr);          \
    if (!_rnt_status.ok()) return _rnt_status;   \
  } while (false)

/// Evaluates a StatusOr expression; on error returns its status, otherwise
/// binds the value to `lhs`.
#define RNT_ASSIGN_OR_RETURN(lhs, expr)                  \
  auto RNT_CONCAT_(_rnt_sor, __LINE__) = (expr);         \
  if (!RNT_CONCAT_(_rnt_sor, __LINE__).ok())             \
    return RNT_CONCAT_(_rnt_sor, __LINE__).status();     \
  lhs = std::move(RNT_CONCAT_(_rnt_sor, __LINE__)).value()

#define RNT_CONCAT_INNER_(a, b) a##b
#define RNT_CONCAT_(a, b) RNT_CONCAT_INNER_(a, b)

#endif  // RNT_COMMON_STATUS_H_
