#include "common/random.h"

#include <algorithm>
#include <cmath>

namespace rnt {

Zipf::Zipf(std::size_t n, double theta) {
  assert(n > 0);
  cdf_.resize(n);
  double sum = 0;
  for (std::size_t i = 0; i < n; ++i) {
    sum += 1.0 / std::pow(static_cast<double>(i + 1), theta);
    cdf_[i] = sum;
  }
  for (auto& c : cdf_) c /= sum;
}

std::size_t Zipf::Sample(Rng& rng) const {
  double u = rng.NextDouble();
  auto it = std::lower_bound(cdf_.begin(), cdf_.end(), u);
  if (it == cdf_.end()) return cdf_.size() - 1;
  return static_cast<std::size_t>(it - cdf_.begin());
}

}  // namespace rnt
