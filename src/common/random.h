#ifndef RNT_COMMON_RANDOM_H_
#define RNT_COMMON_RANDOM_H_

#include <cassert>
#include <cstdint>
#include <vector>

namespace rnt {

/// Deterministic 64-bit PRNG (xoshiro256** seeded via SplitMix64).
///
/// Every randomized component of the library (executors, workload
/// generators, failure injectors) takes an explicit seed so that test
/// failures and benchmark runs are exactly reproducible.
class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // SplitMix64 seeding, as recommended by the xoshiro authors.
    std::uint64_t x = seed;
    for (auto& word : s_) {
      x += 0x9e3779b97f4a7c15ull;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
      word = z ^ (z >> 31);
    }
  }

  /// Uniform 64-bit word.
  std::uint64_t Next() {
    const std::uint64_t result = Rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = Rotl(s_[3], 45);
    return result;
  }

  /// Uniform integer in [0, bound). Requires bound > 0.
  std::uint64_t Below(std::uint64_t bound) {
    assert(bound > 0);
    // Debiased via rejection (Lemire-style threshold kept simple).
    std::uint64_t threshold = -bound % bound;
    for (;;) {
      std::uint64_t r = Next();
      if (r >= threshold) return r % bound;
    }
  }

  /// Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t Range(std::int64_t lo, std::int64_t hi) {
    assert(lo <= hi);
    return lo + static_cast<std::int64_t>(
                    Below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Uniform double in [0, 1).
  double NextDouble() { return (Next() >> 11) * 0x1.0p-53; }

  /// Bernoulli trial with success probability p.
  bool Chance(double p) { return NextDouble() < p; }

  /// Uniformly chooses an element of a non-empty vector.
  template <typename T>
  const T& Choose(const std::vector<T>& v) {
    assert(!v.empty());
    return v[Below(v.size())];
  }

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = Below(i);
      std::swap(v[i - 1], v[j]);
    }
  }

 private:
  static std::uint64_t Rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4];
};

/// Zipf-distributed sampler over {0, ..., n-1} with skew theta.
///
/// theta = 0 is uniform; theta around 0.8-1.2 models the hot-key skew used
/// throughout the benchmark suite (DESIGN.md E1/E8). Uses the standard
/// inverse-CDF-over-precomputed-prefix-sums method; O(log n) per sample.
class Zipf {
 public:
  Zipf(std::size_t n, double theta);

  /// Samples a key in [0, n). Hotter keys are smaller indices.
  std::size_t Sample(Rng& rng) const;

  std::size_t n() const { return cdf_.size(); }

 private:
  std::vector<double> cdf_;
};

}  // namespace rnt

#endif  // RNT_COMMON_RANDOM_H_
