#include "valuemap/value_map.h"

#include <sstream>

namespace rnt::valuemap {

ActionId ValueMap::PrincipalAction(ObjectId x,
                                   const action::ActionRegistry& reg) const {
  ActionId best = kRootAction;
  std::uint32_t best_depth = 0;
  auto it = objects_.find(x);
  if (it != objects_.end()) {
    for (const auto& [a, v] : it->second) {
      if (reg.Depth(a) >= best_depth) {
        best = a;
        best_depth = reg.Depth(a);
      }
    }
  }
  return best;
}

Value ValueMap::PrincipalValue(ObjectId x,
                               const action::ActionRegistry& reg) const {
  return Get(x, PrincipalAction(x, reg));
}

std::vector<ObjectId> ValueMap::TouchedObjects() const {
  std::vector<ObjectId> out;
  out.reserve(objects_.size());
  for (const auto& [x, entry] : objects_) out.push_back(x);
  return out;
}

Status ValueMap::CheckWellFormed(const action::ActionRegistry& reg) const {
  for (const auto& [x, entry] : objects_) {
    std::vector<ActionId> holders;
    for (const auto& [a, v] : entry) holders.push_back(a);
    for (std::size_t i = 0; i < holders.size(); ++i) {
      for (std::size_t j = i + 1; j < holders.size(); ++j) {
        if (!reg.IsAncestor(holders[i], holders[j]) &&
            !reg.IsAncestor(holders[j], holders[i])) {
          std::ostringstream os;
          os << "value-map holders " << holders[i] << " and " << holders[j]
             << " for x" << x << " not on one chain";
          return Status::Internal(os.str());
        }
      }
    }
  }
  return Status::Ok();
}

bool operator==(const ValueMap& a, const ValueMap& b) {
  auto ita = a.objects_.begin();
  auto itb = b.objects_.begin();
  auto skip_trivial = [](auto& it, const auto& end) {
    while (it != end && ValueMap::IsTrivial(it->second)) ++it;
  };
  for (;;) {
    skip_trivial(ita, a.objects_.end());
    skip_trivial(itb, b.objects_.end());
    if (ita == a.objects_.end() || itb == b.objects_.end()) {
      return ita == a.objects_.end() && itb == b.objects_.end();
    }
    if (ita->first != itb->first || ita->second != itb->second) return false;
    ++ita;
    ++itb;
  }
}

}  // namespace rnt::valuemap
