#ifndef RNT_VALUEMAP_VALUE_MAP_ALGEBRA_H_
#define RNT_VALUEMAP_VALUE_MAP_ALGEBRA_H_

#include <vector>

#include "aat/aat.h"
#include "algebra/algebra.h"
#include "algebra/events.h"
#include "common/status.h"
#include "valuemap/value_map.h"
#include "versionmap/version_map.h"

namespace rnt::valuemap {

/// State of the level-4 algebra 𝒜‴: an AAT plus a value map (paper §8.2).
struct ValState {
  aat::Aat tree;
  ValueMap vmap;
};

/// Level 4: the *optimized* locking algebra — Moss's algorithm in its
/// centralized, single-lock-mode form (paper §8). Identical to level 3
/// except that each lock holder retains only the latest value of the
/// object (effect d24: V(x, A) <- update(A)(u)) instead of the whole
/// access sequence.
///
/// The paper's point at this level: correctness of the information-poor
/// algorithm follows from the information-rich one via a possibilities
/// mapping h″(T, V) = {(T, W) : eval(W) = V} — the discarded sequences are
/// re-introduced as *sets* of possible abstract states. Our executable
/// counterpart maintains a witness W by replaying the same events at level
/// 3 and checks eval(W) = V after every step (see tests/refinement_test).
class ValueMapAlgebra {
 public:
  using State = ValState;
  using Event = algebra::LockEvent;

  explicit ValueMapAlgebra(const action::ActionRegistry* registry)
      : registry_(registry) {}

  State Initial() const {
    return ValState{action::ActionTree(registry_), ValueMap()};
  }

  bool Defined(const State& s, const Event& e) const;
  void Apply(State& s, const Event& e) const;

  const action::ActionRegistry& registry() const { return *registry_; }

 private:
  const action::ActionRegistry* registry_;
};

static_assert(algebra::EventStateAlgebra<ValueMapAlgebra>);

/// eval(V) for a version map (paper §8.1): the value map with the same
/// domain, eval(V)(x, A) = result(x, V(x, A)).
ValueMap Eval(const versionmap::VersionMap& vm,
              const action::ActionRegistry& reg);

/// Candidate generator for random exploration of 𝒜‴.
std::vector<algebra::LockEvent> EventCandidates(const ValState& s);

}  // namespace rnt::valuemap

#endif  // RNT_VALUEMAP_VALUE_MAP_ALGEBRA_H_
