#ifndef RNT_VALUEMAP_VALUE_MAP_H_
#define RNT_VALUEMAP_VALUE_MAP_H_

#include <map>
#include <vector>

#include "action/registry.h"
#include "common/status.h"
#include "common/types.h"

namespace rnt::valuemap {

/// A value map (paper §8.1): a partial mapping V from obj × act to values,
/// retaining only the *latest value* available to each lock holder —
/// the optimization of the level-3 version map that Moss's algorithm
/// actually keeps.
///
/// Well-formedness: V(x, U) is defined for all x (implicitly init(x) = 0
/// when no explicit entry exists), and the defined actions for one object
/// lie on a single ancestor chain.
class ValueMap {
 public:
  using Entry = std::map<ActionId, Value>;

  ValueMap() = default;

  bool IsDefined(ObjectId x, ActionId a) const {
    if (a == kRootAction) return true;
    auto it = objects_.find(x);
    return it != objects_.end() && it->second.count(a) != 0;
  }

  /// V(x, a); the implicit root entry is init(x) = 0. Requires
  /// IsDefined(x, a).
  Value Get(ObjectId x, ActionId a) const {
    auto it = objects_.find(x);
    if (it == objects_.end()) return action::kInitValue;
    auto jt = it->second.find(a);
    if (jt == it->second.end()) return action::kInitValue;
    return jt->second;
  }

  void Set(ObjectId x, ActionId a, Value v) { objects_[x][a] = v; }

  void Erase(ObjectId x, ActionId a) {
    if (a == kRootAction) return;
    auto it = objects_.find(x);
    if (it == objects_.end()) return;
    it->second.erase(a);
    if (it->second.empty()) objects_.erase(it);
  }

  /// The deepest defined action — the principal action for x.
  ActionId PrincipalAction(ObjectId x, const action::ActionRegistry& reg) const;

  /// V(x, principal) — the principal value.
  Value PrincipalValue(ObjectId x, const action::ActionRegistry& reg) const;

  const Entry* EntriesFor(ObjectId x) const {
    auto it = objects_.find(x);
    return it == objects_.end() ? nullptr : &it->second;
  }

  std::vector<ObjectId> TouchedObjects() const;

  /// Chain property check.
  Status CheckWellFormed(const action::ActionRegistry& reg) const;

  /// Canonical equality: an explicit root entry equal to init(x) with no
  /// other holders is equivalent to no entry at all.
  friend bool operator==(const ValueMap& a, const ValueMap& b);

 private:
  static bool IsTrivial(const Entry& e) {
    return e.empty() ||
           (e.size() == 1 && e.begin()->first == kRootAction &&
            e.begin()->second == action::kInitValue);
  }

  std::map<ObjectId, Entry> objects_;
};

}  // namespace rnt::valuemap

#endif  // RNT_VALUEMAP_VALUE_MAP_H_
