#include "valuemap/value_map_algebra.h"

#include "action/serializability.h"

namespace rnt::valuemap {

using algebra::Abort;
using algebra::Commit;
using algebra::Create;
using algebra::LoseLock;
using algebra::Perform;
using algebra::ReleaseLock;

bool ValueMapAlgebra::Defined(const State& s, const Event& e) const {
  if (const auto* c = std::get_if<Create>(&e)) return s.tree.CanCreate(c->a);
  if (const auto* c = std::get_if<Commit>(&e)) return s.tree.CanCommit(c->a);
  if (const auto* c = std::get_if<Abort>(&e)) return s.tree.CanAbort(c->a);
  if (const auto* p = std::get_if<Perform>(&e)) {
    if (!s.tree.CanPerform(p->a)) return false;  // (d11)
    ObjectId x = registry_->Object(p->a);
    if (const auto* entry = s.vmap.EntriesFor(x)) {  // (d12)
      for (const auto& [b, v] : *entry) {
        if (!registry_->IsProperAncestor(b, p->a)) return false;
      }
    }
    return p->u == s.vmap.PrincipalValue(x, *registry_);  // (d13)
  }
  if (const auto* r = std::get_if<ReleaseLock>(&e)) {
    if (r->a == kRootAction) return false;
    return s.vmap.IsDefined(r->x, r->a) && s.tree.IsCommitted(r->a);
  }
  const auto& l = std::get<LoseLock>(e);
  if (l.a == kRootAction) return false;
  return s.vmap.IsDefined(l.x, l.a) && s.tree.Contains(l.a) &&
         !s.tree.IsLive(l.a);
}

void ValueMapAlgebra::Apply(State& s, const Event& e) const {
  if (const auto* c = std::get_if<Create>(&e)) {
    s.tree.ApplyCreate(c->a);
  } else if (const auto* c = std::get_if<Commit>(&e)) {
    s.tree.ApplyCommit(c->a);
  } else if (const auto* c = std::get_if<Abort>(&e)) {
    s.tree.ApplyAbort(c->a);
  } else if (const auto* p = std::get_if<Perform>(&e)) {
    ObjectId x = registry_->Object(p->a);
    s.tree.ApplyPerform(p->a, p->u);
    // (d24): retain only the updated value.
    s.vmap.Set(x, p->a, registry_->UpdateOf(p->a).Apply(p->u));
  } else if (const auto* r = std::get_if<ReleaseLock>(&e)) {
    s.vmap.Set(r->x, registry_->Parent(r->a), s.vmap.Get(r->x, r->a));
    s.vmap.Erase(r->x, r->a);
  } else {
    const auto& l = std::get<LoseLock>(e);
    s.vmap.Erase(l.x, l.a);
  }
}

ValueMap Eval(const versionmap::VersionMap& vm,
              const action::ActionRegistry& reg) {
  ValueMap out;
  for (ObjectId x : vm.TouchedObjects()) {
    for (const auto& [a, seq] : *vm.EntriesFor(x)) {
      out.Set(x, a, action::ResultOf(reg, x, seq));
    }
  }
  return out;
}

std::vector<algebra::LockEvent> EventCandidates(const ValState& s) {
  const action::ActionRegistry& reg = s.tree.registry();
  std::vector<algebra::LockEvent> out;
  for (ActionId a = 1; a < reg.size(); ++a) {
    if (!s.tree.Contains(a)) {
      out.push_back(Create{a});
      continue;
    }
    if (!s.tree.IsActive(a)) continue;
    if (reg.IsAccess(a)) {
      out.push_back(Perform{a, s.vmap.PrincipalValue(reg.Object(a), reg)});
      out.push_back(Abort{a});
    } else {
      out.push_back(Commit{a});
      out.push_back(Abort{a});
    }
  }
  for (ObjectId x : s.vmap.TouchedObjects()) {
    for (const auto& [a, v] : *s.vmap.EntriesFor(x)) {
      if (s.tree.IsCommitted(a)) out.push_back(ReleaseLock{a, x});
      if (s.tree.Contains(a) && !s.tree.IsLive(a)) out.push_back(LoseLock{a, x});
    }
  }
  return out;
}

}  // namespace rnt::valuemap
