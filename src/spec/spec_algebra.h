#ifndef RNT_SPEC_SPEC_ALGEBRA_H_
#define RNT_SPEC_SPEC_ALGEBRA_H_

#include <vector>

#include "action/action_tree.h"
#include "action/serializability.h"
#include "algebra/algebra.h"
#include "algebra/events.h"

namespace rnt::spec {

/// Level 1: the algebra 𝒜 based on action trees (paper §4).
///
/// This algebra *is the specification*: states are action trees, events
/// are create/commit/abort/perform with the paper's preconditions (a1),
/// (b1), (c1), (d1), and there is an implicit precondition on every event
/// that the *result* satisfies the global invariant C — perm(T) remains
/// serializable. Everything a correct nested-transaction implementation
/// may do is a valid computation of this algebra; the four simulation
/// mappings of the paper map every lower level into it.
///
/// The C-check executes the exhaustive serializability oracle on the
/// event's result, so Defined() is exponential in tree size — appropriate
/// for a specification. As the paper notes, only commit and perform can
/// violate C, so the check is skipped for create/abort. Construction with
/// `enforce_serializability = false` yields the "raw" tree algebra, used
/// when serializability of a run is established by other means (Theorem 14
/// via the level-2 refinement) and re-checking would be redundant.
class SpecAlgebra {
 public:
  using State = action::ActionTree;
  using Event = algebra::TreeEvent;

  struct Options {
    /// Enforce the implicit global constraint C on commit/perform.
    bool enforce_serializability = true;
    action::OracleOptions oracle;
  };

  explicit SpecAlgebra(const action::ActionRegistry* registry)
      : SpecAlgebra(registry, Options{}) {}
  SpecAlgebra(const action::ActionRegistry* registry, Options options)
      : registry_(registry), options_(options) {}

  State Initial() const { return action::ActionTree(registry_); }

  bool Defined(const State& s, const Event& e) const;
  void Apply(State& s, const Event& e) const;

  const action::ActionRegistry& registry() const { return *registry_; }

 private:
  const action::ActionRegistry* registry_;
  Options options_;
};

static_assert(algebra::EventStateAlgebra<SpecAlgebra>);

/// Proposes candidate events for random exploration of 𝒜: create/commit/
/// abort for every registered action, and perform events for active
/// accesses with the "natural" value (result of the currently visible
/// datasteps in activation order) plus a few perturbed values so that the
/// oracle-based domain check is actually exercised on both sides.
std::vector<algebra::TreeEvent> EventCandidates(const action::ActionTree& s);

}  // namespace rnt::spec

#endif  // RNT_SPEC_SPEC_ALGEBRA_H_
