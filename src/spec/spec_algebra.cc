#include "spec/spec_algebra.h"

namespace rnt::spec {

using algebra::Abort;
using algebra::Commit;
using algebra::Create;
using algebra::Perform;

bool SpecAlgebra::Defined(const State& s, const Event& e) const {
  // Explicit preconditions first (cheap), then the implicit constraint C
  // on the result. Per the paper, only commit and perform events can
  // cause perm(T) to lose serializability.
  bool needs_c_check = false;
  if (const auto* c = std::get_if<Create>(&e)) {
    if (!s.CanCreate(c->a)) return false;
  } else if (const auto* c = std::get_if<Commit>(&e)) {
    if (!s.CanCommit(c->a)) return false;
    needs_c_check = true;
  } else if (const auto* c = std::get_if<Abort>(&e)) {
    if (!s.CanAbort(c->a)) return false;
  } else if (const auto* c = std::get_if<Perform>(&e)) {
    if (!s.CanPerform(c->a)) return false;
    needs_c_check = true;
  }
  if (!options_.enforce_serializability || !needs_c_check) return true;
  State result = s;
  Apply(result, e);
  return action::IsPermSerializable(result, options_.oracle);
}

void SpecAlgebra::Apply(State& s, const Event& e) const {
  if (const auto* c = std::get_if<Create>(&e)) {
    s.ApplyCreate(c->a);
  } else if (const auto* c = std::get_if<Commit>(&e)) {
    s.ApplyCommit(c->a);
  } else if (const auto* c = std::get_if<Abort>(&e)) {
    s.ApplyAbort(c->a);
  } else if (const auto* c = std::get_if<Perform>(&e)) {
    s.ApplyPerform(c->a, c->u);
  }
}

std::vector<algebra::TreeEvent> EventCandidates(const action::ActionTree& s) {
  const action::ActionRegistry& reg = s.registry();
  std::vector<algebra::TreeEvent> out;
  for (ActionId a = 1; a < reg.size(); ++a) {
    if (!s.Contains(a)) {
      out.push_back(Create{a});
      continue;
    }
    if (!s.IsActive(a)) continue;
    if (reg.IsAccess(a)) {
      // Natural value: replaying the visible datasteps in their
      // activation order (which is what a well-behaved implementation
      // sees), plus perturbations that should usually be rejected by C.
      ObjectId x = reg.Object(a);
      std::vector<ActionId> vis = s.VisibleDatasteps(a, x);
      Value natural = action::ResultOf(reg, x, vis);
      out.push_back(Perform{a, natural});
      out.push_back(Perform{a, natural + 1});
      out.push_back(Abort{a});
    } else {
      out.push_back(Commit{a});
      out.push_back(Abort{a});
    }
  }
  return out;
}

}  // namespace rnt::spec
