#include "algebra/events.h"

#include <sstream>

namespace rnt::algebra {

namespace {

struct Printer {
  std::ostringstream os;
  void operator()(const Create& e) { os << "create(" << e.a << ")"; }
  void operator()(const Commit& e) { os << "commit(" << e.a << ")"; }
  void operator()(const Abort& e) { os << "abort(" << e.a << ")"; }
  void operator()(const Perform& e) {
    os << "perform(" << e.a << ", u=" << e.u << ")";
  }
  void operator()(const ReleaseLock& e) {
    os << "release-lock(" << e.a << ", x" << e.x << ")";
  }
  void operator()(const LoseLock& e) {
    os << "lose-lock(" << e.a << ", x" << e.x << ")";
  }
};

}  // namespace

std::string ToString(const TreeEvent& e) {
  Printer p;
  std::visit(p, e);
  return p.os.str();
}

std::string ToString(const LockEvent& e) {
  Printer p;
  std::visit(p, e);
  return p.os.str();
}

}  // namespace rnt::algebra
