#ifndef RNT_ALGEBRA_EVENTS_H_
#define RNT_ALGEBRA_EVENTS_H_

#include <optional>
#include <string>
#include <variant>

#include "common/types.h"

namespace rnt::algebra {

/// Event payloads shared by the centralized levels (𝒜, 𝒜′, 𝒜″, 𝒜‴).
/// Each struct corresponds to one event family of the paper:
///   create_A, commit_A, abort_A, perform_{A,u},
///   release-lock_{A,x}, lose-lock_{A,x}.
/// Events are tiny value types; an event *sequence* is the paper's Φ.

struct Create {
  ActionId a;
  friend bool operator==(const Create&, const Create&) = default;
};

struct Commit {
  ActionId a;
  friend bool operator==(const Commit&, const Commit&) = default;
};

struct Abort {
  ActionId a;
  friend bool operator==(const Abort&, const Abort&) = default;
};

struct Perform {
  ActionId a;
  Value u;  // the value *seen* by the access (paper: label_T(A) <- u)
  friend bool operator==(const Perform&, const Perform&) = default;
};

struct ReleaseLock {
  ActionId a;
  ObjectId x;
  friend bool operator==(const ReleaseLock&, const ReleaseLock&) = default;
};

struct LoseLock {
  ActionId a;
  ObjectId x;
  friend bool operator==(const LoseLock&, const LoseLock&) = default;
};

/// Events of the level-1 and level-2 algebras (paper §4, §6).
using TreeEvent = std::variant<Create, Commit, Abort, Perform>;

/// Events of the level-3 and level-4 algebras (paper §7, §8): the tree
/// events plus the two lock-manipulation events.
using LockEvent =
    std::variant<Create, Commit, Abort, Perform, ReleaseLock, LoseLock>;

std::string ToString(const TreeEvent& e);
std::string ToString(const LockEvent& e);

/// The interpretation h : Π(level 3/4) -> Π(level 1/2) ∪ {Λ}
/// (paper Lemma 17): tree events map to their namesakes; release-lock and
/// lose-lock map to the null event Λ (represented as nullopt).
inline std::optional<TreeEvent> LockToTreeEvent(const LockEvent& e) {
  if (const auto* c = std::get_if<Create>(&e)) return TreeEvent{*c};
  if (const auto* c = std::get_if<Commit>(&e)) return TreeEvent{*c};
  if (const auto* c = std::get_if<Abort>(&e)) return TreeEvent{*c};
  if (const auto* c = std::get_if<Perform>(&e)) return TreeEvent{*c};
  return std::nullopt;  // Λ
}

}  // namespace rnt::algebra

#endif  // RNT_ALGEBRA_EVENTS_H_
