#ifndef RNT_ALGEBRA_ALGEBRA_H_
#define RNT_ALGEBRA_ALGEBRA_H_

#include <concepts>
#include <cstddef>
#include <functional>
#include <optional>
#include <span>
#include <sstream>
#include <vector>

#include "common/random.h"
#include "common/status.h"

namespace rnt::algebra {

/// An event-state algebra 𝒜 = (A, σ, Π) (paper §2.1), executable form.
///
/// A conforming type provides:
///   * `State`              — the state set A (a value type);
///   * `Event`              — the events Π (a value type, usually a variant);
///   * `State Initial()`    — the initial state σ;
///   * `bool Defined(s, e)` — whether s ∈ domain(e);
///   * `void Apply(s, e)`   — the (partial) unary operation, callable only
///                            when Defined(s, e).
///
/// The algebra object itself carries static configuration (the action
/// registry, node count, oracle options); states carry everything that
/// evolves.
template <typename A>
concept EventStateAlgebra =
    requires(const A& alg, typename A::State& s, const typename A::State& cs,
             const typename A::Event& e) {
      { alg.Initial() } -> std::same_as<typename A::State>;
      { alg.Defined(cs, e) } -> std::same_as<bool>;
      { alg.Apply(s, e) };
    };

/// Replays Φ from σ; returns the result state, or nullopt if Φ is not
/// valid (some prefix leaves the domain of the next event).
template <EventStateAlgebra A>
std::optional<typename A::State> Run(const A& alg,
                                     std::span<const typename A::Event> seq) {
  typename A::State s = alg.Initial();
  for (const auto& e : seq) {
    if (!alg.Defined(s, e)) return std::nullopt;
    alg.Apply(s, e);
  }
  return s;
}

/// True iff Φ is a valid event sequence of the algebra (paper §2.1).
template <EventStateAlgebra A>
bool IsValidSequence(const A& alg, std::span<const typename A::Event> seq) {
  return Run(alg, seq).has_value();
}

/// The result of a random exploration of an algebra.
template <typename A>
struct RandomRunResult {
  std::vector<typename A::Event> events;
  typename A::State state;
};

/// Drives an algebra with randomly chosen enabled events.
///
/// `candidates(state)` proposes a set of events (level modules provide
/// generators tuned to produce interesting trees); the driver filters by
/// `Defined` and applies a uniformly random enabled one, for up to `steps`
/// steps or until no candidate is enabled. Every computation produced this
/// way is, by construction, a valid computation of the algebra — random
/// runs are the raw material for the property tests and the refinement
/// checks.
template <EventStateAlgebra A, typename CandidateFn>
RandomRunResult<A> RandomRun(const A& alg, CandidateFn&& candidates, Rng& rng,
                             std::size_t steps) {
  RandomRunResult<A> out{.events = {}, .state = alg.Initial()};
  for (std::size_t i = 0; i < steps; ++i) {
    std::vector<typename A::Event> enabled;
    for (auto& e : candidates(out.state)) {
      if (alg.Defined(out.state, e)) enabled.push_back(std::move(e));
    }
    if (enabled.empty()) break;
    const auto& pick = enabled[rng.Below(enabled.size())];
    alg.Apply(out.state, pick);
    out.events.push_back(pick);
  }
  return out;
}

/// Checks that an interpretation h is a *simulation* of `upper` by
/// `lower` on one concrete computation (paper §2.1/Lemma 3, made
/// executable): replays `lower_seq` in the lower algebra while mapping
/// each event through `event_map` (nullopt = Λ) and replaying the image in
/// the upper algebra, failing if any image event is undefined — i.e.,
/// mechanically discharging possibilities-mapping property (b) on this
/// run. After every step, `state_check(lower_state, upper_state)` may
/// assert the state correspondence (possibilities-mapping properties
/// (c)/(d); pass a trivial lambda to skip).
///
/// Returns OK iff h(Φ') is valid in the upper algebra and every state
/// check passes.
template <EventStateAlgebra L, EventStateAlgebra U, typename EventMap,
          typename StateCheck>
Status CheckRefinement(const L& lower, const U& upper,
                       std::span<const typename L::Event> lower_seq,
                       EventMap&& event_map, StateCheck&& state_check) {
  typename L::State ls = lower.Initial();
  typename U::State us = upper.Initial();
  {
    Status s = state_check(ls, us);
    if (!s.ok()) return s;
  }
  std::size_t step = 0;
  for (const auto& le : lower_seq) {
    if (!lower.Defined(ls, le)) {
      std::ostringstream os;
      os << "lower event #" << step << " not defined (invalid lower run)";
      return Status::FailedPrecondition(os.str());
    }
    lower.Apply(ls, le);
    std::optional<typename U::Event> ue = event_map(le);
    if (ue.has_value()) {
      if (!upper.Defined(us, *ue)) {
        std::ostringstream os;
        os << "refinement violated at step " << step
           << ": image event not defined in upper algebra";
        return Status::FailedPrecondition(os.str());
      }
      upper.Apply(us, *ue);
    }
    Status s = state_check(ls, us);
    if (!s.ok()) {
      std::ostringstream os;
      os << "state correspondence violated after step " << step << ": "
         << s.message();
      return Status::Internal(os.str());
    }
    ++step;
  }
  return Status::Ok();
}

/// Convenience overload without a state check.
template <EventStateAlgebra L, EventStateAlgebra U, typename EventMap>
Status CheckRefinement(const L& lower, const U& upper,
                       std::span<const typename L::Event> lower_seq,
                       EventMap&& event_map) {
  return CheckRefinement(
      lower, upper, lower_seq, std::forward<EventMap>(event_map),
      [](const typename L::State&, const typename U::State&) {
        return Status::Ok();
      });
}

/// Maps a lower-level event sequence through an interpretation, dropping
/// Λ images — the homomorphic extension h(Φ') of paper §2.1.
template <typename UpperEvent, typename LowerEvent, typename EventMap>
std::vector<UpperEvent> MapSequence(std::span<const LowerEvent> seq,
                                    EventMap&& event_map) {
  std::vector<UpperEvent> out;
  out.reserve(seq.size());
  for (const auto& e : seq) {
    if (auto u = event_map(e); u.has_value()) out.push_back(*u);
  }
  return out;
}

}  // namespace rnt::algebra

#endif  // RNT_ALGEBRA_ALGEBRA_H_
