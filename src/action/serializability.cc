#include "action/serializability.h"

#include <algorithm>

namespace rnt::action {

Value ResultOf(const ActionRegistry& registry, ObjectId x,
               std::span<const ActionId> seq) {
  Value v = kInitValue;
  for (ActionId a : seq) {
    if (registry.IsAccess(a) && registry.Object(a) == x) {
      v = registry.UpdateOf(a).Apply(v);
    }
  }
  return v;
}

namespace {

/// Shared state for the exhaustive search over sibling permutations.
class OracleSearch {
 public:
  OracleSearch(const ActionTree& tree, const OracleOptions& options)
      : tree_(tree), reg_(tree.registry()), options_(options) {
    // Gather sibling groups (children sets within the tree). Groups of
    // size 1 are trivially ordered; only groups of size >= 2 need
    // enumeration, but every vertex gets a position so induced-order
    // comparisons are uniform.
    for (ActionId a : tree_.Vertices()) {
      const auto& kids = tree_.ChildrenIn(a);
      if (kids.empty()) continue;
      if (kids.size() == 1) {
        pos_[kids[0]] = 0;
      } else {
        groups_.push_back(kids);
      }
    }
  }

  std::optional<SiblingOrder> Run() {
    found_ = false;
    Recurse(0);
    if (!found_) return std::nullopt;
    return witness_;
  }

 private:
  /// pos_-based induced order: A before B iff their sibling-level
  /// projections under lca(A,B) compare that way (paper §3.4).
  bool InducedBefore(ActionId a, ActionId b) const {
    ActionId l = reg_.Lca(a, b);
    ActionId pa = reg_.ChildToward(l, a);
    ActionId pb = reg_.ChildToward(l, b);
    return pos_.at(pa) < pos_.at(pb);
  }

  /// Checks the serializing condition (and optional data-order
  /// consistency) under the current complete `pos_` assignment.
  bool CheckAssignment() {
    // Optional: induced must be consistent with the provided data order.
    if (options_.data_order != nullptr) {
      for (const auto& [x, seq] : *options_.data_order) {
        for (std::size_t i = 0; i + 1 < seq.size(); ++i) {
          // data order is total per object and induced is total on
          // datasteps, so consecutive pairs suffice.
          if (!InducedBefore(seq[i], seq[i + 1])) return false;
        }
      }
    }
    // label_T(A) = result(x, preds_{T,p}(A)) for all datasteps A.
    for (ObjectId x : tree_.TouchedObjects()) {
      for (ActionId a : tree_.Datasteps(x)) {
        std::vector<ActionId> preds;
        for (ActionId b : tree_.Datasteps(x)) {
          if (b == a) continue;
          if (tree_.IsVisibleTo(b, a) && InducedBefore(b, a)) {
            preds.push_back(b);
          }
        }
        std::sort(preds.begin(), preds.end(),
                  [&](ActionId p, ActionId q) { return InducedBefore(p, q); });
        if (tree_.LabelOf(a) != ResultOf(reg_, x, preds)) return false;
      }
    }
    return true;
  }

  void Recurse(std::size_t gi) {
    if (found_ || attempts_ > options_.max_assignments) return;
    if (gi == groups_.size()) {
      ++attempts_;
      if (CheckAssignment()) {
        found_ = true;
        // Record the witness: current permutation of every group, plus
        // singleton groups as-is.
        witness_.order_by_parent.clear();
        for (ActionId a : tree_.Vertices()) {
          const auto& kids = tree_.ChildrenIn(a);
          if (kids.empty()) continue;
          std::vector<ActionId> ordered(kids);
          std::sort(ordered.begin(), ordered.end(),
                    [&](ActionId p, ActionId q) {
                      return pos_.at(p) < pos_.at(q);
                    });
          witness_.order_by_parent[a] = std::move(ordered);
        }
      }
      return;
    }
    std::vector<ActionId> perm = groups_[gi];
    std::sort(perm.begin(), perm.end());
    do {
      for (std::size_t i = 0; i < perm.size(); ++i) pos_[perm[i]] = i;
      Recurse(gi + 1);
      if (found_) return;
    } while (std::next_permutation(perm.begin(), perm.end()) &&
             attempts_ <= options_.max_assignments);
  }

  const ActionTree& tree_;
  const ActionRegistry& reg_;
  const OracleOptions& options_;
  std::vector<std::vector<ActionId>> groups_;
  std::unordered_map<ActionId, std::size_t> pos_;
  std::uint64_t attempts_ = 0;
  bool found_ = false;
  SiblingOrder witness_;
};

}  // namespace

std::optional<SiblingOrder> FindSerializingOrder(const ActionTree& tree,
                                                 const OracleOptions& options) {
  OracleSearch search(tree, options);
  return search.Run();
}

bool IsSerializable(const ActionTree& tree, const OracleOptions& options) {
  return FindSerializingOrder(tree, options).has_value();
}

bool IsPermSerializable(const ActionTree& tree, const OracleOptions& options) {
  return IsSerializable(tree.Perm(), options);
}

}  // namespace rnt::action
