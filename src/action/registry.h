#ifndef RNT_ACTION_REGISTRY_H_
#define RNT_ACTION_REGISTRY_H_

#include <cassert>
#include <cstdint>
#include <vector>

#include "action/update.h"
#include "common/types.h"

namespace rnt::action {

/// The universal set of actions, configured a priori into a tree
/// (the paper's `act` with `parent`, `accesses`, `object`, `update`).
///
/// The paper treats the universal action tree as a naming scheme: an
/// action's name encodes its position in the nesting tree and, for
/// accesses (leaves), the object it touches and the function it applies.
/// The registry realizes that naming scheme: ids are dense indices, the
/// root U is id 0, and an action's parent/object/update are immutable
/// after registration. Which of these potential actions actually get
/// *activated* in an execution is recorded separately, in an ActionTree.
///
/// Invariants enforced:
///  * accesses are leaves — an access can never be given a child;
///  * parents precede children (a parent must already be registered);
///  * the root U is never an access.
///
/// The registry is not thread-safe; concurrent engines build a private
/// registry from their execution trace (see txn/trace.h).
class ActionRegistry {
 public:
  ActionRegistry() {
    // The virtual root U.
    nodes_.push_back(Node{kInvalidAction, /*depth=*/0, /*object=*/0,
                          Update::Read(), /*is_access=*/false});
  }

  /// Registers a non-access (inner) action under `parent`.
  ActionId NewAction(ActionId parent) {
    assert(parent < nodes_.size());
    assert(!nodes_[parent].is_access && "accesses are leaves");
    nodes_.push_back(Node{parent, nodes_[parent].depth + 1, /*object=*/0,
                          Update::Read(), /*is_access=*/false});
    return static_cast<ActionId>(nodes_.size() - 1);
  }

  /// Registers an access (leaf) to `object` applying `update`.
  /// Accesses may not be children of the root U (the paper assumes
  /// U itself is not an access and top-level actions are transactions,
  /// but children of U performing accesses directly are permitted by the
  /// model; we allow them for generality).
  ActionId NewAccess(ActionId parent, ObjectId object, Update update) {
    assert(parent < nodes_.size());
    assert(!nodes_[parent].is_access && "accesses are leaves");
    nodes_.push_back(
        Node{parent, nodes_[parent].depth + 1, object, update,
             /*is_access=*/true});
    return static_cast<ActionId>(nodes_.size() - 1);
  }

  std::size_t size() const { return nodes_.size(); }
  bool Valid(ActionId a) const { return a < nodes_.size(); }

  /// Parent of `a`; kInvalidAction for the root U.
  ActionId Parent(ActionId a) const {
    assert(Valid(a));
    return nodes_[a].parent;
  }

  /// Depth of `a` (root U has depth 0).
  std::uint32_t Depth(ActionId a) const {
    assert(Valid(a));
    return nodes_[a].depth;
  }

  bool IsAccess(ActionId a) const {
    assert(Valid(a));
    return nodes_[a].is_access;
  }

  /// The object accessed by access `a` (the paper's object(A)).
  ObjectId Object(ActionId a) const {
    assert(Valid(a) && nodes_[a].is_access);
    return nodes_[a].object;
  }

  /// The update function of access `a` (the paper's update(A)).
  const Update& UpdateOf(ActionId a) const {
    assert(Valid(a) && nodes_[a].is_access);
    return nodes_[a].update;
  }

  /// True iff `anc` is an ancestor of `a` (reflexive: anc(A) contains A).
  bool IsAncestor(ActionId anc, ActionId a) const {
    assert(Valid(anc) && Valid(a));
    while (nodes_[a].depth > nodes_[anc].depth) a = nodes_[a].parent;
    return a == anc;
  }

  /// True iff `anc` is a proper ancestor of `a`.
  bool IsProperAncestor(ActionId anc, ActionId a) const {
    return anc != a && IsAncestor(anc, a);
  }

  /// Least common ancestor of `a` and `b` (the paper's lca(A, B)).
  ActionId Lca(ActionId a, ActionId b) const {
    assert(Valid(a) && Valid(b));
    while (nodes_[a].depth > nodes_[b].depth) a = nodes_[a].parent;
    while (nodes_[b].depth > nodes_[a].depth) b = nodes_[b].parent;
    while (a != b) {
      a = nodes_[a].parent;
      b = nodes_[b].parent;
    }
    return a;
  }

  /// The chain a, parent(a), ..., U (inclusive at both ends).
  std::vector<ActionId> AncestorChain(ActionId a) const {
    assert(Valid(a));
    std::vector<ActionId> chain;
    chain.reserve(nodes_[a].depth + 1);
    for (;;) {
      chain.push_back(a);
      if (a == kRootAction) break;
      a = nodes_[a].parent;
    }
    return chain;
  }

  /// The child of `anc` that is an ancestor of `a`. Requires `anc` to be a
  /// proper ancestor of `a`. Used to project datasteps up to sibling level
  /// when computing induced orders.
  ActionId ChildToward(ActionId anc, ActionId a) const {
    assert(IsProperAncestor(anc, a));
    while (nodes_[a].parent != anc) a = nodes_[a].parent;
    return a;
  }

 private:
  struct Node {
    ActionId parent;
    std::uint32_t depth;
    ObjectId object;  // meaningful only when is_access
    Update update;    // meaningful only when is_access
    bool is_access;
  };

  std::vector<Node> nodes_;
};

/// Initial value of every object: the library-wide convention is
/// init(x) = 0 for all x. The paper's distinguished init(x) is arbitrary;
/// fixing it to zero loses no generality because a leading write access
/// reaches any other initial value. (Documented in DESIGN.md §2.)
inline constexpr Value kInitValue = 0;

}  // namespace rnt::action

#endif  // RNT_ACTION_REGISTRY_H_
