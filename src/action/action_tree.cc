#include "action/action_tree.h"

#include <algorithm>
#include <sstream>

namespace rnt::action {

namespace {
const std::vector<ActionId> kEmptyIdList;
}  // namespace

std::string_view ActionStatusName(ActionStatus s) {
  switch (s) {
    case ActionStatus::kActive:
      return "active";
    case ActionStatus::kCommitted:
      return "committed";
    case ActionStatus::kAborted:
      return "aborted";
  }
  return "?";
}

ActionTree::ActionTree(const ActionRegistry* registry) : registry_(registry) {
  vertices_.push_back(kRootAction);
  info_[kRootAction] = VertexInfo{ActionStatus::kActive};
}

const std::vector<ActionId>& ActionTree::ChildrenIn(ActionId parent) const {
  auto it = children_.find(parent);
  return it == children_.end() ? kEmptyIdList : it->second;
}

const std::vector<ActionId>& ActionTree::Datasteps(ObjectId x) const {
  auto it = datasteps_.find(x);
  return it == datasteps_.end() ? kEmptyIdList : it->second;
}

std::vector<ObjectId> ActionTree::TouchedObjects() const {
  std::vector<ObjectId> out;
  out.reserve(datasteps_.size());
  for (const auto& [x, steps] : datasteps_) {
    if (!steps.empty()) out.push_back(x);
  }
  std::sort(out.begin(), out.end());
  return out;
}

bool ActionTree::CanCreate(ActionId a) const {
  if (a == kRootAction || !registry_->Valid(a)) return false;
  if (Contains(a)) return false;  // (a11)
  ActionId p = registry_->Parent(a);
  // (a12): parent ∈ vertices_T - committed_T. An aborted parent is
  // explicitly allowed by the paper (creation and abort may occur at
  // different nodes of a distributed system).
  auto it = info_.find(p);
  return it != info_.end() && it->second.status != ActionStatus::kCommitted;
}

void ActionTree::ApplyCreate(ActionId a) {
  vertices_.push_back(a);
  info_[a] = VertexInfo{ActionStatus::kActive};
  children_[registry_->Parent(a)].push_back(a);
}

bool ActionTree::CanCommit(ActionId a) const {
  if (a == kRootAction || !registry_->Valid(a)) return false;
  if (registry_->IsAccess(a)) return false;  // (b) applies to nonaccesses
  if (!IsActive(a)) return false;            // (b11)
  for (ActionId c : ChildrenIn(a)) {         // (b12)
    if (!IsDone(c)) return false;
  }
  return true;
}

void ActionTree::ApplyCommit(ActionId a) {
  info_.at(a).status = ActionStatus::kCommitted;
}

bool ActionTree::CanAbort(ActionId a) const {
  if (a == kRootAction || !registry_->Valid(a)) return false;
  return IsActive(a);  // (c11)
}

void ActionTree::ApplyAbort(ActionId a) {
  info_.at(a).status = ActionStatus::kAborted;
}

bool ActionTree::CanPerform(ActionId a) const {
  if (!registry_->Valid(a) || !registry_->IsAccess(a)) return false;
  return IsActive(a);  // (d11)
}

void ActionTree::ApplyPerform(ActionId a, Value u) {
  VertexInfo& v = info_.at(a);
  v.status = ActionStatus::kCommitted;
  v.label = u;
  v.has_label = true;
  datasteps_[registry_->Object(a)].push_back(a);
}

bool ActionTree::IsVisibleTo(ActionId b, ActionId a) const {
  // B ∈ visible_T(A) iff anc(B) ∩ proper-desc(lca(A,B)) ⊆ committed_T.
  ActionId l = registry_->Lca(a, b);
  for (ActionId c = b; c != l; c = registry_->Parent(c)) {
    if (StatusOf(c) != ActionStatus::kCommitted) return false;
  }
  return true;
}

std::vector<ActionId> ActionTree::VisibleDatasteps(ActionId a,
                                                   ObjectId x) const {
  std::vector<ActionId> out;
  for (ActionId b : Datasteps(x)) {
    if (IsVisibleTo(b, a)) out.push_back(b);
  }
  return out;
}

bool ActionTree::IsLive(ActionId a) const {
  for (ActionId c = a;; c = registry_->Parent(c)) {
    if (StatusOf(c) == ActionStatus::kAborted) return false;
    if (c == kRootAction) return true;
  }
}

ActionTree ActionTree::Perm() const {
  ActionTree out(registry_);
  // vertices_{perm(T)} = visible_T(U); iterating in activation order keeps
  // parents before children, so ApplyCreate-style insertion stays closed.
  for (ActionId a : vertices_) {
    if (a == kRootAction) continue;
    if (!IsVisibleTo(a, kRootAction)) continue;
    out.vertices_.push_back(a);
    out.info_[a] = info_.at(a);
    out.children_[registry_->Parent(a)].push_back(a);
  }
  // Datasteps must keep their *perform* order (data_T is the sequence
  // order, and version compatibility folds along it) — which need not be
  // the activation order when creates run ahead of performs, as in the
  // parallel runner.
  for (const auto& [x, steps] : datasteps_) {
    for (ActionId a : steps) {
      if (out.Contains(a)) out.datasteps_[x].push_back(a);
    }
  }
  return out;
}

std::string ActionTree::ToString() const {
  std::ostringstream os;
  for (ActionId a : vertices_) {
    os << a << " (parent " << (a == kRootAction ? -1
                                                : static_cast<long>(
                                                      registry_->Parent(a)))
       << ") " << ActionStatusName(StatusOf(a));
    if (registry_->Valid(a) && a != kRootAction && registry_->IsAccess(a)) {
      os << " access[x" << registry_->Object(a) << "]";
      if (HasLabel(a)) os << " label=" << LabelOf(a);
    }
    os << "\n";
  }
  return os.str();
}

bool operator==(const ActionTree& x, const ActionTree& y) {
  if (x.vertices_ != y.vertices_) return false;
  for (ActionId a : x.vertices_) {
    const auto& ix = x.info_.at(a);
    const auto& iy = y.info_.at(a);
    if (ix.status != iy.status || ix.has_label != iy.has_label ||
        (ix.has_label && ix.label != iy.label)) {
      return false;
    }
  }
  return x.datasteps_ == y.datasteps_;
}

}  // namespace rnt::action
