#ifndef RNT_ACTION_UPDATE_H_
#define RNT_ACTION_UPDATE_H_

#include <cstdint>
#include <string>

#include "common/types.h"

namespace rnt::action {

/// The update function attached to an access (the paper's `update(A)`).
///
/// The paper allows an arbitrary function values(x) -> values(x) per
/// access. We instantiate a small closed algebra over int64 values that is
/// deterministic, value-semantic, and hashable:
///
///  * `kRead`   — the identity function: the paper's "read accesses".
///  * `kWrite`  — a constant function:   the paper's "write accesses".
///  * `kAdd`    — v + a (commutative, models counters).
///  * `kXorConst` — v ^ a (self-inverse, useful in failure tests).
///  * `kMulAdd` — v * a + b (non-commuting; makes serialization order
///    observable in values, which the pure read/write pair cannot).
///
/// Because the access's "name" is assumed by the paper to encode any
/// dependence on earlier steps of its transaction, the update function is
/// fixed at access-creation time, exactly as in the paper.
struct Update {
  enum class Kind : std::uint8_t { kRead, kWrite, kAdd, kXorConst, kMulAdd };

  Kind kind = Kind::kRead;
  Value a = 0;
  Value b = 0;

  static Update Read() { return Update{Kind::kRead, 0, 0}; }
  static Update Write(Value c) { return Update{Kind::kWrite, c, 0}; }
  static Update Add(Value d) { return Update{Kind::kAdd, d, 0}; }
  static Update XorConst(Value m) { return Update{Kind::kXorConst, m, 0}; }
  static Update MulAdd(Value m, Value c) {
    return Update{Kind::kMulAdd, m, c};
  }

  /// Applies the function to `v` (wrapping arithmetic; overflow is
  /// well-defined and irrelevant to correctness properties).
  Value Apply(Value v) const {
    switch (kind) {
      case Kind::kRead:
        return v;
      case Kind::kWrite:
        return a;
      case Kind::kAdd:
        return static_cast<Value>(static_cast<std::uint64_t>(v) +
                                  static_cast<std::uint64_t>(a));
      case Kind::kXorConst:
        return v ^ a;
      case Kind::kMulAdd:
        return static_cast<Value>(static_cast<std::uint64_t>(v) *
                                      static_cast<std::uint64_t>(a) +
                                  static_cast<std::uint64_t>(b));
    }
    return v;
  }

  /// True for the identity function — the Moss read/write extension treats
  /// these accesses as read-lockable (see lock/).
  bool IsRead() const { return kind == Kind::kRead; }

  std::string ToString() const;

  friend bool operator==(const Update& x, const Update& y) {
    return x.kind == y.kind && x.a == y.a && x.b == y.b;
  }
};

}  // namespace rnt::action

#endif  // RNT_ACTION_UPDATE_H_
