#include "action/update.h"

#include <sstream>

namespace rnt::action {

std::string Update::ToString() const {
  std::ostringstream os;
  switch (kind) {
    case Kind::kRead:
      os << "read";
      break;
    case Kind::kWrite:
      os << "write(" << a << ")";
      break;
    case Kind::kAdd:
      os << "add(" << a << ")";
      break;
    case Kind::kXorConst:
      os << "xor(" << a << ")";
      break;
    case Kind::kMulAdd:
      os << "muladd(" << a << "," << b << ")";
      break;
  }
  return os.str();
}

}  // namespace rnt::action
