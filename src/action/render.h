#ifndef RNT_ACTION_RENDER_H_
#define RNT_ACTION_RENDER_H_

#include <string>

#include "action/action_tree.h"

namespace rnt::action {

/// Rendering options for Graphviz export.
struct DotOptions {
  /// Include the per-object datastep order as dashed edges.
  bool show_data_order = true;
  /// Mark orphaned vertices (live == false, status != aborted).
  bool highlight_orphans = true;
  std::string graph_name = "action_tree";
};

/// Renders an action tree as a Graphviz digraph: tree edges parent->child,
/// statuses as colors (active = white, committed = green, aborted = red),
/// access labels showing object/update/value-seen, and optionally the
/// per-object data order. Paste into `dot -Tsvg` to visualize an
/// execution — invaluable when a serializability check fails.
std::string ToDot(const ActionTree& tree, const DotOptions& options = {});

/// One-line-per-vertex indented text rendering (depth-first), a compact
/// alternative to ToDot for logs and test diagnostics.
std::string ToIndentedString(const ActionTree& tree);

}  // namespace rnt::action

#endif  // RNT_ACTION_RENDER_H_
