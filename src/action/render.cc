#include "action/render.h"

#include <sstream>

namespace rnt::action {

namespace {

const char* FillFor(const ActionTree& t, ActionId a) {
  switch (t.StatusOf(a)) {
    case ActionStatus::kActive:
      return "white";
    case ActionStatus::kCommitted:
      return "palegreen";
    case ActionStatus::kAborted:
      return "lightcoral";
  }
  return "white";
}

void AppendVertexLabel(const ActionTree& t, ActionId a, std::ostream& os) {
  const ActionRegistry& reg = t.registry();
  if (a == kRootAction) {
    os << "U";
    return;
  }
  os << a;
  if (reg.IsAccess(a)) {
    os << "\\nx" << reg.Object(a) << " " << reg.UpdateOf(a).ToString();
    if (t.HasLabel(a)) os << "\\nsaw " << t.LabelOf(a);
  }
}

}  // namespace

std::string ToDot(const ActionTree& tree, const DotOptions& options) {
  const ActionRegistry& reg = tree.registry();
  std::ostringstream os;
  os << "digraph " << options.graph_name << " {\n";
  os << "  node [shape=box, style=filled];\n";
  for (ActionId a : tree.Vertices()) {
    os << "  n" << a << " [label=\"";
    AppendVertexLabel(tree, a, os);
    os << "\", fillcolor=" << FillFor(tree, a);
    if (options.highlight_orphans && a != kRootAction && !tree.IsLive(a) &&
        !tree.IsAborted(a)) {
      os << ", color=red, penwidth=2";
    }
    os << "];\n";
  }
  for (ActionId a : tree.Vertices()) {
    if (a == kRootAction) continue;
    os << "  n" << reg.Parent(a) << " -> n" << a << ";\n";
  }
  if (options.show_data_order) {
    for (ObjectId x : tree.TouchedObjects()) {
      const auto& steps = tree.Datasteps(x);
      for (std::size_t i = 0; i + 1 < steps.size(); ++i) {
        os << "  n" << steps[i] << " -> n" << steps[i + 1]
           << " [style=dashed, constraint=false, label=\"x" << x << "\"];\n";
      }
    }
  }
  os << "}\n";
  return os.str();
}

std::string ToIndentedString(const ActionTree& tree) {
  const ActionRegistry& reg = tree.registry();
  std::ostringstream os;
  // Iterative DFS over the activated tree, children in activation order.
  std::vector<std::pair<ActionId, int>> stack{{kRootAction, 0}};
  while (!stack.empty()) {
    auto [a, depth] = stack.back();
    stack.pop_back();
    for (int i = 0; i < depth; ++i) os << "  ";
    if (a == kRootAction) {
      os << "U";
    } else {
      os << a;
    }
    os << " [" << ActionStatusName(tree.StatusOf(a)) << "]";
    if (a != kRootAction && reg.IsAccess(a)) {
      os << " x" << reg.Object(a) << " " << reg.UpdateOf(a).ToString();
      if (tree.HasLabel(a)) os << " saw=" << tree.LabelOf(a);
    }
    if (a != kRootAction && !tree.IsLive(a) && !tree.IsAborted(a)) {
      os << " (orphan)";
    }
    os << "\n";
    const auto& kids = tree.ChildrenIn(a);
    for (auto it = kids.rbegin(); it != kids.rend(); ++it) {
      stack.emplace_back(*it, depth + 1);
    }
  }
  return os.str();
}

}  // namespace rnt::action
