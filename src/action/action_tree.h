#ifndef RNT_ACTION_ACTION_TREE_H_
#define RNT_ACTION_ACTION_TREE_H_

#include <cstdint>
#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "action/registry.h"
#include "common/types.h"

namespace rnt::action {

/// Status classification of an activated action (paper §3.2).
enum class ActionStatus : std::uint8_t {
  kActive = 0,
  kCommitted = 1,  // committed *relative to its parent*
  kAborted = 2,
};

std::string_view ActionStatusName(ActionStatus s);

/// An action tree T (paper §3.2): the snapshot of one execution.
///
/// Components, exactly as in the paper:
///  * vertices_T — the actions activated so far (closed under parent);
///  * a partition of vertices_T into active/committed/aborted;
///  * label_T : datasteps_T -> values (the value *seen* by each committed
///    access; the value written is deducible via update(A)).
///
/// The tree also memoizes derived structure the paper uses constantly:
/// per-parent children lists (for the commit precondition b12) and the
/// per-object datastep list in perform order (which level 2 reuses as the
/// data_T total order per object).
///
/// ActionTree is a value type: algebras copy states freely when checking
/// event domains and refinements. It holds a non-owning pointer to the
/// ActionRegistry, which must outlive it.
class ActionTree {
 public:
  /// The trivial tree: the single vertex U with status 'active'.
  explicit ActionTree(const ActionRegistry* registry);

  const ActionRegistry& registry() const { return *registry_; }

  // ------------------------------------------------------------------
  // Membership and status.

  bool Contains(ActionId a) const { return info_.count(a) != 0; }
  /// Requires Contains(a).
  ActionStatus StatusOf(ActionId a) const { return info_.at(a).status; }
  bool IsActive(ActionId a) const {
    auto it = info_.find(a);
    return it != info_.end() && it->second.status == ActionStatus::kActive;
  }
  bool IsCommitted(ActionId a) const {
    auto it = info_.find(a);
    return it != info_.end() && it->second.status == ActionStatus::kCommitted;
  }
  bool IsAborted(ActionId a) const {
    auto it = info_.find(a);
    return it != info_.end() && it->second.status == ActionStatus::kAborted;
  }
  /// done_T = committed_T ∪ aborted_T.
  bool IsDone(ActionId a) const {
    auto it = info_.find(a);
    return it != info_.end() && it->second.status != ActionStatus::kActive;
  }

  /// Vertices in activation order (root first).
  const std::vector<ActionId>& Vertices() const { return vertices_; }
  std::size_t size() const { return vertices_.size(); }

  /// Children of `parent` that are in the tree, in activation order.
  const std::vector<ActionId>& ChildrenIn(ActionId parent) const;

  /// datasteps_T(x): committed accesses to x, in perform order. Level 2
  /// adopts this sequence as the total order data_T restricted to x.
  const std::vector<ActionId>& Datasteps(ObjectId x) const;

  /// All objects with at least one datastep.
  std::vector<ObjectId> TouchedObjects() const;

  /// label_T(A): the value seen by committed access A.
  /// Requires A ∈ datasteps_T.
  Value LabelOf(ActionId a) const { return info_.at(a).label; }
  bool HasLabel(ActionId a) const {
    auto it = info_.find(a);
    return it != info_.end() && it->second.has_label;
  }

  // ------------------------------------------------------------------
  // Level-1 events (paper §4 (a)-(d)), *without* the global constraint C.
  // The spec algebra layers C on top via the serializability oracle.

  /// Precondition (a1): A ∉ vertices, parent(A) ∈ vertices - committed.
  bool CanCreate(ActionId a) const;
  /// Effect (a2): add A with status 'active'.
  void ApplyCreate(ActionId a);

  /// Precondition (b1): A nonaccess, A active, children(A)∩vertices ⊆ done.
  bool CanCommit(ActionId a) const;
  /// Effect (b2): status(A) <- committed.
  void ApplyCommit(ActionId a);

  /// Precondition (c1): A active. (The paper's level-1 abort applies to
  /// any active action, including an unperformed access.)
  bool CanAbort(ActionId a) const;
  /// Effect (c2): status(A) <- aborted.
  void ApplyAbort(ActionId a);

  /// Precondition (d1): A an access, A active.
  bool CanPerform(ActionId a) const;
  /// Effect (d2): status(A) <- committed, label(A) <- u; A is appended to
  /// the per-object datastep order.
  void ApplyPerform(ActionId a, Value u);

  // ------------------------------------------------------------------
  // Visibility and liveness (paper §3.3).

  /// True iff B ∈ visible_T(A): every ancestor of B that is a proper
  /// descendant of lca(A,B) is committed. Requires both in the tree.
  bool IsVisibleTo(ActionId b, ActionId a) const;

  /// visible_T(A, x): the visible datasteps on x, in datastep order.
  std::vector<ActionId> VisibleDatasteps(ActionId a, ObjectId x) const;

  /// A is live iff anc(A) ∩ aborted_T = ∅.
  bool IsLive(ActionId a) const;

  // ------------------------------------------------------------------
  // perm(T) (paper §3.4): the subtree of actions visible to U — those
  // whose effects are (or can become) permanent.

  /// Builds perm(T) as a fresh ActionTree over the same registry.
  ActionTree Perm() const;

  /// True iff A ∈ vertices_{perm(T)} = visible_T(U).
  bool InPerm(ActionId a) const { return IsVisibleTo(a, kRootAction); }

  /// Debug rendering (one line per vertex).
  std::string ToString() const;

  friend bool operator==(const ActionTree& x, const ActionTree& y);

 private:
  struct VertexInfo {
    ActionStatus status;
    Value label = 0;
    bool has_label = false;
  };

  const ActionRegistry* registry_;
  std::vector<ActionId> vertices_;
  std::unordered_map<ActionId, VertexInfo> info_;
  std::unordered_map<ActionId, std::vector<ActionId>> children_;
  std::unordered_map<ObjectId, std::vector<ActionId>> datasteps_;
};

}  // namespace rnt::action

#endif  // RNT_ACTION_ACTION_TREE_H_
