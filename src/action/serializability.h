#ifndef RNT_ACTION_SERIALIZABILITY_H_
#define RNT_ACTION_SERIALIZABILITY_H_

#include <cstdint>
#include <optional>
#include <span>
#include <unordered_map>
#include <vector>

#include "action/action_tree.h"

namespace rnt::action {

/// result(x, s) (paper §3.4): folds the update functions of the accesses
/// in `seq` that touch `x` over init(x) = 0. Accesses to other objects in
/// the sequence are skipped, exactly as in the paper's definition.
Value ResultOf(const ActionRegistry& registry, ObjectId x,
               std::span<const ActionId> seq);

/// A per-object total order on datasteps — level 2's data_T, represented
/// as the sequence of datasteps of each object in data order.
using DataOrder = std::unordered_map<ObjectId, std::vector<ActionId>>;

/// A witness serializing partial order: for every sibling group in the
/// tree (children of one parent), the chosen linear order.
struct SiblingOrder {
  std::unordered_map<ActionId, std::vector<ActionId>> order_by_parent;
};

/// Options for the exhaustive serializability oracle.
struct OracleOptions {
  /// When set, additionally require the induced datastep order to be
  /// consistent with this data order — i.e., decide
  /// *data-serializability* (paper §5.1) instead of plain serializability.
  const DataOrder* data_order = nullptr;

  /// Safety cap on the number of sibling-permutation assignments tried;
  /// the oracle is exponential by design (it implements the definition).
  std::uint64_t max_assignments = 50'000'000;
};

/// Exhaustive oracle for the paper's §3.4 definition: searches for a
/// linearizing partial order p such that every datastep's label equals
/// result(x, preds_{T,p}(A)). Returns the witness order, or nullopt if no
/// serializing order exists (or the assignment cap was hit — callers keep
/// oracle trees small).
///
/// This is the *definition* executed literally; it is used to validate the
/// efficient Theorem 9 checker (aat/) and the engines on small trees, and
/// as the baseline in bench_checker (experiment E4).
std::optional<SiblingOrder> FindSerializingOrder(
    const ActionTree& tree, const OracleOptions& options = {});

/// True iff `tree` is serializable (paper §3.4).
bool IsSerializable(const ActionTree& tree, const OracleOptions& options = {});

/// True iff perm(tree) is serializable — the paper's correctness condition
/// for executions ("any tree T created by our algorithm should have
/// perm(T) serializable").
bool IsPermSerializable(const ActionTree& tree,
                        const OracleOptions& options = {});

}  // namespace rnt::action

#endif  // RNT_ACTION_SERIALIZABILITY_H_
