#include "workload/workload.h"

#include <chrono>
#include <thread>
#include <vector>

namespace rnt::workload {

namespace {

using Clock = std::chrono::steady_clock;

/// Simulated per-access work while locks are held. Sleeping (rather than
/// spinning) models I/O or network latency — the dominant per-access cost
/// in the distributed databases the paper targets — and keeps the
/// benchmark meaningful on machines with fewer cores than worker threads.
void SpinWork(int ns) {
  if (ns <= 0) return;
  std::this_thread::sleep_for(std::chrono::nanoseconds(ns));
}

/// Runs one subtransaction of the mixed workload. Returns OK on commit,
/// kAborted-ish status if the child could not be completed (caller
/// decides whether to retry the child or restart the transaction).
Status RunChild(txn::TxnHandle& parent, const Params& p, const Zipf& zipf,
                Rng& rng, Result& res) {
  auto child = parent.BeginChild();
  if (!child.ok()) return child.status();
  ++res.child_attempts;
  for (int a = 0; a < p.accesses_per_child; ++a) {
    ObjectId x = static_cast<ObjectId>(zipf.Sample(rng));
    auto r = rng.Chance(p.read_fraction)
                 ? (*child)->Apply(x, action::Update::Read())
                 : (*child)->Apply(x, action::Update::Add(1));
    if (!r.ok()) {
      (void)(*child)->Abort();
      return r.status();
    }
    ++res.accesses;
    SpinWork(p.work_ns_per_access);
  }
  if (rng.Chance(p.child_failure_prob)) {
    (void)(*child)->Abort();
    return Status::Aborted("injected subtransaction failure");
  }
  return (*child)->Commit();
}

/// Runs one child slot (with recovery-block retries). Returns true if a
/// child eventually committed, false if the transaction should restart.
bool RunChildWithRetries(txn::TxnHandle& t, const Params& p, const Zipf& zipf,
                         Rng& rng, Result& res) {
  int retries = 0;
  for (;;) {
    Status s = RunChild(t, p, zipf, rng, res);
    if (s.ok()) return true;
    // Child failed. If the parent itself is still alive, this is the
    // recovery-block case: retry the child in place. (On a flat engine
    // the child's abort killed the parent, so the probe access below
    // fails and we restart from the top.)
    if (retries >= p.max_child_retries) return false;
    auto probe = t.Get(static_cast<ObjectId>(zipf.Sample(rng)));
    if (!probe.ok()) return false;  // parent dead: restart transaction
    ++retries;
    ++res.child_retries;
  }
}

/// One top-level transaction with recovery-block child retries. Returns
/// true if the transaction committed.
bool RunTopLevel(txn::Engine& engine, const Params& p, const Zipf& zipf,
                 Rng& rng, Result& res) {
  for (int attempt = 0; attempt < p.max_txn_attempts; ++attempt) {
    ++res.txn_attempts;
    auto t = engine.Begin();
    bool dead = false;
    if (p.parallel_children) {
      // Sibling subtransactions overlap on their own threads — safe
      // exactly because the nesting discipline isolates them.
      std::vector<std::thread> kids;
      std::vector<Result> kid_res(p.children_per_txn);
      std::vector<std::uint64_t> seeds;
      std::vector<char> kid_ok(p.children_per_txn, 0);
      seeds.reserve(p.children_per_txn);
      for (int c = 0; c < p.children_per_txn; ++c) seeds.push_back(rng.Next());
      for (int c = 0; c < p.children_per_txn; ++c) {
        kids.emplace_back([&, c] {
          Rng crng(seeds[c]);
          kid_ok[c] =
              RunChildWithRetries(*t, p, zipf, crng, kid_res[c]) ? 1 : 0;
        });
      }
      for (auto& k : kids) k.join();
      for (int c = 0; c < p.children_per_txn; ++c) {
        res.child_attempts += kid_res[c].child_attempts;
        res.child_retries += kid_res[c].child_retries;
        res.accesses += kid_res[c].accesses;
        if (!kid_ok[c]) dead = true;
      }
    } else {
      for (int c = 0; c < p.children_per_txn && !dead; ++c) {
        if (!RunChildWithRetries(*t, p, zipf, rng, res)) dead = true;
      }
    }
    if (!dead && t->Commit().ok()) return true;
    (void)t->Abort();
  }
  return false;
}

}  // namespace

Result RunMixed(txn::Engine& engine, const Params& params, int workers,
                int txns_per_worker, std::uint64_t seed) {
  std::vector<Result> partials(workers);
  Zipf zipf(params.num_objects, params.zipf_theta);
  auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(seed * 1315423911u + w);
      Result& res = partials[w];
      for (int i = 0; i < txns_per_worker; ++i) {
        if (RunTopLevel(engine, params, zipf, rng, res)) {
          ++res.committed;
        } else {
          ++res.failed;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  Result total;
  for (auto& r : partials) total.MergeFrom(r);
  total.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return total;
}

Status SetupBanking(txn::Engine& engine, const BankingParams& params) {
  auto t = engine.Begin();
  for (ObjectId a = 0; a < params.num_accounts; ++a) {
    RNT_RETURN_IF_ERROR(t->Put(a, params.initial_balance));
  }
  return t->Commit();
}

BankingResult RunBanking(txn::Engine& engine, const BankingParams& params,
                         int workers, int transfers_per_worker,
                         std::uint64_t seed) {
  std::vector<BankingResult> partials(workers);
  auto start = Clock::now();
  std::vector<std::thread> threads;
  threads.reserve(workers);
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(seed * 2654435761u + w);
      BankingResult& res = partials[w];
      for (int i = 0; i < transfers_per_worker; ++i) {
        ObjectId from = static_cast<ObjectId>(rng.Below(params.num_accounts));
        ObjectId to = static_cast<ObjectId>(rng.Below(params.num_accounts));
        if (from == to) to = (to + 1) % params.num_accounts;
        Value amount = rng.Range(1, 10);
        bool committed = false;
        for (int attempt = 0; attempt < params.max_txn_attempts && !committed;
             ++attempt) {
          auto t = engine.Begin();
          // Debit and credit each run as a subtransaction; an injected
          // failure in either is retried without undoing the other.
          bool ok = true;
          for (int leg = 0; leg < 2 && ok; ++leg) {
            ObjectId acct = leg == 0 ? from : to;
            Value delta = leg == 0 ? -amount : amount;
            int retries = 0;
            for (;;) {
              auto c = t->BeginChild();
              if (!c.ok()) {
                ok = false;
                break;
              }
              auto r = (*c)->Apply(acct, action::Update::Add(delta));
              SpinWork(params.work_ns_per_access);
              bool failed = !r.ok() || rng.Chance(params.child_failure_prob);
              if (!failed && (*c)->Commit().ok()) break;
              (void)(*c)->Abort();
              if (!t->Get(acct).ok() || retries >= params.max_child_retries) {
                ok = false;
                break;
              }
              ++retries;
              ++res.child_retries;
            }
          }
          if (ok && t->Commit().ok()) {
            committed = true;
          } else {
            (void)t->Abort();
          }
        }
        if (committed) {
          ++res.transfers_committed;
        } else {
          ++res.transfers_failed;
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  BankingResult total;
  for (auto& r : partials) {
    total.transfers_committed += r.transfers_committed;
    total.transfers_failed += r.transfers_failed;
    total.child_retries += r.child_retries;
  }
  total.elapsed_seconds =
      std::chrono::duration<double>(Clock::now() - start).count();
  return total;
}

bool VerifyBankingTotal(txn::Engine& engine, const BankingParams& params) {
  Value total = 0;
  for (ObjectId a = 0; a < params.num_accounts; ++a) {
    total += engine.ReadCommitted(a);
  }
  return total == static_cast<Value>(params.num_accounts) *
                      params.initial_balance;
}

}  // namespace rnt::workload
