#ifndef RNT_WORKLOAD_WORKLOAD_H_
#define RNT_WORKLOAD_WORKLOAD_H_

#include <cstdint>

#include "common/random.h"
#include "txn/engine.h"

namespace rnt::workload {

/// Parameters of the synthetic nested workload used across tests and
/// benchmarks (experiments E1/E2/E7/E8). Each top-level transaction runs
/// `children_per_txn` sequential subtransactions; each subtransaction
/// makes `accesses_per_child` accesses to Zipf-distributed objects and
/// may suffer an injected failure, which the driver tolerates with up to
/// `max_child_retries` recovery-block retries before giving up and
/// restarting the whole transaction.
struct Params {
  std::uint32_t num_objects = 64;
  double zipf_theta = 0.0;  // 0 = uniform
  int children_per_txn = 3;
  int accesses_per_child = 2;
  double read_fraction = 0.5;
  /// Probability a subtransaction "fails" after doing its work (the
  /// paper's tolerated-failure scenario; experiment E2).
  double child_failure_prob = 0.0;
  int max_child_retries = 3;
  /// Simulated computation per access, in nanoseconds of spinning while
  /// locks are held — makes lock hold time (the quantity nested locking
  /// shortens) dominate engine overhead.
  int work_ns_per_access = 0;
  /// Cap on whole-transaction restarts before counting a failure.
  int max_txn_attempts = 10;
  /// Run a transaction's subtransactions on concurrent threads instead of
  /// sequentially. This is the concurrency the paper's introduction
  /// credits nesting with: siblings are isolated from each other by the
  /// locking discipline, so they can safely overlap. A flat transaction
  /// has no such isolation — the honest flat baseline must keep
  /// parallel_children = false.
  bool parallel_children = false;
};

struct Result {
  std::uint64_t committed = 0;      // top-level commits
  std::uint64_t failed = 0;         // gave up after max_txn_attempts
  std::uint64_t txn_attempts = 0;   // top-level attempts incl. restarts
  std::uint64_t child_attempts = 0; // subtransaction attempts incl. retries
  std::uint64_t child_retries = 0;  // recovery-block retries that occurred
  std::uint64_t accesses = 0;       // successful engine accesses
  double elapsed_seconds = 0;

  void MergeFrom(const Result& o) {
    committed += o.committed;
    failed += o.failed;
    txn_attempts += o.txn_attempts;
    child_attempts += o.child_attempts;
    child_retries += o.child_retries;
    accesses += o.accesses;
    elapsed_seconds = std::max(elapsed_seconds, o.elapsed_seconds);
  }
};

/// Runs `txns_per_worker` top-level transactions on each of `workers`
/// threads against `engine`. Deterministic given `seed` up to thread
/// interleaving.
Result RunMixed(txn::Engine& engine, const Params& params, int workers,
                int txns_per_worker, std::uint64_t seed);

/// Banking scenario: `num_accounts` accounts each seeded with
/// `initial_balance`; each transaction transfers a random amount between
/// two random accounts using one subtransaction per account update (debit
/// then credit), tolerating injected failures. The invariant — total
/// balance conservation — is checked by VerifyBankingTotal.
struct BankingParams {
  std::uint32_t num_accounts = 16;
  Value initial_balance = 100;
  double child_failure_prob = 0.0;
  int max_child_retries = 3;
  int max_txn_attempts = 10;
  int work_ns_per_access = 0;
};

struct BankingResult {
  std::uint64_t transfers_committed = 0;
  std::uint64_t transfers_failed = 0;
  std::uint64_t child_retries = 0;
  double elapsed_seconds = 0;
};

/// Seeds every account balance (one setup transaction).
Status SetupBanking(txn::Engine& engine, const BankingParams& params);

BankingResult RunBanking(txn::Engine& engine, const BankingParams& params,
                         int workers, int transfers_per_worker,
                         std::uint64_t seed);

/// True iff the committed total equals num_accounts * initial_balance.
bool VerifyBankingTotal(txn::Engine& engine, const BankingParams& params);

}  // namespace rnt::workload

#endif  // RNT_WORKLOAD_WORKLOAD_H_
