#include "txn/global_engine.h"

#include <algorithm>

namespace rnt::txn::internal {

using lock::kNoTxn;
using lock::TxnId;

GlobalEngine::GlobalEngine(TransactionManager::Options options)
    : options_(options),
      locks_(this, lock::LockManager::Options{options.single_mode_locks,
                                              /*shards=*/1}) {}

bool GlobalEngine::IsAncestor(TxnId anc, TxnId desc) const {
  // Entered from LockManager::Conflicts while the calling thread holds
  // mu_ (the lock manager is only driven from under mu_); the analysis
  // cannot follow that path, so assert and delegate.
  return IsAncestorLocked(anc, desc);
}

bool GlobalEngine::IsAncestorLocked(TxnId anc, TxnId desc) const {
  if (anc == kNoTxn) return true;
  for (TxnId c = desc; c != kNoTxn;) {
    if (c == anc) return true;
    auto it = txns_.find(c);
    if (it == txns_.end()) return false;
    c = it->second.parent;
  }
  return false;
}

TxnId GlobalEngine::BeginTop() {
  MutexLock lk(mu_);
  // Top-level begin cannot fail (the virtual root never dies).
  return *BeginLocked(kNoTxn);
}

StatusOr<TxnId> GlobalEngine::BeginChild(TxnId parent) {
  MutexLock lk(mu_);
  return BeginLocked(parent);
}

StatusOr<Value> GlobalEngine::Access(TxnId t, ObjectId x,
                                     const action::Update& update) {
  MutexLock lk(mu_);
  return AccessLocked(t, x, update);
}

Status GlobalEngine::Commit(TxnId t) {
  MutexLock lk(mu_);
  return CommitLocked(t);
}

Status GlobalEngine::Abort(TxnId t) {
  MutexLock lk(mu_);
  return AbortLocked(t, /*cascading=*/false);
}

Value GlobalEngine::ReadCommitted(ObjectId x) {
  MutexLock lk(mu_);
  auto it = committed_.find(x);
  return it == committed_.end() ? action::kInitValue : it->second;
}

Trace GlobalEngine::TakeTrace() {
  MutexLock lk(mu_);
  Trace out = std::move(trace_);
  trace_.events.clear();
  return out;
}

TransactionManager::Stats GlobalEngine::stats() const {
  MutexLock lk(mu_);
  TransactionManager::Stats s = stats_;
  s.lock_records = locks_.RecordCount();
  return s;
}

void GlobalEngine::Preload(const std::map<ObjectId, Value>& values) {
  MutexLock lk(mu_);
  for (const auto& [x, v] : values) committed_[x] = v;
}

std::map<ObjectId, Value> GlobalEngine::DumpCommitted() const {
  MutexLock lk(mu_);
  return committed_;
}

void GlobalEngine::EmitLocked(TraceEvent event) {
  if (options_.trace_sink != nullptr) options_.trace_sink->Append(event);
  if (options_.record_trace) trace_.events.push_back(std::move(event));
}

StatusOr<TxnId> GlobalEngine::BeginLocked(TxnId parent) {
  if (parent != kNoTxn) {
    auto it = txns_.find(parent);
    if (it == txns_.end() || it->second.state != TxnState::kActive) {
      return Status::Aborted("parent transaction is not active");
    }
  }
  TxnId id = next_id_++;
  TxnInfo info;
  info.parent = parent;
  txns_.emplace(id, std::move(info));
  if (parent != kNoTxn) {
    TxnInfo& p = txns_.at(parent);
    p.children.push_back(id);
    ++p.open_children;
  }
  ++stats_.begun;
  if (Logging()) {
    EmitLocked(TraceEvent{TraceEvent::Kind::kBegin, id, parent, 0, {}, 0});
  }
  return id;
}

Value GlobalEngine::VisibleValueLocked(ObjectId x, TxnId t) const {
  // The engine's value map: the nearest ancestor holding a private
  // version, else the committed store, else init (the paper's principal
  // value of x).
  auto ox = uncommitted_.find(x);
  if (ox != uncommitted_.end()) {
    for (TxnId c = t; c != kNoTxn;) {
      auto v = ox->second.find(c);
      if (v != ox->second.end()) return v->second;
      auto it = txns_.find(c);
      if (it == txns_.end()) break;
      c = it->second.parent;
    }
  }
  auto cit = committed_.find(x);
  return cit == committed_.end() ? action::kInitValue : cit->second;
}

std::vector<TxnId> GlobalEngine::DeadlockCycleLocked(TxnId start) const {
  // Wait-for reachability over the nested-transaction dependency
  // structure: t waits for blocker q; q cannot release until its whole
  // subtree completes, so t transitively waits on every *waiting*
  // descendant of q. DFS with predecessor tracking so the cycle can be
  // reconstructed for deterministic victim selection.
  std::map<TxnId, TxnId> pred;
  std::vector<TxnId> stack{start};
  std::set<TxnId> visited{start};
  while (!stack.empty()) {
    TxnId c = stack.back();
    stack.pop_back();
    auto wit = waiting_.find(c);
    if (wit == waiting_.end()) continue;
    for (TxnId q : wit->second) {
      for (const auto& [w, edges] : waiting_) {
        if (!IsAncestorLocked(q, w)) continue;
        if (w == start) {
          std::vector<TxnId> cycle;
          for (TxnId p = c;; p = pred.at(p)) {
            cycle.push_back(p);
            if (p == start) break;
          }
          return cycle;
        }
        if (visited.insert(w).second) {
          pred[w] = c;
          stack.push_back(w);
        }
      }
    }
  }
  return {};
}

StatusOr<Value> GlobalEngine::AccessLocked(TxnId t, ObjectId x,
                                           const action::Update& update) {
  const lock::LockMode mode =
      update.IsRead() ? lock::LockMode::kRead : lock::LockMode::kWrite;
  const auto deadline =
      std::chrono::steady_clock::now() + options_.lock_wait_timeout;
  bool waited = false;
  for (;;) {
    auto it = txns_.find(t);
    if (it == txns_.end() || it->second.state != TxnState::kActive) {
      waiting_.erase(t);
      bool dl = it != txns_.end() && it->second.deadlock_victim;
      return Status::Aborted(dl ? "deadlock victim"
                                : "transaction is not active");
    }
    if (locks_.TryAcquire(x, t, mode)) break;
    if (!waited) {
      waited = true;
      ++stats_.lock_waits;
    }
    waiting_[t] = locks_.Blockers(x, t, mode);
    if (options_.deadlock_detection) {
      std::vector<TxnId> cycle = DeadlockCycleLocked(t);
      if (!cycle.empty()) {
        // Deterministic victim: the youngest (largest id) waiter on the
        // cycle, so a fixed-seed run always kills the same transaction.
        TxnId victim = *std::max_element(cycle.begin(), cycle.end());
        ++stats_.deadlock_aborts;
        if (victim == t) {
          waiting_.erase(t);
          (void)AbortLocked(t, /*cascading=*/false);
          return Status::Aborted("deadlock victim");
        }
        txns_.at(victim).deadlock_victim = true;
        (void)AbortLocked(victim, /*cascading=*/false);
        // The victim's released locks may admit us now; retry without
        // waiting (AbortLocked already broadcast to wake the victim).
        continue;
      }
    }
    if (cv_.WaitUntil(mu_, deadline) == std::cv_status::timeout) {
      waiting_.erase(t);
      auto it2 = txns_.find(t);
      if (it2 != txns_.end() && it2->second.state == TxnState::kActive) {
        ++stats_.timeout_aborts;
        (void)AbortLocked(t, /*cascading=*/false);
        return Status::Timeout("lock wait timed out");
      }
      return Status::Aborted("transaction is not active");
    }
    waiting_.erase(t);
  }
  waiting_.erase(t);
  ++stats_.accesses;
  Value seen = VisibleValueLocked(x, t);
  if (!update.IsRead()) {
    uncommitted_[x][t] = update.Apply(seen);
    txns_.at(t).written.insert(x);
  }
  if (Logging()) {
    EmitLocked(TraceEvent{TraceEvent::Kind::kPerform, next_id_++, t, x,
                          update, seen});
  }
  return seen;
}

Status GlobalEngine::CommitLocked(TxnId t) {
  auto it = txns_.find(t);
  if (it == txns_.end()) return Status::Aborted("transaction is gone");
  TxnInfo& info = it->second;
  if (info.state == TxnState::kAborted) {
    return Status::Aborted("transaction was aborted");
  }
  if (info.state == TxnState::kCommitted) {
    return Status::IllegalState("transaction already committed");
  }
  if (info.open_children != 0) {
    return Status::IllegalState("commit with open subtransactions");
  }
  const TxnId parent = info.parent;
  // Version propagation: each private value moves to the parent (or to
  // the durable store for a top-level commit) — release-lock's effect.
  for (ObjectId x : info.written) {
    auto& entry = uncommitted_.at(x);
    Value v = entry.at(t);
    entry.erase(t);
    if (parent == kNoTxn) {
      committed_[x] = v;
    } else {
      entry[parent] = v;
      txns_.at(parent).written.insert(x);
    }
    if (entry.empty()) uncommitted_.erase(x);
  }
  info.written.clear();
  locks_.OnCommit(t, parent);
  info.state = TxnState::kCommitted;
  if (parent != kNoTxn) --txns_.at(parent).open_children;
  ++stats_.committed;
  if (Logging()) {
    EmitLocked(TraceEvent{TraceEvent::Kind::kCommit, t, parent, 0, {}, 0});
  }
  if (parent == kNoTxn) {
    // Garbage-collect the completed top-level subtree: every descendant
    // is done (open_children was 0 transitively), so no lock, version, or
    // ancestry query can mention these ids again.
    std::vector<TxnId> doomed{t};
    for (std::size_t i = 0; i < doomed.size(); ++i) {
      auto dit = txns_.find(doomed[i]);
      if (dit == txns_.end()) continue;
      doomed.insert(doomed.end(), dit->second.children.begin(),
                    dit->second.children.end());
    }
    for (TxnId d : doomed) txns_.erase(d);
  }
  cv_.NotifyAll();
  return Status::Ok();
}

Status GlobalEngine::AbortLocked(TxnId t, bool cascading) {
  auto it = txns_.find(t);
  if (it == txns_.end() || it->second.state != TxnState::kActive) {
    return Status::Ok();  // idempotent on dead/unknown transactions
  }
  // Kill live descendants first (post-order), mirroring the cascade with
  // one abort event per vertex.
  std::vector<TxnId> kids = it->second.children;
  for (TxnId c : kids) {
    (void)AbortLocked(c, /*cascading=*/true);
  }
  TxnInfo& info = txns_.at(t);
  for (ObjectId x : info.written) {
    auto ox = uncommitted_.find(x);
    if (ox != uncommitted_.end()) {
      ox->second.erase(t);
      if (ox->second.empty()) uncommitted_.erase(ox);
    }
  }
  info.written.clear();
  locks_.OnAbort(t);
  info.state = TxnState::kAborted;
  waiting_.erase(t);
  if (info.parent != kNoTxn) --txns_.at(info.parent).open_children;
  ++stats_.aborted;
  if (cascading) ++stats_.cascade_aborts;
  if (Logging()) {
    EmitLocked(TraceEvent{TraceEvent::Kind::kAbort, t, info.parent, 0, {}, 0});
  }
  if (info.parent == kNoTxn) {
    std::vector<TxnId> doomed{t};
    for (std::size_t i = 0; i < doomed.size(); ++i) {
      auto dit = txns_.find(doomed[i]);
      if (dit == txns_.end()) continue;
      doomed.insert(doomed.end(), dit->second.children.begin(),
                    dit->second.children.end());
    }
    for (TxnId d : doomed) txns_.erase(d);
  }
  cv_.NotifyAll();
  return Status::Ok();
}

}  // namespace rnt::txn::internal
