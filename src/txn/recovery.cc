#include "txn/recovery.h"

namespace rnt::txn {

Status RunInChild(TxnHandle& parent, int max_retries,
                  const std::function<Status(TxnHandle&)>& body,
                  FaultStats* faults) {
  Status last = Status::Ok();
  for (int attempt = 0; attempt <= max_retries; ++attempt) {
    if (attempt > 0 && faults != nullptr) ++faults->retries;
    auto child = parent.BeginChild();
    if (!child.ok()) return child.status();  // parent dead: bubble up
    Status s = body(**child);
    if (s.ok()) {
      s = (*child)->Commit();
      if (s.ok()) return Status::Ok();
    }
    (void)(*child)->Abort();
    last = s;
    // If the parent is gone, the next BeginChild fails and we bubble its
    // status up; otherwise this is the recovery-block case and the loop
    // retries the child in place.
  }
  return last;
}

Status RunTransaction(Engine& engine, int max_attempts,
                      const std::function<Status(TxnHandle&)>& body,
                      FaultStats* faults) {
  Status last = Status::Ok();
  for (int attempt = 0; attempt < max_attempts; ++attempt) {
    if (attempt > 0 && faults != nullptr) ++faults->retries;
    auto t = engine.Begin();
    Status s = body(*t);
    if (s.ok()) {
      s = t->Commit();
      if (s.ok()) return Status::Ok();
    }
    (void)t->Abort();
    last = s;
  }
  return last;
}

}  // namespace rnt::txn
