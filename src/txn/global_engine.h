#ifndef RNT_TXN_GLOBAL_ENGINE_H_
#define RNT_TXN_GLOBAL_ENGINE_H_

#include <map>
#include <set>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "txn/engine_core.h"

namespace rnt::txn::internal {

/// The seed engine: one global mutex guards all state, blocked acquirers
/// wait on a single condition variable and are woken by every
/// commit/abort (broadcast). Kept verbatim behind
/// EngineMode::kGlobalMutex so the sharded engine's speedup is measured
/// against the real thing, not a strawman — and as a bisection aid if
/// the sharded path ever misbehaves.
///
/// The one deliberate change from the seed: deadlock victim selection is
/// deterministic (the youngest — largest-id — transaction on the
/// detected cycle), matching the sharded engine, so stress failures and
/// benchmarks reproduce under a fixed seed.
///
/// Every piece of state is GUARDED_BY(mu_) and every internal helper
/// REQUIRES(mu_) — the "one big lock" design stated in a form the
/// thread-safety analysis verifies.
class GlobalEngine final : public EngineCore, private lock::Ancestry {
 public:
  explicit GlobalEngine(TransactionManager::Options options);
  ~GlobalEngine() override = default;

  lock::TxnId BeginTop() override;
  StatusOr<lock::TxnId> BeginChild(lock::TxnId parent) override;
  StatusOr<Value> Access(lock::TxnId t, ObjectId x,
                         const action::Update& update) override;
  Status Commit(lock::TxnId t) override;
  Status Abort(lock::TxnId t) override;

  Value ReadCommitted(ObjectId x) override;
  Trace TakeTrace() override;
  TransactionManager::Stats stats() const override;
  void Preload(const std::map<ObjectId, Value>& values) override;
  std::map<ObjectId, Value> DumpCommitted() const override;

 private:
  enum class TxnState : std::uint8_t { kActive, kCommitted, kAborted };

  struct TxnInfo {
    lock::TxnId parent = lock::kNoTxn;
    TxnState state = TxnState::kActive;
    bool deadlock_victim = false;
    std::uint32_t open_children = 0;
    std::vector<lock::TxnId> children;
    /// Objects whose value map carries an entry for this txn.
    std::set<ObjectId> written;
  };

  // lock::Ancestry (called under mu_, from the lock manager's single
  // shard — the analysis cannot see that caller, so the override itself
  // carries no REQUIRES; it delegates to the checked helper).
  bool IsAncestor(lock::TxnId anc, lock::TxnId desc) const override
      NO_THREAD_SAFETY_ANALYSIS;
  bool IsAncestorLocked(lock::TxnId anc, lock::TxnId desc) const
      REQUIRES(mu_);

  // All private methods below require mu_ held.
  /// True when events must be materialized (trace or sink); gates
  /// access-id allocation too, matching the sharded engine.
  bool Logging() const {
    return options_.record_trace || options_.trace_sink != nullptr;
  }
  /// Emits one event to the sink (still under mu_, the serializing
  /// section) and/or the in-memory trace.
  void EmitLocked(TraceEvent event) REQUIRES(mu_);
  StatusOr<lock::TxnId> BeginLocked(lock::TxnId parent) REQUIRES(mu_);
  Status CommitLocked(lock::TxnId t) REQUIRES(mu_);
  Status AbortLocked(lock::TxnId t, bool cascading) REQUIRES(mu_);
  StatusOr<Value> AccessLocked(lock::TxnId t, ObjectId x,
                               const action::Update& update) REQUIRES(mu_);
  Value VisibleValueLocked(ObjectId x, lock::TxnId t) const REQUIRES(mu_);
  /// The wait-for cycle through `start` (empty if none), as the list of
  /// waiting transactions on it.
  std::vector<lock::TxnId> DeadlockCycleLocked(lock::TxnId start) const
      REQUIRES(mu_);

  TransactionManager::Options options_;
  mutable Mutex mu_;
  CondVar cv_;
  lock::TxnId next_id_ GUARDED_BY(mu_) = 1;
  std::map<lock::TxnId, TxnInfo> txns_ GUARDED_BY(mu_);
  /// The lock manager has its own internal (single-shard) mutex; it is
  /// only ever driven from under mu_, keeping the seed's one-big-lock
  /// semantics.
  lock::LockManager locks_;
  /// Committed top-level state (absent => init value 0).
  std::map<ObjectId, Value> committed_ GUARDED_BY(mu_);
  /// Uncommitted versions: object -> (txn -> private value).
  std::map<ObjectId, std::map<lock::TxnId, Value>> uncommitted_
      GUARDED_BY(mu_);
  /// Wait-for edges of currently blocked acquirers.
  std::map<lock::TxnId, std::vector<lock::TxnId>> waiting_ GUARDED_BY(mu_);
  Trace trace_ GUARDED_BY(mu_);
  TransactionManager::Stats stats_ GUARDED_BY(mu_);
};

}  // namespace rnt::txn::internal

#endif  // RNT_TXN_GLOBAL_ENGINE_H_
