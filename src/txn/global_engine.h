#ifndef RNT_TXN_GLOBAL_ENGINE_H_
#define RNT_TXN_GLOBAL_ENGINE_H_

#include <condition_variable>
#include <map>
#include <mutex>
#include <set>
#include <vector>

#include "txn/engine_core.h"

namespace rnt::txn::internal {

/// The seed engine: one global mutex guards all state, blocked acquirers
/// wait on a single condition variable and are woken by every
/// commit/abort (broadcast). Kept verbatim behind
/// EngineMode::kGlobalMutex so the sharded engine's speedup is measured
/// against the real thing, not a strawman — and as a bisection aid if
/// the sharded path ever misbehaves.
///
/// The one deliberate change from the seed: deadlock victim selection is
/// deterministic (the youngest — largest-id — transaction on the
/// detected cycle), matching the sharded engine, so stress failures and
/// benchmarks reproduce under a fixed seed.
class GlobalEngine final : public EngineCore, private lock::Ancestry {
 public:
  explicit GlobalEngine(TransactionManager::Options options);
  ~GlobalEngine() override = default;

  lock::TxnId BeginTop() override;
  StatusOr<lock::TxnId> BeginChild(lock::TxnId parent) override;
  StatusOr<Value> Access(lock::TxnId t, ObjectId x,
                         const action::Update& update) override;
  Status Commit(lock::TxnId t) override;
  Status Abort(lock::TxnId t) override;

  Value ReadCommitted(ObjectId x) override;
  Trace TakeTrace() override;
  TransactionManager::Stats stats() const override;

 private:
  enum class TxnState : std::uint8_t { kActive, kCommitted, kAborted };

  struct TxnInfo {
    lock::TxnId parent = lock::kNoTxn;
    TxnState state = TxnState::kActive;
    bool deadlock_victim = false;
    std::uint32_t open_children = 0;
    std::vector<lock::TxnId> children;
    /// Objects whose value map carries an entry for this txn.
    std::set<ObjectId> written;
  };

  // lock::Ancestry (called under mu_).
  bool IsAncestor(lock::TxnId anc, lock::TxnId desc) const override;

  // All private methods below require mu_ held.
  StatusOr<lock::TxnId> BeginLocked(lock::TxnId parent);
  Status CommitLocked(lock::TxnId t);
  Status AbortLocked(lock::TxnId t, bool cascading);
  StatusOr<Value> AccessLocked(std::unique_lock<std::mutex>& lk,
                               lock::TxnId t, ObjectId x,
                               const action::Update& update);
  Value VisibleValueLocked(ObjectId x, lock::TxnId t) const;
  /// The wait-for cycle through `start` (empty if none), as the list of
  /// waiting transactions on it.
  std::vector<lock::TxnId> DeadlockCycleLocked(lock::TxnId start) const;

  TransactionManager::Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  lock::TxnId next_id_ = 1;
  std::map<lock::TxnId, TxnInfo> txns_;
  lock::LockManager locks_;
  /// Committed top-level state (absent => init value 0).
  std::map<ObjectId, Value> committed_;
  /// Uncommitted versions: object -> (txn -> private value).
  std::map<ObjectId, std::map<lock::TxnId, Value>> uncommitted_;
  /// Wait-for edges of currently blocked acquirers.
  std::map<lock::TxnId, std::vector<lock::TxnId>> waiting_;
  Trace trace_;
  TransactionManager::Stats stats_;
};

}  // namespace rnt::txn::internal

#endif  // RNT_TXN_GLOBAL_ENGINE_H_
