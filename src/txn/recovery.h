#ifndef RNT_TXN_RECOVERY_H_
#define RNT_TXN_RECOVERY_H_

#include <functional>

#include "txn/engine.h"
#include "txn/trace.h"

namespace rnt::txn {

/// Recovery-block combinators (paper §1: the nested-transaction
/// generalization of recovery blocks to concurrent programming).
///
/// These wrap the begin/commit/abort/retry choreography the paper's
/// programming style implies, so application code reads as intent:
///
///   Status s = RunTransaction(engine, 5, [&](TxnHandle& t) {
///     RNT_RETURN_IF_ERROR(RunInChild(t, 3, [&](TxnHandle& step) {
///       return step.Put(kAccount, 100);
///     }));
///     return RunInChild(t, 3, [&](TxnHandle& step) {
///       return step.Put(kLedger, 1);
///     });
///   });

/// Runs `body` in a fresh subtransaction of `parent`. On a non-OK body
/// status or failed commit the child is aborted and retried in place, up
/// to `max_retries` extra attempts — unless the parent itself has died
/// (kAborted bubbles up immediately so the caller can restart higher up).
/// Returns the final child status. When `faults` is given, every
/// re-attempt beyond the first increments faults->retries, so runs under
/// failure injection surface their recovery effort through the trace's
/// FaultStats.
Status RunInChild(TxnHandle& parent, int max_retries,
                  const std::function<Status(TxnHandle&)>& body,
                  FaultStats* faults = nullptr);

/// Runs `body` in a fresh top-level transaction, committing on success.
/// Retries the whole transaction (fresh Begin) up to `max_attempts`
/// times; an aborted attempt's effects are fully rolled back each time.
/// `faults`, when given, counts re-attempts as in RunInChild.
Status RunTransaction(Engine& engine, int max_attempts,
                      const std::function<Status(TxnHandle&)>& body,
                      FaultStats* faults = nullptr);

}  // namespace rnt::txn

#endif  // RNT_TXN_RECOVERY_H_
