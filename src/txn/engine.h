#ifndef RNT_TXN_ENGINE_H_
#define RNT_TXN_ENGINE_H_

#include <memory>
#include <string>

#include "action/update.h"
#include "common/status.h"
#include "common/types.h"

namespace rnt::txn {

/// Abstract handle to one (possibly nested) transaction.
///
/// This is the engine-neutral API the examples, workloads, and benchmarks
/// program against. The nested engine (txn::TransactionManager) implements
/// real subtransactions; the baselines (baseline::FlatEngine,
/// baseline::MvtoEngine) implement the same surface with flattened
/// semantics so identical workload code runs on all engines.
///
/// Usage contract:
///  * `Get`/`Put`/`Apply` perform one access each; a kAborted result means
///    this transaction (or an ancestor) is dead — the caller should stop
///    issuing operations and let the handle destruct (or call Abort()).
///  * `BeginChild` opens a subtransaction; the parent must not commit
///    while children are open. Child failure does NOT doom the parent:
///    handling the child's kAborted status and retrying is exactly the
///    recovery-block pattern the paper's introduction motivates.
///  * Destroying a handle whose transaction is still active aborts it
///    (RAII: no leaked transactions).
class TxnHandle {
 public:
  virtual ~TxnHandle() = default;

  /// Read access: returns the value visible to this transaction.
  virtual StatusOr<Value> Get(ObjectId x) = 0;

  /// Write access: blind write of `v`.
  virtual Status Put(ObjectId x, Value v) = 0;

  /// General access applying `update`; returns the value *seen* (the
  /// paper's label). Get(x) == Apply(x, Update::Read()).
  virtual StatusOr<Value> Apply(ObjectId x, const action::Update& update) = 0;

  /// Opens a subtransaction. Fails with kAborted if this transaction is
  /// already dead.
  virtual StatusOr<std::unique_ptr<TxnHandle>> BeginChild() = 0;

  /// Commits this transaction relative to its parent. Fails with
  /// kIllegalState if children are still open, kAborted if dead.
  virtual Status Commit() = 0;

  /// Aborts this transaction and (transitively) its live descendants.
  /// Idempotent on dead transactions.
  virtual Status Abort() = 0;
};

/// Abstract engine: mints top-level transactions and exposes the
/// permanently committed state.
class Engine {
 public:
  virtual ~Engine() = default;

  /// Starts a top-level transaction.
  virtual std::unique_ptr<TxnHandle> Begin() = 0;

  /// The committed (top-level durable) value of `x`.
  virtual Value ReadCommitted(ObjectId x) = 0;

  /// Engine name for benchmark reporting.
  virtual std::string name() const = 0;
};

}  // namespace rnt::txn

#endif  // RNT_TXN_ENGINE_H_
