#include "txn/trace.h"

#include <sstream>
#include <set>
#include <unordered_map>

namespace rnt::txn {

bool FaultStats::Any() const {
  return retries || crashes || dropped_msgs || duplicated_msgs ||
         delayed_msgs || recovered_nodes || timeout_aborts;
}

std::string FaultStats::ToString() const {
  std::ostringstream os;
  os << "faults{retries=" << retries << ", crashes=" << crashes
     << ", dropped=" << dropped_msgs << ", duplicated=" << duplicated_msgs
     << ", delayed=" << delayed_msgs << ", recovered=" << recovered_nodes
     << ", timeout_aborts=" << timeout_aborts << "}";
  return os.str();
}

void FaultStats::MergeFrom(const FaultStats& other) {
  retries += other.retries;
  crashes += other.crashes;
  dropped_msgs += other.dropped_msgs;
  duplicated_msgs += other.duplicated_msgs;
  delayed_msgs += other.delayed_msgs;
  recovered_nodes += other.recovered_nodes;
  timeout_aborts += other.timeout_aborts;
}

StatusOr<ReplayedTrace> ReplayTrace(const Trace& trace) {
  auto registry = std::make_unique<action::ActionRegistry>();
  std::unordered_map<lock::TxnId, ActionId> id_map;
  id_map[lock::kNoTxn] = kRootAction;

  // First pass: register every transaction and access in event order so
  // parents precede children in the registry.
  for (const TraceEvent& e : trace.events) {
    if (e.kind == TraceEvent::Kind::kBegin) {
      auto p = id_map.find(e.parent);
      if (p == id_map.end()) {
        return Status::Internal("trace begins txn under unknown parent");
      }
      id_map[e.id] = registry->NewAction(p->second);
    } else if (e.kind == TraceEvent::Kind::kPerform) {
      auto p = id_map.find(e.parent);
      if (p == id_map.end()) {
        return Status::Internal("trace performs access under unknown txn");
      }
      id_map[e.id] = registry->NewAccess(p->second, e.object, e.update);
    }
  }

  // Second pass: replay, enforcing the level-1 preconditions. Any
  // violation is an engine bug.
  action::ActionTree tree(registry.get());
  std::size_t idx = 0;
  for (const TraceEvent& e : trace.events) {
    ActionId a = id_map.at(e.id);
    auto fail = [&](const char* what) {
      std::ostringstream os;
      os << "trace replay: " << what << " violated at event " << idx
         << " (action " << a << ")";
      return Status::Internal(os.str());
    };
    switch (e.kind) {
      case TraceEvent::Kind::kBegin:
        if (!tree.CanCreate(a)) return fail("create precondition");
        tree.ApplyCreate(a);
        break;
      case TraceEvent::Kind::kCommit:
        if (!tree.CanCommit(a)) return fail("commit precondition");
        tree.ApplyCommit(a);
        break;
      case TraceEvent::Kind::kAbort:
        if (!tree.CanAbort(a)) return fail("abort precondition");
        tree.ApplyAbort(a);
        break;
      case TraceEvent::Kind::kPerform:
        if (!tree.CanCreate(a)) return fail("access create precondition");
        tree.ApplyCreate(a);
        if (!tree.CanPerform(a)) return fail("perform precondition");
        tree.ApplyPerform(a, e.seen);
        break;
    }
    ++idx;
  }
  return ReplayedTrace{std::move(registry), std::move(tree)};
}

StatusOr<LoweredTrace> LowerTraceToLockEvents(const Trace& trace) {
  auto registry = std::make_unique<action::ActionRegistry>();
  std::unordered_map<lock::TxnId, ActionId> id_map;
  id_map[lock::kNoTxn] = kRootAction;
  // Objects whose lock each transaction currently holds (in the lowered
  // model: actions with a V(x, ·) entry).
  std::unordered_map<ActionId, std::set<ObjectId>> held;
  std::vector<algebra::LockEvent> events;

  for (const TraceEvent& e : trace.events) {
    switch (e.kind) {
      case TraceEvent::Kind::kBegin: {
        auto p = id_map.find(e.parent);
        if (p == id_map.end()) {
          return Status::Internal("trace begins txn under unknown parent");
        }
        ActionId a = registry->NewAction(p->second);
        id_map[e.id] = a;
        events.push_back(algebra::Create{a});
        break;
      }
      case TraceEvent::Kind::kPerform: {
        auto p = id_map.find(e.parent);
        if (p == id_map.end()) {
          return Status::Internal("trace performs access under unknown txn");
        }
        ActionId acc = registry->NewAccess(p->second, e.object, e.update);
        id_map[e.id] = acc;
        events.push_back(algebra::Create{acc});
        events.push_back(algebra::Perform{acc, e.seen});
        // The engine's lock belongs to the transaction: pass the access's
        // lock up immediately.
        events.push_back(algebra::ReleaseLock{acc, e.object});
        held[p->second].insert(e.object);
        break;
      }
      case TraceEvent::Kind::kCommit: {
        ActionId a = id_map.at(e.id);
        events.push_back(algebra::Commit{a});
        ActionId parent = registry->Parent(a);
        auto it = held.find(a);
        if (it != held.end()) {
          for (ObjectId x : it->second) {
            events.push_back(algebra::ReleaseLock{a, x});
            if (parent != kRootAction) held[parent].insert(x);
          }
          held.erase(it);
        }
        break;
      }
      case TraceEvent::Kind::kAbort: {
        ActionId a = id_map.at(e.id);
        events.push_back(algebra::Abort{a});
        auto it = held.find(a);
        if (it != held.end()) {
          for (ObjectId x : it->second) {
            events.push_back(algebra::LoseLock{a, x});
          }
          held.erase(it);
        }
        break;
      }
    }
  }
  return LoweredTrace{std::move(registry), std::move(events)};
}

}  // namespace rnt::txn
