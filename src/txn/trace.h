#ifndef RNT_TXN_TRACE_H_
#define RNT_TXN_TRACE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "action/action_tree.h"
#include "action/update.h"
#include "algebra/events.h"
#include "common/status.h"
#include "lock/lock_manager.h"

namespace rnt::txn {

/// One engine event, recorded in global serialization order (under the
/// engine mutex). The trace is the bridge from the concurrent engine back
/// to the paper's formalism: replaying it yields the action tree of the
/// execution, on which the Theorem 9 checker and the exhaustive oracle
/// can pass judgment.
struct TraceEvent {
  enum class Kind : std::uint8_t { kBegin, kCommit, kAbort, kPerform };

  Kind kind;
  lock::TxnId id;       // the transaction, or the access for kPerform
  lock::TxnId parent;   // kBegin: parent txn; kPerform: owning txn
  ObjectId object = 0;  // kPerform
  action::Update update;  // kPerform
  Value seen = 0;         // kPerform: the value read (the label)
};

/// Fault-handling counters for a run executed under injected failures —
/// retries, node crashes, message chaos, recoveries. Attached to traces
/// (and to sim::DriverStats) so executions that survived faults are
/// inspectable after the fact: a trace that replays cleanly but carries
/// faults.Any() shows how much adversity the schedule absorbed.
struct FaultStats {
  std::uint64_t retries = 0;          // step/child re-attempts
  std::uint64_t crashes = 0;          // node crashes injected
  std::uint64_t dropped_msgs = 0;     // transmissions lost (incl. partition)
  std::uint64_t duplicated_msgs = 0;  // extra deliveries of one send
  std::uint64_t delayed_msgs = 0;     // deliveries pushed to a later round
  std::uint64_t recovered_nodes = 0;  // rebirths via buffer replay
  std::uint64_t timeout_aborts = 0;   // stuck subtransactions aborted

  bool Any() const;
  std::string ToString() const;

  void MergeFrom(const FaultStats& other);

  friend bool operator==(const FaultStats&, const FaultStats&) = default;
};

struct Trace {
  std::vector<TraceEvent> events;
  /// Fault counters for the run that produced this trace (all zero for a
  /// failure-free execution).
  FaultStats faults;
};

/// A streaming consumer of engine events. When installed via
/// TransactionManager::Options::trace_sink, the engine calls Append
/// *inside the critical section that serializes the event* — the same
/// place the in-memory trace is appended — so the sink observes the
/// engine's one true serialization order. This is what makes a
/// write-ahead log built on the sink sound: a log record's position is
/// fixed before any lock protecting the event is released, so no
/// conflicting later event can be logged ahead of it.
///
/// Contract for implementations: Append must not call back into the
/// engine (its mutexes are held) and must be cheap — an in-memory
/// buffer push, not an I/O syscall (storage::Wal batches and fsyncs on
/// a separate group-commit thread).
class TraceSink {
 public:
  virtual ~TraceSink() = default;
  virtual void Append(const TraceEvent& event) = 0;
};

/// The action-tree reconstruction of a trace: a registry built from the
/// observed transactions/accesses plus the replayed tree.
struct ReplayedTrace {
  /// Owns the registry the tree points into.
  std::unique_ptr<action::ActionRegistry> registry;
  action::ActionTree tree;
};

/// Replays a trace into an action tree, checking every event's level-1
/// precondition along the way (an internal-error status indicates an
/// engine bug, e.g. commit with an active child). Aborts of transactions
/// recursively abort their live descendants first, mirroring engine
/// semantics with the paper's one-vertex-at-a-time abort events.
StatusOr<ReplayedTrace> ReplayTrace(const Trace& trace);

/// A trace lowered to the level-4 algebra's event vocabulary.
struct LoweredTrace {
  /// Owns the registry the events refer to.
  std::unique_ptr<action::ActionRegistry> registry;
  std::vector<algebra::LockEvent> events;
};

/// Lowers a trace recorded by a *single-mode* TransactionManager into a
/// level-4 (value-map algebra) event sequence:
///
///  * begin          -> create;
///  * access         -> create + perform + release-lock (the engine holds
///                      locks per transaction, so an access's lock passes
///                      to its transaction immediately);
///  * commit         -> commit + release-lock for every object the
///                      transaction held (lock inheritance);
///  * abort          -> abort + lose-lock for every held object.
///
/// The engine conforms to the paper's algorithm iff the lowered sequence
/// is a *valid computation of ValueMapAlgebra* — every precondition
/// (d11)-(f12) holds at every step. tests/conformance_test.cc runs
/// multithreaded engine traces through this bridge and on up the whole
/// refinement chain to the serializability spec.
///
/// Only single-mode traces lower faithfully: the read/write engine admits
/// concurrent sibling readers, which the single-lock-mode level-4 algebra
/// cannot express (see aat.h on the §10 extension).
StatusOr<LoweredTrace> LowerTraceToLockEvents(const Trace& trace);

}  // namespace rnt::txn

#endif  // RNT_TXN_TRACE_H_
