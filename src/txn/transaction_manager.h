#ifndef RNT_TXN_TRANSACTION_MANAGER_H_
#define RNT_TXN_TRANSACTION_MANAGER_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <memory>

#include "action/update.h"
#include "common/status.h"
#include "common/types.h"
#include "lock/lock_manager.h"
#include "txn/engine.h"
#include "txn/trace.h"

namespace rnt::txn {

class Transaction;
namespace internal {
class EngineCore;
}

/// Which concurrency skeleton the engine runs on. Semantics are
/// identical; only the synchronization strategy differs.
enum class EngineMode : std::uint8_t {
  /// Sharded lock table + sharded value-map store + per-transaction
  /// record locks; targeted per-object wakeups (default).
  kSharded = 0,
  /// The seed design: one global mutex, one broadcast condition
  /// variable. Kept as the measured baseline for the scalability
  /// experiments (E11) and as a bisection aid.
  kGlobalMutex = 1,
};

/// The core library: a multithreaded nested-transaction engine running
/// Moss's locking algorithm — the operational counterpart of the paper's
/// level-4 algebra with the read/write extension.
///
/// Responsibilities:
///  * transaction tree bookkeeping (begin/commit/abort, open children);
///  * the value-map store: each writer holds a private version; commit
///    merges it into the parent's version (top-level commit makes it
///    durable), abort discards it — exactly (d24)/(e21)/(f21);
///  * lock acquisition with blocking waits, deadlock handling (wait-for
///    graph cycle detection or timeouts), and victim abort;
///  * cascading abort of live descendants (a dead ancestor orphans and
///    kills its subtree);
///  * optional execution tracing for offline serializability checking.
///
/// Concurrency model (EngineMode::kSharded, the default): the lock table
/// is sharded by object with per-shard mutexes and per-object wait
/// queues (a release wakes exactly the waiters of that object); each
/// transaction keeps its private version buffer in its own record,
/// guarded by a per-record mutex, and commit merges child into parent
/// under parent-local locking; the committed store and the transaction
/// table are sharded likewise. Record mutexes nest only root-to-leaf
/// along one ancestor chain, so intra-tree operations are deadlock-free
/// while unrelated top-level trees never share a lock. Deadlock
/// detection snapshots the wait-for graph shard by shard — no
/// stop-the-world — and deterministically picks the youngest (largest
/// id) transaction on the cycle as victim. EngineMode::kGlobalMutex
/// retains the seed design (one mutex, broadcast wakeups) as the
/// measured baseline; benchmark comparisons against the flat baseline
/// remain apples-to-apples because both engines share the same skeleton
/// (see DESIGN.md E1, EXPERIMENTS.md E11).
class TransactionManager final : public Engine {
 public:
  struct Options {
    /// Use the paper's simplified single-mode locks (every access locks
    /// exclusively) instead of read/write modes.
    bool single_mode_locks = false;
    /// Detect deadlocks via wait-for-graph cycles and abort a victim on
    /// the cycle (default). When false, rely on lock_wait_timeout.
    bool deadlock_detection = true;
    /// Maximum total wait for one lock acquisition (timeout policy, and a
    /// backstop under detection).
    std::chrono::milliseconds lock_wait_timeout{2000};
    /// Record a trace for offline action-tree reconstruction.
    bool record_trace = false;
    /// Concurrency skeleton; see EngineMode.
    EngineMode mode = EngineMode::kSharded;
    /// Shard count for the lock table, value-map store, and transaction
    /// table (kSharded only; clamped to >= 1).
    std::uint32_t shards = 16;
    /// How often a blocked acquirer re-runs deadlock detection
    /// (kSharded only — the global engine re-checks on every broadcast).
    std::chrono::milliseconds deadlock_check_interval{5};
    /// Optional streaming event consumer (non-owning; must outlive the
    /// manager). Receives every trace event inside the engine's
    /// serializing critical section, independently of record_trace —
    /// the hook the durable storage layer's WAL hangs off (see
    /// txn::TraceSink).
    TraceSink* trace_sink = nullptr;
  };

  TransactionManager();
  explicit TransactionManager(Options options);
  ~TransactionManager() override;

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  // Engine interface.
  std::unique_ptr<TxnHandle> Begin() override;
  Value ReadCommitted(ObjectId x) override;
  std::string name() const override { return "nested-moss"; }

  /// Moves the recorded trace out (thread-safe). Meaningful only with
  /// Options::record_trace.
  Trace TakeTrace();

  /// Seeds the committed store before any transaction runs — how a
  /// recovered snapshot re-enters the engine on restart. Call only on a
  /// quiescent (freshly constructed) manager.
  void Preload(const std::map<ObjectId, Value>& values);

  /// Snapshot of the committed top-level store (objects ever written).
  /// Consistent when the engine is quiescent; used by checkpoints.
  std::map<ObjectId, Value> DumpCommitted() const;

  /// Engine counters, for tests and benchmark reporting.
  struct Stats {
    std::uint64_t begun = 0;
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    std::uint64_t deadlock_aborts = 0;
    std::uint64_t timeout_aborts = 0;
    std::uint64_t cascade_aborts = 0;
    std::uint64_t lock_waits = 0;
    std::uint64_t accesses = 0;
    /// Live (object, txn) lock records at the time of the call. Must be
    /// zero once every transaction has completed — a nonzero value after
    /// quiescence means a lock leak (see the commit-vs-abort inheritance
    /// race regression test).
    std::uint64_t lock_records = 0;
  };
  Stats stats() const;

 private:
  std::unique_ptr<internal::EngineCore> impl_;
};

/// Concrete handle for TransactionManager transactions. Created via
/// TransactionManager::Begin / Transaction::BeginChild only.
class Transaction final : public TxnHandle {
 public:
  ~Transaction() override;

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  StatusOr<Value> Get(ObjectId x) override;
  Status Put(ObjectId x, Value v) override;
  StatusOr<Value> Apply(ObjectId x, const action::Update& update) override;
  StatusOr<std::unique_ptr<TxnHandle>> BeginChild() override;
  Status Commit() override;
  Status Abort() override;

  lock::TxnId id() const { return id_; }

 private:
  friend class TransactionManager;
  Transaction(internal::EngineCore* core, lock::TxnId id)
      : core_(core), id_(id) {}

  internal::EngineCore* core_;
  lock::TxnId id_;
  bool finished_ = false;  // commit/abort called through this handle
};

}  // namespace rnt::txn

#endif  // RNT_TXN_TRANSACTION_MANAGER_H_
