#ifndef RNT_TXN_TRANSACTION_MANAGER_H_
#define RNT_TXN_TRANSACTION_MANAGER_H_

#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <set>
#include <vector>

#include "action/update.h"
#include "common/status.h"
#include "common/types.h"
#include "lock/lock_manager.h"
#include "txn/engine.h"
#include "txn/trace.h"

namespace rnt::txn {

class Transaction;

/// The core library: a multithreaded nested-transaction engine running
/// Moss's locking algorithm — the operational counterpart of the paper's
/// level-4 algebra with the read/write extension.
///
/// Responsibilities:
///  * transaction tree bookkeeping (begin/commit/abort, open children);
///  * the value-map store: each writer holds a private version; commit
///    merges it into the parent's version (top-level commit makes it
///    durable), abort discards it — exactly (d24)/(e21)/(f21);
///  * lock acquisition with blocking waits, deadlock handling (wait-for
///    graph cycle detection or timeouts), and victim abort;
///  * cascading abort of live descendants (a dead ancestor orphans and
///    kills its subtree);
///  * optional execution tracing for offline serializability checking.
///
/// Concurrency model: one global mutex guards all engine state; blocked
/// acquirers wait on a condition variable and are woken by every commit/
/// abort. This favors auditability over raw scalability; benchmark
/// comparisons against the flat baseline remain apples-to-apples because
/// both engines share the same skeleton (see DESIGN.md E1).
class TransactionManager final : public Engine, private lock::Ancestry {
 public:
  struct Options {
    /// Use the paper's simplified single-mode locks (every access locks
    /// exclusively) instead of read/write modes.
    bool single_mode_locks = false;
    /// Detect deadlocks via wait-for-graph cycles and abort the requester
    /// (default). When false, rely on lock_wait_timeout instead.
    bool deadlock_detection = true;
    /// Maximum total wait for one lock acquisition (timeout policy, and a
    /// backstop under detection).
    std::chrono::milliseconds lock_wait_timeout{2000};
    /// Record a trace for offline action-tree reconstruction.
    bool record_trace = false;
  };

  TransactionManager();
  explicit TransactionManager(Options options);
  ~TransactionManager() override;

  TransactionManager(const TransactionManager&) = delete;
  TransactionManager& operator=(const TransactionManager&) = delete;

  // Engine interface.
  std::unique_ptr<TxnHandle> Begin() override;
  Value ReadCommitted(ObjectId x) override;
  std::string name() const override { return "nested-moss"; }

  /// Moves the recorded trace out (thread-safe). Meaningful only with
  /// Options::record_trace.
  Trace TakeTrace();

  /// Engine counters, for tests and benchmark reporting.
  struct Stats {
    std::uint64_t begun = 0;
    std::uint64_t committed = 0;
    std::uint64_t aborted = 0;
    std::uint64_t deadlock_aborts = 0;
    std::uint64_t timeout_aborts = 0;
    std::uint64_t cascade_aborts = 0;
    std::uint64_t lock_waits = 0;
    std::uint64_t accesses = 0;
  };
  Stats stats() const;

 private:
  friend class Transaction;

  enum class TxnState : std::uint8_t { kActive, kCommitted, kAborted };

  struct TxnInfo {
    lock::TxnId parent = lock::kNoTxn;
    TxnState state = TxnState::kActive;
    std::uint32_t open_children = 0;
    std::vector<lock::TxnId> children;
    /// Objects whose value map carries an entry for this txn.
    std::set<ObjectId> written;
  };

  // lock::Ancestry (called under mu_).
  bool IsAncestor(lock::TxnId anc, lock::TxnId desc) const override;

  // All private methods below require mu_ held.
  StatusOr<lock::TxnId> BeginLocked(lock::TxnId parent);
  Status CommitLocked(lock::TxnId t);
  Status AbortLocked(lock::TxnId t, bool cascading);
  StatusOr<Value> AccessLocked(std::unique_lock<std::mutex>& lk,
                               lock::TxnId t, ObjectId x,
                               const action::Update& update);
  Value VisibleValueLocked(ObjectId x, lock::TxnId t) const;
  bool DeadlockFromLocked(lock::TxnId start) const;

  Options options_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  lock::TxnId next_id_ = 1;
  std::map<lock::TxnId, TxnInfo> txns_;
  lock::LockManager locks_;
  /// Committed top-level state (absent => init value 0).
  std::map<ObjectId, Value> committed_;
  /// Uncommitted versions: object -> (txn -> private value).
  std::map<ObjectId, std::map<lock::TxnId, Value>> uncommitted_;
  /// Wait-for edges of currently blocked acquirers.
  std::map<lock::TxnId, std::vector<lock::TxnId>> waiting_;
  Trace trace_;
  Stats stats_;
};

/// Concrete handle for TransactionManager transactions. Created via
/// TransactionManager::Begin / Transaction::BeginChild only.
class Transaction final : public TxnHandle {
 public:
  ~Transaction() override;

  Transaction(const Transaction&) = delete;
  Transaction& operator=(const Transaction&) = delete;

  StatusOr<Value> Get(ObjectId x) override;
  Status Put(ObjectId x, Value v) override;
  StatusOr<Value> Apply(ObjectId x, const action::Update& update) override;
  StatusOr<std::unique_ptr<TxnHandle>> BeginChild() override;
  Status Commit() override;
  Status Abort() override;

  lock::TxnId id() const { return id_; }

 private:
  friend class TransactionManager;
  Transaction(TransactionManager* mgr, lock::TxnId id) : mgr_(mgr), id_(id) {}

  TransactionManager* mgr_;
  lock::TxnId id_;
  bool finished_ = false;  // commit/abort called through this handle
};

}  // namespace rnt::txn

#endif  // RNT_TXN_TRANSACTION_MANAGER_H_
