#include "txn/sharded_engine.h"

#include <algorithm>
#include <set>

namespace rnt::txn::internal {

using lock::kNoTxn;
using lock::TxnId;

namespace {
constexpr auto kRelaxed = std::memory_order_relaxed;
/// Wait slice when deadlock detection is off: just a wakeup-miss
/// backstop (pokes and targeted notifies do the real waking).
constexpr std::chrono::milliseconds kIdleSlice{100};
}  // namespace

ShardedEngine::ShardedEngine(TransactionManager::Options options)
    : options_(options),
      locks_(this, lock::LockManager::Options{
                       options.single_mode_locks,
                       std::max<std::uint32_t>(1, options.shards)}),
      table_(std::max<std::uint32_t>(1, options.shards)),
      store_(std::max<std::uint32_t>(1, options.shards)),
      waits_(std::max<std::uint32_t>(1, options.shards)) {}

bool ShardedEngine::IsAncestor(TxnId anc, TxnId desc) const {
  if (anc == kNoTxn || anc == desc) return true;
  auto rec = FindRec(desc);
  if (!rec) return false;
  return std::binary_search(rec->path.begin(), rec->path.end(), anc);
}

std::shared_ptr<ShardedEngine::TxnRec> ShardedEngine::FindRec(
    TxnId t) const {
  const TableShard& shard = table_[TxnShard(t)];
  MutexLock lk(shard.mu);
  auto it = shard.recs.find(t);
  return it == shard.recs.end() ? nullptr : it->second;
}

void ShardedEngine::InsertRec(const std::shared_ptr<TxnRec>& rec) {
  TableShard& shard = table_[TxnShard(rec->id)];
  MutexLock lk(shard.mu);
  shard.recs.emplace(rec->id, rec);
}

void ShardedEngine::CollectSubtree(TxnRec* root) {
  // The subtree is quiesced (root completed => every descendant
  // completed), so children vectors are frozen; the record mutex is
  // still taken for the read to keep the happens-before chain explicit.
  std::vector<TxnRec*> all{root};
  for (std::size_t i = 0; i < all.size(); ++i) {
    MutexLock lk(all[i]->mu);
    for (TxnRec* c : all[i]->children) all.push_back(c);
  }
  for (TxnRec* r : all) {
    TableShard& shard = table_[TxnShard(r->id)];
    MutexLock lk(shard.mu);
    shard.recs.erase(r->id);
  }
}

void ShardedEngine::RegisterWait(TxnId t, WaitEdge edge) {
  WaitShard& shard = waits_[TxnShard(t)];
  MutexLock lk(shard.mu);
  shard.edges[t] = std::move(edge);
}

void ShardedEngine::UnregisterWait(TxnId t) {
  WaitShard& shard = waits_[TxnShard(t)];
  MutexLock lk(shard.mu);
  shard.edges.erase(t);
}

std::optional<ObjectId> ShardedEngine::WaitingOn(TxnId t) const {
  const WaitShard& shard = waits_[TxnShard(t)];
  MutexLock lk(shard.mu);
  auto it = shard.edges.find(t);
  if (it == shard.edges.end()) return std::nullopt;
  return it->second.object;
}

std::map<TxnId, ShardedEngine::WaitEdge> ShardedEngine::WaitSnapshot()
    const {
  std::map<TxnId, WaitEdge> snap;
  for (const WaitShard& shard : waits_) {
    MutexLock lk(shard.mu);
    for (const auto& [t, e] : shard.edges) snap.emplace(t, e);
  }
  return snap;
}

Value ShardedEngine::StoreRead(ObjectId x) const {
  const StoreShard& shard = store_[ObjShard(x)];
  MutexLock lk(shard.mu);
  auto it = shard.values.find(x);
  return it == shard.values.end() ? action::kInitValue : it->second;
}

void ShardedEngine::AppendTrace(TraceEvent event) {
  // Sink before trace: the sink's ordering guarantee comes from the
  // caller's critical section, not from trace_mu_.
  if (options_.trace_sink != nullptr) options_.trace_sink->Append(event);
  if (options_.record_trace) {
    MutexLock lk(trace_mu_);
    trace_.events.push_back(std::move(event));
  }
}

void ShardedEngine::Preload(const std::map<ObjectId, Value>& values) {
  for (const auto& [x, v] : values) {
    StoreShard& shard = store_[ObjShard(x)];
    MutexLock lk(shard.mu);
    shard.values[x] = v;
  }
}

std::map<ObjectId, Value> ShardedEngine::DumpCommitted() const {
  std::map<ObjectId, Value> out;
  for (const StoreShard& shard : store_) {
    MutexLock lk(shard.mu);
    for (const auto& [x, v] : shard.values) out.emplace(x, v);
  }
  return out;
}

Value ShardedEngine::ReadCommitted(ObjectId x) { return StoreRead(x); }

Trace ShardedEngine::TakeTrace() {
  MutexLock lk(trace_mu_);
  Trace out = std::move(trace_);
  trace_.events.clear();
  return out;
}

TransactionManager::Stats ShardedEngine::stats() const {
  TransactionManager::Stats s;
  s.begun = begun_.load(kRelaxed);
  s.committed = committed_.load(kRelaxed);
  s.aborted = aborted_.load(kRelaxed);
  s.deadlock_aborts = deadlock_aborts_.load(kRelaxed);
  s.timeout_aborts = timeout_aborts_.load(kRelaxed);
  s.cascade_aborts = cascade_aborts_.load(kRelaxed);
  s.lock_waits = lock_waits_.load(kRelaxed);
  s.accesses = accesses_.load(kRelaxed);
  s.lock_records = locks_.RecordCount();
  return s;
}

TxnId ShardedEngine::BeginTop() {
  TxnId id = next_id_.fetch_add(1, kRelaxed);
  auto rec = std::make_shared<TxnRec>(id, kNoTxn, std::vector<TxnId>{id},
                                      nullptr);
  InsertRec(rec);
  begun_.fetch_add(1, kRelaxed);
  if (Logging()) {
    AppendTrace(TraceEvent{TraceEvent::Kind::kBegin, id, kNoTxn, 0, {}, 0});
  }
  return id;
}

StatusOr<TxnId> ShardedEngine::BeginChild(TxnId parent) {
  auto pr = FindRec(parent);
  if (!pr) return Status::Aborted("parent transaction is not active");
  TxnRec* p = pr.get();
  MutexLock plk(p->mu);
  if (p->state != TxnState::kActive) {
    return Status::Aborted("parent transaction is not active");
  }
  TxnId id = next_id_.fetch_add(1, kRelaxed);
  std::vector<TxnId> path = p->path;
  path.push_back(id);
  auto rec = std::make_shared<TxnRec>(id, parent, std::move(path), pr);
  // Insert + link under the parent's mutex: the abort cascade marks the
  // parent kAborting under the same mutex, so a new child either lands
  // before the mark (and is visited) or the begin fails above.
  InsertRec(rec);
  p->children.push_back(rec.get());
  ++p->open_children;
  begun_.fetch_add(1, kRelaxed);
  if (Logging()) {
    AppendTrace(
        TraceEvent{TraceEvent::Kind::kBegin, id, parent, 0, {}, 0});
  }
  return id;
}

Status ShardedEngine::DeadStatusLocked(const TxnRec& rec) {
  if (rec.cause == AbortCause::kDeadlock) {
    return Status::Aborted("deadlock victim");
  }
  return Status::Aborted("transaction is not active");
}

void ShardedEngine::LockChain(const std::vector<TxnRec*>& chain) {
  // Root-first (the global record ordering); chain is self..root.
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    (*it)->mu.Lock();
  }
}

void ShardedEngine::UnlockChain(const std::vector<TxnRec*>& chain) {
  for (TxnRec* r : chain) r->mu.Unlock();
}

StatusOr<Value> ShardedEngine::RecordAccessChainLocked(
    const std::vector<TxnRec*>& chain, ObjectId x,
    const action::Update& update) {
  TxnRec* rec = chain.front();  // chain is self..root
  if (rec->state != TxnState::kActive) {
    // Aborted (or committed via a stale handle) between the lock grant
    // and the record: undo the grant — the cascade's OnAbort may have
    // run before we acquired, leaving an orphan hold otherwise.
    Status s = DeadStatusLocked(*rec);
    locks_.OnAbort(rec->id);
    return s;
  }
  accesses_.fetch_add(1, kRelaxed);
  Value seen = action::kInitValue;
  bool found = false;
  for (TxnRec* r : chain) {
    auto it = r->buffer.find(x);
    if (it != r->buffer.end()) {
      seen = it->second;
      found = true;
      break;
    }
  }
  if (!found) seen = StoreRead(x);
  if (!update.IsRead()) rec->buffer[x] = update.Apply(seen);
  if (Logging()) {
    AppendTrace(TraceEvent{TraceEvent::Kind::kPerform,
                           next_id_.fetch_add(1, kRelaxed), rec->id, x,
                           update, seen});
  }
  return seen;
}

StatusOr<Value> ShardedEngine::Access(TxnId t, ObjectId x,
                                      const action::Update& update) {
  auto rec = FindRec(t);
  if (!rec) return Status::Aborted("transaction is not active");
  TxnRec* r = rec.get();
  const lock::LockMode mode =
      update.IsRead() ? lock::LockMode::kRead : lock::LockMode::kWrite;
  const auto deadline =
      std::chrono::steady_clock::now() + options_.lock_wait_timeout;
  bool waited = false;
  for (;;) {
    {
      MutexLock lk(r->mu);
      if (r->state != TxnState::kActive) return DeadStatusLocked(*r);
    }
    auto attempt = locks_.AcquireOrEnqueue(x, t, mode);
    if (attempt.acquired) break;
    if (!waited) {
      waited = true;
      lock_waits_.fetch_add(1, kRelaxed);
    }
    RegisterWait(t, WaitEdge{x, std::move(attempt.blockers)});
    if (options_.deadlock_detection && ResolveDeadlockFrom(t)) {
      // We are the victim; our subtree is already aborted.
      UnregisterWait(t);
      locks_.CancelWait(x);
      return Status::Aborted("deadlock victim");
    }
    // Wait in slices: a targeted wakeup (release/poke on x) ends the
    // wait early; the slice boundary re-runs deadlock detection.
    const auto now = std::chrono::steady_clock::now();
    const auto slice = options_.deadlock_detection
                           ? options_.deadlock_check_interval
                           : kIdleSlice;
    const auto slice_end = std::min(deadline, now + slice);
    bool moved = locks_.WaitOn(x, attempt.ticket, slice_end);
    UnregisterWait(t);
    if (!moved && std::chrono::steady_clock::now() >= deadline) {
      {
        MutexLock lk(r->mu);
        if (r->state != TxnState::kActive) return DeadStatusLocked(*r);
      }
      timeout_aborts_.fetch_add(1, kRelaxed);
      AbortAndCollect(r, AbortCause::kTimeout);
      return Status::Timeout("lock wait timed out");
    }
  }
  // Lock held. Lock the ancestor chain root-first (the global record
  // ordering) so value read + buffer write + trace append are atomic
  // against a child of ours committing its buffer into us.
  std::vector<TxnRec*> chain;  // self..root
  for (TxnRec* c = r; c != nullptr; c = c->parent_rec.get()) {
    chain.push_back(c);
  }
  LockChain(chain);
  auto result = RecordAccessChainLocked(chain, x, update);
  UnlockChain(chain);
  return result;
}

Status ShardedEngine::CommitCheckLocked(const TxnRec& rec) {
  if (rec.state == TxnState::kAborted || rec.state == TxnState::kAborting) {
    return Status::Aborted("transaction was aborted");
  }
  if (rec.state == TxnState::kCommitted) {
    return Status::IllegalState("transaction already committed");
  }
  if (rec.open_children != 0) {
    return Status::IllegalState("commit with open subtransactions");
  }
  return Status::Ok();
}

Status ShardedEngine::CommitChildLocked(TxnRec* rec, TxnRec* parent) {
  RNT_RETURN_IF_ERROR(CommitCheckLocked(*rec));
  if (parent->state != TxnState::kActive) {
    // Orphan: an ancestor is dead or dying; the cascade will emit our
    // abort event, so do not commit into a doomed buffer.
    return Status::Aborted("transaction was aborted");
  }
  // Version propagation (d24)/(e21): private values merge into the
  // parent's buffer — before the commit event and before any lock is
  // released, so a later acquirer of x observes the merged value.
  for (const auto& [x, v] : rec->buffer) parent->buffer[x] = v;
  rec->buffer.clear();
  rec->state = TxnState::kCommitted;
  --parent->open_children;
  if (Logging()) {
    AppendTrace(
        TraceEvent{TraceEvent::Kind::kCommit, rec->id, rec->parent, 0, {}, 0});
  }
  return Status::Ok();
}

Status ShardedEngine::CommitTopLocked(TxnRec* rec) {
  RNT_RETURN_IF_ERROR(CommitCheckLocked(*rec));
  // Top-level commit: private values become durable — before the commit
  // event and before any lock is released, as above.
  for (const auto& [x, v] : rec->buffer) {
    StoreShard& shard = store_[ObjShard(x)];
    MutexLock slk(shard.mu);
    shard.values[x] = v;
  }
  rec->buffer.clear();
  rec->state = TxnState::kCommitted;
  if (Logging()) {
    AppendTrace(
        TraceEvent{TraceEvent::Kind::kCommit, rec->id, kNoTxn, 0, {}, 0});
  }
  return Status::Ok();
}

Status ShardedEngine::Commit(TxnId t) {
  auto rec = FindRec(t);
  if (!rec) return Status::Aborted("transaction is gone");
  TxnRec* r = rec.get();
  TxnRec* p = r->parent_rec.get();
  Status prep = Status::Ok();
  if (p != nullptr) {
    // Parent before child — the global record ordering.
    MutexLock plk(p->mu);
    MutexLock lk(r->mu);
    prep = CommitChildLocked(r, p);
  } else {
    MutexLock lk(r->mu);
    prep = CommitTopLocked(r);
  }
  if (!prep.ok()) return prep;
  // Lock inheritance + targeted wakeups (release-lock). Runs after the
  // merge above: the shard mutex orders the release after the buffer
  // write, so woken waiters see the merged values.
  locks_.OnCommit(t, r->parent);
  if (p != nullptr) {
    // Inheritance race repair: between our critical section (parent
    // observed kActive) and the OnCommit above, an abort cascade may
    // have killed the parent AND already run its lose-lock sweep — the
    // inheritance then re-creates retained locks for a dead transaction,
    // which would block non-descendants on those objects forever.
    // kAborted is set before the cascade's OnAbort runs, so: observing
    // kActive/kAborting means the cascade's own OnAbort is still ahead
    // of us and will sweep what we inherited; observing kAborted means
    // it may be behind us, so sweep here (OnAbort is idempotent, and the
    // parent's buffer was already cleared before kAborted was set — no
    // stale value becomes visible through the early release).
    bool parent_collected;
    {
      MutexLock plk(p->mu);
      parent_collected = p->state == TxnState::kAborted;
    }
    if (parent_collected) locks_.OnAbort(r->parent);
  }
  committed_.fetch_add(1, kRelaxed);
  if (p == nullptr) CollectSubtree(r);
  return Status::Ok();
}

Status ShardedEngine::Abort(TxnId t) {
  auto rec = FindRec(t);
  if (!rec) return Status::Ok();  // idempotent on unknown transactions
  AbortAndCollect(rec.get(), AbortCause::kRequested);
  return Status::Ok();
}

bool ShardedEngine::AbortAndCollect(TxnRec* rec, AbortCause cause) {
  bool transitioned = AbortTree(rec, cause);
  if (transitioned && rec->parent == kNoTxn) CollectSubtree(rec);
  return transitioned;
}

bool ShardedEngine::AbortTree(TxnRec* rec, AbortCause cause) {
  std::vector<TxnRec*> kids;
  {
    MutexLock lk(rec->mu);
    if (rec->state != TxnState::kActive) {
      return false;  // idempotent on dead transactions
    }
    // Mark first: freezes the children list and fails new accesses and
    // commits, so the snapshot below covers the whole live subtree.
    rec->state = TxnState::kAborting;
    rec->cause = cause;
    kids = rec->children;
  }
  // Kill live descendants first (post-order), one abort event each —
  // the cascade's children-first event order that ReplayTrace enforces.
  for (TxnRec* c : kids) {
    AbortTree(c, AbortCause::kCascade);
  }
  {
    MutexLock lk(rec->mu);
    rec->buffer.clear();  // (f21): discard private versions
    rec->state = TxnState::kAborted;
    if (Logging()) {
      AppendTrace(TraceEvent{TraceEvent::Kind::kAbort, rec->id,
                             rec->parent, 0, {}, 0});
    }
  }
  locks_.OnAbort(rec->id);  // lose-lock, with targeted wakeups
  if (rec->parent_rec) {
    TxnRec* p = rec->parent_rec.get();
    MutexLock plk(p->mu);
    --p->open_children;
  }
  aborted_.fetch_add(1, kRelaxed);
  if (cause == AbortCause::kCascade) cascade_aborts_.fetch_add(1, kRelaxed);
  // If the transaction's thread is blocked on a lock, kick it awake so
  // it observes the abort.
  if (auto x = WaitingOn(rec->id)) locks_.Poke(*x);
  return true;
}

bool ShardedEngine::ResolveDeadlockFrom(TxnId start) {
  // Shard-by-shard snapshot: no stop-the-world. The snapshot may be
  // slightly stale under churn — at worst a just-broken cycle aborts a
  // victim spuriously, which is always a legal outcome.
  const std::map<TxnId, WaitEdge> snap = WaitSnapshot();
  // Wait-for reachability over the nested structure: t waits for blocker
  // q; q cannot release until its subtree completes, so t transitively
  // waits on every *waiting* descendant of q. DFS with predecessors so
  // the cycle can be reconstructed.
  std::map<TxnId, TxnId> pred;
  std::vector<TxnId> stack{start};
  std::set<TxnId> visited{start};
  std::vector<TxnId> cycle;
  while (!stack.empty() && cycle.empty()) {
    TxnId c = stack.back();
    stack.pop_back();
    auto wit = snap.find(c);
    if (wit == snap.end()) continue;
    for (TxnId q : wit->second.blockers) {
      for (const auto& [w, edge] : snap) {
        if (!IsAncestor(q, w)) continue;
        if (w == start) {
          for (TxnId p = c;; p = pred.at(p)) {
            cycle.push_back(p);
            if (p == start) break;
          }
          break;
        }
        if (visited.insert(w).second) {
          pred[w] = c;
          stack.push_back(w);
        }
      }
      if (!cycle.empty()) break;
    }
  }
  if (cycle.empty()) return false;
  // Deterministic victim: the youngest (largest id) waiter on the cycle,
  // so a fixed-seed run always kills the same transaction.
  const TxnId victim = *std::max_element(cycle.begin(), cycle.end());
  auto vrec = FindRec(victim);
  if (vrec) {
    if (AbortAndCollect(vrec.get(), AbortCause::kDeadlock)) {
      deadlock_aborts_.fetch_add(1, kRelaxed);
    }
  }
  return victim == start;
}

}  // namespace rnt::txn::internal
