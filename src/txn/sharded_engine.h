#ifndef RNT_TXN_SHARDED_ENGINE_H_
#define RNT_TXN_SHARDED_ENGINE_H_

#include <atomic>
#include <map>
#include <memory>
#include <optional>
#include <unordered_map>
#include <vector>

#include "common/mutex.h"
#include "common/thread_annotations.h"
#include "txn/engine_core.h"

namespace rnt::txn::internal {

/// The fine-grained engine (EngineMode::kSharded, the default).
///
/// State is split so that unrelated transactions never contend:
///  * the lock table is sharded by object inside lock::LockManager, with
///    per-object wait queues — a release wakes exactly that object's
///    waiters (no broadcast);
///  * each transaction's private value-map versions live in its own
///    record (TxnRec::buffer) guarded by a per-record mutex; commit
///    merges child into parent under the parent's mutex only —
///    (d24)/(e21) with parent-local locking;
///  * the committed store, the transaction table, and the wait-for graph
///    are sharded with per-shard mutexes; deadlock detection snapshots
///    the wait graph shard by shard (no stop-the-world lock) and picks
///    the youngest (largest-id) waiter on the cycle — deterministically.
///
/// Lock ordering (deadlock-freedom of the engine's own mutexes): record
/// mutexes are only ever nested ancestor-before-descendant along one
/// ancestor chain (Access locks root..self; Commit locks parent, child;
/// the abort cascade holds at most one record mutex at a time). Lock
/// shards, store shards, table shards, the wait graph, and the trace
/// mutex are leaves below record mutexes; a lock shard may query the
/// table (IsAncestor) but never a record mutex.
///
/// Why Access locks the whole ancestor chain: while t holds a lock on x,
/// ancestor buffers for x are frozen (a committing subtree that wrote x
/// would need a conflicting write lock), except t's own buffer, which a
/// committing child of t may merge into concurrently. Holding the chain
/// makes read-value + buffer-write + trace-append atomic against such
/// merges, so recorded traces replay as valid value-map computations in
/// trace order. Chains are per-tree: different top-level transactions
/// share no record mutex, which is where multi-core scaling comes from.
///
/// The locking discipline above is expressed with the capability
/// annotations from common/thread_annotations.h and machine-checked by
/// `-Wthread-safety` under the `lint` preset. The only opt-outs
/// (NO_THREAD_SAFETY_ANALYSIS) are the chain lock/unlock helpers — a
/// variable-length ordered acquisition the analysis cannot express —
/// and the chain-protected access path that rides on them.
class ShardedEngine final : public EngineCore, public lock::Ancestry {
 public:
  explicit ShardedEngine(TransactionManager::Options options);
  ~ShardedEngine() override = default;

  lock::TxnId BeginTop() override;
  StatusOr<lock::TxnId> BeginChild(lock::TxnId parent) override;
  StatusOr<Value> Access(lock::TxnId t, ObjectId x,
                         const action::Update& update) override;
  Status Commit(lock::TxnId t) override;
  Status Abort(lock::TxnId t) override;

  Value ReadCommitted(ObjectId x) override;
  Trace TakeTrace() override;
  TransactionManager::Stats stats() const override;
  void Preload(const std::map<ObjectId, Value>& values) override;
  std::map<ObjectId, Value> DumpCommitted() const override;

  // lock::Ancestry. Thread-safe: ancestor paths are immutable.
  bool IsAncestor(lock::TxnId anc, lock::TxnId desc) const override;

 private:
  enum class TxnState : std::uint8_t {
    kActive,
    kAborting,  // abort in progress: no new children/accesses/commits
    kCommitted,
    kAborted
  };
  enum class AbortCause : std::uint8_t {
    kNone,
    kRequested,
    kCascade,
    kDeadlock,
    kTimeout
  };

  struct TxnRec {
    TxnRec(lock::TxnId id_in, lock::TxnId parent_in,
           std::vector<lock::TxnId> path_in,
           std::shared_ptr<TxnRec> parent_rec_in)
        : id(id_in),
          parent(parent_in),
          path(std::move(path_in)),
          parent_rec(std::move(parent_rec_in)) {}

    const lock::TxnId id;
    const lock::TxnId parent;
    /// Ancestors + self, ascending (a parent's id is always smaller than
    /// its children's). Immutable => lock-free IsAncestor.
    const std::vector<lock::TxnId> path;
    /// Owning pointer up the chain; children are raw (the table owns
    /// every record) so record graphs have no shared_ptr cycles.
    const std::shared_ptr<TxnRec> parent_rec;

    mutable Mutex mu;
    TxnState state GUARDED_BY(mu) = TxnState::kActive;
    AbortCause cause GUARDED_BY(mu) = AbortCause::kNone;
    std::uint32_t open_children GUARDED_BY(mu) = 0;
    std::vector<TxnRec*> children GUARDED_BY(mu);
    /// This transaction's private value-map versions.
    std::map<ObjectId, Value> buffer GUARDED_BY(mu);
  };

  struct TableShard {
    mutable Mutex mu;
    std::unordered_map<lock::TxnId, std::shared_ptr<TxnRec>> recs
        GUARDED_BY(mu);
  };
  struct StoreShard {
    mutable Mutex mu;
    std::unordered_map<ObjectId, Value> values GUARDED_BY(mu);
  };
  /// One blocked acquirer's edge in the wait-for graph.
  struct WaitEdge {
    ObjectId object = 0;
    std::vector<lock::TxnId> blockers;
  };
  struct WaitShard {
    mutable Mutex mu;
    std::unordered_map<lock::TxnId, WaitEdge> edges GUARDED_BY(mu);
  };

  std::size_t TxnShard(lock::TxnId t) const {
    return static_cast<std::size_t>(t * 0x9e3779b97f4a7c15ull >> 40) %
           table_.size();
  }
  std::size_t ObjShard(ObjectId x) const {
    return static_cast<std::size_t>(
               static_cast<std::uint64_t>(x) * 0x9e3779b97f4a7c15ull >> 40) %
           store_.size();
  }

  std::shared_ptr<TxnRec> FindRec(lock::TxnId t) const;
  void InsertRec(const std::shared_ptr<TxnRec>& rec);
  /// Removes a completed top-level subtree from the table.
  void CollectSubtree(TxnRec* root);

  void RegisterWait(lock::TxnId t, WaitEdge edge);
  void UnregisterWait(lock::TxnId t);
  std::optional<ObjectId> WaitingOn(lock::TxnId t) const;
  /// Shard-by-shard snapshot, ordered by waiter id for determinism.
  std::map<lock::TxnId, WaitEdge> WaitSnapshot() const;

  /// Status for an access against a dead transaction (rec.mu held).
  static Status DeadStatusLocked(const TxnRec& rec) REQUIRES(rec.mu);
  /// Locks/unlocks every record mutex of `chain` (self..root) in the
  /// global root-first order. A variable-length ordered acquisition is
  /// outside what the thread-safety analysis can express, so these two
  /// helpers are its trusted base — keep them trivially auditable.
  static void LockChain(const std::vector<TxnRec*>& chain)
      NO_THREAD_SAFETY_ANALYSIS;
  static void UnlockChain(const std::vector<TxnRec*>& chain)
      NO_THREAD_SAFETY_ANALYSIS;
  /// The visible value of x for the chain (every chain mutex held via
  /// LockChain — invisible to the analysis, hence the opt-out), plus the
  /// private write and the trace event, atomically.
  StatusOr<Value> RecordAccessChainLocked(const std::vector<TxnRec*>& chain,
                                          ObjectId x,
                                          const action::Update& update)
      NO_THREAD_SAFETY_ANALYSIS;
  /// Commit state transition + version propagation for a child commit
  /// (parent and child record mutexes held, parent first).
  Status CommitChildLocked(TxnRec* rec, TxnRec* parent)
      REQUIRES(rec->mu, parent->mu);
  /// Same for a top-level commit (merges into the durable store).
  Status CommitTopLocked(TxnRec* rec) REQUIRES(rec->mu);
  /// Shared commit eligibility checks.
  static Status CommitCheckLocked(const TxnRec& rec) REQUIRES(rec.mu);
  /// Aborts rec's whole live subtree (children-first abort events).
  /// Returns true iff rec itself transitioned active -> aborted here.
  bool AbortTree(TxnRec* rec, AbortCause cause);
  /// Abort + stats + GC wrapper used by Abort() and victim kills.
  bool AbortAndCollect(TxnRec* rec, AbortCause cause);
  /// Runs deadlock detection from `start`; kills the chosen victim.
  /// Returns true iff `start` itself was the victim.
  bool ResolveDeadlockFrom(lock::TxnId start);

  Value StoreRead(ObjectId x) const;
  /// True when events must be materialized at all (in-memory trace or
  /// streaming sink) — gates both event construction and access-id
  /// allocation so the two consumers always see identical ids.
  bool Logging() const {
    return options_.record_trace || options_.trace_sink != nullptr;
  }
  /// Emits one event: to the sink first (still inside the caller's
  /// serializing critical section), then to the in-memory trace.
  void AppendTrace(TraceEvent event);

  TransactionManager::Options options_;
  lock::LockManager locks_;
  std::atomic<lock::TxnId> next_id_{1};
  std::vector<TableShard> table_;
  std::vector<StoreShard> store_;
  std::vector<WaitShard> waits_;

  mutable Mutex trace_mu_;
  Trace trace_ GUARDED_BY(trace_mu_);

  std::atomic<std::uint64_t> begun_{0};
  std::atomic<std::uint64_t> committed_{0};
  std::atomic<std::uint64_t> aborted_{0};
  std::atomic<std::uint64_t> deadlock_aborts_{0};
  std::atomic<std::uint64_t> timeout_aborts_{0};
  std::atomic<std::uint64_t> cascade_aborts_{0};
  std::atomic<std::uint64_t> lock_waits_{0};
  std::atomic<std::uint64_t> accesses_{0};
};

}  // namespace rnt::txn::internal

#endif  // RNT_TXN_SHARDED_ENGINE_H_
