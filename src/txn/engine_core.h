#ifndef RNT_TXN_ENGINE_CORE_H_
#define RNT_TXN_ENGINE_CORE_H_

#include <map>

#include "action/update.h"
#include "common/status.h"
#include "common/types.h"
#include "lock/lock_manager.h"
#include "txn/trace.h"
#include "txn/transaction_manager.h"

namespace rnt::txn::internal {

/// The engine behind TransactionManager's public face. Two
/// implementations share every observable behavior (status codes,
/// stats semantics, trace shape): GlobalEngine — the seed design, one
/// mutex around everything, kept as the `--engine=global-mutex`
/// comparison baseline — and ShardedEngine, the fine-grained default.
class EngineCore {
 public:
  virtual ~EngineCore() = default;

  /// Begins a top-level transaction (cannot fail: the virtual root U
  /// never dies).
  virtual lock::TxnId BeginTop() = 0;
  /// Begins a subtransaction of `parent`; fails iff the parent is not
  /// active.
  virtual StatusOr<lock::TxnId> BeginChild(lock::TxnId parent) = 0;
  /// One access: lock acquisition (blocking, with deadlock/timeout
  /// policy), visible-value computation, private-version write.
  virtual StatusOr<Value> Access(lock::TxnId t, ObjectId x,
                                 const action::Update& update) = 0;
  virtual Status Commit(lock::TxnId t) = 0;
  virtual Status Abort(lock::TxnId t) = 0;

  virtual Value ReadCommitted(ObjectId x) = 0;
  virtual Trace TakeTrace() = 0;
  virtual TransactionManager::Stats stats() const = 0;

  /// Seeds the committed store (quiescent engines only; see
  /// TransactionManager::Preload).
  virtual void Preload(const std::map<ObjectId, Value>& values) = 0;
  /// Snapshot of the committed store (see
  /// TransactionManager::DumpCommitted).
  virtual std::map<ObjectId, Value> DumpCommitted() const = 0;
};

}  // namespace rnt::txn::internal

#endif  // RNT_TXN_ENGINE_CORE_H_
