#include "txn/transaction_manager.h"

#include "txn/engine_core.h"
#include "txn/global_engine.h"
#include "txn/sharded_engine.h"

namespace rnt::txn {

namespace {

std::unique_ptr<internal::EngineCore> MakeCore(
    const TransactionManager::Options& options) {
  if (options.mode == EngineMode::kGlobalMutex) {
    return std::make_unique<internal::GlobalEngine>(options);
  }
  return std::make_unique<internal::ShardedEngine>(options);
}

}  // namespace

TransactionManager::TransactionManager() : TransactionManager(Options{}) {}

TransactionManager::TransactionManager(Options options)
    : impl_(MakeCore(options)) {}

TransactionManager::~TransactionManager() = default;

std::unique_ptr<TxnHandle> TransactionManager::Begin() {
  lock::TxnId id = impl_->BeginTop();
  return std::unique_ptr<TxnHandle>(new Transaction(impl_.get(), id));
}

Value TransactionManager::ReadCommitted(ObjectId x) {
  return impl_->ReadCommitted(x);
}

Trace TransactionManager::TakeTrace() { return impl_->TakeTrace(); }

void TransactionManager::Preload(const std::map<ObjectId, Value>& values) {
  impl_->Preload(values);
}

std::map<ObjectId, Value> TransactionManager::DumpCommitted() const {
  return impl_->DumpCommitted();
}

TransactionManager::Stats TransactionManager::stats() const {
  return impl_->stats();
}

// ---------------------------------------------------------------------
// Transaction handle.

Transaction::~Transaction() {
  if (!finished_) (void)Abort();
}

StatusOr<Value> Transaction::Get(ObjectId x) {
  return Apply(x, action::Update::Read());
}

Status Transaction::Put(ObjectId x, Value v) {
  auto r = Apply(x, action::Update::Write(v));
  return r.status();
}

StatusOr<Value> Transaction::Apply(ObjectId x, const action::Update& update) {
  return core_->Access(id_, x, update);
}

StatusOr<std::unique_ptr<TxnHandle>> Transaction::BeginChild() {
  RNT_ASSIGN_OR_RETURN(lock::TxnId child, core_->BeginChild(id_));
  return std::unique_ptr<TxnHandle>(new Transaction(core_, child));
}

Status Transaction::Commit() {
  Status s = core_->Commit(id_);
  if (s.ok() || s.IsAborted()) finished_ = true;
  return s;
}

Status Transaction::Abort() {
  finished_ = true;
  return core_->Abort(id_);
}

}  // namespace rnt::txn
