// Executable counterparts of the paper's four simulation results:
//
//   Lemma 15:   h   : 𝒜′ (AAT)         simulates 𝒜   (action trees + C)
//   Lemma 17:   h′  : 𝒜″ (version map) simulates 𝒜′
//   Lemma 20:   h″  : 𝒜‴ (value map)   simulates 𝒜″  (possibilities!)
//   Lemma 28:   h‴  : ℬ  (distributed) simulates 𝒜‴  (local mappings)
//   Theorem 29: h∘h′∘h″∘h‴ : ℬ simulates 𝒜.
//
// Strategy: generate random valid computations at each lower level, map
// each event through the interpretation, replay the image at the upper
// level, and require every image event to be defined (possibilities-
// mapping property (b)) plus the state-correspondence invariants the
// paper's proofs maintain (properties (a)/(c)/(d)).

#include <gtest/gtest.h>

#include "aat/aat_algebra.h"
#include "algebra/algebra.h"
#include "dist/dist_algebra.h"
#include "spec/spec_algebra.h"
#include "testutil.h"
#include "valuemap/value_map_algebra.h"
#include "versionmap/version_map_algebra.h"

namespace rnt {
namespace {

using algebra::LockEvent;
using algebra::TreeEvent;

testutil::RandomRegistryParams SmallParams() {
  testutil::RandomRegistryParams p;
  p.top_level = 2;
  p.max_children = 2;
  p.max_depth = 3;
  p.objects = 2;
  return p;
}

// Lemma 15: every valid AAT computation is a valid computation of the
// spec algebra — including its implicit serializability constraint C
// (this is where Theorem 14 becomes load-bearing).
TEST(RefinementTest, Lemma15AatSimulatesSpecWithOracle) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(seed);
    action::ActionRegistry reg = testutil::MakeRandomRegistry(rng, SmallParams());
    aat::AatAlgebra lower(&reg);
    spec::SpecAlgebra upper(&reg);  // oracle-enforcing
    auto run = algebra::RandomRun(
        lower, [](const aat::Aat& s) { return aat::EventCandidates(s); }, rng,
        30);
    Status st = algebra::CheckRefinement(
        lower, upper, std::span<const TreeEvent>(run.events),
        [](const TreeEvent& e) { return std::optional<TreeEvent>(e); },
        [](const aat::Aat& ls, const action::ActionTree& us) -> Status {
          // h maps (S, data) to {S}: the underlying trees must coincide.
          if (!(ls == us)) return Status::Internal("h(T) mismatch");
          return Status::Ok();
        });
    EXPECT_TRUE(st.ok()) << st << " seed " << seed;
  }
}

// Lemma 17: version-map runs project (dropping lock events) to valid AAT
// runs.
TEST(RefinementTest, Lemma17VersionMapSimulatesAat) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    action::ActionRegistry reg = testutil::MakeRandomRegistry(rng);
    versionmap::VersionMapAlgebra lower(&reg);
    aat::AatAlgebra upper(&reg);
    auto run = algebra::RandomRun(
        lower,
        [](const versionmap::VmState& s) {
          return versionmap::EventCandidates(s);
        },
        rng, 80);
    Status st = algebra::CheckRefinement(
        lower, upper, std::span<const LockEvent>(run.events),
        algebra::LockToTreeEvent,
        [](const versionmap::VmState& ls, const aat::Aat& us) -> Status {
          if (!(ls.tree == us)) return Status::Internal("tree mismatch");
          return Status::Ok();
        });
    EXPECT_TRUE(st.ok()) << st << " seed " << seed;
  }
}

// Lemma 20: value-map runs are valid version-map runs, with the witness
// version map W satisfying eval(W) = V throughout. (Checked again here at
// chain level; value_map_test covers the per-step details.)
TEST(RefinementTest, Lemma20ValueMapSimulatesVersionMap) {
  for (std::uint64_t seed = 30; seed < 50; ++seed) {
    Rng rng(seed);
    action::ActionRegistry reg = testutil::MakeRandomRegistry(rng);
    valuemap::ValueMapAlgebra lower(&reg);
    versionmap::VersionMapAlgebra upper(&reg);
    auto run = algebra::RandomRun(
        lower,
        [](const valuemap::ValState& s) { return valuemap::EventCandidates(s); },
        rng, 80);
    Status st = algebra::CheckRefinement(
        lower, upper, std::span<const LockEvent>(run.events),
        [](const LockEvent& e) { return std::optional<LockEvent>(e); },
        [&](const valuemap::ValState& ls,
            const versionmap::VmState& us) -> Status {
          if (!(ls.tree == us.tree)) return Status::Internal("tree mismatch");
          if (!(valuemap::Eval(us.vmap, reg) == ls.vmap)) {
            return Status::Internal("eval(W) != V");
          }
          return Status::Ok();
        });
    EXPECT_TRUE(st.ok()) << st << " seed " << seed;
  }
}

// Lemma 28: distributed runs project to valid value-map runs, and every
// reachable pair of states is i-consistent for all components (the local
// mappings h_i).
TEST(RefinementTest, Lemma28DistSimulatesValueMap) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    action::ActionRegistry reg = testutil::MakeRandomRegistry(rng);
    dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
    dist::DistAlgebra lower(&topo);
    valuemap::ValueMapAlgebra upper(&reg);
    dist::DistEventCandidates cand(&lower, seed * 31 + 7);
    auto run = algebra::RandomRun(lower, std::ref(cand), rng, 120);
    Status st = algebra::CheckRefinement(
        lower, upper, std::span<const dist::DistEvent>(run.events),
        dist::DistToValueEvent,
        [&](const dist::DistState& ls,
            const valuemap::ValState& us) -> Status {
          return dist::CheckLocalConsistency(lower, ls, us);
        });
    EXPECT_TRUE(st.ok()) << st << " seed " << seed;
  }
}

// Theorem 29, end to end: a random distributed run, mapped down the whole
// chain, is a valid computation of the top-level spec (with the
// serializability constraint checked by the oracle), and the final
// abstract action tree has perm(T) serializable.
TEST(RefinementTest, Theorem29FullChain) {
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    action::ActionRegistry reg = testutil::MakeRandomRegistry(rng, SmallParams());
    dist::Topology topo = dist::Topology::RoundRobin(&reg, 2);
    dist::DistAlgebra dist_alg(&topo);
    dist::DistEventCandidates cand(&dist_alg, seed + 99);
    auto dist_run = algebra::RandomRun(dist_alg, std::ref(cand), rng, 80);

    // h‴ : ℬ -> 𝒜‴.
    std::vector<LockEvent> lock_events =
        algebra::MapSequence<LockEvent>(
            std::span<const dist::DistEvent>(dist_run.events),
            dist::DistToValueEvent);
    valuemap::ValueMapAlgebra val_alg(&reg);
    auto val_state =
        algebra::Run(val_alg, std::span<const LockEvent>(lock_events));
    ASSERT_TRUE(val_state.has_value()) << "seed " << seed;

    // h″ : 𝒜‴ -> 𝒜″ (same event names).
    versionmap::VersionMapAlgebra vm_alg(&reg);
    auto vm_state =
        algebra::Run(vm_alg, std::span<const LockEvent>(lock_events));
    ASSERT_TRUE(vm_state.has_value()) << "seed " << seed;
    EXPECT_TRUE(valuemap::Eval(vm_state->vmap, reg) == val_state->vmap);

    // h′ : 𝒜″ -> 𝒜′ (drop lock events).
    std::vector<TreeEvent> tree_events = algebra::MapSequence<TreeEvent>(
        std::span<const LockEvent>(lock_events), algebra::LockToTreeEvent);
    aat::AatAlgebra aat_alg(&reg);
    auto aat_state =
        algebra::Run(aat_alg, std::span<const TreeEvent>(tree_events));
    ASSERT_TRUE(aat_state.has_value()) << "seed " << seed;

    // h : 𝒜′ -> 𝒜 including constraint C.
    spec::SpecAlgebra spec_alg(&reg);
    auto spec_state =
        algebra::Run(spec_alg, std::span<const TreeEvent>(tree_events));
    ASSERT_TRUE(spec_state.has_value()) << "seed " << seed;

    EXPECT_TRUE(*spec_state == *aat_state);
    EXPECT_TRUE(aat::IsPermDataSerializable(*aat_state)) << "seed " << seed;
    EXPECT_TRUE(action::IsPermSerializable(*spec_state)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rnt
