#include "common/status.h"

#include <gtest/gtest.h>

namespace rnt {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = Status::Aborted("deadlock victim");
  EXPECT_FALSE(s.ok());
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(s.code(), StatusCode::kAborted);
  EXPECT_EQ(s.message(), "deadlock victim");
  EXPECT_EQ(s.ToString(), "ABORTED: deadlock victim");
}

TEST(StatusTest, AllFactoriesProduceTheirCode) {
  EXPECT_EQ(Status::FailedPrecondition("m").code(),
            StatusCode::kFailedPrecondition);
  EXPECT_EQ(Status::NotFound("m").code(), StatusCode::kNotFound);
  EXPECT_EQ(Status::AlreadyExists("m").code(), StatusCode::kAlreadyExists);
  EXPECT_EQ(Status::InvalidArgument("m").code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(Status::Aborted("m").code(), StatusCode::kAborted);
  EXPECT_EQ(Status::Timeout("m").code(), StatusCode::kTimeout);
  EXPECT_EQ(Status::IllegalState("m").code(), StatusCode::kIllegalState);
  EXPECT_EQ(Status::Internal("m").code(), StatusCode::kInternal);
}

TEST(StatusTest, CodeNamesAreStable) {
  EXPECT_EQ(StatusCodeName(StatusCode::kOk), "OK");
  EXPECT_EQ(StatusCodeName(StatusCode::kAborted), "ABORTED");
  EXPECT_EQ(StatusCodeName(StatusCode::kTimeout), "TIMEOUT");
  EXPECT_EQ(StatusCodeName(StatusCode::kInternal), "INTERNAL");
}

TEST(StatusTest, EqualityComparesCodesOnly) {
  EXPECT_EQ(Status::Aborted("a"), Status::Aborted("b"));
  EXPECT_FALSE(Status::Aborted("a") == Status::Timeout("a"));
}

TEST(StatusOrTest, HoldsValue) {
  StatusOr<int> v = 42;
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(v.value(), 42);
  EXPECT_EQ(*v, 42);
  EXPECT_TRUE(v.status().ok());
}

TEST(StatusOrTest, HoldsError) {
  StatusOr<int> v = Status::NotFound("x");
  ASSERT_FALSE(v.ok());
  EXPECT_EQ(v.status().code(), StatusCode::kNotFound);
}

TEST(StatusOrTest, MoveOutValue) {
  StatusOr<std::string> v = std::string("hello");
  std::string s = std::move(v).value();
  EXPECT_EQ(s, "hello");
}

StatusOr<int> Half(int x) {
  if (x % 2 != 0) return Status::InvalidArgument("odd");
  return x / 2;
}

Status UseMacros(int in, int* out) {
  RNT_ASSIGN_OR_RETURN(int h, Half(in));
  RNT_RETURN_IF_ERROR(Status::Ok());
  *out = h;
  return Status::Ok();
}

TEST(StatusOrTest, MacrosPropagate) {
  int out = 0;
  EXPECT_TRUE(UseMacros(8, &out).ok());
  EXPECT_EQ(out, 4);
  Status s = UseMacros(7, &out);
  EXPECT_EQ(s.code(), StatusCode::kInvalidArgument);
}

}  // namespace
}  // namespace rnt
