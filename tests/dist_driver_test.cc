#include "sim/dist_driver.h"

#include <gtest/gtest.h>

#include <set>

#include "sim/diagnosis.h"
#include "testutil.h"

namespace rnt::sim {
namespace {

using action::ActionRegistry;
using action::Update;

TEST(DistDriverTest, SingleTransactionSingleNode) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  reg.NewAccess(t, 0, Update::Add(5));
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 1);
  dist::DistAlgebra alg(&topo);
  auto run = RunProgram(alg);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->stats.performs, 1u);
  EXPECT_EQ(run->stats.commits, 1u);
  EXPECT_EQ(run->stats.messages, 0u) << "one node needs no messages";
  EXPECT_EQ(run->final_state.nodes[0].vmap.Get(0, kRootAction), 5);
}

TEST(DistDriverTest, CrossNodeExecutionProducesSerialFold) {
  // Two top-level transactions on different nodes, both updating the
  // same object: final root value must be the serial fold.
  ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId t2 = reg.NewAction(kRootAction);
  reg.NewAccess(t1, 0, Update::Add(1));
  reg.NewAccess(t2, 0, Update::MulAdd(10, 0));
  dist::Topology topo(
      &reg, 3, [](ObjectId) { return 2u; },
      [&](ActionId a) { return a == t1 ? 0u : 1u; });
  dist::DistAlgebra alg(&topo);
  auto run = RunProgram(alg);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->final_state.nodes[2].vmap.Get(0, kRootAction), 10)
      << "(0+1)*10+0, DFS order t1 then t2";
  EXPECT_GT(run->stats.messages, 0u) << "knowledge had to travel";
}

TEST(DistDriverTest, AbortedSubtreeContributesNothing) {
  ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId s1 = reg.NewAction(t1);
  reg.NewAccess(s1, 0, Update::Add(100));
  ActionId s2 = reg.NewAction(t1);
  reg.NewAccess(s2, 0, Update::Add(1));
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 2);
  dist::DistAlgebra alg(&topo);
  DriverOptions opt;
  opt.abort_set = {s1};
  auto run = RunProgram(alg, opt);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->stats.aborts, 1u);
  EXPECT_EQ(run->stats.performs, 1u) << "s1's access never ran";
  NodeId home0 = topo.HomeOfObject(0);
  EXPECT_EQ(run->final_state.nodes[home0].vmap.Get(0, kRootAction), 1);
}

TEST(DistDriverTest, AbortAfterPerformDiscardsViaLoseLock) {
  // The aborted subtransaction performs first (it precedes its sibling in
  // DFS order), so its lock must be discarded via lose-lock before the
  // sibling can run.
  ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId s1 = reg.NewAction(t1);
  ActionId s2 = reg.NewAction(t1);
  reg.NewAccess(s2, 0, Update::Add(1));
  // s1 performs via its child subtxn... abort s2's *parent-level* sibling:
  // simplest shape exercising lose-lock: t2 aborted after its access —
  // but abort_set members never run their subtree. Instead, abort an
  // inner node whose child performed: not expressible. So exercise
  // lose-lock through a dead top-level txn's *released* ancestors:
  // t_dead's access performs, then t_dead itself is... also unreachable.
  // Hence this test only checks that abort_set pruning composes with a
  // sibling perform.
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 2);
  dist::DistAlgebra alg(&topo);
  DriverOptions opt;
  opt.abort_set = {s1};
  auto run = RunProgram(alg, opt);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->stats.performs, 1u);
}

TEST(DistDriverTest, EagerPropagationUsesMoreMessages) {
  Rng rng(31);
  testutil::RandomRegistryParams p;
  p.top_level = 3;
  p.max_children = 3;
  p.max_depth = 3;
  p.objects = 4;
  ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 4);
  dist::DistAlgebra alg(&topo);
  DriverOptions lazy;
  lazy.propagation = Propagation::kLazy;
  auto lrun = RunProgram(alg, lazy);
  ASSERT_TRUE(lrun.ok()) << lrun.status();
  DriverOptions eager;
  eager.propagation = Propagation::kEager;
  auto erun = RunProgram(alg, eager);
  ASSERT_TRUE(erun.ok()) << erun.status();
  EXPECT_GT(erun->stats.messages, lrun->stats.messages);
  // Same semantic outcome regardless of propagation policy.
  for (ObjectId x = 0; x < 4; ++x) {
    NodeId h = topo.HomeOfObject(x);
    EXPECT_EQ(lrun->final_state.nodes[h].vmap.Get(x, kRootAction),
              erun->final_state.nodes[h].vmap.Get(x, kRootAction));
  }
}

TEST(DistDriverTest, RandomProgramsCompleteAndRefine) {
  // Every driver execution, being a valid ℬ computation, must also map
  // down to a serializable abstract execution. The driver does not record
  // its event list, so validate through local consistency of the final
  // state against a replayed abstract state... instead simply re-run the
  // semantic check: root values equal the DFS-serial fold computed on a
  // plain action-tree execution.
  for (std::uint64_t seed = 0; seed < 12; ++seed) {
    Rng rng(seed);
    testutil::RandomRegistryParams p;
    p.top_level = 3;
    p.max_children = 2;
    p.max_depth = 3;
    p.objects = 3;
    ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
    dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
    dist::DistAlgebra alg(&topo);
    auto run = RunProgram(alg);
    ASSERT_TRUE(run.ok()) << run.status() << " seed " << seed;
    // Serial fold per object in the driver's DFS order (children in id
    // order per parent) — id order alone would interleave subtrees.
    std::map<ObjectId, Value> expect;
    std::vector<std::vector<ActionId>> kids(reg.size());
    for (ActionId a = 1; a < reg.size(); ++a) {
      kids[reg.Parent(a)].push_back(a);
    }
    std::vector<ActionId> stack(kids[kRootAction].rbegin(),
                                kids[kRootAction].rend());
    while (!stack.empty()) {
      ActionId a = stack.back();
      stack.pop_back();
      if (reg.IsAccess(a)) {
        ObjectId x = reg.Object(a);
        auto [it, inserted] = expect.emplace(x, action::kInitValue);
        it->second = reg.UpdateOf(a).Apply(it->second);
      } else {
        stack.insert(stack.end(), kids[a].rbegin(), kids[a].rend());
      }
    }
    for (const auto& [x, v] : expect) {
      NodeId h = topo.HomeOfObject(x);
      EXPECT_EQ(run->final_state.nodes[h].vmap.Get(x, kRootAction), v)
          << "object " << x << " seed " << seed;
    }
  }
}

TEST(DistDriverTest, RejectsAccessInAbortSet) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId a = reg.NewAccess(t, 0, Update::Read());
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 1);
  dist::DistAlgebra alg(&topo);
  DriverOptions opt;
  opt.abort_set = {a};
  auto run = RunProgram(alg, opt);
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(DistDriverTest, EagerPropagationWithAbortsMatchesLazy) {
  // Propagation policy × abort_set: statuses travel early under kEager,
  // but the semantic outcome — which subtrees die, which accesses run,
  // what the root values fold to — must be identical to kLazy. Aborted
  // subtrees never start, so no lock is ever discarded via lose-lock.
  Rng rng(19);
  testutil::RandomRegistryParams p;
  p.top_level = 3;
  p.max_children = 3;
  p.max_depth = 3;
  p.objects = 4;
  ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
  // Abort the first inner (non-access) action below each of up to two
  // top-level transactions.
  std::set<ActionId> abort_set;
  for (ActionId a = 1; a < reg.size() && abort_set.size() < 2; ++a) {
    if (!reg.IsAccess(a) && reg.Parent(a) != kRootAction) abort_set.insert(a);
  }
  ASSERT_FALSE(abort_set.empty());
  std::size_t live_accesses = 0;
  for (ActionId a = 1; a < reg.size(); ++a) {
    if (!reg.IsAccess(a)) continue;
    bool dead = false;
    for (ActionId d : abort_set) {
      if (reg.IsProperAncestor(d, a)) dead = true;
    }
    if (!dead) ++live_accesses;
  }
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
  dist::DistAlgebra alg(&topo);
  DriverOptions lazy;
  lazy.abort_set = abort_set;
  auto lrun = RunProgram(alg, lazy);
  ASSERT_TRUE(lrun.ok()) << lrun.status();
  DriverOptions eager;
  eager.propagation = Propagation::kEager;
  eager.abort_set = abort_set;
  auto erun = RunProgram(alg, eager);
  ASSERT_TRUE(erun.ok()) << erun.status();
  for (const auto* run : {&lrun, &erun}) {
    EXPECT_EQ((*run)->stats.aborts, abort_set.size());
    EXPECT_EQ((*run)->stats.performs, live_accesses)
        << "exactly the non-dead accesses run";
    EXPECT_EQ((*run)->stats.loses, 0u)
        << "statically aborted subtrees never acquire locks";
  }
  for (ObjectId x = 0; x < 4; ++x) {
    NodeId h = topo.HomeOfObject(x);
    EXPECT_EQ(lrun->final_state.nodes[h].vmap.Get(x, kRootAction),
              erun->final_state.nodes[h].vmap.Get(x, kRootAction))
        << "object " << x;
  }
}

TEST(DistDriverTest, DeltaPropagationMatchesLazyAndEager) {
  // The tentpole property of the kDelta policy: identical semantics,
  // never more messages than kLazy (empty deltas are skipped), and
  // strictly fewer shipped summary entries once summaries have grown.
  Rng rng(23);
  testutil::RandomRegistryParams p;
  p.top_level = 4;
  p.max_children = 3;
  p.max_depth = 3;
  p.objects = 5;
  ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 4);
  dist::DistAlgebra alg(&topo);
  DriverOptions lazy;
  lazy.propagation = Propagation::kLazy;
  auto lrun = RunProgram(alg, lazy);
  ASSERT_TRUE(lrun.ok()) << lrun.status();
  DriverOptions eager;
  eager.propagation = Propagation::kEager;
  auto erun = RunProgram(alg, eager);
  ASSERT_TRUE(erun.ok()) << erun.status();
  DriverOptions delta;
  delta.propagation = Propagation::kDelta;
  auto drun = RunProgram(alg, delta);
  ASSERT_TRUE(drun.ok()) << drun.status();

  EXPECT_LE(drun->stats.messages, lrun->stats.messages)
      << "a delta sync point is a lazy sync point, minus empty payloads";
  EXPECT_LT(drun->stats.summary_entries, lrun->stats.summary_entries)
      << "incremental payloads beat full-summary payloads";
  EXPECT_LT(drun->stats.summary_entries, erun->stats.summary_entries);
  EXPECT_EQ(drun->stats.performs, lrun->stats.performs);
  EXPECT_EQ(drun->stats.commits, lrun->stats.commits);
  for (ObjectId x = 0; x < 5; ++x) {
    NodeId h = topo.HomeOfObject(x);
    EXPECT_EQ(drun->final_state.nodes[h].vmap.Get(x, kRootAction),
              lrun->final_state.nodes[h].vmap.Get(x, kRootAction))
        << "object " << x;
  }
}

TEST(DistDriverTest, DeltaPropagationWithAbortsMatchesLazy) {
  Rng rng(29);
  testutil::RandomRegistryParams p;
  p.top_level = 3;
  p.max_children = 3;
  p.max_depth = 3;
  p.objects = 4;
  ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
  std::set<ActionId> abort_set;
  for (ActionId a = 1; a < reg.size(); ++a) {
    if (!reg.IsAccess(a) && reg.Parent(a) != kRootAction) {
      abort_set.insert(a);
      break;
    }
  }
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
  dist::DistAlgebra alg(&topo);
  DriverOptions lazy;
  lazy.abort_set = abort_set;
  auto lrun = RunProgram(alg, lazy);
  ASSERT_TRUE(lrun.ok()) << lrun.status();
  DriverOptions delta;
  delta.propagation = Propagation::kDelta;
  delta.abort_set = abort_set;
  auto drun = RunProgram(alg, delta);
  ASSERT_TRUE(drun.ok()) << drun.status();
  EXPECT_EQ(drun->stats.aborts, lrun->stats.aborts);
  EXPECT_EQ(drun->stats.performs, lrun->stats.performs);
  EXPECT_LE(drun->stats.messages, lrun->stats.messages);
  for (ObjectId x = 0; x < 4; ++x) {
    NodeId h = topo.HomeOfObject(x);
    EXPECT_EQ(drun->final_state.nodes[h].vmap.Get(x, kRootAction),
              lrun->final_state.nodes[h].vmap.Get(x, kRootAction));
  }
}

TEST(DistDriverTest, DeltaEntriesScaleLinearlyNotQuadratically) {
  // With full-summary shipping, entry traffic grows ~quadratically in
  // program size (each message re-ships the whole history); with deltas
  // each (peer, entry, status-change) ships once from a given node, so
  // doubling the program should much less than quadruple delta entries.
  auto entries_for = [](int tops, Propagation prop) -> std::uint64_t {
    Rng rng(91);
    testutil::RandomRegistryParams p;
    p.top_level = tops;
    p.max_children = 3;
    p.max_depth = 3;
    p.objects = 6;
    ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
    dist::Topology topo = dist::Topology::RoundRobin(&reg, 4);
    dist::DistAlgebra alg(&topo);
    DriverOptions opt;
    opt.propagation = prop;
    auto run = RunProgram(alg, opt);
    EXPECT_TRUE(run.ok()) << run.status();
    return run.ok() ? run->stats.summary_entries : 0;
  };
  std::uint64_t lazy_small = entries_for(3, Propagation::kLazy);
  std::uint64_t lazy_big = entries_for(6, Propagation::kLazy);
  std::uint64_t delta_small = entries_for(3, Propagation::kDelta);
  std::uint64_t delta_big = entries_for(6, Propagation::kDelta);
  ASSERT_GT(delta_small, 0u);
  double lazy_ratio = static_cast<double>(lazy_big) / lazy_small;
  double delta_ratio = static_cast<double>(delta_big) / delta_small;
  EXPECT_LT(delta_ratio, lazy_ratio)
      << "delta traffic grows slower than full-summary traffic";
}

TEST(DiagnosisTest, NamesLiveActionsAndTheirBlockers) {
  // Hand-built stalled state: t1's access a1 performed and holds the
  // lock; t2's access a2 is created but cannot perform past it.
  ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId a1 = reg.NewAccess(t1, 0, Update::Add(1));
  ActionId t2 = reg.NewAction(kRootAction);
  ActionId a2 = reg.NewAccess(t2, 0, Update::Add(2));
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 1);
  dist::DistAlgebra alg(&topo);
  auto s = alg.Initial();
  for (const dist::DistEvent& e :
       {dist::DistEvent{dist::NodeCreate{0, t1}},
        dist::DistEvent{dist::NodeCreate{0, a1}},
        dist::DistEvent{dist::NodePerform{0, a1, 0}},
        dist::DistEvent{dist::NodeCreate{0, t2}},
        dist::DistEvent{dist::NodeCreate{0, a2}}}) {
    ASSERT_TRUE(alg.Defined(s, e)) << dist::ToString(e);
    alg.Apply(s, e);
  }
  StallDiagnosis diag = DiagnoseStalls(alg, s);
  ASSERT_FALSE(diag.empty());
  bool found_a2 = false;
  bool found_t1 = false;
  for (const StalledAction& st : diag.stalled) {
    if (st.action == a2) {
      found_a2 = true;
      EXPECT_TRUE(st.is_access);
      EXPECT_EQ(st.object, 0u);
      EXPECT_EQ(st.waiting_on, a1) << "a1's lock blocks a2";
    }
    if (st.action == t1) found_t1 = true;
  }
  EXPECT_TRUE(found_a2) << diag.ToString();
  EXPECT_TRUE(found_t1) << "t1 is live and ready to commit";
  EXPECT_NE(diag.ToString().find("action"), std::string::npos);
}

TEST(DiagnosisTest, CleanStateHasNoStalls) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  reg.NewAccess(t, 0, Update::Add(5));
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 1);
  dist::DistAlgebra alg(&topo);
  auto run = RunProgram(alg);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(DiagnoseStalls(alg, run->final_state).empty());
}

TEST(DistDriverTest, MessageCountGrowsWithNodes) {
  Rng rng(77);
  testutil::RandomRegistryParams p;
  p.top_level = 4;
  p.objects = 6;
  ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
  std::uint64_t prev = 0;
  for (NodeId k : {1u, 2u, 4u}) {
    dist::Topology topo = dist::Topology::RoundRobin(&reg, k);
    dist::DistAlgebra alg(&topo);
    auto run = RunProgram(alg);
    ASSERT_TRUE(run.ok()) << run.status();
    EXPECT_GE(run->stats.messages, prev);
    prev = run->stats.messages;
  }
}

}  // namespace
}  // namespace rnt::sim
