#include "action/registry.h"

#include <gtest/gtest.h>

#include "action/update.h"

namespace rnt::action {
namespace {

TEST(UpdateTest, ReadIsIdentity) {
  EXPECT_EQ(Update::Read().Apply(17), 17);
  EXPECT_EQ(Update::Read().Apply(-3), -3);
  EXPECT_TRUE(Update::Read().IsRead());
}

TEST(UpdateTest, WriteIsConstant) {
  Update w = Update::Write(9);
  EXPECT_EQ(w.Apply(0), 9);
  EXPECT_EQ(w.Apply(123), 9);
  EXPECT_FALSE(w.IsRead());
}

TEST(UpdateTest, AddAndXor) {
  EXPECT_EQ(Update::Add(5).Apply(2), 7);
  EXPECT_EQ(Update::XorConst(3).Apply(5), 6);
  // xor is self-inverse
  EXPECT_EQ(Update::XorConst(3).Apply(Update::XorConst(3).Apply(5)), 5);
}

TEST(UpdateTest, MulAddDoesNotCommuteWithAdd) {
  Update ma = Update::MulAdd(2, 1);
  Update add = Update::Add(3);
  Value one_way = add.Apply(ma.Apply(10));   // (10*2+1)+3 = 24
  Value other = ma.Apply(add.Apply(10));     // (10+3)*2+1 = 27
  EXPECT_NE(one_way, other);
}

TEST(UpdateTest, ToStringIsDescriptive) {
  EXPECT_EQ(Update::Read().ToString(), "read");
  EXPECT_EQ(Update::Write(4).ToString(), "write(4)");
  EXPECT_EQ(Update::MulAdd(2, 3).ToString(), "muladd(2,3)");
}

TEST(RegistryTest, RootExists) {
  ActionRegistry reg;
  EXPECT_EQ(reg.size(), 1u);
  EXPECT_TRUE(reg.Valid(kRootAction));
  EXPECT_EQ(reg.Depth(kRootAction), 0u);
  EXPECT_FALSE(reg.IsAccess(kRootAction));
}

TEST(RegistryTest, ParentChildDepths) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId s = reg.NewAction(t);
  ActionId a = reg.NewAccess(s, 7, Update::Write(1));
  EXPECT_EQ(reg.Parent(t), kRootAction);
  EXPECT_EQ(reg.Parent(s), t);
  EXPECT_EQ(reg.Parent(a), s);
  EXPECT_EQ(reg.Depth(t), 1u);
  EXPECT_EQ(reg.Depth(s), 2u);
  EXPECT_EQ(reg.Depth(a), 3u);
  EXPECT_TRUE(reg.IsAccess(a));
  EXPECT_FALSE(reg.IsAccess(s));
  EXPECT_EQ(reg.Object(a), 7u);
  EXPECT_EQ(reg.UpdateOf(a), Update::Write(1));
}

TEST(RegistryTest, AncestryIsReflexiveAndTransitive) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId s = reg.NewAction(t);
  ActionId a = reg.NewAccess(s, 0, Update::Read());
  EXPECT_TRUE(reg.IsAncestor(a, a));
  EXPECT_TRUE(reg.IsAncestor(t, a));
  EXPECT_TRUE(reg.IsAncestor(kRootAction, a));
  EXPECT_FALSE(reg.IsAncestor(a, t));
  EXPECT_TRUE(reg.IsProperAncestor(t, a));
  EXPECT_FALSE(reg.IsProperAncestor(a, a));
}

TEST(RegistryTest, LcaOfSiblingsIsParent) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId c1 = reg.NewAction(t);
  ActionId c2 = reg.NewAction(t);
  EXPECT_EQ(reg.Lca(c1, c2), t);
  EXPECT_EQ(reg.Lca(c1, c1), c1);
  EXPECT_EQ(reg.Lca(c1, t), t);
}

TEST(RegistryTest, LcaAcrossTopLevelIsRoot) {
  ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId t2 = reg.NewAction(kRootAction);
  ActionId a1 = reg.NewAccess(t1, 0, Update::Read());
  ActionId a2 = reg.NewAccess(t2, 0, Update::Read());
  EXPECT_EQ(reg.Lca(a1, a2), kRootAction);
}

TEST(RegistryTest, LcaDifferentDepths) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId s = reg.NewAction(t);
  ActionId deep = reg.NewAccess(s, 1, Update::Read());
  ActionId shallow = reg.NewAccess(t, 1, Update::Read());
  EXPECT_EQ(reg.Lca(deep, shallow), t);
}

TEST(RegistryTest, AncestorChainRootFirstFromLeaf) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId s = reg.NewAction(t);
  ActionId a = reg.NewAccess(s, 0, Update::Read());
  std::vector<ActionId> chain = reg.AncestorChain(a);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0], a);
  EXPECT_EQ(chain[1], s);
  EXPECT_EQ(chain[2], t);
  EXPECT_EQ(chain[3], kRootAction);
}

TEST(RegistryTest, ChildTowardFindsProjection) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId s = reg.NewAction(t);
  ActionId a = reg.NewAccess(s, 0, Update::Read());
  EXPECT_EQ(reg.ChildToward(kRootAction, a), t);
  EXPECT_EQ(reg.ChildToward(t, a), s);
  EXPECT_EQ(reg.ChildToward(s, a), a);
}

}  // namespace
}  // namespace rnt::action
