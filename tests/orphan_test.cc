#include "orphan/orphan.h"

#include <gtest/gtest.h>

#include "testutil.h"
#include "valuemap/value_map_algebra.h"
#include "versionmap/version_map_algebra.h"

namespace rnt::orphan {
namespace {

using action::ActionRegistry;
using action::ActionTree;
using action::Update;
using algebra::Abort;
using algebra::Commit;
using algebra::Create;
using algebra::LockEvent;
using algebra::Perform;
using algebra::TreeEvent;

class OrphanFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    t1_ = reg_.NewAction(kRootAction);
    s1_ = reg_.NewAction(t1_);
    a1_ = reg_.NewAccess(s1_, 0, Update::Add(1));
    t2_ = reg_.NewAction(kRootAction);
    a2_ = reg_.NewAccess(t2_, 0, Update::Add(2));
  }

  ActionRegistry reg_;
  ActionId t1_, s1_, a1_, t2_, a2_;
};

TEST_F(OrphanFixture, OrphanPredicates) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(s1_);
  t.ApplyCreate(a1_);
  EXPECT_TRUE(Orphans(t).empty());
  t.ApplyAbort(t1_);
  // s1 and a1 are orphans; t1 itself aborted but is not an orphan.
  EXPECT_FALSE(IsOrphan(t, t1_));
  EXPECT_TRUE(IsOrphan(t, s1_));
  EXPECT_TRUE(IsOrphan(t, a1_));
  std::vector<ActionId> orphans = Orphans(t);
  ASSERT_EQ(orphans.size(), 2u);
}

TEST_F(OrphanFixture, PlainLevel2AllowsInconsistentOrphanViews) {
  aat::AatAlgebra plain(&reg_);
  auto s = plain.Initial();
  for (TreeEvent e : std::vector<TreeEvent>{Create{t1_}, Create{s1_},
                                            Create{a1_}, Abort{t1_}}) {
    ASSERT_TRUE(plain.Defined(s, e));
    plain.Apply(s, e);
  }
  // a1 is an orphan; the base model lets it see garbage...
  TreeEvent garbage = Perform{a1_, 424242};
  ASSERT_TRUE(plain.Defined(s, garbage));
  plain.Apply(s, garbage);
  // ...and the full-tree orphan-view check detects exactly that.
  Status st = CheckOrphanViewConsistency(s);
  EXPECT_FALSE(st.ok());
  // The base correctness condition is still intact: perm(T) ignores the
  // orphan entirely.
  EXPECT_TRUE(aat::IsPermDataSerializable(s));
}

TEST_F(OrphanFixture, OrphanSafeAlgebraForbidsGarbageViews) {
  OrphanSafeAatAlgebra safe(&reg_);
  auto s = safe.Initial();
  for (TreeEvent e : std::vector<TreeEvent>{Create{t1_}, Create{s1_},
                                            Create{a1_}, Abort{t1_}}) {
    ASSERT_TRUE(safe.Defined(s, e));
    safe.Apply(s, e);
  }
  EXPECT_FALSE(safe.Defined(s, TreeEvent{Perform{a1_, 424242}}));
  EXPECT_TRUE(safe.Defined(s, TreeEvent{Perform{a1_, 0}}))
      << "the Moss value (init, nothing visible committed) is allowed";
}

TEST_F(OrphanFixture, OrphanSafeRunsAreOrphanConsistent) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    ActionRegistry reg = testutil::MakeRandomRegistry(rng);
    OrphanSafeAatAlgebra safe(&reg);
    auto run = algebra::RandomRun(
        safe, [](const aat::Aat& s) { return EventCandidates(s); }, rng, 80);
    Status st = CheckOrphanViewConsistency(run.state);
    EXPECT_TRUE(st.ok()) << st << " seed " << seed;
    EXPECT_TRUE(aat::IsPermDataSerializable(run.state)) << "seed " << seed;
  }
}

// The headline observation: Moss's locking (levels 3/4) enforces orphan
// consistency *without being asked to* — precondition (d13) of the
// version/value-map algebras hands every access the principal value,
// live or orphaned. So every lower-level run satisfies the orphan-safe
// spec, not just the plain one. (Goree's Argus algorithm addresses the
// remaining gap — orphans whose *knowledge* is stale in a distributed
// setting — which the lock-home discipline of ℬ covers for data access.)
TEST(OrphanMossTest, VersionMapRunsAreOrphanConsistent) {
  for (std::uint64_t seed = 100; seed < 125; ++seed) {
    Rng rng(seed);
    action::ActionRegistry reg = testutil::MakeRandomRegistry(rng);
    versionmap::VersionMapAlgebra alg(&reg);
    auto run = algebra::RandomRun(
        alg,
        [](const versionmap::VmState& s) {
          return versionmap::EventCandidates(s);
        },
        rng, 100);
    Status st = CheckOrphanViewConsistency(run.state.tree);
    EXPECT_TRUE(st.ok()) << st << " seed " << seed;
  }
}

TEST(OrphanMossTest, ValueMapRunsRefineToOrphanSafeSpec) {
  for (std::uint64_t seed = 200; seed < 220; ++seed) {
    Rng rng(seed);
    action::ActionRegistry reg = testutil::MakeRandomRegistry(rng);
    valuemap::ValueMapAlgebra lower(&reg);
    OrphanSafeAatAlgebra upper(&reg);
    auto run = algebra::RandomRun(
        lower,
        [](const valuemap::ValState& s) {
          return valuemap::EventCandidates(s);
        },
        rng, 100);
    Status st = algebra::CheckRefinement(
        lower, upper, std::span<const LockEvent>(run.events),
        algebra::LockToTreeEvent,
        [](const valuemap::ValState& ls, const aat::Aat& us) -> Status {
          return ls.tree == us ? Status::Ok()
                               : Status::Internal("tree mismatch");
        });
    EXPECT_TRUE(st.ok())
        << st << " seed " << seed
        << " — Moss's algorithm should satisfy the orphan-safe spec";
  }
}

TEST(OrphanMossTest, WaitingOrphanStillSeesConsistentValueInValueMap) {
  // Deterministic scenario: the orphan performs *after* its ancestor
  // aborted but before the lose-lock cleanup elsewhere. It must still
  // read the principal value — never a torn or impossible one.
  action::ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId a1 = reg.NewAccess(t1, 0, Update::Add(5));
  ActionId t2 = reg.NewAction(kRootAction);
  ActionId a2 = reg.NewAccess(t2, 0, Update::Add(7));
  valuemap::ValueMapAlgebra alg(&reg);
  auto s = alg.Initial();
  for (LockEvent e : std::vector<LockEvent>{
           Create{t1}, Create{a1}, Create{t2}, Create{a2}, Abort{t2}}) {
    ASSERT_TRUE(alg.Defined(s, e));
    alg.Apply(s, e);
  }
  // a2 is now an orphan. a1 has not run, so the principal value is init.
  ASSERT_TRUE(alg.Defined(s, LockEvent{Perform{a2, 0}}));
  EXPECT_FALSE(alg.Defined(s, LockEvent{Perform{a2, 99}}))
      << "(d13) binds orphans at level 4";
  alg.Apply(s, LockEvent{Perform{a2, 0}});
  EXPECT_TRUE(CheckOrphanViewConsistency(s.tree).ok());
  // The orphan's lock now blocks a1 until lose-lock discards it.
  EXPECT_FALSE(alg.Defined(s, LockEvent{Perform{a1, 0}}));
  ASSERT_TRUE(alg.Defined(s, LockEvent{algebra::LoseLock{a2, 0}}));
  alg.Apply(s, LockEvent{algebra::LoseLock{a2, 0}});
  EXPECT_TRUE(alg.Defined(s, LockEvent{Perform{a1, 0}}));
}

}  // namespace
}  // namespace rnt::orphan
