// Parameterized property sweeps: the paper's invariants checked across a
// grid of universal-tree shapes, seeds, and engine configurations.
// Complements the targeted unit tests with breadth.

#include <gtest/gtest.h>

#include <thread>
#include <tuple>

#include "aat/aat_algebra.h"
#include "algebra/algebra.h"
#include "dist/dist_algebra.h"
#include "testutil.h"
#include "txn/transaction_manager.h"
#include "valuemap/value_map_algebra.h"
#include "versionmap/version_map_algebra.h"
#include "workload/workload.h"

namespace rnt {
namespace {

// ---------------------------------------------------------------------
// Sweep 1: algebra invariants across tree shapes.
// Params: (top_level, max_children, max_depth, objects, seed)

using ShapeParam = std::tuple<int, int, int, int, std::uint64_t>;

class AlgebraShapeSweep : public ::testing::TestWithParam<ShapeParam> {
 protected:
  action::ActionRegistry MakeRegistry(Rng& rng) const {
    auto [tops, kids, depth, objects, seed] = GetParam();
    testutil::RandomRegistryParams p;
    p.top_level = tops;
    p.max_children = kids;
    p.max_depth = depth;
    p.objects = objects;
    return testutil::MakeRandomRegistry(rng, p);
  }
  std::uint64_t seed() const { return std::get<4>(GetParam()); }
};

TEST_P(AlgebraShapeSweep, Theorem14AndLemma10) {
  Rng rng(seed());
  action::ActionRegistry reg = MakeRegistry(rng);
  aat::AatAlgebra alg(&reg);
  auto run = algebra::RandomRun(
      alg, [](const aat::Aat& s) { return aat::EventCandidates(s); }, rng,
      100);
  EXPECT_TRUE(aat::IsPermDataSerializable(run.state));
  Status l10 = aat::CheckLemma10(run.state);
  EXPECT_TRUE(l10.ok()) << l10;
}

TEST_P(AlgebraShapeSweep, Level3InvariantsAtEveryPrefix) {
  Rng rng(seed() + 1000);
  action::ActionRegistry reg = MakeRegistry(rng);
  versionmap::VersionMapAlgebra alg(&reg);
  auto s = alg.Initial();
  for (int step = 0; step < 80; ++step) {
    std::vector<algebra::LockEvent> enabled;
    for (auto& e : versionmap::EventCandidates(s)) {
      if (alg.Defined(s, e)) enabled.push_back(e);
    }
    if (enabled.empty()) break;
    alg.Apply(s, enabled[rng.Below(enabled.size())]);
    Status wf = s.vmap.CheckWellFormed(reg);
    ASSERT_TRUE(wf.ok()) << wf << " at step " << step;
    Status l16 = versionmap::CheckLemma16(s);
    ASSERT_TRUE(l16.ok()) << l16 << " at step " << step;
  }
}

TEST_P(AlgebraShapeSweep, Level4RefinesToLevel3) {
  Rng rng(seed() + 2000);
  action::ActionRegistry reg = MakeRegistry(rng);
  valuemap::ValueMapAlgebra lower(&reg);
  versionmap::VersionMapAlgebra upper(&reg);
  auto run = algebra::RandomRun(
      lower,
      [](const valuemap::ValState& s) { return valuemap::EventCandidates(s); },
      rng, 100);
  Status st = algebra::CheckRefinement(
      lower, upper, std::span<const algebra::LockEvent>(run.events),
      [](const algebra::LockEvent& e) {
        return std::optional<algebra::LockEvent>(e);
      },
      [&](const valuemap::ValState& ls,
          const versionmap::VmState& us) -> Status {
        return valuemap::Eval(us.vmap, reg) == ls.vmap
                   ? Status::Ok()
                   : Status::Internal("eval(W) != V");
      });
  EXPECT_TRUE(st.ok()) << st;
}

TEST_P(AlgebraShapeSweep, DistributedRefinesToLevel4) {
  Rng rng(seed() + 3000);
  action::ActionRegistry reg = MakeRegistry(rng);
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
  dist::DistAlgebra lower(&topo);
  valuemap::ValueMapAlgebra upper(&reg);
  dist::DistEventCandidates cand(&lower, seed() * 3 + 1);
  auto run = algebra::RandomRun(lower, std::ref(cand), rng, 150);
  Status st = algebra::CheckRefinement(
      lower, upper, std::span<const dist::DistEvent>(run.events),
      dist::DistToValueEvent,
      [&](const dist::DistState& ls, const valuemap::ValState& us) {
        return dist::CheckLocalConsistency(lower, ls, us);
      });
  EXPECT_TRUE(st.ok()) << st;
}

INSTANTIATE_TEST_SUITE_P(
    Shapes, AlgebraShapeSweep,
    ::testing::Values(
        // wide and shallow
        ShapeParam{5, 4, 2, 2, 1}, ShapeParam{5, 4, 2, 2, 2},
        ShapeParam{6, 3, 2, 4, 3},
        // narrow and deep
        ShapeParam{1, 2, 5, 2, 4}, ShapeParam{2, 2, 4, 2, 5},
        ShapeParam{2, 2, 5, 3, 6},
        // single object (maximum conflict)
        ShapeParam{3, 3, 3, 1, 7}, ShapeParam{4, 2, 3, 1, 8},
        // many objects (minimum conflict)
        ShapeParam{3, 3, 3, 8, 9}, ShapeParam{3, 3, 3, 8, 10},
        // bushy
        ShapeParam{4, 4, 3, 3, 11}, ShapeParam{4, 4, 4, 3, 12}),
    [](const ::testing::TestParamInfo<ShapeParam>& info) {
      // No structured bindings here: commas inside the binding list would
      // confuse the INSTANTIATE macro's argument splitting.
      return "t" + std::to_string(std::get<0>(info.param)) + "c" +
             std::to_string(std::get<1>(info.param)) + "d" +
             std::to_string(std::get<2>(info.param)) + "x" +
             std::to_string(std::get<3>(info.param)) + "s" +
             std::to_string(std::get<4>(info.param));
    });

// ---------------------------------------------------------------------
// Sweep 2: node counts for the distributed level.

class NodeCountSweep : public ::testing::TestWithParam<NodeId> {};

TEST_P(NodeCountSweep, LocalConsistencyAcrossClusterSizes) {
  NodeId k = GetParam();
  Rng rng(500 + k);
  action::ActionRegistry reg = testutil::MakeRandomRegistry(rng);
  dist::Topology topo = dist::Topology::RoundRobin(&reg, k);
  dist::DistAlgebra lower(&topo);
  valuemap::ValueMapAlgebra upper(&reg);
  dist::DistEventCandidates cand(&lower, 500 + k);
  auto run = algebra::RandomRun(lower, std::ref(cand), rng, 150);
  Status st = algebra::CheckRefinement(
      lower, upper, std::span<const dist::DistEvent>(run.events),
      dist::DistToValueEvent,
      [&](const dist::DistState& ls, const valuemap::ValState& us) {
        return dist::CheckLocalConsistency(lower, ls, us);
      });
  EXPECT_TRUE(st.ok()) << st;
}

INSTANTIATE_TEST_SUITE_P(Clusters, NodeCountSweep,
                         ::testing::Values(1u, 2u, 3u, 5u, 8u));

// ---------------------------------------------------------------------
// Sweep 3: engine configuration grid.
// Params: (workers, read_fraction_pct, failure_pct, single_mode)

using EngineParam = std::tuple<int, int, int, bool>;

class EngineSweep : public ::testing::TestWithParam<EngineParam> {};

TEST_P(EngineSweep, TracesSerializableAndCountersConsistent) {
  auto [workers, read_pct, fail_pct, single_mode] = GetParam();
  txn::TransactionManager::Options opt;
  opt.record_trace = true;
  opt.single_mode_locks = single_mode;
  txn::TransactionManager engine(opt);
  workload::Params p;
  p.num_objects = 6;
  p.children_per_txn = 2;
  p.accesses_per_child = 2;
  p.read_fraction = read_pct / 100.0;
  p.child_failure_prob = fail_pct / 100.0;
  workload::Result r =
      workload::RunMixed(engine, p, workers, /*txns_per_worker=*/12,
                         /*seed=*/read_pct * 7 + fail_pct + workers);
  EXPECT_EQ(r.committed + r.failed,
            static_cast<std::uint64_t>(workers) * 12u);

  auto replayed = txn::ReplayTrace(engine.TakeTrace());
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  if (single_mode) {
    EXPECT_TRUE(aat::IsPermDataSerializable(replayed->tree));
  } else {
    EXPECT_TRUE(aat::IsPermDataSerializableRw(replayed->tree));
  }
  Status l10 = aat::CheckLemma10(replayed->tree);
  EXPECT_TRUE(l10.ok()) << l10;

  auto stats = engine.stats();
  EXPECT_EQ(stats.begun, stats.committed + stats.aborted)
      << "every transaction ends exactly once";
}

INSTANTIATE_TEST_SUITE_P(
    Configs, EngineSweep,
    ::testing::Combine(::testing::Values(1, 2, 4),      // workers
                       ::testing::Values(0, 50, 90),    // read fraction %
                       ::testing::Values(0, 25),        // failure %
                       ::testing::Bool()),              // single-mode
    [](const ::testing::TestParamInfo<EngineParam>& info) {
      return "w" + std::to_string(std::get<0>(info.param)) + "r" +
             std::to_string(std::get<1>(info.param)) + "f" +
             std::to_string(std::get<2>(info.param)) +
             (std::get<3>(info.param) ? "single" : "rw");
    });

// ---------------------------------------------------------------------
// Sweep 4: banking invariant across engines and failure rates.

class BankingSweep
    : public ::testing::TestWithParam<std::tuple<int, int>> {};

TEST_P(BankingSweep, TotalAlwaysConserved) {
  auto [workers, fail_pct] = GetParam();
  txn::TransactionManager engine;
  workload::BankingParams p;
  p.num_accounts = 10;
  p.child_failure_prob = fail_pct / 100.0;
  ASSERT_TRUE(workload::SetupBanking(engine, p).ok());
  workload::RunBanking(engine, p, workers, 15, workers * 100 + fail_pct);
  EXPECT_TRUE(workload::VerifyBankingTotal(engine, p));
}

INSTANTIATE_TEST_SUITE_P(Grid, BankingSweep,
                         ::testing::Combine(::testing::Values(1, 2, 4),
                                            ::testing::Values(0, 20, 45)));

// ---------------------------------------------------------------------
// Sweep 5: parallel-children mode preserves every guarantee.

class ParallelChildrenSweep : public ::testing::TestWithParam<int> {};

TEST_P(ParallelChildrenSweep, SerializableUnderIntraTxnParallelism) {
  int children = GetParam();
  txn::TransactionManager::Options opt;
  opt.record_trace = true;
  txn::TransactionManager engine(opt);
  workload::Params p;
  p.num_objects = 4;
  p.children_per_txn = children;
  p.accesses_per_child = 2;
  p.read_fraction = 0.3;
  p.parallel_children = true;
  workload::Result r = workload::RunMixed(engine, p, 2, 8, 321 + children);
  EXPECT_GT(r.committed, 0u);
  auto replayed = txn::ReplayTrace(engine.TakeTrace());
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_TRUE(aat::IsPermDataSerializableRw(replayed->tree));
}

INSTANTIATE_TEST_SUITE_P(Fanout, ParallelChildrenSweep,
                         ::testing::Values(2, 3, 5));

}  // namespace
}  // namespace rnt
