// Unit tests for the per-worker WAL: record round-trips, the group
// commit barrier, the durable horizon under concurrent appenders,
// checkpoint reset, and the snapshot read/write protocol.
#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "storage/log_reader.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "temp_dir.h"

namespace rnt::storage {
namespace {

txn::TraceEvent PerformEvent(std::uint64_t id, lock::TxnId owner,
                             ObjectId x, Value written, Value seen) {
  return {txn::TraceEvent::Kind::kPerform, id, owner, x,
          action::Update::Write(written), seen};
}

TEST(WalTest, RoundTripsRecordsThroughReader) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  WalOptions opts;
  opts.dir = dir.path();
  opts.workers = 1;  // single file => file order is LSN order
  auto wal = Wal::Open(opts);
  ASSERT_TRUE(wal.ok()) << wal.status();

  (*wal)->Append({txn::TraceEvent::Kind::kBegin, 7, lock::kNoTxn, 0, {}, 0});
  (*wal)->Append(PerformEvent(8, 7, 3, 42, 0));
  (*wal)->Append({txn::TraceEvent::Kind::kCommit, 7, lock::kNoTxn, 0, {}, 0});
  ASSERT_TRUE((*wal)->BarrierAll().ok());
  wal->reset();  // close files

  auto contents = ReadWalFile(dir.path() + "/" + WalFileName(0));
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_FALSE(contents->torn_tail);
  ASSERT_EQ(contents->records.size(), 3u);
  EXPECT_EQ(contents->records[0].lsn, 1u);
  EXPECT_EQ(contents->records[0].event.kind, txn::TraceEvent::Kind::kBegin);
  EXPECT_EQ(contents->records[0].event.id, 7u);
  EXPECT_EQ(contents->records[1].lsn, 2u);
  EXPECT_EQ(contents->records[1].event.kind,
            txn::TraceEvent::Kind::kPerform);
  EXPECT_EQ(contents->records[1].event.object, 3u);
  EXPECT_EQ(contents->records[1].event.update,
            action::Update::Write(42));
  EXPECT_EQ(contents->records[2].event.kind, txn::TraceEvent::Kind::kCommit);
}

TEST(WalTest, BarrierWaitsForDurableHorizon) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  WalOptions opts;
  opts.dir = dir.path();
  opts.workers = 2;
  auto wal = Wal::Open(opts);
  ASSERT_TRUE(wal.ok()) << wal.status();
  for (int i = 0; i < 100; ++i) {
    (*wal)->Append(PerformEvent(100 + i, 1, 0, i, 0));
  }
  ASSERT_TRUE((*wal)->BarrierAll().ok());
  EXPECT_GE((*wal)->durable_lsn(), 100u);
  EXPECT_EQ((*wal)->next_lsn(), 101u);
  const Wal::Stats stats = (*wal)->stats();
  EXPECT_EQ(stats.appended, 100u);
  EXPECT_EQ(stats.synced_records, 100u);
  EXPECT_GE(stats.batches, 1u);
  EXPECT_GE(stats.max_batch, 1u);
}

TEST(WalTest, ConcurrentAppendersProduceDenseLsns) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  WalOptions opts;
  opts.dir = dir.path();
  opts.workers = 4;
  opts.batch_records = 16;
  constexpr int kThreads = 4;
  constexpr int kPerThread = 500;
  {
    auto wal = Wal::Open(opts);
    ASSERT_TRUE(wal.ok()) << wal.status();
    std::vector<std::thread> threads;
    for (int t = 0; t < kThreads; ++t) {
      threads.emplace_back([&wal, t] {
        for (int i = 0; i < kPerThread; ++i) {
          (*wal)->Append(PerformEvent(
              static_cast<std::uint64_t>(t) * kPerThread + i, 1, 0, i, 0));
        }
      });
    }
    for (auto& th : threads) th.join();
    ASSERT_TRUE((*wal)->BarrierAll().ok());
    EXPECT_EQ((*wal)->durable_lsn(),
              static_cast<std::uint64_t>(kThreads) * kPerThread);
  }
  // Union of all files must be exactly LSNs 1..N, no gaps, no dupes.
  std::vector<bool> present(kThreads * kPerThread + 1, false);
  std::size_t total = 0;
  for (const std::string& path : ListWalFiles(dir.path())) {
    auto contents = ReadWalFile(path);
    ASSERT_TRUE(contents.ok()) << contents.status();
    EXPECT_FALSE(contents->torn_tail);
    for (const WalRecord& rec : contents->records) {
      ASSERT_GE(rec.lsn, 1u);
      ASSERT_LE(rec.lsn, present.size() - 1);
      EXPECT_FALSE(present[rec.lsn]) << "duplicate lsn " << rec.lsn;
      present[rec.lsn] = true;
      ++total;
    }
  }
  EXPECT_EQ(total, static_cast<std::size_t>(kThreads) * kPerThread);
}

TEST(WalTest, ResetTruncatesAndLsnsContinue) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  WalOptions opts;
  opts.dir = dir.path();
  opts.workers = 1;
  auto wal = Wal::Open(opts);
  ASSERT_TRUE(wal.ok()) << wal.status();
  (*wal)->Append(PerformEvent(1, 1, 0, 5, 0));
  ASSERT_TRUE((*wal)->BarrierAll().ok());
  ASSERT_TRUE((*wal)->Reset().ok());
  (*wal)->Append(PerformEvent(2, 1, 0, 6, 0));
  ASSERT_TRUE((*wal)->BarrierAll().ok());
  wal->reset();

  auto contents = ReadWalFile(dir.path() + "/" + WalFileName(0));
  ASSERT_TRUE(contents.ok()) << contents.status();
  ASSERT_EQ(contents->records.size(), 1u);
  // LSNs are monotone across the reset: the surviving record is #2.
  EXPECT_EQ(contents->records[0].lsn, 2u);
}

TEST(WalTest, RejectsBadOptions) {
  EXPECT_FALSE(Wal::Open(WalOptions{"/nonexistent-dir-xyz", 0}).ok());
  WalOptions zero_lsn;
  zero_lsn.dir = "/tmp";
  zero_lsn.first_lsn = 0;
  EXPECT_FALSE(Wal::Open(zero_lsn).ok());
}

TEST(SnapshotTest, RoundTripsStoreAndHorizon) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  Snapshot snap;
  snap.last_lsn = 77;
  snap.store[3] = -9;
  snap.store[12] = 1'000'000'000'000LL;
  ASSERT_TRUE(WriteSnapshot(dir.path(), snap).ok());
  auto loaded = ReadSnapshot(dir.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->last_lsn, 77u);
  EXPECT_EQ(loaded->store, snap.store);

  // Overwrite atomically with a newer snapshot.
  snap.last_lsn = 99;
  snap.store[3] = 8;
  ASSERT_TRUE(WriteSnapshot(dir.path(), snap).ok());
  loaded = ReadSnapshot(dir.path());
  ASSERT_TRUE(loaded.ok()) << loaded.status();
  EXPECT_EQ(loaded->last_lsn, 99u);
  EXPECT_EQ(loaded->store.at(3), 8);
}

TEST(SnapshotTest, MissingSnapshotIsNotFound) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  auto loaded = ReadSnapshot(dir.path());
  EXPECT_EQ(loaded.status().code(), StatusCode::kNotFound);
}

}  // namespace
}  // namespace rnt::storage
