#include <gtest/gtest.h>

#include <cstdint>
#include <set>
#include <span>
#include <vector>

#include "aat/aat.h"
#include "algebra/algebra.h"
#include "faults/faults.h"
#include "orphan/orphan.h"
#include "sim/chaos_driver.h"
#include "sim/diagnosis.h"
#include "sim/parallel_runner.h"
#include "testutil.h"

// Crash-restart recovery and partition tolerance for the multi-threaded
// runner (DESIGN.md "Resilience in the concurrent runtime"). The headline
// property under test: a crash is *lossless* — the volatile summary is
// wiped, the node thread dies mid-loop, and the rebirth replay of the
// durable buffer M_i (paper §9.1) restores enough knowledge that every
// run still ends value-equivalent to the sequential DFS driver, with a
// merged log that is a valid ℬ computation whose abstract image passes
// the Theorem 9 checker. Labeled both `stress` (TSan hammers the
// crash/rebirth thread handoff) and `faults` (ASan sweeps the suite).

namespace rnt::sim {
namespace {

using action::ActionRegistry;
using action::Update;

ActionRegistry MediumRegistry(std::uint64_t seed) {
  Rng rng(seed);
  testutil::RandomRegistryParams p;
  p.top_level = 3;
  p.max_children = 3;
  p.max_depth = 3;
  p.objects = 4;
  return testutil::MakeRandomRegistry(rng, p);
}

/// Runs the program under `plan` on the concurrent runner and checks the
/// full recovery contract against the sequential driver: same semantic
/// event counts, same final value for every object at its home, valid
/// merged log, serializable + orphan-consistent abstract image.
void CheckRecoveredEquivalence(std::uint64_t seed, const faults::FaultPlan& plan,
                               Propagation prop = Propagation::kDelta) {
  ActionRegistry reg = MediumRegistry(seed);
  std::set<ActionId> abort_set;
  for (ActionId a = 1; a < reg.size(); ++a) {
    if (!reg.IsAccess(a) && reg.Parent(a) != kRootAction) {
      abort_set.insert(a);
      break;
    }
  }
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
  dist::DistAlgebra alg(&topo);

  DriverOptions seq_opt;
  seq_opt.abort_set = abort_set;
  auto seq = RunProgram(alg, seq_opt);
  ASSERT_TRUE(seq.ok()) << seq.status() << " seed " << seed;

  ParallelOptions par_opt;
  par_opt.propagation = prop;
  par_opt.abort_set = abort_set;
  par_opt.plan = plan;
  auto par = RunParallel(alg, par_opt);
  ASSERT_TRUE(par.ok()) << par.status() << " seed " << seed;
  EXPECT_TRUE(par->complete) << "seed " << seed;
  EXPECT_EQ(par->stats.performs, seq->stats.performs) << "seed " << seed;
  EXPECT_EQ(par->stats.commits, seq->stats.commits) << "seed " << seed;
  EXPECT_EQ(par->stats.aborts, seq->stats.aborts) << "seed " << seed;
  for (ObjectId x = 0; x < 4; ++x) {
    NodeId h = topo.HomeOfObject(x);
    EXPECT_EQ(par->final_state.nodes[h].vmap.Get(x, kRootAction),
              seq->final_state.nodes[h].vmap.Get(x, kRootAction))
        << "object " << x << " seed " << seed;
  }
  EXPECT_TRUE(algebra::IsValidSequence(
      alg, std::span<const dist::DistEvent>(par->events)))
      << "seed " << seed;
  auto abstract =
      ReplayAbstract(alg, std::span<const dist::DistEvent>(par->events));
  ASSERT_TRUE(abstract.ok()) << abstract.status() << " seed " << seed;
  EXPECT_TRUE(aat::IsPermDataSerializable(abstract->tree)) << "seed " << seed;
  EXPECT_TRUE(orphan::CheckOrphanViewConsistency(abstract->tree).ok())
      << "seed " << seed;
}

TEST(ParallelRecoveryTest, CrashRecoveryMatchesSequentialAcrossSeeds) {
  // One stamp-triggered crash per run, rotating over the three nodes.
  // The trigger stamps are tiny, so the crash always fires well before
  // the program drains; recovery must be invisible in the outcome.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    faults::FaultPlan plan;
    faults::CrashSpec crash;
    crash.node = static_cast<NodeId>(seed % 3);
    crash.at_stamp = 4 + static_cast<std::int64_t>(seed);
    crash.down_for_stamps = 3;
    plan.crashes.push_back(crash);
    CheckRecoveredEquivalence(seed, plan);
  }
}

TEST(ParallelRecoveryTest, MultiCrashRecoversEveryTime) {
  // Two non-overlapping crashes of node 0 plus one of node 1 — each
  // rebirth replays a *larger* M_i than the last (retention is monotone).
  faults::FaultPlan plan;
  plan.crashes.push_back(faults::CrashSpec{0, /*round=*/5, /*down_for=*/4});
  plan.crashes.push_back(faults::CrashSpec{0, /*round=*/30, /*down_for=*/4});
  plan.crashes.push_back(faults::CrashSpec{1, /*round=*/18, /*down_for=*/6});
  ActionRegistry reg = MediumRegistry(41);
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
  dist::DistAlgebra alg(&topo);
  auto seq = RunProgram(alg);
  ASSERT_TRUE(seq.ok()) << seq.status();
  ParallelOptions opt;
  opt.plan = plan;
  auto run = RunParallel(alg, opt);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->complete);
  EXPECT_EQ(run->stats.crashes, 3u);
  EXPECT_EQ(run->stats.recovered_nodes, 3u);
  EXPECT_EQ(run->stats.performs, seq->stats.performs);
  EXPECT_EQ(run->stats.commits, seq->stats.commits);
  for (ObjectId x = 0; x < 4; ++x) {
    NodeId h = topo.HomeOfObject(x);
    EXPECT_EQ(run->final_state.nodes[h].vmap.Get(x, kRootAction),
              seq->final_state.nodes[h].vmap.Get(x, kRootAction))
        << "object " << x;
  }
  EXPECT_TRUE(algebra::IsValidSequence(
      alg, std::span<const dist::DistEvent>(run->events)));
}

TEST(ParallelRecoveryTest, CrashUnderMessageChaosStillEquivalent) {
  // Crashes compose with drop/duplicate/delay: the WAL self-sends are
  // exempt from the injector (a node's link to itself never fails), so
  // M_i stays complete even while cross-node traffic is being mangled.
  for (std::uint64_t seed = 0; seed < 4; ++seed) {
    faults::FaultPlan plan;
    plan.seed = seed * 17 + 3;
    plan.drop_prob = 0.25;
    plan.dup_prob = 0.2;
    plan.delay_prob = 0.25;
    plan.max_delay_rounds = 3;
    faults::CrashSpec crash;
    crash.node = static_cast<NodeId>((seed + 1) % 3);
    crash.at_stamp = 6;
    crash.down_for_stamps = 5;
    plan.crashes.push_back(crash);
    CheckRecoveredEquivalence(seed + 50, plan,
                              seed % 2 == 0 ? Propagation::kDelta
                                            : Propagation::kEager);
  }
}

TEST(ParallelRecoveryTest, HealingPartitionCompletesEquivalently) {
  // A stamp-window partition severs the 0-1 link for the first 60 stamps.
  // Watchdog heartbeats keep the logical clock ticking even if every
  // thread idles, so the window provably expires; once healed, the
  // anti-entropy rebroadcast repairs the knowledge gap and the run must
  // finish exactly like the fault-free one.
  faults::FaultPlan plan;
  faults::PartitionSpec part;
  part.a = 0;
  part.b = 1;
  part.from_stamp = 0;
  part.until_stamp = 60;
  plan.partitions.push_back(part);
  CheckRecoveredEquivalence(7, plan);
}

TEST(ParallelRecoveryTest, CrashDuringHealingPartition) {
  // The combined scenario from the issue's acceptance bar: a node dies
  // while a partition is open, rebirths into the still-partitioned
  // network, and the run nevertheless converges after the heal.
  faults::FaultPlan plan;
  faults::CrashSpec crash;
  crash.node = 2;
  crash.at_stamp = 10;
  crash.down_for_stamps = 8;
  plan.crashes.push_back(crash);
  faults::PartitionSpec part;
  part.a = 1;
  part.b = 2;
  part.from_stamp = 5;
  part.until_stamp = 50;
  plan.partitions.push_back(part);
  CheckRecoveredEquivalence(13, plan);
}

TEST(ParallelRecoveryTest, PermanentPartitionDegradesGracefully) {
  // Object x0 is homed on node 2, permanently unreachable from nodes 0
  // and 1 (stamp windows that never close). The runner must not hang:
  // the per-node watchdog timeout-aborts the stuck top-level work at its
  // reachable home, node 2 eventually abandons obligations it can never
  // learn about, and the partial result still replays to a serializable,
  // orphan-consistent abstract state with a stall diagnosis naming the
  // abandoned work.
  ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId t2 = reg.NewAction(kRootAction);
  reg.NewAccess(t1, 0, Update::Add(1));
  reg.NewAccess(t2, 0, Update::Add(2));
  dist::Topology topo(
      &reg, 3, [](ObjectId) { return 2u; },
      [&](ActionId a) { return a == t1 ? 0u : 1u; });
  dist::DistAlgebra alg(&topo);
  ParallelOptions opt;
  faults::PartitionSpec p02{0, 2, 0, 0};
  p02.from_stamp = 0;
  p02.until_stamp = std::int64_t{1} << 40;
  faults::PartitionSpec p12{1, 2, 0, 0};
  p12.from_stamp = 0;
  p12.until_stamp = std::int64_t{1} << 40;
  opt.plan.partitions.push_back(p02);
  opt.plan.partitions.push_back(p12);
  opt.max_attempts_per_step = 4;
  // Node 2 can never resolve its create obligations; keep its hopeless
  // spin short (the default 2^20 cap exists for adversarial plans that
  // do eventually heal, and is painfully slow under sanitizers).
  opt.max_idle_spins = 1u << 14;
  auto run = RunParallel(alg, opt);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_GE(run->stats.timeout_aborts, 2u)
      << "both unreachable transactions must be timeout-aborted";
  EXPECT_GT(run->stats.dropped_msgs, 0u) << "the link filter ate traffic";
  EXPECT_EQ(run->stats.performs, 0u) << "x0 was never reachable";
  auto abstract =
      ReplayAbstract(alg, std::span<const dist::DistEvent>(run->events));
  ASSERT_TRUE(abstract.ok()) << abstract.status();
  if (!run->complete) {
    StallDiagnosis stalls = DiagnoseStalls(alg, run->final_state);
    EXPECT_FALSE(stalls.empty()) << "incomplete runs must diagnose";
  }
  EXPECT_TRUE(algebra::IsValidSequence(
      alg, std::span<const dist::DistEvent>(run->events)));
  EXPECT_TRUE(aat::IsPermDataSerializable(abstract->tree));
  EXPECT_TRUE(orphan::CheckOrphanViewConsistency(abstract->tree).ok());
}

TEST(ParallelRecoveryTest, RoundEraPlansWorkUnchangedOnStampClock) {
  // Backwards compatibility: a plan written for the round-based driver
  // (no stamp fields at all) runs on the concurrent runner with its
  // round numbers reinterpreted as stamps — no rewriting required.
  faults::FaultPlan plan;
  plan.crashes.push_back(faults::CrashSpec{1, /*round=*/8, /*down_for=*/4});
  plan.partitions.push_back(
      faults::PartitionSpec{0, 2, /*from_round=*/5, /*until_round=*/40});
  CheckRecoveredEquivalence(29, plan);
}

}  // namespace
}  // namespace rnt::sim
