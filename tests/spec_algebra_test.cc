#include "spec/spec_algebra.h"

#include <gtest/gtest.h>

#include "algebra/algebra.h"
#include "testutil.h"

namespace rnt::spec {
namespace {

using action::ActionRegistry;
using action::Update;
using algebra::Abort;
using algebra::Commit;
using algebra::Create;
using algebra::Perform;
using algebra::TreeEvent;

class SpecAlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    t1_ = reg_.NewAction(kRootAction);
    t2_ = reg_.NewAction(kRootAction);
    a1_ = reg_.NewAccess(t1_, 0, Update::Add(1));
    a2_ = reg_.NewAccess(t2_, 0, Update::Add(2));
  }

  ActionRegistry reg_;
  ActionId t1_, t2_, a1_, a2_;
};

TEST_F(SpecAlgebraTest, AllowsAnyValuePreservingSerializability) {
  SpecAlgebra alg(&reg_);
  auto s = alg.Initial();
  for (TreeEvent e : std::vector<TreeEvent>{Create{t1_}, Create{t2_},
                                            Create{a1_}, Create{a2_}}) {
    ASSERT_TRUE(alg.Defined(s, e));
    alg.Apply(s, e);
  }
  // Unlike level 2, the spec does not force a particular interleaving —
  // any perform whose *result* keeps perm(T) serializable is allowed.
  // Both concurrent performs seeing 0 are fine while the parents are
  // active (the accesses are masked, perm is trivial).
  ASSERT_TRUE(alg.Defined(s, TreeEvent{Perform{a1_, 0}}));
  alg.Apply(s, TreeEvent{Perform{a1_, 0}});
  ASSERT_TRUE(alg.Defined(s, TreeEvent{Perform{a2_, 0}}));
  alg.Apply(s, TreeEvent{Perform{a2_, 0}});
  // t1 can commit (perm gains a1 with label 0: serializable).
  ASSERT_TRUE(alg.Defined(s, TreeEvent{Commit{t1_}}));
  alg.Apply(s, TreeEvent{Commit{t1_}});
  // But now committing t2 would expose the lost update: C forbids it.
  EXPECT_FALSE(alg.Defined(s, TreeEvent{Commit{t2_}}));
  // Aborting t2 is always allowed.
  EXPECT_TRUE(alg.Defined(s, TreeEvent{Abort{t2_}}));
}

TEST_F(SpecAlgebraTest, PerformRejectedWhenNoFutureJustifiesIt) {
  SpecAlgebra alg(&reg_);
  auto s = alg.Initial();
  for (TreeEvent e : std::vector<TreeEvent>{Create{t1_}, Create{a1_},
                                            Perform{a1_, 0}, Commit{t1_},
                                            Create{t2_}, Create{a2_}}) {
    ASSERT_TRUE(alg.Defined(s, e));
    alg.Apply(s, e);
  }
  // a1 (add 1) is permanent; a2 would be a top-level-committed... not yet:
  // t2 is active so perform with any value keeps perm serializable.
  EXPECT_TRUE(alg.Defined(s, TreeEvent{Perform{a2_, 999}}));
  // But performing the correct value also works.
  EXPECT_TRUE(alg.Defined(s, TreeEvent{Perform{a2_, 1}}));
  alg.Apply(s, TreeEvent{Perform{a2_, 1}});
  EXPECT_TRUE(alg.Defined(s, TreeEvent{Commit{t2_}}));
}

TEST_F(SpecAlgebraTest, DisabledOracleSkipsCCheck) {
  SpecAlgebra::Options opt;
  opt.enforce_serializability = false;
  SpecAlgebra alg(&reg_, opt);
  auto s = alg.Initial();
  for (TreeEvent e : std::vector<TreeEvent>{Create{t1_}, Create{t2_},
                                            Create{a1_}, Create{a2_},
                                            Perform{a1_, 0}, Perform{a2_, 0},
                                            Commit{t1_}}) {
    ASSERT_TRUE(alg.Defined(s, e));
    alg.Apply(s, e);
  }
  // Raw tree algebra: the lost-update commit is structurally fine.
  EXPECT_TRUE(alg.Defined(s, TreeEvent{Commit{t2_}}));
}

TEST(SpecAlgebraPropertyTest, RandomRunsKeepPermSerializable) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(seed);
    testutil::RandomRegistryParams p;
    p.top_level = 2;
    p.max_children = 2;
    p.max_depth = 3;
    p.objects = 2;
    action::ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
    SpecAlgebra alg(&reg);
    auto run = algebra::RandomRun(
        alg, [](const action::ActionTree& s) { return EventCandidates(s); },
        rng, 25);
    EXPECT_TRUE(action::IsPermSerializable(run.state)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rnt::spec
