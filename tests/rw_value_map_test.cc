#include "rwlock/rw_value_map.h"

#include <gtest/gtest.h>

namespace rnt::rwlock {
namespace {

using action::ActionRegistry;
using action::Update;

class RwValueMapTest : public ::testing::Test {
 protected:
  void SetUp() override {
    t_ = reg_.NewAction(kRootAction);
    s_ = reg_.NewAction(t_);
    u_ = reg_.NewAction(kRootAction);
  }

  ActionRegistry reg_;
  ActionId t_, s_, u_;
};

TEST_F(RwValueMapTest, RootImplicitlyWriteDefined) {
  RwValueMap vm;
  EXPECT_TRUE(vm.IsWriteDefined(0, kRootAction));
  EXPECT_EQ(vm.GetWrite(0, kRootAction), action::kInitValue);
  EXPECT_EQ(vm.PrincipalWriter(0, reg_), kRootAction);
  EXPECT_EQ(vm.PrincipalValue(0, reg_), action::kInitValue);
}

TEST_F(RwValueMapTest, WriteChainPrincipalIsDeepest) {
  RwValueMap vm;
  vm.SetWrite(0, t_, 5);
  vm.SetWrite(0, s_, 9);
  EXPECT_EQ(vm.PrincipalWriter(0, reg_), s_);
  EXPECT_EQ(vm.PrincipalValue(0, reg_), 9);
  vm.EraseWrite(0, s_);
  EXPECT_EQ(vm.PrincipalWriter(0, reg_), t_);
  EXPECT_EQ(vm.PrincipalValue(0, reg_), 5);
}

TEST_F(RwValueMapTest, ReadersAreSetSemantics) {
  RwValueMap vm;
  vm.AddReader(0, t_);
  vm.AddReader(0, u_);
  vm.AddReader(0, t_);  // duplicate
  ASSERT_EQ(vm.ReadHolders(0).size(), 2u);
  EXPECT_TRUE(vm.HoldsRead(0, t_));
  EXPECT_TRUE(vm.HoldsRead(0, u_));
  vm.EraseReader(0, t_);
  EXPECT_FALSE(vm.HoldsRead(0, t_));
  EXPECT_TRUE(vm.HoldsRead(0, u_));
}

TEST_F(RwValueMapTest, ReadersDoNotAffectPrincipalValue) {
  RwValueMap vm;
  vm.SetWrite(0, t_, 7);
  vm.AddReader(0, u_);
  EXPECT_EQ(vm.PrincipalValue(0, reg_), 7);
  EXPECT_EQ(vm.PrincipalWriter(0, reg_), t_);
}

TEST_F(RwValueMapTest, EraseRootWriteIsNoop) {
  RwValueMap vm;
  vm.SetWrite(0, kRootAction, 3);
  vm.EraseWrite(0, kRootAction);
  EXPECT_EQ(vm.GetWrite(0, kRootAction), 3)
      << "the root entry is never erased";
}

TEST_F(RwValueMapTest, TouchedObjectsTracksBothKinds) {
  RwValueMap vm;
  vm.SetWrite(0, t_, 1);
  vm.AddReader(3, u_);
  auto touched = vm.TouchedObjects();
  ASSERT_EQ(touched.size(), 2u);
  EXPECT_EQ(touched[0], 0u);
  EXPECT_EQ(touched[1], 3u);
  vm.EraseWrite(0, t_);
  vm.EraseReader(3, u_);
  EXPECT_TRUE(vm.TouchedObjects().empty()) << "empty entries pruned";
}

TEST_F(RwValueMapTest, WellFormedRejectsForkedWriteChain) {
  RwValueMap vm;
  vm.SetWrite(0, t_, 1);
  vm.SetWrite(0, u_, 2);  // t and u are incomparable top-levels
  EXPECT_FALSE(vm.CheckWellFormed(reg_).ok());
  RwValueMap ok;
  ok.SetWrite(0, t_, 1);
  ok.SetWrite(0, s_, 2);  // chain t -> s
  EXPECT_TRUE(ok.CheckWellFormed(reg_).ok());
}

TEST_F(RwValueMapTest, ForkedReadersAreWellFormed) {
  RwValueMap vm;
  vm.AddReader(0, t_);
  vm.AddReader(0, u_);  // incomparable readers: the whole point
  EXPECT_TRUE(vm.CheckWellFormed(reg_).ok());
}

TEST_F(RwValueMapTest, HoldsAnyCoversBothKinds) {
  RwValueMap vm;
  EXPECT_FALSE(vm.HoldsAny(0, t_));
  vm.AddReader(0, t_);
  EXPECT_TRUE(vm.HoldsAny(0, t_));
  vm.EraseReader(0, t_);
  vm.SetWrite(0, t_, 1);
  EXPECT_TRUE(vm.HoldsAny(0, t_));
}

}  // namespace
}  // namespace rnt::rwlock
