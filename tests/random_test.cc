#include "common/random.h"

#include <gtest/gtest.h>

#include <set>

namespace rnt {
namespace {

TEST(RngTest, Deterministic) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.Next(), b.Next());
}

TEST(RngTest, SeedsDiffer) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    if (a.Next() == b.Next()) ++same;
  }
  EXPECT_LT(same, 4);
}

TEST(RngTest, BelowRespectsBound) {
  Rng rng(7);
  for (int i = 0; i < 1000; ++i) {
    EXPECT_LT(rng.Below(13), 13u);
  }
}

TEST(RngTest, BelowHitsAllResidues) {
  Rng rng(7);
  std::set<std::uint64_t> seen;
  for (int i = 0; i < 500; ++i) seen.insert(rng.Below(5));
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, RangeInclusive) {
  Rng rng(9);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 500; ++i) {
    std::int64_t v = rng.Range(-2, 2);
    EXPECT_GE(v, -2);
    EXPECT_LE(v, 2);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 5u);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(11);
  for (int i = 0; i < 1000; ++i) {
    double d = rng.NextDouble();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(RngTest, ChanceExtremes) {
  Rng rng(13);
  for (int i = 0; i < 100; ++i) {
    EXPECT_FALSE(rng.Chance(0.0));
    EXPECT_TRUE(rng.Chance(1.0));
  }
}

TEST(RngTest, ChanceApproximatesProbability) {
  Rng rng(17);
  int hits = 0;
  const int n = 20000;
  for (int i = 0; i < n; ++i) {
    if (rng.Chance(0.3)) ++hits;
  }
  double rate = static_cast<double>(hits) / n;
  EXPECT_NEAR(rate, 0.3, 0.02);
}

TEST(RngTest, ShufflePreservesElements) {
  Rng rng(19);
  std::vector<int> v{1, 2, 3, 4, 5, 6};
  auto orig = v;
  rng.Shuffle(v);
  std::sort(v.begin(), v.end());
  EXPECT_EQ(v, orig);
}

TEST(ZipfTest, UniformWhenThetaZero) {
  Zipf z(4, 0.0);
  Rng rng(23);
  std::vector<int> counts(4, 0);
  const int n = 40000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(rng)];
  for (int c : counts) {
    EXPECT_NEAR(static_cast<double>(c) / n, 0.25, 0.02);
  }
}

TEST(ZipfTest, SkewFavorsSmallKeys) {
  Zipf z(100, 1.0);
  Rng rng(29);
  std::vector<int> counts(100, 0);
  const int n = 50000;
  for (int i = 0; i < n; ++i) ++counts[z.Sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[99] * 5);
}

TEST(ZipfTest, SamplesInRange) {
  Zipf z(7, 0.9);
  Rng rng(31);
  for (int i = 0; i < 1000; ++i) EXPECT_LT(z.Sample(rng), 7u);
}

}  // namespace
}  // namespace rnt
