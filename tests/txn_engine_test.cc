#include "txn/transaction_manager.h"

#include <gtest/gtest.h>

#include <atomic>
#include <thread>

#include "aat/aat.h"
#include "action/serializability.h"
#include "common/random.h"

namespace rnt::txn {
namespace {

using action::Update;

TEST(TxnEngineTest, SingleTransactionCommit) {
  TransactionManager mgr;
  auto t = mgr.Begin();
  ASSERT_TRUE(t->Put(0, 7).ok());
  auto got = t->Get(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 7);
  EXPECT_EQ(mgr.ReadCommitted(0), 0) << "not yet durable";
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_EQ(mgr.ReadCommitted(0), 7);
}

TEST(TxnEngineTest, ApplyReturnsSeenValue) {
  TransactionManager mgr;
  auto t = mgr.Begin();
  auto seen = t->Apply(0, Update::Add(5));
  ASSERT_TRUE(seen.ok());
  EXPECT_EQ(*seen, 0) << "label is the value seen, not written";
  auto seen2 = t->Apply(0, Update::Add(5));
  ASSERT_TRUE(seen2.ok());
  EXPECT_EQ(*seen2, 5);
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_EQ(mgr.ReadCommitted(0), 10);
}

TEST(TxnEngineTest, AbortDiscardsWrites) {
  TransactionManager mgr;
  auto t = mgr.Begin();
  ASSERT_TRUE(t->Put(0, 99).ok());
  ASSERT_TRUE(t->Abort().ok());
  EXPECT_EQ(mgr.ReadCommitted(0), 0);
  // Operations on a dead transaction fail.
  EXPECT_TRUE(t->Get(0).status().IsAborted());
  EXPECT_TRUE(t->Put(0, 1).IsAborted());
  EXPECT_TRUE(t->Commit().IsAborted());
}

TEST(TxnEngineTest, RaiiAbortsUnfinished) {
  TransactionManager mgr;
  {
    auto t = mgr.Begin();
    ASSERT_TRUE(t->Put(0, 123).ok());
    // dropped without commit
  }
  EXPECT_EQ(mgr.ReadCommitted(0), 0);
  EXPECT_EQ(mgr.stats().aborted, 1u);
}

TEST(TxnEngineTest, ChildSeesParentsUncommittedValue) {
  TransactionManager mgr;
  auto t = mgr.Begin();
  ASSERT_TRUE(t->Put(0, 5).ok());
  auto child = t->BeginChild();
  ASSERT_TRUE(child.ok());
  auto got = (*child)->Get(0);
  ASSERT_TRUE(got.ok());
  EXPECT_EQ(*got, 5) << "child inherits the parent's version";
  ASSERT_TRUE((*child)->Commit().ok());
  ASSERT_TRUE(t->Commit().ok());
}

TEST(TxnEngineTest, ChildCommitMergesIntoParentAbortDiscards) {
  TransactionManager mgr;
  auto t = mgr.Begin();
  ASSERT_TRUE(t->Put(0, 5).ok());
  {
    auto c = t->BeginChild();
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE((*c)->Put(0, 50).ok());
    ASSERT_TRUE((*c)->Commit().ok());
  }
  auto after_commit = t->Get(0);
  ASSERT_TRUE(after_commit.ok());
  EXPECT_EQ(*after_commit, 50) << "committed child's value adopted";
  {
    auto c = t->BeginChild();
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE((*c)->Put(0, 500).ok());
    ASSERT_TRUE((*c)->Abort().ok());
  }
  auto after_abort = t->Get(0);
  ASSERT_TRUE(after_abort.ok());
  EXPECT_EQ(*after_abort, 50) << "aborted child's value discarded";
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_EQ(mgr.ReadCommitted(0), 50);
}

TEST(TxnEngineTest, CommitWithOpenChildFails) {
  TransactionManager mgr;
  auto t = mgr.Begin();
  auto c = t->BeginChild();
  ASSERT_TRUE(c.ok());
  Status s = t->Commit();
  EXPECT_EQ(s.code(), StatusCode::kIllegalState);
  ASSERT_TRUE((*c)->Commit().ok());
  EXPECT_TRUE(t->Commit().ok());
}

TEST(TxnEngineTest, AbortCascadesToDescendants) {
  TransactionManager mgr;
  auto t = mgr.Begin();
  auto c = t->BeginChild();
  ASSERT_TRUE(c.ok());
  auto g = (*c)->BeginChild();
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE((*g)->Put(0, 1).ok());
  ASSERT_TRUE(t->Abort().ok());
  // Grandchild is dead too.
  EXPECT_TRUE((*g)->Get(0).status().IsAborted());
  EXPECT_TRUE((*c)->Commit().IsAborted());
  EXPECT_EQ(mgr.stats().cascade_aborts, 2u);
  EXPECT_EQ(mgr.ReadCommitted(0), 0);
}

TEST(TxnEngineTest, BeginChildUnderDeadParentFails) {
  TransactionManager mgr;
  auto t = mgr.Begin();
  ASSERT_TRUE(t->Abort().ok());
  auto c = t->BeginChild();
  EXPECT_TRUE(c.status().IsAborted());
}

TEST(TxnEngineTest, RecoveryBlockPattern) {
  // The paper's motivating style: tolerate a failed child and retry.
  TransactionManager mgr;
  auto t = mgr.Begin();
  int attempts = 0;
  for (;;) {
    auto c = t->BeginChild();
    ASSERT_TRUE(c.ok());
    ++attempts;
    ASSERT_TRUE((*c)->Put(0, 42).ok());
    if (attempts < 3) {
      ASSERT_TRUE((*c)->Abort().ok());  // simulated failure
      continue;
    }
    ASSERT_TRUE((*c)->Commit().ok());
    break;
  }
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_EQ(mgr.ReadCommitted(0), 42);
  EXPECT_EQ(attempts, 3);
}

TEST(TxnEngineTest, SiblingWriteConflictBlocksUntilCommit) {
  TransactionManager mgr;
  auto t1 = mgr.Begin();
  ASSERT_TRUE(t1->Put(0, 1).ok());
  std::atomic<bool> t2_done{false};
  Value t2_saw = -1;
  std::thread other([&] {
    auto t2 = mgr.Begin();
    auto v = t2->Apply(0, Update::Add(10));
    ASSERT_TRUE(v.ok());
    t2_saw = *v;
    ASSERT_TRUE(t2->Commit().ok());
    t2_done = true;
  });
  // Give t2 time to block on t1's write lock.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  EXPECT_FALSE(t2_done) << "t2 must wait for t1";
  ASSERT_TRUE(t1->Commit().ok());
  other.join();
  EXPECT_TRUE(t2_done);
  EXPECT_EQ(t2_saw, 1) << "t2 observed t1's committed value";
  EXPECT_EQ(mgr.ReadCommitted(0), 11);
}

TEST(TxnEngineTest, ConcurrentReadersDoNotBlock) {
  TransactionManager mgr;
  auto t1 = mgr.Begin();
  ASSERT_TRUE(t1->Get(0).ok());
  auto t2 = mgr.Begin();
  ASSERT_TRUE(t2->Get(0).ok());
  EXPECT_EQ(mgr.stats().lock_waits, 0u);
  ASSERT_TRUE(t1->Commit().ok());
  ASSERT_TRUE(t2->Commit().ok());
}

TEST(TxnEngineTest, SingleModeSerializesReaders) {
  TransactionManager::Options opt;
  opt.single_mode_locks = true;
  TransactionManager mgr(opt);
  auto t1 = mgr.Begin();
  ASSERT_TRUE(t1->Get(0).ok());
  std::thread other([&] {
    auto t2 = mgr.Begin();
    ASSERT_TRUE(t2->Get(0).ok());
    ASSERT_TRUE(t2->Commit().ok());
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_GE(mgr.stats().lock_waits, 1u)
      << "paper's single-mode variant blocks the second reader";
  ASSERT_TRUE(t1->Commit().ok());
  other.join();
}

TEST(TxnEngineTest, DeadlockDetectedAndVictimAborted) {
  TransactionManager mgr;
  auto a = mgr.Begin();
  auto b = mgr.Begin();
  ASSERT_TRUE(a->Put(0, 1).ok());
  ASSERT_TRUE(b->Put(1, 1).ok());
  std::atomic<bool> a_blocked_then_ok{false};
  std::thread ta([&] {
    // a: x1 — blocks on b.
    auto r = a->Put(1, 2);
    a_blocked_then_ok = r.ok();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  // b: x0 — closes the cycle; b is the requester => the victim.
  Status s = b->Put(0, 2);
  EXPECT_TRUE(s.IsAborted()) << s;
  ta.join();
  EXPECT_TRUE(a_blocked_then_ok) << "survivor proceeds after victim abort";
  EXPECT_TRUE(a->Commit().ok());
  EXPECT_GE(mgr.stats().deadlock_aborts, 1u);
}

TEST(TxnEngineTest, NestedDeadlockThroughParentCompletion) {
  // t1's child c1 holds x0; t2 waits for x0; t1's other child c2 waits on
  // an object held by t2 — cycle passes through t2's dependence on c1's
  // *parent* completing.
  TransactionManager mgr;
  auto t1 = mgr.Begin();
  auto t2 = mgr.Begin();
  auto c1 = t1->BeginChild();
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE((*c1)->Put(0, 1).ok());
  ASSERT_TRUE((*c1)->Commit().ok());  // lock retained by t1 now
  ASSERT_TRUE(t2->Put(1, 1).ok());
  std::thread waiter([&] {
    (void)t2->Put(0, 2);  // blocks: t1 retains write on x0
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  auto c2 = t1->BeginChild();
  ASSERT_TRUE(c2.ok());
  Status s = (*c2)->Put(1, 2);  // t2 holds x1 => cycle => victim
  EXPECT_TRUE(s.IsAborted()) << s;
  // Unwind: abort t1 entirely so t2 can finish.
  ASSERT_TRUE(t1->Abort().ok());
  waiter.join();
  ASSERT_TRUE(t2->Commit().ok());
}

TEST(TxnEngineTest, TimeoutPolicyAborts) {
  TransactionManager::Options opt;
  opt.deadlock_detection = false;
  opt.lock_wait_timeout = std::chrono::milliseconds(50);
  TransactionManager mgr(opt);
  auto a = mgr.Begin();
  auto b = mgr.Begin();
  ASSERT_TRUE(a->Put(0, 1).ok());
  Status s = b->Put(0, 2);
  EXPECT_TRUE(s.IsTimeout()) << s;
  EXPECT_GE(mgr.stats().timeout_aborts, 1u);
  ASSERT_TRUE(a->Commit().ok());
}

TEST(TxnEngineTest, TraceReplayYieldsSerializableTree) {
  TransactionManager::Options opt;
  opt.record_trace = true;
  TransactionManager mgr(opt);
  auto t1 = mgr.Begin();
  ASSERT_TRUE(t1->Apply(0, Update::Add(1)).ok());
  {
    auto c = t1->BeginChild();
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE((*c)->Apply(0, Update::Add(10)).ok());
    ASSERT_TRUE((*c)->Commit().ok());
  }
  ASSERT_TRUE(t1->Commit().ok());
  auto t2 = mgr.Begin();
  ASSERT_TRUE(t2->Apply(0, Update::MulAdd(2, 0)).ok());
  ASSERT_TRUE(t2->Abort().ok());

  auto replayed = ReplayTrace(mgr.TakeTrace());
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  const action::ActionTree& tree = replayed->tree;
  EXPECT_TRUE(aat::IsPermDataSerializable(tree));
  EXPECT_TRUE(action::IsPermSerializable(tree));
  // The permanent subtree carries exactly t1's two accesses.
  action::ActionTree perm = tree.Perm();
  EXPECT_EQ(perm.Datasteps(0).size(), 2u);
}

TEST(TxnEngineStressTest, ConcurrentWorkersSerializableTraces) {
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    TransactionManager::Options opt;
    opt.record_trace = true;
    TransactionManager mgr(opt);
    constexpr int kWorkers = 4;
    constexpr int kTxnsPerWorker = 12;
    std::vector<std::thread> threads;
    for (int w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&, w] {
        Rng rng(seed * 100 + w);
        for (int i = 0; i < kTxnsPerWorker; ++i) {
          auto t = mgr.Begin();
          bool dead = false;
          int children = 1 + static_cast<int>(rng.Below(2));
          for (int c = 0; c < children && !dead; ++c) {
            auto ch = t->BeginChild();
            if (!ch.ok()) {
              dead = true;
              break;
            }
            int accesses = 1 + static_cast<int>(rng.Below(3));
            bool child_ok = true;
            for (int a = 0; a < accesses; ++a) {
              ObjectId x = static_cast<ObjectId>(rng.Below(3));
              auto r = rng.Chance(0.5)
                           ? (*ch)->Apply(x, Update::Add(1))
                           : (*ch)->Apply(x, Update::Read());
              if (!r.ok()) {
                child_ok = false;
                break;
              }
            }
            if (child_ok && rng.Chance(0.8)) {
              child_ok = (*ch)->Commit().ok();
            } else {
              (void)(*ch)->Abort();
            }
          }
          if (!dead && rng.Chance(0.9)) {
            (void)t->Commit();
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    auto replayed = ReplayTrace(mgr.TakeTrace());
    ASSERT_TRUE(replayed.ok()) << replayed.status();
    // Read/write engine: concurrent sibling readers make the *total*
    // per-object order too strong; the conflict-restricted (Rw)
    // characterization is the correct predicate (see aat.h §10 notes).
    EXPECT_TRUE(aat::IsPermDataSerializableRw(replayed->tree))
        << "seed " << seed;
    Status l10 = aat::CheckLemma10(replayed->tree);
    EXPECT_TRUE(l10.ok()) << l10;
  }
}

TEST(TxnEngineStressTest, SingleModeTracesSatisfyStrictDataOrder) {
  // The paper's proven variant (no read/write distinction) does satisfy
  // the strict Theorem 9 predicate with the total per-object order.
  for (std::uint64_t seed = 0; seed < 3; ++seed) {
    TransactionManager::Options opt;
    opt.record_trace = true;
    opt.single_mode_locks = true;
    TransactionManager mgr(opt);
    constexpr int kWorkers = 4;
    std::vector<std::thread> threads;
    for (int w = 0; w < kWorkers; ++w) {
      threads.emplace_back([&, w] {
        Rng rng(seed * 77 + w);
        for (int i = 0; i < 10; ++i) {
          auto t = mgr.Begin();
          auto ch = t->BeginChild();
          if (!ch.ok()) continue;
          bool ok = true;
          for (int a = 0; a < 3 && ok; ++a) {
            ObjectId x = static_cast<ObjectId>(rng.Below(3));
            ok = (*ch)
                     ->Apply(x, rng.Chance(0.5) ? Update::Add(1)
                                                : Update::Read())
                     .ok();
          }
          if (ok && rng.Chance(0.8)) ok = (*ch)->Commit().ok();
          if (ok && rng.Chance(0.9)) (void)t->Commit();
        }
      });
    }
    for (auto& th : threads) th.join();
    auto replayed = ReplayTrace(mgr.TakeTrace());
    ASSERT_TRUE(replayed.ok()) << replayed.status();
    EXPECT_TRUE(aat::IsPermDataSerializable(replayed->tree))
        << "seed " << seed;
  }
}

TEST(TxnEngineStressTest, CounterInvariantUnderContention) {
  // N workers each add 1 to a shared counter M times inside nested
  // children with random aborts; the committed counter must equal the
  // number of successful top-level commits of an increment.
  TransactionManager mgr;
  constexpr int kWorkers = 4;
  constexpr int kIncrements = 20;
  std::atomic<long> expected{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(900 + w);
      for (int i = 0; i < kIncrements; ++i) {
        auto t = mgr.Begin();
        auto c = t->BeginChild();
        if (!c.ok()) continue;
        auto r = (*c)->Apply(7, Update::Add(1));
        if (!r.ok()) continue;  // deadlock victim: child dies with t
        if (rng.Chance(0.25)) {
          (void)(*c)->Abort();
          (void)t->Commit();
          continue;  // increment rolled back
        }
        if (!(*c)->Commit().ok()) continue;
        if (t->Commit().ok()) expected.fetch_add(1);
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mgr.ReadCommitted(7), expected.load());
}

}  // namespace
}  // namespace rnt::txn
