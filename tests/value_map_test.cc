#include "valuemap/value_map.h"

#include <gtest/gtest.h>

#include "algebra/algebra.h"
#include "testutil.h"
#include "valuemap/value_map_algebra.h"
#include "versionmap/version_map_algebra.h"

namespace rnt::valuemap {
namespace {

using action::ActionRegistry;
using action::Update;
using algebra::Abort;
using algebra::Commit;
using algebra::Create;
using algebra::LockEvent;
using algebra::LoseLock;
using algebra::Perform;
using algebra::ReleaseLock;

TEST(ValueMapTest, ImplicitRootHoldsInit) {
  ValueMap vm;
  ActionRegistry reg;
  EXPECT_TRUE(vm.IsDefined(3, kRootAction));
  EXPECT_EQ(vm.Get(3, kRootAction), action::kInitValue);
  EXPECT_EQ(vm.PrincipalValue(3, reg), action::kInitValue);
}

TEST(ValueMapTest, SetGetEraseAndPrincipal) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId s = reg.NewAction(t);
  ValueMap vm;
  vm.Set(0, t, 5);
  vm.Set(0, s, 9);
  EXPECT_EQ(vm.PrincipalAction(0, reg), s);
  EXPECT_EQ(vm.PrincipalValue(0, reg), 9);
  vm.Erase(0, s);
  EXPECT_EQ(vm.PrincipalAction(0, reg), t);
  EXPECT_EQ(vm.PrincipalValue(0, reg), 5);
}

TEST(ValueMapTest, EqualityIgnoresTrivialRootEntries) {
  ValueMap a, b;
  EXPECT_TRUE(a == b);
  a.Set(0, kRootAction, action::kInitValue);
  EXPECT_TRUE(a == b) << "explicit init at root is canonical-trivial";
  a.Set(0, kRootAction, 7);
  EXPECT_FALSE(a == b);
  b.Set(0, kRootAction, 7);
  EXPECT_TRUE(a == b);
}

TEST(ValueMapTest, WellFormedRejectsForkedHolders) {
  ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId t2 = reg.NewAction(kRootAction);
  ValueMap vm;
  vm.Set(0, t1, 1);
  vm.Set(0, t2, 2);
  EXPECT_FALSE(vm.CheckWellFormed(reg).ok());
}

TEST(EvalTest, EvalCollapsesSequencesToValues) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId a = reg.NewAccess(t, 0, Update::Add(1));
  ActionId b = reg.NewAccess(t, 0, Update::MulAdd(2, 3));
  versionmap::VersionMap w;
  w.Set(0, t, {a, b});
  ValueMap v = Eval(w, reg);
  EXPECT_EQ(v.Get(0, t), 2 * (0 + 1) + 3);
}

class ValueMapAlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    t1_ = reg_.NewAction(kRootAction);
    t2_ = reg_.NewAction(kRootAction);
    a1_ = reg_.NewAccess(t1_, 0, Update::Add(1));
    a2_ = reg_.NewAccess(t2_, 0, Update::Add(2));
  }

  void Step(ValState& s, const ValueMapAlgebra& alg, LockEvent e) {
    ASSERT_TRUE(alg.Defined(s, e)) << algebra::ToString(e);
    alg.Apply(s, e);
  }

  ActionRegistry reg_;
  ActionId t1_, t2_, a1_, a2_;
};

TEST_F(ValueMapAlgebraTest, PerformStoresUpdatedValue) {
  ValueMapAlgebra alg(&reg_);
  auto s = alg.Initial();
  Step(s, alg, Create{t1_});
  Step(s, alg, Create{a1_});
  Step(s, alg, Perform{a1_, 0});
  EXPECT_EQ(s.vmap.Get(0, a1_), 1) << "value map holds update(A)(u)";
  EXPECT_EQ(s.tree.LabelOf(a1_), 0) << "label holds the value *seen*";
}

TEST_F(ValueMapAlgebraTest, MossLockDisciplineEndToEnd) {
  ValueMapAlgebra alg(&reg_);
  auto s = alg.Initial();
  Step(s, alg, Create{t1_});
  Step(s, alg, Create{t2_});
  Step(s, alg, Create{a1_});
  Step(s, alg, Create{a2_});
  Step(s, alg, Perform{a1_, 0});
  EXPECT_FALSE(alg.Defined(s, LockEvent{Perform{a2_, 0}})) << "lock held";
  Step(s, alg, ReleaseLock{a1_, 0});
  Step(s, alg, Commit{t1_});
  Step(s, alg, ReleaseLock{t1_, 0});
  Step(s, alg, Perform{a2_, 1});
  Step(s, alg, ReleaseLock{a2_, 0});
  Step(s, alg, Commit{t2_});
  Step(s, alg, ReleaseLock{t2_, 0});
  EXPECT_EQ(s.vmap.Get(0, kRootAction), 3) << "0 +1 +2 committed to top";
  EXPECT_TRUE(aat::IsPermDataSerializable(s.tree));
}

TEST_F(ValueMapAlgebraTest, AbortDiscardsValue) {
  ValueMapAlgebra alg(&reg_);
  auto s = alg.Initial();
  Step(s, alg, Create{t1_});
  Step(s, alg, Create{a1_});
  Step(s, alg, Perform{a1_, 0});
  Step(s, alg, ReleaseLock{a1_, 0});
  Step(s, alg, Abort{t1_});
  Step(s, alg, LoseLock{t1_, 0});
  EXPECT_EQ(s.vmap.PrincipalValue(0, reg_), action::kInitValue);
}

// ---------------------------------------------------------------------
// The h″ possibilities-mapping obligation, executable: replaying the same
// event sequence at level 3 yields a witness W with eval(W) = V at every
// step (paper Lemma 20).

TEST(ValueMapRefinementTest, EvalWitnessTracksValueMapOnRandomRuns) {
  for (std::uint64_t seed = 0; seed < 25; ++seed) {
    Rng rng(seed);
    action::ActionRegistry reg = testutil::MakeRandomRegistry(rng);
    ValueMapAlgebra lower(&reg);
    versionmap::VersionMapAlgebra upper(&reg);
    auto run = algebra::RandomRun(
        lower, [](const ValState& s) { return EventCandidates(s); }, rng, 70);
    Status st = algebra::CheckRefinement(
        lower, upper, std::span<const LockEvent>(run.events),
        [](const LockEvent& e) { return std::optional<LockEvent>(e); },
        [&](const ValState& ls, const versionmap::VmState& us) -> Status {
          if (!(ls.tree == us.tree)) {
            return Status::Internal("trees diverged");
          }
          if (!(Eval(us.vmap, reg) == ls.vmap)) {
            return Status::Internal("eval(W) != V");
          }
          return Status::Ok();
        });
    EXPECT_TRUE(st.ok()) << st << " seed " << seed;
  }
}

}  // namespace
}  // namespace rnt::valuemap
