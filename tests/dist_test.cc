#include "dist/dist_algebra.h"

#include <gtest/gtest.h>

#include <utility>

#include "algebra/algebra.h"
#include "testutil.h"

namespace rnt::dist {
namespace {

using action::ActionRegistry;
using action::ActionStatus;
using action::Update;

TEST(ActionSummaryTest, BasicStatusTracking) {
  ActionSummary s;
  EXPECT_FALSE(s.Contains(1));
  s.AddActive(1);
  EXPECT_TRUE(s.IsActive(1));
  s.SetStatus(1, ActionStatus::kCommitted);
  EXPECT_TRUE(s.IsCommitted(1));
  EXPECT_TRUE(s.IsDone(1));
  EXPECT_FALSE(s.IsAborted(1));
}

TEST(ActionSummaryTest, MergeIsMonotone) {
  ActionSummary know, stale;
  know.AddActive(1);
  know.SetStatus(1, ActionStatus::kCommitted);
  stale.AddActive(1);  // old knowledge: still active
  know.MergeFrom(stale);
  EXPECT_TRUE(know.IsCommitted(1)) << "merge must not regress status";
  stale.MergeFrom(know);
  EXPECT_TRUE(stale.IsCommitted(1)) << "merge upgrades status";
}

TEST(ActionSummaryTest, SubsummaryRelation) {
  ActionSummary big;
  big.AddActive(1);
  big.AddActive(2);
  big.SetStatus(2, ActionStatus::kAborted);
  ActionSummary small;
  small.AddActive(2);  // weaker knowledge of 2
  EXPECT_TRUE(small.IsSubsummaryOf(big));
  small.SetStatus(2, ActionStatus::kAborted);
  EXPECT_TRUE(small.IsSubsummaryOf(big));
  small.SetStatus(2, ActionStatus::kCommitted);
  EXPECT_FALSE(small.IsSubsummaryOf(big));
  ActionSummary stranger;
  stranger.AddActive(9);
  EXPECT_FALSE(stranger.IsSubsummaryOf(big));
}

/// A random summary over actions 1..n: each entry is absent, active, or
/// advanced to the action's (deterministic) final status. Statuses are
/// truthful — two summaries never disagree on an action's fate, mirroring
/// the algebra's invariant that only the home node decides it — so merge
/// must be idempotent and commutative over any pair drawn here.
ActionSummary RandomSummary(Rng& rng, ActionId n) {
  ActionSummary s;
  for (ActionId a = 1; a <= n; ++a) {
    if (rng.Chance(0.3)) continue;
    s.AddActive(a);
    if (rng.Chance(0.5)) {
      s.SetStatus(a, a % 2 == 0 ? ActionStatus::kCommitted
                                : ActionStatus::kAborted);
    }
  }
  return s;
}

TEST(ActionSummaryTest, MergeIsIdempotentAndCommutative) {
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    ActionSummary a = RandomSummary(rng, 12);
    ActionSummary b = RandomSummary(rng, 12);
    ActionSummary ab = a;
    EXPECT_FALSE(ab.MergeFrom(a)) << "self-merge reports no change";
    ab.MergeFrom(b);
    ActionSummary ba = b;
    ba.MergeFrom(a);
    EXPECT_EQ(ab, ba) << "merge is commutative, seed " << seed;
    ActionSummary abb = ab;
    EXPECT_FALSE(abb.MergeFrom(b)) << "re-merge is a no-op, seed " << seed;
    EXPECT_EQ(abb, ab) << "merge is idempotent, seed " << seed;
  }
}

TEST(ActionSummaryTest, MergeSkipsKnownEntriesButUpgradesStatus) {
  ActionSummary know;
  know.AddActive(1);
  know.AddActive(2);
  know.SetStatus(2, ActionStatus::kCommitted);
  ActionSummary in;
  in.AddActive(1);
  in.SetStatus(1, ActionStatus::kAborted);
  in.AddActive(2);  // stale: active
  in.AddActive(3);  // new
  EXPECT_TRUE(know.MergeFrom(in));
  EXPECT_TRUE(know.IsAborted(1)) << "status upgrade applied";
  EXPECT_TRUE(know.IsCommitted(2)) << "stale entry ignored";
  EXPECT_TRUE(know.IsActive(3)) << "new entry added";
}

TEST(ActionSummaryTest, RvalueMergeMatchesLvalueMerge) {
  for (std::uint64_t seed = 40; seed < 50; ++seed) {
    Rng rng(seed);
    ActionSummary a = RandomSummary(rng, 10);
    ActionSummary b = RandomSummary(rng, 10);
    ActionSummary via_copy = a;
    via_copy.MergeFrom(b);
    ActionSummary via_move = a;
    ActionSummary b_moved = b;
    via_move.MergeFrom(std::move(b_moved));
    EXPECT_EQ(via_move, via_copy) << "seed " << seed;
  }
}

TEST(ActionSummaryTest, DeltaSinceCoversExactlyTheFrontierGap) {
  for (std::uint64_t seed = 60; seed < 80; ++seed) {
    Rng rng(seed);
    ActionSummary full = RandomSummary(rng, 12);
    // A frontier is knowledge already shipped: any sub-summary.
    ActionSummary frontier = full.RandomSub(rng);
    ActionSummary delta = full.DeltaSince(frontier);
    EXPECT_TRUE(delta.IsSubsummaryOf(full))
        << "every delta is a legal sub-summary, seed " << seed;
    ActionSummary rebuilt = frontier;
    rebuilt.MergeFrom(delta);
    EXPECT_EQ(rebuilt, full)
        << "frontier ∪ delta == full summary, seed " << seed;
    EXPECT_TRUE(full.DeltaSince(full).empty()) << "no gap, no delta";
  }
}

TEST(ActionSummaryTest, FrontierIsMonotoneUnderRepeatedDeltas) {
  // Simulate a peer link: knowledge grows, deltas ship, the frontier only
  // ever gains entries/status — and consecutive deltas coalesce into one
  // legal payload.
  Rng rng(7);
  ActionSummary know, frontier;
  for (int round = 0; round < 30; ++round) {
    ActionId a = static_cast<ActionId>(rng.Below(15) + 1);
    if (!know.Contains(a)) {
      know.AddActive(a);
    } else if (know.IsActive(a)) {
      know.SetStatus(a, rng.Chance(0.5) ? ActionStatus::kCommitted
                                        : ActionStatus::kAborted);
    }
    ActionSummary before = frontier;
    ActionSummary delta = know.DeltaSince(frontier);
    // Coalescing: two pending deltas merged equal one delta computed late.
    ActionSummary d2 = know.DeltaSince(frontier);
    ActionSummary coalesced = delta;
    coalesced.MergeFrom(d2);
    EXPECT_TRUE(coalesced.IsSubsummaryOf(know))
        << "coalesced deltas stay legal sub-summaries";
    frontier.MergeFrom(delta);
    EXPECT_TRUE(before.IsSubsummaryOf(frontier)) << "frontier is monotone";
    EXPECT_EQ(frontier, know) << "after shipping, peer is caught up";
  }
}

TEST(ActionSummaryTest, RandomSubIsAlwaysSubsummary) {
  Rng rng(5);
  ActionSummary s;
  for (ActionId a = 1; a <= 10; ++a) {
    s.AddActive(a);
    if (a % 2 == 0) s.SetStatus(a, ActionStatus::kCommitted);
    if (a % 5 == 0) s.SetStatus(a, ActionStatus::kAborted);
  }
  for (int i = 0; i < 50; ++i) {
    EXPECT_TRUE(s.RandomSub(rng).IsSubsummaryOf(s));
  }
}

TEST(TopologyTest, AccessesLiveWithTheirObjects) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId a = reg.NewAccess(t, 5, Update::Read());
  Topology topo = Topology::RoundRobin(&reg, 3);
  EXPECT_EQ(topo.HomeOfAction(a), topo.HomeOfObject(5));
  EXPECT_EQ(topo.HomeOfObject(5), 5u % 3u);
}

TEST(TopologyTest, OriginIsParentsHomeExceptTopLevel) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);   // id 1
  ActionId s = reg.NewAction(t);             // id 2
  Topology topo = Topology::RoundRobin(&reg, 2);
  EXPECT_EQ(topo.Origin(t), topo.HomeOfAction(t)) << "top-level";
  EXPECT_EQ(topo.Origin(s), topo.HomeOfAction(t)) << "child born at parent";
}

class DistAlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    t1_ = reg_.NewAction(kRootAction);                    // id 1
    a1_ = reg_.NewAccess(t1_, 0, Update::Add(1));         // id 2, x0
    t2_ = reg_.NewAction(kRootAction);                    // id 3
    a2_ = reg_.NewAccess(t2_, 0, Update::Add(2));         // id 4, x0
    topo_ = std::make_unique<Topology>(
        &reg_, 2, [](ObjectId) -> NodeId { return 0; },
        [this](ActionId a) -> NodeId { return a == t2_ ? 1u : 0u; });
    alg_ = std::make_unique<DistAlgebra>(topo_.get());
  }

  void Step(DistState& s, const DistEvent& e) {
    ASSERT_TRUE(alg_->Defined(s, e)) << ToString(e);
    alg_->Apply(s, e);
  }

  ActionRegistry reg_;
  ActionId t1_, a1_, t2_, a2_;
  std::unique_ptr<Topology> topo_;
  std::unique_ptr<DistAlgebra> alg_;
};

TEST_F(DistAlgebraTest, CreateOnlyAtOrigin) {
  auto s = alg_->Initial();
  EXPECT_FALSE(alg_->Defined(s, NodeCreate{0, t2_})) << "t2 originates at 1";
  EXPECT_TRUE(alg_->Defined(s, NodeCreate{1, t2_}));
  EXPECT_TRUE(alg_->Defined(s, NodeCreate{0, t1_}));
}

TEST_F(DistAlgebraTest, ChildNeedsParentKnowledge) {
  auto s = alg_->Initial();
  // a2's origin is home(parent) = node 1; its parent t2 must be known
  // there and uncommitted.
  EXPECT_FALSE(alg_->Defined(s, NodeCreate{1, a2_}));
  Step(s, NodeCreate{1, t2_});
  EXPECT_TRUE(alg_->Defined(s, NodeCreate{1, a2_}));
}

TEST_F(DistAlgebraTest, PerformNeedsLocalKnowledgeAtHomeNode) {
  auto s = alg_->Initial();
  Step(s, NodeCreate{1, t2_});
  Step(s, NodeCreate{1, a2_});
  // a2 was created at node 1 (its origin), but its home (x0's home) is
  // node 0, which has not heard of it yet: perform undefined.
  EXPECT_FALSE(alg_->Defined(s, NodePerform{0, a2_, 0}));
  // Propagate knowledge: node 1 sends its summary; node 0 receives.
  Step(s, Send{1, 0, s.nodes[1].summary});
  Step(s, Receive{0, s.buffer[0]});
  EXPECT_TRUE(alg_->Defined(s, NodePerform{0, a2_, 0}));
}

TEST_F(DistAlgebraTest, FullDistributedCommitFlow) {
  auto s = alg_->Initial();
  // t1/a1 live at node 0 entirely.
  Step(s, NodeCreate{0, t1_});
  Step(s, NodeCreate{0, a1_});
  Step(s, NodePerform{0, a1_, 0});
  EXPECT_TRUE(s.nodes[0].vmap.IsDefined(0, a1_));
  Step(s, NodeReleaseLock{0, a1_, 0});
  Step(s, NodeCommit{0, t1_});
  Step(s, NodeReleaseLock{0, t1_, 0});
  EXPECT_EQ(s.nodes[0].vmap.Get(0, kRootAction), 1);
  // t2 at node 1; its access runs at node 0 after knowledge flows.
  Step(s, NodeCreate{1, t2_});
  Step(s, NodeCreate{1, a2_});
  Step(s, Send{1, 0, s.nodes[1].summary});
  Step(s, Receive{0, s.buffer[0]});
  Step(s, NodePerform{0, a2_, 1});
  Step(s, NodeReleaseLock{0, a2_, 0});
  // Commit of t2 happens at node 1: it must first learn a2 is done.
  EXPECT_FALSE(alg_->Defined(s, NodeCommit{1, t2_}))
      << "node 1 still believes a2 active";
  Step(s, Send{0, 1, s.nodes[0].summary});
  Step(s, Receive{1, s.buffer[1]});
  Step(s, NodeCommit{1, t2_});
  // Node 0 releases t2's lock only after hearing about the commit.
  EXPECT_FALSE(alg_->Defined(s, NodeReleaseLock{0, t2_, 0}));
  Step(s, Send{1, 0, s.nodes[1].summary});
  Step(s, Receive{0, s.buffer[0]});
  Step(s, NodeReleaseLock{0, t2_, 0});
  EXPECT_EQ(s.nodes[0].vmap.Get(0, kRootAction), 3);
}

TEST_F(DistAlgebraTest, StaleAbortKnowledgeAllowsLoseLock) {
  auto s = alg_->Initial();
  Step(s, NodeCreate{0, t1_});
  Step(s, NodeCreate{0, a1_});
  Step(s, NodePerform{0, a1_, 0});
  Step(s, NodeAbort{0, t1_});
  // Node 0 knows t1 aborted: it may discard both locks.
  EXPECT_TRUE(alg_->Defined(s, NodeLoseLock{0, a1_, 0}));
  Step(s, NodeLoseLock{0, a1_, 0});
  EXPECT_FALSE(s.nodes[0].vmap.IsDefined(0, a1_));
}

TEST_F(DistAlgebraTest, SendRequiresSubsummary) {
  auto s = alg_->Initial();
  Step(s, NodeCreate{0, t1_});
  ActionSummary lie;
  lie.AddActive(t1_);
  lie.SetStatus(t1_, ActionStatus::kCommitted);
  EXPECT_FALSE(alg_->Defined(s, Send{0, 1, lie}))
      << "cannot send knowledge you do not have";
  ActionSummary truth;
  truth.AddActive(t1_);
  EXPECT_TRUE(alg_->Defined(s, Send{0, 1, truth}));
}

TEST_F(DistAlgebraTest, ReceiveRequiresBufferedKnowledge) {
  auto s = alg_->Initial();
  ActionSummary sum;
  sum.AddActive(t1_);
  EXPECT_FALSE(alg_->Defined(s, Receive{1, sum})) << "nothing sent yet";
  Step(s, NodeCreate{0, t1_});
  Step(s, Send{0, 1, sum});
  EXPECT_TRUE(alg_->Defined(s, Receive{1, sum}));
  // Duplicated delivery is fine (M_j is cumulative knowledge).
  Step(s, Receive{1, sum});
  EXPECT_TRUE(alg_->Defined(s, Receive{1, sum}));
}

TEST(DistAlgebraPropertyTest, DoerLocalityHolds) {
  // Local Domain / Local Changes (Lemma 22): an event's definability and
  // effect depend only on its doer's component. We verify definability
  // locality by perturbing a non-doer component.
  Rng rng(77);
  action::ActionRegistry reg = testutil::MakeRandomRegistry(rng);
  Topology topo = Topology::RoundRobin(&reg, 3);
  DistAlgebra alg(&topo);
  DistEventCandidates cand(&alg, 7);
  auto run = algebra::RandomRun(alg, std::ref(cand), rng, 60);
  // Ghost actions registered after the run: valid ids that the recorded
  // events never touch, used to perturb non-doer components.
  ActionId ghost1 = reg.NewAction(kRootAction);
  ActionId ghost2 = reg.NewAction(kRootAction);
  // Replay; at each step, scramble a non-doer node's summary and check
  // Defined is unchanged.
  auto s = alg.Initial();
  for (const auto& e : run.events) {
    NodeId doer = alg.Doer(e);
    DistState scrambled = s;
    for (NodeId other = 0; other < topo.k(); ++other) {
      if (other != doer) scrambled.nodes[other].summary.AddActive(ghost1);
    }
    if (doer != topo.k()) {  // buffer perturbation for node events
      for (NodeId j = 0; j < topo.k(); ++j) {
        if (!std::holds_alternative<Send>(e)) {
          scrambled.buffer[j].AddActive(ghost2);
        }
      }
    }
    EXPECT_EQ(alg.Defined(s, e), alg.Defined(scrambled, e))
        << "locality violated for " << ToString(e);
    alg.Apply(s, e);
  }
}

TEST(DistAlgebraPropertyTest, EventCandidatesDeterministicFromSeed) {
  // Two candidate generators with the same seed must propose identical
  // event lists at every state along a run — the property the chaos
  // tests' bit-reproducibility guarantee rests on.
  Rng rng(13);
  action::ActionRegistry reg = testutil::MakeRandomRegistry(rng);
  Topology topo = Topology::RoundRobin(&reg, 3);
  DistAlgebra alg(&topo);
  DistEventCandidates a(&alg, 31);
  DistEventCandidates b(&alg, 31);
  DistEventCandidates c(&alg, 32);
  auto s = alg.Initial();
  bool diverged_from_c = false;
  for (int step = 0; step < 60; ++step) {
    std::vector<DistEvent> ca = a(s);
    std::vector<DistEvent> cb = b(s);
    ASSERT_EQ(ca, cb) << "step " << step;
    if (ca != c(s)) diverged_from_c = true;
    // Advance along the first *defined* candidate so both generators see
    // the same next state.
    bool advanced = false;
    for (const DistEvent& e : ca) {
      if (alg.Defined(s, e)) {
        alg.Apply(s, e);
        advanced = true;
        break;
      }
    }
    if (!advanced) break;
  }
  EXPECT_TRUE(diverged_from_c)
      << "a different seed should propose different random sub-summaries";
}

}  // namespace
}  // namespace rnt::dist
