#include "action/render.h"

#include <gtest/gtest.h>

namespace rnt::action {
namespace {

class RenderTest : public ::testing::Test {
 protected:
  void SetUp() override {
    t1_ = reg_.NewAction(kRootAction);
    s1_ = reg_.NewAction(t1_);
    a1_ = reg_.NewAccess(s1_, 3, Update::Add(7));
    t2_ = reg_.NewAction(kRootAction);
    a2_ = reg_.NewAccess(t2_, 3, Update::Read());
    tree_ = std::make_unique<ActionTree>(&reg_);
    tree_->ApplyCreate(t1_);
    tree_->ApplyCreate(s1_);
    tree_->ApplyCreate(a1_);
    tree_->ApplyPerform(a1_, 0);
    tree_->ApplyCommit(s1_);
    tree_->ApplyCommit(t1_);
    tree_->ApplyCreate(t2_);
    tree_->ApplyCreate(a2_);
    tree_->ApplyPerform(a2_, 7);
  }

  ActionRegistry reg_;
  ActionId t1_, s1_, a1_, t2_, a2_;
  std::unique_ptr<ActionTree> tree_;
};

TEST_F(RenderTest, DotContainsAllVertices) {
  std::string dot = ToDot(*tree_);
  EXPECT_NE(dot.find("digraph action_tree"), std::string::npos);
  for (ActionId a : tree_->Vertices()) {
    EXPECT_NE(dot.find("n" + std::to_string(a) + " ["), std::string::npos)
        << "missing vertex " << a;
  }
}

TEST_F(RenderTest, DotShowsTreeEdgesAndStatuses) {
  std::string dot = ToDot(*tree_);
  EXPECT_NE(dot.find("n0 -> n" + std::to_string(t1_)), std::string::npos);
  EXPECT_NE(dot.find("n" + std::to_string(s1_) + " -> n" +
                     std::to_string(a1_)),
            std::string::npos);
  EXPECT_NE(dot.find("palegreen"), std::string::npos) << "committed color";
  EXPECT_NE(dot.find("fillcolor=white"), std::string::npos) << "active color";
}

TEST_F(RenderTest, DotShowsDataOrderEdges) {
  std::string dot = ToDot(*tree_);
  EXPECT_NE(dot.find("n" + std::to_string(a1_) + " -> n" +
                     std::to_string(a2_) + " [style=dashed"),
            std::string::npos);
  DotOptions opt;
  opt.show_data_order = false;
  EXPECT_EQ(ToDot(*tree_, opt).find("style=dashed"), std::string::npos);
}

TEST_F(RenderTest, DotHighlightsOrphans) {
  tree_->ApplyAbort(t2_);
  // a2 is committed (performed) but dead via t2: in the universal tree it
  // is not an orphan-highlight candidate because aborted subtree members
  // that are themselves committed ARE highlighted (live == false and not
  // aborted themselves).
  std::string dot = ToDot(*tree_);
  EXPECT_NE(dot.find("penwidth=2"), std::string::npos);
  EXPECT_NE(dot.find("lightcoral"), std::string::npos) << "aborted color";
}

TEST_F(RenderTest, IndentedRenderingNestsProperly) {
  std::string text = ToIndentedString(*tree_);
  EXPECT_NE(text.find("U [active]"), std::string::npos);
  // s1 at depth 2 (four spaces).
  EXPECT_NE(text.find("\n    " + std::to_string(s1_) + " [committed]"),
            std::string::npos);
  // a1 at depth 3 with label.
  EXPECT_NE(text.find("x3 add(7) saw=0"), std::string::npos);
}

TEST_F(RenderTest, IndentedRenderingMarksOrphans) {
  tree_->ApplyAbort(t2_);
  std::string text = ToIndentedString(*tree_);
  EXPECT_NE(text.find("(orphan)"), std::string::npos);
}

}  // namespace
}  // namespace rnt::action
