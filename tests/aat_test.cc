#include "aat/aat.h"

#include <gtest/gtest.h>

#include "aat/aat_algebra.h"
#include "algebra/algebra.h"
#include "testutil.h"

namespace rnt::aat {
namespace {

using action::ActionRegistry;
using action::ActionTree;
using action::Update;

/// Extracts the per-object data order of a tree (perform order).
action::DataOrder OrderOf(const Aat& t) {
  action::DataOrder order;
  for (ObjectId x : t.TouchedObjects()) {
    order[x] = t.Datasteps(x);
  }
  return order;
}

class AatFixture : public ::testing::Test {
 protected:
  void SetUp() override {
    t1_ = reg_.NewAction(kRootAction);
    t2_ = reg_.NewAction(kRootAction);
    // t1 writes x then y; t2 writes y then x — the classic cycle shape.
    a1x_ = reg_.NewAccess(t1_, 0, Update::Add(1));
    a1y_ = reg_.NewAccess(t1_, 1, Update::Add(1));
    a2y_ = reg_.NewAccess(t2_, 1, Update::Add(2));
    a2x_ = reg_.NewAccess(t2_, 0, Update::Add(2));
  }

  ActionRegistry reg_;
  ActionId t1_, t2_, a1x_, a1y_, a2y_, a2x_;
};

TEST_F(AatFixture, VDataCollectsVisiblePredecessors) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(a1x_);
  t.ApplyPerform(a1x_, 0);
  t.ApplyCommit(t1_);
  t.ApplyCreate(t2_);
  t.ApplyCreate(a2x_);
  t.ApplyPerform(a2x_, 1);
  std::vector<ActionId> v = VData(t, a2x_);
  ASSERT_EQ(v.size(), 1u);
  EXPECT_EQ(v[0], a1x_);
  // And the first access has no predecessors.
  EXPECT_TRUE(VData(t, a1x_).empty());
}

TEST_F(AatFixture, VDataExcludesInvisible) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(a1x_);
  t.ApplyPerform(a1x_, 0);  // t1 still active
  t.ApplyCreate(t2_);
  t.ApplyCreate(a2x_);
  t.ApplyPerform(a2x_, 0);
  EXPECT_TRUE(VData(t, a2x_).empty())
      << "a1x is masked by active t1, not a visible predecessor";
}

TEST_F(AatFixture, VersionCompatibilityHoldsForCorrectLabels) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(a1x_);
  t.ApplyPerform(a1x_, 0);
  t.ApplyCommit(t1_);
  t.ApplyCreate(t2_);
  t.ApplyCreate(a2x_);
  t.ApplyPerform(a2x_, 1);  // sees t1's add(1) applied to 0
  EXPECT_TRUE(IsVersionCompatible(t));
}

TEST_F(AatFixture, VersionCompatibilityDetectsWrongLabel) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(a1x_);
  t.ApplyPerform(a1x_, 0);
  t.ApplyCommit(t1_);
  t.ApplyCreate(t2_);
  t.ApplyCreate(a2x_);
  t.ApplyPerform(a2x_, 42);  // should have seen 1
  EXPECT_FALSE(IsVersionCompatible(t));
}

TEST_F(AatFixture, SiblingDataEdgesLiftToTopLevel) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(t2_);
  t.ApplyCreate(a1x_);
  t.ApplyPerform(a1x_, 0);
  t.ApplyCreate(a2x_);
  t.ApplyPerform(a2x_, 1);
  auto edges = SiblingDataEdges(t);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, t1_);
  EXPECT_EQ(edges[0].to, t2_);
}

TEST_F(AatFixture, NoCycleOnOneSidedOrder) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(t2_);
  t.ApplyCreate(a1x_);
  t.ApplyPerform(a1x_, 0);
  t.ApplyCreate(a1y_);
  t.ApplyPerform(a1y_, 0);
  t.ApplyCreate(a2x_);
  t.ApplyPerform(a2x_, 0);
  t.ApplyCreate(a2y_);
  t.ApplyPerform(a2y_, 0);
  // x: a1x < a2x; y: a1y < a2y — both edges t1 -> t2; no cycle.
  EXPECT_FALSE(HasSiblingDataCycle(t));
}

TEST_F(AatFixture, DetectsTwoObjectCycle) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(t2_);
  // x: t1 then t2; y: t2 then t1 => cycle t1 -> t2 -> t1.
  t.ApplyCreate(a1x_);
  t.ApplyPerform(a1x_, 0);
  t.ApplyCreate(a2x_);
  t.ApplyPerform(a2x_, 0);
  t.ApplyCreate(a2y_);
  t.ApplyPerform(a2y_, 0);
  t.ApplyCreate(a1y_);
  t.ApplyPerform(a1y_, 0);
  EXPECT_TRUE(HasSiblingDataCycle(t));
  EXPECT_FALSE(IsDataSerializable(t));
}

TEST_F(AatFixture, SameTransactionPairsEdgeAtAccessLevelOnly) {
  // Two accesses of the same transaction create a sibling edge *between
  // the accesses themselves* (they are siblings under t1), not an edge at
  // the top level — and a single edge can never be a nontrivial cycle.
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  ActionId b = reg_.NewAccess(t1_, 0, Update::Add(3));
  t.ApplyCreate(a1x_);
  t.ApplyPerform(a1x_, 0);
  t.ApplyCreate(b);
  t.ApplyPerform(b, 1);
  auto edges = SiblingDataEdges(t);
  ASSERT_EQ(edges.size(), 1u);
  EXPECT_EQ(edges[0].from, a1x_);
  EXPECT_EQ(edges[0].to, b);
  EXPECT_FALSE(HasSiblingDataCycle(t));
  EXPECT_TRUE(IsDataSerializable(t));
}

TEST_F(AatFixture, MossValueFoldsVisibleDatasteps) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(a1x_);
  t.ApplyPerform(a1x_, 0);
  t.ApplyCommit(t1_);
  t.ApplyCreate(t2_);
  t.ApplyCreate(a2x_);
  EXPECT_EQ(MossValue(t, a2x_), 1) << "add(1) applied to init 0";
}

// ---------------------------------------------------------------------
// Theorem 9: the efficient checker agrees with the exhaustive oracle on
// data-serializability, across random trees (both valid Moss executions
// and arbitrarily-labeled trees).

TEST(Theorem9PropertyTest, CheckerMatchesOracleOnArbitraryTrees) {
  int agree_true = 0, agree_false = 0;
  for (std::uint64_t seed = 0; seed < 60; ++seed) {
    Rng rng(seed);
    testutil::RandomRegistryParams p;
    p.top_level = 2;
    p.max_children = 2;
    p.max_depth = 3;
    p.objects = 2;
    ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
    ActionTree t = testutil::RandomTreeState(reg, rng, 30);
    action::DataOrder order = OrderOf(t);
    action::OracleOptions opt;
    opt.data_order = &order;
    bool oracle = action::IsSerializable(t, opt);
    bool checker = IsDataSerializable(t);
    EXPECT_EQ(oracle, checker) << "Theorem 9 mismatch at seed " << seed;
    (oracle ? agree_true : agree_false)++;
  }
  // The sweep must exercise both outcomes to be meaningful.
  EXPECT_GT(agree_true, 0);
  EXPECT_GT(agree_false, 0);
}

TEST(RwExtensionTest, RwCheckerRelaxesReadReadOrderOnly) {
  // Two sibling reads interleaved against each other across two objects
  // would form a cycle under the strict relation but not under Rw.
  ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId t2 = reg.NewAction(kRootAction);
  ActionId r1x = reg.NewAccess(t1, 0, Update::Read());
  ActionId r1y = reg.NewAccess(t1, 1, Update::Read());
  ActionId r2x = reg.NewAccess(t2, 0, Update::Read());
  ActionId r2y = reg.NewAccess(t2, 1, Update::Read());
  ActionTree t(&reg);
  for (ActionId v : {t1, t2, r1x, r2x, r2y, r1y}) t.ApplyCreate(v);
  // Perform order: r1x, r2x (x: t1 < t2), then r2y, r1y (y: t2 < t1).
  t.ApplyPerform(r1x, 0);
  t.ApplyPerform(r2x, 0);
  t.ApplyPerform(r2y, 0);
  t.ApplyPerform(r1y, 0);
  t.ApplyCommit(t1);
  t.ApplyCommit(t2);
  EXPECT_TRUE(HasSiblingDataCycle(t)) << "strict relation sees a cycle";
  EXPECT_FALSE(IsDataSerializable(t));
  EXPECT_FALSE(HasSiblingDataCycleRw(t)) << "read-read pairs are unordered";
  EXPECT_TRUE(IsDataSerializableRw(t));
  // The definitional oracle agrees that the tree is serializable.
  EXPECT_TRUE(action::IsSerializable(t));
}

TEST(RwExtensionTest, RwCheckerStillRejectsWriteCycles) {
  ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId t2 = reg.NewAction(kRootAction);
  ActionId w1x = reg.NewAccess(t1, 0, Update::Add(1));
  ActionId w1y = reg.NewAccess(t1, 1, Update::Add(1));
  ActionId w2x = reg.NewAccess(t2, 0, Update::Add(2));
  ActionId w2y = reg.NewAccess(t2, 1, Update::Add(2));
  ActionTree t(&reg);
  for (ActionId v : {t1, t2, w1x, w2x, w2y, w1y}) t.ApplyCreate(v);
  t.ApplyPerform(w1x, 0);
  t.ApplyPerform(w2x, 0);
  t.ApplyPerform(w2y, 0);
  t.ApplyPerform(w1y, 0);
  EXPECT_TRUE(HasSiblingDataCycleRw(t));
  EXPECT_FALSE(IsDataSerializableRw(t));
}

TEST(RwExtensionTest, RwCheckerSoundAgainstOracle) {
  // Whenever the Rw checker accepts a random tree, the definitional
  // oracle must accept it too (soundness; the converse need not hold
  // since the Rw relation still orders conflicting pairs by perform
  // order).
  int accepted = 0;
  for (std::uint64_t seed = 500; seed < 560; ++seed) {
    Rng rng(seed);
    testutil::RandomRegistryParams p;
    p.top_level = 2;
    p.max_children = 2;
    p.max_depth = 3;
    p.objects = 2;
    p.read_prob = 0.6;
    ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
    ActionTree t = testutil::RandomTreeState(reg, rng, 30);
    if (IsDataSerializableRw(t)) {
      ++accepted;
      EXPECT_TRUE(action::IsSerializable(t))
          << "Rw checker unsound at seed " << seed;
    }
  }
  EXPECT_GT(accepted, 0) << "sweep never exercised the accepting path";
}

TEST(Theorem9PropertyTest, CheckerMatchesOracleOnValidRuns) {
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    Rng rng(seed);
    testutil::RandomRegistryParams p;
    p.top_level = 2;
    p.max_children = 2;
    p.max_depth = 3;
    p.objects = 2;
    ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
    AatAlgebra alg(&reg);
    auto run = algebra::RandomRun(
        alg, [](const Aat& s) { return EventCandidates(s); }, rng, 40);
    const Aat& t = run.state;
    action::DataOrder order = OrderOf(t);
    action::OracleOptions opt;
    opt.data_order = &order;
    EXPECT_EQ(action::IsSerializable(t, opt), IsDataSerializable(t))
        << "seed " << seed;
  }
}

}  // namespace
}  // namespace rnt::aat
