#include <gtest/gtest.h>

#include <thread>

#include "baseline/flat_engine.h"
#include "baseline/mvto_engine.h"

namespace rnt::baseline {
namespace {

using action::Update;

TEST(FlatEngineTest, BasicCommit) {
  FlatEngine eng;
  auto t = eng.Begin();
  ASSERT_TRUE(t->Put(0, 9).ok());
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_EQ(eng.ReadCommitted(0), 9);
  EXPECT_EQ(eng.name(), "flat-2pl");
}

TEST(FlatEngineTest, ChildIsFacadeOverRoot) {
  FlatEngine eng;
  auto t = eng.Begin();
  auto c = t->BeginChild();
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE((*c)->Put(0, 5).ok());
  ASSERT_TRUE((*c)->Commit().ok());
  // The "child commit" did not publish anything: work belongs to the root.
  EXPECT_EQ(eng.ReadCommitted(0), 0);
  auto v = t->Get(0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 5);
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_EQ(eng.ReadCommitted(0), 5);
}

TEST(FlatEngineTest, ChildAbortKillsWholeTransaction) {
  // The defining difference from the nested engine (experiment E2).
  FlatEngine eng;
  auto t = eng.Begin();
  ASSERT_TRUE(t->Put(0, 1).ok());
  auto c = t->BeginChild();
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE((*c)->Put(1, 2).ok());
  ASSERT_TRUE((*c)->Abort().ok());
  // Root is dead: even the pre-child write is gone.
  EXPECT_TRUE(t->Get(0).status().IsAborted());
  EXPECT_TRUE(t->Commit().IsAborted());
  EXPECT_EQ(eng.ReadCommitted(0), 0);
  EXPECT_EQ(eng.ReadCommitted(1), 0);
}

TEST(FlatEngineTest, GrandchildrenStillDelegate) {
  FlatEngine eng;
  auto t = eng.Begin();
  auto c = t->BeginChild();
  ASSERT_TRUE(c.ok());
  auto g = (*c)->BeginChild();
  ASSERT_TRUE(g.ok());
  ASSERT_TRUE((*g)->Put(0, 3).ok());
  ASSERT_TRUE((*g)->Commit().ok());
  ASSERT_TRUE((*c)->Commit().ok());
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_EQ(eng.ReadCommitted(0), 3);
}

TEST(MvtoEngineTest, BasicCommitAndDurability) {
  MvtoEngine eng;
  auto t = eng.Begin();
  ASSERT_TRUE(t->Put(0, 11).ok());
  auto v = t->Get(0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 11) << "reads own tentative write";
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_EQ(eng.ReadCommitted(0), 11);
}

TEST(MvtoEngineTest, SnapshotOrderingByTimestamp) {
  MvtoEngine eng;
  {
    auto t = eng.Begin();
    ASSERT_TRUE(t->Put(0, 1).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  auto old_reader = eng.Begin();   // ts k
  auto writer = eng.Begin();       // ts k+1
  ASSERT_TRUE(writer->Put(0, 2).ok());
  ASSERT_TRUE(writer->Commit().ok());
  // The older reader still sees the version at its timestamp.
  auto v = old_reader->Get(0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1);
  ASSERT_TRUE(old_reader->Commit().ok());
}

TEST(MvtoEngineTest, StaleWriteAborts) {
  MvtoEngine eng;
  auto older = eng.Begin();
  auto younger = eng.Begin();
  auto r = younger->Get(0);
  ASSERT_TRUE(r.ok());
  // Now the older transaction tries to write the version the younger
  // already read: classic MVTO stale-write abort.
  Status s = older->Put(0, 5);
  EXPECT_TRUE(s.IsAborted()) << s;
  EXPECT_GE(eng.stats().conflict_aborts, 1u);
  ASSERT_TRUE(younger->Commit().ok());
}

TEST(MvtoEngineTest, DirtyReadAborts) {
  MvtoEngine eng;
  auto writer = eng.Begin();
  ASSERT_TRUE(writer->Put(0, 5).ok());
  auto reader = eng.Begin();  // younger: governing version is tentative
  Status s = reader->Get(0).status();
  EXPECT_TRUE(s.IsAborted()) << s;
  ASSERT_TRUE(writer->Commit().ok());
}

TEST(MvtoEngineTest, AbortRemovesTentativeVersions) {
  MvtoEngine eng;
  auto t = eng.Begin();
  ASSERT_TRUE(t->Put(0, 7).ok());
  ASSERT_TRUE(t->Abort().ok());
  EXPECT_EQ(eng.ReadCommitted(0), 0);
  auto t2 = eng.Begin();
  auto v = t2->Get(0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 0);
  ASSERT_TRUE(t2->Commit().ok());
}

TEST(MvtoEngineTest, ChildFacadeSharesTimestamp) {
  MvtoEngine eng;
  auto t = eng.Begin();
  auto c = t->BeginChild();
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE((*c)->Put(0, 4).ok());
  ASSERT_TRUE((*c)->Commit().ok());
  auto v = t->Get(0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 4);
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_EQ(eng.ReadCommitted(0), 4);
}

TEST(MvtoEngineTest, RaiiAbortsRoot) {
  MvtoEngine eng;
  { auto t = eng.Begin(); ASSERT_TRUE(t->Put(0, 9).ok()); }
  EXPECT_EQ(eng.ReadCommitted(0), 0);
  EXPECT_GE(eng.stats().aborted, 1u);
}

TEST(MvtoEngineTest, CounterUnderConcurrencyWithRetries) {
  MvtoEngine eng;
  constexpr int kWorkers = 4, kIncr = 25;
  std::atomic<long> committed{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kIncr; ++i) {
        for (int attempt = 0; attempt < 50; ++attempt) {
          auto t = eng.Begin();
          auto r = t->Apply(0, action::Update::Add(1));
          if (r.ok() && t->Commit().ok()) {
            committed.fetch_add(1);
            break;
          }
          (void)t->Abort();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(eng.ReadCommitted(0), committed.load());
  EXPECT_GT(committed.load(), 0);
}

}  // namespace
}  // namespace rnt::baseline
