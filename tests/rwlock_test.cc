#include "rwlock/rw_algebra.h"

#include <gtest/gtest.h>

#include <thread>

#include "action/serializability.h"
#include "spec/spec_algebra.h"
#include "testutil.h"
#include "txn/transaction_manager.h"

namespace rnt::rwlock {
namespace {

using action::ActionRegistry;
using action::Update;
using algebra::Abort;
using algebra::Commit;
using algebra::Create;
using algebra::LockEvent;
using algebra::LoseLock;
using algebra::Perform;
using algebra::ReleaseLock;

class RwAlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    t1_ = reg_.NewAction(kRootAction);
    t2_ = reg_.NewAction(kRootAction);
    r1_ = reg_.NewAccess(t1_, 0, Update::Read());
    r2_ = reg_.NewAccess(t2_, 0, Update::Read());
    w1_ = reg_.NewAccess(t1_, 0, Update::Add(1));
    w2_ = reg_.NewAccess(t2_, 0, Update::Add(2));
  }

  void Step(RwState& s, const RwAlgebra& alg, LockEvent e) {
    ASSERT_TRUE(alg.Defined(s, e)) << algebra::ToString(e);
    alg.Apply(s, e);
  }

  ActionRegistry reg_;
  ActionId t1_, t2_, r1_, r2_, w1_, w2_;
};

TEST_F(RwAlgebraTest, SiblingReadersShare) {
  RwAlgebra alg(&reg_);
  auto s = alg.Initial();
  Step(s, alg, Create{t1_});
  Step(s, alg, Create{t2_});
  Step(s, alg, Create{r1_});
  Step(s, alg, Create{r2_});
  Step(s, alg, Perform{r1_, 0});
  // The single-mode algebra would block here; the complete algorithm
  // admits the concurrent reader.
  EXPECT_TRUE(alg.Defined(s, LockEvent{Perform{r2_, 0}}));
  Step(s, alg, Perform{r2_, 0});
  EXPECT_TRUE(s.vmap.HoldsRead(0, r1_));
  EXPECT_TRUE(s.vmap.HoldsRead(0, r2_));
  EXPECT_TRUE(CheckRwInvariants(s).ok());
}

TEST_F(RwAlgebraTest, ReaderBlocksForeignWriter) {
  RwAlgebra alg(&reg_);
  auto s = alg.Initial();
  Step(s, alg, Create{t1_});
  Step(s, alg, Create{t2_});
  Step(s, alg, Create{r1_});
  Step(s, alg, Create{w2_});
  Step(s, alg, Perform{r1_, 0});
  EXPECT_FALSE(alg.Defined(s, LockEvent{Perform{w2_, 0}}))
      << "r1's read hold is not an ancestor of w2";
  // Walk the read hold up to U: release r1 (committed by perform), then
  // commit t1 and release its inherited read hold.
  Step(s, alg, ReleaseLock{r1_, 0});
  EXPECT_TRUE(s.vmap.HoldsRead(0, t1_));
  EXPECT_FALSE(alg.Defined(s, LockEvent{Perform{w2_, 0}}));
  Step(s, alg, Commit{t1_});
  Step(s, alg, ReleaseLock{t1_, 0});
  EXPECT_TRUE(alg.Defined(s, LockEvent{Perform{w2_, 0}}));
}

TEST_F(RwAlgebraTest, WriterBlocksForeignReaderButNotDescendants) {
  RwAlgebra alg(&reg_);
  auto s = alg.Initial();
  Step(s, alg, Create{t1_});
  Step(s, alg, Create{t2_});
  Step(s, alg, Create{w1_});
  Step(s, alg, Perform{w1_, 0});
  Step(s, alg, Create{r2_});
  EXPECT_FALSE(alg.Defined(s, LockEvent{Perform{r2_, 0}}))
      << "w1 holds a write; r2 is no descendant";
  EXPECT_FALSE(alg.Defined(s, LockEvent{Perform{r2_, 1}}));
  // w1's own sibling under t1 can read after w1's lock passes to t1.
  Step(s, alg, ReleaseLock{w1_, 0});
  Step(s, alg, Create{r1_});
  EXPECT_TRUE(alg.Defined(s, LockEvent{Perform{r1_, 1}}))
      << "t1 (write holder) is a proper ancestor of r1; value is 1";
  EXPECT_FALSE(alg.Defined(s, LockEvent{Perform{r1_, 0}})) << "(d13)";
}

TEST_F(RwAlgebraTest, ReadThenWriteUpgradeWithinTransaction) {
  RwAlgebra alg(&reg_);
  auto s = alg.Initial();
  Step(s, alg, Create{t1_});
  Step(s, alg, Create{r1_});
  Step(s, alg, Perform{r1_, 0});
  Step(s, alg, Create{w1_});
  // w1 blocked: sibling r1 still holds the read.
  EXPECT_FALSE(alg.Defined(s, LockEvent{Perform{w1_, 0}}));
  Step(s, alg, ReleaseLock{r1_, 0});  // read hold moves to t1
  // Now the only read holder t1 is a proper ancestor of w1: upgrade.
  Step(s, alg, Perform{w1_, 0});
  EXPECT_EQ(s.vmap.PrincipalValue(0, reg_), 1);
  EXPECT_TRUE(CheckRwInvariants(s).ok());
}

TEST_F(RwAlgebraTest, LoseLockDiscardsBothModes) {
  RwAlgebra alg(&reg_);
  auto s = alg.Initial();
  Step(s, alg, Create{t1_});
  Step(s, alg, Create{r1_});
  Step(s, alg, Perform{r1_, 0});
  Step(s, alg, Create{w1_});
  Step(s, alg, ReleaseLock{r1_, 0});
  Step(s, alg, Perform{w1_, 0});
  Step(s, alg, ReleaseLock{w1_, 0});
  Step(s, alg, Abort{t1_});
  ASSERT_TRUE(alg.Defined(s, LockEvent{LoseLock{t1_, 0}}));
  Step(s, alg, LoseLock{t1_, 0});
  EXPECT_FALSE(s.vmap.HoldsRead(0, t1_));
  EXPECT_FALSE(s.vmap.IsWriteDefined(0, t1_));
  EXPECT_EQ(s.vmap.PrincipalValue(0, reg_), action::kInitValue);
}

TEST(RwAlgebraPropertyTest, RandomRunsKeepInvariantsAndRwSerializability) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed);
    testutil::RandomRegistryParams p;
    p.read_prob = 0.6;
    ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
    RwAlgebra alg(&reg);
    auto s = alg.Initial();
    for (int step = 0; step < 90; ++step) {
      std::vector<LockEvent> enabled;
      for (auto& e : EventCandidates(s)) {
        if (alg.Defined(s, e)) enabled.push_back(e);
      }
      if (enabled.empty()) break;
      alg.Apply(s, enabled[rng.Below(enabled.size())]);
      Status inv = CheckRwInvariants(s);
      ASSERT_TRUE(inv.ok()) << inv << " seed " << seed << " step " << step;
    }
    EXPECT_TRUE(aat::IsPermDataSerializableRw(s.tree)) << "seed " << seed;
    EXPECT_TRUE(action::IsPermSerializable(s.tree)) << "seed " << seed;
  }
}

TEST(RwAlgebraPropertyTest, RandomRunsRefineToOracleSpec) {
  // Mapped down to tree events, an Rw run need not satisfy the *strict*
  // level-2 preconditions (sibling readers violate d12) — but it must be
  // a valid computation of the level-1 spec, whose only requirement is
  // preserved serializability. This is the Rw analog of Lemma 15+17.
  for (std::uint64_t seed = 100; seed < 110; ++seed) {
    Rng rng(seed);
    testutil::RandomRegistryParams p;
    p.top_level = 2;
    p.max_children = 2;
    p.max_depth = 3;
    p.objects = 2;
    p.read_prob = 0.6;
    ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
    RwAlgebra lower(&reg);
    auto run = algebra::RandomRun(
        lower, [](const RwState& s) { return EventCandidates(s); }, rng, 40);
    auto tree_events = algebra::MapSequence<algebra::TreeEvent>(
        std::span<const LockEvent>(run.events), algebra::LockToTreeEvent);
    spec::SpecAlgebra spec_alg(&reg);
    auto spec_state = algebra::Run(
        spec_alg, std::span<const algebra::TreeEvent>(tree_events));
    ASSERT_TRUE(spec_state.has_value()) << "seed " << seed;
    EXPECT_TRUE(*spec_state == run.state.tree);
  }
}

// ---------------------------------------------------------------------
// Conformance: the read/write *engine*'s traces are valid computations of
// the read/write algebra (the two implementations of Moss's complete
// algorithm agree).

TEST(RwConformanceTest, RwEngineTracesAreValidRwComputations) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    txn::TransactionManager::Options opt;
    opt.record_trace = true;  // read/write mode is the default
    txn::TransactionManager mgr(opt);
    std::vector<std::thread> threads;
    for (int w = 0; w < 4; ++w) {
      threads.emplace_back([&, w] {
        Rng rng(seed * 991 + w);
        for (int i = 0; i < 8; ++i) {
          auto t = mgr.Begin();
          auto c = t->BeginChild();
          if (!c.ok()) continue;
          bool ok = true;
          for (int a = 0; a < 3 && ok; ++a) {
            ObjectId x = static_cast<ObjectId>(rng.Below(3));
            ok = (*c)
                     ->Apply(x, rng.Chance(0.6) ? Update::Read()
                                                : Update::Add(1))
                     .ok();
          }
          if (ok && rng.Chance(0.85)) ok = (*c)->Commit().ok();
          if (ok && rng.Chance(0.9)) (void)t->Commit();
        }
      });
    }
    for (auto& th : threads) th.join();

    auto lowered = txn::LowerTraceToLockEvents(mgr.TakeTrace());
    ASSERT_TRUE(lowered.ok()) << lowered.status();
    RwAlgebra alg(lowered->registry.get());
    auto s = alg.Initial();
    for (std::size_t i = 0; i < lowered->events.size(); ++i) {
      ASSERT_TRUE(alg.Defined(s, lowered->events[i]))
          << "rw engine step invalid at event " << i << " = "
          << algebra::ToString(lowered->events[i]) << " (seed " << seed
          << ")";
      alg.Apply(s, lowered->events[i]);
    }
    EXPECT_TRUE(aat::IsPermDataSerializableRw(s.tree));
    EXPECT_TRUE(CheckRwInvariants(s).ok());
  }
}

}  // namespace
}  // namespace rnt::rwlock
