#include "sim/parallel_runner.h"

#include <gtest/gtest.h>

#include <set>
#include <span>
#include <thread>
#include <vector>

#include "aat/aat.h"
#include "algebra/algebra.h"
#include "sim/message_buffer.h"
#include "testutil.h"

namespace rnt::sim {
namespace {

using action::ActionRegistry;
using action::Update;

TEST(ConcurrentMailboxTest, FifoPerDestination) {
  ConcurrentMailbox mb(2);
  for (int i = 0; i < 5; ++i) {
    dist::ActionSummary s;
    s.AddActive(static_cast<ActionId>(i + 1));
    mb.Push(1, NodeMessage{0, std::move(s)});
  }
  EXPECT_TRUE(mb.Empty(0));
  EXPECT_FALSE(mb.Empty(1));
  std::vector<NodeMessage> got = mb.Drain(1);
  ASSERT_EQ(got.size(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(got[i].summary.Contains(static_cast<ActionId>(i + 1)))
        << "oldest first";
  }
  EXPECT_TRUE(mb.Empty(1));
}

TEST(ConcurrentMailboxTest, ConcurrentProducersLoseNothing) {
  constexpr int kProducers = 4;
  constexpr int kPerProducer = 500;
  ConcurrentMailbox mb(1);
  std::vector<std::thread> producers;
  for (int p = 0; p < kProducers; ++p) {
    producers.emplace_back([&mb, p] {
      for (int i = 0; i < kPerProducer; ++i) {
        dist::ActionSummary s;
        s.AddActive(static_cast<ActionId>(p * kPerProducer + i + 1));
        mb.Push(0, NodeMessage{static_cast<NodeId>(p), std::move(s)});
      }
    });
  }
  std::vector<NodeMessage> got;
  // Drain concurrently with the producers; the tail drains after join.
  for (int spin = 0; spin < 100; ++spin) {
    for (NodeMessage& m : mb.Drain(0)) got.push_back(std::move(m));
  }
  for (std::thread& t : producers) t.join();
  for (NodeMessage& m : mb.Drain(0)) got.push_back(std::move(m));
  ASSERT_EQ(got.size(), static_cast<std::size_t>(kProducers * kPerProducer));
  std::set<ActionId> ids;
  for (const NodeMessage& m : got) {
    ASSERT_EQ(m.summary.size(), 1u);
    ids.insert(m.summary.entries().begin()->first);
  }
  EXPECT_EQ(ids.size(), got.size()) << "no duplicate, no loss";
}

TEST(ParallelRunnerTest, SingleNodeMatchesSequential) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  reg.NewAccess(t, 0, Update::Add(5));
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 1);
  dist::DistAlgebra alg(&topo);
  auto run = RunParallel(alg);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->complete);
  EXPECT_EQ(run->stats.performs, 1u);
  EXPECT_EQ(run->stats.commits, 1u);
  EXPECT_EQ(run->stats.messages, 0u);
  EXPECT_EQ(run->final_state.nodes[0].vmap.Get(0, kRootAction), 5);
}

/// The headline guarantee: the multi-threaded runner computes the same
/// final value maps as the sequential DFS driver on every program, and
/// its merged event log is a valid computation of ℬ whose abstract image
/// passes the Theorem 9 serializability check.
void CheckEquivalence(std::uint64_t seed, Propagation prop,
                      const std::set<ActionId>* abort_set_hint) {
  Rng rng(seed);
  testutil::RandomRegistryParams p;
  p.top_level = 3;
  p.max_children = 3;
  p.max_depth = 3;
  p.objects = 4;
  ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
  std::set<ActionId> abort_set;
  if (abort_set_hint == nullptr) {
    // Abort the first inner action under a top-level txn, when one exists.
    for (ActionId a = 1; a < reg.size(); ++a) {
      if (!reg.IsAccess(a) && reg.Parent(a) != kRootAction) {
        abort_set.insert(a);
        break;
      }
    }
  } else {
    abort_set = *abort_set_hint;
  }
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
  dist::DistAlgebra alg(&topo);

  DriverOptions seq_opt;
  seq_opt.abort_set = abort_set;
  auto seq = RunProgram(alg, seq_opt);
  ASSERT_TRUE(seq.ok()) << seq.status() << " seed " << seed;

  ParallelOptions par_opt;
  par_opt.propagation = prop;
  par_opt.abort_set = abort_set;
  auto par = RunParallel(alg, par_opt);
  ASSERT_TRUE(par.ok()) << par.status() << " seed " << seed;
  EXPECT_TRUE(par->complete) << "seed " << seed;

  // Same semantic outcome: identical counts of the semantic events and
  // identical final value for every object at its home. (Lock-walk event
  // counts may differ: the parallel drain releases eagerly.)
  EXPECT_EQ(par->stats.performs, seq->stats.performs) << "seed " << seed;
  EXPECT_EQ(par->stats.commits, seq->stats.commits) << "seed " << seed;
  EXPECT_EQ(par->stats.aborts, seq->stats.aborts) << "seed " << seed;
  for (ObjectId x = 0; x < static_cast<ObjectId>(p.objects); ++x) {
    NodeId h = topo.HomeOfObject(x);
    EXPECT_EQ(par->final_state.nodes[h].vmap.Get(x, kRootAction),
              seq->final_state.nodes[h].vmap.Get(x, kRootAction))
        << "object " << x << " seed " << seed;
  }

  // The merged log is a valid ℬ computation...
  EXPECT_TRUE(algebra::IsValidSequence(
      alg, std::span<const dist::DistEvent>(par->events)))
      << "seed " << seed;
  // ...whose abstract image exists and is perm-data-serializable.
  auto abstract =
      ReplayAbstract(alg, std::span<const dist::DistEvent>(par->events));
  ASSERT_TRUE(abstract.ok()) << abstract.status() << " seed " << seed;
  EXPECT_TRUE(aat::IsPermDataSerializable(abstract->tree)) << "seed " << seed;
}

TEST(ParallelRunnerTest, DeltaMatchesSequentialOnRandomPrograms) {
  for (std::uint64_t seed = 0; seed < 8; ++seed) {
    CheckEquivalence(seed, Propagation::kDelta, nullptr);
  }
}

TEST(ParallelRunnerTest, EagerMatchesSequentialOnRandomPrograms) {
  for (std::uint64_t seed = 100; seed < 105; ++seed) {
    CheckEquivalence(seed, Propagation::kEager, nullptr);
  }
}

TEST(ParallelRunnerTest, NoAbortsEquivalence) {
  std::set<ActionId> empty;
  for (std::uint64_t seed = 200; seed < 204; ++seed) {
    CheckEquivalence(seed, Propagation::kDelta, &empty);
  }
}

TEST(ParallelRunnerTest, RejectsLazyPropagation) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  reg.NewAccess(t, 0, Update::Add(1));
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 2);
  dist::DistAlgebra alg(&topo);
  ParallelOptions opt;
  opt.propagation = Propagation::kLazy;
  auto run = RunParallel(alg, opt);
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

/// Crash and partition plans are accepted now (the crash-recovery and
/// partition behaviors themselves are exercised in
/// parallel_recovery_test.cc); only *ill-formed* plans are rejected, via
/// the tightened ValidatePlan.
TEST(ParallelRunnerTest, AcceptsCrashPlansRejectsIllFormedOnes) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  reg.NewAccess(t, 0, Update::Add(1));
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 2);
  dist::DistAlgebra alg(&topo);
  ParallelOptions opt;
  opt.plan.crashes.push_back(faults::CrashSpec{0, 5, 3});
  opt.plan.partitions.push_back(faults::PartitionSpec{0, 1, 0, 10});
  auto run = RunParallel(alg, opt);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->complete);
  EXPECT_EQ(run->stats.crashes, 1u);
  EXPECT_EQ(run->stats.recovered_nodes, 1u);

  ParallelOptions self_part;
  self_part.plan.partitions.push_back(faults::PartitionSpec{1, 1, 0, 10});
  EXPECT_EQ(RunParallel(alg, self_part).status().code(),
            StatusCode::kInvalidArgument);

  ParallelOptions overlap;
  overlap.plan.crashes.push_back(faults::CrashSpec{0, 5, 10});
  overlap.plan.crashes.push_back(faults::CrashSpec{0, 8, 10});
  EXPECT_EQ(RunParallel(alg, overlap).status().code(),
            StatusCode::kInvalidArgument);
}

TEST(ConcurrentMailboxTest, RetentionIsMonotoneAndSurvivesDrain) {
  ConcurrentMailbox mb(2);
  dist::ActionSummary s1;
  s1.AddActive(1);
  mb.Push(1, NodeMessage{0, s1});
  mb.Retain(1, s1);  // owner thread retains what it drains
  dist::ActionSummary s2;
  s2.AddActive(1);
  s2.SetStatus(1, action::ActionStatus::kCommitted);
  s2.AddActive(2);
  mb.Retain(1, s2);
  (void)mb.Drain(1);
  // M_1 holds the union, with done-status priority, after the queue is
  // long empty — the durable buffer the rebirth Receive replays.
  EXPECT_TRUE(mb.Retained(1).IsCommitted(1));
  EXPECT_TRUE(mb.Retained(1).IsActive(2));
  EXPECT_TRUE(mb.Retained(0).empty());
}

TEST(ConcurrentMailboxTest, LinkFilterSeversTransmissions) {
  ConcurrentMailbox mb(2);
  mb.SetLinkFilter([](NodeId from, NodeId to) {
    return from == 0 && to == 1;  // one-way partition for the test
  });
  dist::ActionSummary s;
  s.AddActive(1);
  EXPECT_FALSE(mb.Push(1, NodeMessage{0, s}));  // severed
  EXPECT_TRUE(mb.Empty(1));
  EXPECT_TRUE(mb.Push(0, NodeMessage{1, s}));  // reverse link open
  EXPECT_FALSE(mb.Empty(0));
  // Self-sends (the WAL) always pass the filter.
  EXPECT_TRUE(mb.Push(1, NodeMessage{1, s}));
  EXPECT_FALSE(mb.Empty(1));
}

TEST(ParallelRunnerTest, RejectsAccessInAbortSet) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId a = reg.NewAccess(t, 0, Update::Read());
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 1);
  dist::DistAlgebra alg(&topo);
  ParallelOptions opt;
  opt.abort_set = {a};
  auto run = RunParallel(alg, opt);
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);
}

TEST(ParallelRunnerTest, DeltaShipsFewerEntriesThanEager) {
  Rng rng(7);
  testutil::RandomRegistryParams p;
  p.top_level = 4;
  p.max_children = 3;
  p.max_depth = 3;
  p.objects = 6;
  ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 4);
  dist::DistAlgebra alg(&topo);
  ParallelOptions delta;
  delta.propagation = Propagation::kDelta;
  auto drun = RunParallel(alg, delta);
  ASSERT_TRUE(drun.ok()) << drun.status();
  ParallelOptions eager;
  eager.propagation = Propagation::kEager;
  auto erun = RunParallel(alg, eager);
  ASSERT_TRUE(erun.ok()) << erun.status();
  EXPECT_LT(drun->stats.summary_entries, erun->stats.summary_entries);
  for (ObjectId x = 0; x < 6; ++x) {
    NodeId h = topo.HomeOfObject(x);
    EXPECT_EQ(drun->final_state.nodes[h].vmap.Get(x, kRootAction),
              erun->final_state.nodes[h].vmap.Get(x, kRootAction));
  }
}

TEST(ParallelRunnerTest, RecordEventsOffStillComputesFinalState) {
  Rng rng(3);
  ActionRegistry reg = testutil::MakeRandomRegistry(rng);
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 2);
  dist::DistAlgebra alg(&topo);
  ParallelOptions opt;
  opt.record_events = false;
  auto run = RunParallel(alg, opt);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->events.empty());
  EXPECT_GT(run->stats.performs, 0u);
}

}  // namespace
}  // namespace rnt::sim
