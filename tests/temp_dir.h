#ifndef RNT_TESTS_TEMP_DIR_H_
#define RNT_TESTS_TEMP_DIR_H_

#include <cstdio>
#include <cstdlib>
#include <dirent.h>
#include <string>
#include <sys/stat.h>
#include <unistd.h>

namespace rnt::testing {

/// A self-cleaning temporary directory for storage tests. Created under
/// $TMPDIR (or /tmp) via mkdtemp; recursively removed on destruction.
class TempDir {
 public:
  TempDir() {
    const char* base = std::getenv("TMPDIR");
    std::string tmpl = std::string(base != nullptr ? base : "/tmp") +
                       "/rnt_storage_XXXXXX";
    char buf[4096];
    std::snprintf(buf, sizeof(buf), "%s", tmpl.c_str());
    if (::mkdtemp(buf) != nullptr) path_ = buf;
  }

  ~TempDir() {
    if (!path_.empty()) RemoveTree(path_);
  }

  TempDir(const TempDir&) = delete;
  TempDir& operator=(const TempDir&) = delete;

  const std::string& path() const { return path_; }
  bool ok() const { return !path_.empty(); }

 private:
  static void RemoveTree(const std::string& dir) {
    DIR* d = ::opendir(dir.c_str());
    if (d == nullptr) return;
    while (dirent* e = ::readdir(d)) {
      const std::string name = e->d_name;
      if (name == "." || name == "..") continue;
      const std::string full = dir + "/" + name;
      struct stat st;
      if (::lstat(full.c_str(), &st) != 0) continue;
      if (S_ISDIR(st.st_mode)) {
        RemoveTree(full);
      } else {
        (void)::unlink(full.c_str());
      }
    }
    (void)::closedir(d);
    (void)::rmdir(dir.c_str());
  }

  std::string path_;
};

}  // namespace rnt::testing

#endif  // RNT_TESTS_TEMP_DIR_H_
