// Direct property tests for the paper's Lemma 11 (monotonicity facts
// about pairs of level-2 states with T ⊢ T') and Lemma 19 (eval
// preserves principal action and value), which the other suites exercise
// only indirectly.

#include <gtest/gtest.h>

#include "aat/aat_algebra.h"
#include "algebra/algebra.h"
#include "testutil.h"
#include "valuemap/value_map_algebra.h"
#include "versionmap/version_map_algebra.h"

namespace rnt {
namespace {

using action::ActionRegistry;
using action::ActionTree;
using action::Update;

/// Runs the level-2 algebra, snapshotting the state every few steps, and
/// checks Lemma 11's clauses for every snapshot pair (earlier, later).
TEST(Lemma11Test, DerivabilityMonotonicityProperties) {
  for (std::uint64_t seed = 0; seed < 15; ++seed) {
    Rng rng(seed);
    ActionRegistry reg = testutil::MakeRandomRegistry(rng);
    aat::AatAlgebra alg(&reg);
    std::vector<ActionTree> snaps;
    auto s = alg.Initial();
    snaps.push_back(s);
    for (int step = 0; step < 60; ++step) {
      std::vector<algebra::TreeEvent> enabled;
      for (auto& e : aat::EventCandidates(s)) {
        if (alg.Defined(s, e)) enabled.push_back(e);
      }
      if (enabled.empty()) break;
      alg.Apply(s, enabled[rng.Below(enabled.size())]);
      if (step % 7 == 0) snaps.push_back(s);
    }
    snaps.push_back(s);

    for (std::size_t i = 0; i < snaps.size(); ++i) {
      for (std::size_t j = i + 1; j < snaps.size(); ++j) {
        const ActionTree& t = snaps[i];   // earlier (the lemma's T)
        const ActionTree& t2 = snaps[j];  // later   (the lemma's T')
        for (ActionId a : t.Vertices()) {
          // (a) vertices/committed/aborted grow monotonically.
          ASSERT_TRUE(t2.Contains(a)) << "seed " << seed;
          if (t.IsCommitted(a)) {
            EXPECT_TRUE(t2.IsCommitted(a));
          }
          if (t.IsAborted(a)) {
            EXPECT_TRUE(t2.IsAborted(a));
          }
          // (d) visibility grows monotonically.
          for (ActionId b : t.Vertices()) {
            if (t.IsVisibleTo(b, a)) {
              EXPECT_TRUE(t2.IsVisibleTo(b, a))
                  << "Lemma 11d violated, seed " << seed;
            }
          }
          // (e) liveness shrinks monotonically (live in T' => live in T).
          if (t2.IsLive(a)) {
            EXPECT_TRUE(t.IsLive(a)) << "Lemma 11e violated, seed " << seed;
          }
          // (f) committed parent in T => children present in T' were
          // already done in T.
          if (a != kRootAction && t.IsCommitted(a)) {
            for (ActionId c : t2.ChildrenIn(a)) {
              EXPECT_TRUE(t.Contains(c) && t.IsDone(c))
                  << "Lemma 11f violated, seed " << seed;
            }
          }
        }
        // (a cont.) data order is an extension: per object, the earlier
        // datastep sequence is a prefix of the later one.
        for (ObjectId x : t.TouchedObjects()) {
          const auto& d1 = t.Datasteps(x);
          const auto& d2 = t2.Datasteps(x);
          ASSERT_LE(d1.size(), d2.size());
          EXPECT_TRUE(std::equal(d1.begin(), d1.end(), d2.begin()))
              << "Lemma 11a/c violated (data not an extension), seed "
              << seed;
          // (b) labels are stable.
          for (ActionId a : d1) {
            EXPECT_EQ(t.LabelOf(a), t2.LabelOf(a))
                << "Lemma 11b violated, seed " << seed;
          }
        }
      }
    }
  }
}

TEST(Lemma19Test, EvalPreservesPrincipalActionAndValue) {
  // Lemma 19, directly: for any well-formed version map V and object x,
  // the principal action of x in V equals that in eval(V), and the
  // principal values agree.
  for (std::uint64_t seed = 100; seed < 120; ++seed) {
    Rng rng(seed);
    ActionRegistry reg = testutil::MakeRandomRegistry(rng);
    // Obtain version maps from random level-3 runs (always well-formed).
    versionmap::VersionMapAlgebra alg(&reg);
    auto run = algebra::RandomRun(
        alg,
        [](const versionmap::VmState& s) {
          return versionmap::EventCandidates(s);
        },
        rng, 80);
    const versionmap::VersionMap& v = run.state.vmap;
    valuemap::ValueMap ev = valuemap::Eval(v, reg);
    for (ObjectId x : v.TouchedObjects()) {
      EXPECT_EQ(v.PrincipalAction(x, reg), ev.PrincipalAction(x, reg))
          << "Lemma 19 (action) violated, seed " << seed;
      EXPECT_EQ(v.PrincipalValue(x, reg), ev.PrincipalValue(x, reg))
          << "Lemma 19 (value) violated, seed " << seed;
    }
    // And for untouched objects the principals trivially agree at U.
    EXPECT_EQ(v.PrincipalAction(9999, reg), ev.PrincipalAction(9999, reg));
  }
}

TEST(Lemma19Test, HandCraftedEvalExample) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId s = reg.NewAction(t);
  ActionId a = reg.NewAccess(s, 0, Update::Add(3));
  ActionId b = reg.NewAccess(s, 0, Update::MulAdd(2, 1));
  versionmap::VersionMap v;
  v.Set(0, t, {a});
  v.Set(0, s, {a, b});
  valuemap::ValueMap ev = valuemap::Eval(v, reg);
  EXPECT_EQ(ev.Get(0, t), 3);
  EXPECT_EQ(ev.Get(0, s), 2 * 3 + 1);
  EXPECT_EQ(v.PrincipalAction(0, reg), s);
  EXPECT_EQ(ev.PrincipalAction(0, reg), s);
  EXPECT_EQ(v.PrincipalValue(0, reg), 7);
  EXPECT_EQ(ev.PrincipalValue(0, reg), 7);
}

}  // namespace
}  // namespace rnt
