#include "action/serializability.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace rnt::action {
namespace {

TEST(ResultOfTest, EmptySequenceIsInit) {
  ActionRegistry reg;
  EXPECT_EQ(ResultOf(reg, 0, {}), kInitValue);
}

TEST(ResultOfTest, FoldsUpdatesSkippingOtherObjects) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId w = reg.NewAccess(t, 0, Update::Write(10));
  ActionId a = reg.NewAccess(t, 0, Update::Add(5));
  ActionId other = reg.NewAccess(t, 1, Update::Write(99));
  std::vector<ActionId> seq{w, other, a};
  EXPECT_EQ(ResultOf(reg, 0, seq), 15);
  EXPECT_EQ(ResultOf(reg, 1, seq), 99);
}

class OracleTest : public ::testing::Test {
 protected:
  /// Two independent top-level transactions, each adding to object 0.
  void SetUp() override {
    t1_ = reg_.NewAction(kRootAction);
    t2_ = reg_.NewAction(kRootAction);
    a1_ = reg_.NewAccess(t1_, 0, Update::Add(1));
    a2_ = reg_.NewAccess(t2_, 0, Update::Add(2));
  }

  ActionTree Build(Value label1, Value label2, bool commit_tops = true) {
    ActionTree t(&reg_);
    t.ApplyCreate(t1_);
    t.ApplyCreate(t2_);
    t.ApplyCreate(a1_);
    t.ApplyCreate(a2_);
    t.ApplyPerform(a1_, label1);
    t.ApplyPerform(a2_, label2);
    if (commit_tops) {
      t.ApplyCommit(t1_);
      t.ApplyCommit(t2_);
    }
    return t;
  }

  ActionRegistry reg_;
  ActionId t1_, t2_, a1_, a2_;
};

TEST_F(OracleTest, TrivialTreeIsSerializable) {
  ActionRegistry reg;
  ActionTree t(&reg);
  EXPECT_TRUE(IsSerializable(t));
  EXPECT_TRUE(IsPermSerializable(t));
}

TEST_F(OracleTest, SerialLabelsAccepted) {
  // a1 saw 0, a2 saw 1: consistent with t1 before t2.
  EXPECT_TRUE(IsSerializable(Build(0, 1)));
  // a2 saw 0, a1 saw 2: consistent with t2 before t1.
  EXPECT_TRUE(IsSerializable(Build(2, 0)));
}

TEST_F(OracleTest, LostUpdateRejected) {
  // Both saw 0 and both are permanent: no sibling order explains it.
  EXPECT_FALSE(IsSerializable(Build(0, 0)));
  EXPECT_FALSE(IsPermSerializable(Build(0, 0)));
}

TEST_F(OracleTest, WitnessOrderMatchesLabels) {
  auto w = FindSerializingOrder(Build(0, 1));
  ASSERT_TRUE(w.has_value());
  const auto& tops = w->order_by_parent.at(kRootAction);
  ASSERT_EQ(tops.size(), 2u);
  EXPECT_EQ(tops[0], t1_);
  EXPECT_EQ(tops[1], t2_);
}

TEST_F(OracleTest, AbortedBranchExcusedInPerm) {
  // a2 saw an impossible value (5): no sibling order explains it, so the
  // whole tree is not serializable. But t2 aborts, so perm(T) contains
  // only t1's branch and the permanent part is serializable.
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(t2_);
  t.ApplyCreate(a1_);
  t.ApplyCreate(a2_);
  t.ApplyPerform(a1_, 0);
  t.ApplyPerform(a2_, 5);
  t.ApplyCommit(t1_);
  t.ApplyAbort(t2_);
  EXPECT_FALSE(IsSerializable(t));
  EXPECT_TRUE(IsPermSerializable(t));
}

TEST_F(OracleTest, AbortedWritesAreInvisibleSoLostUpdateLabelsPass) {
  // Both accesses saw 0, but t2 aborts: with t2 serialized first, a2's
  // write is invisible to a1 (aborted branch), so labels (0, 0) are
  // consistent — the full tree IS serializable here.
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(t2_);
  t.ApplyCreate(a1_);
  t.ApplyCreate(a2_);
  t.ApplyPerform(a1_, 0);
  t.ApplyPerform(a2_, 0);
  t.ApplyCommit(t1_);
  t.ApplyAbort(t2_);
  EXPECT_TRUE(IsSerializable(t));
}

TEST_F(OracleTest, DataOrderConstraintCanForbid) {
  // Labels say t2 before t1 (a1 saw 2, a2 saw 0), but force data order
  // a1 -> a2: data-serializability fails while plain succeeds.
  ActionTree t = Build(2, 0);
  EXPECT_TRUE(IsSerializable(t));
  DataOrder order;
  order[0] = {a1_, a2_};
  OracleOptions opt;
  opt.data_order = &order;
  EXPECT_FALSE(IsSerializable(t, opt));
  // The compatible direction is fine.
  DataOrder order2;
  order2[0] = {a2_, a1_};
  opt.data_order = &order2;
  EXPECT_TRUE(IsSerializable(t, opt));
}

TEST(OracleNestedTest, SiblingSubtransactionsReorderable) {
  // One top-level transaction whose two subtransactions wrote in an order
  // different from their creation order: still serializable because the
  // serializing order of siblings is free.
  ActionRegistry reg;
  ActionId top = reg.NewAction(kRootAction);
  ActionId s1 = reg.NewAction(top);
  ActionId s2 = reg.NewAction(top);
  ActionId a1 = reg.NewAccess(s1, 0, Update::Add(1));
  ActionId a2 = reg.NewAccess(s2, 0, Update::Add(2));
  ActionTree t(&reg);
  for (ActionId a : {top, s1, s2, a1, a2}) t.ApplyCreate(a);
  // s2's access performed first and saw 0; s1's saw 2.
  t.ApplyPerform(a2, 0);
  t.ApplyPerform(a1, 2);
  t.ApplyCommit(s1);
  t.ApplyCommit(s2);
  t.ApplyCommit(top);
  EXPECT_TRUE(IsSerializable(t));
  auto w = FindSerializingOrder(t);
  ASSERT_TRUE(w.has_value());
  const auto& sibs = w->order_by_parent.at(top);
  ASSERT_EQ(sibs.size(), 2u);
  EXPECT_EQ(sibs[0], s2);
  EXPECT_EQ(sibs[1], s1);
}

TEST(OracleNestedTest, DeepNestingSerializable) {
  // Chain t -> s -> a(write 7) then sibling r -> b(read) seeing 7 after
  // s commits.
  ActionRegistry reg;
  ActionId top = reg.NewAction(kRootAction);
  ActionId s = reg.NewAction(top);
  ActionId r = reg.NewAction(top);
  ActionId a = reg.NewAccess(s, 0, Update::Write(7));
  ActionId b = reg.NewAccess(r, 0, Update::Read());
  ActionTree t(&reg);
  for (ActionId v : {top, s, r, a, b}) t.ApplyCreate(v);
  t.ApplyPerform(a, 0);
  t.ApplyCommit(s);
  t.ApplyPerform(b, 7);
  t.ApplyCommit(r);
  t.ApplyCommit(top);
  EXPECT_TRUE(IsSerializable(t));
}

TEST(OracleNestedTest, ReadSeeingUncommittedValueRejected) {
  // b reads 7 although the writer's parent never committed and b is in a
  // different subtree — no serializing order can explain the label if the
  // writer's branch aborted (it is not visible/permanent).
  ActionRegistry reg;
  ActionId top1 = reg.NewAction(kRootAction);
  ActionId top2 = reg.NewAction(kRootAction);
  ActionId a = reg.NewAccess(top1, 0, Update::Write(7));
  ActionId b = reg.NewAccess(top2, 0, Update::Read());
  ActionTree t(&reg);
  for (ActionId v : {top1, top2, a, b}) t.ApplyCreate(v);
  t.ApplyPerform(a, 0);
  t.ApplyAbort(top1);
  t.ApplyPerform(b, 7);  // dirty read of an aborted write
  t.ApplyCommit(top2);
  EXPECT_FALSE(IsPermSerializable(t));
}

TEST(OracleStressTest, RandomSerialExecutionsAlwaysAccepted) {
  // Executing accesses serially (each access sees the fold of all prior
  // *surviving-to-perm* accesses... here: run one transaction at a time to
  // completion) must always be serializable.
  for (std::uint64_t seed = 0; seed < 10; ++seed) {
    Rng rng(seed);
    ActionRegistry reg;
    std::vector<ActionId> tops;
    std::vector<std::vector<ActionId>> accesses;
    int ntop = 3;
    for (int i = 0; i < ntop; ++i) {
      ActionId t = reg.NewAction(kRootAction);
      tops.push_back(t);
      std::vector<ActionId> accs;
      int na = 1 + static_cast<int>(rng.Below(2));
      for (int j = 0; j < na; ++j) {
        accs.push_back(
            reg.NewAccess(t, static_cast<ObjectId>(rng.Below(2)),
                          testutil::RandomUpdate(rng, 0.3)));
      }
      accesses.push_back(std::move(accs));
    }
    ActionTree t(&reg);
    std::vector<Value> current(2, kInitValue);
    for (int i = 0; i < ntop; ++i) {
      t.ApplyCreate(tops[i]);
      for (ActionId a : accesses[i]) {
        t.ApplyCreate(a);
        ObjectId x = reg.Object(a);
        t.ApplyPerform(a, current[x]);
        current[x] = reg.UpdateOf(a).Apply(current[x]);
      }
      t.ApplyCommit(tops[i]);
    }
    EXPECT_TRUE(IsSerializable(t)) << "seed " << seed;
    EXPECT_TRUE(IsPermSerializable(t)) << "seed " << seed;
  }
}

}  // namespace
}  // namespace rnt::action
