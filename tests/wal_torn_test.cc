// Torn-write robustness (the failure taxonomy the recovery layer
// promises): a WAL truncated mid-record is a torn tail — tolerated, the
// partial record discarded — while a bit flip inside a fully present
// record is kDataLoss with a precise diagnostic, never a silent replay
// of damaged data.
#include <string>

#include <fcntl.h>
#include <unistd.h>

#include <gtest/gtest.h>

#include "storage/file_io.h"
#include "storage/log_reader.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "storage/wal.h"
#include "temp_dir.h"

namespace rnt::storage {
namespace {

/// Writes a single-worker WAL holding one committed transaction
/// (begin/perform/commit = LSNs 1..3) and returns the file path.
std::string WriteSimpleWal(const std::string& dir) {
  WalOptions opts;
  opts.dir = dir;
  opts.workers = 1;
  auto wal = Wal::Open(opts);
  EXPECT_TRUE(wal.ok()) << wal.status();
  (*wal)->Append({txn::TraceEvent::Kind::kBegin, 1, lock::kNoTxn, 0, {}, 0});
  (*wal)->Append({txn::TraceEvent::Kind::kPerform, 2, 1, 5,
                  action::Update::Write(33), 0});
  (*wal)->Append({txn::TraceEvent::Kind::kCommit, 1, lock::kNoTxn, 0, {}, 0});
  EXPECT_TRUE((*wal)->BarrierAll().ok());
  return dir + "/" + WalFileName(0);
}

void TruncateFile(const std::string& path, std::size_t keep) {
  ASSERT_EQ(::truncate(path.c_str(), static_cast<off_t>(keep)), 0);
}

void FlipByte(const std::string& path, std::size_t offset) {
  auto bytes = ReadFileBytes(path);
  ASSERT_TRUE(bytes.ok());
  ASSERT_LT(offset, bytes->size());
  (*bytes)[offset] = static_cast<char>((*bytes)[offset] ^ 0x40);
  int fd = ::open(path.c_str(), O_WRONLY | O_TRUNC);
  ASSERT_GE(fd, 0);
  ASSERT_TRUE(WriteAll(fd, bytes->data(), bytes->size(), path).ok());
  ASSERT_EQ(::close(fd), 0);
}

constexpr std::size_t kRecordSize = kWalHeaderSize + kWalPayloadSize;

TEST(WalTornTest, TornTailMidRecordIsDiscarded) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  const std::string path = WriteSimpleWal(dir.path());
  // Cut into the middle of the third record's payload.
  TruncateFile(path, kWalMagicSize + 2 * kRecordSize + kWalHeaderSize + 7);

  auto contents = ReadWalFile(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_TRUE(contents->torn_tail);
  ASSERT_EQ(contents->records.size(), 2u);  // commit record gone
  EXPECT_EQ(contents->records[1].event.kind,
            txn::TraceEvent::Kind::kPerform);

  // Recovery treats the torn transaction as in-flight and rolls it
  // back: the write of 33 must not reach the store.
  auto report = Recover(RecoveryOptions{dir.path(), {}});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->torn_tails, 1u);
  EXPECT_EQ(report->undone_txns, 1u);
  EXPECT_EQ(report->store.count(5), 0u);
}

TEST(WalTornTest, TornTailInsideHeaderIsDiscarded) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  const std::string path = WriteSimpleWal(dir.path());
  // Cut inside the third record's header (4 of 8 header bytes).
  TruncateFile(path, kWalMagicSize + 2 * kRecordSize + 4);
  auto contents = ReadWalFile(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_TRUE(contents->torn_tail);
  EXPECT_EQ(contents->records.size(), 2u);
}

TEST(WalTornTest, BitFlipInCommittedRecordIsDataLoss) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  const std::string path = WriteSimpleWal(dir.path());
  // Flip a byte in the FIRST record's payload — mid-log, fully present.
  FlipByte(path, kWalMagicSize + kWalHeaderSize + 10);

  auto contents = ReadWalFile(path);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kDataLoss);
  // Precise error: names the file, the offset, and the record index.
  EXPECT_NE(contents.status().message().find(path), std::string::npos)
      << contents.status();
  EXPECT_NE(contents.status().message().find("CRC mismatch"),
            std::string::npos)
      << contents.status();

  // Recovery propagates the hard failure: it must refuse to open.
  auto report = Recover(RecoveryOptions{dir.path(), {}});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDataLoss);
}

TEST(WalTornTest, BitFlipInSizeFieldIsDataLoss) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  const std::string path = WriteSimpleWal(dir.path());
  // Corrupt the size field of the first record (offset magic+4).
  FlipByte(path, kWalMagicSize + 4);
  auto contents = ReadWalFile(path);
  ASSERT_FALSE(contents.ok());
  EXPECT_EQ(contents.status().code(), StatusCode::kDataLoss);
}

TEST(WalTornTest, CorruptSnapshotIsDataLoss) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  Snapshot snap;
  snap.last_lsn = 5;
  snap.store[1] = 2;
  ASSERT_TRUE(WriteSnapshot(dir.path(), snap).ok());
  FlipByte(dir.path() + "/" + SnapshotFileName(), 20);
  auto loaded = ReadSnapshot(dir.path());
  ASSERT_FALSE(loaded.ok());
  EXPECT_EQ(loaded.status().code(), StatusCode::kDataLoss);
  // And recovery refuses likewise.
  auto report = Recover(RecoveryOptions{dir.path(), {}});
  ASSERT_FALSE(report.ok());
  EXPECT_EQ(report.status().code(), StatusCode::kDataLoss);
}

TEST(WalTornTest, EmptyAndHeaderOnlyFilesAreTolerated) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  const std::string path = WriteSimpleWal(dir.path());
  TruncateFile(path, 0);  // crash before the magic write
  auto contents = ReadWalFile(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_TRUE(contents->torn_tail);
  EXPECT_TRUE(contents->records.empty());

  TruncateFile(path, 3);  // partial magic
  contents = ReadWalFile(path);
  ASSERT_TRUE(contents.ok()) << contents.status();
  EXPECT_TRUE(contents->torn_tail);
}

}  // namespace
}  // namespace rnt::storage
