#include "txn/recovery.h"

#include <gtest/gtest.h>

#include "baseline/flat_engine.h"
#include "txn/transaction_manager.h"

namespace rnt::txn {
namespace {

TEST(RecoveryTest, RunTransactionCommitsOnSuccess) {
  TransactionManager engine;
  Status s = RunTransaction(engine, 3, [&](TxnHandle& t) {
    return t.Put(0, 5);
  });
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(engine.ReadCommitted(0), 5);
}

TEST(RecoveryTest, RunTransactionRollsBackOnBodyFailure) {
  TransactionManager engine;
  int calls = 0;
  Status s = RunTransaction(engine, 3, [&](TxnHandle& t) {
    ++calls;
    RNT_RETURN_IF_ERROR(t.Put(0, 99));
    return Status::Aborted("business rule failed");
  });
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(calls, 3) << "retried up to max_attempts";
  EXPECT_EQ(engine.ReadCommitted(0), 0) << "nothing leaked";
}

TEST(RecoveryTest, RunTransactionSucceedsAfterTransientFailures) {
  TransactionManager engine;
  int calls = 0;
  Status s = RunTransaction(engine, 5, [&](TxnHandle& t) {
    if (++calls < 3) return Status::Aborted("transient");
    return t.Put(0, 7);
  });
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(calls, 3);
  EXPECT_EQ(engine.ReadCommitted(0), 7);
}

TEST(RecoveryTest, RunInChildRetriesLocally) {
  TransactionManager engine;
  auto t = engine.Begin();
  ASSERT_TRUE(t->Put(0, 1).ok());
  int calls = 0;
  Status s = RunInChild(*t, 4, [&](TxnHandle& step) {
    if (++calls < 3) return Status::Aborted("flaky step");
    return step.Put(1, 2);
  });
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(calls, 3);
  // The parent's earlier write survived the two failed step attempts.
  auto v = t->Get(0);
  ASSERT_TRUE(v.ok());
  EXPECT_EQ(*v, 1);
  ASSERT_TRUE(t->Commit().ok());
  EXPECT_EQ(engine.ReadCommitted(1), 2);
}

TEST(RecoveryTest, RunInChildGivesUpAfterMaxRetries) {
  TransactionManager engine;
  auto t = engine.Begin();
  int calls = 0;
  Status s = RunInChild(*t, 2, [&](TxnHandle&) {
    ++calls;
    return Status::Aborted("always fails");
  });
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(calls, 3) << "initial attempt + 2 retries";
  EXPECT_TRUE(t->Commit().ok()) << "parent is unharmed";
}

TEST(RecoveryTest, RunInChildBubblesUpDeadParent) {
  TransactionManager engine;
  auto t = engine.Begin();
  ASSERT_TRUE(t->Abort().ok());
  int calls = 0;
  Status s = RunInChild(*t, 5, [&](TxnHandle&) {
    ++calls;
    return Status::Ok();
  });
  EXPECT_TRUE(s.IsAborted());
  EXPECT_EQ(calls, 0) << "body never runs under a dead parent";
}

TEST(RecoveryTest, RetriesAreCountedIntoFaultStats) {
  TransactionManager engine;
  FaultStats faults;
  int calls = 0;
  Status s = RunTransaction(
      engine, 5,
      [&](TxnHandle& t) {
        if (++calls < 3) return Status::Aborted("flaky");
        return t.Put(0, 1);
      },
      &faults);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(faults.retries, 2u) << "two re-attempts beyond the first";
  EXPECT_TRUE(faults.Any());

  auto parent = engine.Begin();
  FaultStats child_faults;
  int child_calls = 0;
  Status cs = RunInChild(
      *parent, 4,
      [&](TxnHandle& step) {
        if (++child_calls < 2) return Status::Aborted("flaky step");
        return step.Put(1, 2);
      },
      &child_faults);
  ASSERT_TRUE(cs.ok()) << cs;
  EXPECT_EQ(child_faults.retries, 1u);
  ASSERT_TRUE(parent->Commit().ok());
}

TEST(RecoveryTest, FirstTrySuccessLeavesFaultStatsClean) {
  TransactionManager engine;
  FaultStats faults;
  Status s = RunTransaction(
      engine, 3, [&](TxnHandle& t) { return t.Put(0, 7); }, &faults);
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(faults.retries, 0u);
  EXPECT_FALSE(faults.Any());
}

TEST(RecoveryTest, NestedCombinatorsComposeAcrossEngines) {
  // The same combinator code runs against the flat baseline — but there,
  // a child failure kills the whole transaction and RunInChild cannot
  // save it; RunTransaction's outer retry is the only recovery.
  baseline::FlatEngine engine;
  int child_calls = 0, txn_calls = 0;
  Status s = RunTransaction(engine, 4, [&](TxnHandle& t) {
    ++txn_calls;
    return RunInChild(t, 3, [&](TxnHandle& step) {
      if (++child_calls < 3) return Status::Aborted("flaky");
      return step.Put(0, 9);
    });
  });
  ASSERT_TRUE(s.ok()) << s;
  EXPECT_EQ(engine.ReadCommitted(0), 9);
  EXPECT_GE(txn_calls, 2) << "flat engine restarts the whole transaction";
}

}  // namespace
}  // namespace rnt::txn
