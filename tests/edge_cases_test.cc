// Edge cases and failure-path tests across modules: malformed traces,
// boundary parameters, garbage-collection interactions, overflow, and
// determinism guarantees.

#include <gtest/gtest.h>

#include "baseline/mvto_engine.h"
#include "dist/summary.h"
#include "lock/lock_manager.h"
#include "sim/dist_driver.h"
#include "testutil.h"
#include "txn/transaction_manager.h"
#include "workload/workload.h"

namespace rnt {
namespace {

using action::Update;

// ---------------------------------------------------------------------
// Update algebra boundaries.

TEST(UpdateEdgeTest, OverflowWrapsWithoutUb) {
  Value big = std::numeric_limits<Value>::max();
  EXPECT_EQ(Update::Add(1).Apply(big), std::numeric_limits<Value>::min());
  EXPECT_EQ(Update::MulAdd(2, 0).Apply(big), -2);
  EXPECT_EQ(Update::Add(-1).Apply(std::numeric_limits<Value>::min()),
            std::numeric_limits<Value>::max());
}

TEST(UpdateEdgeTest, ZeroConstantsBehave) {
  EXPECT_EQ(Update::Write(0).Apply(99), 0);
  EXPECT_EQ(Update::Add(0).Apply(99), 99);
  EXPECT_EQ(Update::XorConst(0).Apply(99), 99);
  EXPECT_EQ(Update::MulAdd(0, 0).Apply(99), 0);
}

// ---------------------------------------------------------------------
// Zipf boundaries.

TEST(ZipfEdgeTest, SingleKeyAlwaysZero) {
  Zipf z(1, 1.2);
  Rng rng(3);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(z.Sample(rng), 0u);
}

// ---------------------------------------------------------------------
// Action summary algebraic properties.

TEST(SummaryEdgeTest, MergeIsIdempotentAndMonotone) {
  Rng rng(11);
  for (int trial = 0; trial < 30; ++trial) {
    dist::ActionSummary a, b;
    for (ActionId id = 1; id <= 8; ++id) {
      // One true final status per action (statuses are set once, by the
      // home node); each summary independently knows nothing, the stale
      // 'active' fact, or the true status — conflicting *final* statuses
      // cannot arise in the algebra and are not generated.
      action::ActionStatus truth =
          rng.Chance(0.5) ? action::ActionStatus::kCommitted
                          : action::ActionStatus::kAborted;
      auto roll = [&](dist::ActionSummary& s) {
        switch (rng.Below(3)) {
          case 0:
            break;  // knows nothing
          case 1:
            s.AddActive(id);  // stale knowledge
            break;
          default:
            s.AddActive(id);
            s.SetStatus(id, truth);
        }
      };
      roll(a);
      roll(b);
    }
    dist::ActionSummary ab = a;
    ab.MergeFrom(b);
    // Idempotence: merging again changes nothing.
    dist::ActionSummary ab2 = ab;
    ab2.MergeFrom(b);
    EXPECT_TRUE(ab == ab2);
    // Monotonicity: both inputs are subsummaries of the merge.
    EXPECT_TRUE(a.IsSubsummaryOf(ab));
    EXPECT_TRUE(b.IsSubsummaryOf(ab));
    // Reflexivity and transitivity spot-check.
    EXPECT_TRUE(a.IsSubsummaryOf(a));
  }
}

TEST(SummaryEdgeTest, EmptySummaryIsSubsummaryOfEverything) {
  dist::ActionSummary empty, any;
  any.AddActive(5);
  EXPECT_TRUE(empty.IsSubsummaryOf(any));
  EXPECT_TRUE(empty.IsSubsummaryOf(empty));
  EXPECT_FALSE(any.IsSubsummaryOf(empty));
}

// ---------------------------------------------------------------------
// Malformed traces are rejected with Internal (engine-bug detection).

txn::TraceEvent Begin(lock::TxnId id, lock::TxnId parent) {
  return txn::TraceEvent{txn::TraceEvent::Kind::kBegin, id, parent, 0, {}, 0};
}
txn::TraceEvent CommitEv(lock::TxnId id) {
  return txn::TraceEvent{txn::TraceEvent::Kind::kCommit, id, 0, 0, {}, 0};
}
txn::TraceEvent AbortEv(lock::TxnId id) {
  return txn::TraceEvent{txn::TraceEvent::Kind::kAbort, id, 0, 0, {}, 0};
}
txn::TraceEvent PerformEv(lock::TxnId id, lock::TxnId owner, ObjectId x,
                          Value seen) {
  return txn::TraceEvent{txn::TraceEvent::Kind::kPerform, id, owner, x,
                         Update::Add(1), seen};
}

TEST(TraceEdgeTest, UnknownParentRejected) {
  txn::Trace t;
  t.events = {Begin(2, 1)};  // parent 1 never began
  EXPECT_EQ(txn::ReplayTrace(t).status().code(), StatusCode::kInternal);
  EXPECT_EQ(txn::LowerTraceToLockEvents(t).status().code(),
            StatusCode::kInternal);
}

TEST(TraceEdgeTest, CommitWithOpenChildRejected) {
  txn::Trace t;
  t.events = {Begin(1, lock::kNoTxn), Begin(2, 1), CommitEv(1)};
  EXPECT_EQ(txn::ReplayTrace(t).status().code(), StatusCode::kInternal);
}

TEST(TraceEdgeTest, DoubleCommitRejected) {
  txn::Trace t;
  t.events = {Begin(1, lock::kNoTxn), CommitEv(1), CommitEv(1)};
  EXPECT_EQ(txn::ReplayTrace(t).status().code(), StatusCode::kInternal);
}

TEST(TraceEdgeTest, AbortAfterCommitRejected) {
  txn::Trace t;
  t.events = {Begin(1, lock::kNoTxn), CommitEv(1), AbortEv(1)};
  EXPECT_EQ(txn::ReplayTrace(t).status().code(), StatusCode::kInternal);
}

TEST(TraceEdgeTest, PerformUnderUnknownOwnerRejected) {
  txn::Trace t;
  t.events = {PerformEv(9, 1, 0, 0)};
  EXPECT_EQ(txn::ReplayTrace(t).status().code(), StatusCode::kInternal);
}

TEST(TraceEdgeTest, WellFormedTraceWithAbortsAccepted) {
  txn::Trace t;
  t.events = {Begin(1, lock::kNoTxn), Begin(2, 1), PerformEv(3, 2, 0, 0),
              AbortEv(2),             CommitEv(1)};
  auto r = txn::ReplayTrace(t);
  ASSERT_TRUE(r.ok()) << r.status();
  EXPECT_EQ(r->tree.size(), 4u);  // U + txn + child + access
}

// ---------------------------------------------------------------------
// Lock manager randomized invariant: granted lock sets always satisfy
// Moss's compatibility shape.

class ForestAncestry : public lock::Ancestry {
 public:
  void Set(lock::TxnId child, lock::TxnId parent) { parent_[child] = parent; }
  bool IsAncestor(lock::TxnId anc, lock::TxnId desc) const override {
    if (anc == lock::kNoTxn) return true;
    for (lock::TxnId c = desc; c != lock::kNoTxn;) {
      if (c == anc) return true;
      auto it = parent_.find(c);
      if (it == parent_.end()) return false;
      c = it->second;
    }
    return false;
  }

 private:
  std::map<lock::TxnId, lock::TxnId> parent_;
};

TEST(LockManagerPropertyTest, GrantedSetsAlwaysCompatible) {
  Rng rng(17);
  for (int trial = 0; trial < 20; ++trial) {
    ForestAncestry anc;
    // Random forest of 12 txns, depth up to 3.
    std::vector<lock::TxnId> txns;
    for (lock::TxnId id = 1; id <= 12; ++id) {
      lock::TxnId parent =
          txns.empty() || rng.Chance(0.4) ? lock::kNoTxn : rng.Choose(txns);
      anc.Set(id, parent);
      txns.push_back(id);
    }
    lock::LockManager lm(&anc);
    std::set<lock::TxnId> dead;
    for (int op = 0; op < 200; ++op) {
      lock::TxnId t = rng.Choose(txns);
      if (dead.count(t)) continue;
      ObjectId x = static_cast<ObjectId>(rng.Below(3));
      switch (rng.Below(4)) {
        case 0:
          lm.TryAcquire(x, t, lock::LockMode::kRead);
          break;
        case 1:
          lm.TryAcquire(x, t, lock::LockMode::kWrite);
          break;
        case 2:
          lm.OnAbort(t);
          dead.insert(t);
          break;
        default:
          break;  // no-op
      }
      // Invariant (the lock rules' footprint): every WRITE holder is
      // ancestrally comparable with every other holder of any mode.
      // (Note a holder can still "see blockers" — a descendant may
      // acquire beneath a holding ancestor, and then the *ancestor* must
      // wait for the child to finish; that is Moss's rule, not a bug.)
      for (ObjectId ox = 0; ox < 3; ++ox) {
        for (lock::TxnId w : txns) {
          if (!lm.Holds(ox, w, lock::LockMode::kWrite)) continue;
          for (lock::TxnId h : txns) {
            if (h == w) continue;
            bool holds_any = lm.Holds(ox, h, lock::LockMode::kRead) ||
                             lm.Holds(ox, h, lock::LockMode::kWrite);
            if (!holds_any) continue;
            EXPECT_TRUE(anc.IsAncestor(w, h) || anc.IsAncestor(h, w))
                << "write holder " << w << " incomparable with holder "
                << h << " on x" << ox;
          }
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// Engine: garbage collection and deep nesting.

TEST(EngineEdgeTest, StaleHandlesAfterTopLevelCommitAreSafe) {
  txn::TransactionManager mgr;
  auto t = mgr.Begin();
  auto c = t->BeginChild();
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE((*c)->Put(0, 1).ok());
  ASSERT_TRUE((*c)->Commit().ok());
  ASSERT_TRUE(t->Commit().ok());
  // The subtree is garbage-collected; stale child handle operations fail
  // cleanly instead of touching freed state.
  EXPECT_TRUE((*c)->Get(0).status().IsAborted());
  EXPECT_TRUE((*c)->BeginChild().status().IsAborted());
  EXPECT_TRUE((*c)->Abort().ok()) << "idempotent on gone transactions";
}

TEST(EngineEdgeTest, DeepNestingChainWorks) {
  txn::TransactionManager mgr;
  constexpr int kDepth = 32;
  std::vector<std::unique_ptr<txn::TxnHandle>> chain;
  chain.push_back(mgr.Begin());
  for (int d = 1; d < kDepth; ++d) {
    auto c = chain.back()->BeginChild();
    ASSERT_TRUE(c.ok()) << "depth " << d;
    chain.push_back(std::move(*c));
  }
  ASSERT_TRUE(chain.back()->Apply(0, Update::Add(1)).ok());
  for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
    ASSERT_TRUE((*it)->Commit().ok());
  }
  EXPECT_EQ(mgr.ReadCommitted(0), 1);
}

TEST(EngineEdgeTest, AbortAtDepthUnwindsEverything) {
  txn::TransactionManager mgr;
  auto t = mgr.Begin();
  std::vector<std::unique_ptr<txn::TxnHandle>> chain;
  chain.push_back(std::move(t));
  for (int d = 0; d < 10; ++d) {
    auto c = chain.back()->BeginChild();
    ASSERT_TRUE(c.ok());
    ASSERT_TRUE((*c)->Apply(static_cast<ObjectId>(d), Update::Add(1)).ok());
    chain.push_back(std::move(*c));
  }
  // Abort the root: all 10 levels die, all versions vanish.
  ASSERT_TRUE(chain.front()->Abort().ok());
  for (int d = 0; d < 10; ++d) {
    EXPECT_EQ(mgr.ReadCommitted(static_cast<ObjectId>(d)), 0);
  }
  EXPECT_TRUE(chain.back()->Get(0).status().IsAborted());
}

TEST(EngineEdgeTest, ManySequentialTransactionsDoNotLeakState) {
  txn::TransactionManager mgr;
  for (int i = 0; i < 500; ++i) {
    auto t = mgr.Begin();
    ASSERT_TRUE(t->Apply(0, Update::Add(1)).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  EXPECT_EQ(mgr.ReadCommitted(0), 500);
  auto stats = mgr.stats();
  EXPECT_EQ(stats.committed, 500u);
  EXPECT_EQ(stats.aborted, 0u);
}

// ---------------------------------------------------------------------
// MVTO pruning and snapshot behavior.

TEST(MvtoEdgeTest, PruningPreservesCommittedState) {
  baseline::MvtoEngine eng;
  for (int i = 0; i < 100; ++i) {
    auto t = eng.Begin();
    ASSERT_TRUE(t->Apply(0, Update::Add(1)).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  EXPECT_EQ(eng.ReadCommitted(0), 100);
}

TEST(MvtoEdgeTest, LongLivedReaderSurvivesPruning) {
  baseline::MvtoEngine eng;
  {
    auto t = eng.Begin();
    ASSERT_TRUE(t->Put(0, 42).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  auto reader = eng.Begin();
  auto first = reader->Get(0);
  ASSERT_TRUE(first.ok());
  EXPECT_EQ(*first, 42);
  // Many later writers (each on a fresh snapshot).
  for (int i = 0; i < 50; ++i) {
    auto t = eng.Begin();
    if (t->Put(0, 100 + i).ok()) (void)t->Commit();
  }
  // The old reader still sees its snapshot (pruning respects the oldest
  // active timestamp).
  auto again = reader->Get(0);
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(*again, 42);
  ASSERT_TRUE(reader->Commit().ok());
}

// ---------------------------------------------------------------------
// Workload determinism (single worker => no interleaving nondeterminism).

TEST(WorkloadEdgeTest, SingleWorkerRunsAreDeterministic) {
  workload::Params p;
  p.num_objects = 8;
  p.child_failure_prob = 0.2;
  auto run = [&](std::uint64_t seed) {
    txn::TransactionManager eng;
    return workload::RunMixed(eng, p, 1, 30, seed);
  };
  workload::Result a = run(99), b = run(99), c = run(100);
  EXPECT_EQ(a.committed, b.committed);
  EXPECT_EQ(a.txn_attempts, b.txn_attempts);
  EXPECT_EQ(a.child_retries, b.child_retries);
  EXPECT_EQ(a.accesses, b.accesses);
  // Different seed, (almost surely) different trajectory.
  EXPECT_TRUE(a.child_retries != c.child_retries ||
              a.accesses != c.accesses || a.txn_attempts != c.txn_attempts);
}

// ---------------------------------------------------------------------
// Distributed driver with aborts at several depths.

TEST(DistDriverEdgeTest, AbortsAtMultipleDepthsStillDrain) {
  Rng rng(7);
  testutil::RandomRegistryParams p;
  p.top_level = 3;
  p.max_children = 3;
  p.max_depth = 4;
  p.objects = 3;
  action::ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
  // Abort one top-level and one inner non-access action.
  std::set<ActionId> aborts;
  for (ActionId a = 1; a < reg.size() && aborts.size() < 2; ++a) {
    if (!reg.IsAccess(a) &&
        (reg.Parent(a) == kRootAction ? aborts.empty() : aborts.size() == 1)) {
      aborts.insert(a);
    }
  }
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
  dist::DistAlgebra alg(&topo);
  sim::DriverOptions opt;
  opt.abort_set = aborts;
  auto run = sim::RunProgram(alg, opt);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_EQ(run->stats.aborts, aborts.size());
  // All locks drained to the root.
  for (NodeId i = 0; i < topo.k(); ++i) {
    for (ObjectId x : run->final_state.nodes[i].vmap.TouchedObjects()) {
      for (const auto& [holder, v] :
           *run->final_state.nodes[i].vmap.EntriesFor(x)) {
        EXPECT_EQ(holder, kRootAction);
      }
    }
  }
}

}  // namespace
}  // namespace rnt
