// Regression tests for lock-discipline bugs flushed out by the
// thread-safety annotation sweep (see DESIGN.md "Static analysis
// layer").
//
// The headline bug: ShardedEngine::Commit used to run the lock
// inheritance (LockManager::OnCommit) after dropping the record
// mutexes. A concurrent abort of the parent could complete its whole
// cascade — including the lose-lock sweep — in that window, after
// which the commit's inheritance re-created retained locks for a dead,
// already-collected parent. Those records could never be released (the
// parent will never commit or abort again), so every non-descendant
// acquiring the touched objects would block until timeout, forever
// after. The fix re-checks the parent's state after inheritance and
// sweeps with OnAbort when the parent finished aborting first.

#include <atomic>
#include <thread>
#include <vector>

#include <gtest/gtest.h>

#include "action/update.h"
#include "lock/lock_manager.h"
#include "txn/transaction_manager.h"

namespace rnt::txn {
namespace {

class EveryoneRelated final : public lock::Ancestry {
 public:
  bool IsAncestor(lock::TxnId, lock::TxnId) const override { return true; }
};

class NobodyRelated final : public lock::Ancestry {
 public:
  bool IsAncestor(lock::TxnId anc, lock::TxnId desc) const override {
    return anc == lock::kNoTxn || anc == desc;
  }
};

TEST(LockRecordStats, CountsLiveRecordsAndDrainsToZero) {
  TransactionManager mgr;
  EXPECT_EQ(mgr.stats().lock_records, 0u);
  auto t = mgr.Begin();
  ASSERT_TRUE(t->Put(7, 42).ok());
  // One write hold for the top-level transaction.
  EXPECT_EQ(mgr.stats().lock_records, 1u);
  ASSERT_TRUE(t->Commit().ok());
  // Top-level commit releases outright: the table must be empty.
  EXPECT_EQ(mgr.stats().lock_records, 0u);
}

TEST(LockRecordStats, ChildCommitInheritsThenTopCommitDrains) {
  TransactionManager mgr;
  auto p = mgr.Begin();
  auto c_or = p->BeginChild();
  ASSERT_TRUE(c_or.ok());
  auto c = std::move(*c_or);
  ASSERT_TRUE(c->Put(3, 1).ok());
  ASSERT_TRUE((*c).Commit().ok());
  // The child's hold became the parent's retained lock.
  EXPECT_EQ(mgr.stats().lock_records, 1u);
  ASSERT_TRUE(p->Commit().ok());
  EXPECT_EQ(mgr.stats().lock_records, 0u);
}

// Double lose-lock must be harmless: the inheritance-race repair in
// ShardedEngine::Commit may run OnAbort for a parent whose cascade will
// (or did) run OnAbort too.
TEST(LockManagerInheritance, OnAbortIsIdempotent) {
  NobodyRelated ancestry;
  lock::LockManager lm(&ancestry, {false, 4});
  ASSERT_TRUE(lm.TryAcquire(1, 10, lock::LockMode::kWrite));
  lm.OnCommit(10, 5);  // inherit to 5 as retained
  EXPECT_TRUE(lm.Retains(1, 5, lock::LockMode::kWrite));
  lm.OnAbort(5);
  EXPECT_EQ(lm.RecordCount(), 0u);
  lm.OnAbort(5);  // second sweep: no record, no crash, still empty
  EXPECT_EQ(lm.RecordCount(), 0u);
}

// Inheritance into a transaction that already lost its locks re-creates
// records the sweep must be able to clear — the LockManager-level shape
// of the engine race.
TEST(LockManagerInheritance, SweepClearsPostAbortInheritance) {
  EveryoneRelated ancestry;
  lock::LockManager lm(&ancestry, {false, 4});
  ASSERT_TRUE(lm.TryAcquire(1, 11, lock::LockMode::kWrite));
  lm.OnAbort(5);       // parent 5 aborted first (no records yet)
  lm.OnCommit(11, 5);  // late inheritance resurrects 5's retention
  EXPECT_TRUE(lm.Retains(1, 5, lock::LockMode::kWrite));
  lm.OnAbort(5);       // the engine's repair sweep
  EXPECT_EQ(lm.RecordCount(), 0u);
}

// The engine-level hammer: commit a writing child while another thread
// aborts the parent. Whatever the interleaving, once both transactions
// are dead the lock table must be empty — a leaked record here means
// the commit inherited into a parent whose lose-lock sweep had already
// run (the pre-fix behavior).
TEST(CommitAbortRace, NeverLeaksLockRecords) {
  constexpr int kIters = 200;
  for (int i = 0; i < kIters; ++i) {
    TransactionManager::Options opts;
    opts.shards = 4;
    opts.lock_wait_timeout = std::chrono::milliseconds(200);
    TransactionManager mgr(opts);
    auto p = mgr.Begin();
    auto c_or = p->BeginChild();
    ASSERT_TRUE(c_or.ok());
    auto c = std::move(*c_or);
    // Touch several objects so the leak (if any) is wide and the
    // inheritance loop spans shards.
    for (ObjectId x = 0; x < 6; ++x) {
      ASSERT_TRUE(c->Put(x, i).ok());
    }
    std::atomic<bool> go{false};
    std::thread committer([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      (void)c->Commit();  // may succeed or lose to the abort
    });
    std::thread aborter([&] {
      while (!go.load(std::memory_order_acquire)) {
      }
      (void)p->Abort();
    });
    go.store(true, std::memory_order_release);
    committer.join();
    aborter.join();
    // Both transactions are finished in every interleaving: the parent
    // abort either cascaded over the child or found it committed and
    // then died itself.
    EXPECT_EQ(mgr.stats().lock_records, 0u) << "iteration " << i;
  }
}

// Same race through the abort-first order: the child commit starts
// after the parent began aborting. The commit must fail (orphan) or be
// swept; no record may survive.
TEST(CommitAbortRace, AbortFirstOrderAlsoDrains) {
  constexpr int kIters = 200;
  for (int i = 0; i < kIters; ++i) {
    TransactionManager::Options opts;
    opts.shards = 4;
    opts.lock_wait_timeout = std::chrono::milliseconds(200);
    TransactionManager mgr(opts);
    auto p = mgr.Begin();
    auto c_or = p->BeginChild();
    ASSERT_TRUE(c_or.ok());
    auto c = std::move(*c_or);
    ASSERT_TRUE(c->Put(1, i).ok());
    ASSERT_TRUE(c->Put(2, i).ok());
    std::thread aborter([&] { (void)p->Abort(); });
    (void)c->Commit();
    aborter.join();
    EXPECT_EQ(mgr.stats().lock_records, 0u) << "iteration " << i;
  }
}

}  // namespace
}  // namespace rnt::txn
