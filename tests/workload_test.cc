#include "workload/workload.h"

#include <gtest/gtest.h>

#include "aat/aat.h"

#include "baseline/flat_engine.h"
#include "baseline/mvto_engine.h"
#include "txn/transaction_manager.h"

namespace rnt::workload {
namespace {

TEST(WorkloadTest, MixedRunsToCompletionOnNestedEngine) {
  txn::TransactionManager eng;
  Params p;
  p.num_objects = 16;
  Result r = RunMixed(eng, p, /*workers=*/3, /*txns_per_worker=*/15, 42);
  EXPECT_EQ(r.committed + r.failed, 45u);
  EXPECT_GT(r.committed, 0u);
  EXPECT_GT(r.accesses, 0u);
  EXPECT_GT(r.elapsed_seconds, 0.0);
}

TEST(WorkloadTest, MixedRunsOnFlatEngine) {
  baseline::FlatEngine eng;
  Params p;
  p.num_objects = 16;
  Result r = RunMixed(eng, p, 3, 15, 42);
  EXPECT_EQ(r.committed + r.failed, 45u);
  EXPECT_GT(r.committed, 0u);
}

TEST(WorkloadTest, MixedRunsOnMvtoEngine) {
  baseline::MvtoEngine eng;
  Params p;
  p.num_objects = 16;
  Result r = RunMixed(eng, p, 3, 15, 42);
  EXPECT_EQ(r.committed + r.failed, 45u);
  EXPECT_GT(r.committed, 0u);
}

TEST(WorkloadTest, FailureInjectionTriggersChildRetries) {
  txn::TransactionManager eng;
  Params p;
  p.num_objects = 32;
  p.child_failure_prob = 0.3;
  Result r = RunMixed(eng, p, 2, 20, 7);
  EXPECT_GT(r.child_retries, 0u) << "nested engine retries children";
  EXPECT_GT(r.committed, 0u);
  // Retried children mean more child attempts than the minimum.
  EXPECT_GT(r.child_attempts, r.committed * 3);
}

TEST(WorkloadTest, NestedRetriesLocallyFlatRestartsGlobally) {
  // Same failure rate: the nested engine absorbs failures with child
  // retries; the flat engine must restart whole transactions, so its
  // top-level attempt count is strictly larger.
  Params p;
  p.num_objects = 64;
  p.children_per_txn = 4;
  p.child_failure_prob = 0.25;
  txn::TransactionManager nested;
  Result rn = RunMixed(nested, p, 2, 25, 99);
  baseline::FlatEngine flat;
  Result rf = RunMixed(flat, p, 2, 25, 99);
  EXPECT_GT(rn.child_retries, 0u);
  EXPECT_GT(rf.txn_attempts, rn.txn_attempts)
      << "flat engine restarts from the top on every child failure";
}

TEST(BankingTest, TotalConservedOnNestedEngine) {
  txn::TransactionManager eng;
  BankingParams p;
  p.num_accounts = 8;
  ASSERT_TRUE(SetupBanking(eng, p).ok());
  ASSERT_TRUE(VerifyBankingTotal(eng, p));
  BankingResult r = RunBanking(eng, p, 3, 20, 5);
  EXPECT_GT(r.transfers_committed, 0u);
  EXPECT_TRUE(VerifyBankingTotal(eng, p))
      << "atomicity: partial transfers must never commit";
}

TEST(BankingTest, TotalConservedUnderInjectedFailures) {
  txn::TransactionManager eng;
  BankingParams p;
  p.num_accounts = 8;
  p.child_failure_prob = 0.3;
  ASSERT_TRUE(SetupBanking(eng, p).ok());
  BankingResult r = RunBanking(eng, p, 3, 20, 11);
  EXPECT_GT(r.child_retries, 0u);
  EXPECT_TRUE(VerifyBankingTotal(eng, p));
}

TEST(BankingTest, TotalConservedOnFlatAndMvto) {
  BankingParams p;
  p.num_accounts = 8;
  p.child_failure_prob = 0.2;
  {
    baseline::FlatEngine eng;
    ASSERT_TRUE(SetupBanking(eng, p).ok());
    RunBanking(eng, p, 2, 15, 3);
    EXPECT_TRUE(VerifyBankingTotal(eng, p));
  }
  {
    baseline::MvtoEngine eng;
    ASSERT_TRUE(SetupBanking(eng, p).ok());
    RunBanking(eng, p, 2, 15, 3);
    EXPECT_TRUE(VerifyBankingTotal(eng, p));
  }
}

TEST(WorkloadTest, TracedMixedWorkloadIsSerializable) {
  txn::TransactionManager::Options opt;
  opt.record_trace = true;
  txn::TransactionManager eng(opt);
  Params p;
  p.num_objects = 8;
  p.child_failure_prob = 0.15;
  RunMixed(eng, p, 3, 10, 13);
  auto replayed = txn::ReplayTrace(eng.TakeTrace());
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  EXPECT_TRUE(aat::IsPermDataSerializableRw(replayed->tree));
}

}  // namespace
}  // namespace rnt::workload
