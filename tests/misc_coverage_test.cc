// Assorted coverage: event printers, rendering edge cases, engine
// liveness under maximum contention, and multi-level version visibility.

#include <gtest/gtest.h>

#include <thread>

#include "action/render.h"
#include "algebra/events.h"
#include "dist/dist_algebra.h"
#include "txn/transaction_manager.h"

namespace rnt {
namespace {

using action::Update;

TEST(EventPrintTest, TreeAndLockEventsRender) {
  EXPECT_EQ(algebra::ToString(algebra::TreeEvent{algebra::Create{3}}),
            "create(3)");
  EXPECT_EQ(algebra::ToString(algebra::TreeEvent{algebra::Commit{4}}),
            "commit(4)");
  EXPECT_EQ(algebra::ToString(algebra::TreeEvent{algebra::Abort{5}}),
            "abort(5)");
  EXPECT_EQ(algebra::ToString(algebra::TreeEvent{algebra::Perform{6, -2}}),
            "perform(6, u=-2)");
  EXPECT_EQ(
      algebra::ToString(algebra::LockEvent{algebra::ReleaseLock{7, 1}}),
      "release-lock(7, x1)");
  EXPECT_EQ(algebra::ToString(algebra::LockEvent{algebra::LoseLock{8, 2}}),
            "lose-lock(8, x2)");
}

TEST(EventPrintTest, DistEventsRender) {
  EXPECT_EQ(dist::ToString(dist::DistEvent{dist::NodeCreate{1, 3}}),
            "create(n1, 3)");
  EXPECT_EQ(dist::ToString(dist::DistEvent{dist::NodePerform{0, 4, 9}}),
            "perform(n0, 4, u=9)");
  dist::ActionSummary s;
  s.AddActive(1);
  EXPECT_EQ(dist::ToString(dist::DistEvent{dist::Send{0, 1, s}}),
            "send(n0 -> n1, |T'|=1)");
  EXPECT_EQ(dist::ToString(dist::DistEvent{dist::Receive{1, s}}),
            "receive(n1, |T'|=1)");
  EXPECT_EQ(s.ToString(), "{1:active}");
}

TEST(RenderEdgeTest, TrivialTreeRenders) {
  action::ActionRegistry reg;
  action::ActionTree t(&reg);
  std::string dot = action::ToDot(t);
  EXPECT_NE(dot.find("n0"), std::string::npos);
  std::string text = action::ToIndentedString(t);
  EXPECT_EQ(text, "U [active]\n");
}

TEST(EngineLivenessTest, MaxContentionCompletes) {
  // 4 workers, one object, pure read-modify-writes: the worst case for
  // the lock manager. Deadlock detection must keep the system live and
  // the final counter must equal the number of commits.
  txn::TransactionManager mgr;
  constexpr int kWorkers = 4, kTxns = 30;
  std::atomic<long> commits{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kWorkers; ++w) {
    threads.emplace_back([&] {
      for (int i = 0; i < kTxns; ++i) {
        for (int attempt = 0; attempt < 100; ++attempt) {
          auto t = mgr.Begin();
          if (t->Apply(0, Update::Add(1)).ok() && t->Commit().ok()) {
            commits.fetch_add(1);
            break;
          }
          (void)t->Abort();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mgr.ReadCommitted(0), commits.load());
  EXPECT_EQ(commits.load(), kWorkers * kTxns)
      << "every increment eventually commits";
}

TEST(EngineVisibilityTest, GrandchildSeesAncestorChainValues) {
  txn::TransactionManager mgr;
  auto top = mgr.Begin();
  ASSERT_TRUE(top->Put(0, 10).ok());
  auto mid = top->BeginChild();
  ASSERT_TRUE(mid.ok());
  ASSERT_TRUE((*mid)->Put(1, 20).ok());
  auto leaf = (*mid)->BeginChild();
  ASSERT_TRUE(leaf.ok());
  // Leaf sees the top's x0 and the mid's x1 through the version chain.
  auto v0 = (*leaf)->Get(0);
  auto v1 = (*leaf)->Get(1);
  ASSERT_TRUE(v0.ok());
  ASSERT_TRUE(v1.ok());
  EXPECT_EQ(*v0, 10);
  EXPECT_EQ(*v1, 20);
  // Leaf overwrites x0; mid does not see it until the leaf commits.
  ASSERT_TRUE((*leaf)->Put(0, 11).ok());
  ASSERT_TRUE((*leaf)->Commit().ok());
  auto mid_v0 = (*mid)->Get(0);
  ASSERT_TRUE(mid_v0.ok());
  EXPECT_EQ(*mid_v0, 11);
  // But the top still sees its own version until mid commits.
  // (Reading through `top` while mid holds the write lock is legal for
  // the same transaction family only via the chain; the top's *own* read
  // would have to wait for mid. We check post-commit instead.)
  ASSERT_TRUE((*mid)->Commit().ok());
  auto top_v0 = top->Get(0);
  ASSERT_TRUE(top_v0.ok());
  EXPECT_EQ(*top_v0, 11);
  ASSERT_TRUE(top->Commit().ok());
  EXPECT_EQ(mgr.ReadCommitted(0), 11);
  EXPECT_EQ(mgr.ReadCommitted(1), 20);
}

TEST(EngineVisibilityTest, BeginChildAfterCommitFails) {
  txn::TransactionManager mgr;
  auto t = mgr.Begin();
  ASSERT_TRUE(t->Commit().ok());
  auto c = t->BeginChild();
  EXPECT_FALSE(c.ok());
  EXPECT_TRUE(c.status().IsAborted());
}

TEST(EngineVisibilityTest, SiblingsIsolatedUntilCommit) {
  txn::TransactionManager mgr;
  auto top = mgr.Begin();
  auto c1 = top->BeginChild();
  ASSERT_TRUE(c1.ok());
  ASSERT_TRUE((*c1)->Put(0, 5).ok());
  // Sibling c2 reading x0 must wait for c1 — run it in a thread and
  // verify it observes the committed value, not the in-flight one.
  std::atomic<Value> seen{-1};
  std::thread reader([&] {
    auto c2 = top->BeginChild();
    if (!c2.ok()) return;
    auto v = (*c2)->Get(0);
    if (v.ok()) seen = *v;
    (void)(*c2)->Commit();
  });
  std::this_thread::sleep_for(std::chrono::milliseconds(30));
  EXPECT_EQ(seen.load(), -1) << "reader must still be blocked";
  ASSERT_TRUE((*c1)->Commit().ok());
  reader.join();
  EXPECT_EQ(seen.load(), 5) << "reader sees the committed sibling value";
  ASSERT_TRUE(top->Commit().ok());
}

}  // namespace
}  // namespace rnt
