// Randomized multi-threaded stress for the sharded engine (ctest label
// `stress`; run under the `tsan` preset — see README).
//
// The correctness oracle is the paper's own: every run records a trace,
// ReplayTrace rebuilds the action tree (enforcing the level-1
// begin/commit/abort preconditions along the way), and the Theorem 9
// checker passes judgment — strict IsPermDataSerializable for the
// single-mode engine, the conflict-restricted Rw characterization for
// read/write mode. Seeds are fixed via common/random so any failure
// reproduces bit-for-bit.

#include <gtest/gtest.h>

#include <atomic>
#include <thread>
#include <vector>

#include "aat/aat.h"
#include "common/random.h"
#include "txn/transaction_manager.h"
#include "workload/workload.h"

namespace rnt::txn {
namespace {

using action::Update;

struct StressParam {
  EngineMode mode;
  bool single_mode_locks;
  const char* name;
};

class EngineStressTest : public ::testing::TestWithParam<StressParam> {
 protected:
  TransactionManager::Options BaseOptions() const {
    TransactionManager::Options opt;
    opt.mode = GetParam().mode;
    opt.single_mode_locks = GetParam().single_mode_locks;
    opt.record_trace = true;
    return opt;
  }

  /// Replays the trace and applies the mode-appropriate Theorem 9
  /// predicate.
  void CheckTrace(Trace trace, std::uint64_t seed) {
    auto replayed = ReplayTrace(std::move(trace));
    ASSERT_TRUE(replayed.ok()) << replayed.status() << " seed " << seed;
    if (GetParam().single_mode_locks) {
      EXPECT_TRUE(aat::IsPermDataSerializable(replayed->tree))
          << "seed " << seed;
    } else {
      EXPECT_TRUE(aat::IsPermDataSerializableRw(replayed->tree))
          << "seed " << seed;
      Status l10 = aat::CheckLemma10(replayed->tree);
      EXPECT_TRUE(l10.ok()) << l10 << " seed " << seed;
    }
  }
};

/// One random transaction body: a mix of reads, read-modify-writes, and
/// subtransactions that sometimes fail and are simply dropped (the
/// recovery-block pattern). Stops early if the transaction dies under
/// it (deadlock victim, orphaned by a concurrent cascade).
void RandomBody(TxnHandle& t, Rng& rng, ObjectId num_objects, int depth) {
  const int steps = 1 + static_cast<int>(rng.Below(4));
  for (int i = 0; i < steps; ++i) {
    const double r = rng.NextDouble();
    const ObjectId x = static_cast<ObjectId>(rng.Below(num_objects));
    if (depth > 0 && r < 0.35) {
      auto child = t.BeginChild();
      if (!child.ok()) return;
      RandomBody(**child, rng, num_objects, depth - 1);
      if (rng.Chance(0.75)) {
        (void)(*child)->Commit();  // may fail: parent tolerates it
      } else {
        (void)(*child)->Abort();
      }
    } else if (r < 0.70) {
      if (!t.Apply(x, Update::Add(1)).ok()) return;
    } else {
      if (!t.Get(x).ok()) return;
    }
  }
}

TEST_P(EngineStressTest, RandomNestedTransactionsSerializable) {
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 40;
  constexpr ObjectId kObjects = 12;
  for (std::uint64_t seed : {11u, 23u, 47u}) {
    TransactionManager mgr(BaseOptions());
    std::vector<std::thread> threads;
    for (int w = 0; w < kThreads; ++w) {
      threads.emplace_back([&, w] {
        Rng rng(seed * 1000 + static_cast<std::uint64_t>(w));
        for (int i = 0; i < kTxnsPerThread; ++i) {
          auto top = mgr.Begin();
          RandomBody(*top, rng, kObjects, /*depth=*/3);
          if (rng.Chance(0.85)) {
            (void)top->Commit();
          } else {
            (void)top->Abort();
          }
        }
      });
    }
    for (auto& th : threads) th.join();
    const auto stats = mgr.stats();
    EXPECT_EQ(stats.begun, stats.committed + stats.aborted)
        << "every transaction must resolve; seed " << seed;
    CheckTrace(mgr.TakeTrace(), seed);
  }
}

TEST_P(EngineStressTest, CounterConservedUnderContention) {
  // Each top-level transaction performs exactly one Add(1) at a random
  // nesting depth; it counts iff the entire ancestor chain committed.
  // The committed store must agree exactly — no lost or duplicated
  // merges across shards.
  constexpr int kThreads = 4;
  constexpr int kTxnsPerThread = 50;
  TransactionManager mgr(BaseOptions());
  std::atomic<std::int64_t> expected{0};
  std::vector<std::thread> threads;
  for (int w = 0; w < kThreads; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(7000 + static_cast<std::uint64_t>(w));
      for (int i = 0; i < kTxnsPerThread; ++i) {
        auto top = mgr.Begin();
        const int depth = static_cast<int>(rng.Below(3));
        std::vector<std::unique_ptr<TxnHandle>> chain;
        TxnHandle* leaf = top.get();
        bool ok = true;
        for (int d = 0; d < depth && ok; ++d) {
          auto child = leaf->BeginChild();
          if (!child.ok()) {
            ok = false;
            break;
          }
          chain.push_back(std::move(*child));
          leaf = chain.back().get();
        }
        ok = ok && leaf->Apply(0, Update::Add(1)).ok();
        for (auto it = chain.rbegin(); ok && it != chain.rend(); ++it) {
          ok = (*it)->Commit().ok();
        }
        ok = ok && top->Commit().ok();
        if (ok) {
          expected.fetch_add(1, std::memory_order_relaxed);
        } else {
          (void)top->Abort();  // discard any partially committed chain
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  EXPECT_EQ(mgr.ReadCommitted(0), expected.load());
  CheckTrace(mgr.TakeTrace(), 7000);
}

TEST_P(EngineStressTest, CascadingOrphanAbortUnderConcurrency) {
  // Worker threads run grandchild transactions that linger; the owner
  // aborts the top mid-flight. Everything must resolve, every live
  // descendant must die exactly once, and the trace must replay (the
  // cascade's children-first abort order is what ReplayTrace enforces).
  constexpr int kRounds = 20;
  TransactionManager mgr(BaseOptions());
  for (int round = 0; round < kRounds; ++round) {
    auto top = mgr.Begin();
    auto child = top->BeginChild();
    ASSERT_TRUE(child.ok());
    std::thread worker([&] {
      Rng rng(static_cast<std::uint64_t>(round));
      for (int i = 0; i < 10; ++i) {
        auto g = (*child)->BeginChild();
        if (!g.ok()) return;  // parent died under us: expected
        if (!(*g)->Apply(static_cast<ObjectId>(rng.Below(4)),
                         Update::Add(1))
                 .ok()) {
          return;
        }
        if (rng.Chance(0.5)) (void)(*g)->Commit();
      }
    });
    (void)top->Abort();
    worker.join();
    child->reset();
  }
  const auto stats = mgr.stats();
  EXPECT_EQ(stats.begun, stats.committed + stats.aborted);
  for (ObjectId x = 0; x < 4; ++x) {
    EXPECT_EQ(mgr.ReadCommitted(x), 0) << "aborted tops must publish nothing";
  }
  CheckTrace(mgr.TakeTrace(), 0);
}

TEST_P(EngineStressTest, DeadlockVictimIsDeterministic) {
  // Two top-level transactions lock {0, 1} in opposite orders. Whichever
  // thread detects the cycle, the victim must always be the *younger*
  // transaction (largest id) — so across repetitions the same side dies.
  for (int round = 0; round < 10; ++round) {
    TransactionManager::Options opt = BaseOptions();
    opt.record_trace = false;
    TransactionManager mgr(opt);
    auto t1 = mgr.Begin();  // elder
    auto t2 = mgr.Begin();  // younger: the deterministic victim
    ASSERT_TRUE(t1->Put(0, 1).ok());
    ASSERT_TRUE(t2->Put(1, 2).ok());
    Status s1, s2;
    std::thread a([&] { s1 = t1->Put(1, 10); });
    std::thread b([&] { s2 = t2->Put(0, 20); });
    a.join();
    b.join();
    EXPECT_TRUE(s1.ok()) << "elder must win round " << round << ": " << s1;
    EXPECT_TRUE(s2.IsAborted())
        << "younger must be the victim, round " << round << ": " << s2;
    EXPECT_TRUE(t1->Commit().ok());
    EXPECT_EQ(mgr.stats().deadlock_aborts, 1u);
    EXPECT_EQ(mgr.ReadCommitted(1), 10);
  }
}

TEST_P(EngineStressTest, MixedWorkloadWithFailureInjection) {
  // The stock mixed workload (nested children, retries, failure
  // injection) at moderate contention; the trace oracle rules.
  TransactionManager mgr(BaseOptions());
  workload::Params params;
  params.num_objects = 16;
  params.zipf_theta = 0.6;
  params.children_per_txn = 3;
  params.accesses_per_child = 2;
  params.read_fraction = 0.4;
  params.child_failure_prob = 0.15;
  params.max_child_retries = 2;
  auto result =
      workload::RunMixed(mgr, params, /*workers=*/4, /*txns_per_worker=*/25,
                         /*seed=*/99);
  EXPECT_GT(result.committed, 0u);
  CheckTrace(mgr.TakeTrace(), 99);
}

TEST(EngineEquivalenceTest, ShardedMatchesGlobalMutexSingleThreaded) {
  // With one worker and a fixed seed both skeletons are deterministic
  // and must produce the identical committed state — the sharded engine
  // is a concurrency change, not a semantics change.
  for (std::uint64_t seed : {5u, 17u}) {
    workload::Params params;
    params.num_objects = 10;
    params.children_per_txn = 3;
    params.accesses_per_child = 2;
    params.read_fraction = 0.3;
    params.child_failure_prob = 0.2;
    TransactionManager::Options sharded_opt;
    sharded_opt.mode = EngineMode::kSharded;
    TransactionManager::Options global_opt;
    global_opt.mode = EngineMode::kGlobalMutex;
    TransactionManager sharded(sharded_opt);
    TransactionManager global(global_opt);
    auto rs = workload::RunMixed(sharded, params, 1, 40, seed);
    auto rg = workload::RunMixed(global, params, 1, 40, seed);
    EXPECT_EQ(rs.committed, rg.committed) << "seed " << seed;
    for (ObjectId x = 0; x < params.num_objects; ++x) {
      EXPECT_EQ(sharded.ReadCommitted(x), global.ReadCommitted(x))
          << "object " << x << " seed " << seed;
    }
    EXPECT_EQ(sharded.stats().committed, global.stats().committed);
    EXPECT_EQ(sharded.stats().accesses, global.stats().accesses);
  }
}

INSTANTIATE_TEST_SUITE_P(
    Engines, EngineStressTest,
    ::testing::Values(
        StressParam{EngineMode::kSharded, false, "sharded_rw"},
        StressParam{EngineMode::kSharded, true, "sharded_single"},
        StressParam{EngineMode::kGlobalMutex, false, "global_rw"},
        StressParam{EngineMode::kGlobalMutex, true, "global_single"}),
    [](const auto& info) { return std::string(info.param.name); });

}  // namespace
}  // namespace rnt::txn
