// Tests of the event-state-algebra framework itself — including the
// crucial *negative* cases: the refinement checker and validity replay
// must detect violations, or every green refinement test is meaningless.

#include "algebra/algebra.h"

#include <gtest/gtest.h>

#include "aat/aat_algebra.h"
#include "algebra/events.h"
#include "spec/spec_algebra.h"
#include "valuemap/value_map_algebra.h"
#include "versionmap/version_map_algebra.h"

namespace rnt::algebra {
namespace {

using action::ActionRegistry;
using action::Update;

/// A toy algebra: states are integers, events add a value but only when
/// the result stays within [0, bound].
struct CounterAlgebra {
  using State = int;
  using Event = int;
  int bound;
  State Initial() const { return 0; }
  bool Defined(const State& s, const Event& e) const {
    return s + e >= 0 && s + e <= bound;
  }
  void Apply(State& s, const Event& e) const { s += e; }
};

static_assert(EventStateAlgebra<CounterAlgebra>);

TEST(AlgebraFrameworkTest, RunReplaysValidSequences) {
  CounterAlgebra alg{10};
  std::vector<int> seq{3, 4, -2, 5};
  auto result = ::rnt::algebra::Run(alg, std::span<const int>(seq));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, 10);
  EXPECT_TRUE(IsValidSequence(alg, std::span<const int>(seq)));
}

TEST(AlgebraFrameworkTest, RunRejectsInvalidPrefix) {
  CounterAlgebra alg{10};
  std::vector<int> seq{3, 9, -2};  // 3+9 exceeds the bound
  EXPECT_FALSE(algebra::Run(alg, std::span<const int>(seq)).has_value());
  EXPECT_FALSE(IsValidSequence(alg, std::span<const int>(seq)));
}

TEST(AlgebraFrameworkTest, RandomRunOnlyTakesEnabledSteps) {
  CounterAlgebra alg{5};
  Rng rng(3);
  auto run = RandomRun(
      alg,
      [](const int&) {
        return std::vector<int>{1, 2, -1, 7};  // 7 is never enabled... at 0
      },
      rng, 50);
  // Replay must succeed — RandomRun promises valid computations.
  EXPECT_TRUE(IsValidSequence(alg, std::span<const int>(run.events)));
  EXPECT_GE(run.state, 0);
  EXPECT_LE(run.state, 5);
}

TEST(AlgebraFrameworkTest, MapSequenceDropsNullImages) {
  std::vector<int> lower{1, -1, 2, -2, 3};
  auto upper = MapSequence<int>(std::span<const int>(lower),
                                [](const int& e) -> std::optional<int> {
                                  if (e < 0) return std::nullopt;  // Λ
                                  return e * 10;
                                });
  EXPECT_EQ(upper, (std::vector<int>{10, 20, 30}));
}

TEST(AlgebraFrameworkTest, CheckRefinementDetectsUndefinedImage) {
  // Lower algebra: bound 10. Upper algebra: bound 5. The identity map is
  // NOT a simulation — the checker must say so.
  CounterAlgebra lower{10}, upper{5};
  std::vector<int> seq{3, 4};  // valid below, 3+4 > 5 above
  Status st = CheckRefinement(
      lower, upper, std::span<const int>(seq),
      [](const int& e) { return std::optional<int>(e); });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kFailedPrecondition);
}

TEST(AlgebraFrameworkTest, CheckRefinementDetectsInvalidLowerRun) {
  CounterAlgebra lower{2}, upper{100};
  std::vector<int> seq{3};  // not even valid in the lower algebra
  Status st = CheckRefinement(
      lower, upper, std::span<const int>(seq),
      [](const int& e) { return std::optional<int>(e); });
  EXPECT_FALSE(st.ok());
}

TEST(AlgebraFrameworkTest, CheckRefinementRunsStateCheck) {
  CounterAlgebra lower{10}, upper{10};
  std::vector<int> seq{1, 1, 1};
  int calls = 0;
  Status st = CheckRefinement(
      lower, upper, std::span<const int>(seq),
      [](const int& e) { return std::optional<int>(e); },
      [&](const int& ls, const int& us) -> Status {
        ++calls;
        if (ls != us) return Status::Internal("diverged");
        return Status::Ok();
      });
  EXPECT_TRUE(st.ok()) << st;
  EXPECT_EQ(calls, 4) << "initial state + one per event";
}

TEST(AlgebraFrameworkTest, CheckRefinementPropagatesStateCheckFailure) {
  CounterAlgebra lower{10}, upper{10};
  std::vector<int> seq{1, 1};
  Status st = CheckRefinement(
      lower, upper, std::span<const int>(seq),
      [](const int& e) { return std::optional<int>(e); },
      [&](const int& ls, const int&) -> Status {
        if (ls >= 2) return Status::Internal("tripwire");
        return Status::Ok();
      });
  EXPECT_FALSE(st.ok());
  EXPECT_EQ(st.code(), StatusCode::kInternal);
  EXPECT_NE(st.message().find("tripwire"), std::string::npos);
}

// ---------------------------------------------------------------------
// Negative refinement between the *real* levels: corrupt a valid lower
// run and require detection.

TEST(AlgebraFrameworkTest, CorruptedMossRunIsRejectedUpstairs) {
  ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId t2 = reg.NewAction(kRootAction);
  ActionId a1 = reg.NewAccess(t1, 0, Update::Add(1));
  ActionId a2 = reg.NewAccess(t2, 0, Update::Add(2));
  using E = LockEvent;
  // A sequence that is INVALID at level 2 (a2 performs while a1's branch
  // is live and invisible) — the AAT algebra must reject its image even
  // though each tree event is individually plausible.
  std::vector<TreeEvent> bad{
      Create{t1}, Create{t2}, Create{a1}, Create{a2},
      Perform{a1, 0}, Perform{a2, 0},  // d12 violation at the second
  };
  aat::AatAlgebra aat_alg(&reg);
  EXPECT_FALSE(
      IsValidSequence(aat_alg, std::span<const TreeEvent>(bad)));
  // And the same shape at level 4: performing without the lock.
  std::vector<E> bad4{
      E{Create{t1}}, E{Create{t2}}, E{Create{a1}}, E{Create{a2}},
      E{Perform{a1, 0}}, E{Perform{a2, 0}},
  };
  valuemap::ValueMapAlgebra val_alg(&reg);
  EXPECT_FALSE(IsValidSequence(val_alg, std::span<const E>(bad4)));
}

TEST(AlgebraFrameworkTest, WrongValueRejectedAtEveryLockLevel) {
  ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId a1 = reg.NewAccess(t1, 0, Update::Add(1));
  using E = LockEvent;
  std::vector<E> wrong{E{Create{t1}}, E{Create{a1}}, E{Perform{a1, 5}}};
  valuemap::ValueMapAlgebra val_alg(&reg);
  versionmap::VersionMapAlgebra vm_alg(&reg);
  EXPECT_FALSE(IsValidSequence(val_alg, std::span<const E>(wrong)));
  EXPECT_FALSE(IsValidSequence(vm_alg, std::span<const E>(wrong)));
  std::vector<E> right{E{Create{t1}}, E{Create{a1}}, E{Perform{a1, 0}}};
  EXPECT_TRUE(IsValidSequence(val_alg, std::span<const E>(right)));
  EXPECT_TRUE(IsValidSequence(vm_alg, std::span<const E>(right)));
}

TEST(AlgebraFrameworkTest, SpecRejectsSerializabilityViolation) {
  // The end-to-end negative: a lost-update interleaving is structurally
  // fine at the raw tree level but the spec's constraint C rejects the
  // second commit.
  ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId t2 = reg.NewAction(kRootAction);
  ActionId a1 = reg.NewAccess(t1, 0, Update::Add(1));
  ActionId a2 = reg.NewAccess(t2, 0, Update::Add(2));
  std::vector<TreeEvent> lost_update{
      Create{t1}, Create{t2}, Create{a1}, Create{a2},
      Perform{a1, 0}, Perform{a2, 0}, Commit{t1}, Commit{t2},
  };
  spec::SpecAlgebra with_c(&reg);
  EXPECT_FALSE(
      IsValidSequence(with_c, std::span<const TreeEvent>(lost_update)));
  spec::SpecAlgebra::Options raw;
  raw.enforce_serializability = false;
  spec::SpecAlgebra without_c(&reg, raw);
  EXPECT_TRUE(
      IsValidSequence(without_c, std::span<const TreeEvent>(lost_update)));
}

}  // namespace
}  // namespace rnt::algebra
