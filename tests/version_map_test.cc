#include "versionmap/version_map.h"

#include <gtest/gtest.h>

#include "versionmap/version_map_algebra.h"
#include "algebra/algebra.h"
#include "testutil.h"

namespace rnt::versionmap {
namespace {

using action::ActionRegistry;
using action::Update;
using algebra::Abort;
using algebra::Commit;
using algebra::Create;
using algebra::LockEvent;
using algebra::LoseLock;
using algebra::Perform;
using algebra::ReleaseLock;

TEST(VersionMapTest, RootImplicitlyDefinedEverywhere) {
  VersionMap vm;
  ActionRegistry reg;
  EXPECT_TRUE(vm.IsDefined(0, kRootAction));
  EXPECT_TRUE(vm.IsDefined(42, kRootAction));
  EXPECT_TRUE(vm.Get(5, kRootAction).empty());
  EXPECT_EQ(vm.PrincipalAction(9, reg), kRootAction);
  EXPECT_EQ(vm.PrincipalValue(9, reg), action::kInitValue);
}

TEST(VersionMapTest, SetGetErase) {
  VersionMap vm;
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId a = reg.NewAccess(t, 0, Update::Add(1));
  vm.Set(0, t, {a});
  EXPECT_TRUE(vm.IsDefined(0, t));
  EXPECT_EQ(vm.Get(0, t), std::vector<ActionId>{a});
  EXPECT_FALSE(vm.IsDefined(1, t));
  vm.Erase(0, t);
  EXPECT_FALSE(vm.IsDefined(0, t));
}

TEST(VersionMapTest, PrincipalIsDeepestHolder) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId s = reg.NewAction(t);
  ActionId a = reg.NewAccess(s, 0, Update::Add(5));
  VersionMap vm;
  vm.Set(0, t, {});
  vm.Set(0, s, {a});
  EXPECT_EQ(vm.PrincipalAction(0, reg), s);
  EXPECT_EQ(vm.PrincipalValue(0, reg), 5);
}

TEST(VersionMapTest, WellFormedAcceptsChain) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId s = reg.NewAction(t);
  ActionId a = reg.NewAccess(s, 0, Update::Add(1));
  ActionId b = reg.NewAccess(s, 0, Update::Add(2));
  VersionMap vm;
  vm.Set(0, t, {a});
  vm.Set(0, s, {a, b});
  EXPECT_TRUE(vm.CheckWellFormed(reg).ok());
}

TEST(VersionMapTest, WellFormedRejectsNonChainHolders) {
  ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId t2 = reg.NewAction(kRootAction);
  ActionId a = reg.NewAccess(t1, 0, Update::Add(1));
  VersionMap vm;
  vm.Set(0, t1, {a});
  vm.Set(0, t2, {});
  EXPECT_FALSE(vm.CheckWellFormed(reg).ok());
}

TEST(VersionMapTest, WellFormedRejectsNonExtension) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId s = reg.NewAction(t);
  ActionId a = reg.NewAccess(s, 0, Update::Add(1));
  ActionId b = reg.NewAccess(s, 0, Update::Add(2));
  VersionMap vm;
  vm.Set(0, t, {a});
  vm.Set(0, s, {b});  // does not extend ⟨a⟩
  EXPECT_FALSE(vm.CheckWellFormed(reg).ok());
}

TEST(VersionMapTest, WellFormedRejectsForeignAccess) {
  ActionRegistry reg;
  ActionId t = reg.NewAction(kRootAction);
  ActionId a = reg.NewAccess(t, 1, Update::Add(1));  // access to x1
  VersionMap vm;
  vm.Set(0, t, {a});  // ...stored under x0
  EXPECT_FALSE(vm.CheckWellFormed(reg).ok());
}

// ---------------------------------------------------------------------
// Level-3 algebra behaviour.

class VersionMapAlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    t1_ = reg_.NewAction(kRootAction);
    t2_ = reg_.NewAction(kRootAction);
    a1_ = reg_.NewAccess(t1_, 0, Update::Add(1));
    a2_ = reg_.NewAccess(t2_, 0, Update::Add(2));
  }

  void Step(VmState& s, const VersionMapAlgebra& alg, LockEvent e) {
    ASSERT_TRUE(alg.Defined(s, e)) << algebra::ToString(e);
    alg.Apply(s, e);
  }

  ActionRegistry reg_;
  ActionId t1_, t2_, a1_, a2_;
};

TEST_F(VersionMapAlgebraTest, PerformGrantsLockAndBlocksOthers) {
  VersionMapAlgebra alg(&reg_);
  auto s = alg.Initial();
  Step(s, alg, Create{t1_});
  Step(s, alg, Create{t2_});
  Step(s, alg, Create{a1_});
  Step(s, alg, Create{a2_});
  Step(s, alg, Perform{a1_, 0});
  EXPECT_TRUE(s.vmap.IsDefined(0, a1_));
  EXPECT_EQ(s.vmap.PrincipalAction(0, reg_), a1_);
  // a2 blocked: a1 holds the lock and is not an ancestor of a2 (d12).
  EXPECT_FALSE(alg.Defined(s, LockEvent{Perform{a2_, 0}}));
  EXPECT_FALSE(alg.Defined(s, LockEvent{Perform{a2_, 1}}));
}

TEST_F(VersionMapAlgebraTest, ReleaseChainUnblocksSibling) {
  VersionMapAlgebra alg(&reg_);
  auto s = alg.Initial();
  Step(s, alg, Create{t1_});
  Step(s, alg, Create{t2_});
  Step(s, alg, Create{a1_});
  Step(s, alg, Create{a2_});
  Step(s, alg, Perform{a1_, 0});
  // Commit the access's lock up the chain: a1 -> t1 -> U.
  Step(s, alg, ReleaseLock{a1_, 0});
  EXPECT_FALSE(s.vmap.IsDefined(0, a1_));
  EXPECT_TRUE(s.vmap.IsDefined(0, t1_));
  // Still blocked: t1 is not an ancestor of a2.
  EXPECT_FALSE(alg.Defined(s, LockEvent{Perform{a2_, 1}}));
  Step(s, alg, Commit{t1_});
  Step(s, alg, ReleaseLock{t1_, 0});
  EXPECT_TRUE(s.vmap.IsDefined(0, kRootAction));
  // Now the only holder is U (ancestor of everything): a2 may run, and
  // must see result(x, ⟨a1⟩) = 1.
  EXPECT_FALSE(alg.Defined(s, LockEvent{Perform{a2_, 0}}));
  Step(s, alg, Perform{a2_, 1});
  EXPECT_EQ(s.vmap.Get(0, a2_), (std::vector<ActionId>{a1_, a2_}));
}

TEST_F(VersionMapAlgebraTest, ReleaseRequiresCommit) {
  VersionMapAlgebra alg(&reg_);
  auto s = alg.Initial();
  Step(s, alg, Create{t1_});
  Step(s, alg, Create{a1_});
  Step(s, alg, Perform{a1_, 0});
  // a1 is committed by perform, so release is allowed; t1 has no lock yet.
  EXPECT_TRUE(alg.Defined(s, LockEvent{ReleaseLock{a1_, 0}}));
  EXPECT_FALSE(alg.Defined(s, LockEvent{ReleaseLock{t1_, 0}}));
  Step(s, alg, ReleaseLock{a1_, 0});
  // t1 now holds but is active: cannot release; cannot lose (live).
  EXPECT_FALSE(alg.Defined(s, LockEvent{ReleaseLock{t1_, 0}}));
  EXPECT_FALSE(alg.Defined(s, LockEvent{LoseLock{t1_, 0}}));
}

TEST_F(VersionMapAlgebraTest, LoseLockRequiresDeath) {
  VersionMapAlgebra alg(&reg_);
  auto s = alg.Initial();
  Step(s, alg, Create{t1_});
  Step(s, alg, Create{a1_});
  Step(s, alg, Perform{a1_, 0});
  Step(s, alg, ReleaseLock{a1_, 0});
  Step(s, alg, Abort{t1_});
  EXPECT_TRUE(alg.Defined(s, LockEvent{LoseLock{t1_, 0}}));
  Step(s, alg, LoseLock{t1_, 0});
  EXPECT_FALSE(s.vmap.IsDefined(0, t1_));
  EXPECT_EQ(s.vmap.PrincipalValue(0, reg_), action::kInitValue)
      << "aborted work is discarded";
}

TEST_F(VersionMapAlgebraTest, OrphanLockDiscardLetsSiblingProceedFresh) {
  VersionMapAlgebra alg(&reg_);
  auto s = alg.Initial();
  Step(s, alg, Create{t1_});
  Step(s, alg, Create{t2_});
  Step(s, alg, Create{a1_});
  Step(s, alg, Create{a2_});
  Step(s, alg, Perform{a1_, 0});
  Step(s, alg, Abort{t1_});
  // a1 still holds the lock (its ancestor aborted): a2 blocked until
  // lose-lock runs.
  EXPECT_FALSE(alg.Defined(s, LockEvent{Perform{a2_, 0}}));
  Step(s, alg, LoseLock{a1_, 0});
  Step(s, alg, Perform{a2_, 0});
  EXPECT_EQ(s.tree.LabelOf(a2_), 0) << "sees init, not the aborted add(1)";
}

TEST(VersionMapAlgebraPropertyTest, Lemma16AndWellFormedOnRandomRuns) {
  for (std::uint64_t seed = 0; seed < 30; ++seed) {
    Rng rng(seed);
    action::ActionRegistry reg = testutil::MakeRandomRegistry(rng);
    VersionMapAlgebra alg(&reg);
    auto s = alg.Initial();
    for (int step = 0; step < 80; ++step) {
      std::vector<LockEvent> enabled;
      for (auto& e : EventCandidates(s)) {
        if (alg.Defined(s, e)) enabled.push_back(e);
      }
      if (enabled.empty()) break;
      alg.Apply(s, enabled[rng.Below(enabled.size())]);
      Status wf = s.vmap.CheckWellFormed(reg);
      ASSERT_TRUE(wf.ok()) << wf << " seed " << seed << " step " << step;
      Status l16 = CheckLemma16(s);
      ASSERT_TRUE(l16.ok()) << l16 << " seed " << seed << " step " << step;
    }
  }
}

}  // namespace
}  // namespace rnt::versionmap
