// Durable retention for the multi-threaded runner: with
// ParallelOptions::durable_dir set, every entry retained into a node's
// M_i is written through to an on-disk RetentionLog, so the §9.1
// recovery summary survives process death — and a rebirth audits the
// write-through (in-memory M_i must be a sub-summary of the log).
//
// Also here: the chaos-driver-level kLazy regression — the concurrent
// buffer mode must fail fast with kInvalidArgument on the reactive
// runner's unsupported propagation policy, never hang or crash.
#include <gtest/gtest.h>

#include "dist/dist_algebra.h"
#include "sim/chaos_driver.h"
#include "sim/parallel_runner.h"
#include "storage/retention_log.h"
#include "temp_dir.h"
#include "testutil.h"

namespace rnt::sim {
namespace {

using action::ActionRegistry;
using action::Update;

/// Three top-level transactions with nested children over four objects —
/// enough cross-node traffic for retention to carry real knowledge.
ActionRegistry MakeProgram() {
  ActionRegistry reg;
  for (int t = 0; t < 3; ++t) {
    ActionId top = reg.NewAction(kRootAction);
    reg.NewAccess(top, static_cast<ObjectId>(t), Update::Add(t + 1));
    ActionId child = reg.NewAction(top);
    reg.NewAccess(child, 3, Update::MulAdd(2, t));
  }
  return reg;
}

TEST(ParallelDurableTest, RetentionLogCoversFinalKnowledge) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  ActionRegistry reg = MakeProgram();
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
  dist::DistAlgebra alg(&topo);
  ParallelOptions opt;
  opt.durable_dir = dir.path();
  // A mid-run crash forces the rebirth path, whose recover-from-disk
  // audit (in-memory M_i ⊆ on-disk log) runs inside the runner.
  opt.plan.crashes.push_back(faults::CrashSpec{1, 5, 3});
  auto run = RunParallel(alg, opt);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->complete);
  EXPECT_EQ(run->stats.crashes, 1u);
  EXPECT_EQ(run->stats.recovered_nodes, 1u);

  // Process-restart durability: reloading the logs from disk (as a new
  // process would) must cover every node's final knowledge, and a second
  // load is identical — the log is append-only and Load is pure.
  for (NodeId i = 0; i < 3; ++i) {
    auto loaded = storage::RetentionLog::Load(dir.path(), i);
    ASSERT_TRUE(loaded.ok()) << loaded.status() << " node " << i;
    EXPECT_TRUE(
        run->final_state.nodes[i].summary.IsSubsummaryOf(*loaded))
        << "node " << i << " knows more than its durable M_i";
    auto reloaded = storage::RetentionLog::Load(dir.path(), i);
    ASSERT_TRUE(reloaded.ok());
    EXPECT_EQ(*loaded, *reloaded) << "node " << i;
  }
}

TEST(ParallelDurableTest, MissingDurableDirFailsFast) {
  ActionRegistry reg = MakeProgram();
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 2);
  dist::DistAlgebra alg(&topo);
  ParallelOptions opt;
  opt.durable_dir = "/nonexistent-rnt-durable-dir";
  EXPECT_FALSE(RunParallel(alg, opt).ok());
}

TEST(ChaosDriverTest, ConcurrentBufferRejectsLazyPropagationFailFast) {
  ActionRegistry reg = MakeProgram();
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 2);
  dist::DistAlgebra alg(&topo);
  ChaosOptions opt;
  opt.concurrent_buffer = true;
  opt.propagation = Propagation::kLazy;
  auto run = ChaosRunProgram(alg, opt);
  ASSERT_FALSE(run.ok());
  EXPECT_EQ(run.status().code(), StatusCode::kInvalidArgument);

  // The sequential driver keeps supporting kLazy (it has the request
  // channel), so the rejection is specific to the reactive runner.
  ChaosOptions seq;
  ASSERT_TRUE(ChaosRunProgram(alg, seq).ok());
}

}  // namespace
}  // namespace rnt::sim
