#ifndef RNT_TESTS_TESTUTIL_H_
#define RNT_TESTS_TESTUTIL_H_

#include <utility>
#include <vector>

#include "action/action_tree.h"
#include "action/registry.h"
#include "common/random.h"

namespace rnt::testutil {

/// Parameters for random universal-action-tree generation.
struct RandomRegistryParams {
  int top_level = 3;       // top-level transactions under U
  int max_children = 3;    // fanout bound per inner action
  int max_depth = 3;       // depth bound below U (accesses at leaves)
  int objects = 3;         // object universe size
  double access_prob = 0.5;  // chance an inner slot is an access
  double read_prob = 0.4;    // chance an access is a read
};

/// A random update function over a small object universe.
inline action::Update RandomUpdate(Rng& rng, double read_prob) {
  if (rng.Chance(read_prob)) return action::Update::Read();
  switch (rng.Below(4)) {
    case 0:
      return action::Update::Write(rng.Range(-5, 5));
    case 1:
      return action::Update::Add(rng.Range(1, 4));
    case 2:
      return action::Update::XorConst(rng.Range(1, 7));
    default:
      return action::Update::MulAdd(rng.Range(2, 3), rng.Range(0, 3));
  }
}

/// Builds a random a-priori action tree: `top_level` transactions under U,
/// each expanding into subtransactions and accesses up to `max_depth`.
inline action::ActionRegistry MakeRandomRegistry(
    Rng& rng, const RandomRegistryParams& p = {}) {
  action::ActionRegistry reg;
  // Recursive expansion without recursion: worklist of (action, depth).
  std::vector<std::pair<ActionId, int>> work;
  for (int t = 0; t < p.top_level; ++t) {
    work.emplace_back(reg.NewAction(kRootAction), 1);
  }
  while (!work.empty()) {
    auto [a, depth] = work.back();
    work.pop_back();
    int kids = static_cast<int>(rng.Range(1, p.max_children));
    for (int c = 0; c < kids; ++c) {
      bool access = depth + 1 >= p.max_depth || rng.Chance(p.access_prob);
      if (access) {
        ObjectId x = static_cast<ObjectId>(rng.Below(p.objects));
        reg.NewAccess(a, x, RandomUpdate(rng, p.read_prob));
      } else {
        work.emplace_back(reg.NewAction(a), depth + 1);
      }
    }
  }
  return reg;
}

/// Drives a bare ActionTree with uniformly random *enabled* level-1 events
/// (create/commit/abort/perform), choosing arbitrary small values for
/// perform. Produces structurally varied trees for property tests that do
/// not care about label correctness (visibility, liveness, perm shape).
inline action::ActionTree RandomTreeState(const action::ActionRegistry& reg,
                                          Rng& rng, int steps) {
  action::ActionTree t(&reg);
  struct Op {
    int kind;
    ActionId a;
  };
  for (int i = 0; i < steps; ++i) {
    std::vector<Op> ops;
    for (ActionId a = 1; a < reg.size(); ++a) {
      if (t.CanCreate(a)) ops.push_back({0, a});
      if (t.CanCommit(a)) ops.push_back({1, a});
      if (t.CanAbort(a)) ops.push_back({2, a});
      if (t.CanPerform(a)) ops.push_back({3, a});
    }
    if (ops.empty()) break;
    Op op = ops[rng.Below(ops.size())];
    switch (op.kind) {
      case 0:
        t.ApplyCreate(op.a);
        break;
      case 1:
        t.ApplyCommit(op.a);
        break;
      case 2:
        t.ApplyAbort(op.a);
        break;
      default:
        t.ApplyPerform(op.a, rng.Range(-3, 3));
    }
  }
  return t;
}

}  // namespace rnt::testutil

#endif  // RNT_TESTS_TESTUTIL_H_
