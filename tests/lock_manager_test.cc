#include "lock/lock_manager.h"

#include <gtest/gtest.h>

#include <chrono>
#include <map>
#include <set>
#include <thread>

namespace rnt::lock {
namespace {

/// A hand-built transaction forest for lock tests.
class FakeAncestry : public Ancestry {
 public:
  /// Declares `child` with `parent` (kNoTxn for top level).
  void Add(TxnId child, TxnId parent) { parent_[child] = parent; }

  bool IsAncestor(TxnId anc, TxnId desc) const override {
    if (anc == kNoTxn) return true;
    for (TxnId c = desc; c != kNoTxn;) {
      if (c == anc) return true;
      auto it = parent_.find(c);
      if (it == parent_.end()) return false;
      c = it->second;
    }
    return false;
  }

 private:
  std::map<TxnId, TxnId> parent_;
};

class LockManagerTest : public ::testing::Test {
 protected:
  /// Forest: 1 and 2 top-level; 1 -> {11, 12}; 11 -> {111}.
  void SetUp() override {
    anc_.Add(1, kNoTxn);
    anc_.Add(2, kNoTxn);
    anc_.Add(11, 1);
    anc_.Add(12, 1);
    anc_.Add(111, 11);
    lm_ = std::make_unique<LockManager>(&anc_);
  }

  FakeAncestry anc_;
  std::unique_ptr<LockManager> lm_;
};

TEST_F(LockManagerTest, WriteExcludesNonAncestors) {
  EXPECT_TRUE(lm_->TryAcquire(0, 11, LockMode::kWrite));
  EXPECT_FALSE(lm_->TryAcquire(0, 12, LockMode::kWrite)) << "sibling";
  EXPECT_FALSE(lm_->TryAcquire(0, 2, LockMode::kWrite)) << "other top";
  EXPECT_FALSE(lm_->TryAcquire(0, 1, LockMode::kWrite))
      << "a parent may not write while a child holds (the child is not an "
         "ancestor of the parent)";
  EXPECT_TRUE(lm_->TryAcquire(0, 111, LockMode::kWrite))
      << "descendant of the holder may acquire";
}

TEST_F(LockManagerTest, ReadersShareAcrossSubtrees) {
  EXPECT_TRUE(lm_->TryAcquire(0, 11, LockMode::kRead));
  EXPECT_TRUE(lm_->TryAcquire(0, 12, LockMode::kRead)) << "sibling reader";
  EXPECT_TRUE(lm_->TryAcquire(0, 2, LockMode::kRead)) << "foreign reader";
  EXPECT_EQ(lm_->HolderCount(0), 3u);
  // But no non-ancestor writer while readers exist.
  EXPECT_FALSE(lm_->TryAcquire(0, 111, LockMode::kWrite))
      << "12 and 2 hold read locks and are not ancestors of 111";
}

TEST_F(LockManagerTest, ReadBlockedOnlyByForeignWriters) {
  EXPECT_TRUE(lm_->TryAcquire(0, 11, LockMode::kWrite));
  EXPECT_FALSE(lm_->TryAcquire(0, 2, LockMode::kRead));
  EXPECT_TRUE(lm_->TryAcquire(0, 111, LockMode::kRead))
      << "holder is an ancestor";
}

TEST_F(LockManagerTest, UpgradeBySameTxnAllowed) {
  EXPECT_TRUE(lm_->TryAcquire(0, 11, LockMode::kRead));
  EXPECT_TRUE(lm_->TryAcquire(0, 11, LockMode::kWrite)) << "self upgrade";
  EXPECT_TRUE(lm_->Holds(0, 11, LockMode::kRead));
  EXPECT_TRUE(lm_->Holds(0, 11, LockMode::kWrite));
}

TEST_F(LockManagerTest, UpgradeBlockedByConcurrentReader) {
  EXPECT_TRUE(lm_->TryAcquire(0, 11, LockMode::kRead));
  EXPECT_TRUE(lm_->TryAcquire(0, 12, LockMode::kRead));
  EXPECT_FALSE(lm_->TryAcquire(0, 11, LockMode::kWrite))
      << "sibling 12 reads";
}

TEST_F(LockManagerTest, CommitInheritsToParentAsRetained) {
  ASSERT_TRUE(lm_->TryAcquire(0, 11, LockMode::kWrite));
  lm_->OnCommit(11, 1);
  EXPECT_FALSE(lm_->Holds(0, 11, LockMode::kWrite));
  EXPECT_TRUE(lm_->Retains(0, 1, LockMode::kWrite));
  // Sibling 12 is a descendant of retainer 1: may acquire.
  EXPECT_TRUE(lm_->TryAcquire(0, 12, LockMode::kWrite));
  // Foreign top-level 2 still excluded by 1's retained write.
  EXPECT_FALSE(lm_->TryAcquire(0, 2, LockMode::kWrite));
}

TEST_F(LockManagerTest, TopLevelCommitReleasesEverything) {
  ASSERT_TRUE(lm_->TryAcquire(0, 11, LockMode::kWrite));
  lm_->OnCommit(11, 1);
  lm_->OnCommit(1, kNoTxn);
  EXPECT_EQ(lm_->RecordCount(), 0u);
  EXPECT_TRUE(lm_->TryAcquire(0, 2, LockMode::kWrite));
}

TEST_F(LockManagerTest, AbortDiscardsLocks) {
  ASSERT_TRUE(lm_->TryAcquire(0, 11, LockMode::kWrite));
  ASSERT_TRUE(lm_->TryAcquire(1, 11, LockMode::kRead));
  lm_->OnAbort(11);
  EXPECT_EQ(lm_->RecordCount(), 0u);
  EXPECT_TRUE(lm_->TryAcquire(0, 2, LockMode::kWrite));
  EXPECT_TRUE(lm_->TryAcquire(1, 2, LockMode::kWrite));
}

TEST_F(LockManagerTest, WriteBlockedBySiblingReader) {
  ASSERT_TRUE(lm_->TryAcquire(0, 11, LockMode::kRead));
  EXPECT_FALSE(lm_->TryAcquire(0, 12, LockMode::kWrite))
      << "a write needs ALL lock holders (readers included) to be "
         "ancestors; sibling 11 holds a read lock";
  // Once 11 commits its read lock up to the shared parent 1, sibling 12
  // is a descendant of the retainer and may write.
  lm_->OnCommit(11, 1);
  EXPECT_TRUE(lm_->TryAcquire(0, 12, LockMode::kWrite));
}

TEST_F(LockManagerTest, RetainerChainDeepCommit) {
  ASSERT_TRUE(lm_->TryAcquire(0, 111, LockMode::kWrite));
  lm_->OnCommit(111, 11);
  lm_->OnCommit(11, 1);
  EXPECT_TRUE(lm_->Retains(0, 1, LockMode::kWrite));
  EXPECT_FALSE(lm_->Retains(0, 11, LockMode::kWrite));
  EXPECT_EQ(lm_->RetainerCount(0), 1u);
  // 12 (child of 1) can now acquire; 2 cannot.
  EXPECT_TRUE(lm_->TryAcquire(0, 12, LockMode::kWrite));
  EXPECT_FALSE(lm_->TryAcquire(0, 2, LockMode::kWrite));
}

TEST_F(LockManagerTest, BlockersReportsConflictSet) {
  ASSERT_TRUE(lm_->TryAcquire(0, 11, LockMode::kWrite));
  ASSERT_TRUE(lm_->TryAcquire(1, 2, LockMode::kRead));
  std::vector<TxnId> b = lm_->Blockers(0, 2, LockMode::kWrite);
  ASSERT_EQ(b.size(), 1u);
  EXPECT_EQ(b[0], 11u);
  EXPECT_TRUE(lm_->Blockers(0, 111, LockMode::kWrite).empty());
  // Read request against a read holder: no blockers.
  EXPECT_TRUE(lm_->Blockers(1, 11, LockMode::kRead).empty());
}

TEST_F(LockManagerTest, SingleModeTreatsReadsAsWrites) {
  LockManager lm(&anc_, LockManager::Options{/*single_mode=*/true});
  EXPECT_TRUE(lm.TryAcquire(0, 11, LockMode::kRead));
  EXPECT_FALSE(lm.TryAcquire(0, 12, LockMode::kRead))
      << "the paper's simplified variant serializes sibling readers";
}

TEST_F(LockManagerTest, RecordCountTracksFootprint) {
  EXPECT_EQ(lm_->RecordCount(), 0u);
  lm_->TryAcquire(0, 11, LockMode::kWrite);
  lm_->TryAcquire(1, 11, LockMode::kWrite);
  lm_->TryAcquire(1, 111, LockMode::kWrite);
  EXPECT_EQ(lm_->RecordCount(), 3u);
  lm_->OnCommit(111, 11);
  EXPECT_EQ(lm_->RecordCount(), 3u) << "hold became retained on 11... "
                                       "merged with 11's own hold plus x0";
  lm_->OnAbort(11);
  EXPECT_EQ(lm_->RecordCount(), 0u);
}

/// The shard-sensitive paths, exercised at several shard counts: 1
/// (the seed's fully serialized table), a small prime (objects from the
/// same test collide in one shard), and the default 16.
class ShardedLockManagerTest : public ::testing::TestWithParam<std::uint32_t> {
 protected:
  void SetUp() override {
    anc_.Add(1, kNoTxn);
    anc_.Add(2, kNoTxn);
    anc_.Add(11, 1);
    anc_.Add(12, 1);
    anc_.Add(111, 11);
    lm_ = std::make_unique<LockManager>(
        &anc_, LockManager::Options{/*single_mode=*/false,
                                    /*shards=*/GetParam()});
  }

  FakeAncestry anc_;
  std::unique_ptr<LockManager> lm_;
};

TEST_P(ShardedLockManagerTest, ReadToWriteUpgradeGatedBySiblingCommit) {
  // 11 and 12 read x0; neither can upgrade while the other's read hold
  // is live...
  ASSERT_TRUE(lm_->TryAcquire(0, 11, LockMode::kRead));
  ASSERT_TRUE(lm_->TryAcquire(0, 12, LockMode::kRead));
  EXPECT_FALSE(lm_->TryAcquire(0, 11, LockMode::kWrite));
  EXPECT_FALSE(lm_->TryAcquire(0, 12, LockMode::kWrite));
  // ...but once 12 commits, its read is *retained by the shared parent
  // 1*, an ancestor of 11 — the upgrade goes through.
  lm_->OnCommit(12, 1);
  EXPECT_TRUE(lm_->TryAcquire(0, 11, LockMode::kWrite)) << "upgrade";
  EXPECT_TRUE(lm_->Holds(0, 11, LockMode::kRead));
  EXPECT_TRUE(lm_->Holds(0, 11, LockMode::kWrite));
  // The upgraded write still excludes the foreign top-level.
  EXPECT_FALSE(lm_->TryAcquire(0, 2, LockMode::kRead));
}

TEST_P(ShardedLockManagerTest, CommitInheritsAcrossShards) {
  // Touch enough objects that, at >1 shards, the footprint provably
  // spans several shards; commit must find and transfer every record.
  constexpr ObjectId kObjects = 40;
  std::set<std::size_t> shards_touched;
  for (ObjectId x = 0; x < kObjects; ++x) {
    ASSERT_TRUE(lm_->TryAcquire(
        x, 111, x % 2 == 0 ? LockMode::kWrite : LockMode::kRead));
    shards_touched.insert(lm_->ShardOf(x));
  }
  if (GetParam() > 1) {
    EXPECT_GT(shards_touched.size(), 1u)
        << "test should actually span shards";
  }
  EXPECT_EQ(lm_->RecordCount(), kObjects);
  lm_->OnCommit(111, 11);
  EXPECT_EQ(lm_->RecordCount(), kObjects) << "held became retained";
  for (ObjectId x = 0; x < kObjects; ++x) {
    EXPECT_FALSE(lm_->Holds(x, 111, LockMode::kWrite));
    EXPECT_FALSE(lm_->Holds(x, 111, LockMode::kRead));
    LockMode m = x % 2 == 0 ? LockMode::kWrite : LockMode::kRead;
    EXPECT_TRUE(lm_->Retains(x, 11, m)) << "object " << x;
  }
  // Chain up: 11 -> 1, then top-level commit releases everything.
  lm_->OnCommit(11, 1);
  EXPECT_EQ(lm_->RetainerCount(7), 1u);
  EXPECT_TRUE(lm_->Retains(7, 1, LockMode::kRead));
  lm_->OnCommit(1, kNoTxn);
  EXPECT_EQ(lm_->RecordCount(), 0u);
  EXPECT_TRUE(lm_->TryAcquire(0, 2, LockMode::kWrite));
}

TEST_P(ShardedLockManagerTest, RetainedUpgradeMergesModes) {
  // A child's read and another child's write on the same object merge
  // into one retained ModeSet on the parent.
  ASSERT_TRUE(lm_->TryAcquire(5, 11, LockMode::kRead));
  lm_->OnCommit(11, 1);
  ASSERT_TRUE(lm_->TryAcquire(5, 12, LockMode::kWrite));
  lm_->OnCommit(12, 1);
  EXPECT_TRUE(lm_->Retains(5, 1, LockMode::kRead));
  EXPECT_TRUE(lm_->Retains(5, 1, LockMode::kWrite));
  EXPECT_EQ(lm_->RetainerCount(5), 1u);
}

TEST_P(ShardedLockManagerTest, EnqueueAndTargetedWakeup) {
  ASSERT_TRUE(lm_->TryAcquire(0, 11, LockMode::kWrite));
  auto attempt = lm_->AcquireOrEnqueue(0, 2, LockMode::kWrite);
  ASSERT_FALSE(attempt.acquired);
  ASSERT_EQ(attempt.blockers.size(), 1u);
  EXPECT_EQ(attempt.blockers[0], 11u);
  // Releasing an unrelated object must NOT wake x0's waiter...
  ASSERT_TRUE(lm_->TryAcquire(1, 12, LockMode::kWrite));
  lm_->OnAbort(12);
  // ...so the ticket is still current and a short wait times out.
  EXPECT_FALSE(lm_->WaitOn(0, attempt.ticket,
                           std::chrono::steady_clock::now() +
                               std::chrono::milliseconds(20)));
  // Releasing x0 itself moves the queue: re-enqueue, release from
  // another thread, and observe the wakeup.
  attempt = lm_->AcquireOrEnqueue(0, 2, LockMode::kWrite);
  ASSERT_FALSE(attempt.acquired);
  std::thread releaser([&] {
    std::this_thread::sleep_for(std::chrono::milliseconds(10));
    lm_->OnAbort(11);
  });
  EXPECT_TRUE(lm_->WaitOn(0, attempt.ticket,
                          std::chrono::steady_clock::now() +
                              std::chrono::seconds(10)));
  releaser.join();
  EXPECT_TRUE(lm_->TryAcquire(0, 2, LockMode::kWrite));
}

TEST_P(ShardedLockManagerTest, CancelWaitAndPoke) {
  ASSERT_TRUE(lm_->TryAcquire(0, 11, LockMode::kWrite));
  auto attempt = lm_->AcquireOrEnqueue(0, 2, LockMode::kWrite);
  ASSERT_FALSE(attempt.acquired);
  lm_->CancelWait(0);  // deregisters without waiting
  // Poke wakes waiters without changing lock state.
  attempt = lm_->AcquireOrEnqueue(0, 2, LockMode::kWrite);
  ASSERT_FALSE(attempt.acquired);
  lm_->Poke(0);
  EXPECT_TRUE(lm_->WaitOn(0, attempt.ticket,
                          std::chrono::steady_clock::now() +
                              std::chrono::seconds(10)));
  EXPECT_FALSE(lm_->TryAcquire(0, 2, LockMode::kWrite))
      << "poke does not release anything";
}

INSTANTIATE_TEST_SUITE_P(Shards, ShardedLockManagerTest,
                         ::testing::Values(1u, 3u, 16u),
                         [](const auto& info) {
                           return "s" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace rnt::lock
