// Engine-to-theory conformance: multithreaded single-mode engine traces,
// lowered to the level-4 event vocabulary, must be *valid computations*
// of the proven ValueMapAlgebra — and from there refine all the way to
// the serializability spec (Theorem 29 applied to the real engine).

#include <gtest/gtest.h>

#include <thread>

#include "aat/aat_algebra.h"
#include "algebra/algebra.h"
#include "common/random.h"
#include "spec/spec_algebra.h"
#include "txn/transaction_manager.h"
#include "valuemap/value_map_algebra.h"
#include "versionmap/version_map_algebra.h"

namespace rnt::txn {
namespace {

using action::Update;
using algebra::LockEvent;
using algebra::TreeEvent;

/// Runs a small concurrent workload on a single-mode engine and returns
/// its trace.
Trace RunSingleModeWorkload(std::uint64_t seed, int workers, int txns,
                            int objects, double read_fraction) {
  TransactionManager::Options opt;
  opt.single_mode_locks = true;
  opt.record_trace = true;
  TransactionManager mgr(opt);
  std::vector<std::thread> threads;
  for (int w = 0; w < workers; ++w) {
    threads.emplace_back([&, w] {
      Rng rng(seed * 131 + w);
      for (int i = 0; i < txns; ++i) {
        auto t = mgr.Begin();
        bool ok = true;
        int children = 1 + static_cast<int>(rng.Below(2));
        for (int c = 0; c < children && ok; ++c) {
          auto ch = t->BeginChild();
          if (!ch.ok()) {
            ok = false;
            break;
          }
          for (int a = 0; a < 2; ++a) {
            ObjectId x = static_cast<ObjectId>(rng.Below(objects));
            auto r = rng.Chance(read_fraction)
                         ? (*ch)->Apply(x, Update::Read())
                         : (*ch)->Apply(x, Update::Add(1));
            if (!r.ok()) {
              ok = false;
              break;
            }
          }
          if (!ok || rng.Chance(0.15)) {
            (void)(*ch)->Abort();
            ok = t->Get(0).ok();  // parent alive? continue : restart
          } else {
            ok = (*ch)->Commit().ok();
          }
        }
        if (ok && rng.Chance(0.9)) {
          (void)t->Commit();
        }
      }
    });
  }
  for (auto& th : threads) th.join();
  return mgr.TakeTrace();
}

TEST(ConformanceTest, LoweredTraceIsValidLevel4Computation) {
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    Trace trace = RunSingleModeWorkload(seed, 4, 10, 3, 0.4);
    auto lowered = LowerTraceToLockEvents(trace);
    ASSERT_TRUE(lowered.ok()) << lowered.status();
    valuemap::ValueMapAlgebra alg(lowered->registry.get());
    // Validate step by step for a precise failure location.
    auto s = alg.Initial();
    for (std::size_t i = 0; i < lowered->events.size(); ++i) {
      ASSERT_TRUE(alg.Defined(s, lowered->events[i]))
          << "engine step not a valid Moss step: event " << i << " = "
          << algebra::ToString(lowered->events[i]) << " (seed " << seed
          << ")";
      alg.Apply(s, lowered->events[i]);
    }
    // The lowered run's tree matches the plain replay.
    auto replayed = ReplayTrace(trace);
    ASSERT_TRUE(replayed.ok());
    EXPECT_TRUE(s.tree == replayed->tree);
  }
}

TEST(ConformanceTest, LoweredTraceRefinesToVersionMapLevel) {
  for (std::uint64_t seed = 10; seed < 14; ++seed) {
    Trace trace = RunSingleModeWorkload(seed, 3, 8, 3, 0.3);
    auto lowered = LowerTraceToLockEvents(trace);
    ASSERT_TRUE(lowered.ok()) << lowered.status();
    const action::ActionRegistry& reg = *lowered->registry;
    valuemap::ValueMapAlgebra lower(&reg);
    versionmap::VersionMapAlgebra upper(&reg);
    Status st = algebra::CheckRefinement(
        lower, upper, std::span<const LockEvent>(lowered->events),
        [](const LockEvent& e) { return std::optional<LockEvent>(e); },
        [&](const valuemap::ValState& ls,
            const versionmap::VmState& us) -> Status {
          if (!(valuemap::Eval(us.vmap, reg) == ls.vmap)) {
            return Status::Internal("eval(W) != V");
          }
          return versionmap::CheckLemma16(us);
        });
    EXPECT_TRUE(st.ok()) << st << " seed " << seed;
  }
}

TEST(ConformanceTest, LoweredTraceRefinesToSpecWithOracle) {
  // Small runs only: the spec's C-check runs the exponential oracle.
  for (std::uint64_t seed = 20; seed < 24; ++seed) {
    Trace trace = RunSingleModeWorkload(seed, 2, 3, 2, 0.3);
    auto lowered = LowerTraceToLockEvents(trace);
    ASSERT_TRUE(lowered.ok()) << lowered.status();
    const action::ActionRegistry& reg = *lowered->registry;
    // Down-map lock events to tree events.
    auto tree_events = algebra::MapSequence<TreeEvent>(
        std::span<const LockEvent>(lowered->events), algebra::LockToTreeEvent);
    aat::AatAlgebra aat_alg(&reg);
    auto aat_state =
        algebra::Run(aat_alg, std::span<const TreeEvent>(tree_events));
    ASSERT_TRUE(aat_state.has_value())
        << "engine run not a valid level-2 computation, seed " << seed;
    spec::SpecAlgebra spec_alg(&reg);
    auto spec_state =
        algebra::Run(spec_alg, std::span<const TreeEvent>(tree_events));
    ASSERT_TRUE(spec_state.has_value())
        << "engine run violates the serializability spec, seed " << seed;
    EXPECT_TRUE(aat::IsPermDataSerializable(*aat_state));
  }
}

TEST(ConformanceTest, LoweringRejectsNothingButTracksLocks) {
  // Deterministic single-thread scenario with known lock movement.
  TransactionManager::Options opt;
  opt.single_mode_locks = true;
  opt.record_trace = true;
  TransactionManager mgr(opt);
  auto t = mgr.Begin();
  auto c = t->BeginChild();
  ASSERT_TRUE(c.ok());
  ASSERT_TRUE((*c)->Apply(0, Update::Add(1)).ok());
  ASSERT_TRUE((*c)->Commit().ok());
  ASSERT_TRUE(t->Commit().ok());
  auto lowered = LowerTraceToLockEvents(mgr.TakeTrace());
  ASSERT_TRUE(lowered.ok());
  // begin t, begin c, (create+perform+release) access, commit c,
  // release c->t, commit t, release t->U.
  ASSERT_EQ(lowered->events.size(), 9u);
  valuemap::ValueMapAlgebra alg(lowered->registry.get());
  auto s = algebra::Run(alg, std::span<const LockEvent>(lowered->events));
  ASSERT_TRUE(s.has_value());
  EXPECT_EQ(s->vmap.Get(0, kRootAction), 1) << "value drained to the root";
  EXPECT_EQ(s->vmap.PrincipalAction(0, *lowered->registry), kRootAction);
}

}  // namespace
}  // namespace rnt::txn
