#include "sim/chaos_driver.h"

#include <gtest/gtest.h>

#include <span>
#include <vector>

#include "aat/aat.h"
#include "algebra/algebra.h"
#include "faults/faults.h"
#include "orphan/orphan.h"
#include "testutil.h"

namespace rnt::sim {
namespace {

using action::ActionRegistry;
using action::Update;

faults::FaultPlan ChaoticPlan(std::uint64_t seed) {
  faults::FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = 0.3;
  plan.dup_prob = 0.25;
  plan.delay_prob = 0.25;
  plan.max_delay_rounds = 3;
  plan.crashes.push_back(faults::CrashSpec{0, /*round=*/8, /*down_for=*/4});
  plan.crashes.push_back(faults::CrashSpec{1, /*round=*/20, /*down_for=*/5});
  plan.partitions.push_back(
      faults::PartitionSpec{0, 1, /*from_round=*/5, /*until_round=*/25});
  return plan;
}

ActionRegistry MediumRegistry(std::uint64_t seed) {
  Rng rng(seed);
  testutil::RandomRegistryParams p;
  p.top_level = 3;
  p.max_children = 3;
  p.max_depth = 3;
  p.objects = 4;
  return testutil::MakeRandomRegistry(rng, p);
}

TEST(FaultInjectorTest, DeterministicFromSeed) {
  faults::FaultPlan plan = ChaoticPlan(99);
  faults::FaultInjector a(plan);
  faults::FaultInjector b(plan);
  for (int i = 0; i < 200; ++i) {
    NodeId from = static_cast<NodeId>(i % 3);
    NodeId to = static_cast<NodeId>((i + 1) % 3);
    auto va = a.OnMessage(from, to, i);
    auto vb = b.OnMessage(from, to, i);
    EXPECT_EQ(va.drop, vb.drop) << i;
    EXPECT_EQ(va.partitioned, vb.partitioned) << i;
    EXPECT_EQ(va.delay, vb.delay) << i;
    EXPECT_EQ(va.duplicate_delay, vb.duplicate_delay) << i;
  }
}

TEST(FaultInjectorTest, FixedDrawCountAcrossRates) {
  // The same seed sees the same underlying random sequence at any fault
  // rate: every call consumes a fixed number of draws, so the i-th
  // verdict of a drop=0.6 injector and a drop=0.0 injector decide from
  // the *same* random positions. Observable consequence: whenever the
  // loud injector does not drop, its delay must agree with the quiet one.
  faults::FaultPlan loud;
  loud.seed = 7;
  loud.drop_prob = 0.6;
  loud.delay_prob = 1.0;
  faults::FaultPlan quiet;
  quiet.seed = 7;
  quiet.drop_prob = 0.0;
  quiet.delay_prob = 1.0;
  faults::FaultInjector a(loud);
  faults::FaultInjector b(quiet);
  int survivors = 0;
  for (int i = 0; i < 200; ++i) {
    auto va = a.OnMessage(0, 1, i);
    auto vb = b.OnMessage(0, 1, i);
    if (!va.drop) {
      ++survivors;
      EXPECT_EQ(va.delay, vb.delay) << "call " << i;
    }
  }
  EXPECT_GT(survivors, 0);
}

TEST(FaultInjectorTest, FixedDrawSweepAcrossDropAndDelayRates) {
  // Cross-rate sweep of the fixed-draw contract with ONE seed: every
  // injector in the drop×delay grid consumes the same number of draws per
  // call, so the i-th verdict of any two injectors decides from identical
  // random positions. Two observable consequences, checked against the
  // all-delay/no-drop baseline: (1) a verdict's delay agrees with the
  // baseline whenever both roll a delay; (2) raising drop_prob can only
  // grow the set of dropped calls — a call the loud injector passes, the
  // quiet one passes too (thresholding one shared uniform draw).
  faults::FaultPlan base;
  base.seed = 1234;
  base.drop_prob = 0.0;
  base.delay_prob = 1.0;
  base.max_delay_rounds = 4;
  constexpr int kCalls = 300;
  std::vector<int> base_delay(kCalls);
  {
    faults::FaultInjector b(base);
    for (int i = 0; i < kCalls; ++i) base_delay[i] = b.OnMessage(0, 1, i).delay;
  }
  const double kDrops[] = {0.0, 0.2, 0.5, 0.8};
  const double kDelays[] = {0.0, 0.3, 1.0};
  std::vector<char> prev_dropped;  // from the next-lower drop rate
  for (double drop : kDrops) {
    std::vector<char> dropped(kCalls, 0);
    for (double delay : kDelays) {
      faults::FaultPlan plan = base;
      plan.drop_prob = drop;
      plan.delay_prob = delay;
      faults::FaultInjector inj(plan);
      for (int i = 0; i < kCalls; ++i) {
        auto v = inj.OnMessage(0, 1, i);
        if (delay == 1.0) dropped[i] = v.drop ? 1 : 0;
        if (!v.drop && v.delay > 0) {
          EXPECT_EQ(v.delay, base_delay[i])
              << "call " << i << " drop=" << drop << " delay=" << delay;
        }
      }
    }
    if (!prev_dropped.empty()) {
      for (int i = 0; i < kCalls; ++i) {
        EXPECT_LE(prev_dropped[i], dropped[i])
            << "call " << i << ": survived at a higher drop rate only";
      }
    }
    prev_dropped = std::move(dropped);
  }
}

TEST(FaultInjectorTest, ValidatePlanRejectsBadInputs) {
  faults::FaultPlan plan;
  plan.drop_prob = 1.5;
  EXPECT_EQ(faults::ValidatePlan(plan, 3).code(),
            StatusCode::kInvalidArgument);
  plan.drop_prob = 0.1;
  plan.crashes.push_back(faults::CrashSpec{9, 0, 4});
  EXPECT_EQ(faults::ValidatePlan(plan, 3).code(),
            StatusCode::kInvalidArgument);
  plan.crashes.clear();
  plan.partitions.push_back(faults::PartitionSpec{0, 1, 10, 5});
  EXPECT_EQ(faults::ValidatePlan(plan, 3).code(),
            StatusCode::kInvalidArgument);
  plan.partitions.clear();
  EXPECT_TRUE(faults::ValidatePlan(plan, 3).ok());
}

TEST(ChaosDriverTest, FaultFreeRunMatchesPlainDriver) {
  ActionRegistry reg = MediumRegistry(5);
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
  dist::DistAlgebra alg(&topo);
  auto plain = RunProgram(alg);
  ASSERT_TRUE(plain.ok()) << plain.status();
  ChaosOptions opt;  // default plan: no faults
  opt.check_invariants = true;
  auto chaos = ChaosRunProgram(alg, opt);
  ASSERT_TRUE(chaos.ok()) << chaos.status();
  EXPECT_TRUE(chaos->complete);
  EXPECT_EQ(chaos->stats.dropped_msgs, 0u);
  EXPECT_EQ(chaos->stats.crashes, 0u);
  EXPECT_EQ(chaos->stats.timeout_aborts, 0u);
  EXPECT_EQ(chaos->stats.commits, plain->stats.commits);
  EXPECT_EQ(chaos->stats.performs, plain->stats.performs);
  for (ObjectId x = 0; x < 4; ++x) {
    NodeId h = topo.HomeOfObject(x);
    const auto* mine = chaos->final_state.nodes[h].vmap.EntriesFor(x);
    const auto* theirs = plain->final_state.nodes[h].vmap.EntriesFor(x);
    ASSERT_EQ(mine == nullptr, theirs == nullptr) << "object " << x;
    if (mine != nullptr) {
      EXPECT_EQ(*mine, *theirs) << "object " << x;
    }
  }
}

TEST(ChaosDriverTest, SurvivesChaosWithInvariantsUnderFire) {
  // The acceptance scenario: 30% drop, duplication, delays, two node
  // crashes, one temporary partition — the run terminates, holds the
  // Lemma 23-26 local-consistency obligations after every round, and its
  // terminal abstract state satisfies Theorem 9 and orphan consistency.
  ActionRegistry reg = MediumRegistry(11);
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
  dist::DistAlgebra alg(&topo);
  ChaosOptions opt;
  opt.plan = ChaoticPlan(42);
  opt.check_invariants = true;
  auto run = ChaosRunProgram(alg, opt);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->complete) << run->stalls.ToString();
  EXPECT_EQ(run->stats.crashes, 2u);
  EXPECT_EQ(run->stats.recovered_nodes, 2u);
  EXPECT_GT(run->stats.dropped_msgs, 0u);
  EXPECT_GT(run->stats.duplicated_msgs, 0u);
  EXPECT_GT(run->stats.retries, 0u);
  EXPECT_TRUE(aat::IsPermDataSerializable(run->abstract.tree));
  EXPECT_TRUE(orphan::CheckOrphanViewConsistency(run->abstract.tree).ok());
}

TEST(ChaosDriverTest, EventLogIsAValidComputationOfB) {
  // The log must replay cleanly against the *un-crashed* algebra: crash
  // wipes are not events, and recovery re-enters legal states via Receive
  // of the monotone buffer, so validity of the whole sequence is exactly
  // the claim that faults were scheduled, never semantically forced.
  ActionRegistry reg = MediumRegistry(11);
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
  dist::DistAlgebra alg(&topo);
  ChaosOptions opt;
  opt.plan = ChaoticPlan(42);
  auto run = ChaosRunProgram(alg, opt);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(algebra::IsValidSequence(
      alg, std::span<const dist::DistEvent>(run->events)));
}

TEST(ChaosDriverTest, BitReproducibleFromSeed) {
  ActionRegistry reg = MediumRegistry(11);
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
  dist::DistAlgebra alg(&topo);
  ChaosOptions opt;
  opt.plan = ChaoticPlan(42);
  auto a = ChaosRunProgram(alg, opt);
  auto b = ChaosRunProgram(alg, opt);
  ASSERT_TRUE(a.ok()) << a.status();
  ASSERT_TRUE(b.ok()) << b.status();
  EXPECT_TRUE(a->stats == b->stats);
  EXPECT_TRUE(a->final_state == b->final_state);
  EXPECT_TRUE(a->events == b->events);
  // And a different seed takes a different trajectory (same program, same
  // fault rates — only the PRNG stream differs).
  ChaosOptions other = opt;
  other.plan.seed = 43;
  auto c = ChaosRunProgram(alg, other);
  ASSERT_TRUE(c.ok()) << c.status();
  EXPECT_FALSE(a->events == c->events);
}

TEST(ChaosDriverTest, TimeoutAbortsUnreachableSubtransactions) {
  // Object x0 is homed on node 2, which is permanently partitioned from
  // everyone. Both transactions need x0, can never reach it, and must be
  // timeout-aborted at their own (reachable) homes; the program still
  // terminates completely, with zero performs.
  ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId t2 = reg.NewAction(kRootAction);
  reg.NewAccess(t1, 0, Update::Add(1));
  reg.NewAccess(t2, 0, Update::Add(2));
  dist::Topology topo(
      &reg, 3, [](ObjectId) { return 2u; },
      [&](ActionId a) { return a == t1 ? 0u : 1u; });
  dist::DistAlgebra alg(&topo);
  ChaosOptions opt;
  opt.plan.partitions.push_back(faults::PartitionSpec{0, 2, 0, 1 << 20});
  opt.plan.partitions.push_back(faults::PartitionSpec{1, 2, 0, 1 << 20});
  opt.max_attempts_per_step = 4;
  opt.check_invariants = true;
  auto run = ChaosRunProgram(alg, opt);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->complete);
  EXPECT_EQ(run->stats.timeout_aborts, 2u);
  EXPECT_EQ(run->stats.performs, 0u);
  EXPECT_EQ(run->stats.commits, 0u);
  EXPECT_GT(run->stats.dropped_msgs, 0u) << "partition ate the requests";
  // The accesses are now live orphans below aborted parents; the tree is
  // still serializable and orphan-consistent (they never performed).
  EXPECT_TRUE(run->abstract.tree.IsAborted(t1));
  EXPECT_TRUE(run->abstract.tree.IsAborted(t2));
  EXPECT_EQ(orphan::Orphans(run->abstract.tree).size(), 2u);
  EXPECT_TRUE(aat::IsPermDataSerializable(run->abstract.tree));
  EXPECT_TRUE(orphan::CheckOrphanViewConsistency(run->abstract.tree).ok());
}

TEST(ChaosDriverTest, CrashRecoveryPreservesOutcome) {
  // A crash wipes node 1's volatile summary mid-run; recovery replays the
  // buffer M_1 (kept complete by the driver's WAL self-sends), so the
  // run finishes with exactly the fault-free values.
  ActionRegistry reg = MediumRegistry(23);
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
  dist::DistAlgebra alg(&topo);
  ChaosOptions faultfree;
  auto base = ChaosRunProgram(alg, faultfree);
  ASSERT_TRUE(base.ok()) << base.status();
  ASSERT_TRUE(base->complete);
  ChaosOptions opt;
  opt.plan.crashes.push_back(faults::CrashSpec{1, /*round=*/6,
                                               /*down_for=*/3});
  opt.check_invariants = true;
  auto run = ChaosRunProgram(alg, opt);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->complete) << run->stalls.ToString();
  EXPECT_EQ(run->stats.crashes, 1u);
  EXPECT_EQ(run->stats.recovered_nodes, 1u);
  EXPECT_EQ(run->stats.commits, base->stats.commits);
  EXPECT_EQ(run->stats.performs, base->stats.performs);
  for (ObjectId x = 0; x < 4; ++x) {
    NodeId h = topo.HomeOfObject(x);
    const auto* mine = run->final_state.nodes[h].vmap.EntriesFor(x);
    const auto* theirs = base->final_state.nodes[h].vmap.EntriesFor(x);
    ASSERT_EQ(mine == nullptr, theirs == nullptr) << "object " << x;
    if (mine != nullptr) {
      EXPECT_EQ(*mine, *theirs) << "object " << x;
    }
  }
}

TEST(ChaosDriverTest, PermanentCrashDegradesGracefully) {
  // Node 2 hosts transaction t1 and dies forever mid-run. t1 cannot
  // commit and cannot even be aborted (its home is gone), so its subtree
  // is abandoned — but t2, homed elsewhere, still commits, and the
  // partial result carries a stall diagnosis naming the abandoned work.
  ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId a1 = reg.NewAccess(t1, 0, Update::Add(7));
  ActionId t2 = reg.NewAction(kRootAction);
  reg.NewAccess(t2, 1, Update::Add(5));
  dist::Topology topo(
      &reg, 3, [](ObjectId x) { return static_cast<NodeId>(x % 2); },
      [&](ActionId a) { return reg.IsAncestor(t1, a) ? 2u : 0u; });
  dist::DistAlgebra alg(&topo);
  ChaosOptions opt;
  // t1 creates at node 2 (round 0) and a1 at node 2 (origin = parent's
  // home); a1 performs at node 0 after a knowledge transfer; then node 2
  // dies before t1's commit can run there.
  opt.plan.crashes.push_back(faults::CrashSpec{2, /*round=*/6,
                                               /*down_for=*/1 << 20});
  opt.max_attempts_per_step = 4;
  auto run = ChaosRunProgram(alg, opt);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_FALSE(run->complete);
  EXPECT_FALSE(run->stalls.empty()) << "diagnosis must name the stall";
  EXPECT_TRUE(run->abstract.tree.IsCommitted(t2)) << "t2 must still commit";
  EXPECT_TRUE(run->abstract.tree.IsActive(t1)) << "t1 abandoned, not aborted";
  bool names_t1 = false;
  for (const StalledAction& s : run->stalls.stalled) {
    if (s.action == t1) names_t1 = true;
  }
  EXPECT_TRUE(names_t1) << run->stalls.ToString();
  (void)a1;
}

TEST(ChaosDriverTest, StaticAbortSetStillHonored) {
  ActionRegistry reg;
  ActionId t1 = reg.NewAction(kRootAction);
  ActionId s1 = reg.NewAction(t1);
  reg.NewAccess(s1, 0, Update::Add(100));
  ActionId s2 = reg.NewAction(t1);
  reg.NewAccess(s2, 0, Update::Add(1));
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 2);
  dist::DistAlgebra alg(&topo);
  ChaosOptions opt;
  opt.abort_set = {s1};
  opt.plan.seed = 3;
  opt.plan.drop_prob = 0.2;
  opt.check_invariants = true;
  auto run = ChaosRunProgram(alg, opt);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->complete);
  EXPECT_EQ(run->stats.aborts, 1u);
  EXPECT_EQ(run->stats.performs, 1u) << "s1's access never ran";
  NodeId h = topo.HomeOfObject(0);
  EXPECT_EQ(run->final_state.nodes[h].vmap.Get(0, kRootAction), 1);
}

TEST(ChaosDriverTest, SweepManySeedsAlwaysSerializable) {
  // Property sweep: across seeds and fault rates, every terminal state
  // must satisfy Theorem 9 and orphan-view consistency, and every event
  // log must be a valid ℬ computation.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    ActionRegistry reg = MediumRegistry(seed);
    dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
    dist::DistAlgebra alg(&topo);
    ChaosOptions opt;
    opt.plan = ChaoticPlan(seed * 31 + 1);
    opt.plan.drop_prob = 0.2 + 0.05 * static_cast<double>(seed % 3);
    opt.check_invariants = true;
    auto run = ChaosRunProgram(alg, opt);
    ASSERT_TRUE(run.ok()) << run.status() << " seed " << seed;
    EXPECT_TRUE(aat::IsPermDataSerializable(run->abstract.tree))
        << "seed " << seed;
    EXPECT_TRUE(orphan::CheckOrphanViewConsistency(run->abstract.tree).ok())
        << "seed " << seed;
    EXPECT_TRUE(algebra::IsValidSequence(
        alg, std::span<const dist::DistEvent>(run->events)))
        << "seed " << seed;
  }
}

/// Message-fault plan for the concurrent buffer: drop/duplicate/delay
/// only (distinct delays reorder deliveries). Crashes and partitions are
/// exercised separately below — their triggers run on the runner's
/// logical clock rather than these round-free message faults.
faults::FaultPlan MessageChaosPlan(std::uint64_t seed) {
  faults::FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = 0.2;
  plan.dup_prob = 0.2;
  plan.delay_prob = 0.3;
  plan.max_delay_rounds = 3;
  return plan;
}

TEST(ConcurrentChaosTest, DeltaModeSurvivesDropDupReorder) {
  // Drop/duplicate/reorder injected into the *concurrent* (multi-thread)
  // buffer while delta propagation runs: dropped deltas are recovered by
  // the anti-entropy full-summary retry, duplicates are absorbed by merge
  // idempotence, and reordering is absorbed by merge commutativity. Every
  // run must finish with the sequential driver's final values and pass
  // the Theorem 9 checker.
  for (std::uint64_t seed = 0; seed < 6; ++seed) {
    ActionRegistry reg = MediumRegistry(seed * 13 + 3);
    dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
    dist::DistAlgebra alg(&topo);
    auto clean = RunProgram(alg);
    ASSERT_TRUE(clean.ok()) << clean.status() << " seed " << seed;

    ChaosOptions opt;
    opt.concurrent_buffer = true;
    opt.propagation = Propagation::kDelta;
    opt.plan = MessageChaosPlan(seed * 7 + 1);
    opt.check_invariants = true;
    auto run = ChaosRunProgram(alg, opt);
    ASSERT_TRUE(run.ok()) << run.status() << " seed " << seed;
    EXPECT_TRUE(run->complete) << run->stalls.ToString() << " seed " << seed;
    for (ObjectId x = 0; x < 4; ++x) {
      NodeId h = topo.HomeOfObject(x);
      EXPECT_EQ(run->final_state.nodes[h].vmap.Get(x, kRootAction),
                clean->final_state.nodes[h].vmap.Get(x, kRootAction))
          << "object " << x << " seed " << seed;
    }
    EXPECT_TRUE(algebra::IsValidSequence(
        alg, std::span<const dist::DistEvent>(run->events)))
        << "seed " << seed;
    EXPECT_TRUE(aat::IsPermDataSerializable(run->abstract.tree))
        << "seed " << seed;
  }
}

TEST(ConcurrentChaosTest, EagerModeSurvivesMessageChaosWithAborts) {
  ActionRegistry reg = MediumRegistry(17);
  std::set<ActionId> abort_set;
  for (ActionId a = 1; a < reg.size(); ++a) {
    if (!reg.IsAccess(a) && reg.Parent(a) != kRootAction) {
      abort_set.insert(a);
      break;
    }
  }
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
  dist::DistAlgebra alg(&topo);
  DriverOptions seq_opt;
  seq_opt.abort_set = abort_set;
  auto clean = RunProgram(alg, seq_opt);
  ASSERT_TRUE(clean.ok()) << clean.status();

  ChaosOptions opt;
  opt.concurrent_buffer = true;
  opt.propagation = Propagation::kEager;
  opt.abort_set = abort_set;
  opt.plan = MessageChaosPlan(5);
  auto run = ChaosRunProgram(alg, opt);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->complete);
  EXPECT_EQ(run->stats.aborts, abort_set.size());
  for (ObjectId x = 0; x < 4; ++x) {
    NodeId h = topo.HomeOfObject(x);
    EXPECT_EQ(run->final_state.nodes[h].vmap.Get(x, kRootAction),
              clean->final_state.nodes[h].vmap.Get(x, kRootAction));
  }
  EXPECT_TRUE(aat::IsPermDataSerializable(run->abstract.tree));
}

TEST(ConcurrentChaosTest, AcceptsAndRecoversCrashPlansOnConcurrentBuffer) {
  // The concurrent runner now takes the *full* plan: the round fields of
  // ChaoticPlan's crashes/partition are reinterpreted on the logical
  // clock, both nodes die mid-loop and are rebirthed by durable-buffer
  // replay, and the run is judged post-hoc — it must end value-equivalent
  // to the sequential driver, with a valid merged log and a serializable
  // abstract tree.
  ActionRegistry reg = MediumRegistry(2);
  dist::Topology topo = dist::Topology::RoundRobin(&reg, 3);
  dist::DistAlgebra alg(&topo);
  auto clean = RunProgram(alg);
  ASSERT_TRUE(clean.ok()) << clean.status();
  ChaosOptions opt;
  opt.concurrent_buffer = true;
  opt.plan = ChaoticPlan(1);  // includes crashes and a partition
  auto run = ChaosRunProgram(alg, opt);
  ASSERT_TRUE(run.ok()) << run.status();
  EXPECT_TRUE(run->complete) << run->stalls.ToString();
  EXPECT_EQ(run->stats.crashes, 2u);
  EXPECT_EQ(run->stats.recovered_nodes, 2u);
  for (ObjectId x = 0; x < 4; ++x) {
    NodeId h = topo.HomeOfObject(x);
    EXPECT_EQ(run->final_state.nodes[h].vmap.Get(x, kRootAction),
              clean->final_state.nodes[h].vmap.Get(x, kRootAction))
        << "object " << x;
  }
  EXPECT_TRUE(algebra::IsValidSequence(
      alg, std::span<const dist::DistEvent>(run->events)));
  EXPECT_TRUE(aat::IsPermDataSerializable(run->abstract.tree));
  EXPECT_TRUE(orphan::CheckOrphanViewConsistency(run->abstract.tree).ok());
}

TEST(ChaosDriverTest, ToFaultStatsProjectsCounters) {
  DriverStats stats;
  stats.retries = 3;
  stats.crashes = 2;
  stats.dropped_msgs = 7;
  stats.duplicated_msgs = 1;
  stats.delayed_msgs = 4;
  stats.recovered_nodes = 2;
  stats.timeout_aborts = 1;
  txn::FaultStats f = ToFaultStats(stats);
  EXPECT_EQ(f.retries, 3u);
  EXPECT_EQ(f.crashes, 2u);
  EXPECT_EQ(f.dropped_msgs, 7u);
  EXPECT_EQ(f.duplicated_msgs, 1u);
  EXPECT_EQ(f.delayed_msgs, 4u);
  EXPECT_EQ(f.recovered_nodes, 2u);
  EXPECT_EQ(f.timeout_aborts, 1u);
  EXPECT_TRUE(f.Any());
  EXPECT_NE(f.ToString().find("crashes=2"), std::string::npos);
  EXPECT_FALSE(txn::FaultStats{}.Any());
}

}  // namespace
}  // namespace rnt::sim
