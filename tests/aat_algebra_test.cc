#include "aat/aat_algebra.h"

#include <gtest/gtest.h>

#include "action/serializability.h"
#include "algebra/algebra.h"
#include "testutil.h"

namespace rnt::aat {
namespace {

using action::ActionRegistry;
using action::Update;
using algebra::Abort;
using algebra::Commit;
using algebra::Create;
using algebra::Perform;
using algebra::TreeEvent;

class AatAlgebraTest : public ::testing::Test {
 protected:
  void SetUp() override {
    t1_ = reg_.NewAction(kRootAction);
    t2_ = reg_.NewAction(kRootAction);
    a1_ = reg_.NewAccess(t1_, 0, Update::Add(1));
    a2_ = reg_.NewAccess(t2_, 0, Update::Add(2));
  }

  ActionRegistry reg_;
  ActionId t1_, t2_, a1_, a2_;
};

TEST_F(AatAlgebraTest, MossPreconditionBlocksConcurrentConflict) {
  AatAlgebra alg(&reg_);
  auto s = alg.Initial();
  for (TreeEvent e : std::vector<TreeEvent>{Create{t1_}, Create{t2_},
                                            Create{a1_}, Create{a2_}}) {
    ASSERT_TRUE(alg.Defined(s, e));
    alg.Apply(s, e);
  }
  ASSERT_TRUE(alg.Defined(s, TreeEvent{Perform{a1_, 0}}));
  alg.Apply(s, TreeEvent{Perform{a1_, 0}});
  // a1 performed inside still-active t1: a2 must wait (d12 fails for any
  // value).
  EXPECT_FALSE(alg.Defined(s, TreeEvent{Perform{a2_, 1}}));
  EXPECT_FALSE(alg.Defined(s, TreeEvent{Perform{a2_, 0}}));
  // After t1 commits, a1 is visible to a2 and the only valid value is 1.
  alg.Apply(s, TreeEvent{Commit{t1_}});
  EXPECT_FALSE(alg.Defined(s, TreeEvent{Perform{a2_, 0}})) << "(d13)";
  EXPECT_TRUE(alg.Defined(s, TreeEvent{Perform{a2_, 1}}));
}

TEST_F(AatAlgebraTest, AbortUnblocksConflictingAccess) {
  AatAlgebra alg(&reg_);
  auto s = alg.Initial();
  for (TreeEvent e : std::vector<TreeEvent>{Create{t1_}, Create{t2_},
                                            Create{a1_}, Create{a2_},
                                            Perform{a1_, 0}, Abort{t1_}}) {
    ASSERT_TRUE(alg.Defined(s, e)) << algebra::ToString(e);
    alg.Apply(s, e);
  }
  // a1's writer branch is dead: a1 no longer constrains a2 (d12 vacuous),
  // and a2 sees init value again.
  EXPECT_TRUE(alg.Defined(s, TreeEvent{Perform{a2_, 0}}));
  EXPECT_FALSE(alg.Defined(s, TreeEvent{Perform{a2_, 1}}));
}

TEST_F(AatAlgebraTest, OrphanPerformUnconstrained) {
  AatAlgebra alg(&reg_);
  auto s = alg.Initial();
  for (TreeEvent e : std::vector<TreeEvent>{Create{t1_}, Create{a1_},
                                            Abort{t1_}}) {
    ASSERT_TRUE(alg.Defined(s, e));
    alg.Apply(s, e);
  }
  // a1 is an orphan (ancestor aborted): d13 does not constrain its value.
  EXPECT_TRUE(alg.Defined(s, TreeEvent{Perform{a1_, 12345}}));
}

TEST_F(AatAlgebraTest, DeadDatastepDoesNotBlock) {
  AatAlgebra alg(&reg_);
  auto s = alg.Initial();
  for (TreeEvent e : std::vector<TreeEvent>{
           Create{t1_}, Create{t2_}, Create{a1_}, Perform{a1_, 0},
           Abort{t1_}, Create{a2_}}) {
    ASSERT_TRUE(alg.Defined(s, e));
    alg.Apply(s, e);
  }
  EXPECT_TRUE(alg.Defined(s, TreeEvent{Perform{a2_, 0}}))
      << "(d12) only quantifies over live datasteps";
}

// ---------------------------------------------------------------------
// Theorem 14 as a property: every computable level-2 state has
// perm(T) data-serializable — and, via Theorem 9 / the §3.4 oracle,
// serializable.

TEST(AatAlgebraPropertyTest, Theorem14PermAlwaysDataSerializable) {
  for (std::uint64_t seed = 0; seed < 40; ++seed) {
    Rng rng(seed);
    testutil::RandomRegistryParams p;
    p.top_level = 3;
    p.max_children = 3;
    p.max_depth = 3;
    p.objects = 2;
    ActionRegistry reg = testutil::MakeRandomRegistry(rng, p);
    AatAlgebra alg(&reg);
    auto run = algebra::RandomRun(
        alg, [](const Aat& s) { return EventCandidates(s); }, rng, 80);
    EXPECT_TRUE(IsPermDataSerializable(run.state)) << "seed " << seed;
    EXPECT_TRUE(action::IsPermSerializable(run.state)) << "seed " << seed;
  }
}

TEST(AatAlgebraPropertyTest, Lemma10InvariantsHoldOnRandomRuns) {
  for (std::uint64_t seed = 50; seed < 90; ++seed) {
    Rng rng(seed);
    ActionRegistry reg = testutil::MakeRandomRegistry(rng);
    AatAlgebra alg(&reg);
    // Check the invariant at every prefix, not just the end state.
    auto s = alg.Initial();
    for (int step = 0; step < 60; ++step) {
      std::vector<TreeEvent> enabled;
      for (auto& e : EventCandidates(s)) {
        if (alg.Defined(s, e)) enabled.push_back(e);
      }
      if (enabled.empty()) break;
      alg.Apply(s, enabled[rng.Below(enabled.size())]);
      Status st = CheckLemma10(s);
      ASSERT_TRUE(st.ok()) << st << " at seed " << seed << " step " << step;
    }
  }
}

TEST(AatAlgebraPropertyTest, ValidRunsStayValidOnReplay) {
  for (std::uint64_t seed = 200; seed < 210; ++seed) {
    Rng rng(seed);
    ActionRegistry reg = testutil::MakeRandomRegistry(rng);
    AatAlgebra alg(&reg);
    auto run = algebra::RandomRun(
        alg, [](const Aat& s) { return EventCandidates(s); }, rng, 60);
    auto replay = algebra::Run(alg, std::span<const TreeEvent>(run.events));
    ASSERT_TRUE(replay.has_value());
    EXPECT_TRUE(*replay == run.state) << "replay divergence at seed " << seed;
  }
}

}  // namespace
}  // namespace rnt::aat
