// The kill -9 harness: fork a concurrent nested-transaction workload
// against the durable engine, SIGKILL it mid-stream, restart, recover —
// ten times over one directory, compounding state. Every cycle must
// leave committed (acked) work intact, roll every in-flight tree back,
// and produce a recovered history the Theorem 9 checker accepts.
//
// Also here: the recovery-idempotence kills — SIGKILL *inside* the
// crash-idempotent Open sequence (after the fresh snapshot, before the
// WAL reset) and *between* the redo and undo phases of Recover; in both
// cases a re-recovery must land on exactly the single-recovery state.
#include <csignal>
#include <cstdint>
#include <vector>

#include <gtest/gtest.h>

#include "aat/aat.h"
#include "sim/process_chaos.h"
#include "storage/durable_engine.h"
#include "storage/recovery.h"
#include "temp_dir.h"
#include "txn/trace.h"

namespace rnt::sim {
namespace {

/// The full after-crash audit: the recovered history replays as a valid
/// computation, passes the Theorem 9 (read/write) checker, and folding
/// its permanent datasteps reproduces the recovered store value for
/// value — the committed state is exactly what some serializable
/// execution of the surviving transactions computes.
void AuditRecovery(const storage::RecoveryReport& recovery, int cycle) {
  auto replayed = txn::ReplayTrace(recovery.history);
  ASSERT_TRUE(replayed.ok()) << replayed.status() << " (cycle " << cycle
                             << ")";
  EXPECT_TRUE(aat::IsPermDataSerializableRw(replayed->tree))
      << "cycle " << cycle;
  const action::ActionTree perm = replayed->tree.Perm();
  for (const auto& [x, v] : recovery.store) {
    Value folded = action::kInitValue;
    for (ActionId step : perm.Datasteps(x)) {
      folded = perm.registry().UpdateOf(step).Apply(folded);
    }
    EXPECT_EQ(folded, v) << "object " << x << " (cycle " << cycle << ")";
  }
}

TEST(ProcessRecoveryTest, TenKillNineCyclesAllRecover) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  DurableWorkloadOptions opts;
  opts.dir = dir.path();
  opts.threads = 4;
  // Far more ops than any crash trigger: the kill always preempts
  // completion, at a different commit count (and engine state) per cycle.
  opts.ops_per_thread = 100000;
  constexpr int kCycles = 10;
  for (int cycle = 0; cycle < kCycles; ++cycle) {
    opts.seed = 101 + static_cast<std::uint64_t>(cycle);
    opts.crash.after_ops = 20 + 13 * cycle;
    auto report = RunKillRecoverCycle(opts);
    ASSERT_TRUE(report.ok()) << report.status() << " (cycle " << cycle
                             << ")";
    ASSERT_TRUE(report->killed) << "cycle " << cycle;
    // Durability: an ack is written only after the group-commit barrier,
    // so every acked op's marker increment must have survived the kill.
    ASSERT_EQ(report->acked.size(), static_cast<std::size_t>(opts.threads));
    for (int t = 0; t < opts.threads; ++t) {
      const ObjectId marker = opts.marker_base + static_cast<ObjectId>(t);
      const auto it = report->recovery.store.find(marker);
      const Value recovered = it == report->recovery.store.end() ? 0
                                                                 : it->second;
      EXPECT_GE(recovered,
                static_cast<Value>(report->acked[static_cast<std::size_t>(t)]))
          << "thread " << t << " lost acked commits (cycle " << cycle << ")";
    }
    // In-flight rollback: the harness's lingerer tree (parent + child,
    // durably logged, never committed) must be rolled back every cycle;
    // bystander workers caught mid-commit only add to the count.
    EXPECT_GE(report->recovery.undone_txns, 2u) << "cycle " << cycle;
    // The lingerer's writes must never reach the committed store.
    EXPECT_EQ(report->recovery.store.count(opts.marker_base - 1), 0u);
    EXPECT_EQ(report->recovery.store.count(opts.marker_base - 2), 0u);
    AuditRecovery(report->recovery, cycle);
  }
}

TEST(ProcessRecoveryTest, ControlCycleWithoutCrashRunsToCompletion) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  DurableWorkloadOptions opts;
  opts.dir = dir.path();
  opts.threads = 2;
  opts.ops_per_thread = 25;
  opts.seed = 7;
  // crash disabled (after_ops < 0): the child exits 0.
  auto report = RunKillRecoverCycle(opts);
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_FALSE(report->killed);
  EXPECT_EQ(report->exit_code, 0);
  // Clean shutdown: every successful commit was acked, so recovered
  // marker values equal the ack counts exactly.
  for (int t = 0; t < opts.threads; ++t) {
    const ObjectId marker = opts.marker_base + static_cast<ObjectId>(t);
    const auto it = report->recovery.store.find(marker);
    const Value recovered = it == report->recovery.store.end() ? 0
                                                               : it->second;
    EXPECT_EQ(recovered,
              static_cast<Value>(report->acked[static_cast<std::size_t>(t)]))
        << "thread " << t;
    EXPECT_EQ(report->recovery.undone_txns, 0u);
  }
  AuditRecovery(report->recovery, -1);
}

TEST(ProcessRecoveryTest, KillInsideOpenSequenceIsIdempotent) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  // Seed the directory with a raw killed workload (no recovery step
  // afterwards): snapshotless WAL state with in-flight trees.
  DurableWorkloadOptions opts;
  opts.dir = dir.path();
  opts.threads = 3;
  opts.ops_per_thread = 100000;
  opts.seed = 31;
  opts.crash.after_ops = 25;
  auto killed = RunInChild([&opts] { (void)RunDurableWorkload(opts); });
  ASSERT_TRUE(killed.ok()) << killed.status();
  ASSERT_EQ(*killed, SIGKILL);

  auto reference = storage::Recover(storage::RecoveryOptions{dir.path(), {}});
  ASSERT_TRUE(reference.ok()) << reference.status();

  // Kill 1: between the redo and undo phases. Recover is read-only, so
  // the disk is untouched and re-recovery must be bit-identical.
  auto sig = RunInChild([&dir] {
    storage::RecoveryOptions ro;
    ro.dir = dir.path();
    ro.after_redo = [] { (void)::raise(SIGKILL); };
    (void)storage::Recover(ro);
  });
  ASSERT_TRUE(sig.ok()) << sig.status();
  EXPECT_EQ(*sig, SIGKILL);
  auto after_redo_kill =
      storage::Recover(storage::RecoveryOptions{dir.path(), {}});
  ASSERT_TRUE(after_redo_kill.ok()) << after_redo_kill.status();
  EXPECT_EQ(after_redo_kill->store, reference->store);
  EXPECT_EQ(after_redo_kill->last_lsn, reference->last_lsn);

  // Kill 2: inside DurableEngine::Open, after the fresh snapshot was
  // renamed into place but before the WAL files were reset — the only
  // window where a newer snapshot coexists with the full stale WAL.
  // Stale-record skipping makes re-recovery land on the same store.
  sig = RunInChild([&dir] {
    storage::DurableEngineOptions o;
    o.fsync = false;
    o.between_snapshot_and_reset = [] { (void)::raise(SIGKILL); };
    (void)storage::DurableEngine::Open(dir.path(), o);
  });
  ASSERT_TRUE(sig.ok()) << sig.status();
  EXPECT_EQ(*sig, SIGKILL);
  auto after_open_kill =
      storage::Recover(storage::RecoveryOptions{dir.path(), {}});
  ASSERT_TRUE(after_open_kill.ok()) << after_open_kill.status();
  EXPECT_EQ(after_open_kill->store, reference->store);
  EXPECT_EQ(after_open_kill->last_lsn, reference->last_lsn);
  EXPECT_TRUE(after_open_kill->snapshot_loaded);
  // Everything below the new snapshot horizon is stale now.
  EXPECT_EQ(after_open_kill->redone_events, 0u);

  // And a full, unkilled Open completes the sequence on the same state.
  storage::DurableEngineOptions o;
  o.fsync = false;
  auto engine = storage::DurableEngine::Open(dir.path(), o);
  ASSERT_TRUE(engine.ok()) << engine.status();
  EXPECT_EQ((*engine)->recovery().store, reference->store);
}

}  // namespace
}  // namespace rnt::sim
