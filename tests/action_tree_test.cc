#include "action/action_tree.h"

#include <gtest/gtest.h>

#include "testutil.h"

namespace rnt::action {
namespace {

using testutil::MakeRandomRegistry;
using testutil::RandomTreeState;

class ActionTreeTest : public ::testing::Test {
 protected:
  /// U -> {t1, t2}; t1 -> {s, a1(x0 write 5)}; s -> {a2(x0 read)};
  /// t2 -> {a3(x0 add 2)}.
  void SetUp() override {
    t1_ = reg_.NewAction(kRootAction);
    t2_ = reg_.NewAction(kRootAction);
    s_ = reg_.NewAction(t1_);
    a1_ = reg_.NewAccess(t1_, 0, Update::Write(5));
    a2_ = reg_.NewAccess(s_, 0, Update::Read());
    a3_ = reg_.NewAccess(t2_, 0, Update::Add(2));
  }

  ActionRegistry reg_;
  ActionId t1_, t2_, s_, a1_, a2_, a3_;
};

TEST_F(ActionTreeTest, InitialTreeIsTrivial) {
  ActionTree t(&reg_);
  EXPECT_EQ(t.size(), 1u);
  EXPECT_TRUE(t.Contains(kRootAction));
  EXPECT_TRUE(t.IsActive(kRootAction));
}

TEST_F(ActionTreeTest, CreateRequiresParentPresent) {
  ActionTree t(&reg_);
  EXPECT_FALSE(t.CanCreate(s_)) << "parent t1 not yet in tree";
  EXPECT_TRUE(t.CanCreate(t1_)) << "root is present and uncommitted";
  t.ApplyCreate(t1_);
  EXPECT_TRUE(t.CanCreate(s_));
}

TEST_F(ActionTreeTest, CreateRejectsDuplicates) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  EXPECT_FALSE(t.CanCreate(t1_));
}

TEST_F(ActionTreeTest, CreateRejectsRootAndInvalid) {
  ActionTree t(&reg_);
  EXPECT_FALSE(t.CanCreate(kRootAction));
  EXPECT_FALSE(t.CanCreate(9999));
}

TEST_F(ActionTreeTest, CreateUnderCommittedParentForbidden) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCommit(t1_);
  EXPECT_FALSE(t.CanCreate(s_));
}

TEST_F(ActionTreeTest, CreateUnderAbortedParentAllowed) {
  // The paper explicitly allows creation under an aborted parent (the two
  // events may occur at different nodes of a distributed system).
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyAbort(t1_);
  EXPECT_TRUE(t.CanCreate(s_));
}

TEST_F(ActionTreeTest, CommitRequiresChildrenDone) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(s_);
  EXPECT_FALSE(t.CanCommit(t1_)) << "child s is active";
  t.ApplyAbort(s_);
  EXPECT_TRUE(t.CanCommit(t1_));
}

TEST_F(ActionTreeTest, CommitOnlyConsidersActivatedChildren) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  // a1_ and s_ exist in the universal tree but were never activated: the
  // precondition quantifies over children(A) ∩ vertices_T only.
  EXPECT_TRUE(t.CanCommit(t1_));
}

TEST_F(ActionTreeTest, CommitRejectsAccessesAndNonActive) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(a1_);
  EXPECT_FALSE(t.CanCommit(a1_)) << "accesses commit via perform";
  t.ApplyCreate(t2_);
  t.ApplyAbort(t2_);
  EXPECT_FALSE(t.CanCommit(t2_));
  EXPECT_FALSE(t.CanCommit(kRootAction));
}

TEST_F(ActionTreeTest, AbortAnyActiveAction) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(a1_);
  EXPECT_TRUE(t.CanAbort(t1_));
  EXPECT_TRUE(t.CanAbort(a1_)) << "level-1 abort applies to accesses too";
  t.ApplyAbort(a1_);
  EXPECT_FALSE(t.CanAbort(a1_));
  EXPECT_FALSE(t.CanAbort(kRootAction));
}

TEST_F(ActionTreeTest, PerformCommitsAndLabels) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(a1_);
  EXPECT_TRUE(t.CanPerform(a1_));
  EXPECT_FALSE(t.CanPerform(t1_)) << "only accesses perform";
  t.ApplyPerform(a1_, 0);
  EXPECT_TRUE(t.IsCommitted(a1_));
  EXPECT_TRUE(t.HasLabel(a1_));
  EXPECT_EQ(t.LabelOf(a1_), 0);
  EXPECT_FALSE(t.CanPerform(a1_)) << "perform is once";
  ASSERT_EQ(t.Datasteps(0).size(), 1u);
  EXPECT_EQ(t.Datasteps(0)[0], a1_);
}

TEST_F(ActionTreeTest, ChildrenInTracksActivation) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(s_);
  t.ApplyCreate(a1_);
  ASSERT_EQ(t.ChildrenIn(t1_).size(), 2u);
  EXPECT_EQ(t.ChildrenIn(t1_)[0], s_);
  EXPECT_EQ(t.ChildrenIn(t1_)[1], a1_);
  EXPECT_TRUE(t.ChildrenIn(t2_).empty());
}

// ---------------------------------------------------------------------
// Visibility (paper §3.3).

TEST_F(ActionTreeTest, AncestorsAreVisible) {
  // Lemma 5a: B ∈ desc(A) => A ∈ visible(B).
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(s_);
  t.ApplyCreate(a2_);
  EXPECT_TRUE(t.IsVisibleTo(t1_, a2_));
  EXPECT_TRUE(t.IsVisibleTo(kRootAction, a2_));
  EXPECT_TRUE(t.IsVisibleTo(a2_, a2_));
}

TEST_F(ActionTreeTest, ActiveSubtransactionMasksItsDescendants) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(s_);
  t.ApplyCreate(a2_);
  t.ApplyPerform(a2_, 0);
  // a2 committed but s still active: a2 visible to s's descendants and to
  // s itself, but not to t1 or beyond.
  EXPECT_TRUE(t.IsVisibleTo(a2_, s_));
  EXPECT_FALSE(t.IsVisibleTo(a2_, t1_));
  EXPECT_FALSE(t.IsVisibleTo(a2_, kRootAction));
  t.ApplyCommit(s_);
  EXPECT_TRUE(t.IsVisibleTo(a2_, t1_));
  EXPECT_FALSE(t.IsVisibleTo(a2_, kRootAction)) << "t1 still active";
}

TEST_F(ActionTreeTest, VisibilityCrossesSubtreesOnlyWhenCommittedHighEnough) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(a1_);
  t.ApplyPerform(a1_, 0);
  t.ApplyCreate(t2_);
  t.ApplyCreate(a3_);
  // a1 committed inside active t1: invisible to t2's subtree.
  EXPECT_FALSE(t.IsVisibleTo(a1_, a3_));
  t.ApplyCommit(t1_);
  EXPECT_TRUE(t.IsVisibleTo(a1_, a3_));
}

TEST_F(ActionTreeTest, AbortedActionsAreNotVisibleOutside) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(a1_);
  t.ApplyPerform(a1_, 0);
  t.ApplyAbort(t1_);
  t.ApplyCreate(t2_);
  EXPECT_FALSE(t.IsVisibleTo(a1_, t2_));
  // ...but still visible inside the aborted subtree (visibility is about
  // commitment of intermediate ancestors, not liveness).
  EXPECT_TRUE(t.IsVisibleTo(a1_, t1_));
}

TEST_F(ActionTreeTest, VisibleDatastepsFiltersByObjectAndVisibility) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(a1_);
  t.ApplyPerform(a1_, 0);
  t.ApplyCreate(t2_);
  t.ApplyCreate(a3_);
  t.ApplyPerform(a3_, 0);
  // From t2's viewpoint: a3 yes (own subtree), a1 no (t1 active).
  std::vector<ActionId> vis = t.VisibleDatasteps(t2_, 0);
  ASSERT_EQ(vis.size(), 1u);
  EXPECT_EQ(vis[0], a3_);
}

// ---------------------------------------------------------------------
// Liveness (paper §3.3) and Lemma 6.

TEST_F(ActionTreeTest, LivenessFollowsAncestry) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(s_);
  t.ApplyCreate(a2_);
  EXPECT_TRUE(t.IsLive(a2_));
  t.ApplyAbort(t1_);
  EXPECT_FALSE(t.IsLive(a2_)) << "orphaned by ancestor abort";
  EXPECT_FALSE(t.IsLive(s_));
  EXPECT_FALSE(t.IsLive(t1_));
  EXPECT_FALSE(t.Contains(t2_)) << "t2 was never activated in this test";
}

TEST(ActionTreePropertyTest, Lemma5VisibilityProperties) {
  // Property sweep of Lemma 5(b)-(e) over random trees.
  for (std::uint64_t seed = 0; seed < 20; ++seed) {
    Rng rng(seed);
    ActionRegistry reg = MakeRandomRegistry(rng);
    ActionTree t = RandomTreeState(reg, rng, 40);
    const auto& verts = t.Vertices();
    for (ActionId a : verts) {
      for (ActionId b : verts) {
        // 5b: A ∈ visible(B) iff A ∈ visible(lca(A,B)).
        EXPECT_EQ(t.IsVisibleTo(a, b), t.IsVisibleTo(a, reg.Lca(a, b)))
            << "seed " << seed << " a=" << a << " b=" << b;
        // 5d: A ∈ desc(B) and C ∈ visible(B) => C ∈ visible(A).
        for (ActionId c : verts) {
          if (reg.IsAncestor(b, a) && t.IsVisibleTo(c, b)) {
            EXPECT_TRUE(t.IsVisibleTo(c, a))
                << "Lemma 5d violated, seed " << seed;
          }
          // 5c: transitivity.
          if (t.IsVisibleTo(a, b) && t.IsVisibleTo(b, c)) {
            EXPECT_TRUE(t.IsVisibleTo(a, c))
                << "Lemma 5c violated, seed " << seed;
          }
          // 5e: A ∈ desc(B), A ∈ visible(C) => B ∈ visible(C).
          if (reg.IsAncestor(b, a) && t.IsVisibleTo(a, c)) {
            EXPECT_TRUE(t.IsVisibleTo(b, c))
                << "Lemma 5e violated, seed " << seed;
          }
        }
      }
    }
  }
}

TEST(ActionTreePropertyTest, Lemma6VisibleFromLiveIsLive) {
  for (std::uint64_t seed = 100; seed < 130; ++seed) {
    Rng rng(seed);
    ActionRegistry reg = MakeRandomRegistry(rng);
    ActionTree t = RandomTreeState(reg, rng, 40);
    for (ActionId a : t.Vertices()) {
      if (!t.IsLive(a)) continue;
      for (ActionId b : t.Vertices()) {
        if (t.IsVisibleTo(b, a)) {
          EXPECT_TRUE(t.IsLive(b)) << "Lemma 6 violated, seed " << seed;
        }
      }
    }
  }
}

// ---------------------------------------------------------------------
// perm(T) (paper §3.4) and Lemma 7.

TEST_F(ActionTreeTest, PermKeepsOnlyTopCommittedWork) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(a1_);
  t.ApplyPerform(a1_, 0);
  t.ApplyCommit(t1_);
  t.ApplyCreate(t2_);
  t.ApplyCreate(a3_);
  t.ApplyPerform(a3_, 5);
  // t2 is still active: its subtree is not permanent yet.
  ActionTree perm = t.Perm();
  EXPECT_TRUE(perm.Contains(t1_));
  EXPECT_TRUE(perm.Contains(a1_));
  EXPECT_FALSE(perm.Contains(t2_));
  EXPECT_FALSE(perm.Contains(a3_));
  EXPECT_EQ(perm.LabelOf(a1_), 0);
  ASSERT_EQ(perm.Datasteps(0).size(), 1u);
}

TEST_F(ActionTreeTest, PermDropsAbortedSubtrees) {
  ActionTree t(&reg_);
  t.ApplyCreate(t1_);
  t.ApplyCreate(a1_);
  t.ApplyPerform(a1_, 0);
  t.ApplyAbort(t1_);
  ActionTree perm = t.Perm();
  EXPECT_EQ(perm.size(), 1u) << "only U remains";
}

TEST(ActionTreePropertyTest, Lemma7PermVerticesMutuallyVisible) {
  for (std::uint64_t seed = 200; seed < 230; ++seed) {
    Rng rng(seed);
    ActionRegistry reg = MakeRandomRegistry(rng);
    ActionTree t = RandomTreeState(reg, rng, 50);
    ActionTree perm = t.Perm();
    for (ActionId a : perm.Vertices()) {
      for (ActionId b : perm.Vertices()) {
        EXPECT_TRUE(perm.IsVisibleTo(b, a))
            << "Lemma 7 violated, seed " << seed;
      }
    }
  }
}

TEST(ActionTreePropertyTest, PermIsIdempotent) {
  for (std::uint64_t seed = 300; seed < 320; ++seed) {
    Rng rng(seed);
    ActionRegistry reg = MakeRandomRegistry(rng);
    ActionTree t = RandomTreeState(reg, rng, 50);
    ActionTree p1 = t.Perm();
    ActionTree p2 = p1.Perm();
    EXPECT_TRUE(p1 == p2) << "perm(perm(T)) != perm(T), seed " << seed;
  }
}

TEST(ActionTreePropertyTest, PermClosedUnderParent) {
  for (std::uint64_t seed = 400; seed < 420; ++seed) {
    Rng rng(seed);
    ActionRegistry reg = MakeRandomRegistry(rng);
    ActionTree t = RandomTreeState(reg, rng, 50);
    ActionTree perm = t.Perm();
    for (ActionId a : perm.Vertices()) {
      if (a == kRootAction) continue;
      EXPECT_TRUE(perm.Contains(reg.Parent(a)))
          << "Lemma 5e closure violated, seed " << seed;
    }
  }
}

TEST_F(ActionTreeTest, EqualityDetectsStatusAndLabelDiffs) {
  ActionTree t(&reg_), u(&reg_);
  EXPECT_TRUE(t == u);
  t.ApplyCreate(t1_);
  EXPECT_FALSE(t == u);
  u.ApplyCreate(t1_);
  EXPECT_TRUE(t == u);
  t.ApplyCommit(t1_);
  u.ApplyAbort(t1_);
  EXPECT_FALSE(t == u);
}

}  // namespace
}  // namespace rnt::action
