// DurableEngine: commit durability across clean restarts, nested-tree
// recovery semantics, checkpointing, recovered-history validity under
// the Theorem 9 checker, and the independence of recovery from the
// number of times it runs.
//
// Crash simulation without kill -9 (that harness lives in
// process_recovery_test.cc): after barriering the WAL we *freeze* the
// storage directory — byte-copy it into a second temp dir — while
// in-flight transactions are still open, then shut the engine down
// cleanly. The frozen copy is exactly the disk image a crash at that
// instant would have left (the abort records the clean shutdown emits
// land only in the original), and the process stays leak-free for the
// ASan durability preset.
#include <memory>
#include <string>

#include <unistd.h>

#include <gtest/gtest.h>

#include "aat/aat.h"
#include "storage/durable_engine.h"
#include "storage/file_io.h"
#include "storage/log_reader.h"
#include "storage/recovery.h"
#include "storage/snapshot.h"
#include "temp_dir.h"
#include "txn/trace.h"

namespace rnt::storage {
namespace {

using action::Update;

DurableEngineOptions FastOptions() {
  DurableEngineOptions opts;
  opts.group_commit_interval = std::chrono::milliseconds(1);
  // Page-cache durability is what the process-level fault model needs;
  // keeps the unit tests fast.
  opts.fsync = false;
  return opts;
}

void CopyFile(const std::string& src, const std::string& dst) {
  auto bytes = ReadFileBytes(src);
  ASSERT_TRUE(bytes.ok()) << bytes.status();
  auto fd = OpenForAppend(dst, /*truncate=*/true);
  ASSERT_TRUE(fd.ok()) << fd.status();
  ASSERT_TRUE(WriteAll(*fd, bytes->data(), bytes->size(), dst).ok());
  ASSERT_EQ(::close(*fd), 0);
}

/// Byte-copies the storage directory (snapshot, if any, plus every WAL
/// file) — the crash-point disk image.
void FreezeDir(const std::string& src, const std::string& dst) {
  const std::string snap = src + "/" + SnapshotFileName();
  if (FileExists(snap)) CopyFile(snap, dst + "/" + SnapshotFileName());
  for (const std::string& path : ListWalFiles(src)) {
    CopyFile(path, dst + path.substr(src.size()));
  }
}

TEST(DurableEngineTest, FreshDirectoryOpensEmpty) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  auto eng = DurableEngine::Open(dir.path(), FastOptions());
  ASSERT_TRUE(eng.ok()) << eng.status();
  EXPECT_FALSE((*eng)->recovery().snapshot_loaded);
  EXPECT_EQ((*eng)->recovery().last_lsn, 0u);
  EXPECT_EQ((*eng)->ReadCommitted(0), 0);
}

TEST(DurableEngineTest, CommittedStateSurvivesReopen) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  {
    auto eng = DurableEngine::Open(dir.path(), FastOptions());
    ASSERT_TRUE(eng.ok()) << eng.status();
    auto t = (*eng)->Begin();
    ASSERT_TRUE(t->Put(1, 10).ok());
    ASSERT_TRUE(t->Apply(2, Update::Add(5)).ok());
    ASSERT_TRUE(t->Commit().ok());
    auto t2 = (*eng)->Begin();
    ASSERT_TRUE(t2->Apply(1, Update::MulAdd(3, 1)).ok());  // 10*3+1 = 31
    ASSERT_TRUE(t2->Commit().ok());
    // No checkpoint, no clean shutdown protocol: reopen must recover
    // everything from the WAL alone.
  }
  auto eng = DurableEngine::Open(dir.path(), FastOptions());
  ASSERT_TRUE(eng.ok()) << eng.status();
  EXPECT_EQ((*eng)->ReadCommitted(1), 31);
  EXPECT_EQ((*eng)->ReadCommitted(2), 5);
  EXPECT_EQ((*eng)->recovery().committed_top, 2u);
  EXPECT_EQ((*eng)->recovery().undone_txns, 0u);
}

TEST(DurableEngineTest, NestedTreesRecoverWithSubtransactionSemantics) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  {
    auto eng = DurableEngine::Open(dir.path(), FastOptions());
    ASSERT_TRUE(eng.ok()) << eng.status();
    auto t = (*eng)->Begin();
    {
      auto c1 = t->BeginChild();
      ASSERT_TRUE(c1.ok());
      ASSERT_TRUE((*c1)->Put(1, 100).ok());
      ASSERT_TRUE((*c1)->Commit().ok());  // merges into parent
    }
    {
      auto c2 = t->BeginChild();
      ASSERT_TRUE(c2.ok());
      ASSERT_TRUE((*c2)->Put(2, 200).ok());
      ASSERT_TRUE((*c2)->Abort().ok());  // discarded
    }
    ASSERT_TRUE(t->Commit().ok());
  }
  auto eng = DurableEngine::Open(dir.path(), FastOptions());
  ASSERT_TRUE(eng.ok()) << eng.status();
  // The committed child's write survives through the parent; the
  // aborted child's does not.
  EXPECT_EQ((*eng)->ReadCommitted(1), 100);
  EXPECT_EQ((*eng)->ReadCommitted(2), 0);
}

TEST(DurableEngineTest, InFlightTreeIsRolledBackOnRecovery) {
  rnt::testing::TempDir dir;
  rnt::testing::TempDir frozen;
  ASSERT_TRUE(dir.ok() && frozen.ok());
  {
    auto eng = DurableEngine::Open(dir.path(), FastOptions());
    ASSERT_TRUE(eng.ok()) << eng.status();
    auto committed = (*eng)->Begin();
    ASSERT_TRUE(committed->Put(1, 7).ok());
    ASSERT_TRUE(committed->Commit().ok());
    auto in_flight = (*eng)->Begin();
    ASSERT_TRUE(in_flight->Put(2, 9).ok());
    auto child = in_flight->BeginChild();
    ASSERT_TRUE(child.ok());
    ASSERT_TRUE((*child)->Put(3, 11).ok());
    // Flush the in-flight records, then freeze: the copy is the disk
    // image of a crash here, before any abort record exists.
    ASSERT_TRUE((*eng)->wal_health().ok());
    FreezeDir(dir.path(), frozen.path());
    ASSERT_TRUE((*child)->Abort().ok());
    ASSERT_TRUE(in_flight->Abort().ok());
  }
  auto eng = DurableEngine::Open(frozen.path(), FastOptions());
  ASSERT_TRUE(eng.ok()) << eng.status();
  EXPECT_EQ((*eng)->ReadCommitted(1), 7);
  EXPECT_EQ((*eng)->ReadCommitted(2), 0);
  EXPECT_EQ((*eng)->ReadCommitted(3), 0);
  EXPECT_EQ((*eng)->recovery().undone_txns, 2u);
}

TEST(DurableEngineTest, RecoveredHistoryPassesTheorem9Checker) {
  rnt::testing::TempDir dir;
  rnt::testing::TempDir frozen;
  ASSERT_TRUE(dir.ok() && frozen.ok());
  {
    auto eng = DurableEngine::Open(dir.path(), FastOptions());
    ASSERT_TRUE(eng.ok()) << eng.status();
    for (int round = 0; round < 3; ++round) {
      auto t = (*eng)->Begin();
      ASSERT_TRUE(t->Apply(0, Update::Add(1)).ok());
      auto c = t->BeginChild();
      ASSERT_TRUE(c.ok());
      ASSERT_TRUE((*c)->Apply(1, Update::MulAdd(2, round)).ok());
      ASSERT_TRUE((*c)->Commit().ok());
      ASSERT_TRUE(t->Commit().ok());
    }
  }
  // Second incarnation: more work on top of the preloaded store, then
  // an in-flight transaction at "crash" (freeze) time.
  {
    auto eng = DurableEngine::Open(dir.path(), FastOptions());
    ASSERT_TRUE(eng.ok()) << eng.status();
    auto t = (*eng)->Begin();
    ASSERT_TRUE(t->Apply(0, Update::Add(10)).ok());
    ASSERT_TRUE(t->Commit().ok());
    auto open_txn = (*eng)->Begin();
    ASSERT_TRUE(open_txn->Put(5, 55).ok());
    ASSERT_TRUE((*eng)->wal_health().ok());
    FreezeDir(dir.path(), frozen.path());
    ASSERT_TRUE(open_txn->Abort().ok());
  }
  auto report = Recover(RecoveryOptions{frozen.path(), {}});
  ASSERT_TRUE(report.ok()) << report.status();
  EXPECT_EQ(report->undone_txns, 1u);
  // The recovered history (initializer txn + durable prefix + synthetic
  // aborts) replays as a valid computation...
  auto replayed = txn::ReplayTrace(report->history);
  ASSERT_TRUE(replayed.ok()) << replayed.status();
  // ...accepted by the Theorem 9 checker (read/write lock rules).
  EXPECT_TRUE(aat::IsPermDataSerializableRw(replayed->tree));
  // Value equivalence, independently derived: folding each object's
  // permanent datasteps must reproduce the recovered store.
  const action::ActionTree perm = replayed->tree.Perm();
  for (const auto& [x, v] : report->store) {
    Value folded = action::kInitValue;
    for (ActionId step : perm.Datasteps(x)) {
      folded = perm.registry().UpdateOf(step).Apply(folded);
    }
    EXPECT_EQ(folded, v) << "object " << x;
  }
}

TEST(DurableEngineTest, RepeatedRecoveryIsIdempotent) {
  rnt::testing::TempDir dir;
  rnt::testing::TempDir frozen;
  ASSERT_TRUE(dir.ok() && frozen.ok());
  {
    auto eng = DurableEngine::Open(dir.path(), FastOptions());
    ASSERT_TRUE(eng.ok()) << eng.status();
    auto t = (*eng)->Begin();
    ASSERT_TRUE(t->Put(1, 42).ok());
    ASSERT_TRUE(t->Commit().ok());
    auto open_txn = (*eng)->Begin();
    ASSERT_TRUE(open_txn->Put(2, 43).ok());
    ASSERT_TRUE((*eng)->wal_health().ok());
    FreezeDir(dir.path(), frozen.path());
    ASSERT_TRUE(open_txn->Abort().ok());
  }
  // Recover is read-only: run it thrice, identical reports.
  auto r1 = Recover(RecoveryOptions{frozen.path(), {}});
  auto r2 = Recover(RecoveryOptions{frozen.path(), {}});
  auto r3 = Recover(RecoveryOptions{frozen.path(), {}});
  ASSERT_TRUE(r1.ok() && r2.ok() && r3.ok());
  EXPECT_EQ(r1->store, r2->store);
  EXPECT_EQ(r2->store, r3->store);
  EXPECT_EQ(r1->last_lsn, r3->last_lsn);
  EXPECT_EQ(r1->history.events.size(), r3->history.events.size());
  EXPECT_EQ(r1->undone_txns, 1u);
  EXPECT_EQ(r3->undone_txns, 1u);
}

TEST(DurableEngineTest, CheckpointResetsWalAndPreservesState) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  {
    auto eng = DurableEngine::Open(dir.path(), FastOptions());
    ASSERT_TRUE(eng.ok()) << eng.status();
    for (int i = 0; i < 10; ++i) {
      auto t = (*eng)->Begin();
      ASSERT_TRUE(t->Apply(0, Update::Add(1)).ok());
      ASSERT_TRUE(t->Commit().ok());
    }
    ASSERT_TRUE((*eng)->Checkpoint().ok());
    // Post-checkpoint work lands in the reset WAL.
    auto t = (*eng)->Begin();
    ASSERT_TRUE(t->Apply(0, Update::Add(100)).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  auto eng = DurableEngine::Open(dir.path(), FastOptions());
  ASSERT_TRUE(eng.ok()) << eng.status();
  EXPECT_EQ((*eng)->ReadCommitted(0), 110);
  // Only the post-checkpoint transaction was replayed from the log.
  EXPECT_EQ((*eng)->recovery().committed_top, 1u);
  EXPECT_TRUE((*eng)->recovery().snapshot_loaded);
}

TEST(DurableEngineTest, GlobalMutexEngineIsDurableToo) {
  rnt::testing::TempDir dir;
  ASSERT_TRUE(dir.ok());
  DurableEngineOptions opts = FastOptions();
  opts.engine.mode = txn::EngineMode::kGlobalMutex;
  {
    auto eng = DurableEngine::Open(dir.path(), opts);
    ASSERT_TRUE(eng.ok()) << eng.status();
    auto t = (*eng)->Begin();
    ASSERT_TRUE(t->Put(9, 99).ok());
    ASSERT_TRUE(t->Commit().ok());
  }
  auto eng = DurableEngine::Open(dir.path(), opts);
  ASSERT_TRUE(eng.ok()) << eng.status();
  EXPECT_EQ((*eng)->ReadCommitted(9), 99);
}

}  // namespace
}  // namespace rnt::storage
