// Experiment E7 (DESIGN.md): the read/write extension the paper defers
// to future work (§10) vs the single-mode variant it proves.
//
// Single-mode locking treats every access as exclusive, so even pure
// readers serialize. With read/write modes, sibling readers share. The
// gap should therefore grow with the read fraction and with worker count
// — and vanish for write-only workloads, where the two lock managers
// behave identically.

#include <benchmark/benchmark.h>

#include "txn/transaction_manager.h"
#include "workload/workload.h"

namespace {

using rnt::workload::Params;
using rnt::workload::Result;
using rnt::workload::RunMixed;

Params MakeParams(double read_fraction) {
  Params p;
  p.num_objects = 12;  // hot set: conflicts are common
  p.zipf_theta = 0.6;
  p.children_per_txn = 3;
  p.accesses_per_child = 3;
  p.read_fraction = read_fraction;
  p.work_ns_per_access = 20000;
  return p;
}

constexpr int kWorkers = 4;
constexpr int kTxnsPerWorker = 30;

void Run(benchmark::State& state, bool single_mode) {
  double read_fraction = static_cast<double>(state.range(0)) / 100.0;
  Params p = MakeParams(read_fraction);
  Result total;
  std::uint64_t waits = 0, deadlocks = 0, runs = 0;
  for (auto _ : state) {
    rnt::txn::TransactionManager::Options opt;
    opt.single_mode_locks = single_mode;
    rnt::txn::TransactionManager engine(opt);
    total.MergeFrom(RunMixed(engine, p, kWorkers, kTxnsPerWorker, 31));
    auto stats = engine.stats();
    waits += stats.lock_waits;
    deadlocks += stats.deadlock_aborts;
    ++runs;
  }
  state.counters["txn_per_s"] = benchmark::Counter(
      static_cast<double>(total.committed), benchmark::Counter::kIsRate);
  state.counters["lock_waits"] =
      static_cast<double>(waits) / static_cast<double>(runs);
  state.counters["deadlock_aborts"] =
      static_cast<double>(deadlocks) / static_cast<double>(runs);
}

void BM_ReadWriteLocks(benchmark::State& state) { Run(state, false); }
void BM_SingleModeLocks(benchmark::State& state) { Run(state, true); }

// Read fraction sweep: 0% (pure writes) to 95%.
BENCHMARK(BM_ReadWriteLocks)
    ->Arg(0)
    ->Arg(50)
    ->Arg(80)
    ->Arg(95)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);
BENCHMARK(BM_SingleModeLocks)
    ->Arg(0)
    ->Arg(50)
    ->Arg(80)
    ->Arg(95)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

}  // namespace

BENCHMARK_MAIN();
