// Experiment E5 (DESIGN.md): the distributed algorithm's overhead is
// knowledge propagation (paper §9) — action summaries moving through the
// message buffer. The algebra leaves the propagation policy completely
// free (any sub-summary, any time); this bench quantifies the three
// policies as the cluster grows:
//   lazy  — ship a full summary only when a pending step needs it;
//   eager — broadcast the doer's full summary after every event;
//   delta — lazy sync points, but ship only the entries new since the
//           last send to that peer (per-peer frontiers).
//
// Experiment E12 (EXPERIMENTS.md): `--sweep_json` runs the cluster sweep
// k = 1/2/4/8 for all three policies on the sequential driver plus the
// multi-threaded ParallelRunner (delta and eager arms), checks every
// parallel final state against the sequential driver's, and emits one
// JSON object (committed as bench/e12_distributed.json).

#include <benchmark/benchmark.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <vector>

#include "common/random.h"
#include "sim/dist_driver.h"
#include "sim/parallel_runner.h"

namespace {

using rnt::ActionId;
using rnt::NodeId;
using rnt::ObjectId;

/// A cross-node workload: `tops` transactions, each with two
/// subtransactions touching a private object and a shared object.
void BuildProgram(rnt::action::ActionRegistry& reg, int tops, int objects,
                  std::uint64_t seed) {
  rnt::Rng rng(seed);
  for (int t = 0; t < tops; ++t) {
    ActionId top = reg.NewAction(rnt::kRootAction);
    for (int c = 0; c < 2; ++c) {
      ActionId sub = reg.NewAction(top);
      reg.NewAccess(sub, static_cast<ObjectId>(rng.Below(objects)),
                    rnt::action::Update::Add(1));
      reg.NewAccess(sub, static_cast<ObjectId>(rng.Below(objects)),
                    rnt::action::Update::Read());
    }
  }
}

constexpr int kTops = 12;
constexpr int kObjects = 8;
constexpr std::uint64_t kSeed = 5;

void RunDriver(benchmark::State& state, rnt::sim::Propagation prop) {
  NodeId k = static_cast<NodeId>(state.range(0));
  rnt::action::ActionRegistry reg;
  BuildProgram(reg, kTops, kObjects, kSeed);
  rnt::dist::Topology topo = rnt::dist::Topology::RoundRobin(&reg, k);
  rnt::dist::DistAlgebra alg(&topo);
  rnt::sim::DriverOptions opt;
  opt.propagation = prop;
  rnt::sim::DriverStats last{};
  for (auto _ : state) {
    auto run = rnt::sim::RunProgram(alg, opt);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    last = run->stats;
    benchmark::DoNotOptimize(run->final_state);
  }
  state.counters["messages"] = static_cast<double>(last.messages);
  state.counters["node_events"] = static_cast<double>(last.node_events);
  state.counters["summary_entries"] =
      static_cast<double>(last.summary_entries);
  state.counters["msgs_per_event"] =
      last.node_events == 0
          ? 0.0
          : static_cast<double>(last.messages) /
                static_cast<double>(last.node_events);
}

void BM_DistLazy(benchmark::State& state) {
  RunDriver(state, rnt::sim::Propagation::kLazy);
}
void BM_DistEager(benchmark::State& state) {
  RunDriver(state, rnt::sim::Propagation::kEager);
}
void BM_DistDelta(benchmark::State& state) {
  RunDriver(state, rnt::sim::Propagation::kDelta);
}

void BM_DistParallel(benchmark::State& state) {
  NodeId k = static_cast<NodeId>(state.range(0));
  rnt::action::ActionRegistry reg;
  BuildProgram(reg, kTops, kObjects, kSeed);
  rnt::dist::Topology topo = rnt::dist::Topology::RoundRobin(&reg, k);
  rnt::dist::DistAlgebra alg(&topo);
  rnt::sim::ParallelOptions opt;
  opt.record_events = false;  // wall-clock mode
  rnt::sim::DriverStats last{};
  for (auto _ : state) {
    auto run = rnt::sim::RunParallel(alg, opt);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    last = run->stats;
    benchmark::DoNotOptimize(run->final_state);
  }
  state.counters["messages"] = static_cast<double>(last.messages);
  state.counters["summary_entries"] =
      static_cast<double>(last.summary_entries);
}

BENCHMARK(BM_DistLazy)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_DistEager)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_DistDelta)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_DistParallel)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

// ---------------------------------------------------------------------
// E12 sweep.

struct Cell {
  rnt::sim::DriverStats stats;
  double wall_ms = 0.0;
  bool equivalent = true;
};

double MedianWallMs(const std::vector<double>& samples) {
  std::vector<double> s = samples;
  std::sort(s.begin(), s.end());
  return s[s.size() / 2];
}

/// One sequential-driver cell: stats are deterministic; wall-clock is the
/// median of `reps` runs.
Cell RunSeqCell(const rnt::dist::DistAlgebra& alg, rnt::sim::Propagation prop,
                int reps) {
  Cell cell;
  std::vector<double> wall;
  for (int r = 0; r < reps; ++r) {
    rnt::sim::DriverOptions opts;
    opts.propagation = prop;
    auto t0 = std::chrono::steady_clock::now();
    auto run = rnt::sim::RunProgram(alg, opts);
    auto t1 = std::chrono::steady_clock::now();
    if (!run.ok()) {
      std::fprintf(stderr, "seq cell failed: %s\n",
                   run.status().ToString().c_str());
      std::exit(1);
    }
    cell.stats = run->stats;
    wall.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
  }
  cell.wall_ms = MedianWallMs(wall);
  return cell;
}

/// One parallel-runner cell: wall-clock without event recording, then one
/// recorded run whose final value maps are checked against the sequential
/// driver's (the acceptance criterion of E12).
Cell RunParCell(const rnt::dist::DistAlgebra& alg,
                const rnt::dist::Topology& topo, rnt::sim::Propagation prop,
                const rnt::dist::DistState& seq_final, int reps) {
  Cell cell;
  std::vector<double> wall;
  rnt::sim::ParallelOptions opt;
  opt.propagation = prop;
  opt.record_events = false;
  for (int r = 0; r < reps; ++r) {
    auto t0 = std::chrono::steady_clock::now();
    auto run = rnt::sim::RunParallel(alg, opt);
    auto t1 = std::chrono::steady_clock::now();
    if (!run.ok()) {
      std::fprintf(stderr, "par cell failed: %s\n",
                   run.status().ToString().c_str());
      std::exit(1);
    }
    cell.stats = run->stats;
    wall.push_back(std::chrono::duration<double, std::milli>(t1 - t0).count());
    for (ObjectId x = 0; x < kObjects; ++x) {
      NodeId h = topo.HomeOfObject(x);
      if (run->final_state.nodes[h].vmap.Get(x, rnt::kRootAction) !=
          seq_final.nodes[h].vmap.Get(x, rnt::kRootAction)) {
        cell.equivalent = false;
      }
    }
  }
  cell.wall_ms = MedianWallMs(wall);
  return cell;
}

void PrintCell(const char* runner, const char* policy, NodeId k,
               const Cell& c, bool first) {
  std::printf(
      "%s{\"runner\":\"%s\",\"policy\":\"%s\",\"nodes\":%u,"
      "\"messages\":%llu,\"summary_entries\":%llu,\"node_events\":%llu,"
      "\"wall_ms\":%.3f,\"equivalent\":%s}",
      first ? "" : ",", runner, policy, k,
      static_cast<unsigned long long>(c.stats.messages),
      static_cast<unsigned long long>(c.stats.summary_entries),
      static_cast<unsigned long long>(c.stats.node_events), c.wall_ms,
      c.equivalent ? "true" : "false");
  std::fflush(stdout);
}

int RunSweepJson() {
  constexpr int kReps = 7;
  const NodeId kNodes[] = {1, 2, 4, 8};
  rnt::action::ActionRegistry reg;
  BuildProgram(reg, kTops, kObjects, kSeed);

  std::printf("{\"bench\":\"distributed\",\"experiment\":\"E12\","
              "\"tops\":%d,\"objects\":%d,\"seed\":%llu,\"reps\":%d,"
              "\"trajectory\":[",
              kTops, kObjects, static_cast<unsigned long long>(kSeed), kReps);
  double entries_eager_k8 = 0, entries_delta_k8 = 0;
  unsigned long long msgs_lazy_k8 = 0, msgs_delta_k8 = 0;
  bool all_equivalent = true;
  bool first = true;
  for (NodeId k : kNodes) {
    rnt::dist::Topology topo = rnt::dist::Topology::RoundRobin(&reg, k);
    rnt::dist::DistAlgebra alg(&topo);
    Cell lazy = RunSeqCell(alg, rnt::sim::Propagation::kLazy, kReps);
    Cell eager = RunSeqCell(alg, rnt::sim::Propagation::kEager, kReps);
    Cell delta = RunSeqCell(alg, rnt::sim::Propagation::kDelta, kReps);
    PrintCell("dfs", "lazy", k, lazy, first);
    first = false;
    PrintCell("dfs", "eager", k, eager, false);
    PrintCell("dfs", "delta", k, delta, false);
    // Reference final state for the parallel equivalence check.
    auto seq = rnt::sim::RunProgram(alg, {});
    if (!seq.ok()) return 1;
    Cell par_delta = RunParCell(alg, topo, rnt::sim::Propagation::kDelta,
                                seq->final_state, kReps);
    Cell par_eager = RunParCell(alg, topo, rnt::sim::Propagation::kEager,
                                seq->final_state, kReps);
    PrintCell("parallel", "delta", k, par_delta, false);
    PrintCell("parallel", "eager", k, par_eager, false);
    all_equivalent &= par_delta.equivalent && par_eager.equivalent;
    if (k == 8) {
      entries_eager_k8 = static_cast<double>(eager.stats.summary_entries);
      entries_delta_k8 = static_cast<double>(delta.stats.summary_entries);
      msgs_lazy_k8 = lazy.stats.messages;
      msgs_delta_k8 = delta.stats.messages;
    }
  }
  std::printf(
      "],\"entries_ratio_eager_over_delta_at_k8\":%.2f,"
      "\"delta_messages_leq_lazy_at_k8\":%s,"
      "\"parallel_equivalent_to_sequential\":%s}\n",
      entries_delta_k8 > 0 ? entries_eager_k8 / entries_delta_k8 : 0.0,
      msgs_delta_k8 <= msgs_lazy_k8 ? "true" : "false",
      all_equivalent ? "true" : "false");
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool sweep = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep_json") == 0) {
      sweep = true;
    } else {
      argv[out++] = argv[i];  // leave the rest for google-benchmark
    }
  }
  argc = out;
  if (sweep) return RunSweepJson();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
