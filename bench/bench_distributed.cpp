// Experiment E5 (DESIGN.md): the distributed algorithm's overhead is
// knowledge propagation (paper §9) — action summaries moving through the
// message buffer. The algebra leaves the propagation policy completely
// free (any sub-summary, any time); this bench quantifies the two natural
// policies as the cluster grows:
//   lazy  — ship a summary only when a pending step needs the knowledge;
//   eager — broadcast the doer's summary after every event.

#include <benchmark/benchmark.h>

#include "common/random.h"
#include "sim/dist_driver.h"

namespace {

using rnt::ActionId;
using rnt::NodeId;
using rnt::ObjectId;

/// A cross-node workload: `tops` transactions, each with two
/// subtransactions touching a private object and a shared object.
void BuildProgram(rnt::action::ActionRegistry& reg, int tops, int objects,
                  std::uint64_t seed) {
  rnt::Rng rng(seed);
  for (int t = 0; t < tops; ++t) {
    ActionId top = reg.NewAction(rnt::kRootAction);
    for (int c = 0; c < 2; ++c) {
      ActionId sub = reg.NewAction(top);
      reg.NewAccess(sub, static_cast<ObjectId>(rng.Below(objects)),
                    rnt::action::Update::Add(1));
      reg.NewAccess(sub, static_cast<ObjectId>(rng.Below(objects)),
                    rnt::action::Update::Read());
    }
  }
}

void RunDriver(benchmark::State& state, rnt::sim::Propagation prop) {
  NodeId k = static_cast<NodeId>(state.range(0));
  rnt::action::ActionRegistry reg;
  BuildProgram(reg, /*tops=*/12, /*objects=*/8, /*seed=*/5);
  rnt::dist::Topology topo = rnt::dist::Topology::RoundRobin(&reg, k);
  rnt::dist::DistAlgebra alg(&topo);
  rnt::sim::DriverOptions opt;
  opt.propagation = prop;
  rnt::sim::DriverStats last{};
  for (auto _ : state) {
    auto run = rnt::sim::RunProgram(alg, opt);
    if (!run.ok()) {
      state.SkipWithError(run.status().ToString().c_str());
      return;
    }
    last = run->stats;
    benchmark::DoNotOptimize(run->final_state);
  }
  state.counters["messages"] = static_cast<double>(last.messages);
  state.counters["node_events"] = static_cast<double>(last.node_events);
  state.counters["summary_entries"] =
      static_cast<double>(last.summary_entries);
  state.counters["msgs_per_event"] =
      last.node_events == 0
          ? 0.0
          : static_cast<double>(last.messages) /
                static_cast<double>(last.node_events);
}

void BM_DistLazy(benchmark::State& state) {
  RunDriver(state, rnt::sim::Propagation::kLazy);
}
void BM_DistEager(benchmark::State& state) {
  RunDriver(state, rnt::sim::Propagation::kEager);
}

BENCHMARK(BM_DistLazy)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_DistEager)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
