// Experiment E1 (DESIGN.md): "nesting allows more concurrency than a
// single-level transaction structure" (paper §1).
//
// Throughput of the mixed nested workload vs worker count, on the nested
// Moss engine and the flat strict-2PL baseline, under uniform and
// Zipf-skewed access. Simulated per-access work makes lock *hold time*
// the contended resource; the nested engine's subtransaction commits
// release conflicts earlier (locks pass to the parent, and sibling work
// can interleave), so its throughput should degrade more slowly with
// workers and skew than the flat baseline's.
//
// Experiment E11 (EXPERIMENTS.md): `--sweep_json` runs a thread-count
// sweep (1/2/4/8 workers) of the sharded engine against the retired
// global-mutex design and emits one JSON document on stdout, in the
// style of bench_faults, so the scalability trajectory is tracked:
//   {"bench":"concurrency","txns_per_worker":...,"trajectory":[{...}]}
//
// `--engine=global-mutex` (or `sharded`, the default) selects the
// concurrency skeleton for the google-benchmark path, so the seed
// design stays measurable after its retirement as the default.

#include <benchmark/benchmark.h>

#include <chrono>
#include <cstdio>
#include <cstring>
#include <string>

#include "baseline/flat_engine.h"
#include "txn/transaction_manager.h"
#include "workload/workload.h"

namespace {

using rnt::workload::Params;
using rnt::workload::Result;
using rnt::workload::RunMixed;
using rnt::txn::EngineMode;
using rnt::txn::TransactionManager;

/// Engine skeleton used by the google-benchmark path; set via --engine=.
EngineMode g_engine_mode = EngineMode::kSharded;

Params MakeParams(double theta) {
  Params p;
  p.num_objects = 48;
  p.zipf_theta = theta;
  p.children_per_txn = 4;
  p.accesses_per_child = 2;
  p.read_fraction = 0.5;
  p.work_ns_per_access = 200000;  // 200us of simulated I/O per access
  return p;
}

constexpr int kTxnsPerWorker = 40;

TransactionManager::Options EngineOptions() {
  TransactionManager::Options opt;
  opt.mode = g_engine_mode;
  return opt;
}

void Report(benchmark::State& state, const Result& total,
            std::uint64_t runs) {
  state.counters["txn_per_s"] = benchmark::Counter(
      static_cast<double>(total.committed), benchmark::Counter::kIsRate);
  state.counters["attempts_per_commit"] =
      total.committed == 0
          ? 0.0
          : static_cast<double>(total.txn_attempts) / total.committed;
  state.counters["failed"] =
      static_cast<double>(total.failed) / static_cast<double>(runs);
}

void BM_Nested(benchmark::State& state) {
  int workers = static_cast<int>(state.range(0));
  double theta = static_cast<double>(state.range(1)) / 100.0;
  Params p = MakeParams(theta);
  Result total;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    TransactionManager engine(EngineOptions());
    total.MergeFrom(RunMixed(engine, p, workers, kTxnsPerWorker, 17));
    ++runs;
  }
  Report(state, total, runs);
}

void BM_NestedParallel(benchmark::State& state) {
  // The paper's headline: subtransactions of one transaction overlap
  // safely, because the nesting discipline serializes siblings. A flat
  // transaction cannot parallelize its steps without losing isolation
  // and partial rollback, so there is no flat-parallel baseline.
  int workers = static_cast<int>(state.range(0));
  double theta = static_cast<double>(state.range(1)) / 100.0;
  Params p = MakeParams(theta);
  p.parallel_children = true;
  Result total;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    TransactionManager engine(EngineOptions());
    total.MergeFrom(RunMixed(engine, p, workers, kTxnsPerWorker, 17));
    ++runs;
  }
  Report(state, total, runs);
}

void BM_Flat(benchmark::State& state) {
  int workers = static_cast<int>(state.range(0));
  double theta = static_cast<double>(state.range(1)) / 100.0;
  Params p = MakeParams(theta);
  Result total;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    rnt::baseline::FlatEngine engine;
    total.MergeFrom(RunMixed(engine, p, workers, kTxnsPerWorker, 17));
    ++runs;
  }
  Report(state, total, runs);
}

void ConcurrencyArgs(benchmark::internal::Benchmark* b) {
  for (int theta : {0, 90}) {
    for (int workers : {1, 2, 4, 8}) {
      b->Args({workers, theta});
    }
  }
}

BENCHMARK(BM_Nested)
    ->Apply(ConcurrencyArgs)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);
BENCHMARK(BM_NestedParallel)
    ->Apply(ConcurrencyArgs)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);
BENCHMARK(BM_Flat)
    ->Apply(ConcurrencyArgs)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

// ---------------------------------------------------------------------
// E11: thread-count sweep, sharded vs global-mutex, JSON on stdout.

struct SweepPoint {
  double txn_per_s = 0;
  double attempts_per_commit = 0;
  std::uint64_t committed = 0;
  std::uint64_t lock_waits = 0;
  std::uint64_t deadlock_aborts = 0;
  std::uint64_t timeout_aborts = 0;
};

SweepPoint RunSweepCell(EngineMode mode, const Params& p, int workers,
                        int seeds) {
  SweepPoint pt;
  Result total;
  double elapsed = 0;
  TransactionManager::Options opt;
  opt.mode = mode;
  for (int s = 0; s < seeds; ++s) {
    TransactionManager engine(opt);
    const auto t0 = std::chrono::steady_clock::now();
    total.MergeFrom(
        RunMixed(engine, p, workers, kTxnsPerWorker, 17 + 1000u * s));
    elapsed += std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                             t0)
                   .count();
    const auto stats = engine.stats();
    pt.lock_waits += stats.lock_waits;
    pt.deadlock_aborts += stats.deadlock_aborts;
    pt.timeout_aborts += stats.timeout_aborts;
  }
  pt.committed = total.committed;
  pt.txn_per_s =
      elapsed > 0 ? static_cast<double>(total.committed) / elapsed : 0;
  pt.attempts_per_commit =
      total.committed == 0
          ? 0.0
          : static_cast<double>(total.txn_attempts) / total.committed;
  return pt;
}

int RunSweepJson() {
  constexpr int kSeeds = 5;
  const int kWorkers[] = {1, 2, 4, 8};
  struct Arm {
    const char* name;
    double theta;
  };
  const Arm kArms[] = {{"low", 0.0}, {"high", 0.9}};
  struct EngineDesc {
    const char* name;
    EngineMode mode;
  };
  const EngineDesc kEngines[] = {{"sharded", EngineMode::kSharded},
                                 {"global-mutex", EngineMode::kGlobalMutex}};

  std::printf("{\"bench\":\"concurrency\",\"txns_per_worker\":%d,"
              "\"seeds\":%d,\"objects\":48,\"work_us_per_access\":200,",
              kTxnsPerWorker, kSeeds);
  std::printf("\"trajectory\":[");
  double at8[2][2] = {{0, 0}, {0, 0}};  // [arm][engine] txn/s at 8 workers
  bool first = true;
  for (int a = 0; a < 2; ++a) {
    const Params p = MakeParams(kArms[a].theta);
    for (int e = 0; e < 2; ++e) {
      for (int workers : kWorkers) {
        const SweepPoint pt =
            RunSweepCell(kEngines[e].mode, p, workers, kSeeds);
        if (workers == 8) at8[a][e] = pt.txn_per_s;
        std::printf(
            "%s{\"contention\":\"%s\",\"engine\":\"%s\",\"threads\":%d,"
            "\"txn_per_s\":%.1f,\"committed\":%llu,"
            "\"attempts_per_commit\":%.3f,\"lock_waits\":%llu,"
            "\"deadlock_aborts\":%llu,\"timeout_aborts\":%llu}",
            first ? "" : ",", kArms[a].name, kEngines[e].name, workers,
            pt.txn_per_s, static_cast<unsigned long long>(pt.committed),
            pt.attempts_per_commit,
            static_cast<unsigned long long>(pt.lock_waits),
            static_cast<unsigned long long>(pt.deadlock_aborts),
            static_cast<unsigned long long>(pt.timeout_aborts));
        first = false;
        std::fflush(stdout);
      }
    }
  }
  std::printf("],\"speedup_at_8_threads\":{");
  std::printf("\"low\":%.2f,\"high\":%.2f}}\n",
              at8[0][1] > 0 ? at8[0][0] / at8[0][1] : 0.0,
              at8[1][1] > 0 ? at8[1][0] / at8[1][1] : 0.0);
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  bool sweep = false;
  int out = 1;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--sweep_json") {
      sweep = true;
    } else if (arg.rfind("--engine=", 0) == 0) {
      const std::string name = arg.substr(std::strlen("--engine="));
      if (name == "global-mutex") {
        g_engine_mode = EngineMode::kGlobalMutex;
      } else if (name == "sharded") {
        g_engine_mode = EngineMode::kSharded;
      } else {
        std::fprintf(stderr, "unknown --engine=%s (want sharded|global-mutex)\n",
                     name.c_str());
        return 2;
      }
    } else {
      argv[out++] = argv[i];  // leave the rest for google-benchmark
    }
  }
  argc = out;
  if (sweep) return RunSweepJson();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
