// Experiment E1 (DESIGN.md): "nesting allows more concurrency than a
// single-level transaction structure" (paper §1).
//
// Throughput of the mixed nested workload vs worker count, on the nested
// Moss engine and the flat strict-2PL baseline, under uniform and
// Zipf-skewed access. Simulated per-access work makes lock *hold time*
// the contended resource; the nested engine's subtransaction commits
// release conflicts earlier (locks pass to the parent, and sibling work
// can interleave), so its throughput should degrade more slowly with
// workers and skew than the flat baseline's.

#include <benchmark/benchmark.h>

#include "baseline/flat_engine.h"
#include "txn/transaction_manager.h"
#include "workload/workload.h"

namespace {

using rnt::workload::Params;
using rnt::workload::Result;
using rnt::workload::RunMixed;

Params MakeParams(double theta) {
  Params p;
  p.num_objects = 48;
  p.zipf_theta = theta;
  p.children_per_txn = 4;
  p.accesses_per_child = 2;
  p.read_fraction = 0.5;
  p.work_ns_per_access = 200000;  // 200us of simulated I/O per access
  return p;
}

constexpr int kTxnsPerWorker = 40;

void Report(benchmark::State& state, const Result& total,
            std::uint64_t runs) {
  state.counters["txn_per_s"] = benchmark::Counter(
      static_cast<double>(total.committed), benchmark::Counter::kIsRate);
  state.counters["attempts_per_commit"] =
      total.committed == 0
          ? 0.0
          : static_cast<double>(total.txn_attempts) / total.committed;
  state.counters["failed"] =
      static_cast<double>(total.failed) / static_cast<double>(runs);
}

void BM_Nested(benchmark::State& state) {
  int workers = static_cast<int>(state.range(0));
  double theta = static_cast<double>(state.range(1)) / 100.0;
  Params p = MakeParams(theta);
  Result total;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    rnt::txn::TransactionManager engine;
    total.MergeFrom(RunMixed(engine, p, workers, kTxnsPerWorker, 17));
    ++runs;
  }
  Report(state, total, runs);
}

void BM_NestedParallel(benchmark::State& state) {
  // The paper's headline: subtransactions of one transaction overlap
  // safely, because the nesting discipline serializes siblings. A flat
  // transaction cannot parallelize its steps without losing isolation
  // and partial rollback, so there is no flat-parallel baseline.
  int workers = static_cast<int>(state.range(0));
  double theta = static_cast<double>(state.range(1)) / 100.0;
  Params p = MakeParams(theta);
  p.parallel_children = true;
  Result total;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    rnt::txn::TransactionManager engine;
    total.MergeFrom(RunMixed(engine, p, workers, kTxnsPerWorker, 17));
    ++runs;
  }
  Report(state, total, runs);
}

void BM_Flat(benchmark::State& state) {
  int workers = static_cast<int>(state.range(0));
  double theta = static_cast<double>(state.range(1)) / 100.0;
  Params p = MakeParams(theta);
  Result total;
  std::uint64_t runs = 0;
  for (auto _ : state) {
    rnt::baseline::FlatEngine engine;
    total.MergeFrom(RunMixed(engine, p, workers, kTxnsPerWorker, 17));
    ++runs;
  }
  Report(state, total, runs);
}

void ConcurrencyArgs(benchmark::internal::Benchmark* b) {
  for (int theta : {0, 90}) {
    for (int workers : {1, 2, 4, 8}) {
      b->Args({workers, theta});
    }
  }
}

BENCHMARK(BM_Nested)
    ->Apply(ConcurrencyArgs)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);
BENCHMARK(BM_NestedParallel)
    ->Apply(ConcurrencyArgs)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);
BENCHMARK(BM_Flat)
    ->Apply(ConcurrencyArgs)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

}  // namespace

BENCHMARK_MAIN();
