// Experiment E2 (DESIGN.md): failures are localized "within the closest
// possible level of nesting" (paper §1) — the recovery-block payoff.
//
// Goodput under injected subtransaction failures. The nested engine
// retries only the failed child; the flat baseline loses the whole
// transaction and restarts from the top. As the per-child failure
// probability grows (and with more children per transaction, i.e. more
// work at risk), the flat engine's wasted work grows combinatorially —
// the chance that *some* child fails approaches 1 — while the nested
// engine's goodput decays gently.

#include <benchmark/benchmark.h>

#include "baseline/flat_engine.h"
#include "txn/transaction_manager.h"
#include "workload/workload.h"

namespace {

using rnt::workload::Params;
using rnt::workload::Result;
using rnt::workload::RunMixed;

Params MakeParams(double fail_prob) {
  Params p;
  p.num_objects = 256;  // low contention: isolate the failure effect
  p.children_per_txn = 6;
  p.accesses_per_child = 2;
  p.read_fraction = 0.3;
  p.child_failure_prob = fail_prob;
  p.max_child_retries = 5;
  p.max_txn_attempts = 40;
  p.work_ns_per_access = 50000;
  return p;
}

constexpr int kWorkers = 2;
constexpr int kTxnsPerWorker = 50;

void Run(benchmark::State& state, bool nested) {
  double fail_prob = static_cast<double>(state.range(0)) / 100.0;
  Params p = MakeParams(fail_prob);
  Result total;
  for (auto _ : state) {
    std::unique_ptr<rnt::txn::Engine> engine;
    if (nested) {
      engine = std::make_unique<rnt::txn::TransactionManager>();
    } else {
      engine = std::make_unique<rnt::baseline::FlatEngine>();
    }
    total.MergeFrom(RunMixed(*engine, p, kWorkers, kTxnsPerWorker, 23));
  }
  state.counters["commits_per_s"] = benchmark::Counter(
      static_cast<double>(total.committed), benchmark::Counter::kIsRate);
  // Wasted work: attempts beyond the first, per committed transaction.
  state.counters["restart_overhead"] =
      total.committed == 0
          ? 0.0
          : static_cast<double>(total.txn_attempts - total.committed) /
                static_cast<double>(total.committed);
  state.counters["child_retries_per_commit"] =
      total.committed == 0
          ? 0.0
          : static_cast<double>(total.child_retries) /
                static_cast<double>(total.committed);
}

void BM_NestedResilience(benchmark::State& state) { Run(state, true); }
void BM_FlatResilience(benchmark::State& state) { Run(state, false); }

BENCHMARK(BM_NestedResilience)
    ->Arg(0)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(35)
    ->Arg(50)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);
BENCHMARK(BM_FlatResilience)
    ->Arg(0)
    ->Arg(5)
    ->Arg(10)
    ->Arg(20)
    ->Arg(35)
    ->Arg(50)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

}  // namespace

BENCHMARK_MAIN();
