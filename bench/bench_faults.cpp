// Experiment E10 (EXPERIMENTS.md): resilience of the distributed algebra
// under injected faults. Sweeps the message-fault rate over
// {0, 0.1, 0.3, 0.5} (drop probability; duplication and delay at half
// that), with two node crashes and a temporary partition at every
// non-zero rate, and reports the throughput-shaped consequences: how many
// top-level transactions still commit, and what each commit costs in
// messages once re-requests and retries are paid for.
//
// Emits a single JSON document on stdout so the trajectory can be
// plotted directly:
//   {"bench":"faults","nodes":3,"seeds":5,"trajectory":[{...},...]}
//
// With --sweep_json the document additionally carries a
// "concurrent_trajectory": the same rate sweep executed on the
// multi-threaded runner (ChaosOptions::concurrent_buffer), whose crash
// triggers and partition windows run on the logical clock. That is the
// committed artifact bench/e10_faults.json (see EXPERIMENTS.md E10).

#include <cstdio>
#include <cstring>

#include "common/random.h"
#include "faults/faults.h"
#include "sim/chaos_driver.h"

namespace {

using rnt::ActionId;
using rnt::NodeId;
using rnt::ObjectId;

constexpr int kTops = 10;
constexpr int kObjects = 6;
constexpr NodeId kNodes = 3;
constexpr int kSeeds = 5;

void BuildProgram(rnt::action::ActionRegistry& reg, std::uint64_t seed) {
  rnt::Rng rng(seed);
  for (int t = 0; t < kTops; ++t) {
    ActionId top = reg.NewAction(rnt::kRootAction);
    for (int c = 0; c < 2; ++c) {
      ActionId sub = reg.NewAction(top);
      reg.NewAccess(sub, static_cast<ObjectId>(rng.Below(kObjects)),
                    rnt::action::Update::Add(1));
      reg.NewAccess(sub, static_cast<ObjectId>(rng.Below(kObjects)),
                    rnt::action::Update::Read());
    }
  }
}

rnt::faults::FaultPlan PlanAtRate(double rate, std::uint64_t seed) {
  rnt::faults::FaultPlan plan;
  plan.seed = seed;
  plan.drop_prob = rate;
  plan.dup_prob = rate / 2;
  plan.delay_prob = rate / 2;
  plan.max_delay_rounds = 3;
  if (rate > 0) {
    // Round fields double as logical-clock stamps on the concurrent
    // runner (CrashSpec::TriggerStamp falls back to `round`).
    plan.crashes.push_back(rnt::faults::CrashSpec{0, 15, 5});
    plan.crashes.push_back(rnt::faults::CrashSpec{1, 40, 5});
    plan.partitions.push_back(rnt::faults::PartitionSpec{0, 2, 20, 35});
  }
  return plan;
}

struct RatePoint {
  double rate = 0;
  double commit_rate = 0;       // committed top-levels / top-levels
  double messages_per_commit = 0;
  double avg_rounds = 0;
  double complete_fraction = 0;  // runs that finished without abandonment
  std::uint64_t dropped = 0;
  std::uint64_t duplicated = 0;
  std::uint64_t delayed = 0;
  std::uint64_t retries = 0;
  std::uint64_t timeout_aborts = 0;
  std::uint64_t crashes = 0;
  std::uint64_t recovered = 0;
};

/// Runs the sweep at one rate on either runtime and prints the point.
/// Returns false on a failed run (error already reported on stderr).
bool SweepRate(double rate, bool concurrent, bool first_rate) {
  RatePoint pt;
  pt.rate = rate;
  std::uint64_t total_commits = 0;
  std::uint64_t top_commits = 0;
  std::uint64_t total_msgs = 0;
  int complete_runs = 0;
  long total_rounds = 0;
  for (int s = 0; s < kSeeds; ++s) {
    rnt::action::ActionRegistry reg;
    BuildProgram(reg, /*seed=*/100 + s);
    rnt::dist::Topology topo = rnt::dist::Topology::RoundRobin(&reg, kNodes);
    rnt::dist::DistAlgebra alg(&topo);
    rnt::sim::ChaosOptions opt;
    opt.plan = PlanAtRate(rate, /*seed=*/1000 * s + 7);
    opt.concurrent_buffer = concurrent;
    auto run = rnt::sim::ChaosRunProgram(alg, opt);
    if (!run.ok()) {
      std::fprintf(stderr, "run failed: %s\n",
                   run.status().ToString().c_str());
      return false;
    }
    total_commits += run->stats.commits;
    total_msgs += run->stats.messages;
    total_rounds += run->stats.rounds;
    if (run->complete) ++complete_runs;
    for (ActionId a = 1; a < reg.size(); ++a) {
      if (reg.Parent(a) == rnt::kRootAction &&
          run->abstract.tree.IsCommitted(a)) {
        ++top_commits;
      }
    }
    pt.dropped += run->stats.dropped_msgs;
    pt.duplicated += run->stats.duplicated_msgs;
    pt.delayed += run->stats.delayed_msgs;
    pt.retries += run->stats.retries;
    pt.timeout_aborts += run->stats.timeout_aborts;
    pt.crashes += run->stats.crashes;
    pt.recovered += run->stats.recovered_nodes;
  }
  pt.commit_rate = static_cast<double>(top_commits) / (kSeeds * kTops);
  pt.messages_per_commit =
      total_commits == 0 ? 0.0
                         : static_cast<double>(total_msgs) /
                               static_cast<double>(total_commits);
  pt.avg_rounds = static_cast<double>(total_rounds) / kSeeds;
  pt.complete_fraction = static_cast<double>(complete_runs) / kSeeds;
  std::printf(
      "%s{\"rate\":%.2f,\"commit_rate\":%.4f,"
      "\"messages_per_commit\":%.3f,\"avg_rounds\":%.1f,"
      "\"complete_fraction\":%.2f,\"dropped\":%llu,\"duplicated\":%llu,"
      "\"delayed\":%llu,\"retries\":%llu,\"timeout_aborts\":%llu,"
      "\"crashes\":%llu,\"recovered\":%llu}",
      first_rate ? "" : ",", pt.rate, pt.commit_rate, pt.messages_per_commit,
      pt.avg_rounds, pt.complete_fraction,
      static_cast<unsigned long long>(pt.dropped),
      static_cast<unsigned long long>(pt.duplicated),
      static_cast<unsigned long long>(pt.delayed),
      static_cast<unsigned long long>(pt.retries),
      static_cast<unsigned long long>(pt.timeout_aborts),
      static_cast<unsigned long long>(pt.crashes),
      static_cast<unsigned long long>(pt.recovered));
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool sweep_json = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--sweep_json") == 0) {
      sweep_json = true;
    } else {
      std::fprintf(stderr, "usage: %s [--sweep_json]\n", argv[0]);
      return 2;
    }
  }
  const double kRates[] = {0.0, 0.1, 0.3, 0.5};
  std::printf("{\"bench\":\"faults\",\"nodes\":%u,\"tops\":%d,\"seeds\":%d,",
              kNodes, kTops, kSeeds);
  std::printf("\"trajectory\":[");
  bool first_rate = true;
  for (double rate : kRates) {
    if (!SweepRate(rate, /*concurrent=*/false, first_rate)) return 1;
    first_rate = false;
  }
  std::printf("]");
  if (sweep_json) {
    // The same schedule on the multi-threaded runtime: crashes kill and
    // rebirth real threads, partitions run at the mailbox's link filter,
    // and avg_rounds is 0 by construction (free-running loops).
    std::printf(",\"concurrent_trajectory\":[");
    first_rate = true;
    for (double rate : kRates) {
      if (!SweepRate(rate, /*concurrent=*/true, first_rate)) return 1;
      first_rate = false;
    }
    std::printf("]");
  }
  std::printf("}\n");
  return 0;
}
