// Experiment E4 (DESIGN.md): the value of Theorem 9's cycle-free
// characterization (paper §5.2) — the polynomial checker vs the
// exponential definitional oracle (§3.4), as the action tree grows.
//
// The oracle enumerates sibling permutations (the literal definition of
// serializability); the Theorem 9 checker tests version compatibility
// plus acyclicity of sibling-data. The crossover is brutal: a handful of
// sibling groups already puts the oracle orders of magnitude behind.

#include <benchmark/benchmark.h>

#include "aat/aat.h"
#include "aat/aat_algebra.h"
#include "action/serializability.h"
#include "algebra/algebra.h"
#include "common/random.h"

namespace {

using rnt::ActionId;
using rnt::ObjectId;
using rnt::Rng;

/// Builds a valid Moss execution with `tops` top-level transactions, each
/// with `kids` accesses over `objects` shared objects, by random-running
/// the level-2 algebra to quiescence.
rnt::action::ActionTree MakeTree(int tops, int kids, int objects,
                                 rnt::action::ActionRegistry& reg,
                                 std::uint64_t seed) {
  Rng rng(seed);
  for (int t = 0; t < tops; ++t) {
    ActionId top = reg.NewAction(rnt::kRootAction);
    for (int c = 0; c < kids; ++c) {
      reg.NewAccess(top, static_cast<ObjectId>(rng.Below(objects)),
                    rnt::action::Update::Add(1 + c));
    }
  }
  rnt::aat::AatAlgebra alg(&reg);
  auto run = rnt::algebra::RandomRun(
      alg, [](const rnt::aat::Aat& s) { return rnt::aat::EventCandidates(s); },
      rng, 10 * tops * (kids + 2));
  return run.state;
}

void BM_Theorem9Checker(benchmark::State& state) {
  int tops = static_cast<int>(state.range(0));
  rnt::action::ActionRegistry reg;
  rnt::action::ActionTree tree = MakeTree(tops, 3, 2, reg, 42);
  bool result = false;
  for (auto _ : state) {
    result = rnt::aat::IsDataSerializable(tree);
    benchmark::DoNotOptimize(result);
  }
  state.counters["vertices"] = static_cast<double>(tree.size());
  state.counters["serializable"] = result ? 1 : 0;
}

void BM_ExhaustiveOracle(benchmark::State& state) {
  int tops = static_cast<int>(state.range(0));
  rnt::action::ActionRegistry reg;
  rnt::action::ActionTree tree = MakeTree(tops, 3, 2, reg, 42);
  // The oracle decides the same property when constrained by the tree's
  // data order.
  rnt::action::DataOrder order;
  for (ObjectId x : tree.TouchedObjects()) order[x] = tree.Datasteps(x);
  rnt::action::OracleOptions opt;
  opt.data_order = &order;
  bool result = false;
  for (auto _ : state) {
    result = rnt::action::IsSerializable(tree, opt);
    benchmark::DoNotOptimize(result);
  }
  state.counters["vertices"] = static_cast<double>(tree.size());
  state.counters["serializable"] = result ? 1 : 0;
}

void BM_RwChecker(benchmark::State& state) {
  int tops = static_cast<int>(state.range(0));
  rnt::action::ActionRegistry reg;
  rnt::action::ActionTree tree = MakeTree(tops, 3, 2, reg, 42);
  for (auto _ : state) {
    benchmark::DoNotOptimize(rnt::aat::IsDataSerializableRw(tree));
  }
  state.counters["vertices"] = static_cast<double>(tree.size());
}

// The oracle's cost explodes with sibling-group count; cap it where a
// single evaluation still finishes in reasonable time.
BENCHMARK(BM_Theorem9Checker)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6)->Arg(8);
BENCHMARK(BM_ExhaustiveOracle)->Arg(2)->Arg(3)->Arg(4)->Arg(5)->Arg(6);
BENCHMARK(BM_RwChecker)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
