// Experiment E6 (DESIGN.md): the proof stack is implementable — cost per
// event at each of the paper's five levels of abstraction, and the price
// of runtime refinement checking.
//
// Levels retain decreasing amounts of information (spec oracle >> version
// sequences > latest values > distributed summaries), so events get
// cheaper going down exactly as the paper's optimization story predicts:
// level 1's domain check runs the exponential oracle, level 3 carries
// whole access sequences, level 4 only values.

#include <benchmark/benchmark.h>

#include "aat/aat_algebra.h"
#include "algebra/algebra.h"
#include "common/random.h"
#include "dist/dist_algebra.h"
#include "orphan/orphan.h"
#include "spec/spec_algebra.h"
#include "valuemap/value_map_algebra.h"
#include "versionmap/version_map_algebra.h"

namespace {

using rnt::ActionId;
using rnt::ObjectId;
using rnt::Rng;

rnt::action::ActionRegistry MakeRegistry(int tops, std::uint64_t seed) {
  Rng rng(seed);
  rnt::action::ActionRegistry reg;
  for (int t = 0; t < tops; ++t) {
    ActionId top = reg.NewAction(rnt::kRootAction);
    ActionId sub = reg.NewAction(top);
    for (int c = 0; c < 2; ++c) {
      reg.NewAccess(sub, static_cast<ObjectId>(rng.Below(3)),
                    rnt::action::Update::Add(1));
    }
  }
  return reg;
}

template <typename Alg, typename CandidateFn>
void DriveLevel(benchmark::State& state, const Alg& alg, CandidateFn&& cand,
                int steps) {
  std::uint64_t events = 0;
  for (auto _ : state) {
    Rng rng(99);
    auto run = rnt::algebra::RandomRun(alg, cand, rng, steps);
    events += run.events.size();
    benchmark::DoNotOptimize(run.state);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
}

void BM_Level1Spec(benchmark::State& state) {
  // Oracle-enforced spec: kept tiny (the C-check is exponential).
  auto reg = MakeRegistry(2, 7);
  rnt::spec::SpecAlgebra alg(&reg);
  DriveLevel(state, alg,
             [](const rnt::action::ActionTree& s) {
               return rnt::spec::EventCandidates(s);
             },
             30);
}

void BM_Level2Aat(benchmark::State& state) {
  auto reg = MakeRegistry(static_cast<int>(state.range(0)), 7);
  rnt::aat::AatAlgebra alg(&reg);
  DriveLevel(state, alg,
             [](const rnt::aat::Aat& s) {
               return rnt::aat::EventCandidates(s);
             },
             200);
}

void BM_Level2OrphanSafe(benchmark::State& state) {
  // The orphan-safe strengthening: same events, but orphan performs must
  // present realizable values — the enforcement cost of Argus-style
  // orphan consistency at the specification level.
  auto reg = MakeRegistry(static_cast<int>(state.range(0)), 7);
  rnt::orphan::OrphanSafeAatAlgebra alg(&reg);
  DriveLevel(state, alg,
             [](const rnt::aat::Aat& s) {
               return rnt::orphan::EventCandidates(s);
             },
             200);
}

void BM_Level3VersionMap(benchmark::State& state) {
  auto reg = MakeRegistry(static_cast<int>(state.range(0)), 7);
  rnt::versionmap::VersionMapAlgebra alg(&reg);
  DriveLevel(state, alg,
             [](const rnt::versionmap::VmState& s) {
               return rnt::versionmap::EventCandidates(s);
             },
             200);
}

void BM_Level4ValueMap(benchmark::State& state) {
  auto reg = MakeRegistry(static_cast<int>(state.range(0)), 7);
  rnt::valuemap::ValueMapAlgebra alg(&reg);
  DriveLevel(state, alg,
             [](const rnt::valuemap::ValState& s) {
               return rnt::valuemap::EventCandidates(s);
             },
             200);
}

void BM_Level5Distributed(benchmark::State& state) {
  auto reg = MakeRegistry(static_cast<int>(state.range(0)), 7);
  rnt::dist::Topology topo = rnt::dist::Topology::RoundRobin(&reg, 3);
  rnt::dist::DistAlgebra alg(&topo);
  std::uint64_t events = 0;
  for (auto _ : state) {
    Rng rng(99);
    rnt::dist::DistEventCandidates cand(&alg, 99,
                                        /*random_subsummaries=*/false);
    auto run = rnt::algebra::RandomRun(alg, std::ref(cand), rng, 200);
    events += run.events.size();
    benchmark::DoNotOptimize(run.state);
  }
  state.SetItemsProcessed(static_cast<int64_t>(events));
}

void BM_RefinementCheckedRun(benchmark::State& state) {
  // A level-4 run with the level-3 witness maintained and eval(W) = V
  // checked at every step: the cost of *executing the proof*.
  auto reg = MakeRegistry(static_cast<int>(state.range(0)), 7);
  rnt::valuemap::ValueMapAlgebra lower(&reg);
  rnt::versionmap::VersionMapAlgebra upper(&reg);
  Rng rng(99);
  auto run = rnt::algebra::RandomRun(
      lower,
      [](const rnt::valuemap::ValState& s) {
        return rnt::valuemap::EventCandidates(s);
      },
      rng, 200);
  for (auto _ : state) {
    rnt::Status st = rnt::algebra::CheckRefinement(
        lower, upper,
        std::span<const rnt::algebra::LockEvent>(run.events),
        [](const rnt::algebra::LockEvent& e) {
          return std::optional<rnt::algebra::LockEvent>(e);
        },
        [&](const rnt::valuemap::ValState& ls,
            const rnt::versionmap::VmState& us) {
          return rnt::valuemap::Eval(us.vmap, reg) == ls.vmap
                     ? rnt::Status::Ok()
                     : rnt::Status::Internal("eval mismatch");
        });
    if (!st.ok()) {
      state.SkipWithError(st.ToString().c_str());
      return;
    }
  }
  state.SetItemsProcessed(
      static_cast<int64_t>(state.iterations() * run.events.size()));
}

BENCHMARK(BM_Level1Spec);
BENCHMARK(BM_Level2Aat)->Arg(4)->Arg(16);
BENCHMARK(BM_Level2OrphanSafe)->Arg(4)->Arg(16);
BENCHMARK(BM_Level3VersionMap)->Arg(4)->Arg(16);
BENCHMARK(BM_Level4ValueMap)->Arg(4)->Arg(16);
BENCHMARK(BM_Level5Distributed)->Arg(4)->Arg(16);
BENCHMARK(BM_RefinementCheckedRun)->Arg(4)->Arg(16);

}  // namespace

BENCHMARK_MAIN();
