// Experiment E13 (EXPERIMENTS.md): the cost of durability. Two sweeps
// over the storage layer, emitted as one JSON document on stdout (the
// committed artifact bench/e13_recovery.json):
//
//  A. group-commit throughput vs batch size — four committing threads
//     drive the DurableEngine while WalOptions::batch_records (the
//     pending-record count that kicks an early flush) sweeps
//     {1, 8, 64, 256, 1024}; reports commits/sec and the observed batch
//     shape (rounds, avg, max) from the WAL's own counters.
//
//  B. restart-recovery time vs WAL size — write N committed nested
//     transactions, close the engine cleanly (records stay in the WAL:
//     reset only happens on Open/Checkpoint), then time the read-only
//     storage::Recover pass over the directory.
//
// fsync is off in both sweeps: page-cache durability is the kill -9
// fault model (the process dies, the page cache survives), and it keeps
// the numbers about the protocol — batching, barriers, replay — rather
// than the device. --smoke shrinks both sweeps to one cheap cell for
// the bench-smoke CTest.

#include <dirent.h>
#include <unistd.h>

#include <chrono>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "action/update.h"
#include "common/random.h"
#include "storage/durable_engine.h"
#include "storage/recovery.h"

namespace {

using rnt::ObjectId;

/// A throwaway storage directory under TMPDIR; removed on destruction.
struct ScratchDir {
  std::string path;

  ScratchDir() {
    char tmpl[] = "/tmp/rnt_e13_XXXXXX";
    if (::mkdtemp(tmpl) != nullptr) path = tmpl;
  }
  ~ScratchDir() {
    if (path.empty()) return;
    if (DIR* d = ::opendir(path.c_str())) {
      while (dirent* e = ::readdir(d)) {
        if (std::strcmp(e->d_name, ".") == 0 ||
            std::strcmp(e->d_name, "..") == 0) {
          continue;
        }
        (void)::unlink((path + "/" + e->d_name).c_str());
      }
      (void)::closedir(d);
    }
    (void)::rmdir(path.c_str());
  }
};

double SecondsSince(std::chrono::steady_clock::time_point t0) {
  return std::chrono::duration<double>(std::chrono::steady_clock::now() - t0)
      .count();
}

/// One committing transaction: a marker bump plus (every other op) a
/// committed child on a small shared pool — the nested shape the
/// recovery sweep then has to replay.
void CommitOne(rnt::txn::Engine* engine, ObjectId marker, rnt::Rng* rng) {
  auto txn = engine->Begin();
  if (!txn->Apply(marker, rnt::action::Update::Add(1)).ok()) return;
  if (rng->Chance(0.5)) {
    auto child = txn->BeginChild();
    if (child.ok() &&
        (*child)->Apply(static_cast<ObjectId>(rng->Below(8)),
                        rnt::action::Update::Add(1)).ok()) {
      (void)(*child)->Commit();
    }
  }
  (void)txn->Commit();
}

/// Sweep A: commit throughput at one batch_records setting.
bool ThroughputPoint(std::size_t batch_records, int threads,
                     int ops_per_thread, bool first) {
  ScratchDir dir;
  if (dir.path.empty()) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return false;
  }
  rnt::storage::DurableEngineOptions opt;
  opt.fsync = false;
  opt.batch_records = batch_records;
  opt.group_commit_interval = std::chrono::milliseconds(1);
  auto engine = rnt::storage::DurableEngine::Open(dir.path, opt);
  if (!engine.ok()) {
    std::fprintf(stderr, "open failed: %s\n",
                 engine.status().ToString().c_str());
    return false;
  }
  const auto t0 = std::chrono::steady_clock::now();
  std::vector<std::thread> workers;
  for (int t = 0; t < threads; ++t) {
    workers.emplace_back([&, t] {
      rnt::Rng rng(17 * (t + 1));
      const ObjectId marker = static_cast<ObjectId>(1000 + t);
      for (int i = 0; i < ops_per_thread; ++i) {
        CommitOne(engine->get(), marker, &rng);
      }
    });
  }
  for (auto& w : workers) w.join();
  const double secs = SecondsSince(t0);
  const auto stats = (*engine)->wal_stats();
  const double commits = static_cast<double>(threads) * ops_per_thread;
  std::printf(
      "%s{\"batch_records\":%zu,\"threads\":%d,\"commits\":%.0f,"
      "\"seconds\":%.4f,\"commits_per_sec\":%.0f,\"wal_records\":%llu,"
      "\"flush_rounds\":%llu,\"avg_batch\":%.1f,\"max_batch\":%llu}",
      first ? "" : ",", batch_records, threads, commits, secs,
      commits / secs, static_cast<unsigned long long>(stats.appended),
      static_cast<unsigned long long>(stats.batches),
      stats.batches == 0 ? 0.0
                         : static_cast<double>(stats.synced_records) /
                               static_cast<double>(stats.batches),
      static_cast<unsigned long long>(stats.max_batch));
  return true;
}

/// Sweep B: restart-recovery time over a WAL holding `txns` committed
/// transactions.
bool RecoveryPoint(int txns, bool first) {
  ScratchDir dir;
  if (dir.path.empty()) {
    std::fprintf(stderr, "mkdtemp failed\n");
    return false;
  }
  {
    rnt::storage::DurableEngineOptions opt;
    opt.fsync = false;
    opt.group_commit_interval = std::chrono::milliseconds(1);
    auto engine = rnt::storage::DurableEngine::Open(dir.path, opt);
    if (!engine.ok()) {
      std::fprintf(stderr, "open failed: %s\n",
                   engine.status().ToString().c_str());
      return false;
    }
    rnt::Rng rng(29);
    for (int i = 0; i < txns; ++i) CommitOne(engine->get(), 1000, &rng);
    // Engine teardown flushes and stops the group-commit thread; the
    // records stay in the worker files for Recover to scan.
  }
  const auto t0 = std::chrono::steady_clock::now();
  auto report =
      rnt::storage::Recover(rnt::storage::RecoveryOptions{dir.path, {}});
  const double secs = SecondsSince(t0);
  if (!report.ok()) {
    std::fprintf(stderr, "recover failed: %s\n",
                 report.status().ToString().c_str());
    return false;
  }
  std::printf(
      "%s{\"txns\":%d,\"wal_records\":%llu,\"committed_top\":%llu,"
      "\"recovery_seconds\":%.4f,\"records_per_sec\":%.0f}",
      first ? "" : ",", txns,
      static_cast<unsigned long long>(report->records_scanned),
      static_cast<unsigned long long>(report->committed_top), secs,
      secs == 0 ? 0.0
                : static_cast<double>(report->records_scanned) / secs);
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) {
      smoke = true;
    } else {
      std::fprintf(stderr, "usage: %s [--smoke]\n", argv[0]);
      return 2;
    }
  }
  const std::vector<std::size_t> batches =
      smoke ? std::vector<std::size_t>{64}
            : std::vector<std::size_t>{1, 8, 64, 256, 1024};
  const std::vector<int> sizes =
      smoke ? std::vector<int>{200} : std::vector<int>{1000, 4000, 16000};
  const int threads = 4;
  const int ops = smoke ? 50 : 250;

  std::printf("{\"bench\":\"recovery\",\"fsync\":false,");
  std::printf("\"group_commit\":[");
  bool first = true;
  for (std::size_t b : batches) {
    if (!ThroughputPoint(b, threads, ops, first)) return 1;
    first = false;
  }
  std::printf("],\"recovery\":[");
  first = true;
  for (int n : sizes) {
    if (!RecoveryPoint(n, first)) return 1;
    first = false;
  }
  std::printf("]}\n");
  return 0;
}
