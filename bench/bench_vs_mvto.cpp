// Experiment E8 (DESIGN.md): Moss's pessimistic locking vs a Reed-style
// multiversion timestamp scheme (the alternative nested-transaction
// implementation the paper discusses in §1), under a contention sweep.
//
// Expected shape: at low contention MVTO's no-wait optimism is
// competitive or better (no lock bookkeeping, readers never block); as
// skew concentrates writes on a few hot objects, MVTO's abort rate
// climbs (stale writes, dirty-read aborts) while locking degrades more
// gracefully by waiting instead of discarding work.

#include <benchmark/benchmark.h>

#include "baseline/mvto_engine.h"
#include "txn/transaction_manager.h"
#include "workload/workload.h"

namespace {

using rnt::workload::Params;
using rnt::workload::Result;
using rnt::workload::RunMixed;

Params MakeParams(double theta) {
  Params p;
  p.num_objects = 64;
  p.zipf_theta = theta;
  p.children_per_txn = 2;
  p.accesses_per_child = 3;
  p.read_fraction = 0.6;
  p.max_txn_attempts = 50;  // optimistic schemes retry a lot under skew
  p.work_ns_per_access = 2000;
  return p;
}

constexpr int kWorkers = 4;
constexpr int kTxnsPerWorker = 60;

void BM_NestedMoss(benchmark::State& state) {
  double theta = static_cast<double>(state.range(0)) / 100.0;
  Params p = MakeParams(theta);
  Result total;
  for (auto _ : state) {
    rnt::txn::TransactionManager engine;
    total.MergeFrom(RunMixed(engine, p, kWorkers, kTxnsPerWorker, 47));
  }
  state.counters["txn_per_s"] = benchmark::Counter(
      static_cast<double>(total.committed), benchmark::Counter::kIsRate);
  state.counters["attempts_per_commit"] =
      total.committed == 0
          ? 0.0
          : static_cast<double>(total.txn_attempts) /
                static_cast<double>(total.committed);
}

void BM_Mvto(benchmark::State& state) {
  double theta = static_cast<double>(state.range(0)) / 100.0;
  Params p = MakeParams(theta);
  Result total;
  std::uint64_t conflict_aborts = 0, runs = 0;
  for (auto _ : state) {
    rnt::baseline::MvtoEngine engine;
    total.MergeFrom(RunMixed(engine, p, kWorkers, kTxnsPerWorker, 47));
    conflict_aborts += engine.stats().conflict_aborts;
    ++runs;
  }
  state.counters["txn_per_s"] = benchmark::Counter(
      static_cast<double>(total.committed), benchmark::Counter::kIsRate);
  state.counters["attempts_per_commit"] =
      total.committed == 0
          ? 0.0
          : static_cast<double>(total.txn_attempts) /
                static_cast<double>(total.committed);
  state.counters["conflict_aborts"] =
      static_cast<double>(conflict_aborts) / static_cast<double>(runs);
}

// Contention sweep: uniform to strongly skewed.
BENCHMARK(BM_NestedMoss)
    ->Arg(0)
    ->Arg(60)
    ->Arg(90)
    ->Arg(120)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);
BENCHMARK(BM_Mvto)
    ->Arg(0)
    ->Arg(60)
    ->Arg(90)
    ->Arg(120)
    ->UseRealTime()
    ->Unit(benchmark::kMillisecond)
    ->MinTime(0.3);

}  // namespace

BENCHMARK_MAIN();
