// Experiment E3 (DESIGN.md): the cost of the nesting machinery itself —
// lock acquisition checks walk ancestor chains, and every commit inherits
// locks one level up (the paper's release-lock chain, §7-§9).
//
// Microbenchmarks on the lock manager and the engine as nesting depth
// grows: acquire cost, the commit-inheritance chain, abort-discard, and
// the end-to-end cost of one access performed at depth d and committed
// all the way to the top. Also reports the lock-table footprint.

#include <benchmark/benchmark.h>

#include <map>

#include "lock/lock_manager.h"
#include "txn/transaction_manager.h"

namespace {

using rnt::lock::Ancestry;
using rnt::lock::kNoTxn;
using rnt::lock::LockManager;
using rnt::lock::LockMode;
using rnt::lock::TxnId;
using rnt::ObjectId;

/// Linear-chain ancestry of configurable depth: 1 <- 2 <- ... <- d.
class ChainAncestry : public Ancestry {
 public:
  explicit ChainAncestry(int depth) : depth_(depth) {}
  bool IsAncestor(TxnId anc, TxnId desc) const override {
    if (anc == kNoTxn) return true;
    return anc <= desc && desc <= static_cast<TxnId>(depth_);
  }

 private:
  int depth_;
};

void BM_LockAcquireAtDepth(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  ChainAncestry anc(depth);
  LockManager lm(&anc);
  // Ancestors 1..depth-1 already hold the lock (the paper's lock stack).
  for (int d = 1; d < depth; ++d) {
    lm.TryAcquire(0, static_cast<TxnId>(d), LockMode::kWrite);
  }
  TxnId leaf = static_cast<TxnId>(depth);
  for (auto _ : state) {
    benchmark::DoNotOptimize(lm.TryAcquire(0, leaf, LockMode::kWrite));
    lm.OnAbort(leaf);  // reset for the next iteration
  }
  state.counters["lock_records"] =
      static_cast<double>(lm.RecordCount());
}

void BM_CommitInheritChain(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  ChainAncestry anc(depth);
  for (auto _ : state) {
    state.PauseTiming();
    LockManager lm(&anc);
    TxnId leaf = static_cast<TxnId>(depth);
    for (ObjectId x = 0; x < 8; ++x) lm.TryAcquire(x, leaf, LockMode::kWrite);
    state.ResumeTiming();
    // Walk the lock up the whole chain: d inheritance steps (release-lock
    // at each level of the paper's level-3/4 algebras).
    for (int d = depth; d >= 1; --d) {
      lm.OnCommit(static_cast<TxnId>(d),
                  d == 1 ? kNoTxn : static_cast<TxnId>(d - 1));
    }
  }
  state.SetItemsProcessed(state.iterations() * depth);
}

void BM_AbortDiscard(benchmark::State& state) {
  int objects = static_cast<int>(state.range(0));
  ChainAncestry anc(1);
  for (auto _ : state) {
    state.PauseTiming();
    LockManager lm(&anc);
    for (ObjectId x = 0; x < static_cast<ObjectId>(objects); ++x) {
      lm.TryAcquire(x, 1, LockMode::kWrite);
    }
    state.ResumeTiming();
    lm.OnAbort(1);
  }
  state.SetItemsProcessed(state.iterations() * objects);
}

void BM_EngineAccessAtDepth(benchmark::State& state) {
  int depth = static_cast<int>(state.range(0));
  rnt::txn::TransactionManager engine;
  for (auto _ : state) {
    // Build a chain of subtransactions of the given depth, access at the
    // leaf, then commit the whole chain bottom-up.
    std::vector<std::unique_ptr<rnt::txn::TxnHandle>> chain;
    chain.push_back(engine.Begin());
    for (int d = 1; d < depth; ++d) {
      auto c = chain.back()->BeginChild();
      if (!c.ok()) { state.SkipWithError("BeginChild failed"); return; }
      chain.push_back(std::move(*c));
    }
    benchmark::DoNotOptimize(
        chain.back()->Apply(0, rnt::action::Update::Add(1)));
    for (auto it = chain.rbegin(); it != chain.rend(); ++it) {
      if (!(*it)->Commit().ok()) { state.SkipWithError("commit failed"); return; }
    }
  }
  state.SetItemsProcessed(state.iterations());
}

BENCHMARK(BM_LockAcquireAtDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_CommitInheritChain)->Arg(1)->Arg(2)->Arg(4)->Arg(8)->Arg(16);
BENCHMARK(BM_AbortDiscard)->Arg(1)->Arg(8)->Arg(64)->Arg(256);
BENCHMARK(BM_EngineAccessAtDepth)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

}  // namespace

BENCHMARK_MAIN();
